//! Offline drop-in subset of the `criterion` 0.5 API.
//!
//! The build environment has no access to crates.io, so this vendored
//! crate provides the harness surface the `aqt-bench` targets use:
//! `Criterion::benchmark_group`, `sample_size`, `throughput`,
//! `bench_function`, `bench_with_input`, `Bencher::iter`,
//! `BenchmarkId`, `Throughput`, `black_box`, and the
//! `criterion_group!` / `criterion_main!` macros. Measurement is a
//! plain wall-clock loop reporting mean and min per iteration — no
//! statistics, plots, or baselines, but the same invocation shape, so
//! `cargo bench` still regenerates every experiment table.

use std::fmt::Display;
use std::time::{Duration, Instant};

/// Opaque value barrier (forwarded to `std::hint::black_box`).
pub fn black_box<T>(x: T) -> T {
    std::hint::black_box(x)
}

/// Work-per-iteration declaration (printed, not analyzed).
#[derive(Debug, Clone, Copy)]
pub enum Throughput {
    /// Elements processed per iteration.
    Elements(u64),
    /// Bytes processed per iteration.
    Bytes(u64),
}

/// A benchmark identifier within a group.
#[derive(Debug, Clone)]
pub struct BenchmarkId {
    label: String,
}

impl BenchmarkId {
    /// `name/parameter`.
    pub fn new(name: impl Display, parameter: impl Display) -> Self {
        BenchmarkId {
            label: format!("{name}/{parameter}"),
        }
    }

    /// Just the parameter (the group provides the name).
    pub fn from_parameter(parameter: impl Display) -> Self {
        BenchmarkId {
            label: parameter.to_string(),
        }
    }
}

impl From<&str> for BenchmarkId {
    fn from(s: &str) -> Self {
        BenchmarkId { label: s.into() }
    }
}

impl From<String> for BenchmarkId {
    fn from(s: String) -> Self {
        BenchmarkId { label: s }
    }
}

/// Timing loop handed to benchmark closures.
pub struct Bencher {
    samples: usize,
    /// (mean, min) per-iteration wall time of the last `iter` call.
    last: Option<(Duration, Duration)>,
}

impl Bencher {
    /// Time `f`, recording mean and min per-iteration wall time.
    pub fn iter<O, F: FnMut() -> O>(&mut self, mut f: F) {
        black_box(f()); // warmup (also primes caches/allocations)
        let mut total = Duration::ZERO;
        let mut min = Duration::MAX;
        for _ in 0..self.samples {
            let start = Instant::now();
            black_box(f());
            let dt = start.elapsed();
            total += dt;
            min = min.min(dt);
        }
        self.last = Some((total / self.samples as u32, min));
    }
}

fn print_result(group: &str, label: &str, throughput: Option<Throughput>, b: &Bencher) {
    let Some((mean, min)) = b.last else {
        println!("bench {group}/{label}: no measurement (iter never called)");
        return;
    };
    let rate = match throughput {
        Some(Throughput::Elements(n)) if mean > Duration::ZERO => {
            format!("  ({:.0} elem/s)", n as f64 / mean.as_secs_f64())
        }
        Some(Throughput::Bytes(n)) if mean > Duration::ZERO => {
            format!("  ({:.0} B/s)", n as f64 / mean.as_secs_f64())
        }
        _ => String::new(),
    };
    println!(
        "bench {group}/{label}: mean {mean:.3?}, min {min:.3?} over {} samples{rate}",
        b.samples
    );
}

/// A named collection of related benchmarks.
pub struct BenchmarkGroup<'a> {
    name: String,
    samples: usize,
    throughput: Option<Throughput>,
    _criterion: &'a mut Criterion,
}

impl BenchmarkGroup<'_> {
    /// Number of timed samples per benchmark.
    pub fn sample_size(&mut self, n: usize) -> &mut Self {
        self.samples = n.max(1);
        self
    }

    /// Upstream-compatible no-op: this harness has no target time.
    pub fn measurement_time(&mut self, _: Duration) -> &mut Self {
        self
    }

    /// Declare work per iteration (reported as a rate).
    pub fn throughput(&mut self, t: Throughput) -> &mut Self {
        self.throughput = Some(t);
        self
    }

    /// Run one benchmark.
    pub fn bench_function<F>(&mut self, id: impl Into<BenchmarkId>, mut f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        let id = id.into();
        let mut b = Bencher {
            samples: self.samples,
            last: None,
        };
        f(&mut b);
        print_result(&self.name, &id.label, self.throughput, &b);
        self
    }

    /// Run one benchmark with an input value.
    pub fn bench_with_input<I: ?Sized, F>(
        &mut self,
        id: impl Into<BenchmarkId>,
        input: &I,
        mut f: F,
    ) -> &mut Self
    where
        F: FnMut(&mut Bencher, &I),
    {
        let id = id.into();
        let mut b = Bencher {
            samples: self.samples,
            last: None,
        };
        f(&mut b, input);
        print_result(&self.name, &id.label, self.throughput, &b);
        self
    }

    /// End the group (prints nothing; results stream as they finish).
    pub fn finish(&mut self) {}
}

/// The harness entry point.
#[derive(Default)]
pub struct Criterion {}

impl Criterion {
    /// Open a named group of benchmarks.
    pub fn benchmark_group(&mut self, name: impl Into<String>) -> BenchmarkGroup<'_> {
        BenchmarkGroup {
            name: name.into(),
            samples: 10,
            throughput: None,
            _criterion: self,
        }
    }

    /// Run one stand-alone benchmark.
    pub fn bench_function<F>(&mut self, name: &str, f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        self.benchmark_group(name).bench_function("default", f);
        self
    }
}

/// Collect benchmark functions into a runnable group.
#[macro_export]
macro_rules! criterion_group {
    ($group:ident, $($target:path),+ $(,)?) => {
        fn $group() {
            let mut criterion = $crate::Criterion::default();
            $( $target(&mut criterion); )+
        }
    };
}

/// Emit `main` running the given groups.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $( $group(); )+
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample_bench(c: &mut Criterion) {
        let mut g = c.benchmark_group("smoke");
        g.sample_size(3);
        g.throughput(Throughput::Elements(100));
        g.bench_function("sum", |b| {
            b.iter(|| (0..100u64).sum::<u64>());
        });
        g.bench_with_input(BenchmarkId::from_parameter(7u32), &7u32, |b, &n| {
            b.iter(|| n * 2);
        });
        g.finish();
    }

    criterion_group!(benches, sample_bench);

    #[test]
    fn harness_runs() {
        benches();
    }

    #[test]
    fn ids_format() {
        assert_eq!(BenchmarkId::new("a", 3).label, "a/3");
        assert_eq!(BenchmarkId::from_parameter("x").label, "x");
    }
}
