//! Offline drop-in subset of the `proptest` 1.x API.
//!
//! The build environment has no access to crates.io, so this vendored
//! crate provides the surface the workspace's property tests use: the
//! [`proptest!`] macro with `#![proptest_config(...)]`, integer-range
//! and `prop::collection::vec` strategies, `prop_assert!` /
//! `prop_assert_eq!`, and [`TestCaseError`]. Differences from
//! upstream: no shrinking (a failing case reports its sampled inputs
//! verbatim), and sampling runs on the vendored `rand` (seeded from
//! the test name, so every run of a given test replays the same
//! cases — failures are reproducible by construction).

use rand::rngs::StdRng;
use rand::SeedableRng;

pub use rand::Rng as __Rng;

/// Harness configuration (`#![proptest_config(...)]`).
#[derive(Debug, Clone)]
pub struct ProptestConfig {
    /// Number of random cases to run per property.
    pub cases: u32,
}

impl ProptestConfig {
    /// A config running `cases` random cases.
    pub fn with_cases(cases: u32) -> Self {
        ProptestConfig { cases }
    }
}

impl Default for ProptestConfig {
    fn default() -> Self {
        ProptestConfig { cases: 256 }
    }
}

/// A property-level failure (as opposed to a panic).
#[derive(Debug, Clone)]
pub struct TestCaseError(String);

impl TestCaseError {
    /// Fail the current case with a message.
    pub fn fail(msg: impl Into<String>) -> Self {
        TestCaseError(msg.into())
    }

    /// Upstream-compatible alias: rejects are treated as failures
    /// (this harness has no case filtering).
    pub fn reject(msg: impl Into<String>) -> Self {
        TestCaseError(msg.into())
    }
}

impl std::fmt::Display for TestCaseError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(&self.0)
    }
}

/// Deterministic per-test RNG: seeded from the test's name.
pub fn test_rng(name: &str) -> StdRng {
    let mut h: u64 = 0xcbf29ce484222325; // FNV-1a
    for b in name.bytes() {
        h ^= b as u64;
        h = h.wrapping_mul(0x100000001b3);
    }
    StdRng::seed_from_u64(h)
}

/// A source of random values of one type.
pub trait Strategy {
    /// The generated type.
    type Value;
    /// Draw one value.
    fn sample(&self, rng: &mut StdRng) -> Self::Value;
}

macro_rules! impl_range_strategy {
    ($($t:ty),*) => {$(
        impl Strategy for core::ops::Range<$t> {
            type Value = $t;
            fn sample(&self, rng: &mut StdRng) -> $t {
                rand::Rng::gen_range(rng, self.clone())
            }
        }
        impl Strategy for core::ops::RangeInclusive<$t> {
            type Value = $t;
            fn sample(&self, rng: &mut StdRng) -> $t {
                rand::Rng::gen_range(rng, self.clone())
            }
        }
    )*};
}

impl_range_strategy!(u8, u16, u32, u64, usize);

/// A strategy yielding one fixed value (upstream `Just`).
#[derive(Debug, Clone)]
pub struct Just<T: Clone>(pub T);

impl<T: Clone> Strategy for Just<T> {
    type Value = T;
    fn sample(&self, _: &mut StdRng) -> T {
        self.0.clone()
    }
}

/// The `prop::` namespace re-exported by the prelude.
pub mod prop {
    /// Collection strategies.
    pub mod collection {
        use super::super::Strategy;
        use rand::rngs::StdRng;
        use rand::Rng;

        /// Admissible length ranges for [`vec()`].
        #[derive(Debug, Clone, Copy)]
        pub struct SizeRange {
            lo: usize,
            hi_exclusive: usize,
        }

        impl From<usize> for SizeRange {
            fn from(n: usize) -> Self {
                SizeRange {
                    lo: n,
                    hi_exclusive: n + 1,
                }
            }
        }

        impl From<core::ops::Range<usize>> for SizeRange {
            fn from(r: core::ops::Range<usize>) -> Self {
                assert!(r.start < r.end, "empty size range");
                SizeRange {
                    lo: r.start,
                    hi_exclusive: r.end,
                }
            }
        }

        impl From<core::ops::RangeInclusive<usize>> for SizeRange {
            fn from(r: core::ops::RangeInclusive<usize>) -> Self {
                SizeRange {
                    lo: *r.start(),
                    hi_exclusive: *r.end() + 1,
                }
            }
        }

        /// Strategy for `Vec<S::Value>` with length drawn from `size`.
        #[derive(Debug, Clone)]
        pub struct VecStrategy<S> {
            element: S,
            size: SizeRange,
        }

        /// Vectors of `element` values with length in `size`.
        pub fn vec<S: Strategy>(element: S, size: impl Into<SizeRange>) -> VecStrategy<S> {
            VecStrategy {
                element,
                size: size.into(),
            }
        }

        impl<S: Strategy> Strategy for VecStrategy<S> {
            type Value = Vec<S::Value>;
            fn sample(&self, rng: &mut StdRng) -> Vec<S::Value> {
                let len = rng.gen_range(self.size.lo..self.size.hi_exclusive);
                (0..len).map(|_| self.element.sample(rng)).collect()
            }
        }
    }
}

/// Everything a property-test module imports.
pub mod prelude {
    pub use crate::{
        prop, prop_assert, prop_assert_eq, prop_assert_ne, proptest, Just, ProptestConfig,
        Strategy, TestCaseError,
    };
}

/// Fail the case unless `cond` holds.
#[macro_export]
macro_rules! prop_assert {
    ($cond:expr) => {
        $crate::prop_assert!($cond, "assertion failed: {}", stringify!($cond))
    };
    ($cond:expr, $($fmt:tt)*) => {
        if !($cond) {
            return ::core::result::Result::Err($crate::TestCaseError::fail(format!($($fmt)*)));
        }
    };
}

/// Fail the case unless `left == right`.
#[macro_export]
macro_rules! prop_assert_eq {
    ($left:expr, $right:expr) => {{
        let (l, r) = (&$left, &$right);
        $crate::prop_assert!(l == r, "assertion failed: {:?} == {:?}", l, r);
    }};
    ($left:expr, $right:expr, $($fmt:tt)*) => {{
        let (l, r) = (&$left, &$right);
        $crate::prop_assert!(
            l == r,
            "assertion failed: {:?} == {:?}: {}",
            l,
            r,
            format!($($fmt)*)
        );
    }};
}

/// Fail the case unless `left != right`.
#[macro_export]
macro_rules! prop_assert_ne {
    ($left:expr, $right:expr) => {{
        let (l, r) = (&$left, &$right);
        $crate::prop_assert!(l != r, "assertion failed: {:?} != {:?}", l, r);
    }};
    ($left:expr, $right:expr, $($fmt:tt)*) => {{
        let (l, r) = (&$left, &$right);
        $crate::prop_assert!(
            l != r,
            "assertion failed: {:?} != {:?}: {}",
            l,
            r,
            format!($($fmt)*)
        );
    }};
}

/// The property-test harness macro. Supports the subset of upstream
/// syntax used in this workspace:
///
/// ```ignore
/// proptest! {
///     #![proptest_config(ProptestConfig::with_cases(64))]
///     #[test]
///     fn my_property(x in 0u64..10, v in prop::collection::vec(0u32..4, 1..8)) {
///         prop_assert!(x < 10);
///     }
/// }
/// ```
#[macro_export]
macro_rules! proptest {
    (
        #![proptest_config($cfg:expr)]
        $(
            $(#[$meta:meta])*
            fn $name:ident ( $($arg:ident in $strat:expr),* $(,)? ) $body:block
        )*
    ) => {
        $(
            $(#[$meta])*
            fn $name() {
                let config: $crate::ProptestConfig = $cfg;
                let mut rng = $crate::test_rng(concat!(module_path!(), "::", stringify!($name)));
                for case in 0..config.cases {
                    $(let $arg = $crate::Strategy::sample(&($strat), &mut rng);)*
                    let described = format!(
                        concat!($(stringify!($arg), " = {:?}; ",)*),
                        $(&$arg),*
                    );
                    let outcome: ::core::result::Result<(), $crate::TestCaseError> =
                        (|| { $body ::core::result::Result::Ok(()) })();
                    if let ::core::result::Result::Err(e) = outcome {
                        panic!(
                            "proptest {} failed at case {}/{}: {}\n  inputs: {}",
                            stringify!($name), case + 1, config.cases, e, described
                        );
                    }
                }
            }
        )*
    };
    (
        $(
            $(#[$meta:meta])*
            fn $name:ident ( $($arg:ident in $strat:expr),* $(,)? ) $body:block
        )*
    ) => {
        $crate::proptest! {
            #![proptest_config($crate::ProptestConfig::default())]
            $(
                $(#[$meta])*
                fn $name ( $($arg in $strat),* ) $body
            )*
        }
    };
}

#[cfg(test)]
mod tests {
    use crate::prelude::*;

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(64))]

        #[test]
        fn ranges_respected(x in 3u64..9, y in 1usize..=4) {
            prop_assert!((3..9).contains(&x));
            prop_assert!((1..=4).contains(&y), "y out of range: {}", y);
        }

        #[test]
        fn vec_lengths_respected(v in prop::collection::vec(0u32..5, 2..7)) {
            prop_assert!(v.len() >= 2 && v.len() < 7);
            prop_assert!(v.iter().all(|&x| x < 5));
        }
    }

    proptest! {
        #[test]
        fn default_config_runs(x in 0u8..2) {
            prop_assert!(x < 2);
            prop_assert_eq!(x as u32 * 2, (x + x) as u32);
            prop_assert_ne!(x as i32 - 10, x as i32);
        }
    }

    #[test]
    fn question_mark_propagates() {
        // The closure-based body must support `?` on TestCaseError.
        proptest! {
            #![proptest_config(ProptestConfig::with_cases(4))]
            #[allow(unused)]
            fn inner(x in 0u64..4) {
                let v: Result<u64, TestCaseError> = Ok(x);
                let _ = v?;
            }
        }
        inner();
    }

    #[test]
    #[should_panic(expected = "proptest")]
    fn failure_reports_inputs() {
        proptest! {
            #![proptest_config(ProptestConfig::with_cases(8))]
            #[allow(unused)]
            fn must_fail(x in 5u64..6) {
                prop_assert!(x != 5);
            }
        }
        must_fail();
    }
}
