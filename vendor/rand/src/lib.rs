//! Offline drop-in subset of the `rand` 0.8 API.
//!
//! The build environment has no access to crates.io, so this vendored
//! crate provides exactly the surface the workspace uses: `StdRng`,
//! `SeedableRng::seed_from_u64`, `Rng::{gen_range, gen_bool}`, and
//! `seq::SliceRandom::{choose, shuffle}`. The generator is
//! xoshiro256++ seeded via SplitMix64 — not the upstream ChaCha12, so
//! *streams differ from upstream `rand`*, but every caller in this
//! repository only relies on determinism-per-seed, which holds.

/// Sources of randomness: 64-bit output.
pub trait RngCore {
    /// The next 64 random bits.
    fn next_u64(&mut self) -> u64;
}

/// Deterministic construction from a 64-bit seed.
pub trait SeedableRng: Sized {
    /// Build a generator whose stream is a pure function of `state`.
    fn seed_from_u64(state: u64) -> Self;
}

/// Ranges that can be sampled uniformly.
pub trait SampleRange<T> {
    /// Draw one value from the range.
    fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> T;
}

macro_rules! impl_sample_range {
    ($($t:ty),*) => {$(
        impl SampleRange<$t> for core::ops::Range<$t> {
            fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                assert!(self.start < self.end, "cannot sample empty range");
                let span = (self.end as u128).wrapping_sub(self.start as u128);
                self.start + (rng.next_u64() as u128 % span) as $t
            }
        }
        impl SampleRange<$t> for core::ops::RangeInclusive<$t> {
            fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                let (lo, hi) = (*self.start(), *self.end());
                assert!(lo <= hi, "cannot sample empty range");
                let span = (hi as u128) - (lo as u128) + 1;
                lo + (rng.next_u64() as u128 % span) as $t
            }
        }
    )*};
}

impl_sample_range!(u8, u16, u32, u64, usize);

macro_rules! impl_sample_range_signed {
    ($($t:ty),*) => {$(
        impl SampleRange<$t> for core::ops::Range<$t> {
            fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                assert!(self.start < self.end, "cannot sample empty range");
                let span = (self.end as i128 - self.start as i128) as u128;
                (self.start as i128 + (rng.next_u64() as u128 % span) as i128) as $t
            }
        }
        impl SampleRange<$t> for core::ops::RangeInclusive<$t> {
            fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                let (lo, hi) = (*self.start(), *self.end());
                assert!(lo <= hi, "cannot sample empty range");
                let span = (hi as i128 - lo as i128) as u128 + 1;
                (lo as i128 + (rng.next_u64() as u128 % span) as i128) as $t
            }
        }
    )*};
}

impl_sample_range_signed!(i8, i16, i32, i64, isize);

/// Convenience sampling methods, blanket-implemented for every source.
pub trait Rng: RngCore {
    /// Uniform draw from `range`.
    fn gen_range<T, S: SampleRange<T>>(&mut self, range: S) -> T {
        range.sample_from(self)
    }

    /// Bernoulli draw with probability `p`.
    fn gen_bool(&mut self, p: f64) -> bool {
        assert!((0.0..=1.0).contains(&p), "p must be a probability");
        // 53 uniform mantissa bits, the standard [0,1) construction.
        let u = (self.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64);
        u < p
    }
}

impl<T: RngCore + ?Sized> Rng for T {}

/// Named generators.
pub mod rngs {
    use super::{RngCore, SeedableRng};

    /// The workspace's standard generator: xoshiro256++ seeded via
    /// SplitMix64 (upstream uses ChaCha12; see the crate docs).
    #[derive(Debug, Clone)]
    pub struct StdRng {
        s: [u64; 4],
    }

    fn splitmix64(state: &mut u64) -> u64 {
        *state = state.wrapping_add(0x9E3779B97F4A7C15);
        let mut z = *state;
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58476D1CE4E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D049BB133111EB);
        z ^ (z >> 31)
    }

    impl SeedableRng for StdRng {
        fn seed_from_u64(mut state: u64) -> Self {
            let s = [
                splitmix64(&mut state),
                splitmix64(&mut state),
                splitmix64(&mut state),
                splitmix64(&mut state),
            ];
            StdRng { s }
        }
    }

    impl RngCore for StdRng {
        fn next_u64(&mut self) -> u64 {
            let out = self.s[0]
                .wrapping_add(self.s[3])
                .rotate_left(23)
                .wrapping_add(self.s[0]);
            let t = self.s[1] << 17;
            self.s[2] ^= self.s[0];
            self.s[3] ^= self.s[1];
            self.s[1] ^= self.s[2];
            self.s[0] ^= self.s[3];
            self.s[2] ^= t;
            self.s[3] = self.s[3].rotate_left(45);
            out
        }
    }
}

/// Sequence-related helpers.
pub mod seq {
    use super::{Rng, RngCore};

    /// Random operations on slices.
    pub trait SliceRandom {
        /// Element type.
        type Item;
        /// A uniformly random element (`None` on an empty slice).
        fn choose<R: RngCore + ?Sized>(&self, rng: &mut R) -> Option<&Self::Item>;
        /// Fisher–Yates shuffle in place.
        fn shuffle<R: RngCore + ?Sized>(&mut self, rng: &mut R);
    }

    impl<T> SliceRandom for [T] {
        type Item = T;

        fn choose<R: RngCore + ?Sized>(&self, rng: &mut R) -> Option<&T> {
            if self.is_empty() {
                None
            } else {
                Some(&self[rng.gen_range(0..self.len())])
            }
        }

        fn shuffle<R: RngCore + ?Sized>(&mut self, rng: &mut R) {
            for i in (1..self.len()).rev() {
                self.swap(i, rng.gen_range(0..=i));
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::rngs::StdRng;
    use super::seq::SliceRandom;
    use super::{Rng, SeedableRng};

    #[test]
    fn deterministic_per_seed() {
        let mut a = StdRng::seed_from_u64(7);
        let mut b = StdRng::seed_from_u64(7);
        let xs: Vec<u64> = (0..64).map(|_| a.gen_range(0..1000u64)).collect();
        let ys: Vec<u64> = (0..64).map(|_| b.gen_range(0..1000u64)).collect();
        assert_eq!(xs, ys);
        let mut c = StdRng::seed_from_u64(8);
        assert_ne!(
            xs,
            (0..64).map(|_| c.gen_range(0..1000u64)).collect::<Vec<_>>()
        );
    }

    #[test]
    fn ranges_stay_in_bounds() {
        let mut rng = StdRng::seed_from_u64(1);
        for _ in 0..10_000 {
            let x = rng.gen_range(3..17u64);
            assert!((3..17).contains(&x));
            let y = rng.gen_range(5..=9usize);
            assert!((5..=9).contains(&y));
        }
    }

    #[test]
    fn choose_and_shuffle() {
        let mut rng = StdRng::seed_from_u64(2);
        let xs = [10, 20, 30];
        for _ in 0..100 {
            assert!(xs.as_slice().choose(&mut rng).is_some());
        }
        let empty: [u32; 0] = [];
        assert!(empty.as_slice().choose(&mut rng).is_none());
        let mut v: Vec<u32> = (0..50).collect();
        v.shuffle(&mut rng);
        let mut sorted = v.clone();
        sorted.sort_unstable();
        assert_eq!(sorted, (0..50).collect::<Vec<_>>());
    }

    #[test]
    fn signed_ranges_stay_in_bounds() {
        let mut rng = StdRng::seed_from_u64(4);
        for _ in 0..10_000 {
            let x = rng.gen_range(-10..10i32);
            assert!((-10..10).contains(&x));
            let y = rng.gen_range(-5..=-1i64);
            assert!((-5..=-1).contains(&y));
        }
    }

    #[test]
    fn gen_bool_extremes() {
        let mut rng = StdRng::seed_from_u64(3);
        assert!(!(0..100).any(|_| rng.gen_bool(0.0)));
        assert!((0..100).all(|_| rng.gen_bool(1.0)));
    }
}
