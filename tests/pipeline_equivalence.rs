//! The staged step pipeline (active-edge iteration + discipline fast
//! paths) must be trajectory-identical to the retained pre-refactor
//! reference loop (`EngineConfig::reference_pipeline`): same buffers,
//! same metrics counters and series, same fault log, for every
//! protocol, schedule, and fault plan. These tests are the license for
//! the engine's fast path — if one fails, the optimization changed the
//! model.

use std::sync::Arc;

use aqt_core::instability::{InstabilityConfig, InstabilityConstruction};
use aqt_graph::{topologies, EdgeId, Graph, Route};
use aqt_protocols::registry::{by_name, protocol_names};
use aqt_protocols::Fifo;
use aqt_sim::{snapshot, Engine, EngineConfig, FaultPlan, Injection, Metrics, Protocol, Schedule};
use proptest::prelude::*;

/// A length-3 route around `ring(6)` starting at edge `start`.
fn ring_route(g: &Arc<Graph>, start: u64) -> Route {
    let ids = vec![
        EdgeId((start % 6) as u32),
        EdgeId(((start + 1) % 6) as u32),
        EdgeId(((start + 2) % 6) as u32),
    ];
    Route::new(g, ids).expect("contiguous ring edges")
}

fn config(reference: bool) -> EngineConfig {
    EngineConfig {
        sample_every: 3,
        reference_pipeline: reference,
        ..Default::default()
    }
}

/// Drive `steps` steps, injecting per the decoded plan: at step `t`,
/// one packet for every entry `(t, start)` in `inj`.
fn drive<P: Protocol>(eng: &mut Engine<P>, g: &Arc<Graph>, inj: &[(u64, u64)], steps: u64) {
    for t in 1..=steps {
        let packets: Vec<Injection> = inj
            .iter()
            .filter(|&&(at, _)| at == t)
            .map(|&(_, start)| Injection::new(ring_route(g, start), start as u32))
            .collect();
        eng.step(packets).unwrap();
    }
}

fn assert_counters_equal(a: &Metrics, b: &Metrics) {
    assert_eq!(a.injected(), b.injected());
    assert_eq!(a.absorbed(), b.absorbed());
    assert_eq!(a.dropped(), b.dropped());
    assert_eq!(a.duplicated(), b.duplicated());
    assert_eq!(a.max_buffer_wait(), b.max_buffer_wait());
    assert_eq!(a.max_latency(), b.max_latency());
    assert_eq!(a.max_queue_per_edge(), b.max_queue_per_edge());
    assert_eq!(a.crossings_per_edge(), b.crossings_per_edge());
    assert_eq!(a.series(), b.series());
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    /// Random schedules x all protocols x random fault plans: the two
    /// pipelines produce the same snapshot, metrics, fault log, and
    /// the books balance.
    #[test]
    fn pipelines_agree_on_random_runs(
        proto in 0usize..9,
        inj_raw in prop::collection::vec(0u64..360, 0..40),
        drops in prop::collection::vec(0u64..300, 0..4),
        dups in prop::collection::vec(0u64..300, 0..4),
        outage in 0u64..300,
        outage_len in 0u64..8,
        burst_at in 1u64..50,
        burst_n in 0usize..6,
    ) {
        let g = Arc::new(topologies::ring(6));
        let name = protocol_names()[proto];
        // decode each scalar into (step 1..=60, route start 0..6)
        let inj: Vec<(u64, u64)> = inj_raw.iter().map(|&v| (1 + v / 6, v % 6)).collect();

        let mut plan = FaultPlan::new();
        for &d in &drops {
            plan = plan.with_drop(EdgeId((d % 6) as u32), 1 + d / 6);
        }
        for &d in &dups {
            plan = plan.with_duplicate(EdgeId((d % 6) as u32), 1 + d / 6);
        }
        let from = 1 + outage / 6;
        plan = plan.with_outage(EdgeId((outage % 6) as u32), from, from + outage_len);
        if burst_n > 0 {
            plan = plan.with_burst(
                burst_at,
                vec![Injection::new(ring_route(&g, burst_at), 99); burst_n],
            );
        }

        let mut fast = Engine::new(
            Arc::clone(&g),
            by_name(name, 11).unwrap(),
            config(false),
        );
        let mut slow = Engine::new(
            Arc::clone(&g),
            by_name(name, 11).unwrap(),
            config(true),
        );
        fast.install_faults(plan.clone()).unwrap();
        slow.install_faults(plan).unwrap();

        drive(&mut fast, &g, &inj, 70);
        drive(&mut slow, &g, &inj, 70);

        prop_assert_eq!(snapshot::capture(&fast), snapshot::capture(&slow));
        prop_assert_eq!(fast.fault_log(), slow.fault_log());
        assert_counters_equal(fast.metrics(), slow.metrics());

        // packet conservation, independently recounted
        let live: u64 = g.edge_ids().map(|e| fast.queue_len(e) as u64).sum();
        let m = fast.metrics();
        prop_assert_eq!(m.injected() + m.duplicated(), m.absorbed() + m.dropped() + live);
    }

    /// Random cohort bursts x all protocols x random fault plans: a
    /// single `Injection::cohort(route, tag, n)` must be
    /// trajectory-identical to `n` consecutive singleton injections at
    /// the same step — through the staged pipeline AND through the
    /// reference loop. This pins the batched admission path (one route
    /// intern, one buffer range-extend) to the one-packet-at-a-time
    /// semantics of the model.
    #[test]
    fn cohorts_are_identical_to_singleton_injections(
        proto in 0usize..9,
        cohorts_raw in prop::collection::vec(0u64..1440, 0..12),
        drops in prop::collection::vec(0u64..300, 0..3),
        seed_n in 0u64..20,
    ) {
        let g = Arc::new(topologies::ring(6));
        let name = protocol_names()[proto];
        // decode each scalar into (step 1..=40, route start 0..6, n 1..=6)
        let cohorts: Vec<(u64, u64, u32)> = cohorts_raw
            .iter()
            .map(|&v| (1 + (v % 240) / 6, v % 6, 1 + (v / 240) as u32))
            .collect();
        let mut plan = FaultPlan::new();
        for &d in &drops {
            plan = plan.with_drop(EdgeId((d % 6) as u32), 1 + d / 6);
        }

        let run = |batched: bool, reference: bool| {
            let mut eng = Engine::new(
                Arc::clone(&g),
                by_name(name, 11).unwrap(),
                config(reference),
            );
            eng.install_faults(plan.clone()).unwrap();
            let seed_route = ring_route(&g, 0);
            if batched {
                if seed_n > 0 {
                    eng.seed_cohort(seed_route, 7, seed_n).unwrap();
                }
            } else {
                for _ in 0..seed_n {
                    eng.seed(seed_route.clone(), 7).unwrap();
                }
            }
            for t in 1..=50u64 {
                let packets: Vec<Injection> = cohorts
                    .iter()
                    .filter(|&&(at, _, _)| at == t)
                    .flat_map(|&(_, start, n)| {
                        let route = ring_route(&g, start);
                        if batched {
                            vec![Injection::cohort(route, start as u32, n)]
                        } else {
                            vec![Injection::new(route, start as u32); n as usize]
                        }
                    })
                    .collect();
                eng.step(packets).unwrap();
            }
            eng
        };

        let batched_fast = run(true, false);
        let singles_fast = run(false, false);
        let batched_slow = run(true, true);

        prop_assert_eq!(
            snapshot::capture(&batched_fast),
            snapshot::capture(&singles_fast)
        );
        prop_assert_eq!(
            snapshot::capture(&batched_fast),
            snapshot::capture(&batched_slow)
        );
        assert_counters_equal(batched_fast.metrics(), singles_fast.metrics());
        assert_counters_equal(batched_fast.metrics(), batched_slow.metrics());
    }
}

/// Deterministic cross-check on every bundled protocol: a congested
/// phase (all sources firing) followed by a full drain, no faults.
#[test]
fn pipelines_agree_for_every_protocol_through_a_drain() {
    let g = Arc::new(topologies::ring(6));
    for &name in protocol_names() {
        let mut fast = Engine::new(Arc::clone(&g), by_name(name, 5).unwrap(), config(false));
        let mut slow = Engine::new(Arc::clone(&g), by_name(name, 5).unwrap(), config(true));
        for eng in [&mut fast, &mut slow] {
            for t in 1..=40u64 {
                let inj: Vec<Injection> = (0..(t % 4))
                    .map(|k| Injection::new(ring_route(&g, t + k), t as u32))
                    .collect();
                eng.step(inj).unwrap();
            }
            // quiet drain: the active-edge set shrinks to nothing
            eng.run_quiet(60).unwrap();
        }
        assert_eq!(
            snapshot::capture(&fast),
            snapshot::capture(&slow),
            "{name}: snapshots diverge"
        );
        assert_counters_equal(fast.metrics(), slow.metrics());
        assert_eq!(fast.backlog(), 0, "{name}: drain must complete");
    }
}

/// The recorded Theorem 3.17 adversary (which exercises `Extend` ops —
/// the Lemma 3.3 reroutes — plus massive single-edge backlogs) replays
/// identically through both pipelines.
#[test]
fn pipelines_agree_on_a_recorded_instability_run() {
    let mut cfg = InstabilityConfig::new(1, 4);
    cfg.iterations = 1;
    cfg.s0_safety = 1.0;
    cfg.m_override = Some(4);
    cfg.record_ops = true;
    cfg.validate = false;
    let construction = InstabilityConstruction::new(cfg);
    let run = construction.run().expect("legal adversary");

    let graph = Arc::new(construction.geps.graph.clone());
    let ingress = construction.geps.ingress();
    let unit = Route::single(&graph, ingress).expect("unit route");

    // The fast replica seeds its initial set as one cohort, the
    // reference replica packet by packet — pinning batched seeding to
    // singleton seeding on the heavyweight fixture as well.
    let replay = |reference: bool| {
        let mut eng = Engine::new(Arc::clone(&graph), Fifo, config(reference));
        if reference {
            for _ in 0..run.s_star {
                eng.seed(unit.clone(), 0).expect("seeding");
            }
        } else {
            eng.seed_cohort(unit.clone(), 0, run.s_star)
                .expect("seeding");
        }
        let sched: Schedule = run.recorded.clone();
        sched.run(&mut eng, run.total_steps).expect("replay");
        eng
    };
    let fast = replay(false);
    let slow = replay(true);

    assert_eq!(snapshot::capture(&fast), snapshot::capture(&slow));
    assert_counters_equal(fast.metrics(), slow.metrics());
    // and both match the driver's own measurement of the final queue
    let s_end = run.iterations.last().expect("one iteration").s_end;
    assert_eq!(fast.backlog(), s_end);
}
