//! Cross-crate property tests: the adversary validators against
//! brute-force reference checks, and the adversary builders against
//! the validators.

use aqt_graph::{topologies, EdgeId, Route};
use aqt_protocols::Fifo;
use aqt_sim::rate::{brute_force_rate_check, brute_force_window_check};
use aqt_sim::{Engine, EngineConfig, RateValidator, Ratio, WindowValidator};
use proptest::prelude::*;
use std::sync::Arc;

proptest! {
    #![proptest_config(ProptestConfig::with_cases(256))]

    /// The O(1) incremental rate-r check accepts exactly the sequences
    /// the all-intervals definition accepts.
    #[test]
    fn rate_validator_equals_brute_force(
        num in 1u64..12,
        gaps in prop::collection::vec(0u64..4, 1..60),
    ) {
        let r = Ratio::new(num, 12);
        let mut v = RateValidator::new(r, 1);
        let mut times = Vec::new();
        let mut t = 0u64;
        let mut ok = true;
        for g in gaps {
            t += g;
            if v.record(EdgeId(0), t).is_err() {
                ok = false;
                times.push(t);
                break;
            }
            times.push(t);
        }
        let brute = brute_force_rate_check(r, &[(EdgeId(0), times.clone())]);
        prop_assert_eq!(ok, brute, "r={} times={:?}", r, times);
    }

    /// Same equivalence for the (w, r) windowed validator.
    #[test]
    fn window_validator_equals_brute_force(
        w in 2u64..10,
        num in 1u64..10,
        gaps in prop::collection::vec(0u64..3, 1..50),
    ) {
        let r = Ratio::new(num, 10);
        let mut v = WindowValidator::new(w, r, 1);
        let mut times = Vec::new();
        let mut t = 0u64;
        let mut ok = true;
        for g in gaps {
            t += g;
            if v.record(EdgeId(0), t).is_err() {
                ok = false;
                times.push(t);
                break;
            }
            times.push(t);
        }
        let brute = brute_force_window_check(w, r, &[(EdgeId(0), times.clone())]);
        prop_assert_eq!(ok, brute, "w={} r={} times={:?}", w, r, times);
    }

    /// Any composition of floor-pattern streams with >= 1-step gaps on
    /// a shared edge is rate-legal — the structural fact all the
    /// adversary builders rely on.
    #[test]
    fn gapped_floor_streams_are_legal(
        num in 6u64..12,
        durations in prop::collection::vec(1u64..40, 1..6),
        gaps in prop::collection::vec(1u64..5, 6),
    ) {
        let r = Ratio::new(num, 12);
        let mut v = RateValidator::new(r, 1);
        let mut start = 1u64;
        for (i, &dur) in durations.iter().enumerate() {
            let mut injected = 0u64;
            for k in 1..=dur {
                let want = r.floor_mul(k);
                if want > injected {
                    v.record(EdgeId(0), start + k - 1)
                        .map_err(|e| TestCaseError::fail(format!("{e}")))?;
                    injected = want;
                }
            }
            start += dur + gaps[i % gaps.len()];
        }
    }

    /// Engine conservation: injected = absorbed + backlog, always.
    #[test]
    fn engine_conserves_packets(
        seed_routes in prop::collection::vec(0usize..3, 0..20),
        steps in 1u64..60,
    ) {
        let g = Arc::new(topologies::line(4));
        let edges: Vec<EdgeId> = g.edge_ids().collect();
        let mut eng = Engine::new(Arc::clone(&g), Fifo, EngineConfig::default());
        for &i in &seed_routes {
            let route = Route::new(&g, edges[i..].to_vec()).unwrap();
            eng.seed(route, 0).unwrap();
        }
        eng.run_quiet(steps).unwrap();
        let m = eng.metrics();
        prop_assert_eq!(m.injected(), seed_routes.len() as u64);
        prop_assert_eq!(m.injected(), m.absorbed() + eng.backlog());
        // after enough steps everything is absorbed (line of length 4,
        // at most 20 packets)
        if steps >= 24 {
            prop_assert_eq!(eng.backlog(), 0);
        }
    }
}

/// Every schedule emitted by the three lemma builders passes the exact
/// validator when replayed from the states the lemmas assume.
#[test]
fn lemma_builders_are_rate_legal() {
    // Lemma 3.16 on a 3-edge line (the other two are covered by the
    // aqt-core experiments, which run with validation on).
    for (num, den) in [(11u64, 20u64), (3, 5), (3, 4), (9, 10)] {
        let rate = Ratio::new(num, den);
        let graph = Arc::new(topologies::line(3));
        let e: Vec<EdgeId> = graph.edge_ids().collect();
        let mut eng = Engine::new(
            Arc::clone(&graph),
            Fifo,
            EngineConfig {
                validate_rate: Some(rate),
                ..Default::default()
            },
        );
        let unit = Route::single(&graph, e[0]).unwrap();
        for _ in 0..500 {
            eng.seed(unit.clone(), 0).unwrap();
        }
        let stitch =
            aqt_adversary::lemma316::build(&graph, e[0], e[1], e[2], rate, 500, 0, 0).unwrap();
        stitch
            .schedule
            .run(&mut eng, stitch.finish)
            .unwrap_or_else(|err| panic!("stitch at r={num}/{den} must be legal: {err}"));
    }
}
