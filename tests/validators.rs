//! Cross-crate property tests: the adversary validators against
//! brute-force reference checks, and the adversary builders against
//! the validators.

use aqt_graph::{topologies, EdgeId, Route};
use aqt_protocols::Fifo;
use aqt_sim::rate::{
    brute_force_buffer_bound_check, brute_force_burst_local_check, brute_force_member_check,
    brute_force_model_check, brute_force_rate_check, brute_force_window_check,
};
use aqt_sim::{
    AdversaryModelSpec, BufferBoundValidator, BurstLocalValidator, Constraint, ConstraintSpec,
    Engine, EngineConfig, RateValidator, Ratio, WindowValidator,
};
use proptest::prelude::*;
use std::sync::Arc;

proptest! {
    #![proptest_config(ProptestConfig::with_cases(256))]

    /// The O(1) incremental rate-r check accepts exactly the sequences
    /// the all-intervals definition accepts.
    #[test]
    fn rate_validator_equals_brute_force(
        num in 1u64..12,
        gaps in prop::collection::vec(0u64..4, 1..60),
    ) {
        let r = Ratio::new(num, 12);
        let mut v = RateValidator::new(r, 1);
        let mut times = Vec::new();
        let mut t = 0u64;
        let mut ok = true;
        for g in gaps {
            t += g;
            if v.record(EdgeId(0), t).is_err() {
                ok = false;
                times.push(t);
                break;
            }
            times.push(t);
        }
        let brute = brute_force_rate_check(r, &[(EdgeId(0), times.clone())]);
        prop_assert_eq!(ok, brute, "r={} times={:?}", r, times);
    }

    /// Same equivalence for the (w, r) windowed validator.
    #[test]
    fn window_validator_equals_brute_force(
        w in 2u64..10,
        num in 1u64..10,
        gaps in prop::collection::vec(0u64..3, 1..50),
    ) {
        let r = Ratio::new(num, 10);
        let mut v = WindowValidator::new(w, r, 1);
        let mut times = Vec::new();
        let mut t = 0u64;
        let mut ok = true;
        for g in gaps {
            t += g;
            if v.record(EdgeId(0), t).is_err() {
                ok = false;
                times.push(t);
                break;
            }
            times.push(t);
        }
        let brute = brute_force_window_check(w, r, &[(EdgeId(0), times.clone())]);
        prop_assert_eq!(ok, brute, "w={} r={} times={:?}", w, r, times);
    }

    /// Same equivalence for the locally-bursty `(rho, sigma, L)`
    /// validator, covering both the short-interval (sliding L-window)
    /// and long-interval (prefix-height) branches.
    #[test]
    fn burst_local_validator_equals_brute_force(
        num in 1u64..8,
        sigma in 0u64..5,
        locality in 1u64..10,
        gaps in prop::collection::vec(0u64..4, 1..50),
    ) {
        let rho = Ratio::new(num, 8);
        let mut v = BurstLocalValidator::new(rho, sigma, locality, 1);
        let mut times = Vec::new();
        let mut t = 0u64;
        let mut ok = true;
        for g in gaps {
            t += g;
            if v.record(EdgeId(0), t).is_err() {
                ok = false;
                times.push(t);
                break;
            }
            times.push(t);
        }
        let brute = brute_force_burst_local_check(rho, sigma, locality, &[(EdgeId(0), times.clone())]);
        prop_assert_eq!(ok, brute, "rho={} sigma={} L={} times={:?}", rho, sigma, locality, times);
    }

    /// Same equivalence for the buffer-bound-`B` validator
    /// (N(e, I) <= |I| + B on every interval).
    #[test]
    fn buffer_bound_validator_equals_brute_force(
        bound in 0u64..8,
        gaps in prop::collection::vec(0u64..3, 1..50),
    ) {
        let mut v = BufferBoundValidator::new(bound, 1);
        let mut times = Vec::new();
        let mut t = 0u64;
        let mut ok = true;
        for g in gaps {
            t += g;
            if v.record(EdgeId(0), t).is_err() {
                ok = false;
                times.push(t);
                break;
            }
            times.push(t);
        }
        let brute = brute_force_buffer_bound_check(bound, &[(EdgeId(0), times.clone())]);
        prop_assert_eq!(ok, brute, "B={} times={:?}", bound, times);
    }

    /// The composed three-member model (window ∘ burst-local ∘
    /// buffer-bound) accepts exactly the sequences every member's
    /// all-intervals definition accepts: the conjunction semantics of
    /// the `All` composer, end to end through the incremental trackers.
    #[test]
    fn composed_model_equals_brute_force(
        w in 2u64..10,
        wnum in 1u64..10,
        bnum in 1u64..8,
        sigma in 0u64..5,
        locality in 1u64..10,
        bound in 0u64..8,
        gaps in prop::collection::vec(0u64..3, 1..50),
    ) {
        let spec = AdversaryModelSpec::window(w, Ratio::new(wnum, 10))
            .and(ConstraintSpec::BurstLocal {
                rho: Ratio::new(bnum, 8),
                sigma,
                locality,
            })
            .and(ConstraintSpec::BufferBound { bound });
        let mut model = spec.build(1);
        let mut times = Vec::new();
        let mut t = 0u64;
        let mut ok = true;
        for g in gaps {
            t += g;
            if model.observe(EdgeId(0), t).is_err() {
                ok = false;
                times.push(t);
                break;
            }
            times.push(t);
        }
        let brute = brute_force_model_check(&spec, &[(EdgeId(0), times.clone())]);
        prop_assert_eq!(ok, brute, "spec={} times={:?}", spec, times);
    }

    /// Any composition of floor-pattern streams with >= 1-step gaps on
    /// a shared edge is rate-legal — the structural fact all the
    /// adversary builders rely on.
    #[test]
    fn gapped_floor_streams_are_legal(
        num in 6u64..12,
        durations in prop::collection::vec(1u64..40, 1..6),
        gaps in prop::collection::vec(1u64..5, 6),
    ) {
        let r = Ratio::new(num, 12);
        let mut v = RateValidator::new(r, 1);
        let mut start = 1u64;
        for (i, &dur) in durations.iter().enumerate() {
            let mut injected = 0u64;
            for k in 1..=dur {
                let want = r.floor_mul(k);
                if want > injected {
                    v.record(EdgeId(0), start + k - 1)
                        .map_err(|e| TestCaseError::fail(format!("{e}")))?;
                    injected = want;
                }
            }
            start += dur + gaps[i % gaps.len()];
        }
    }

    /// Engine conservation: injected = absorbed + backlog, always.
    #[test]
    fn engine_conserves_packets(
        seed_routes in prop::collection::vec(0usize..3, 0..20),
        steps in 1u64..60,
    ) {
        let g = Arc::new(topologies::line(4));
        let edges: Vec<EdgeId> = g.edge_ids().collect();
        let mut eng = Engine::new(Arc::clone(&g), Fifo, EngineConfig::default());
        for &i in &seed_routes {
            let route = Route::new(&g, edges[i..].to_vec()).unwrap();
            eng.seed(route, 0).unwrap();
        }
        eng.run_quiet(steps).unwrap();
        let m = eng.metrics();
        prop_assert_eq!(m.injected(), seed_routes.len() as u64);
        prop_assert_eq!(m.injected(), m.absorbed() + eng.backlog());
        // after enough steps everything is absorbed (line of length 4,
        // at most 20 packets)
        if steps >= 24 {
            prop_assert_eq!(eng.backlog(), 0);
        }
    }
}

/// The shared 3-way composition for the single-member-violation tests:
/// window(10, 1/2) ∘ burst_local(1/2, 2, 4) ∘ buffer_bound(1), i.e.
/// window budget 5, short-interval budget ⌊ρL⌋+σ = 4, burst cap |I|+1.
fn composed_spec() -> AdversaryModelSpec {
    AdversaryModelSpec::window(10, Ratio::new(1, 2))
        .and(ConstraintSpec::BurstLocal {
            rho: Ratio::new(1, 2),
            sigma: 2,
            locality: 4,
        })
        .and(ConstraintSpec::BufferBound { bound: 1 })
}

/// Drive the composed model over `times`, expecting the final
/// observation to be rejected with a detail naming the violated
/// member, and cross-check each member against its own brute-force
/// reference: exactly `violated` fails, the others pass.
fn assert_single_member_violation(times: &[u64], violated: usize, detail_substr: &str) {
    let spec = composed_spec();
    let mut model = spec.build(1);
    let (last, prefix) = times.split_last().unwrap();
    for &t in prefix {
        model
            .observe(EdgeId(0), t)
            .unwrap_or_else(|e| panic!("prefix of {times:?} must be legal under {spec}: {e}"));
    }
    let err = model
        .observe(EdgeId(0), *last)
        .expect_err("final observation must breach the composed model");
    assert!(
        err.detail.contains(detail_substr),
        "detail {:?} should name the violated member via {:?}",
        err.detail,
        detail_substr
    );

    let recorded = [(EdgeId(0), times.to_vec())];
    assert!(!brute_force_model_check(&spec, &recorded));
    for (i, &member) in spec.members.iter().enumerate() {
        let ok = brute_force_member_check(member, &recorded);
        assert_eq!(
            ok,
            i != violated,
            "member {} ({}) expected {}",
            i,
            member,
            if i != violated { "legal" } else { "violated" }
        );
    }
}

/// Six injections inside one 10-window bust only the window budget:
/// spread out enough for burst-locality, never bunched enough for the
/// buffer bound.
#[test]
fn composition_rejects_window_member_alone() {
    assert_single_member_violation(&[1, 3, 5, 7, 9, 10], 0, "budget 5 exceeded in window");
}

/// Five injections within one L=4 window bust only burst-locality:
/// exactly at the window budget, and ramped so every suffix interval
/// sits exactly at the buffer cap.
#[test]
fn composition_rejects_burst_local_member_alone() {
    assert_single_member_violation(&[1, 2, 3, 4, 4], 1, "short-interval budget");
}

/// A cohort of three in a single step busts only the buffer bound:
/// well under the window budget (5) and the short-interval budget (4).
#[test]
fn composition_rejects_buffer_bound_member_alone() {
    assert_single_member_violation(&[1, 1, 1], 2, "buffer bound B=1 exceeded");
}

/// Every schedule emitted by the three lemma builders passes the exact
/// validator when replayed from the states the lemmas assume.
#[test]
fn lemma_builders_are_rate_legal() {
    // Lemma 3.16 on a 3-edge line (the other two are covered by the
    // aqt-core experiments, which run with validation on).
    for (num, den) in [(11u64, 20u64), (3, 5), (3, 4), (9, 10)] {
        let rate = Ratio::new(num, den);
        let graph = Arc::new(topologies::line(3));
        let e: Vec<EdgeId> = graph.edge_ids().collect();
        let mut eng = Engine::new(
            Arc::clone(&graph),
            Fifo,
            EngineConfig {
                validate: Some(AdversaryModelSpec::rate(rate)),
                ..Default::default()
            },
        );
        let unit = Route::single(&graph, e[0]).unwrap();
        for _ in 0..500 {
            eng.seed(unit.clone(), 0).unwrap();
        }
        let stitch =
            aqt_adversary::lemma316::build(&graph, e[0], e[1], e[2], rate, 500, 0, 0).unwrap();
        stitch
            .schedule
            .run(&mut eng, stitch.finish)
            .unwrap_or_else(|err| panic!("stitch at r={num}/{den} must be legal: {err}"));
    }
}
