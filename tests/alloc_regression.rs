//! Allocation-count regression test (`--features alloc-counter`).
//!
//! The hot step loop must not touch the heap once warm: packets are
//! `Copy`, routes live in the append-only `RouteTable`, and the
//! engine's transit scratch buffers are reused across steps. A counting
//! global allocator (wrapping the system allocator) measures the drain
//! workload — the benchmark's steady-state shape — and asserts zero
//! allocations per step after warm-up. Any future change that sneaks a
//! per-step allocation into send/receive (a route clone, a fresh
//! scratch `Vec`, an accidental `Arc` bump-and-drop) fails here before
//! it shows up as a throughput regression in `BENCH_engine.json`.
#![cfg(feature = "alloc-counter")]

use std::alloc::{GlobalAlloc, Layout, System};
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;

use aqt_graph::{topologies, Route};
use aqt_protocols::Fifo;
use aqt_sim::{Engine, EngineConfig, RingSink, TelemetryConfig};

/// System allocator with a global counter on every acquiring call
/// (alloc, alloc_zeroed, realloc). Deallocations are free of interest:
/// the invariant is "no per-step heap traffic", and acquisitions are
/// the side that both grows and churns.
struct CountingAlloc;

static ALLOCATIONS: AtomicU64 = AtomicU64::new(0);

unsafe impl GlobalAlloc for CountingAlloc {
    unsafe fn alloc(&self, layout: Layout) -> *mut u8 {
        ALLOCATIONS.fetch_add(1, Ordering::Relaxed);
        System.alloc(layout)
    }

    unsafe fn alloc_zeroed(&self, layout: Layout) -> *mut u8 {
        ALLOCATIONS.fetch_add(1, Ordering::Relaxed);
        System.alloc_zeroed(layout)
    }

    unsafe fn realloc(&self, ptr: *mut u8, layout: Layout, new_size: usize) -> *mut u8 {
        ALLOCATIONS.fetch_add(1, Ordering::Relaxed);
        System.realloc(ptr, layout, new_size)
    }

    unsafe fn dealloc(&self, ptr: *mut u8, layout: Layout) {
        System.dealloc(ptr, layout)
    }
}

#[global_allocator]
static GLOBAL: CountingAlloc = CountingAlloc;

/// The benchmark's drain workload: 20 000 unit-route packets seeded on
/// the first edge of `line(256)`, drained one send/absorb per step.
/// After a short warm-up (scratch buffers at capacity, metrics
/// settled), 2 000 further steps must perform zero heap allocations.
#[test]
fn steady_state_drain_steps_do_not_allocate() {
    let graph = Arc::new(topologies::line(256));
    let e0 = graph.edge_ids().next().expect("line has edges");
    let unit = Route::single(&graph, e0).expect("unit route");
    let mut eng = Engine::new(
        Arc::clone(&graph),
        Fifo,
        EngineConfig {
            // backlog sampling appends to a series; keep the measured
            // window free of the sampler so the assertion is exact
            sample_every: 0,
            ..Default::default()
        },
    );
    eng.seed_cohort(unit, 0, 20_000).expect("seeding");

    eng.run_quiet(100).expect("warm-up");

    let before = ALLOCATIONS.load(Ordering::SeqCst);
    eng.run_quiet(2_000).expect("measured drain");
    let after = ALLOCATIONS.load(Ordering::SeqCst);

    assert_eq!(
        after - before,
        0,
        "steady-state drain must be allocation-free: {} allocations in 2000 steps",
        after - before
    );
    assert_eq!(eng.metrics().absorbed(), 2_100, "drain actually progressed");
}

/// The same drain with telemetry *enabled* — counters on, a 256-step
/// window, and a preallocated ring sink. The instrumented loop must
/// stay allocation-free too: counters are plain field increments, the
/// window deltas go into a scratch buffer sized at attach time, and
/// the ring sink stores `Copy` records in a buffer allocated up
/// front. ~8 window emissions land inside the measured 2 000 steps,
/// so the zero-allocation assertion covers the slow path as well as
/// the per-step fast path.
#[test]
fn telemetry_enabled_drain_steps_do_not_allocate() {
    let graph = Arc::new(topologies::line(256));
    let e0 = graph.edge_ids().next().expect("line has edges");
    let unit = Route::single(&graph, e0).expect("unit route");
    let mut eng = Engine::new(
        Arc::clone(&graph),
        Fifo,
        EngineConfig {
            sample_every: 0,
            ..Default::default()
        },
    );
    eng.attach_telemetry(TelemetryConfig::default().with_window(256));
    eng.set_telemetry_sink(Box::new(RingSink::with_capacity(64)));
    eng.seed_cohort(unit, 0, 20_000).expect("seeding");

    eng.run_quiet(100).expect("warm-up");

    let before = ALLOCATIONS.load(Ordering::SeqCst);
    eng.run_quiet(2_000).expect("measured drain");
    let after = ALLOCATIONS.load(Ordering::SeqCst);

    assert_eq!(
        after - before,
        0,
        "telemetry-enabled drain must be allocation-free: {} allocations in 2000 steps",
        after - before
    );
    let counters = eng.telemetry().counters();
    assert_eq!(counters.steps, 2_100, "telemetry counted every step");
    assert!(
        counters.packets_absorbed >= 2_100,
        "telemetry observed the drain"
    );
}
