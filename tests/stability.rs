//! Integration tests for the stability side (Section 4): reduced-scale
//! versions of experiments E5, E6 and E7.

use aqt_analysis::Verdict;
use aqt_core::experiments::{e5_greedy_stability, e6_time_priority, e7_initial_config};
use aqt_core::theory::StabilityCertificate;
use aqt_sim::Ratio;

/// Theorem 4.1 at reduced scale: every protocol, every topology, the
/// `⌈wr⌉` bound holds and nothing diverges.
#[test]
fn theorem_4_1_bound_holds_everywhere() {
    let rows = e5_greedy_stability(3, 12, 6000).expect("legal adversaries");
    assert_eq!(rows.len(), 5 * 9, "5 topologies x 9 protocols");
    for row in &rows {
        assert!(
            row.bound_respected,
            "{} on {}: max wait {} exceeds bound {:?}",
            row.protocol, row.topology, row.max_wait, row.bound
        );
        assert_ne!(
            row.verdict,
            Verdict::Diverging,
            "{} on {} diverged below 1/(d+1)",
            row.protocol,
            row.topology
        );
        // the bound must actually be the theorem's ⌈wr⌉ = ⌈12/4⌉ = 3
        assert_eq!(row.bound, Some(3));
    }
}

/// Theorem 4.3 at reduced scale: FIFO and LIS keep `⌈wr⌉ = 4` at
/// `r = 1/d`; the theorem is silent for LIFO/NTG at that rate.
#[test]
fn theorem_4_3_time_priority_bound() {
    let rows = e6_time_priority(3, 12, 6000).expect("legal adversaries");
    for row in &rows {
        match row.protocol.as_str() {
            "FIFO" | "LIS" => {
                assert_eq!(row.bound, Some(4), "⌈12/3⌉ = 4");
                assert!(
                    row.bound_respected,
                    "{} on {}: wait {} > 4",
                    row.protocol, row.topology, row.max_wait
                );
            }
            _ => assert_eq!(row.bound, None, "theorem is silent for {}", row.protocol),
        }
    }
}

/// Corollaries 4.5/4.6 at reduced scale: nonempty initial
/// configurations, strict rate inequality, degraded bound still holds.
#[test]
fn corollaries_4_5_4_6_initial_configurations() {
    let rows = e7_initial_config(3, 12, 100, 6000).expect("legal adversaries");
    for row in &rows {
        assert!(row.bound.is_some(), "r < 1/(d+1) strictly, bound exists");
        assert!(
            row.bound_respected,
            "{} on {}: wait {} exceeds Cor 4.5/4.6 bound {:?}",
            row.protocol, row.topology, row.max_wait, row.bound
        );
    }
}

/// The certificates match the paper's closed forms on hand-computed
/// cases (cross-check of the exact rational arithmetic).
#[test]
fn certificate_closed_forms() {
    // Theorem 4.1: w=100, r=1/5, d=4 -> ⌈100/5⌉ = 20.
    let c = StabilityCertificate::new(100, Ratio::new(1, 5), 4);
    assert_eq!(c.greedy_bound(), Some(20));
    // Theorem 4.3: w=100, r=1/4, d=4 -> 25 for time-priority only.
    let c = StabilityCertificate::new(100, Ratio::new(1, 4), 4);
    assert_eq!(c.time_priority_bound(), Some(25));
    assert_eq!(c.greedy_bound(), None);
    // Corollary 4.5: S=10, w=5, r=1/6, d=4:
    // w* = ⌈16/(1/5 - 1/6)⌉ = ⌈16·30⌉ = 480; bound = ⌈480/5⌉ = 96.
    let c = StabilityCertificate::with_initial(5, Ratio::new(1, 6), 4, 10);
    assert_eq!(c.greedy_bound(), Some(96));
    // Corollary 4.6: same with r* = 1/4:
    // w* = ⌈16/(1/4 - 1/6)⌉ = ⌈16·12⌉ = 192; bound = ⌈192/4⌉ = 48.
    assert_eq!(c.time_priority_bound(), Some(48));
}

/// The paper's remark: the bounds depend only on the adversary's
/// parameters, not on the network. Same certificate across topologies.
#[test]
fn bound_is_network_independent() {
    let rows = e5_greedy_stability(3, 12, 2000).expect("legal adversaries");
    let bounds: std::collections::HashSet<_> = rows.iter().map(|r| r.bound).collect();
    assert_eq!(
        bounds.len(),
        1,
        "one bound across all topologies: {bounds:?}"
    );
}
