//! Checkpoint/snapshot schema-versioning and corruption tests: a
//! capture from a different format version must be refused with a
//! typed [`SimError::SchemaMismatch`], and a structurally corrupted
//! payload must fail *closed* — the target engine keeps its exact
//! pre-restore state instead of being partially overwritten.

use std::sync::Arc;

use aqt_graph::{topologies, EdgeId, Graph, Route};
use aqt_protocols::Fifo;
use aqt_sim::{
    checkpoint, fnv1a_u64s, snapshot, AdversaryModelSpec, ConstraintSpec, Engine, EngineConfig,
    Injection, Ratio, SimError, SNAPSHOT_SCHEMA_VERSION, TELEMETRY_SCHEMA_VERSION,
};
use proptest::prelude::*;

/// A length-3 route around `ring(6)` starting at edge `start`.
fn ring_route(g: &Arc<Graph>, start: u64) -> Route {
    let ids = vec![
        EdgeId((start % 6) as u32),
        EdgeId(((start + 1) % 6) as u32),
        EdgeId(((start + 2) % 6) as u32),
    ];
    Route::new(g, ids).expect("contiguous ring edges")
}

/// An engine with a little traffic in flight, so captures are
/// non-trivial.
fn busy_engine(g: &Arc<Graph>) -> Engine<Fifo> {
    let mut eng = Engine::new(Arc::clone(g), Fifo, EngineConfig::default());
    for t in 1..=10u64 {
        eng.step([Injection::new(ring_route(g, t), 0)]).unwrap();
    }
    eng
}

/// A checkpoint stamped with a bumped schema version restores as
/// `SimError::SchemaMismatch` carrying both versions — the fixture for
/// any future `SNAPSHOT_SCHEMA_VERSION` bump.
#[test]
fn bumped_schema_version_fails_restore_with_typed_error() {
    let g = Arc::new(topologies::ring(6));
    let eng = busy_engine(&g);

    let mut ck = checkpoint::checkpoint(&eng);
    ck.snapshot.schema = SNAPSHOT_SCHEMA_VERSION + 1;

    let mut target = Engine::new(Arc::clone(&g), Fifo, EngineConfig::default());
    let before = snapshot::capture(&target);
    match checkpoint::restore(&mut target, &ck) {
        Err(SimError::SchemaMismatch { found, expected }) => {
            assert_eq!(found, SNAPSHOT_SCHEMA_VERSION + 1);
            assert_eq!(expected, SNAPSHOT_SCHEMA_VERSION);
        }
        other => panic!("expected SchemaMismatch, got {other:?}"),
    }
    assert_eq!(
        snapshot::capture(&target),
        before,
        "a refused restore must not touch the engine"
    );

    // The raw snapshot path refuses the same stamp.
    let mut snap = snapshot::capture(&eng);
    snap.schema = SNAPSHOT_SCHEMA_VERSION + 1;
    let mut target = Engine::new(Arc::clone(&g), Fifo, EngineConfig::default());
    assert!(snapshot::restore(&mut target, &snap).is_err());
}

/// Every class of payload corruption is rejected before any engine
/// mutation: after the failed restore the target's state is
/// bit-identical to what it was before.
#[test]
fn corrupted_payloads_fail_closed() {
    let g = Arc::new(topologies::ring(6));
    let eng = busy_engine(&g);
    let good = snapshot::capture(&eng);
    assert!(
        good.buffers.iter().any(|b| !b.is_empty()),
        "fixture needs in-flight packets"
    );
    let busy_edge = good.buffers.iter().position(|b| !b.is_empty()).unwrap();

    // Each corruption is a closure over a fresh copy of the capture.
    type Corruption = Box<dyn Fn(&mut snapshot::Snapshot)>;
    let corruptions: Vec<(&str, Corruption)> = vec![
        (
            "hop out of route range",
            Box::new(move |s| s.buffers[busy_edge][0].hop = 99),
        ),
        (
            "packet stored at the wrong buffer",
            Box::new(move |s| {
                let p = s.buffers[busy_edge][0].clone();
                s.buffers[(busy_edge + 1) % 6].push(p);
            }),
        ),
        (
            "route through a nonexistent edge",
            Box::new(move |s| {
                let ri = s.buffers[busy_edge][0].route as usize;
                let mut route: Vec<EdgeId> = s.routes[ri].to_vec();
                route.push(EdgeId(99));
                // keep hops pointing at the stored edges
                s.routes[ri] = route.into();
            }),
        ),
        (
            "packet referencing a missing route-table entry",
            Box::new(move |s| {
                s.buffers[busy_edge][0].route = s.routes.len() as u32;
            }),
        ),
        (
            "arrival after the snapshot clock",
            Box::new(move |s| s.buffers[busy_edge][0].arrived_at = s.time + 1),
        ),
        (
            "injection after arrival",
            Box::new(move |s| {
                let p = &mut s.buffers[busy_edge][0];
                p.injected_at = p.arrived_at + 1;
            }),
        ),
        (
            "packet id above the watermark",
            Box::new(move |s| s.buffers[busy_edge][0].id = s.next_id + 5),
        ),
        (
            "buffer count does not match the graph",
            Box::new(move |s| {
                s.buffers.push(Vec::new());
            }),
        ),
    ];

    for (what, corrupt) in corruptions {
        let mut snap = good.clone();
        corrupt(&mut snap);
        assert_ne!(snap, good, "{what}: the corruption must change the capture");

        let mut target = busy_engine(&g);
        // Advance the target so a partial restore would be visible.
        target.run_quiet(3).unwrap();
        let before = snapshot::capture(&target);

        let err = snapshot::restore(&mut target, &snap)
            .expect_err(&format!("{what}: corrupt payload must be rejected"));
        assert!(
            err.to_string().contains("corrupt snapshot") || err.to_string().contains("buffers"),
            "{what}: unexpected error text: {err}"
        );
        assert_eq!(
            snapshot::capture(&target),
            before,
            "{what}: failed restore must leave the engine untouched"
        );
    }
}

/// A payload from the pre-interning format (schema 2: routes stored
/// inline per packet, no route table) is refused with
/// `SimError::SchemaMismatch` before any engine mutation. The wire
/// format of schema 2 cannot be represented by today's `Snapshot`
/// struct, so the fixture is a current capture carrying the old stamp —
/// exactly what a resurrected schema-2 checkpoint would present first,
/// and the version gate must fire before any payload interpretation.
#[test]
fn pre_interning_schema_2_payload_is_rejected_without_mutation() {
    let g = Arc::new(topologies::ring(6));
    let eng = busy_engine(&g);

    let mut ck = checkpoint::checkpoint(&eng);
    assert_eq!(ck.snapshot.schema, SNAPSHOT_SCHEMA_VERSION);
    assert_eq!(
        SNAPSHOT_SCHEMA_VERSION, 5,
        "the sharded engine's checkpoint shard stamp bumped the snapshot schema to 5"
    );
    ck.snapshot.schema = 2; // the pre-interning format stamp

    let mut target = busy_engine(&g);
    target.run_quiet(2).unwrap();
    let before = snapshot::capture(&target);
    let routes_before = target.routes().len();
    match checkpoint::restore(&mut target, &ck) {
        Err(SimError::SchemaMismatch { found, expected }) => {
            assert_eq!(found, 2);
            assert_eq!(expected, SNAPSHOT_SCHEMA_VERSION);
        }
        other => panic!("expected SchemaMismatch, got {other:?}"),
    }
    assert_eq!(
        snapshot::capture(&target),
        before,
        "rejected pre-interning payload must not touch the engine"
    );
    assert_eq!(
        target.routes().len(),
        routes_before,
        "no routes may be interned from a rejected payload"
    );

    let mut snap = snapshot::capture(&eng);
    snap.schema = 2;
    let mut target = Engine::new(Arc::clone(&g), Fifo, EngineConfig::default());
    assert!(snapshot::restore(&mut target, &snap).is_err());
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    /// Route-table serialization round-trips: an arbitrary mix of
    /// (shared and distinct) routes seeded into an engine survives
    /// capture -> restore with the canonical route table intact — every
    /// packet resolves to the same edges, and the capture of the
    /// restored engine is bit-identical. The restored engine then steps
    /// identically to the original, so the interned table is not just
    /// stored but *live*.
    #[test]
    fn route_table_roundtrips_through_snapshots(
        seeds in prop::collection::vec(0u64..72, 1..12),
        steps in 0u64..12,
    ) {
        let g = Arc::new(topologies::ring(6));
        let mut eng = Engine::new(Arc::clone(&g), Fifo, EngineConfig::default());
        // decode each scalar into (start 0..6, len 1..=3, cohort n 1..=4)
        for &v in &seeds {
            let (start, len, n) = (v % 6, 1 + (v / 6) % 3, 1 + v / 18);
            let ids: Vec<EdgeId> = (0..len).map(|k| EdgeId(((start + k) % 6) as u32)).collect();
            let route = Route::new(&g, ids).expect("contiguous ring edges");
            eng.seed_cohort(route, start as u32, n).unwrap();
        }
        eng.run_quiet(steps).unwrap();
        let snap = snapshot::capture(&eng);

        // each live distinct route appears exactly once in the table
        let live: std::collections::HashSet<u32> =
            snap.buffers.iter().flatten().map(|p| p.route).collect();
        proptest::prop_assert_eq!(live.len(), snap.routes.len());

        let mut restored = Engine::new(Arc::clone(&g), Fifo, EngineConfig::default());
        snapshot::restore(&mut restored, &snap).unwrap();
        proptest::prop_assert_eq!(&snapshot::capture(&restored), &snap);

        // the restored table is live: both engines advance identically
        eng.run_quiet(6).unwrap();
        restored.run_quiet(6).unwrap();
        proptest::prop_assert_eq!(snapshot::capture(&eng), snapshot::capture(&restored));
    }
}

/// Golden values for the adversary-constraint wire format. These pins
/// are the serialization contract: the canonical `words()` encodings
/// feed scenario fingerprints and checkpoint equality, the `Display`
/// forms land in violation reports and experiment tables, and the
/// `to_rust()` forms are emitted into committed regression tests.
/// Changing any of them silently re-keys every stored fingerprint —
/// bump the schema and update these values deliberately instead.
#[test]
fn constraint_spec_serialized_forms_are_pinned() {
    let rate = ConstraintSpec::Rate(Ratio::new(1, 2));
    let window = ConstraintSpec::Window {
        window: 8,
        rate: Ratio::new(1, 4),
    };
    let burst = ConstraintSpec::BurstLocal {
        rho: Ratio::new(1, 2),
        sigma: 3,
        locality: 8,
    };
    let buffer = ConstraintSpec::BufferBound { bound: 3 };

    // Canonical 5-word encodings: [tag, ...params].
    assert_eq!(rate.words(), [1, 1, 2, 0, 0]);
    assert_eq!(window.words(), [2, 8, 1, 4, 0]);
    assert_eq!(burst.words(), [3, 1, 2, 3, 8]);
    assert_eq!(buffer.words(), [4, 3, 0, 0, 0]);

    // Display forms.
    assert_eq!(rate.to_string(), "rate(1/2)");
    assert_eq!(window.to_string(), "window(w=8, r=1/4)");
    assert_eq!(burst.to_string(), "burst_local(rho=1/2, sigma=3, L=8)");
    assert_eq!(buffer.to_string(), "buffer_bound(B=3)");

    // Emitted Rust forms.
    assert_eq!(rate.to_rust(), "ConstraintSpec::Rate(Ratio::new(1, 2))");
    assert_eq!(
        window.to_rust(),
        "ConstraintSpec::Window { window: 8, rate: Ratio::new(1, 4) }"
    );
    assert_eq!(
        burst.to_rust(),
        "ConstraintSpec::BurstLocal { rho: Ratio::new(1, 2), sigma: 3, locality: 8 }"
    );
    assert_eq!(buffer.to_rust(), "ConstraintSpec::BufferBound { bound: 3 }");

    // Model fingerprints: FNV-1a over [member count] ++ member words,
    // pinned both structurally and as literal values.
    let single = AdversaryModelSpec::rate(Ratio::new(1, 2));
    assert_eq!(single.fingerprint(), fnv1a_u64s([1u64, 1, 1, 2, 0, 0]));
    assert_eq!(single.fingerprint(), 0x3e36_921a_1361_8d06);
    let composed = AdversaryModelSpec::window(8, Ratio::new(1, 4)).and(buffer);
    assert_eq!(composed.fingerprint(), 0x31a9_8b39_6f39_24cf);
    assert_eq!(
        AdversaryModelSpec::burst_local(Ratio::new(1, 2), 3, 8).fingerprint(),
        0xc5a0_7860_9418_b28f
    );
    assert_eq!(
        composed.to_string(),
        "window(w=8, r=1/4) ∘ buffer_bound(B=3)"
    );

    // The schema stamps that gate persisted payloads carrying models.
    assert_eq!(SNAPSHOT_SCHEMA_VERSION, 5);
    assert_eq!(TELEMETRY_SCHEMA_VERSION, 5);
}

/// A checkpoint taken under one adversary model must not restore into
/// an engine validating a different one: validator state would not
/// match the engine's configuration and violations would be computed
/// under a silently different regime. The gate compares full member
/// specs, so even a same-kind parameter drift fails closed.
#[test]
fn checkpoint_with_mismatched_model_fails_closed() {
    let g = Arc::new(topologies::ring(6));
    let spec_a = AdversaryModelSpec::rate(Ratio::new(1, 2));
    let spec_b = AdversaryModelSpec::rate(Ratio::new(1, 3));

    let mut eng = Engine::new(
        Arc::clone(&g),
        Fifo,
        EngineConfig {
            validate: Some(spec_a),
            ..EngineConfig::default()
        },
    );
    eng.step([Injection::new(ring_route(&g, 1), 0)]).unwrap();
    let ck = checkpoint::checkpoint(&eng);

    for other in [Some(spec_b), None] {
        let mut target = Engine::new(
            Arc::clone(&g),
            Fifo,
            EngineConfig {
                validate: other.clone(),
                ..EngineConfig::default()
            },
        );
        let before = snapshot::capture(&target);
        let err = checkpoint::restore(&mut target, &ck).unwrap_err();
        assert!(matches!(err, SimError::Checkpoint(_)), "got {err:?}");
        assert!(
            err.to_string().contains("adversary-model"),
            "error names the gate: {err}"
        );
        assert_eq!(
            snapshot::capture(&target),
            before,
            "refused model-mismatch restore must not touch the engine ({other:?})"
        );
    }

    // Matching spec restores fine.
    let mut target = Engine::new(
        Arc::clone(&g),
        Fifo,
        EngineConfig {
            validate: Some(AdversaryModelSpec::rate(Ratio::new(1, 2))),
            ..EngineConfig::default()
        },
    );
    checkpoint::restore(&mut target, &ck).unwrap();
    assert_eq!(target.time(), eng.time());
}

/// Closed-loop checkpoints round-trip through the full stack: capture
/// a mid-storm `WorkloadCheckpoint`, restore it into a fresh driver,
/// and resumed execution is bit-identical to the uninterrupted run —
/// client state machines, retry timers, RNG, admission queue, the
/// request ledger, and the engine underneath.
#[test]
fn workload_checkpoint_resumes_mid_storm_bit_identically() {
    use aqt_workload::{ClosedLoop, RetryPolicy, Shed};

    // A stormy configuration (immediate retries through an outage), so
    // the capture lands with non-trivial queue + retry-timer state.
    let mut cfg = aqt_workload::baseline_config(0xCCED);
    cfg.clients.retry = RetryPolicy::Immediate;
    cfg.clients.timeout = 5;
    cfg.service.shed = Shed::RejectOldest;
    cfg.service.pause = Some((40, 70));

    let mut a = ClosedLoop::on_line(cfg.clone());
    a.run(55).unwrap();
    let ck = a.checkpoint();
    assert_eq!(ck.version, aqt_workload::WORKLOAD_SCHEMA_VERSION);
    assert!(
        ck.state.counters.attempts_retried > 0,
        "the fixture must capture a storm in progress"
    );
    a.run(200).unwrap();

    let mut b = ClosedLoop::on_line(cfg);
    b.restore(&ck).unwrap();
    assert_eq!(b.state(), ck.state, "restore lands exactly on the capture");
    b.run(200).unwrap();

    assert_eq!(a.state(), b.state(), "resumed run diverged");
    assert_eq!(a.counters(), b.counters());
    assert_eq!(
        snapshot::capture(a.engine()),
        snapshot::capture(b.engine()),
        "the engines underneath must also be bit-identical"
    );
}

/// A workload checkpoint from an unknown schema version is refused
/// with the typed `WorkloadError::SchemaMismatch` before any state —
/// workload or engine — is touched, and the embedded engine
/// checkpoint's own version gate still fires through the workload
/// restore path.
#[test]
fn workload_checkpoint_schema_gates_fail_closed() {
    use aqt_workload::{ClosedLoop, WorkloadError, WORKLOAD_SCHEMA_VERSION};

    let cfg = aqt_workload::baseline_config(0xFA11);
    let mut a = ClosedLoop::on_line(cfg.clone());
    a.run(80).unwrap();

    // Unknown workload schema version.
    let mut ck = a.checkpoint();
    ck.version = WORKLOAD_SCHEMA_VERSION + 1;
    let mut b = ClosedLoop::on_line(cfg.clone());
    let state_before = b.state();
    let engine_before = snapshot::capture(b.engine());
    match b.restore(&ck) {
        Err(WorkloadError::SchemaMismatch { found, expected }) => {
            assert_eq!(found, WORKLOAD_SCHEMA_VERSION + 1);
            assert_eq!(expected, WORKLOAD_SCHEMA_VERSION);
        }
        other => panic!("expected SchemaMismatch, got {other:?}"),
    }
    assert_eq!(b.state(), state_before, "refused restore must not mutate");
    assert_eq!(snapshot::capture(b.engine()), engine_before);

    // Unknown *engine* snapshot version inside a valid workload stamp:
    // the inner gate fires and surfaces as the same typed error.
    let mut ck = a.checkpoint();
    ck.engine.snapshot.schema = SNAPSHOT_SCHEMA_VERSION + 1;
    let mut b = ClosedLoop::on_line(cfg);
    let engine_before = snapshot::capture(b.engine());
    match b.restore(&ck) {
        Err(WorkloadError::SchemaMismatch { found, expected }) => {
            assert_eq!(found, SNAPSHOT_SCHEMA_VERSION + 1);
            assert_eq!(expected, SNAPSHOT_SCHEMA_VERSION);
        }
        other => panic!("expected SchemaMismatch, got {other:?}"),
    }
    assert_eq!(
        snapshot::capture(b.engine()),
        engine_before,
        "the engine gate must fire before any engine mutation"
    );
}

/// The checkpoint path routes the same payload validation: a corrupted
/// checkpoint is refused with `SimError::Checkpoint` and no partial
/// state lands in the engine.
#[test]
fn corrupted_checkpoint_payload_fails_closed() {
    let g = Arc::new(topologies::ring(6));
    let eng = busy_engine(&g);
    let mut ck = checkpoint::checkpoint(&eng);
    let busy_edge = ck
        .snapshot
        .buffers
        .iter()
        .position(|b| !b.is_empty())
        .expect("traffic in flight");
    ck.snapshot.buffers[busy_edge][0].hop = 99;

    let mut target = Engine::new(Arc::clone(&g), Fifo, EngineConfig::default());
    let before = snapshot::capture(&target);
    let err = checkpoint::restore(&mut target, &ck).unwrap_err();
    assert!(matches!(err, SimError::Checkpoint(_)), "got {err:?}");
    assert_eq!(snapshot::capture(&target), before);
}
