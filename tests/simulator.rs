//! Cross-crate simulator behaviour: protocols driving the engine
//! end-to-end, parallel sweep determinism, and FIFO-specific ordering
//! facts the instability construction relies on.

use std::sync::Arc;

use aqt_graph::{topologies, EdgeId, Route};
use aqt_protocols::{by_name, protocol_names, Fifo, Lifo, Lis};
use aqt_sim::engine::Injection;
use aqt_sim::parallel::par_map;
use aqt_sim::{Engine, EngineConfig};

/// Three packets seeded at one edge leave in seed order under FIFO,
/// reverse order under LIFO, injection-time order under LIS.
#[test]
fn protocol_orderings_end_to_end() {
    let g = Arc::new(topologies::line(1));
    let e = g.edge_ids().next().unwrap();
    let route = Route::single(&g, e).unwrap();

    // FIFO: absorption order = arrival order (ids ascending).
    let mut eng = Engine::new(Arc::clone(&g), Fifo, EngineConfig::default());
    for tag in 0..3 {
        eng.seed(route.clone(), tag).unwrap();
    }
    let mut order = Vec::new();
    for _ in 0..3 {
        order.push(eng.queue_iter(e).next().unwrap().tag);
        eng.run_quiet(1).unwrap();
    }
    assert_eq!(order, vec![0, 1, 2]);

    // LIFO: the engine sends the back of the queue each step.
    let mut eng = Engine::new(Arc::clone(&g), Lifo, EngineConfig::default());
    for tag in 0..3 {
        eng.seed(route.clone(), tag).unwrap();
    }
    // after one step the last-seeded packet (tag 2) is gone
    eng.run_quiet(1).unwrap();
    let tags: Vec<u32> = eng.queue_iter(e).map(|p| p.tag).collect();
    assert_eq!(tags, vec![0, 1]);

    // LIS prefers the earliest injection: inject late packet, seed old.
    let mut eng = Engine::new(Arc::clone(&g), Lis, EngineConfig::default());
    eng.seed(route.clone(), 7).unwrap(); // injected_at = 0
    eng.step([Injection::new(route.clone(), 9)]).unwrap(); // t = 1, old seed sent
                                                           // at t=1 the seed (older) was sent; the new packet remains
    let tags: Vec<u32> = eng.queue_iter(e).map(|p| p.tag).collect();
    assert_eq!(tags, vec![9]);
}

/// The FIFO thinning fact behind Claim 3.9: when two rate streams
/// share an edge under FIFO, throughput splits proportionally to
/// arrival rates. Old packets arriving at rate 1 against singles
/// injected at rate r cross at rate ≈ 1/(1+r).
#[test]
fn fifo_thinning_splits_throughput() {
    let g = Arc::new(topologies::line(2));
    let edges: Vec<EdgeId> = g.edge_ids().collect();
    let long = Route::new(&g, edges.clone()).unwrap();
    let single = Route::single(&g, edges[1]).unwrap();
    let mut eng = Engine::new(Arc::clone(&g), Fifo, EngineConfig::default());
    // "old" packets: enter e1 at rate 1 (fed from a long queue at e0)
    for _ in 0..600 {
        eng.seed(long.clone(), 1).unwrap();
    }
    // singles on e1 at rate r = 3/4 (floor pattern)
    let mut injected = 0u64;
    let r = aqt_sim::Ratio::new(3, 4);
    for k in 1..=400u64 {
        let want = r.floor_mul(k);
        let inj = if want > injected {
            injected = want;
            vec![Injection::new(single.clone(), 2)]
        } else {
            vec![]
        };
        eng.step(inj).unwrap();
    }
    // olds crossed e1 at rate ≈ 1/(1+r) = 4/7: of ~400 crossings,
    // olds ≈ 228. Olds absorbed = seeded − still live.
    let live_olds = eng.packets().filter(|p| p.tag == 1).count() as u64;
    let olds_absorbed = 600 - live_olds;
    let expected = 400.0 / (1.0 + 0.75);
    let rel = olds_absorbed as f64 / expected;
    assert!(
        (0.93..=1.07).contains(&rel),
        "old throughput {olds_absorbed} vs expected {expected}"
    );
}

/// Identical runs produce identical metrics for every protocol
/// (the whole simulator is deterministic).
#[test]
fn runs_are_deterministic() {
    for &name in protocol_names() {
        let run = |seed: u64| {
            let g = Arc::new(topologies::torus(3, 3));
            let routes = aqt_adversary::stochastic::random_routes(&g, 3, 16, seed);
            let mut adv = aqt_adversary::stochastic::SaturatingAdversary::new(
                &g,
                8,
                aqt_sim::Ratio::new(1, 4),
                routes,
                aqt_adversary::stochastic::InjectionStyle::Burst,
                99,
            );
            let mut eng = Engine::new(
                Arc::clone(&g),
                by_name(name, 5).unwrap(),
                EngineConfig::default(),
            );
            for t in 1..=500 {
                eng.step(adv.injections_for(t)).unwrap();
            }
            (
                eng.metrics().injected(),
                eng.metrics().absorbed(),
                eng.metrics().max_buffer_wait(),
                eng.metrics().max_queue(),
            )
        };
        assert_eq!(run(3), run(3), "{name} must be deterministic");
    }
}

/// par_map runs real simulations concurrently and preserves order.
#[test]
fn parallel_sweep_matches_sequential() {
    let rates: Vec<u64> = (2..10).collect();
    let work = |den: u64| {
        let g = Arc::new(topologies::ring(6));
        let e = g.edge_ids().next().unwrap();
        let route = Route::single(&g, e).unwrap();
        let r = aqt_sim::Ratio::new(1, den);
        let mut eng = Engine::new(Arc::clone(&g), Fifo, EngineConfig::default());
        let mut injected = 0u64;
        for k in 1..=1000u64 {
            let want = r.floor_mul(k);
            let inj = if want > injected {
                injected = want;
                vec![Injection::new(route.clone(), 0)]
            } else {
                vec![]
            };
            eng.step(inj).unwrap();
        }
        eng.metrics().absorbed()
    };
    let sequential: Vec<u64> = rates.iter().map(|&d| work(d)).collect();
    let parallel = par_map(rates, 4, |_, d| work(d));
    assert_eq!(sequential, parallel);
}
