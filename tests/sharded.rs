//! The sharded engine must be invisible in the results: for any shard
//! count and any partition of the edges, the trajectory — snapshot,
//! metrics, fault log, telemetry sums — is bit-identical to the
//! sequential pipeline. These tests are the license for in-run
//! parallelism; if one fails, concurrency changed the model.

use std::sync::Arc;

use aqt_graph::{topologies, EdgeId, Graph, Route};
use aqt_protocols::registry::by_name;
use aqt_sim::{
    snapshot, Engine, EngineConfig, EngineError, FaultPlan, Injection, Metrics, Protocol, Schedule,
    ShardPlan, ShardStamp, TelemetryConfig,
};
use proptest::prelude::*;

/// The bundled protocols with a declared [`aqt_sim::Discipline`] fast
/// path — everything except RANDOM, whose `select` is stateful and
/// therefore sequential-only (see [`Engine::set_shards`]).
const SHARDABLE: [&str; 8] = ["FIFO", "LIFO", "LIS", "NIS", "FTG", "NTG", "FFS", "NTS"];

/// A length-3 route around `ring(6)` starting at edge `start`.
fn ring_route(g: &Arc<Graph>, start: u64) -> Route {
    let ids = vec![
        EdgeId((start % 6) as u32),
        EdgeId(((start + 1) % 6) as u32),
        EdgeId(((start + 2) % 6) as u32),
    ];
    Route::new(g, ids).expect("contiguous ring edges")
}

fn config() -> EngineConfig {
    EngineConfig {
        sample_every: 3,
        ..Default::default()
    }
}

/// Drive steps `from+1 ..= to` (engine time), injecting per the
/// decoded plan: at step `t`, one packet for every entry `(t, start)`
/// in `inj`.
fn drive(
    eng: &mut Engine<Box<dyn Protocol>>,
    g: &Arc<Graph>,
    inj: &[(u64, u64)],
    from: u64,
    to: u64,
) {
    for t in (from + 1)..=to {
        let packets: Vec<Injection> = inj
            .iter()
            .filter(|&&(at, _)| at == t)
            .map(|&(_, start)| Injection::new(ring_route(g, start), start as u32))
            .collect();
        eng.step(packets).unwrap();
    }
}

fn assert_counters_equal(a: &Metrics, b: &Metrics) {
    assert_eq!(a.injected(), b.injected());
    assert_eq!(a.absorbed(), b.absorbed());
    assert_eq!(a.dropped(), b.dropped());
    assert_eq!(a.duplicated(), b.duplicated());
    assert_eq!(a.max_buffer_wait(), b.max_buffer_wait());
    assert_eq!(a.max_latency(), b.max_latency());
    assert_eq!(a.max_queue_per_edge(), b.max_queue_per_edge());
    assert_eq!(a.crossings_per_edge(), b.crossings_per_edge());
    assert_eq!(a.series(), b.series());
}

/// Decode a partition choice: 0 = contiguous, 1 = striped, anything
/// else = the raw per-edge assignment in `raw` (mod `count`).
fn decode_plan(kind: u8, raw: &[u32], edge_count: usize, count: u32) -> ShardPlan {
    match kind {
        0 => ShardPlan::contiguous(edge_count, count as usize),
        1 => ShardPlan::striped(edge_count, count as usize),
        _ => {
            let shard_of: Vec<u32> = (0..edge_count)
                .map(|e| raw.get(e).copied().unwrap_or(e as u32) % count)
                .collect();
            ShardPlan::new(shard_of, count).expect("assignments in range")
        }
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    /// Random schedules x shardable protocols x random fault plans x
    /// any shard count x any partition: the sharded engine produces
    /// the same snapshot, metrics, fault log, and telemetry sums as
    /// the sequential one. Fault-active steps exercise the sequential
    /// fallback inside an otherwise sharded run.
    #[test]
    fn sharding_is_invisible_on_random_runs(
        proto in 0usize..8,
        shards in 2u32..=8,
        part_kind in 0u8..3,
        part_raw in prop::collection::vec(0u32..8, 6),
        inj_raw in prop::collection::vec(0u64..360, 0..40),
        drops in prop::collection::vec(0u64..300, 0..4),
        dups in prop::collection::vec(0u64..300, 0..4),
        outage in 0u64..300,
        outage_len in 0u64..8,
        burst_at in 1u64..50,
        burst_n in 0usize..6,
    ) {
        let g = Arc::new(topologies::ring(6));
        let name = SHARDABLE[proto];
        let inj: Vec<(u64, u64)> = inj_raw.iter().map(|&v| (1 + v / 6, v % 6)).collect();

        let mut plan = FaultPlan::new();
        for &d in &drops {
            plan = plan.with_drop(EdgeId((d % 6) as u32), 1 + d / 6);
        }
        for &d in &dups {
            plan = plan.with_duplicate(EdgeId((d % 6) as u32), 1 + d / 6);
        }
        let from = 1 + outage / 6;
        plan = plan.with_outage(EdgeId((outage % 6) as u32), from, from + outage_len);
        if burst_n > 0 {
            plan = plan.with_burst(
                burst_at,
                vec![Injection::new(ring_route(&g, burst_at), 99); burst_n],
            );
        }

        let mut sharded = Engine::new(Arc::clone(&g), by_name(name, 11).unwrap(), config());
        let mut seq = Engine::new(Arc::clone(&g), by_name(name, 11).unwrap(), config());
        let shard_plan = decode_plan(part_kind, &part_raw, 6, shards);
        sharded.set_shards(shard_plan).unwrap();
        prop_assert_eq!(sharded.shard_count(), shards);
        sharded.install_faults(plan.clone()).unwrap();
        seq.install_faults(plan).unwrap();
        sharded.attach_telemetry(TelemetryConfig::default().with_window(16));
        seq.attach_telemetry(TelemetryConfig::default().with_window(16));

        drive(&mut sharded, &g, &inj, 0, 70);
        drive(&mut seq, &g, &inj, 0, 70);

        prop_assert_eq!(snapshot::capture(&sharded), snapshot::capture(&seq));
        prop_assert_eq!(sharded.fault_log(), seq.fault_log());
        assert_counters_equal(sharded.metrics(), seq.metrics());
        // Window records are deltas of these totals, so equal totals
        // at every window boundary ⇔ equal window sums. The shard
        // observability quartet is *about* the execution strategy, not
        // the trajectory, so it legitimately differs: normalize it
        // away after checking it tells the truth on each side.
        let mut sharded_c = *sharded.telemetry().counters();
        let seq_c = *seq.telemetry().counters();
        prop_assert!(sharded_c.shard_steps > 0);
        prop_assert_eq!(sharded_c.shard_steps + sharded_c.shard_seq_fallbacks, 70);
        prop_assert_eq!(seq_c.shard_steps, 0);
        prop_assert_eq!(seq_c.shard_seq_fallbacks, 0);
        prop_assert_eq!(seq_c.shard_msgs_merged, 0);
        sharded_c.shard_steps = 0;
        sharded_c.shard_seq_fallbacks = 0;
        sharded_c.shard_msgs_merged = 0;
        sharded_c.shard_barrier_ns = 0;
        prop_assert_eq!(sharded_c, seq_c);

        // packet conservation, independently recounted on the sharded run
        let live: u64 = g.edge_ids().map(|e| sharded.queue_len(e) as u64).sum();
        let m = sharded.metrics();
        prop_assert_eq!(m.injected() + m.duplicated(), m.absorbed() + m.dropped() + live);
    }

    /// Resharding mid-run (including dropping back to sequential) never
    /// changes the trajectory: the partition is representation, not
    /// state.
    #[test]
    fn resharding_mid_run_is_invisible(
        proto in 0usize..8,
        inj_raw in prop::collection::vec(0u64..240, 0..30),
        first in 2u32..=4,
        second in 1u32..=8,
    ) {
        let g = Arc::new(topologies::ring(6));
        let name = SHARDABLE[proto];
        let inj: Vec<(u64, u64)> = inj_raw.iter().map(|&v| (1 + v / 6, v % 6)).collect();

        let mut resharded = Engine::new(Arc::clone(&g), by_name(name, 11).unwrap(), config());
        let mut seq = Engine::new(Arc::clone(&g), by_name(name, 11).unwrap(), config());
        resharded.set_shards(ShardPlan::striped(6, first as usize)).unwrap();
        drive(&mut resharded, &g, &inj, 0, 20);
        resharded.set_shards(ShardPlan::contiguous(6, second as usize)).unwrap();
        drive(&mut resharded, &g, &inj, 20, 40);

        drive(&mut seq, &g, &inj, 0, 40);

        prop_assert_eq!(snapshot::capture(&resharded), snapshot::capture(&seq));
        assert_counters_equal(resharded.metrics(), seq.metrics());
    }
}

/// The lockstep differential oracle (which replays every step through
/// the naive reference engine) stays green when the optimized side
/// steps in shards — at 2, 4, and 8 shards, through congestion and a
/// full drain.
#[test]
fn lockstep_oracle_green_at_2_4_8_shards() {
    let g = Arc::new(topologies::ring(6));
    for &name in &["FIFO", "LIS", "NTS"] {
        for shards in [2usize, 4, 8] {
            let mut eng = Engine::new(Arc::clone(&g), by_name(name, 5).unwrap(), config());
            eng.set_shards(ShardPlan::striped(6, shards)).unwrap();
            eng.attach_oracle(by_name(name, 5).unwrap(), 1);
            for t in 1..=40u64 {
                let inj: Vec<Injection> = (0..(t % 4))
                    .map(|k| Injection::new(ring_route(&g, t + k), t as u32))
                    .collect();
                eng.step(inj)
                    .unwrap_or_else(|e| panic!("{name} @ {shards} shards: {e}"));
            }
            eng.run_quiet(60)
                .unwrap_or_else(|e| panic!("{name} @ {shards} shards drain: {e}"));
            assert_eq!(
                eng.backlog(),
                0,
                "{name} @ {shards} shards: drain must complete"
            );
        }
    }
}

/// A recorded schedule replays to the same content-hash-pinned
/// trajectory under every shard count: the schedule hash pins the
/// input, the snapshot pins the output.
#[test]
fn recorded_schedule_replays_identically_under_any_shard_count() {
    let g = Arc::new(topologies::ring(6));
    let mut sched = Schedule::new();
    for t in 1..=30u64 {
        for k in 0..(t % 3) {
            sched.inject_at(t, ring_route(&g, t + k), t as u32);
        }
    }
    let pinned_input = sched.content_hash();

    let run = |shards: usize| {
        let mut eng = Engine::new(Arc::clone(&g), by_name("FIFO", 5).unwrap(), config());
        if shards > 1 {
            eng.set_shards(ShardPlan::auto(&g, shards)).unwrap();
        }
        sched.replay(&mut eng, 50).unwrap();
        eng
    };
    let baseline = run(1);
    for shards in [2usize, 4, 8] {
        let eng = run(shards);
        assert_eq!(sched.content_hash(), pinned_input, "schedule mutated");
        assert_eq!(
            snapshot::capture(&eng),
            snapshot::capture(&baseline),
            "{shards} shards diverged from sequential"
        );
        assert_counters_equal(eng.metrics(), baseline.metrics());
    }
}

/// E18 at smoke scale: the experiment's own determinism verdict holds
/// at 2, 4, and 8 shards, and the fingerprints agree with it.
#[test]
fn e18_smoke_is_bit_identical_at_2_4_8_shards() {
    let report = aqt_core::experiments::e18_smoke(&[2, 4, 8]).expect("smoke run");
    assert_eq!(report.rows[0].shards, 1);
    let pinned = report.rows[0].trajectory_hash;
    for row in &report.rows {
        assert!(row.identical, "{} shards diverged", row.shards);
        assert_eq!(row.trajectory_hash, pinned, "{} shards: hash", row.shards);
    }
}

/// `set_shards` guards: a protocol without a `Discipline` fast path
/// (RANDOM's `select` is stateful) is rejected for count > 1; a
/// wrong-size plan is rejected; count 1 normalizes to the sequential
/// stamp.
#[test]
fn set_shards_guards_and_normalizes() {
    let g = Arc::new(topologies::ring(6));

    let mut random = Engine::new(Arc::clone(&g), by_name("RANDOM", 5).unwrap(), config());
    assert!(matches!(
        random.set_shards(ShardPlan::striped(6, 2)),
        Err(EngineError::Usage(_))
    ));
    // ...but RANDOM runs fine at count 1 (no fast path needed).
    random.set_shards(ShardPlan::sequential(6)).unwrap();
    assert_eq!(random.shard_stamp(), ShardStamp::SEQUENTIAL);

    let mut fifo = Engine::new(Arc::clone(&g), by_name("FIFO", 5).unwrap(), config());
    assert!(matches!(
        fifo.set_shards(ShardPlan::striped(5, 2)),
        Err(EngineError::Usage(_))
    ));
    fifo.set_shards(ShardPlan::contiguous(6, 1)).unwrap();
    assert_eq!(fifo.shard_count(), 1);
    assert_eq!(fifo.shard_stamp(), ShardStamp::SEQUENTIAL);
    fifo.set_shards(ShardPlan::contiguous(6, 3)).unwrap();
    assert_eq!(fifo.shard_count(), 3);
    assert_ne!(fifo.shard_stamp(), ShardStamp::SEQUENTIAL);
}
