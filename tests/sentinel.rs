//! Runtime-verification integration tests: the sentinel's invariants
//! stay silent on known-good runs (the Theorem 3.17 replay, a stable
//! `r ≤ 1/d` cell with its theorem certificate), catch deliberately
//! corrupted state within one cadence window with a replayable repro
//! bundle, survive checkpoint/resume, and feed the sweep harness's
//! quarantine lane. The lockstep differential oracle must match the
//! optimized pipeline bit-for-bit on the recorded instability run and
//! catch a protocol whose declared discipline lies about its `select`.

use std::collections::VecDeque;
use std::sync::Arc;

use aqt_core::instability::{InstabilityConfig, InstabilityConstruction};
use aqt_graph::{topologies, EdgeId, Graph, Route};
use aqt_protocols::{classify, Fifo};
use aqt_sim::{
    checkpoint, snapshot, Discipline, Engine, EngineConfig, EngineError, Injection, InvariantKind,
    Packet, Protocol, Schedule, SentinelConfig, SimError, SweepConfig, Time,
};

/// A length-3 route around `ring(6)` starting at edge `start`.
fn ring_route(g: &Arc<Graph>, start: u64) -> Route {
    let ids = vec![
        EdgeId((start % 6) as u32),
        EdgeId(((start + 1) % 6) as u32),
        EdgeId(((start + 2) % 6) as u32),
    ];
    Route::new(g, ids).expect("contiguous ring edges")
}

/// The recorded Theorem 3.17 run used by several tests below.
fn recorded_instability() -> (
    InstabilityConstruction,
    aqt_core::instability::InstabilityRun,
) {
    let mut cfg = InstabilityConfig::new(1, 4);
    cfg.iterations = 1;
    cfg.s0_safety = 1.0;
    cfg.m_override = Some(4);
    cfg.record_ops = true;
    cfg.validate = false;
    let construction = InstabilityConstruction::new(cfg);
    let run = construction.run().expect("legal adversary");
    (construction, run)
}

/// The instability replay with every invariant at `Halt` and the
/// differential oracle diffing at `k = 1` must finish violation-free
/// and land on exactly the backlog the driver measured. This is the
/// ISSUE's "zero violations on the Theorem 3.17 replay" gate and the
/// "oracle at k=1 matches bit-for-bit" gate in one run.
#[test]
fn instability_replay_is_clean_under_full_sentinel_and_oracle() {
    let (construction, run) = recorded_instability();
    let graph = Arc::new(construction.geps.graph.clone());
    let ingress = construction.geps.ingress();
    let unit = Route::single(&graph, ingress).expect("unit route");

    let mut eng = Engine::new(Arc::clone(&graph), Fifo, EngineConfig::default());
    eng.attach_sentinel(SentinelConfig::all_halt().with_cadence(16).with_seed(1));
    eng.attach_oracle(Box::new(Fifo), 1);
    for _ in 0..run.s_star {
        eng.seed(unit.clone(), 0).expect("seeding");
    }
    let sched: Schedule = run.recorded.clone();
    sched
        .run(&mut eng, run.total_steps)
        .expect("no invariant may trip on a known-good run");

    let s_end = run.iterations.last().expect("one iteration").s_end;
    assert_eq!(eng.backlog(), s_end);
    let sentinel = eng.sentinel().expect("attached");
    assert!(sentinel.is_clean());
    assert!(sentinel.checks_run() > 0, "the sentinel must actually run");
}

/// A stable cell: FIFO (time-priority, `d = 3`) under a `(w=8, r=1/4)`
/// injection pattern, with the Theorem 4.3 certificate (`⌈wr⌉ = 2`)
/// enforced at `Halt`. The run must stay clean — the measured waits
/// never exceed the theorem bound.
#[test]
fn stability_cell_is_clean_under_certificate() {
    let g = Arc::new(topologies::ring(6));
    let spec = classify(&Fifo).certificate_spec(8, aqt_sim::Ratio::new(1, 4), 3, 0);
    assert_eq!(spec.bound(), Some(2), "⌈8·(1/4)⌉");

    let mut eng = Engine::new(Arc::clone(&g), Fifo, EngineConfig::default());
    eng.attach_sentinel(
        SentinelConfig::all_halt()
            .with_cadence(16)
            .with_certificate(spec),
    );
    eng.attach_oracle(Box::new(Fifo), 16);
    // One route every 4 steps, rotating start: every edge appears at
    // most twice (= ⌊8·1/4⌋) in any 8-step window — a legal (w,r)
    // pattern, verified by the validator proptests elsewhere.
    for t in 1..=2048u64 {
        if t % 4 == 0 {
            eng.step([Injection::new(ring_route(&g, t / 4), 0)])
                .expect("stable cell must stay clean");
        } else {
            eng.step(std::iter::empty::<Injection>())
                .expect("stable cell must stay clean");
        }
    }
    assert!(eng.sentinel().unwrap().is_clean());
    assert!(eng.metrics().max_buffer_wait() <= 2);
    assert!(eng.metrics().absorbed() > 0);
}

/// Deliberate corruption: restore a snapshot whose `injected` counter
/// was tampered with. The conservation invariant must halt the run
/// within one cadence window, and the attached repro bundle must
/// replay — restoring its snapshot reproduces the inconsistent books.
#[test]
fn tampered_counter_is_caught_within_one_cadence_window() {
    let g = Arc::new(topologies::ring(6));
    let cadence: Time = 16;
    let mut eng = Engine::new(Arc::clone(&g), Fifo, EngineConfig::default());
    eng.attach_sentinel(
        SentinelConfig::all_halt()
            .with_cadence(cadence)
            .with_seed(42),
    );
    for t in 1..=40u64 {
        eng.step([Injection::new(ring_route(&g, t), 0)]).unwrap();
    }

    // Tamper: books now claim 3 phantom injections.
    let mut snap = snapshot::capture(&eng);
    snap.injected += 3;
    snapshot::restore(&mut eng, &snap).expect("payload is structurally valid");
    let tampered_at = eng.time();

    let mut caught = None;
    for _ in 0..=cadence {
        match eng.step(std::iter::empty::<Injection>()) {
            Ok(()) => {}
            Err(EngineError::Invariant(report)) => {
                caught = Some(*report);
                break;
            }
            Err(other) => panic!("unexpected error: {other}"),
        }
    }
    let report = caught.expect("conservation must trip within one cadence window");
    assert_eq!(report.violation.kind, InvariantKind::Conservation);
    assert!(report.violation.time <= tampered_at + cadence);
    assert_eq!(report.bundle.seed, Some(42));
    assert_eq!(report.bundle.step, report.violation.time);

    // Replayability: the bundle's snapshot restores into a fresh
    // engine and exhibits the same broken books.
    let mut fresh = Engine::new(Arc::clone(&g), Fifo, EngineConfig::default());
    snapshot::restore(&mut fresh, &report.bundle.snapshot).unwrap();
    // Recount the live packets from the buffers (the derived backlog
    // counter would balance trivially — it is computed from the very
    // counters that were tampered with).
    let live: u64 = g.edge_ids().map(|e| fresh.queue_len(e) as u64).sum();
    let m = fresh.metrics();
    assert_ne!(
        m.injected() + m.duplicated(),
        m.absorbed() + m.dropped() + live,
        "the repro bundle must reproduce the inconsistency"
    );
}

/// At `Quarantine` severity the same corruption is recorded — with its
/// repro bundle — but the run continues to completion.
#[test]
fn quarantine_severity_accumulates_without_halting() {
    let g = Arc::new(topologies::ring(6));
    let mut eng = Engine::new(Arc::clone(&g), Fifo, EngineConfig::default());
    eng.attach_sentinel(SentinelConfig::quarantine_all().with_cadence(8));
    for t in 1..=20u64 {
        eng.step([Injection::new(ring_route(&g, t), 0)]).unwrap();
    }
    let mut snap = snapshot::capture(&eng);
    snap.injected += 1;
    snapshot::restore(&mut eng, &snap).unwrap();
    for _ in 0..32u64 {
        eng.step(std::iter::empty::<Injection>())
            .expect("quarantine never halts");
    }
    let sentinel = eng.sentinel().unwrap();
    assert!(!sentinel.is_clean());
    let q = sentinel.quarantined();
    assert!(!q.is_empty());
    assert_eq!(q[0].violation.kind, InvariantKind::Conservation);
    // Repeated cadences re-observe the standing violation.
    assert!(q.len() >= 2, "got {} quarantined reports", q.len());
}

/// Sentinel state (checks run, baselines) survives checkpoint/resume,
/// and a checkpoint that disagrees with the engine about whether a
/// sentinel is attached is rejected.
#[test]
fn sentinel_state_survives_checkpoint_resume() {
    let g = Arc::new(topologies::ring(6));
    let cfg = SentinelConfig::all_halt().with_cadence(8);
    let mut eng = Engine::new(Arc::clone(&g), Fifo, EngineConfig::default());
    eng.attach_sentinel(cfg.clone());
    for t in 1..=32u64 {
        eng.step([Injection::new(ring_route(&g, t), 0)]).unwrap();
    }
    let checks_before = eng.sentinel().unwrap().checks_run();
    assert!(checks_before > 0);
    let ck = checkpoint::checkpoint(&eng);

    // Resume pattern: same construction (sentinel attached), restore.
    let mut resumed = Engine::new(Arc::clone(&g), Fifo, EngineConfig::default());
    resumed.attach_sentinel(cfg.clone());
    checkpoint::restore(&mut resumed, &ck).unwrap();
    assert_eq!(resumed.sentinel().unwrap().checks_run(), checks_before);
    assert_eq!(
        resumed.sentinel().unwrap().state(),
        eng.sentinel().unwrap().state()
    );
    // The resumed run keeps verifying cleanly.
    for t in 33..=64u64 {
        resumed
            .step([Injection::new(ring_route(&g, t), 0)])
            .unwrap();
    }
    assert!(resumed.sentinel().unwrap().checks_run() > checks_before);

    // Presence mismatch: engine without a sentinel cannot restore a
    // checkpoint that carries sentinel state (and vice versa).
    let mut bare = Engine::new(Arc::clone(&g), Fifo, EngineConfig::default());
    let err = checkpoint::restore(&mut bare, &ck).unwrap_err();
    assert!(matches!(err, SimError::Checkpoint(_)), "got {err:?}");

    let plain_ck =
        checkpoint::checkpoint(&Engine::new(Arc::clone(&g), Fifo, EngineConfig::default()));
    let mut armed = Engine::new(Arc::clone(&g), Fifo, EngineConfig::default());
    armed.attach_sentinel(cfg);
    let err = checkpoint::restore(&mut armed, &plain_ck).unwrap_err();
    assert!(matches!(err, SimError::Checkpoint(_)), "got {err:?}");
}

/// `run_sim_sweep`: a job whose engine halts on an invariant breach
/// lands in the quarantine lane with its repro bundle attached; the
/// healthy jobs still return results.
#[test]
fn sim_sweep_quarantines_invariant_breaches_with_bundles() {
    let tampers: Vec<bool> = vec![false, true, false, false];
    let report = aqt_sim::run_sim_sweep(tampers, &SweepConfig::default(), |_, &tamper| {
        let g = Arc::new(topologies::ring(6));
        let mut eng = Engine::new(Arc::clone(&g), Fifo, EngineConfig::default());
        eng.attach_sentinel(SentinelConfig::all_halt().with_cadence(8).with_seed(7));
        for t in 1..=16u64 {
            eng.step([Injection::new(ring_route(&g, t), 0)])
                .map_err(SimError::from)?;
        }
        if tamper {
            let mut snap = snapshot::capture(&eng);
            snap.injected += 2;
            snapshot::restore(&mut eng, &snap).unwrap();
        }
        for _ in 0..16u64 {
            eng.step(std::iter::empty::<Injection>())
                .map_err(SimError::from)?;
        }
        Ok(eng.metrics().absorbed())
    });

    assert_eq!(report.results().count(), 3, "healthy jobs complete");
    let q = report.quarantined();
    assert_eq!(q.len(), 1);
    assert_eq!(q[0].index, 1);
    let bundle = q[0]
        .bundle
        .as_ref()
        .expect("invariant breaches carry a bundle");
    assert_eq!(bundle.seed, Some(7));
    assert!(
        q[0].message.contains("conservation"),
        "got: {}",
        q[0].message
    );
}

/// A protocol whose `discipline()` fast path contradicts its
/// `select()`: the optimized engine uses the declared fast path, the
/// oracle's naive reference engine only ever calls `select()` — the
/// two diverge and the sentinel reports it.
struct LyingFifo;

impl Protocol for LyingFifo {
    fn name(&self) -> &str {
        "lying-fifo"
    }
    fn select(&mut self, _: Time, _: EdgeId, queue: &VecDeque<Packet>, _: &Graph) -> usize {
        queue.len() - 1 // actually LIFO…
    }
    fn discipline(&self) -> Discipline {
        Discipline::ArrivalOrder // …while claiming FIFO
    }
}

#[test]
fn oracle_catches_a_discipline_that_contradicts_select() {
    let g = Arc::new(topologies::ring(6));
    let mut eng = Engine::new(Arc::clone(&g), LyingFifo, EngineConfig::default());
    eng.attach_sentinel(SentinelConfig::all_halt().with_cadence(4));
    eng.attach_oracle(Box::new(LyingFifo), 1);

    // Two packets with different residual routes in the same buffer:
    // front-vs-back selection now matters.
    let mut err = None;
    for t in 1..=12u64 {
        let inj = if t <= 2 {
            vec![
                Injection::new(ring_route(&g, 0), t as u32),
                Injection::new(ring_route(&g, 0), 100 + t as u32),
            ]
        } else {
            vec![]
        };
        match eng.step(inj) {
            Ok(()) => {}
            Err(e) => {
                err = Some(e);
                break;
            }
        }
    }
    match err.expect("the oracle must catch the divergence") {
        EngineError::Invariant(report) => {
            assert_eq!(report.violation.kind, InvariantKind::OracleDivergence);
        }
        other => panic!("expected an invariant halt, got {other}"),
    }
}
