//! End-to-end tests of the campaign subsystem: the INVARIANTS.md
//! catalog's exhaustiveness, ReproBundle round-trip fidelity at every
//! severity, the find → shrink → regression-emit pipeline, and corpus
//! seeding from sweep quarantine output.

use std::sync::Arc;

use aqt_campaign::{
    run_campaign, run_scenario, CampaignConfig, CohortSpec, Corpus, Feature, InjectSpec, Outcome,
    Scenario, TopologySpec,
};
use aqt_graph::{topologies, EdgeId, Route};
use aqt_protocols::Fifo;
use aqt_sim::sentinel::{CertificateSpec, SentinelConfig};
use aqt_sim::{
    run_sim_sweep, snapshot, Engine, EngineConfig, EngineError, FaultPlan, Injection,
    InvariantKind, Ratio, Severity, SimError, SweepConfig, ViolationReport,
};

// ---------------------------------------------------------------------
// INVARIANTS.md catalog exhaustiveness
// ---------------------------------------------------------------------

const CATALOG: &str = include_str!("../INVARIANTS.md");

/// Every sentinel invariant family has a catalog entry, and every
/// catalog entry names a real family — the file cannot drift from
/// `InvariantKind`.
#[test]
fn invariants_catalog_is_exhaustive() {
    for kind in InvariantKind::ALL {
        let heading = format!("### `{}`", kind.name());
        assert!(
            CATALOG.contains(&heading),
            "INVARIANTS.md has no entry '{heading}' for {kind:?}"
        );
    }
    // No orphan entries: every `### `…`` heading in the sentinel
    // section must be one of the variants.
    let names: Vec<&str> = InvariantKind::ALL.iter().map(|k| k.name()).collect();
    for line in CATALOG.lines() {
        if let Some(rest) = line.strip_prefix("### `") {
            let Some(name) = rest.split('`').next() else {
                continue;
            };
            assert!(
                names.contains(&name),
                "INVARIANTS.md entry '{name}' names no InvariantKind variant"
            );
        }
    }
    // Each entry documents all four catalog facets.
    for facet in [
        "**Formal statement.**",
        "**How to test.**",
        "**What breaks if violated.**",
        "**Default severity.**",
    ] {
        let count = CATALOG.matches(facet).count();
        assert!(
            count >= InvariantKind::ALL.len(),
            "facet '{facet}' appears {count} times, expected one per invariant"
        );
    }
}

// ---------------------------------------------------------------------
// ReproBundle round-trip fidelity (Halt / Quarantine / Log)
// ---------------------------------------------------------------------

/// A run that provably breaches the certificate: bound ⌈w·r⌉ = 1 on a
/// line(2), then a 4-packet cohort whose tail waits 3 steps. A drop
/// fault rides along so the bundle carries a fault plan.
fn breaching_engine(severity: Severity) -> (Engine<Fifo>, Route, FaultPlan) {
    let g = Arc::new(topologies::line(2));
    let route = Route::new(&g, vec![EdgeId(0), EdgeId(1)]).unwrap();
    let plan = FaultPlan::new().with_drop(EdgeId(1), 6);
    let mut eng = Engine::new(g, Fifo, EngineConfig::default());
    let mut cfg = SentinelConfig::all_halt()
        .with_seed(0xBEEF)
        .with_certificate(CertificateSpec {
            window: 1,
            rate: Ratio::new(1, 3),
            d: 2,
            initial: 0,
            time_priority: false,
        });
    cfg.cadence = 1;
    cfg.deep_stride = 1;
    for kind in InvariantKind::ALL {
        cfg = cfg.with_severity(kind, severity);
    }
    eng.attach_sentinel(cfg);
    eng.install_faults(plan.clone()).unwrap();
    (eng, route, plan)
}

fn drive_to_breach(severity: Severity) -> (Option<Box<ViolationReport>>, Engine<Fifo>) {
    let (mut eng, route, _) = breaching_engine(severity);
    for t in 0..12u64 {
        let inj = if t == 0 {
            vec![Injection::cohort(route.clone(), 0, 4)]
        } else {
            vec![]
        };
        match eng.step(inj) {
            Ok(()) => {}
            Err(EngineError::Invariant(report)) => return (Some(report), eng),
            Err(e) => panic!("unexpected engine error: {e}"),
        }
    }
    (None, eng)
}

#[test]
fn halt_bundle_replays_to_the_same_breach() {
    let (report, _) = drive_to_breach(Severity::Halt);
    let report = report.expect("halting breach");
    assert_eq!(report.violation.kind, InvariantKind::Certificate);
    assert_eq!(report.bundle.step, report.violation.time);
    assert_eq!(report.bundle.seed, Some(0xBEEF));
    assert!(report.bundle.fault_plan.is_some(), "plan travels in bundle");

    // Fidelity 1: a from-scratch rerun of the same run reproduces the
    // identical violation and the identical bundle.
    let (again, _) = drive_to_breach(Severity::Halt);
    let again = again.expect("deterministic breach");
    assert_eq!(again.violation, report.violation);
    assert_eq!(again.bundle, report.bundle);

    // Fidelity 2: the bundle alone reconstructs a breaching state.
    // Order matters: install the fault plan first (only legal at
    // time 0), then restore the snapshot (which moves the clock).
    let g = Arc::new(topologies::line(2));
    let mut fresh = Engine::new(Arc::clone(&g), Fifo, EngineConfig::default());
    fresh
        .install_faults(report.bundle.fault_plan.clone().unwrap())
        .unwrap();
    snapshot::restore(&mut fresh, &report.bundle.snapshot).unwrap();
    assert_eq!(fresh.time(), report.bundle.step);
    let mut cfg = SentinelConfig::all_halt().with_certificate(CertificateSpec {
        window: 1,
        rate: Ratio::new(1, 3),
        d: 2,
        initial: 0,
        time_priority: false,
    });
    cfg.cadence = 1;
    cfg.deep_stride = 1;
    fresh.attach_sentinel(cfg);
    // The restored queue still holds the overdue packets; the deep
    // certificate scan re-detects them on the very next step.
    let err = fresh.step(Vec::<Injection>::new()).unwrap_err();
    let EngineError::Invariant(rereport) = err else {
        panic!("expected invariant halt, got {err}");
    };
    assert_eq!(rereport.violation.kind, InvariantKind::Certificate);
    assert_eq!(rereport.violation.time, report.bundle.step + 1);
}

#[test]
fn quarantine_bundle_matches_the_halt_bundle() {
    let (halted, _) = drive_to_breach(Severity::Halt);
    let halted = halted.expect("halting breach");

    let (none, eng) = drive_to_breach(Severity::Quarantine);
    assert!(none.is_none(), "quarantine must not abort the run");
    let sentinel = eng.sentinel().expect("attached");
    let quarantined = sentinel.quarantined();
    assert!(!quarantined.is_empty());
    // The first quarantined report is the same breach the halting run
    // died on: same violation, same bundle, observed at the same step.
    assert_eq!(quarantined[0].violation, halted.violation);
    assert_eq!(quarantined[0].bundle, halted.bundle);
    // And the run kept going afterwards.
    assert_eq!(eng.time(), 12);
}

#[test]
fn log_severity_records_the_same_breach_at_the_same_step() {
    let (halted, _) = drive_to_breach(Severity::Halt);
    let halted = halted.expect("halting breach");

    let (none, eng) = drive_to_breach(Severity::Log);
    assert!(none.is_none(), "log must not abort the run");
    let sentinel = eng.sentinel().expect("attached");
    assert!(sentinel.quarantined().is_empty(), "log keeps no bundles");
    let log = sentinel.log();
    assert!(!log.is_empty());
    assert_eq!(log[0], halted.violation, "same breach, same step");

    // Log-severity fidelity is from-scratch determinism: a rerun
    // produces the identical log.
    let (_, eng2) = drive_to_breach(Severity::Log);
    assert_eq!(eng2.sentinel().unwrap().log(), log);
}

// ---------------------------------------------------------------------
// Campaign: find a planted breach, shrink it, emit a regression test
// ---------------------------------------------------------------------

fn planted_config(seed: u64) -> CampaignConfig {
    let mut cfg = CampaignConfig {
        seed,
        max_runs: 80,
        ..CampaignConfig::default()
    };
    // The planted tripwire: bound ⌈w·r⌉ = 1, so any cohort of ≥ 3
    // packets sharing a first edge breaches.
    cfg.generator.certificate = Some(CertificateSpec {
        window: 1,
        rate: Ratio::new(1, 8),
        d: 7,
        initial: 0,
        time_priority: false,
    });
    cfg
}

#[test]
fn campaign_finds_and_minimizes_the_planted_breach() {
    let mut corpus = Corpus::new();
    let report = run_campaign(&planted_config(0xCA11), &mut corpus);
    assert!(
        !report.findings.is_empty(),
        "planted breach not found: {}",
        report.summary()
    );
    let finding = &report.findings[0];
    assert_eq!(finding.kind(), InvariantKind::Certificate);
    assert_eq!(
        finding.report.bundle.step, finding.report.violation.time,
        "bundle pinned to the observation step"
    );

    // The shrunk repro is strictly smaller and still breaches.
    let shrunk = finding.shrunk.as_ref().expect("shrinking enabled");
    assert!(shrunk.scenario.weight() < finding.scenario.weight());
    let Outcome::Breach(rerun, _) = run_scenario(&shrunk.scenario) else {
        panic!("shrunk scenario no longer breaches");
    };
    assert_eq!(rerun.violation, shrunk.report.violation);

    // The emitted regression test embeds the shrunk scenario and the
    // breached kind.
    let src = finding.regression_test_source();
    assert!(src.contains("#[test]"));
    assert!(src.contains("InvariantKind::Certificate"));
    assert!(src.contains(&format!("{:016x}", shrunk.scenario.fingerprint())));
    assert!(src.contains("seed: "));
}

#[test]
fn campaigns_replay_identically_from_the_same_seed() {
    let (mut ca, mut cb) = (Corpus::new(), Corpus::new());
    let ra = run_campaign(&planted_config(0xD0_0D), &mut ca);
    let rb = run_campaign(&planted_config(0xD0_0D), &mut cb);
    assert_eq!(ra.runs, rb.runs);
    assert_eq!(ra.clean, rb.clean);
    assert_eq!(ra.findings.len(), rb.findings.len());
    for (fa, fb) in ra.findings.iter().zip(&rb.findings) {
        assert_eq!(fa.scenario, fb.scenario);
        assert_eq!(fa.report.violation, fb.report.violation);
        assert_eq!(fa.duplicates, fb.duplicates);
        let (sa, sb) = (fa.shrunk.as_ref().unwrap(), fb.shrunk.as_ref().unwrap());
        assert_eq!(sa.scenario, sb.scenario);
        assert_eq!(sa.attempts, sb.attempts);
    }
    let fa: Vec<u64> = ca.entries().iter().map(|s| s.fingerprint()).collect();
    let fb: Vec<u64> = cb.entries().iter().map(|s| s.fingerprint()).collect();
    assert_eq!(
        fa, fb,
        "corpus evolution is part of the determinism contract"
    );
}

// ---------------------------------------------------------------------
// Corpus seeding from sweep quarantine output
// ---------------------------------------------------------------------

/// A sweep over per-job certificate tightness: jobs with a breaching
/// bound are quarantined with bundles, and those bundles seed a
/// campaign corpus.
#[test]
fn sweep_quarantine_bundles_seed_the_corpus() {
    let template = Scenario {
        topology: TopologySpec::Line(2),
        protocol: "FIFO".into(),
        seed: 0,
        horizon: 24,
        cadence: 1,
        deep_stride: 1,
        shards: 1,
        injections: vec![InjectSpec {
            time: 1,
            cohort: CohortSpec {
                route: vec![0, 1],
                tag: 0,
                count: 5,
            },
        }],
        faults: vec![],
        model: vec![],
        certificate: None,
        closed_loop: None,
    };
    // Jobs 1 and 3 get the unsatisfiable bound; 0 and 2 run clean.
    let inputs: Vec<(u64, bool)> = vec![(10, false), (11, true), (12, false), (13, true)];
    let sweep = run_sim_sweep(
        inputs,
        &SweepConfig {
            max_retries: 0,
            ..SweepConfig::default()
        },
        |_, &(seed, tight)| {
            let mut s = template.clone();
            s.seed = seed;
            if tight {
                s.certificate = Some(CertificateSpec {
                    window: 1,
                    rate: Ratio::new(1, 3),
                    d: 2,
                    initial: 0,
                    time_priority: false,
                });
                // Give the bundle a fault plan to carry across.
                s.faults = vec![aqt_campaign::FaultSpec::Drop { edge: 1, time: 20 }];
            }
            match run_scenario(&s) {
                Outcome::Clean(stats) => Ok(stats.steps),
                Outcome::Breach(report, _) => Err(SimError::InvariantViolated(report)),
                Outcome::Overrate(e, _) | Outcome::Invalid(e) => Err(SimError::Checkpoint(e)),
            }
        },
    );
    assert_eq!(sweep.results().count(), 2);
    let bundles = sweep.bundles();
    assert_eq!(bundles.len(), 2, "both tight jobs quarantined with bundles");
    assert_eq!(bundles[0].0, 1);
    assert_eq!(bundles[1].0, 3);

    let mut corpus = Corpus::new();
    let added = corpus.seed_from_sweep(&sweep, &template);
    assert_eq!(added, 2);
    // The grafts carry the failing jobs' seeds and fault plans, and
    // remain runnable starting points.
    let seeds: Vec<u64> = corpus.entries().iter().map(|s| s.seed).collect();
    assert_eq!(seeds, vec![11, 13]);
    for entry in corpus.entries() {
        assert!(!entry.faults.is_empty(), "bundle fault plan was grafted");
        entry.build().expect("seeded scenarios must build");
    }
    // Seeding again is a no-op: fingerprint dedup.
    assert_eq!(corpus.seed_from_sweep(&sweep, &template), 0);
}

// ---------------------------------------------------------------------
// Closed-loop scenarios: coverage axis reached, generated, shrinkable
// ---------------------------------------------------------------------

/// Within a bounded budget, the unsteered-plus-steered campaign loop
/// reaches the closed-loop coverage axis: it generates closed-loop
/// scenarios, runs them under the sentinel stack, and records their
/// shed discipline as [`Feature::ClosedLoop`] novelty.
#[test]
fn campaign_reaches_the_closed_loop_axis_within_budget() {
    let cfg = CampaignConfig {
        seed: 0x10_0B,
        max_runs: 200,
        shrink: false,
        ..CampaignConfig::default()
    };
    let mut corpus = Corpus::new();
    let report = run_campaign(&cfg, &mut corpus);
    let axis_hits: u64 = (0..4u8)
        .map(|i| report.coverage.hits(Feature::ClosedLoop(i)))
        .sum();
    assert!(
        axis_hits > 0,
        "closed-loop axis never reached in {} runs: {}",
        report.runs,
        report.summary()
    );
    assert!(
        corpus.entries().iter().any(|s| s.closed_loop.is_some()),
        "no closed-loop scenario was novel enough for the corpus"
    );
}

/// A closed-loop scenario runs clean end-to-end through the campaign
/// runner — sentinel attached, request conservation enforced by the
/// driver, the rate-1 model validating the realized dispatches.
/// (Gated off under `demo-corruption`: the planted absorption bug
/// makes any run with ≥ 6 packets breach conservation, by design.)
#[cfg(not(feature = "demo-corruption"))]
#[test]
fn closed_loop_scenario_runs_clean_under_the_full_stack() {
    use aqt_campaign::{ClosedLoopSpec, RetrySpec, ShedSpec};

    let s = Scenario {
        topology: TopologySpec::Line(2),
        protocol: "FIFO".into(),
        seed: 0xE17,
        horizon: 160,
        cadence: 1,
        deep_stride: 1,
        shards: 1,
        injections: vec![],
        faults: vec![],
        model: vec![aqt_sim::ConstraintSpec::Rate(Ratio::new(1, 1))],
        certificate: None,
        closed_loop: Some(ClosedLoopSpec {
            num_clients: 6,
            think_time: 4,
            timeout: 5,
            max_attempts: 4,
            retry: RetrySpec::Immediate,
            capacity: 8,
            shed: ShedSpec::RejectNewest,
            pause: Some((30, 50)),
            path_len: 2,
        }),
    };
    let out = run_scenario(&s);
    let Outcome::Clean(stats) = out else {
        panic!("expected clean closed-loop run, got {out:?}");
    };
    assert_eq!(stats.steps, 160);
    assert!(stats.injected > 0, "the loop dispatched work");
    assert!(
        stats.injected - stats.absorbed <= 2,
        "at most path_len packets can still be in flight at the horizon \
         (injected {}, absorbed {})",
        stats.injected,
        stats.absorbed
    );
    assert!(stats.sentinel_rounds > 0);
    // Determinism: the scenario is a pure function of its seed.
    let Outcome::Clean(again) = run_scenario(&s) else {
        panic!("second run must be clean too");
    };
    assert_eq!(stats, again);
}

/// With the planted absorption bug compiled in, a generated
/// closed-loop scenario breaches engine conservation (the vanished
/// packet is also a lost reply), and the shrinker minimizes it within
/// the closed-loop neighborhood — fewer clients, smaller queue, no
/// outage — while the repro keeps breaching.
#[cfg(feature = "demo-corruption")]
#[test]
fn campaign_shrinks_a_closed_loop_conservation_breach() {
    use aqt_campaign::{generate, shrink, GeneratorConfig};
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    let gcfg = GeneratorConfig::default();
    let mut rng = StdRng::seed_from_u64(0xC10C);
    // Steered generation: draw closed-loop scenarios until one pushes
    // enough attempts through the engine to hit the corrupted packet
    // id (one in 977 — the 6th injected packet of a run).
    let mut found = None;
    for _ in 0..40 {
        let mut s = generate(&mut rng, &gcfg, Some(Feature::ClosedLoop(0)));
        s.horizon = s.horizon.max(160);
        if let Outcome::Breach(report, _) = run_scenario(&s) {
            assert_eq!(report.violation.kind, InvariantKind::Conservation);
            found = Some(s);
            break;
        }
    }
    let s = found.expect("no generated closed-loop scenario tripped the planted bug");
    let out = shrink(&s, InvariantKind::Conservation);
    assert!(out.accepted > 0, "nothing was shrunk");
    assert!(out.scenario.weight() < s.weight());
    assert!(
        out.scenario.closed_loop.is_some(),
        "the breach needs the loop; the shrinker must keep it"
    );
    let Outcome::Breach(rerun, _) = run_scenario(&out.scenario) else {
        panic!("shrunk closed-loop scenario no longer breaches");
    };
    assert_eq!(rerun.violation, out.report.violation);
}

// ---------------------------------------------------------------------
// The planted engine bug (demo-corruption): campaign catches it
// ---------------------------------------------------------------------

/// With the intentionally corrupted absorption path compiled in
/// (absorbed packets with `id % 977 == 5` vanish uncounted), the
/// campaign must hunt down the conservation breach and minimize it.
#[cfg(feature = "demo-corruption")]
#[test]
fn campaign_finds_the_demo_corruption_conservation_breach() {
    let mut cfg = CampaignConfig {
        seed: 0xC0FFEE,
        max_runs: 400,
        ..CampaignConfig::default()
    };
    cfg.generator.max_count = 24;
    let mut corpus = Corpus::new();
    let report = run_campaign(&cfg, &mut corpus);
    let finding = report
        .findings
        .iter()
        .find(|f| f.kind() == InvariantKind::Conservation)
        .unwrap_or_else(|| panic!("conservation breach not found: {}", report.summary()));
    let shrunk = finding.shrunk.as_ref().expect("shrinking enabled");
    assert!(shrunk.scenario.weight() < finding.scenario.weight());
    let Outcome::Breach(rerun, _) = run_scenario(&shrunk.scenario) else {
        panic!("shrunk scenario no longer breaches");
    };
    assert_eq!(rerun.violation.kind, InvariantKind::Conservation);
}
