//! Claim-level integration tests: E11 (Claim 3.9 thinning rates),
//! E12 (settling ablation), E13 (bound sharpness) at reduced scale.

use aqt_core::experiments::{e11_thinning_rates, e13_threshold_sharpness};

/// Claim 3.9: during a gadget step, old packets flow onto `e'_i` at
/// rate `R_i` — measured within a few percent for every `i`.
#[test]
fn claim_3_9_thinning_rates() {
    let rows = e11_thinning_rates(1, 4, 2.0).expect("legal");
    assert!(!rows.is_empty());
    for r in &rows {
        let rel = r.measured / r.r_i;
        assert!(
            (0.93..=1.07).contains(&rel),
            "i={} measured {} vs R_i {} (rel {rel})",
            r.i,
            r.measured,
            r.r_i
        );
    }
    // the ladder is strictly decreasing, as (3.1) implies
    for w in rows.windows(2) {
        assert!(w[1].r_i < w[0].r_i);
        assert!(w[1].measured <= w[0].measured + 0.02);
    }
}

/// E13: at or below `r = 1/d` the `⌈wr⌉` bound of Theorem 4.3 holds;
/// above it the theorem is silent (bound None).
#[test]
fn bound_sharpness_around_one_over_d() {
    let rows = e13_threshold_sharpness(3, 12, 8000).expect("legal");
    for r in &rows {
        if r.rate_over_threshold <= 1.0 {
            let b = r.bound.expect("bound applies at r <= 1/d");
            assert!(
                r.max_wait <= b,
                "r/(1/d)={}: wait {} exceeds bound {}",
                r.rate_over_threshold,
                r.max_wait,
                b
            );
        } else {
            assert!(r.bound.is_none(), "theorem must be silent above 1/d");
        }
    }
    // waits do not decrease as the rate rises
    for w in rows.windows(2) {
        assert!(w[1].max_wait >= w[0].max_wait.saturating_sub(1));
    }
}

/// E12 (reduced): with settling ON, the ε = 1/4 loop diverges; the
/// full no-settling collapse needs the long ε = 1/10 chain and runs in
/// the bench (`e12_settling_ablation`) — here we only verify the knob
/// exists and the settled path grows.
#[test]
fn settling_on_grows() {
    let mut cfg = aqt_core::instability::InstabilityConfig::new(1, 4);
    cfg.iterations = 1;
    cfg.s0_safety = 2.0;
    cfg.m_margin = 1.5;
    cfg.settle = true;
    let run = aqt_core::instability::InstabilityConstruction::new(cfg)
        .run()
        .expect("legal");
    assert!(run.diverged);
}
