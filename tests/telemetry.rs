//! Integration tests for the telemetry subsystem: window accounting
//! against the batch metrics, JSONL export shape, level gating, and
//! sweep progress event sequences.

use std::sync::atomic::{AtomicU32, Ordering};
use std::sync::{Arc, Mutex};

use aqt_graph::{topologies, Route};
use aqt_protocols::Fifo;
use aqt_sim::{
    run_sim_sweep_with_progress, run_sweep_with_progress, Engine, EngineConfig, Injection,
    JobOutcome, Provenance, SharedSink, SimError, SweepConfig, TelemetryConfig, TelemetryEvent,
    TelemetrySink, Time, TELEMETRY_SCHEMA_VERSION,
};

/// `(start, end, per-edge crossing deltas)` of one emitted window.
type WindowRecord = (Time, Time, Vec<u64>);

/// A sink that copies every record out through shared handles, so the
/// test can inspect what was emitted after the engine (which owns the
/// boxed sink) is done with it.
#[derive(Clone, Default)]
struct Capture {
    kinds: Arc<Mutex<Vec<&'static str>>>,
    windows: Arc<Mutex<Vec<WindowRecord>>>,
}

impl TelemetrySink for Capture {
    fn record(&mut self, event: &TelemetryEvent<'_>) {
        self.kinds.lock().unwrap().push(event.kind().as_str());
        if let TelemetryEvent::Window {
            start,
            end,
            crossings,
            ..
        } = event
        {
            self.windows
                .lock()
                .unwrap()
                .push((*start, *end, crossings.to_vec()));
        }
    }
}

/// A small non-trivial workload: packets walking the full length of
/// `line(4)`, injected every other step for `steps` steps.
fn run_line_workload(eng: &mut Engine<Fifo>, graph: &Arc<aqt_graph::Graph>, steps: Time) {
    let edges: Vec<_> = graph.edge_ids().collect();
    let route = Route::new(graph, edges).expect("full line route");
    for t in 1..=steps {
        if t % 2 == 1 {
            eng.step([Injection::new(route.clone(), 0)]).expect("step");
        } else {
            eng.step::<[Injection; 0]>([]).expect("step");
        }
    }
}

/// The acceptance identity: per-window per-edge crossings, summed over
/// every window of the run (finish emits the last partial one), equal
/// the batch `Metrics::crossings_per_edge` totals.
#[test]
fn window_crossings_sum_to_batch_totals() {
    let graph = Arc::new(topologies::line(4));
    let mut eng = Engine::new(Arc::clone(&graph), Fifo, EngineConfig::default());
    let capture = Capture::default();
    // A window that does not divide the horizon, so the final window
    // is partial and only `finish_telemetry` can close the books.
    eng.attach_telemetry(TelemetryConfig::default().with_window(7));
    eng.set_telemetry_sink(Box::new(capture.clone()));
    run_line_workload(&mut eng, &graph, 100);
    eng.finish_telemetry();

    let windows = capture.windows.lock().unwrap();
    assert!(windows.len() >= 14, "100 steps / window 7");
    // Windows partition (0, 100]: contiguous, no overlap.
    let mut prev_end = 0;
    for (start, end, _) in windows.iter() {
        assert_eq!(*start, prev_end, "windows are contiguous");
        assert!(end > start);
        prev_end = *end;
    }
    assert_eq!(prev_end, 100, "final partial window reaches the horizon");

    let mut summed = vec![0u64; graph.edge_count()];
    for (_, _, crossings) in windows.iter() {
        assert_eq!(crossings.len(), summed.len());
        for (acc, c) in summed.iter_mut().zip(crossings) {
            *acc += c;
        }
    }
    assert_eq!(
        summed,
        eng.metrics().crossings_per_edge().to_vec(),
        "window crossing deltas must sum to the batch totals"
    );
    assert!(summed.iter().sum::<u64>() > 0, "the workload moved packets");

    let kinds = capture.kinds.lock().unwrap();
    assert_eq!(kinds.first(), Some(&"run_start"));
    assert_eq!(kinds.last(), Some(&"run_end"));
}

/// Counter totals reported at `run_end` match the engine's own batch
/// metrics for the quantities both sides count.
#[test]
fn counters_match_batch_metrics() {
    let graph = Arc::new(topologies::line(4));
    let mut eng = Engine::new(Arc::clone(&graph), Fifo, EngineConfig::default());
    eng.attach_telemetry(TelemetryConfig::default());
    run_line_workload(&mut eng, &graph, 60);
    eng.finish_telemetry();

    let c = eng.telemetry().counters();
    assert_eq!(c.steps, 60);
    assert_eq!(c.packets_injected, eng.metrics().injected());
    assert_eq!(c.packets_absorbed, eng.metrics().absorbed());
    assert_eq!(
        c.packets_sent,
        eng.metrics().crossings_per_edge().iter().sum::<u64>()
    );
}

/// `TelemetryLevel::Off` keeps every counter at zero and emits no
/// windows — the disabled path is genuinely inert.
#[test]
fn off_level_counts_nothing() {
    let graph = Arc::new(topologies::line(4));
    let mut eng = Engine::new(Arc::clone(&graph), Fifo, EngineConfig::default());
    let capture = Capture::default();
    eng.attach_telemetry(TelemetryConfig::off());
    eng.set_telemetry_sink(Box::new(capture.clone()));
    run_line_workload(&mut eng, &graph, 50);
    eng.finish_telemetry();

    assert_eq!(eng.telemetry().counters().steps, 0);
    assert_eq!(eng.telemetry().counters().packets_sent, 0);
    assert!(capture.windows.lock().unwrap().is_empty());
    assert!(eng.metrics().absorbed() > 0, "the run itself still ran");
}

/// `TelemetryLevel::Timing` populates the stage histograms. With the
/// sampling stride forced to 1, every step is measured.
#[test]
fn timing_level_fills_histograms() {
    let graph = Arc::new(topologies::line(4));
    let mut eng = Engine::new(Arc::clone(&graph), Fifo, EngineConfig::default());
    eng.attach_telemetry(TelemetryConfig::timing().with_timing_sample_every(1));
    run_line_workload(&mut eng, &graph, 50);
    eng.finish_telemetry();

    let t = eng.telemetry().timings();
    assert_eq!(t.step.count(), 50, "one step sample per step");
    assert_eq!(t.send.count(), 50);
    assert_eq!(t.receive.count(), 50);
    assert!(t.step.mean_nanos() > 0.0);
    assert!(t.step.quantile_bound(0.5).is_some());
}

/// At the default stride, timing is sampled — far fewer clock reads
/// than steps, but the histograms are still populated over a long run.
#[test]
fn timing_default_stride_samples_sparsely() {
    let graph = Arc::new(topologies::line(4));
    let mut eng = Engine::new(Arc::clone(&graph), Fifo, EngineConfig::default());
    eng.attach_telemetry(TelemetryConfig::timing());
    run_line_workload(&mut eng, &graph, 2048);
    eng.finish_telemetry();

    let t = eng.telemetry().timings();
    assert!(
        t.step.count() >= 2,
        "a 2048-step run yields several samples"
    );
    assert!(
        t.step.count() <= 8,
        "default stride 512 keeps sampling sparse, got {}",
        t.step.count()
    );
    assert_eq!(t.send.count(), t.step.count(), "substages sample together");
}

/// JSONL export: every line is schema-stamped, carries the provenance,
/// and the window lines carry the crossings array.
#[test]
fn jsonl_lines_are_complete_records() {
    #[derive(Clone)]
    struct SharedBuf(Arc<Mutex<Vec<u8>>>);
    impl std::io::Write for SharedBuf {
        fn write(&mut self, buf: &[u8]) -> std::io::Result<usize> {
            self.0.lock().unwrap().extend_from_slice(buf);
            Ok(buf.len())
        }
        fn flush(&mut self) -> std::io::Result<()> {
            Ok(())
        }
    }

    let buf = SharedBuf(Arc::new(Mutex::new(Vec::new())));
    let graph = Arc::new(topologies::line(4));
    let mut eng = Engine::new(Arc::clone(&graph), Fifo, EngineConfig::default());
    eng.attach_telemetry(
        TelemetryConfig::default()
            .with_window(16)
            .with_provenance(Provenance {
                seed: Some(42),
                protocol: "FIFO".to_string(),
                ..Provenance::default()
            }),
    );
    eng.set_telemetry_sink(Box::new(aqt_sim::JsonlSink::from_writer(buf.clone())));
    run_line_workload(&mut eng, &graph, 40);
    eng.finish_telemetry();

    let bytes = buf.0.lock().unwrap().clone();
    let text = String::from_utf8(bytes).expect("utf8");
    let lines: Vec<&str> = text.lines().collect();
    assert!(lines.len() >= 4, "run_start + windows + run_end");
    let stamp = format!("{{\"schema\":{TELEMETRY_SCHEMA_VERSION},\"kind\":\"");
    for line in &lines {
        assert!(line.starts_with(&stamp), "schema-stamped: {line}");
        assert!(line.ends_with('}'), "complete object: {line}");
        assert!(line.contains("\"protocol\":\"FIFO\""), "provenance: {line}");
        assert!(line.contains("\"seed\":42"), "provenance: {line}");
    }
    assert!(lines[0].contains("\"kind\":\"run_start\""));
    assert!(lines.last().unwrap().contains("\"kind\":\"run_end\""));
    assert!(
        lines[1].contains("\"crossings\":[") && lines[1].contains("\"kind\":\"window\""),
        "window line carries the per-edge array: {}",
        lines[1]
    );
}

/// Golden pin of the closed-loop telemetry surface: the JSONL layout
/// of a `workload_window` record — schema stamp, kind, and every
/// request-ledger field name — plus the `backoff_ms` field of
/// `job_retried`. Downstream consumers key on these exact strings;
/// renaming any of them must bump `TELEMETRY_SCHEMA_VERSION` and this
/// pin deliberately.
#[test]
fn workload_window_jsonl_layout_is_pinned() {
    use aqt_sim::WorkloadCounters;

    #[derive(Clone)]
    struct SharedBuf(Arc<Mutex<Vec<u8>>>);
    impl std::io::Write for SharedBuf {
        fn write(&mut self, buf: &[u8]) -> std::io::Result<usize> {
            self.0.lock().unwrap().extend_from_slice(buf);
            Ok(buf.len())
        }
        fn flush(&mut self) -> std::io::Result<()> {
            Ok(())
        }
    }

    assert_eq!(
        TELEMETRY_SCHEMA_VERSION, 5,
        "the golden lines below were pinned at version 5 (observatory \
         backlog/span records); a bump means they must be re-pinned"
    );

    let buf = SharedBuf(Arc::new(Mutex::new(Vec::new())));
    let mut sink = aqt_sim::JsonlSink::from_writer(buf.clone());
    let provenance = Provenance {
        seed: Some(7),
        protocol: "FIFO".to_string(),
        ..Provenance::default()
    };
    sink.record(&TelemetryEvent::WorkloadWindow {
        start: 0,
        end: 64,
        counters: WorkloadCounters {
            requests_issued: 10,
            requests_completed: 5,
            requests_abandoned: 2,
            requests_shed: 1,
            requests_in_flight: 2,
            attempts_issued: 17,
            attempts_retried: 7,
            attempts_shed: 4,
            completions_wasted: 3,
        },
        goodput: 5,
        wasted: 3,
        offered: 13,
        provenance: &provenance,
    });
    sink.record(&TelemetryEvent::JobRetried {
        index: 2,
        attempt: 1,
        backoff_ms: 250,
    });

    let bytes = buf.0.lock().unwrap().clone();
    let text = String::from_utf8(bytes).expect("utf8");
    let lines: Vec<&str> = text.lines().collect();
    assert_eq!(lines.len(), 2);

    // The full workload_window line, byte for byte (absent provenance
    // fields serialize as explicit nulls).
    assert_eq!(
        lines[0],
        "{\"schema\":5,\"kind\":\"workload_window\",\"start\":0,\"end\":64,\
         \"requests_issued\":10,\"requests_completed\":5,\
         \"requests_abandoned\":2,\"requests_shed\":1,\
         \"requests_in_flight\":2,\"attempts_issued\":17,\
         \"attempts_retried\":7,\"attempts_shed\":4,\
         \"completions_wasted\":3,\"goodput\":5,\"wasted\":3,\
         \"offered\":13,\"seed\":7,\"schedule_hash\":null,\
         \"protocol\":\"FIFO\",\"fault_plan_id\":null,\
         \"model_fingerprint\":null}"
    );
    assert_eq!(
        lines[1],
        "{\"schema\":5,\"kind\":\"job_retried\",\"index\":2,\"attempt\":1,\
         \"backoff_ms\":250}"
    );
}

/// Golden pin of the observatory's JSONL surface (schema 5): the full
/// `backlog` record — tick scalars, nullable bound/margin, the sparse
/// per-edge depth array, per-shard sent counts — and a `span` record.
/// The offline analyzer (`examples/observatory.rs`) keys on these
/// exact field names; renaming any of them must bump
/// `TELEMETRY_SCHEMA_VERSION` and this pin deliberately.
#[test]
fn observatory_jsonl_layout_is_pinned() {
    use aqt_sim::SpanKind;

    #[derive(Clone)]
    struct SharedBuf(Arc<Mutex<Vec<u8>>>);
    impl std::io::Write for SharedBuf {
        fn write(&mut self, buf: &[u8]) -> std::io::Result<usize> {
            self.0.lock().unwrap().extend_from_slice(buf);
            Ok(buf.len())
        }
        fn flush(&mut self) -> std::io::Result<()> {
            Ok(())
        }
    }

    let buf = SharedBuf(Arc::new(Mutex::new(Vec::new())));
    let mut sink = aqt_sim::JsonlSink::from_writer(buf.clone());
    let provenance = Provenance {
        seed: Some(7),
        protocol: "FIFO".to_string(),
        ..Provenance::default()
    };
    sink.record(&TelemetryEvent::Backlog {
        time: 256,
        total: 40,
        max_queue: 9,
        max_wait: 3,
        bound: Some(12),
        margin: Some(9),
        depths: &[(0, 5), (3, 2)],
        shard_sent: &[20, 20, 19, 4],
        provenance: &provenance,
    });
    sink.record(&TelemetryEvent::Backlog {
        time: 512,
        total: 0,
        max_queue: 9,
        max_wait: 3,
        bound: None,
        margin: None,
        depths: &[],
        shard_sent: &[],
        provenance: &provenance,
    });
    sink.record(&TelemetryEvent::Span {
        time: 300,
        packet: 64,
        op: SpanKind::Send,
        edge: 3,
        hop: 1,
        wait: 2,
        shard: 1,
        provenance: &provenance,
    });

    let bytes = buf.0.lock().unwrap().clone();
    let text = String::from_utf8(bytes).expect("utf8");
    let lines: Vec<&str> = text.lines().collect();
    assert_eq!(lines.len(), 3);
    assert_eq!(
        lines[0],
        "{\"schema\":5,\"kind\":\"backlog\",\"time\":256,\"total\":40,\
         \"max_queue\":9,\"max_wait\":3,\"bound\":12,\"margin\":9,\
         \"depths\":[[0,5],[3,2]],\"shard_sent\":[20,20,19,4],\
         \"seed\":7,\"schedule_hash\":null,\"protocol\":\"FIFO\",\
         \"fault_plan_id\":null,\"model_fingerprint\":null}"
    );
    assert_eq!(
        lines[1],
        "{\"schema\":5,\"kind\":\"backlog\",\"time\":512,\"total\":0,\
         \"max_queue\":9,\"max_wait\":3,\"bound\":null,\"margin\":null,\
         \"depths\":[],\"shard_sent\":[],\"seed\":7,\
         \"schedule_hash\":null,\"protocol\":\"FIFO\",\
         \"fault_plan_id\":null,\"model_fingerprint\":null}"
    );
    assert_eq!(
        lines[2],
        "{\"schema\":5,\"kind\":\"span\",\"time\":300,\"packet\":64,\
         \"op\":\"send\",\"edge\":3,\"hop\":1,\"wait\":2,\"shard\":1,\
         \"seed\":7,\"schedule_hash\":null,\"protocol\":\"FIFO\",\
         \"fault_plan_id\":null,\"model_fingerprint\":null}"
    );
}

/// Sweep progress: start/finish/retry events arrive in order, the
/// `sweep_progress` ETA decreases to zero, and a flaky job's retry is
/// visible.
#[test]
fn sweep_progress_reports_jobs_and_retries() {
    let capture = Capture::default();
    let progress = SharedSink::new(capture.clone());
    let flaked = AtomicU32::new(0);
    let report = run_sweep_with_progress(
        vec![10u64, 20, 30],
        &SweepConfig {
            threads: 1,
            max_retries: 1,
            backoff_base: std::time::Duration::ZERO,
            retry_seed: 42,
        },
        Some(&progress),
        |i, &x| {
            if i == 1 && flaked.fetch_add(1, Ordering::SeqCst) == 0 {
                panic!("flaky once");
            }
            x * 2
        },
    );
    assert_eq!(report.results().count(), 3);

    let kinds = capture.kinds.lock().unwrap();
    let count = |k: &str| kinds.iter().filter(|s| **s == k).count();
    assert_eq!(count("job_started"), 3);
    assert_eq!(count("job_finished"), 3);
    assert_eq!(count("job_retried"), 1);
    assert_eq!(count("job_quarantined"), 0);
    assert_eq!(count("sweep_progress"), 3, "one progress line per job");
}

/// A deterministic `SimError` quarantines through the sim sweep and
/// emits `job_quarantined`.
#[test]
fn sim_sweep_quarantine_is_reported() {
    let capture = Capture::default();
    let progress = SharedSink::new(capture.clone());
    let report = run_sim_sweep_with_progress(
        vec![1u64, 2],
        &SweepConfig::no_retry(1),
        Some(&progress),
        |_, &x| {
            if x == 2 {
                Err(SimError::Checkpoint("synthetic failure".into()))
            } else {
                Ok(x)
            }
        },
    );
    assert_eq!(report.results().count(), 1);
    let quarantined = report
        .outcomes
        .iter()
        .filter(|o| matches!(o, JobOutcome::Quarantined(_)))
        .count();
    assert_eq!(quarantined, 1);

    let kinds = capture.kinds.lock().unwrap();
    assert_eq!(kinds.iter().filter(|s| **s == "job_quarantined").count(), 1);
}
