//! Robustness integration tests: fault injection (E14), packet
//! conservation under randomized fault plans, full-state
//! checkpoint/resume, divergence watchdogs, and the crash-safe sweep
//! harness.

use aqt_core::experiments::e14_fault_recovery;
use aqt_core::instability::{InstabilityConfig, InstabilityConstruction, WatchdogKind};
use aqt_graph::{topologies, EdgeId, Graph, Route};
use aqt_protocols::Fifo;
use aqt_sim::{
    checkpoint, snapshot, Engine, EngineConfig, FaultEvent, FaultPlan, FaultPlanError, Injection,
    SweepConfig,
};
use proptest::prelude::*;
use std::sync::Arc;

/// A length-3 route around `ring(6)` starting at edge `start`.
fn ring_route(g: &Arc<Graph>, start: u64) -> Route {
    let ids = vec![
        EdgeId((start % 6) as u32),
        EdgeId(((start + 1) % 6) as u32),
        EdgeId(((start + 2) % 6) as u32),
    ];
    Route::new(g, ids).expect("contiguous ring edges")
}

/// The deterministic background traffic all fault proptests run under:
/// one packet every other step, rotating around the ring.
fn drive(eng: &mut Engine<Fifo>, g: &Arc<Graph>, from: u64, to: u64) {
    for t in from..to {
        if t % 2 == 0 {
            eng.step([Injection::new(ring_route(g, t % 6), 0)]).unwrap();
        } else {
            eng.step(std::iter::empty::<Injection>()).unwrap();
        }
    }
}

/// Decode a proptest scalar into a fault plan over `ring(6)`, with
/// drops/duplicates in steps 1..=80 and a bounded outage window.
fn decode_plan(
    g: &Arc<Graph>,
    drops: &[u64],
    dups: &[u64],
    outage: u64,
    outage_len: u64,
    burst_at: u64,
    burst_n: usize,
) -> FaultPlan {
    let mut plan = FaultPlan::new();
    for &d in drops {
        plan = plan.with_drop(EdgeId((d % 6) as u32), 1 + d / 6);
    }
    for &d in dups {
        plan = plan.with_duplicate(EdgeId((d % 6) as u32), 1 + d / 6);
    }
    let from = 1 + outage / 6;
    plan = plan.with_outage(EdgeId((outage % 6) as u32), from, from + outage_len);
    if burst_n > 0 {
        plan = plan.with_burst(
            burst_at,
            vec![Injection::new(ring_route(g, burst_at), 7); burst_n],
        );
    }
    plan
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    /// Under an arbitrary fault plan, the books always balance:
    /// `injected + duplicated = absorbed + dropped + backlog`, where
    /// the backlog is independently recounted from the buffers — and
    /// the engine's fault log agrees with the metric counters.
    #[test]
    fn conservation_holds_under_random_fault_plans(
        drops in prop::collection::vec(0u64..480, 0..6),
        dups in prop::collection::vec(0u64..480, 0..6),
        outage in 0u64..480,
        outage_len in 0u64..12,
        burst_at in 1u64..80,
        burst_n in 0usize..10,
    ) {
        let g = Arc::new(topologies::ring(6));
        let plan = decode_plan(&g, &drops, &dups, outage, outage_len, burst_at, burst_n);
        let mut eng = Engine::new(Arc::clone(&g), Fifo, EngineConfig::default());
        eng.install_faults(plan).unwrap();
        drive(&mut eng, &g, 0, 100);

        let live: u64 = g.edge_ids().map(|e| eng.queue_len(e) as u64).sum();
        let m = eng.metrics();
        prop_assert_eq!(m.injected() + m.duplicated(), m.absorbed() + m.dropped() + live);
        prop_assert_eq!(live, eng.backlog());

        let (mut dropped, mut cloned, mut burst) = (0u64, 0u64, 0u64);
        for f in eng.fault_log() {
            match f {
                FaultEvent::PacketDropped { .. } => dropped += 1,
                FaultEvent::PacketDuplicated { .. } => cloned += 1,
                FaultEvent::BurstInjected { count, .. } => burst += count,
                FaultEvent::OutageSuppressedSend { .. } => {}
            }
        }
        prop_assert_eq!(dropped, m.dropped());
        prop_assert_eq!(cloned, m.duplicated());
        // burst_at < 100 steps driven, so every scheduled burst fired
        prop_assert_eq!(burst, eng.faults().unwrap().burst_packet_count());
    }

    /// Checkpointing mid-run and resuming in a fresh engine (same
    /// graph, same installed fault plan) is state-identical to the
    /// uninterrupted run — buffers, metrics, and fault log — for any
    /// split point and fault plan.
    #[test]
    fn checkpoint_resume_is_state_identical_under_faults(
        split in 1u64..99,
        drops in prop::collection::vec(0u64..480, 0..5),
        dups in prop::collection::vec(0u64..480, 0..5),
        burst_at in 1u64..80,
    ) {
        let g = Arc::new(topologies::ring(6));
        let plan = decode_plan(&g, &drops, &dups, 300, 6, burst_at, 3);

        let mut full = Engine::new(Arc::clone(&g), Fifo, EngineConfig::default());
        full.install_faults(plan.clone()).unwrap();
        drive(&mut full, &g, 0, 100);

        let mut half = Engine::new(Arc::clone(&g), Fifo, EngineConfig::default());
        half.install_faults(plan.clone()).unwrap();
        drive(&mut half, &g, 0, split);
        let ck = checkpoint::checkpoint(&half);

        // The resume pattern: construct identically (plan installed at
        // time 0), then restore the dynamic state.
        let mut resumed = Engine::new(Arc::clone(&g), Fifo, EngineConfig::default());
        resumed.install_faults(plan).unwrap();
        checkpoint::restore(&mut resumed, &ck).unwrap();
        prop_assert_eq!(resumed.time(), split);
        drive(&mut resumed, &g, split, 100);

        prop_assert_eq!(snapshot::capture(&full), snapshot::capture(&resumed));
        prop_assert_eq!(full.fault_log(), resumed.fault_log());
        let (a, b) = (full.metrics(), resumed.metrics());
        prop_assert_eq!(a.injected(), b.injected());
        prop_assert_eq!(a.absorbed(), b.absorbed());
        prop_assert_eq!(a.dropped(), b.dropped());
        prop_assert_eq!(a.duplicated(), b.duplicated());
        prop_assert_eq!(a.max_buffer_wait(), b.max_buffer_wait());
        prop_assert_eq!(&a.crossings_per_edge(), &b.crossings_per_edge());
    }
}

/// E14: on a system stable at `r = 1/(d+2)`, every fault scenario
/// (S-burst, edge outage, drops, duplications) recovers within the
/// Observation 4.4 / Corollary 4.5/4.6 bounds, and packet conservation
/// holds throughout.
#[test]
fn e14_fault_recovery_within_observation_4_4_bounds() {
    let rows = e14_fault_recovery(3, 8).expect("legal configuration");
    assert_eq!(rows.len(), 12, "2 topologies x 3 protocols x 2 scenarios");
    for r in &rows {
        let cell = format!("{}/{}/{}", r.protocol, r.topology, r.scenario);
        assert!(r.conservation_ok, "{cell}: conservation violated");
        assert!(
            r.s_fault > 0,
            "{cell}: fault left no backlog to recover from"
        );
        assert!(
            r.recovery_horizon.is_some(),
            "{cell}: r is strictly below the class threshold, w* must exist"
        );
        assert!(
            r.bound_respected,
            "{cell}: recovery exceeded the Observation 4.4 bound \
             (wait {} vs {:?}, resettle {:?} vs w* {:?})",
            r.post_fault_max_wait, r.recovery_bound, r.resettle_delay, r.recovery_horizon
        );
        if r.scenario == "burst" {
            assert!(
                r.faults_logged > 0,
                "{cell}: burst must be in the fault log"
            );
        }
        if r.scenario == "outage" {
            assert!(
                r.resettle_delay.is_some(),
                "{cell}: backlog never returned to its pre-fault level"
            );
        }
    }
}

/// The crash-safe sweep: one deliberately panicking simulation job is
/// retried, quarantined, and every other job still returns its result.
#[test]
fn sweep_survives_a_panicking_simulation_job() {
    let gaps: Vec<u64> = (2..10).collect(); // 8 jobs: inject every `gap` steps
    let cfg = SweepConfig::default(); // 2 retries, exponential backoff
    let report = aqt_sim::parallel::run_sweep(gaps, &cfg, |i, &gap| {
        assert!(i != 3, "deliberate failure injected into job 3");
        let g = Arc::new(topologies::ring(6));
        let mut eng = Engine::new(Arc::clone(&g), Fifo, EngineConfig::default());
        for t in 0..60u64 {
            if t % gap == 0 {
                eng.step([Injection::new(ring_route(&g, t % 6), 0)])
                    .unwrap();
            } else {
                eng.step(std::iter::empty::<Injection>()).unwrap();
            }
        }
        eng.metrics().absorbed()
    });

    assert_eq!(report.results().count(), 7, "all healthy jobs must finish");
    let quarantined = report.quarantined();
    assert_eq!(quarantined.len(), 1);
    assert_eq!(quarantined[0].index, 3);
    assert_eq!(quarantined[0].attempts, 1 + cfg.max_retries);
    assert!(quarantined[0].message.contains("deliberate failure"));
    // Sparser injections -> fewer absorbed; the healthy results are
    // real simulation outputs, not placeholders.
    let results: Vec<u64> = report.results().copied().collect();
    assert!(results[0] > *results.last().unwrap());
    assert!(report.into_complete().is_err());
}

/// Iteration-boundary checkpointing of the Theorem 3.17 construction:
/// resuming from the captured checkpoint reproduces the uninterrupted
/// run bit-for-bit (reports, backlog series, divergence verdict).
#[test]
fn instability_resume_is_identical_to_uninterrupted() {
    let mut base = InstabilityConfig::new(1, 4);
    base.s0_safety = 1.0;
    base.m_override = Some(4);
    // Explicit sampling interval: the auto interval is derived from
    // cfg.iterations, which differs between the prefix run and the
    // full run.
    base.sample_every = 64;
    base.iterations = 2;

    let full = InstabilityConstruction::new(base.clone())
        .run()
        .expect("legal adversary");

    let mut prefix_cfg = base.clone();
    prefix_cfg.iterations = 1;
    prefix_cfg.checkpoint_iterations = true;
    let prefix = InstabilityConstruction::new(prefix_cfg)
        .run()
        .expect("legal adversary");
    let ck = prefix
        .last_checkpoint
        .expect("checkpoint_iterations must capture a boundary checkpoint");
    assert_eq!(ck.iteration, 1);

    let resumed = InstabilityConstruction::new(base)
        .resume(&ck)
        .expect("legal adversary");

    assert_eq!(resumed.total_steps, full.total_steps);
    assert_eq!(resumed.max_backlog, full.max_backlog);
    assert_eq!(resumed.diverged, full.diverged);
    assert_eq!(resumed.iterations.len(), full.iterations.len());
    for (a, b) in resumed.iterations.iter().zip(&full.iterations) {
        assert_eq!((a.s_start, a.s_end), (b.s_start, b.s_end));
    }
    assert_eq!(resumed.series, full.series);
}

/// `FaultPlan::validate` returns typed errors whose Display strings
/// match the messages the engine has always surfaced.
#[test]
fn fault_plan_validation_errors_are_typed() {
    let e = EdgeId(0);

    // Closed interval [from, until]: from > until is empty.
    let err = FaultPlan::new()
        .with_outage(e, 5, 4)
        .validate()
        .unwrap_err();
    assert_eq!(
        err,
        FaultPlanError::OutageWindow {
            edge: e,
            from: 5,
            until: 4
        }
    );
    assert_eq!(
        err.to_string(),
        "outage on edge EdgeId(0) has empty or zero-start interval [5, 4]"
    );
    // A single-step outage [5, 5] is legal.
    assert!(FaultPlan::new().with_outage(e, 5, 5).validate().is_ok());
    // Zero-start outages are the other arm of the same variant.
    assert!(matches!(
        FaultPlan::new().with_outage(e, 0, 3).validate(),
        Err(FaultPlanError::OutageWindow { from: 0, .. })
    ));

    let err = FaultPlan::new().with_drop(e, 0).validate().unwrap_err();
    assert_eq!(err, FaultPlanError::FaultAtStepZero { edge: e });
    assert_eq!(
        err.to_string(),
        "drop/duplicate on edge EdgeId(0) scheduled at step 0"
    );
    assert!(matches!(
        FaultPlan::new().with_duplicate(e, 0).validate(),
        Err(FaultPlanError::FaultAtStepZero { .. })
    ));

    let g = Arc::new(topologies::ring(6));
    let err = FaultPlan::new()
        .with_burst(0, vec![Injection::new(ring_route(&g, 0), 0)])
        .validate()
        .unwrap_err();
    assert_eq!(err, FaultPlanError::BurstAtStepZero);
    assert_eq!(
        err.to_string(),
        "burst scheduled at step 0 (seed the engine instead)"
    );

    let err = FaultPlan::new()
        .with_burst(5, vec![])
        .validate()
        .unwrap_err();
    assert_eq!(err, FaultPlanError::EmptyBurst { time: 5 });
    assert_eq!(err.to_string(), "burst at step 5 is empty");

    // The enum is a real std error (boxable, source-chainable).
    let _: &dyn std::error::Error = &err;
}

/// Overlapping outage windows on the same edge are deliberately legal:
/// the union of windows applies.
#[test]
fn overlapping_outages_are_legal_and_union() {
    let e = EdgeId(2);
    let plan = FaultPlan::new().with_outage(e, 1, 8).with_outage(e, 5, 12);
    plan.validate().expect("overlap is legal");
    for t in 1..=12 {
        assert!(plan.edge_down(e, t), "step {t} inside the union");
    }
    assert!(!plan.edge_down(e, 13));
    assert!(!plan.edge_down(e, 0));
}

/// A drop and a duplicate scheduled for the same (edge, step) are
/// legal; the drop wins (the engine tests the drop first, so the
/// packet is gone before duplication is considered).
#[test]
fn duplicate_plus_drop_same_edge_and_step_is_legal_drop_wins() {
    let g = Arc::new(topologies::ring(6));
    let plan = FaultPlan::new()
        .with_drop(EdgeId(0), 2)
        .with_duplicate(EdgeId(0), 2);
    plan.validate().expect("dup+drop collision is legal");

    let mut eng = Engine::new(Arc::clone(&g), Fifo, EngineConfig::default());
    eng.install_faults(plan).unwrap();
    // t=1: inject a packet whose route starts at edge 0; it crosses
    // edge 0 during step 2, where both faults are scheduled.
    eng.step([Injection::new(ring_route(&g, 0), 0)]).unwrap();
    eng.step(std::iter::empty::<Injection>()).unwrap();
    eng.step(std::iter::empty::<Injection>()).unwrap();

    let m = eng.metrics();
    assert_eq!(m.dropped(), 1, "the drop fires");
    assert_eq!(m.duplicated(), 0, "the duplicate never sees the packet");
    assert!(eng
        .fault_log()
        .iter()
        .any(|f| matches!(f, FaultEvent::PacketDropped { .. })));
    assert_eq!(eng.backlog(), 0);
}

/// The divergence watchdogs end a run early with a structured report
/// instead of burning the full iteration budget.
#[test]
fn watchdogs_stop_a_run_with_a_structured_report() {
    let mut cfg = InstabilityConfig::new(1, 4);
    cfg.s0_safety = 1.0;
    cfg.m_override = Some(4);
    cfg.iterations = 50;
    cfg.backlog_ceiling = Some(1); // trips at the first stage check
    let run = InstabilityConstruction::new(cfg.clone())
        .run()
        .expect("legal adversary");
    let report = run.watchdog.expect("the ceiling must trip");
    assert!(matches!(
        report.kind,
        WatchdogKind::BacklogCeiling { ceiling: 1 }
    ));
    assert!(report.backlog > 1);
    assert_eq!(report.iteration, 0);
    assert_eq!(report.stage, "bootstrap");
    assert_eq!(run.iterations.len(), 1, "the partial iteration is reported");

    cfg.backlog_ceiling = None;
    cfg.step_budget = Some(1);
    let run = InstabilityConstruction::new(cfg)
        .run()
        .expect("legal adversary");
    let report = run.watchdog.expect("the step budget must trip");
    assert!(matches!(
        report.kind,
        WatchdogKind::StepBudget { budget: 1 }
    ));
    assert!(report.time > 1);
}
