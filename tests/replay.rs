//! The recorded adversary of an instability run is a complete,
//! self-contained artifact: replaying it from scratch against FIFO
//! must reproduce the original execution exactly (the simulator is
//! deterministic and the recording captures every adversary action).

use std::sync::Arc;

use aqt_core::instability::{InstabilityConfig, InstabilityConstruction};
use aqt_graph::Route;
use aqt_protocols::Fifo;
use aqt_sim::{Engine, EngineConfig};

#[test]
fn recorded_schedule_reproduces_the_fifo_run() {
    let mut cfg = InstabilityConfig::new(1, 4);
    cfg.iterations = 1;
    cfg.s0_safety = 2.0;
    cfg.m_margin = 1.5;
    cfg.record_ops = true;
    let construction = InstabilityConstruction::new(cfg);
    let run = construction.run().expect("legal adversary");

    // Replay without any driver logic: same seeds, same ops, quiet
    // elsewhere.
    let graph = Arc::new(construction.geps.graph.clone());
    let ingress = construction.geps.ingress();
    let mut eng = Engine::new(Arc::clone(&graph), Fifo, EngineConfig::default());
    let unit = Route::single(&graph, ingress).expect("unit route");
    for _ in 0..run.s_star {
        eng.seed(unit.clone(), 0).expect("seeding");
    }
    run.recorded
        .clone()
        .run(&mut eng, run.total_steps)
        .expect("replay");

    // The final fresh queue measured by the driver equals the replay's
    // backlog (the driver ends an iteration with only fresh packets in
    // the network).
    let s_end = run.iterations.last().expect("one iteration").s_end;
    assert_eq!(
        eng.backlog(),
        s_end,
        "replay backlog must equal the driver's measured fresh queue"
    );
    // And those packets all sit at the ingress with unit remaining
    // routes, ready for the next iteration.
    assert_eq!(eng.queue_len(ingress) as u64, s_end);
    assert!(eng.queue_iter(ingress).all(|p| p.remaining() == 1));
}
