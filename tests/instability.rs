//! Integration tests for the instability side (Section 3): reduced-
//! scale versions of experiments E1–E4 and E10.

use aqt_core::experiments::{e2_gadget_amplification, e3_bootstrap, e4_stitch};
use aqt_core::instability::{InstabilityConfig, InstabilityConstruction};

/// E1 at reduced scale: two closed-loop iterations at ε = 1/4, full
/// validation on. The fresh queue must grow both times — FIFO is
/// unstable at r = 3/4 under a certified rate-(3/4) adversary.
#[test]
fn theorem_3_17_two_iterations_diverge() {
    let mut cfg = InstabilityConfig::new(1, 4);
    cfg.iterations = 2;
    cfg.s0_safety = 2.0;
    cfg.m_margin = 1.5;
    let run = InstabilityConstruction::new(cfg)
        .run()
        .expect("the composed adversary must be rate-legal");
    assert_eq!(run.iterations.len(), 2);
    for (i, it) in run.iterations.iter().enumerate() {
        assert!(
            it.s_end > it.s_start,
            "iteration {} must grow: {} -> {}",
            i + 1,
            it.s_start,
            it.s_end
        );
    }
    assert!(run.diverged);
    // growth should roughly match r³·A^{M-1}/4 > margin = 1.5
    let g = run.iterations[0].s_end as f64 / run.iterations[0].s_start as f64;
    assert!(g > 1.2, "first-iteration growth {g} suspiciously small");
}

/// E2: the gadget step amplifies by at least (1+ε) (within 3% slack
/// for integer rounding) at two different ε and queue sizes.
#[test]
fn lemma_3_6_amplification() {
    let rows = e2_gadget_amplification(&[(1, 4), (3, 10)], &[1.0, 3.0]).expect("legal");
    assert_eq!(rows.len(), 4);
    for r in &rows {
        assert!(
            r.amp_measured >= r.amp_promised * 0.97,
            "eps={:?} S={}: measured {} promised {}",
            r.eps,
            r.s,
            r.amp_measured,
            r.amp_promised
        );
        // theory's S' prediction is accurate to a few percent
        let rel = r.s_prime_measured as f64 / r.s_prime_theory.max(1) as f64;
        assert!(
            (0.95..=1.05).contains(&rel),
            "S' measured {} vs theory {}",
            r.s_prime_measured,
            r.s_prime_theory
        );
    }
}

/// E3: the bootstrap achieves the same amplification from a flat
/// queue.
#[test]
fn lemma_3_15_bootstrap() {
    let rows = e3_bootstrap(&[(1, 4), (1, 5)], &[1.0, 2.0]).expect("legal");
    for r in &rows {
        assert!(
            r.amp_measured >= r.amp_promised * 0.97,
            "eps={:?} S={}: measured {} promised {}",
            r.eps,
            r.s,
            r.amp_measured,
            r.amp_promised
        );
    }
}

/// E4: the stitch retains r³ of the queue as fresh packets, across
/// rates.
#[test]
fn lemma_3_16_stitch_retention() {
    let rows = e4_stitch(&[(11, 20), (3, 4), (9, 10)], 1000).expect("legal");
    for r in &rows {
        let rel = r.retention / r.r_cubed;
        assert!(
            (0.9..=1.1).contains(&rel),
            "retention {} vs r³ {} at rate {}",
            r.retention,
            r.r_cubed,
            r.rate
        );
    }
}

/// E10 at reduced scale: the recorded FIFO adversary replayed against
/// LIS must not blow up the backlog the way it does for FIFO — the
/// thinning mechanism needs FIFO's arrival-order service.
#[test]
fn lis_dismantles_the_fifo_adversary() {
    // Reduced scale: priority protocols scan whole buffers per step,
    // so the replay is quadratic in queue size.
    let mut cfg = aqt_core::instability::InstabilityConfig::new(1, 4);
    cfg.iterations = 1;
    cfg.s0_safety = 1.0;
    cfg.m_override = Some(4);
    let rows = aqt_core::experiments::e10_landscape_with(cfg).expect("legal");
    let get = |name: &str| {
        rows.iter()
            .find(|r| r.protocol == name)
            .unwrap_or_else(|| panic!("{name} missing"))
    };
    let fifo = get("FIFO");
    let lis = get("LIS");
    // FIFO ends the iteration with a *grown* fresh queue; LIS ends
    // with far less in flight (it pushes old packets through before
    // the thinning can trap them).
    assert!(
        fifo.final_backlog > lis.final_backlog,
        "FIFO final backlog {} must exceed LIS's {}",
        fifo.final_backlog,
        lis.final_backlog
    );
}

/// The E10 replay engines now validate injections against the
/// construction's identity model `rate(1/2 + ε)` (the
/// `EngineConfig::validate` convention). Validation can only reject
/// illegal streams, and the recorded stream is legal by construction,
/// so the validated landscape must be row-for-row identical to the
/// unvalidated one.
#[test]
fn e10_identity_model_reproduces_the_unvalidated_landscape() {
    let mut cfg = aqt_core::instability::InstabilityConfig::new(1, 4);
    cfg.iterations = 1;
    cfg.s0_safety = 1.0;
    cfg.m_override = Some(4);
    let validated = aqt_core::experiments::e10_landscape_with(cfg.clone()).expect("legal");
    let unvalidated = aqt_core::experiments::e10_landscape_with_model(cfg, None).expect("legal");
    assert_eq!(
        validated, unvalidated,
        "the identity rate model must not change any replay's behavior"
    );
}
