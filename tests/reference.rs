//! Differential testing: a tiny, independent re-implementation of the
//! AQT model (Section 2 of the paper), written for obviousness rather
//! than speed, compared step-by-step against `aqt_sim::Engine` on
//! randomized workloads.
//!
//! The reference keeps whole-network state as plain vectors and
//! re-derives everything each step; the only shared assumptions with
//! the engine are the model semantics themselves (send one per
//! nonempty buffer; receive/absorb; inject; transit-before-injection
//! arrival order, transits ordered by sending edge).

use std::collections::VecDeque;
use std::sync::Arc;

use aqt_graph::{topologies, EdgeId, Graph, Route};
use aqt_protocols::{Fifo, Lifo};
use aqt_sim::engine::Injection;
use aqt_sim::{Engine, EngineConfig, Protocol};
use proptest::prelude::*;

/// Per-edge (packet id, hop) pairs.
type BufferFingerprint = Vec<Vec<(u64, usize)>>;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

/// Which reference scheduling rule to apply.
#[derive(Clone, Copy, PartialEq)]
enum RefPolicy {
    Fifo,
    Lifo,
}

/// One reference packet: (id, route, hop).
#[derive(Clone, Debug, PartialEq)]
struct RefPacket {
    id: u64,
    route: Vec<EdgeId>,
    hop: usize,
}

/// The reference simulator.
struct Reference {
    policy: RefPolicy,
    /// buffer per edge, front = earliest arrival
    buffers: Vec<VecDeque<RefPacket>>,
    absorbed: Vec<u64>,
    next_id: u64,
}

impl Reference {
    fn new(graph: &Graph, policy: RefPolicy) -> Self {
        let m = graph.edge_count();
        Reference {
            policy,
            buffers: vec![VecDeque::new(); m],
            absorbed: Vec::new(),
            next_id: 0,
        }
    }

    fn inject_now(&mut self, route: &[EdgeId]) {
        let p = RefPacket {
            id: self.next_id,
            route: route.to_vec(),
            hop: 0,
        };
        self.next_id += 1;
        self.buffers[route[0].index()].push_back(p);
    }

    fn step(&mut self, injections: &[Vec<EdgeId>]) {
        // substep 1: pick one per nonempty buffer
        let mut sent: Vec<RefPacket> = Vec::new();
        for ei in 0..self.buffers.len() {
            if self.buffers[ei].is_empty() {
                continue;
            }
            let p = match self.policy {
                RefPolicy::Fifo => self.buffers[ei].pop_front().unwrap(),
                RefPolicy::Lifo => self.buffers[ei].pop_back().unwrap(),
            };
            sent.push(p);
        }
        // substep 2a: receive, in ascending order of the edge crossed
        // (the order `sent` was built in)
        for mut p in sent {
            if p.hop + 1 == p.route.len() {
                self.absorbed.push(p.id);
            } else {
                p.hop += 1;
                let next = p.route[p.hop];
                self.buffers[next.index()].push_back(p);
            }
        }
        // substep 2b: inject
        for r in injections {
            self.inject_now(r);
        }
    }

    /// (buffer contents as (id, hop) pairs per edge, absorbed ids)
    fn fingerprint(&self) -> (BufferFingerprint, &[u64]) {
        (
            self.buffers
                .iter()
                .map(|b| b.iter().map(|p| (p.id, p.hop)).collect())
                .collect(),
            &self.absorbed,
        )
    }
}

/// Drive both simulators with identical random traffic and compare
/// full state after every step.
fn differential_run(policy: RefPolicy, seed: u64, steps: u64) {
    let graph = topologies::torus(3, 3);
    let arc = Arc::new(graph.clone());
    let mut reference = Reference::new(&graph, policy);
    let boxed: Box<dyn Protocol> = match policy {
        RefPolicy::Fifo => Box::new(Fifo),
        RefPolicy::Lifo => Box::new(Lifo),
    };
    let mut engine = Engine::new(Arc::clone(&arc), boxed, EngineConfig::default());

    let mut rng = StdRng::seed_from_u64(seed);
    // pregenerate a route pool
    let routes: Vec<Route> = aqt_adversary::stochastic::random_routes(&arc, 4, 24, seed);

    for _t in 1..=steps {
        let k = rng.gen_range(0..3usize);
        let picks: Vec<&Route> = (0..k)
            .map(|_| &routes[rng.gen_range(0..routes.len())])
            .collect();
        let ref_inj: Vec<Vec<EdgeId>> = picks.iter().map(|r| r.edges().to_vec()).collect();
        let eng_inj: Vec<Injection> = picks
            .iter()
            .map(|r| Injection::new((*r).clone(), 0))
            .collect();
        reference.step(&ref_inj);
        engine.step(eng_inj).expect("no validators");

        // compare state
        let (ref_buffers, ref_absorbed) = reference.fingerprint();
        for e in arc.edge_ids() {
            let eng_buf: Vec<(u64, usize)> = engine
                .queue_iter(e)
                .map(|p| (p.id.0, p.traversed()))
                .collect();
            assert_eq!(
                eng_buf,
                ref_buffers[e.index()],
                "buffer divergence at edge {e} (seed {seed})"
            );
        }
        assert_eq!(engine.metrics().absorbed(), ref_absorbed.len() as u64);
    }
}

#[test]
fn fifo_matches_reference() {
    for seed in 0..8 {
        differential_run(RefPolicy::Fifo, seed, 300);
    }
}

#[test]
fn lifo_matches_reference() {
    for seed in 100..108 {
        differential_run(RefPolicy::Lifo, seed, 300);
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    /// Randomized seeds and lengths (shorter runs, more variety).
    #[test]
    fn fifo_differential_property(seed in 0u64..10_000, steps in 10u64..120) {
        differential_run(RefPolicy::Fifo, seed, steps);
    }
}
