//! The queue observatory must tell the truth: the packet-lifecycle
//! spans it emits are a faithful sampled projection of the trajectory.
//! With 1-in-1 sampling the span stream determines the full lifecycle
//! of every packet, so it can be checked against [`Metrics`] exactly —
//! and the sharded engine must emit the *same* spans as the sequential
//! pipeline, shard tags aside.

use std::sync::{Arc, Mutex};

use aqt_graph::{topologies, EdgeId, Graph, Route};
use aqt_protocols::registry::by_name;
use aqt_sim::telemetry::{TelemetryEvent, TelemetrySink};
use aqt_sim::{
    CertificateSpec, Engine, EngineConfig, FaultPlan, Injection, ObserveConfig, Protocol, Ratio,
    SentinelConfig, ShardPlan, TelemetryConfig,
};
use proptest::prelude::*;

/// One collected span: (time, packet, op, edge, hop, wait, shard).
type Collected = (u64, u64, &'static str, u32, u32, u64, u32);

/// A sink keeping every span record in memory.
#[derive(Clone)]
struct SpanCollector(Arc<Mutex<Vec<Collected>>>);

impl TelemetrySink for SpanCollector {
    fn record(&mut self, event: &TelemetryEvent<'_>) {
        if let TelemetryEvent::Span {
            time,
            packet,
            op,
            edge,
            hop,
            wait,
            shard,
            ..
        } = event
        {
            self.0
                .lock()
                .unwrap()
                .push((*time, *packet, op.as_str(), *edge, *hop, *wait, *shard));
        }
    }
}

/// A length-3 route around `ring(6)` starting at edge `start`.
fn ring_route(g: &Arc<Graph>, start: u64) -> Route {
    let ids = vec![
        EdgeId((start % 6) as u32),
        EdgeId(((start + 1) % 6) as u32),
        EdgeId(((start + 2) % 6) as u32),
    ];
    Route::new(g, ids).expect("contiguous ring edges")
}

/// Build an engine with full-coverage span sampling wired to a fresh
/// collector, seed a cohort, install `plan`, and drive `inj` to step
/// `horizon`.
fn observed_run(
    g: &Arc<Graph>,
    protocol: Box<dyn Protocol>,
    shards: Option<ShardPlan>,
    plan: &FaultPlan,
    cohort: u64,
    inj: &[(u64, u64)],
    horizon: u64,
) -> (Engine<Box<dyn Protocol>>, Vec<Collected>) {
    let mut eng = Engine::new(Arc::clone(g), protocol, EngineConfig::default());
    if let Some(plan) = shards {
        eng.set_shards(plan).unwrap();
    }
    eng.attach_telemetry(TelemetryConfig::default());
    eng.attach_observatory(
        ObserveConfig::default()
            .with_cadence(8)
            .with_span_sample_every(1),
    );
    let collector = SpanCollector(Arc::new(Mutex::new(Vec::new())));
    eng.set_telemetry_sink(Box::new(collector.clone()));
    eng.seed_cohort(ring_route(g, 0), 7, cohort).unwrap();
    eng.install_faults(plan.clone()).unwrap();
    for t in 1..=horizon {
        let packets: Vec<Injection> = inj
            .iter()
            .filter(|&&(at, _)| at == t)
            .map(|&(_, start)| Injection::new(ring_route(g, start), start as u32))
            .collect();
        eng.step(packets).unwrap();
    }
    let spans = collector.0.lock().unwrap().clone();
    (eng, spans)
}

fn count_op(spans: &[Collected], op: &str) -> u64 {
    spans.iter().filter(|s| s.2 == op).count() as u64
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(32))]

    /// Random runs (seeded cohort + schedule + loss/duplication/outage
    /// faults) at 1 and 4 shards, spans sampled 1-in-1: the stream
    /// reconstructs every packet's lifecycle (inject → one send per
    /// hop, enqueues between, terminal absorb), its totals match
    /// [`Metrics`] exactly, conservation holds span-side, and the
    /// sharded stream equals the sequential one up to shard tags.
    #[test]
    fn spans_reconstruct_lifecycles_and_match_metrics(
        proto in 0usize..3,
        cohort in 0u64..4,
        inj_raw in prop::collection::vec(0u64..180, 0..24),
        drops in prop::collection::vec(0u64..150, 0..3),
        dups in prop::collection::vec(0u64..150, 0..3),
        outage in 0u64..150,
        outage_len in 0u64..6,
    ) {
        let g = Arc::new(topologies::ring(6));
        let name = ["FIFO", "LIFO", "LIS"][proto];
        let inj: Vec<(u64, u64)> = inj_raw.iter().map(|&v| (1 + v / 6, v % 6)).collect();

        let mut plan = FaultPlan::new();
        for &d in &drops {
            plan = plan.with_drop(EdgeId((d % 6) as u32), 1 + d / 6);
        }
        for &d in &dups {
            plan = plan.with_duplicate(EdgeId((d % 6) as u32), 1 + d / 6);
        }
        let from = 1 + outage / 6;
        plan = plan.with_outage(EdgeId((outage % 6) as u32), from, from + outage_len);

        let run = |shards: Option<ShardPlan>| {
            observed_run(&g, by_name(name, 11).unwrap(), shards, &plan, cohort, &inj, 40)
        };
        let (seq, seq_spans) = run(None);
        let (sharded, sharded_spans) = run(Some(ShardPlan::striped(6, 4)));

        // Span totals against the engine's own metrics: 1-in-1
        // sampling sees every event of every packet.
        let m = seq.metrics();
        prop_assert_eq!(count_op(&seq_spans, "inject"), m.injected());
        prop_assert_eq!(count_op(&seq_spans, "dup"), m.duplicated());
        prop_assert_eq!(count_op(&seq_spans, "absorb"), m.absorbed());
        prop_assert_eq!(count_op(&seq_spans, "drop"), m.dropped());
        let crossings: u64 = m.crossings_per_edge().iter().sum();
        prop_assert_eq!(count_op(&seq_spans, "send"), crossings);

        // Span-side conservation: every birth (inject or duplicate)
        // ends in a terminal span or is still live in a queue.
        let live: u64 = g.edge_ids().map(|e| seq.queue_len(e) as u64).sum();
        prop_assert_eq!(
            count_op(&seq_spans, "inject") + count_op(&seq_spans, "dup"),
            count_op(&seq_spans, "absorb") + count_op(&seq_spans, "drop") + live
        );

        // Per-packet lifecycle reconstruction for packets born by
        // injection (clones start mid-route at their dup hop): an
        // absorbed packet crossed hops 0..=H exactly once each and was
        // enqueued at hops 1..=H on the way.
        let injected: std::collections::BTreeSet<u64> = seq_spans
            .iter()
            .filter(|s| s.2 == "inject")
            .map(|s| s.1)
            .collect();
        for s in seq_spans.iter().filter(|s| s.2 == "absorb") {
            if !injected.contains(&s.1) {
                continue;
            }
            let mut send_hops: Vec<u32> = seq_spans
                .iter()
                .filter(|x| x.1 == s.1 && x.2 == "send")
                .map(|x| x.4)
                .collect();
            send_hops.sort_unstable();
            let expect: Vec<u32> = (0..=s.4).collect();
            prop_assert_eq!(&send_hops, &expect, "packet {} send hops", s.1);
            let mut enq_hops: Vec<u32> = seq_spans
                .iter()
                .filter(|x| x.1 == s.1 && x.2 == "enqueue")
                .map(|x| x.4)
                .collect();
            enq_hops.sort_unstable();
            let expect: Vec<u32> = (1..=s.4).collect();
            prop_assert_eq!(&enq_hops, &expect, "packet {} enqueue hops", s.1);
        }

        // The shard count must be invisible in the span stream: same
        // multiset of records once the shard tag is erased.
        let erase = |spans: &[Collected]| {
            let mut v: Vec<Collected> = spans
                .iter()
                .map(|&(t, p, op, e, h, w, _)| (t, p, op, e, h, w, 0))
                .collect();
            v.sort_unstable();
            v
        };
        prop_assert_eq!(erase(&seq_spans), erase(&sharded_spans));

        // The sharded run's own accounting agrees with its spans too.
        let sm = sharded.metrics();
        prop_assert_eq!(count_op(&sharded_spans, "inject"), sm.injected());
        prop_assert_eq!(count_op(&sharded_spans, "absorb"), sm.absorbed());
    }
}

/// The observatory's in-memory series: backlog ticks on cadence, the
/// margin series inheriting the sentinel's certificate bound, and the
/// per-shard load tally with its imbalance ratio.
#[test]
fn observatory_series_margin_and_shard_load() {
    let g = Arc::new(topologies::ring(8));
    let mut eng = Engine::new(Arc::clone(&g), by_name("FIFO", 3).unwrap(), {
        EngineConfig::default()
    });
    eng.set_shards(ShardPlan::striped(8, 4)).unwrap();
    // S-degraded certificate (Observation 4.4): S = 16, w = 8,
    // r = 1/8 < 1/(d+1) = 1/4.
    eng.attach_sentinel(
        SentinelConfig::all_halt().with_certificate(CertificateSpec {
            window: 8,
            rate: Ratio::new(1, 8),
            d: 3,
            initial: 16,
            time_priority: false,
        }),
    );
    eng.attach_observatory(ObserveConfig::default().with_cadence(2));
    let bound = eng.observatory().bound().expect("certificate bound");

    for e in 0..8 {
        let ids = vec![EdgeId(e), EdgeId((e + 1) % 8), EdgeId((e + 2) % 8)];
        let route = Route::new(&g, ids).expect("ring edges");
        eng.seed_cohort(route, e, 2).unwrap();
    }
    eng.run_quiet(20).unwrap();

    let obs = eng.observatory();
    assert_eq!(obs.ticks(), 10, "cadence-2 ticks over 20 steps");
    assert_eq!(obs.times().first(), Some(&2));
    assert_eq!(obs.margins().len(), 10);
    let min = obs.min_margin().expect("margin series");
    assert!(min >= 0, "a quiet drain must stay certified");
    assert_eq!(
        min,
        bound as i64 - eng.metrics().max_buffer_wait() as i64,
        "margin is bound − running max wait"
    );
    assert_eq!(obs.shard_sent().len(), 4);
    let sent: u64 = obs.shard_sent().iter().sum();
    let crossings: u64 = eng.metrics().crossings_per_edge().iter().sum();
    assert_eq!(sent, crossings, "per-shard tallies sum to all crossings");
    assert!(obs.shard_imbalance().expect("sharded run") >= 1.0);

    // Detached engines observe nothing and remember nothing.
    let mut quiet = Engine::new(g, by_name("FIFO", 3).unwrap(), EngineConfig::default());
    quiet.run_quiet(20).unwrap();
    assert_eq!(quiet.observatory().ticks(), 0);
    assert_eq!(quiet.observatory().spans_emitted(), 0);
}
