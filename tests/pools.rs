//! Integration of the route-pool, periodic-adversary and certificate
//! machinery: deterministic workloads built from shortest-path pools
//! (the paper's own route discipline) must respect the Section 4
//! bounds, exactly like the randomized ones.

use std::sync::Arc;

use aqt_adversary::periodic::{PeriodicAdversary, Stream};
use aqt_core::theory::StabilityCertificate;
use aqt_graph::{catalog, paths};
use aqt_protocols::by_name;
use aqt_sim::{run_with_source, AdversaryModelSpec, Engine, EngineConfig, Ratio};

/// Shortest-path streams, each injecting exactly once per period
/// `P = n_streams·(d+1)` at a distinct phase. Any sliding window of
/// length `P` then carries at most one packet per stream per edge, so
/// the aggregate is a `(P, 1/(d+1))` adversary by construction — and
/// Theorem 4.1's `⌈P/(d+1)⌉` bound must hold for every greedy
/// protocol.
#[test]
fn shortest_path_periodic_load_respects_bounds() {
    let graph = Arc::new(catalog::build("torus-3x3").expect("catalog"));
    let d = 3usize;
    let pool = paths::shortest_path_pool(&graph, d);
    assert!(!pool.is_empty());
    let selected: Vec<_> = pool.into_iter().step_by(3).take(12).collect();
    let n_streams = selected.len() as u64;
    let period = n_streams * (d as u64 + 1); // stream rate 1/period
    let stream_rate = Ratio::new(1, period);
    let streams: Vec<Stream> = selected
        .iter()
        .enumerate()
        .map(|(i, r)| Stream {
            // distinct phases => distinct injection residues mod period
            phase: i as u64,
            ..Stream::new(r.clone(), stream_rate, i as u32)
        })
        .collect();
    let budget = Ratio::new(1, d as u64 + 1);
    let adv = PeriodicAdversary::new(&graph, streams, budget).expect("within budget");

    let cert = StabilityCertificate::new(period, budget, d);
    let bound = cert.greedy_bound().expect("rate = 1/(d+1)");
    assert_eq!(bound, n_streams); // ⌈P/(d+1)⌉

    for proto in ["FIFO", "LIFO", "NTG", "FTG"] {
        let mut eng = Engine::new(
            Arc::clone(&graph),
            by_name(proto, 0).expect("protocol"),
            EngineConfig {
                validate: Some(AdversaryModelSpec::window(period, budget)),
                ..Default::default()
            },
        );
        let mut a = adv.clone();
        run_with_source(&mut eng, &mut a, 20_000).expect("legal periodic load");
        assert!(
            eng.metrics().max_buffer_wait() <= bound,
            "{proto}: wait {} > bound {bound}",
            eng.metrics().max_buffer_wait()
        );
        assert_eq!(
            eng.backlog() + eng.metrics().absorbed(),
            eng.metrics().injected()
        );
        assert!(eng.metrics().injected() > 0, "{proto}: traffic flowed");
    }
}

/// The diameter drives sensible pool sizes across the catalog.
#[test]
fn pools_exist_across_the_catalog() {
    for (name, graph) in catalog::standard_suite() {
        let diam = paths::diameter(&graph);
        assert!(diam >= 1, "{name} has paths");
        let pool = paths::shortest_path_pool(&graph, diam);
        assert!(
            !pool.is_empty(),
            "{name}: nonempty pool at its own diameter"
        );
        let longest = pool.iter().map(|r| r.len()).max().expect("nonempty");
        assert!(longest <= diam);
    }
}
