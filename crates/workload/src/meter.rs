//! Goodput metering: the split of raw throughput into useful and
//! thrown-away work.
//!
//! The engine's own metrics count *absorptions*; under a closed loop
//! some of those completions arrive after the requesting client has
//! already timed out — work the network did for nobody. The meter
//! tracks the request-level ledger ([`WorkloadCounters`]) at window
//! granularity and emits one [`TelemetryEvent::WorkloadWindow`] per
//! window: running totals plus the per-window `goodput` (on-time
//! completions), `wasted` (stale completions), and `offered` (attempts
//! issued) deltas.

use aqt_sim::telemetry::{Provenance, SharedSink, TelemetryEvent, WorkloadCounters};
use aqt_sim::Time;

/// Windowed goodput/waste/offered series over the request ledger.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct GoodputMeter {
    /// Window length in steps (`0` disables window emission).
    window: Time,
    /// Start of the current window.
    window_start: Time,
    /// Ledger totals at the start of the current window.
    base: WorkloadCounters,
}

impl GoodputMeter {
    /// A meter emitting every `window` steps (`0` = never).
    pub fn new(window: Time) -> Self {
        GoodputMeter {
            window,
            window_start: 0,
            base: WorkloadCounters::default(),
        }
    }

    /// Per-window goodput: completions on time.
    pub fn goodput_delta(base: &WorkloadCounters, now: &WorkloadCounters) -> u64 {
        now.requests_completed - base.requests_completed
    }

    /// Per-window wasted work: completions after the client moved on.
    pub fn wasted_delta(base: &WorkloadCounters, now: &WorkloadCounters) -> u64 {
        now.completions_wasted - base.completions_wasted
    }

    /// Per-window offered load: attempts issued.
    pub fn offered_delta(base: &WorkloadCounters, now: &WorkloadCounters) -> u64 {
        now.attempts_issued - base.attempts_issued
    }

    /// Close any windows that ended at or before `now`, emitting one
    /// record per window through `sink`.
    pub fn roll(
        &mut self,
        now: Time,
        counters: &WorkloadCounters,
        sink: Option<&SharedSink>,
        provenance: &Provenance,
    ) {
        if self.window == 0 {
            return;
        }
        while now >= self.window_start + self.window {
            let end = self.window_start + self.window;
            if let Some(sink) = sink {
                sink.record(&TelemetryEvent::WorkloadWindow {
                    start: self.window_start,
                    end,
                    counters: *counters,
                    goodput: Self::goodput_delta(&self.base, counters),
                    wasted: Self::wasted_delta(&self.base, counters),
                    offered: Self::offered_delta(&self.base, counters),
                    provenance,
                });
            }
            self.window_start = end;
            self.base = *counters;
        }
    }

    /// Checkpoint accessors: `(window_start, base)`.
    pub(crate) fn state(&self) -> (Time, WorkloadCounters) {
        (self.window_start, self.base)
    }

    /// Restore from checkpointed state.
    pub(crate) fn restore(&mut self, window_start: Time, base: WorkloadCounters) {
        self.window_start = window_start;
        self.base = base;
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::{Arc, Mutex};

    use aqt_sim::telemetry::TelemetrySink;

    /// `(start, end, goodput, wasted, offered)` of one emitted window.
    type WindowRow = (Time, Time, u64, u64, u64);

    #[derive(Clone, Default)]
    struct Capture(Arc<Mutex<Vec<WindowRow>>>);

    impl TelemetrySink for Capture {
        fn record(&mut self, event: &TelemetryEvent<'_>) {
            if let TelemetryEvent::WorkloadWindow {
                start,
                end,
                goodput,
                wasted,
                offered,
                ..
            } = event
            {
                self.0
                    .lock()
                    .unwrap()
                    .push((*start, *end, *goodput, *wasted, *offered));
            }
        }
    }

    #[test]
    fn windows_carry_deltas_not_totals() {
        let capture = Capture::default();
        let sink = SharedSink::new(capture.clone());
        let prov = Provenance::default();
        let mut meter = GoodputMeter::new(10);
        let mut c = WorkloadCounters {
            requests_completed: 3,
            completions_wasted: 1,
            attempts_issued: 5,
            ..WorkloadCounters::default()
        };
        meter.roll(10, &c, Some(&sink), &prov);
        c.requests_completed = 4;
        c.attempts_issued = 9;
        meter.roll(20, &c, Some(&sink), &prov);
        let got = capture.0.lock().unwrap().clone();
        assert_eq!(got, vec![(0, 10, 3, 1, 5), (10, 20, 1, 0, 4)]);
    }

    #[test]
    fn zero_window_never_emits() {
        let capture = Capture::default();
        let sink = SharedSink::new(capture.clone());
        let mut meter = GoodputMeter::new(0);
        meter.roll(
            100,
            &WorkloadCounters::default(),
            Some(&sink),
            &Provenance::default(),
        );
        assert!(capture.0.lock().unwrap().is_empty());
    }
}
