//! The closed-loop driver: client population ⇄ bounded admission queue
//! ⇄ engine, advanced in lockstep one engine step at a time.
//!
//! ## The loop, per step
//!
//! 1. **Dispatch** — unless the service is paused, pick one queued
//!    attempt per the [`Shed`] discipline and inject it into the
//!    engine (the network path is the unit-capacity server). The
//!    realized injection is appended to a [`Schedule`], so the whole
//!    closed-loop run can be replayed *open-loop* bit-identically.
//! 2. **Step the engine** — injections are validated against the
//!    configured [`AdversaryModelSpec`] exactly like open-loop
//!    adversaries, so E16-style comparisons stay apples-to-apples.
//! 3. **Replies** — drain the engine's absorption log; each reply
//!    completes the request its client is still waiting on
//!    (*goodput*) or is counted as thrown-away work (*wasted*).
//! 4. **Clients** — time out overdue attempts (retry or abandon per
//!    [`RetryPolicy`]), resume backoffs, issue new requests; admit new
//!    attempts to the bounded queue, shedding per policy.
//! 5. **Conserve** — check the request-conservation invariant
//!    (`issued = completed + abandoned + shed + in-flight`) and fail
//!    with a full [`ViolationReport`] + [`ReproBundle`] if the ledger
//!    leaks.
//! 6. **Meter** — roll the goodput window, emitting
//!    `workload_window` telemetry records.
//!
//! Everything is a pure function of [`ClosedLoopConfig::seed`]: client
//! order is fixed, the only randomness is the seeded retry jitter, and
//! the engine itself is deterministic.

use std::collections::{BTreeMap, VecDeque};
use std::sync::Arc;

use aqt_graph::{topologies, EdgeId, Graph, Route};
use aqt_protocols::Fifo;
use aqt_sim::rate::AdversaryModelSpec;
use aqt_sim::sentinel::{InvariantKind, ReproBundle, Violation, ViolationReport};
use aqt_sim::snapshot;
use aqt_sim::telemetry::{Provenance, SharedSink, TelemetryConfig, WorkloadCounters};
use aqt_sim::ObserveConfig;
use aqt_sim::{Engine, EngineConfig, EngineError, Injection, Protocol, Schedule, Time};

use crate::meter::GoodputMeter;
use crate::policy::{RetryPolicy, ServicePolicy, Shed};
use crate::population::{ClientConfig, ClientPopulation, Issue};
use crate::rng::Rng64;

/// Errors surfaced by the closed-loop driver.
#[derive(Debug)]
pub enum WorkloadError {
    /// The engine rejected a step (rate violation, protocol bug, …).
    Engine(EngineError),
    /// The request-conservation invariant failed. Carries the full
    /// report: what leaked, when, and the reproduction bundle.
    Invariant(Box<ViolationReport>),
    /// A workload checkpoint could not be restored.
    Checkpoint(String),
    /// A workload checkpoint carried an unsupported schema version.
    SchemaMismatch {
        /// The version stamped on the checkpoint.
        found: u32,
        /// The version this build reads and writes.
        expected: u32,
    },
}

impl std::fmt::Display for WorkloadError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            WorkloadError::Engine(e) => write!(f, "{e}"),
            WorkloadError::Invariant(r) => write!(f, "{r}"),
            WorkloadError::Checkpoint(s) => write!(f, "workload checkpoint rejected: {s}"),
            WorkloadError::SchemaMismatch { found, expected } => write!(
                f,
                "workload checkpoint schema {found} but this build expects {expected}"
            ),
        }
    }
}

impl std::error::Error for WorkloadError {}

impl From<EngineError> for WorkloadError {
    fn from(e: EngineError) -> Self {
        WorkloadError::Engine(e)
    }
}

impl From<WorkloadError> for aqt_sim::SimError {
    fn from(e: WorkloadError) -> Self {
        match e {
            WorkloadError::Engine(e) => aqt_sim::SimError::from(e),
            WorkloadError::Invariant(r) => aqt_sim::SimError::InvariantViolated(r),
            WorkloadError::Checkpoint(s) => aqt_sim::SimError::Checkpoint(s),
            WorkloadError::SchemaMismatch { found, expected } => {
                aqt_sim::SimError::SchemaMismatch { found, expected }
            }
        }
    }
}

/// Full closed-loop configuration.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ClosedLoopConfig {
    /// Seed for every workload decision (retry jitter).
    pub seed: u64,
    /// The client side: population size, think/timeout/retry.
    pub clients: ClientConfig,
    /// The server side: queue bound, shed behaviour, pause window.
    pub service: ServicePolicy,
    /// Length of the network path the requests traverse (the base
    /// round-trip is `path_len` steps).
    pub path_len: u32,
    /// Validate realized injections against this adversary model —
    /// the closed-loop source reports its injection sequence to the
    /// same trackers as the open-loop adversaries.
    pub validate: Option<AdversaryModelSpec>,
    /// Goodput-meter window (steps, `0` = no window telemetry).
    pub window: Time,
}

/// An attempt waiting in the bounded admission queue.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct QueuedAttempt {
    /// The attempt id (the engine cohort tag).
    pub attempt_id: u32,
    /// The issuing client.
    pub client: u32,
    /// When the client gives up on this attempt.
    pub deadline: Time,
}

/// The closed-loop driver. See the module docs for the step anatomy.
pub struct ClosedLoop<P: Protocol> {
    cfg: ClosedLoopConfig,
    engine: Engine<P>,
    route: Route,
    population: ClientPopulation,
    queue: VecDeque<QueuedAttempt>,
    /// Attempt id → issuing client, for every attempt alive in the
    /// queue or the network. `BTreeMap` for deterministic state
    /// comparison; its size is bounded by queue + in-network attempts.
    owner: BTreeMap<u32, u32>,
    rng: Rng64,
    counters: WorkloadCounters,
    meter: GoodputMeter,
    realized: Schedule,
    next_attempt: u32,
    sink: Option<SharedSink>,
    provenance: Provenance,
    scratch: Vec<Issue>,
}

impl ClosedLoop<Fifo> {
    /// The standard harness: a directed line of `cfg.path_len` edges
    /// with FIFO forwarding, every request routed over the full path.
    /// (The network discipline barely matters here — at one dispatch
    /// per step the path never queues — the *admission* discipline in
    /// [`ServicePolicy`] is what E17 sweeps.)
    pub fn on_line(cfg: ClosedLoopConfig) -> Self {
        let graph = Arc::new(topologies::line(cfg.path_len.max(1) as usize));
        let edges: Vec<EdgeId> = (0..graph.edge_count() as u32).map(EdgeId).collect();
        let route = Route::new(&graph, edges).expect("line edges form a route");
        ClosedLoop::new(cfg, graph, route, Fifo)
    }
}

impl<P: Protocol> ClosedLoop<P> {
    /// A driver over an arbitrary graph: every request traverses
    /// `route`.
    pub fn new(cfg: ClosedLoopConfig, graph: Arc<Graph>, route: Route, protocol: P) -> Self {
        let provenance = Provenance {
            seed: Some(cfg.seed),
            protocol: protocol.name().to_string(),
            model_fingerprint: cfg.validate.as_ref().map(AdversaryModelSpec::fingerprint),
            ..Provenance::default()
        };
        let mut engine = Engine::new(
            graph,
            protocol,
            EngineConfig {
                validate: cfg.validate.clone(),
                // Backlog samples share the goodput-window cadence, so
                // the two series land on the same time axis (0 = off).
                sample_every: cfg.window,
                ..EngineConfig::default()
            },
        );
        engine.record_absorptions(true);
        ClosedLoop {
            population: ClientPopulation::new(&cfg.clients),
            queue: VecDeque::new(),
            owner: BTreeMap::new(),
            rng: Rng64::new(cfg.seed),
            counters: WorkloadCounters::default(),
            meter: GoodputMeter::new(cfg.window),
            realized: Schedule::new(),
            next_attempt: 0,
            sink: None,
            provenance,
            scratch: Vec::new(),
            cfg,
            engine,
            route,
        }
    }

    /// Route telemetry (the `workload_window` series) through `sink`.
    pub fn set_sink(&mut self, sink: SharedSink) {
        self.sink = Some(sink);
    }

    /// Wire one shared sink to both halves of the closed loop: the
    /// engine's telemetry and queue observatory (backlog ticks,
    /// lifecycle spans) and the driver's `workload_window` goodput
    /// series. Both record streams then share the engine's step clock
    /// in a single JSONL stream, so the offline analyzer
    /// (`examples/observatory.rs`) can join queue state against
    /// goodput by `time`. When `telemetry` carries a default
    /// provenance it is stamped with the driver's (seed, protocol,
    /// model fingerprint), so every record of the joined stream
    /// carries the same run identity.
    pub fn attach_observability(
        &mut self,
        mut telemetry: TelemetryConfig,
        observe: ObserveConfig,
        sink: SharedSink,
    ) {
        if telemetry.provenance == Provenance::default() {
            telemetry.provenance = self.provenance.clone();
        }
        self.engine.attach_telemetry(telemetry);
        self.engine.attach_observatory(observe);
        self.engine.set_telemetry_sink(Box::new(sink.clone()));
        self.sink = Some(sink);
    }

    /// The configuration.
    pub fn config(&self) -> &ClosedLoopConfig {
        &self.cfg
    }

    /// The underlying engine.
    pub fn engine(&self) -> &Engine<P> {
        &self.engine
    }

    /// Mutable access to the underlying engine, for attaching a
    /// sentinel, oracle, or telemetry before driving the loop.
    /// Mutating the engine's *simulation* state (stepping it directly,
    /// restoring snapshots) out from under the driver breaks the
    /// request ledger; attach-only use is safe.
    pub fn engine_mut(&mut self) -> &mut Engine<P> {
        &mut self.engine
    }

    /// The request ledger so far.
    pub fn counters(&self) -> WorkloadCounters {
        self.counters
    }

    /// The client population.
    pub fn population(&self) -> &ClientPopulation {
        &self.population
    }

    /// Current admission-queue length.
    pub fn queue_len(&self) -> usize {
        self.queue.len()
    }

    /// The realized injection sequence: every dispatch this driver
    /// performed, as an open-loop [`Schedule`]. Replaying it on a
    /// fresh engine with the same configuration reproduces the
    /// network trajectory bit-identically — the closed loop's
    /// decisions, once made, are just an adversary schedule.
    pub fn realized(&self) -> &Schedule {
        &self.realized
    }

    /// Advance one engine step (see the module docs for the anatomy).
    pub fn step(&mut self) -> Result<(), WorkloadError> {
        let t = self.engine.time() + 1; // injection time of this step
        let mut injection: Option<Injection> = None;
        if !self.cfg.service.paused_at(t) {
            if let Some(q) = self.pick(t) {
                self.realized.inject_at(t, self.route.clone(), q.attempt_id);
                injection = Some(Injection::new(self.route.clone(), q.attempt_id));
            }
        }
        self.engine.step(injection.as_ref())?;
        let now = self.engine.time();

        for a in self.engine.take_absorptions() {
            if let Some(client) = self.owner.remove(&a.tag) {
                self.population
                    .reply(client, a.tag, now, &self.cfg.clients, &mut self.counters);
            }
        }

        let mut issues = std::mem::take(&mut self.scratch);
        self.population.tick(
            now,
            &self.cfg.clients,
            &mut self.rng,
            &mut self.counters,
            &mut issues,
        );
        for issue in issues.drain(..) {
            self.admit(issue, now);
        }
        self.scratch = issues;

        self.counters.requests_in_flight = self.population.in_flight();
        self.check_conservation(now)?;
        self.meter
            .roll(now, &self.counters, self.sink.as_ref(), &self.provenance);
        Ok(())
    }

    /// Run until the engine clock reaches `until`.
    pub fn run(&mut self, until: Time) -> Result<(), WorkloadError> {
        while self.engine.time() < until {
            self.step()?;
        }
        Ok(())
    }

    /// Pick the attempt to dispatch at injection time `t` per the shed
    /// discipline, discarding doomed work first under `DeadlineDrop`.
    fn pick(&mut self, t: Time) -> Option<QueuedAttempt> {
        match self.cfg.service.shed {
            Shed::LifoFlip => self.queue.pop_back(),
            Shed::DeadlineDrop => {
                // A dispatch at `t` over a `d`-edge path completes at
                // `t + d`; anything that can't make its deadline is
                // shed instead of served as guaranteed waste.
                let d = self.route.len() as Time;
                while let Some(front) = self.queue.front() {
                    if front.deadline < t + d {
                        let old = self.queue.pop_front().expect("front exists");
                        self.counters.attempts_shed += 1;
                        self.owner.remove(&old.attempt_id);
                    } else {
                        return self.queue.pop_front();
                    }
                }
                None
            }
            Shed::RejectNewest | Shed::RejectOldest => self.queue.pop_front(),
        }
    }

    /// Assign an attempt id to `issue` and run admission. On overflow
    /// the shed policy decides who loses; a synchronously rejected
    /// client reacts next step (retry or terminal shed).
    fn admit(&mut self, issue: Issue, now: Time) {
        let attempt_id = self.next_attempt;
        self.next_attempt += 1;
        self.counters.attempts_issued += 1;
        if issue.attempt_no > 1 {
            self.counters.attempts_retried += 1;
        }
        self.population
            .wait(&issue, attempt_id, now, &self.cfg.clients);
        let q = QueuedAttempt {
            attempt_id,
            client: issue.client,
            deadline: now + self.cfg.clients.timeout,
        };
        let capacity = self.cfg.service.capacity as usize;
        if self.queue.len() < capacity {
            self.owner.insert(attempt_id, issue.client);
            self.queue.push_back(q);
            return;
        }
        if self.cfg.service.shed == Shed::RejectOldest && capacity > 0 {
            let old = self.queue.pop_front().expect("full queue is nonempty");
            self.counters.attempts_shed += 1;
            self.owner.remove(&old.attempt_id);
            self.owner.insert(attempt_id, issue.client);
            self.queue.push_back(q);
            return;
        }
        self.counters.attempts_shed += 1;
        self.population.reject(
            issue.client,
            issue.request,
            issue.attempt_no,
            now,
            &self.cfg.clients,
            &mut self.rng,
            &mut self.counters,
        );
    }

    /// The request-conservation sentinel: every issued request is
    /// exactly one of completed, abandoned, shed, or in flight — and
    /// the incrementally maintained in-flight counter agrees with the
    /// one derived from the client states. Raised as
    /// [`InvariantKind::RequestConservation`] with a full
    /// [`ReproBundle`].
    fn check_conservation(&self, now: Time) -> Result<(), WorkloadError> {
        let derived = self.population.in_flight_derived();
        let c = &self.counters;
        let accounted = c.requests_completed + c.requests_abandoned + c.requests_shed + derived;
        if c.requests_issued == accounted && c.requests_in_flight == derived {
            return Ok(());
        }
        let violation = Violation {
            kind: InvariantKind::RequestConservation,
            time: now,
            detail: format!(
                "issued {} != completed {} + abandoned {} + shed {} + in-flight {} \
                 (ledger says {} in flight)",
                c.requests_issued,
                c.requests_completed,
                c.requests_abandoned,
                c.requests_shed,
                derived,
                c.requests_in_flight,
            ),
        };
        let bundle = ReproBundle {
            seed: Some(self.cfg.seed),
            step: now,
            snapshot: snapshot::capture(&self.engine),
            fault_plan: None,
            backlog: self.engine.metrics().series().to_vec(),
        };
        Err(WorkloadError::Invariant(Box::new(ViolationReport {
            violation,
            bundle,
        })))
    }

    /// Capture the complete closed-loop state (engine included).
    pub fn checkpoint(&self) -> crate::checkpoint::WorkloadCheckpoint {
        let (meter_window_start, meter_base) = self.meter.state();
        crate::checkpoint::WorkloadCheckpoint {
            version: crate::checkpoint::WORKLOAD_SCHEMA_VERSION,
            state: crate::checkpoint::WorkloadState {
                clients: self.population.states().to_vec(),
                next_request: self.population.next_request(),
                queue: self.queue.iter().copied().collect(),
                owner: self.owner.iter().map(|(&k, &v)| (k, v)).collect(),
                rng: self.rng.state(),
                counters: self.counters,
                next_attempt: self.next_attempt,
                meter_window_start,
                meter_base,
            },
            engine: aqt_sim::checkpoint::checkpoint(&self.engine),
        }
    }

    /// Restore a checkpoint taken from an identically configured
    /// driver. Fails closed: a version or shape mismatch leaves `self`
    /// untouched where detectable (the engine restore performs its own
    /// fail-closed gates before mutating).
    pub fn restore(
        &mut self,
        ck: &crate::checkpoint::WorkloadCheckpoint,
    ) -> Result<(), WorkloadError> {
        if ck.version != crate::checkpoint::WORKLOAD_SCHEMA_VERSION {
            return Err(WorkloadError::SchemaMismatch {
                found: ck.version,
                expected: crate::checkpoint::WORKLOAD_SCHEMA_VERSION,
            });
        }
        if ck.state.clients.len() as u32 != self.cfg.clients.num_clients {
            return Err(WorkloadError::Checkpoint(format!(
                "checkpoint has {} clients but the config says {}",
                ck.state.clients.len(),
                self.cfg.clients.num_clients
            )));
        }
        aqt_sim::checkpoint::restore(&mut self.engine, &ck.engine).map_err(|e| match e {
            aqt_sim::SimError::SchemaMismatch { found, expected } => {
                WorkloadError::SchemaMismatch { found, expected }
            }
            other => WorkloadError::Checkpoint(other.to_string()),
        })?;
        self.population =
            ClientPopulation::restore(ck.state.clients.clone(), ck.state.next_request);
        self.queue = ck.state.queue.iter().copied().collect();
        self.owner = ck.state.owner.iter().copied().collect();
        self.rng = Rng64::from_state(ck.state.rng);
        self.counters = ck.state.counters;
        self.next_attempt = ck.state.next_attempt;
        self.meter
            .restore(ck.state.meter_window_start, ck.state.meter_base);
        // The realized log restarts here: it records dispatches made
        // by *this* driver from now on, one replayable segment per
        // (re)start.
        self.realized = Schedule::new();
        Ok(())
    }

    /// The current workload state (the checkpointable part, engine
    /// excluded) — what the round-trip tests compare bit-for-bit.
    pub fn state(&self) -> crate::checkpoint::WorkloadState {
        self.checkpoint().state
    }
}

/// A convenient healthy baseline: FIFO service, exponential backoff,
/// comfortable timeout. Used by tests and as the E17 template.
pub fn baseline_config(seed: u64) -> ClosedLoopConfig {
    ClosedLoopConfig {
        seed,
        clients: ClientConfig {
            num_clients: 6,
            think_time: 8,
            timeout: 6,
            max_attempts: 4,
            retry: RetryPolicy::ExpBackoff { base: 2, cap: 16 },
        },
        service: ServicePolicy::fifo(8),
        path_len: 2,
        validate: None,
        window: 0,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn healthy_loop_completes_requests_with_no_waste() {
        let mut cl = ClosedLoop::on_line(baseline_config(1));
        cl.run(200).unwrap();
        let c = cl.counters();
        assert!(c.requests_issued > 50, "issued {}", c.requests_issued);
        assert_eq!(c.requests_abandoned, 0);
        assert_eq!(c.requests_shed, 0);
        assert_eq!(c.completions_wasted, 0);
        assert_eq!(c.attempts_retried, 0);
        assert_eq!(
            c.requests_completed + c.requests_in_flight,
            c.requests_issued
        );
    }

    #[test]
    fn same_seed_is_bit_identical() {
        let mut a = ClosedLoop::on_line(baseline_config(7));
        let mut b = ClosedLoop::on_line(baseline_config(7));
        a.run(300).unwrap();
        b.run(300).unwrap();
        assert_eq!(a.counters(), b.counters());
        assert_eq!(a.state(), b.state());
        assert_eq!(a.realized().content_hash(), b.realized().content_hash());
    }

    #[test]
    fn realized_schedule_replays_open_loop() {
        let cfg = baseline_config(3);
        let mut cl = ClosedLoop::on_line(cfg.clone());
        cl.run(250).unwrap();
        let absorbed = cl.engine().metrics().absorbed();
        let until = cl.engine().time();

        // Replay the realized injections on a fresh open-loop engine:
        // identical network trajectory, hence identical absorptions.
        let graph = Arc::new(topologies::line(cfg.path_len as usize));
        let mut open = Engine::new(graph, Fifo, EngineConfig::default());
        cl.realized().replay(&mut open, until).unwrap();
        assert_eq!(open.metrics().absorbed(), absorbed);
        assert_eq!(open.metrics().injected(), cl.engine().metrics().injected());
    }

    #[test]
    fn pause_triggers_timeouts_and_retries() {
        let mut cfg = baseline_config(5);
        cfg.clients.retry = RetryPolicy::Immediate;
        cfg.service = cfg.service.with_pause(20, 40);
        let mut cl = ClosedLoop::on_line(cfg);
        cl.run(120).unwrap();
        let c = cl.counters();
        assert!(c.attempts_retried > 0, "pause should force retries");
        assert!(
            c.requests_abandoned + c.requests_completed > 0,
            "loop still resolves requests"
        );
    }

    #[test]
    fn validated_dispatch_passes_a_loose_model() {
        let mut cfg = baseline_config(9);
        // One dispatch per step over a 2-edge path is within rate 1.
        cfg.validate = Some(AdversaryModelSpec::rate(aqt_sim::Ratio::new(1, 1)));
        let mut cl = ClosedLoop::on_line(cfg);
        cl.run(150).unwrap();
        assert!(cl.counters().requests_completed > 0);
    }

    #[test]
    fn reject_oldest_sheds_silently_and_conserves() {
        let mut cfg = baseline_config(11);
        cfg.clients.retry = RetryPolicy::Immediate;
        cfg.clients.think_time = 1;
        cfg.service.capacity = 2;
        cfg.service.shed = Shed::RejectOldest;
        cfg.service = cfg.service.with_pause(10, 30);
        let mut cl = ClosedLoop::on_line(cfg);
        cl.run(100).unwrap();
        assert!(cl.counters().attempts_shed > 0);
    }

    #[test]
    fn capacity_zero_sheds_every_attempt() {
        let mut cfg = baseline_config(13);
        cfg.clients.max_attempts = 1;
        cfg.clients.retry = RetryPolicy::None;
        cfg.service.capacity = 0;
        let mut cl = ClosedLoop::on_line(cfg);
        cl.run(50).unwrap();
        let c = cl.counters();
        assert_eq!(c.requests_completed, 0);
        assert!(c.requests_shed > 0);
        assert_eq!(c.attempts_shed, c.attempts_issued);
    }
}
