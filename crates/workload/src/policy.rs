//! Retry and service policies — the two control knobs of the closed
//! loop.
//!
//! [`RetryPolicy`] is the client side: what a client does when an
//! attempt times out (or is rejected at admission). [`ServicePolicy`]
//! is the server side: how large the bounded admission queue is and
//! which [`Shed`] behaviour governs overflow and service order. The
//! congestion-collapse experiments (E17) sweep exactly these two
//! dimensions against the client timeout.

use aqt_sim::Time;

use crate::rng::Rng64;

/// What a client does after an attempt fails (timeout or synchronous
/// admission rejection). Attempts are always bounded by
/// [`crate::ClientConfig::max_attempts`]; the policy only chooses the
/// delay before the next one.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum RetryPolicy {
    /// Never retry: one attempt per request.
    None,
    /// Retry with no delay (the storm-maker).
    Immediate,
    /// Retry after a fixed delay.
    Fixed {
        /// Steps to wait before the next attempt.
        delay: Time,
    },
    /// Exponential backoff: attempt `k` (2-based — the first retry)
    /// waits `base << (k - 2)` steps, capped at `cap`, plus a
    /// deterministic jitter of up to half the backoff drawn from the
    /// workload's seeded [`Rng64`].
    ExpBackoff {
        /// Backoff before the first retry.
        base: Time,
        /// Upper bound on the un-jittered backoff.
        cap: Time,
    },
}

impl RetryPolicy {
    /// Delay before issuing attempt number `attempt` (2-based: the
    /// first retry is attempt 2), or `None` if the policy never
    /// retries. Draws from `rng` only when the policy is jittered, so
    /// un-jittered policies leave the stream untouched.
    pub fn delay(&self, attempt: u32, rng: &mut Rng64) -> Option<Time> {
        match *self {
            RetryPolicy::None => None,
            RetryPolicy::Immediate => Some(0),
            RetryPolicy::Fixed { delay } => Some(delay),
            RetryPolicy::ExpBackoff { base, cap } => {
                let exp = attempt.saturating_sub(2).min(32);
                let backoff = base.saturating_mul(1u64 << exp).min(cap);
                Some(backoff + rng.below(backoff / 2 + 1))
            }
        }
    }

    /// A stable short name for tables and telemetry.
    pub fn name(&self) -> &'static str {
        match self {
            RetryPolicy::None => "none",
            RetryPolicy::Immediate => "immediate",
            RetryPolicy::Fixed { .. } => "fixed",
            RetryPolicy::ExpBackoff { .. } => "exp-backoff",
        }
    }
}

/// Overflow and service-order behaviour of the bounded admission
/// queue.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Shed {
    /// FIFO service; a full queue rejects the incoming attempt
    /// (synchronously — the client observes the rejection next step).
    RejectNewest,
    /// FIFO service; a full queue silently drops its oldest queued
    /// attempt to admit the new one (the dropped attempt's client
    /// discovers the loss by timing out).
    RejectOldest,
    /// LIFO service: always dispatch the *newest* queued attempt; a
    /// full queue rejects the incoming attempt. The classic
    /// collapse-resistant discipline — fresh work is served within its
    /// deadline while stale work rots at the bottom.
    LifoFlip,
    /// FIFO service, but attempts that can no longer meet their
    /// client's deadline are discarded at dispatch time instead of
    /// being served as guaranteed-wasted work; a full queue rejects
    /// the incoming attempt.
    DeadlineDrop,
}

impl Shed {
    /// A stable short name for tables and telemetry.
    pub fn name(&self) -> &'static str {
        match self {
            Shed::RejectNewest => "reject-newest",
            Shed::RejectOldest => "reject-oldest",
            Shed::LifoFlip => "lifo",
            Shed::DeadlineDrop => "deadline-drop",
        }
    }
}

/// The destination node's service configuration: a bounded admission
/// queue in front of the (unit-capacity) network path, with a [`Shed`]
/// behaviour and an optional service outage used to trigger storms.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct ServicePolicy {
    /// Admission-queue bound (attempts). `0` sheds everything.
    pub capacity: u32,
    /// Overflow / service-order behaviour.
    pub shed: Shed,
    /// Service pause `[start, end)` in injection time: during these
    /// steps nothing is dispatched from the admission queue. This is
    /// the deterministic stand-in for a transient slowdown — the spark
    /// that ignites a retry storm.
    pub pause: Option<(Time, Time)>,
}

impl ServicePolicy {
    /// FIFO service with queue bound `capacity`, no pause.
    pub fn fifo(capacity: u32) -> Self {
        ServicePolicy {
            capacity,
            shed: Shed::RejectNewest,
            pause: None,
        }
    }

    /// The same policy with a service pause installed.
    pub fn with_pause(mut self, start: Time, end: Time) -> Self {
        self.pause = Some((start, end));
        self
    }

    /// Is dispatch paused at injection time `t`?
    pub fn paused_at(&self, t: Time) -> bool {
        matches!(self.pause, Some((s, e)) if t >= s && t < e)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn retry_delays_follow_the_policy() {
        let mut rng = Rng64::new(1);
        assert_eq!(RetryPolicy::None.delay(2, &mut rng), None);
        assert_eq!(RetryPolicy::Immediate.delay(2, &mut rng), Some(0));
        assert_eq!(RetryPolicy::Fixed { delay: 3 }.delay(5, &mut rng), Some(3));
    }

    #[test]
    fn backoff_doubles_and_caps() {
        let p = RetryPolicy::ExpBackoff { base: 4, cap: 16 };
        // Un-jittered lower bounds double then saturate: 4, 8, 16, 16.
        for (attempt, lo) in [(2u32, 4u64), (3, 8), (4, 16), (5, 16)] {
            let mut rng = Rng64::new(9);
            let d = p.delay(attempt, &mut rng).unwrap();
            assert!(d >= lo && d <= lo + lo / 2, "attempt {attempt}: {d}");
        }
    }

    #[test]
    fn backoff_jitter_is_seed_deterministic() {
        let p = RetryPolicy::ExpBackoff { base: 8, cap: 64 };
        let (mut a, mut b) = (Rng64::new(5), Rng64::new(5));
        for attempt in 2..8 {
            assert_eq!(p.delay(attempt, &mut a), p.delay(attempt, &mut b));
        }
    }

    #[test]
    fn pause_window_is_half_open() {
        let s = ServicePolicy::fifo(4).with_pause(10, 12);
        assert!(!s.paused_at(9));
        assert!(s.paused_at(10));
        assert!(s.paused_at(11));
        assert!(!s.paused_at(12));
        assert!(!ServicePolicy::fifo(4).paused_at(10));
    }
}
