//! Checkpointing for closed-loop runs: the engine checkpoint plus the
//! workload's own state (clients, queue, retry timers, RNG, ledger),
//! versioned and fail-closed.
//!
//! The workload state is plain data with `PartialEq`, so round-trip
//! tests compare it bit-for-bit. The schema version gates restore the
//! same way [`aqt_sim::snapshot::SNAPSHOT_SCHEMA_VERSION`] gates
//! engine snapshots: an unknown version is an error, never a guess.

use aqt_sim::telemetry::WorkloadCounters;
use aqt_sim::{Checkpoint, Time};

use crate::driver::QueuedAttempt;
use crate::population::ClientState;

/// Version stamped on every [`WorkloadCheckpoint`]. Bump on any layout
/// change to the workload state below (the engine part carries its own
/// snapshot schema version).
pub const WORKLOAD_SCHEMA_VERSION: u32 = 1;

/// The workload's checkpointable state, engine excluded. Everything
/// the closed loop needs to resume bit-identically: client state
/// machines (in-flight request table and retry timers included), the
/// admission queue, the attempt-ownership map, the RNG state, and the
/// request ledger.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct WorkloadState {
    /// Per-client state machines.
    pub clients: Vec<ClientState>,
    /// Next request id.
    pub next_request: u64,
    /// The admission queue, front first.
    pub queue: Vec<QueuedAttempt>,
    /// Attempt id → issuing client for every live attempt.
    pub owner: Vec<(u32, u32)>,
    /// The workload RNG state.
    pub rng: u64,
    /// The request ledger.
    pub counters: WorkloadCounters,
    /// Next attempt id (engine cohort tag).
    pub next_attempt: u32,
    /// Goodput-meter window start.
    pub meter_window_start: Time,
    /// Ledger totals at the meter window start.
    pub meter_base: WorkloadCounters,
}

/// A complete closed-loop capture: workload state plus the engine's
/// own [`Checkpoint`].
#[derive(Debug, Clone)]
pub struct WorkloadCheckpoint {
    /// [`WORKLOAD_SCHEMA_VERSION`] at capture.
    pub version: u32,
    /// The workload state.
    pub state: WorkloadState,
    /// The engine state (network, metrics, validators, clock).
    pub engine: Checkpoint,
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::driver::{baseline_config, ClosedLoop, WorkloadError};

    #[test]
    fn round_trip_resumes_bit_identically() {
        let cfg = baseline_config(21);
        let mut a = ClosedLoop::on_line(cfg.clone());
        a.run(120).unwrap();
        let ck = a.checkpoint();
        a.run(240).unwrap();

        let mut b = ClosedLoop::on_line(cfg);
        b.restore(&ck).unwrap();
        assert_eq!(b.state(), ck.state);
        b.run(240).unwrap();
        assert_eq!(a.state(), b.state());
        assert_eq!(a.counters(), b.counters());
        assert_eq!(
            a.engine().metrics().absorbed(),
            b.engine().metrics().absorbed()
        );
    }

    #[test]
    fn unknown_version_fails_closed() {
        let cfg = baseline_config(22);
        let mut a = ClosedLoop::on_line(cfg.clone());
        a.run(50).unwrap();
        let mut ck = a.checkpoint();
        ck.version = WORKLOAD_SCHEMA_VERSION + 1;
        let mut b = ClosedLoop::on_line(cfg);
        let before = b.state();
        match b.restore(&ck) {
            Err(WorkloadError::SchemaMismatch { found, expected }) => {
                assert_eq!(found, WORKLOAD_SCHEMA_VERSION + 1);
                assert_eq!(expected, WORKLOAD_SCHEMA_VERSION);
            }
            other => panic!("expected SchemaMismatch, got {other:?}"),
        }
        assert_eq!(b.state(), before, "failed restore must not mutate");
    }

    #[test]
    fn client_count_mismatch_fails_closed() {
        let cfg = baseline_config(23);
        let mut a = ClosedLoop::on_line(cfg.clone());
        a.run(50).unwrap();
        let ck = a.checkpoint();
        let mut other = cfg;
        other.clients.num_clients += 1;
        let mut b = ClosedLoop::on_line(other);
        assert!(matches!(b.restore(&ck), Err(WorkloadError::Checkpoint(_))));
    }
}
