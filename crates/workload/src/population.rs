//! The client side of the closed loop: a population of request
//! sources with think times, per-attempt timeouts, and bounded
//! retries.
//!
//! Each client is a three-state machine — `Idle` (thinking),
//! `Waiting` (an attempt is in the system), `Backoff` (between a
//! timeout and the next attempt) — advanced once per engine step in
//! client-index order, so the whole population is deterministic given
//! the workload seed.

use aqt_sim::telemetry::WorkloadCounters;
use aqt_sim::Time;

use crate::policy::RetryPolicy;
use crate::rng::Rng64;

/// Client-side configuration of the closed loop.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct ClientConfig {
    /// Population size.
    pub num_clients: u32,
    /// Steps a client thinks between finishing one request (however it
    /// ended) and issuing the next.
    pub think_time: Time,
    /// Steps a client waits for a reply before giving up on an
    /// attempt.
    pub timeout: Time,
    /// Total attempts per request (first try included); at least 1.
    pub max_attempts: u32,
    /// What to do when an attempt fails and attempts remain.
    pub retry: RetryPolicy,
}

/// One client's state. `Idle` carries no request; the other two states
/// carry the live request and how many attempts it has consumed.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ClientState {
    /// Thinking; the next request is issued once `next_request_at`
    /// arrives.
    Idle {
        /// When the next request is issued.
        next_request_at: Time,
    },
    /// An attempt is in the system (admission queue or network).
    Waiting {
        /// The live request's id.
        request: u64,
        /// Attempts consumed so far (the one in flight included).
        attempt: u32,
        /// The in-flight attempt's id (the engine cohort tag).
        attempt_id: u32,
        /// When the client gives up on this attempt.
        timeout_at: Time,
    },
    /// Between a failed attempt and the next one.
    Backoff {
        /// The live request's id.
        request: u64,
        /// Attempts consumed so far.
        attempt: u32,
        /// When the next attempt is issued.
        resume_at: Time,
    },
}

/// An attempt the population wants to issue this step. The driver
/// assigns the attempt id and runs admission.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Issue {
    /// Issuing client (index into the population).
    pub client: u32,
    /// The request the attempt serves.
    pub request: u64,
    /// Attempt number within the request (1-based).
    pub attempt_no: u32,
}

/// How a reply (an absorption) was classified against the population.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ReplyClass {
    /// The reply completed the request the client was waiting on.
    Goodput,
    /// The client had already moved on — thrown-away work.
    Wasted,
}

/// The population of closed-loop clients.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ClientPopulation {
    clients: Vec<ClientState>,
    /// Requests currently live (clients not `Idle`) — maintained
    /// incrementally, re-derived independently by the conservation
    /// check.
    in_flight: u64,
    /// Next request id.
    next_request: u64,
}

impl ClientPopulation {
    /// A population of `cfg.num_clients` idle clients with staggered
    /// first requests (client `i` starts thinking as if it had just
    /// finished a request at step `i mod (think_time + 1)`), so the
    /// initial burst does not exceed the admission queue by
    /// construction artifacts alone.
    pub fn new(cfg: &ClientConfig) -> Self {
        let clients = (0..cfg.num_clients)
            .map(|i| ClientState::Idle {
                next_request_at: 1 + Time::from(i) % (cfg.think_time + 1),
            })
            .collect();
        ClientPopulation {
            clients,
            in_flight: 0,
            next_request: 0,
        }
    }

    /// Number of clients.
    pub fn len(&self) -> u32 {
        self.clients.len() as u32
    }

    /// True if the population is empty.
    pub fn is_empty(&self) -> bool {
        self.clients.is_empty()
    }

    /// Live requests (clients not idle), maintained incrementally.
    pub fn in_flight(&self) -> u64 {
        self.in_flight
    }

    /// Live requests re-derived from the states — the independent
    /// count the conservation invariant checks against.
    pub fn in_flight_derived(&self) -> u64 {
        self.clients
            .iter()
            .filter(|c| !matches!(c, ClientState::Idle { .. }))
            .count() as u64
    }

    /// The raw states, for checkpointing.
    pub fn states(&self) -> &[ClientState] {
        &self.clients
    }

    /// Restore from checkpointed states.
    pub(crate) fn restore(states: Vec<ClientState>, next_request: u64) -> Self {
        let in_flight = states
            .iter()
            .filter(|c| !matches!(c, ClientState::Idle { .. }))
            .count() as u64;
        ClientPopulation {
            clients: states,
            in_flight,
            next_request,
        }
    }

    /// Next request id, for checkpointing.
    pub(crate) fn next_request(&self) -> u64 {
        self.next_request
    }

    /// Advance every client to `now`: issue new requests whose think
    /// timers expired, time out overdue attempts (retrying or
    /// abandoning per the policy), and resume clients whose backoff
    /// elapsed. New attempts are appended to `issues` in client order.
    pub fn tick(
        &mut self,
        now: Time,
        cfg: &ClientConfig,
        rng: &mut Rng64,
        counters: &mut WorkloadCounters,
        issues: &mut Vec<Issue>,
    ) {
        for i in 0..self.clients.len() {
            match self.clients[i] {
                ClientState::Idle { next_request_at } if now >= next_request_at => {
                    let request = self.next_request;
                    self.next_request += 1;
                    counters.requests_issued += 1;
                    self.in_flight += 1;
                    issues.push(Issue {
                        client: i as u32,
                        request,
                        attempt_no: 1,
                    });
                }
                ClientState::Waiting {
                    request,
                    attempt,
                    timeout_at,
                    ..
                } if now >= timeout_at => {
                    // The attempt timed out; its packet (if any) keeps
                    // flowing and will be classified as wasted work.
                    self.fail_attempt(i, request, attempt, now, cfg, rng, counters, issues);
                }
                ClientState::Backoff {
                    request,
                    attempt,
                    resume_at,
                } if now >= resume_at => {
                    issues.push(Issue {
                        client: i as u32,
                        request,
                        attempt_no: attempt + 1,
                    });
                }
                _ => {}
            }
        }
    }

    /// Shared failure path for timeouts and synchronous rejections:
    /// schedule the next attempt per the retry policy, or retire the
    /// request. Returns `true` if the request was retired (the caller
    /// decides whether that is an abandon or a shed).
    #[allow(clippy::too_many_arguments)]
    fn fail_attempt(
        &mut self,
        i: usize,
        request: u64,
        attempt: u32,
        now: Time,
        cfg: &ClientConfig,
        rng: &mut Rng64,
        counters: &mut WorkloadCounters,
        issues: &mut Vec<Issue>,
    ) -> bool {
        if attempt < cfg.max_attempts {
            if let Some(delay) = cfg.retry.delay(attempt + 1, rng) {
                if delay == 0 {
                    issues.push(Issue {
                        client: i as u32,
                        request,
                        attempt_no: attempt + 1,
                    });
                } else {
                    self.clients[i] = ClientState::Backoff {
                        request,
                        attempt,
                        resume_at: now + delay,
                    };
                }
                return false;
            }
        }
        counters.requests_abandoned += 1;
        self.retire(i, now, cfg);
        true
    }

    /// Mark `issue` as in flight under `attempt_id`, timing out at
    /// `now + cfg.timeout`. Called by the driver once it has assigned
    /// the attempt id.
    pub fn wait(&mut self, issue: &Issue, attempt_id: u32, now: Time, cfg: &ClientConfig) {
        self.clients[issue.client as usize] = ClientState::Waiting {
            request: issue.request,
            attempt: issue.attempt_no,
            attempt_id,
            timeout_at: now + cfg.timeout,
        };
    }

    /// Classify a reply carrying attempt tag `tag` for `client`. A
    /// reply for the attempt the client is waiting on completes the
    /// request (the client goes back to thinking); anything else is
    /// wasted work.
    pub fn reply(
        &mut self,
        client: u32,
        tag: u32,
        now: Time,
        cfg: &ClientConfig,
        counters: &mut WorkloadCounters,
    ) -> ReplyClass {
        let i = client as usize;
        match self.clients[i] {
            ClientState::Waiting { attempt_id, .. } if attempt_id == tag => {
                counters.requests_completed += 1;
                self.retire(i, now, cfg);
                ReplyClass::Goodput
            }
            _ => {
                counters.completions_wasted += 1;
                ReplyClass::Wasted
            }
        }
    }

    /// The admission queue rejected `client`'s just-issued attempt
    /// (attempt number `attempt`). The rejection is synchronous, but
    /// the client reacts next step at the earliest (a zero-delay retry
    /// against a full queue must not loop within one step). If no
    /// attempts remain the request is retired as *shed*.
    #[allow(clippy::too_many_arguments)]
    pub fn reject(
        &mut self,
        client: u32,
        request: u64,
        attempt: u32,
        now: Time,
        cfg: &ClientConfig,
        rng: &mut Rng64,
        counters: &mut WorkloadCounters,
    ) {
        let i = client as usize;
        if attempt < cfg.max_attempts {
            if let Some(delay) = cfg.retry.delay(attempt + 1, rng) {
                self.clients[i] = ClientState::Backoff {
                    request,
                    attempt,
                    resume_at: now + delay.max(1),
                };
                return;
            }
        }
        counters.requests_shed += 1;
        self.retire(i, now, cfg);
    }

    /// Retire client `i`'s live request (counted by the caller) and
    /// start its think timer.
    fn retire(&mut self, i: usize, now: Time, cfg: &ClientConfig) {
        self.in_flight -= 1;
        self.clients[i] = ClientState::Idle {
            next_request_at: now + cfg.think_time,
        };
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn cfg() -> ClientConfig {
        ClientConfig {
            num_clients: 2,
            think_time: 4,
            timeout: 3,
            max_attempts: 2,
            retry: RetryPolicy::Immediate,
        }
    }

    #[test]
    fn idle_clients_issue_on_schedule() {
        let cfg = cfg();
        let mut pop = ClientPopulation::new(&cfg);
        let mut rng = Rng64::new(0);
        let mut c = WorkloadCounters::default();
        let mut issues = Vec::new();
        pop.tick(1, &cfg, &mut rng, &mut c, &mut issues);
        // Client 0 starts at step 1, client 1 at step 2 (staggered).
        assert_eq!(issues.len(), 1);
        assert_eq!(issues[0].client, 0);
        assert_eq!(c.requests_issued, 1);
        assert_eq!(pop.in_flight(), 1);
    }

    #[test]
    fn timeout_retries_then_abandons() {
        let cfg = cfg();
        let mut pop = ClientPopulation::new(&cfg);
        let mut rng = Rng64::new(0);
        let mut c = WorkloadCounters::default();
        let mut issues = Vec::new();
        pop.tick(1, &cfg, &mut rng, &mut c, &mut issues);
        pop.wait(&issues[0], 100, 1, &cfg);
        // Timeout at 1 + 3 = 4: immediate retry issues attempt 2.
        issues.clear();
        pop.tick(4, &cfg, &mut rng, &mut c, &mut issues);
        let retry = issues.iter().find(|i| i.client == 0).unwrap();
        assert_eq!(retry.attempt_no, 2);
        pop.wait(retry, 101, 4, &cfg);
        // Second timeout exhausts max_attempts = 2: abandon.
        issues.clear();
        pop.tick(7, &cfg, &mut rng, &mut c, &mut issues);
        assert!(issues.iter().all(|i| i.client != 0));
        assert_eq!(c.requests_abandoned, 1);
        assert!(matches!(
            pop.states()[0],
            ClientState::Idle {
                next_request_at: 11
            }
        ));
    }

    #[test]
    fn replies_split_into_goodput_and_waste() {
        let cfg = cfg();
        let mut pop = ClientPopulation::new(&cfg);
        let mut rng = Rng64::new(0);
        let mut c = WorkloadCounters::default();
        let mut issues = Vec::new();
        pop.tick(1, &cfg, &mut rng, &mut c, &mut issues);
        pop.wait(&issues[0], 7, 1, &cfg);
        // A stale tag is wasted; the awaited tag completes.
        assert_eq!(pop.reply(0, 6, 2, &cfg, &mut c), ReplyClass::Wasted);
        assert_eq!(pop.reply(0, 7, 2, &cfg, &mut c), ReplyClass::Goodput);
        assert_eq!(c.requests_completed, 1);
        assert_eq!(c.completions_wasted, 1);
        assert_eq!(pop.in_flight(), 0);
        // A reply to an idle client is wasted too.
        assert_eq!(pop.reply(0, 7, 3, &cfg, &mut c), ReplyClass::Wasted);
    }

    #[test]
    fn rejection_of_final_attempt_sheds_the_request() {
        let mut cfg = cfg();
        cfg.max_attempts = 1;
        let mut pop = ClientPopulation::new(&cfg);
        let mut rng = Rng64::new(0);
        let mut c = WorkloadCounters::default();
        let mut issues = Vec::new();
        pop.tick(1, &cfg, &mut rng, &mut c, &mut issues);
        pop.wait(&issues[0], 1, 1, &cfg);
        pop.reject(0, issues[0].request, 1, 1, &cfg, &mut rng, &mut c);
        assert_eq!(c.requests_shed, 1);
        assert_eq!(pop.in_flight(), 0);
    }

    #[test]
    fn in_flight_derivation_matches_running_count() {
        let cfg = cfg();
        let mut pop = ClientPopulation::new(&cfg);
        let mut rng = Rng64::new(0);
        let mut c = WorkloadCounters::default();
        let mut issues = Vec::new();
        for now in 1..6 {
            pop.tick(now, &cfg, &mut rng, &mut c, &mut issues);
            for issue in issues.drain(..) {
                let tag = issue.request as u32;
                pop.wait(&issue, tag, now, &cfg);
            }
            assert_eq!(pop.in_flight(), pop.in_flight_derived());
        }
    }
}
