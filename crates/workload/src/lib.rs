//! # aqt-workload
//!
//! A closed-loop request/reply workload layer over the `aqt-sim`
//! engine — the feedback-governed adversary the paper's open-loop
//! stability thresholds do not cover.
//!
//! The open-loop model of *New stability results for adversarial
//! queuing* fixes the injection sequence in advance; a real service
//! reacts to its own latency. [`ClientPopulation`] holds a fixed pool
//! of clients that issue requests, wait for replies with a timeout,
//! and retry per a [`RetryPolicy`] — so when queueing delay exceeds
//! the timeout, *injections increase with latency* and the network
//! serves ever-staler work. [`ServicePolicy`] puts a bounded admission
//! queue with a [`Shed`] discipline in front of the network, and the
//! [`GoodputMeter`] splits raw throughput into goodput (on-time
//! completions) and wasted work (completions after abandonment). The
//! [`ClosedLoop`] driver wires all of it to the engine, one step at a
//! time.
//!
//! Three properties carry over from the rest of the repository:
//!
//! * **Determinism** — the whole loop is a pure function of
//!   [`ClosedLoopConfig::seed`]; the realized injections are recorded
//!   as a [`aqt_sim::Schedule`] for bit-identical open-loop replay,
//!   and [`WorkloadCheckpoint`] resumes runs bit-for-bit (fail-closed
//!   on schema mismatch).
//! * **Validation** — realized injections run through the same
//!   [`aqt_sim::rate::AdversaryModelSpec`] trackers as open-loop
//!   adversaries.
//! * **Self-checking** — every step enforces *request conservation*
//!   (`issued = completed + abandoned + shed + in-flight`,
//!   [`aqt_sim::InvariantKind::RequestConservation`]); a leak
//!   produces a full [`aqt_sim::ViolationReport`] with a
//!   [`aqt_sim::ReproBundle`].
//!
//! Experiment E17 (`aqt-core`) sweeps timeout × retry policy ×
//! queue bound over this crate to map the congestion-collapse
//! frontier; `examples/retry_storm.rs` is the runnable demo.

pub mod checkpoint;
pub mod driver;
pub mod meter;
pub mod policy;
pub mod population;
pub mod rng;

pub use checkpoint::{WorkloadCheckpoint, WorkloadState, WORKLOAD_SCHEMA_VERSION};
pub use driver::{baseline_config, ClosedLoop, ClosedLoopConfig, QueuedAttempt, WorkloadError};
pub use meter::GoodputMeter;
pub use policy::{RetryPolicy, ServicePolicy, Shed};
pub use population::{ClientConfig, ClientPopulation, ClientState, Issue, ReplyClass};
pub use rng::Rng64;
