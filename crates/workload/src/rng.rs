//! The workload's deterministic RNG: a SplitMix64 stream.
//!
//! Every random decision in the closed-loop layer (retry jitter, and
//! nothing else today) draws from one of these. The state is a single
//! `u64`, so it checkpoints bit-for-bit and two runs from the same
//! seed draw identical sequences — the whole closed loop is a pure
//! function of its seed.

/// A SplitMix64 generator. Not cryptographic and not meant for heavy
/// statistics — it exists to decorrelate retry timers deterministically.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Rng64 {
    state: u64,
}

impl Rng64 {
    /// A generator seeded with `seed`.
    pub fn new(seed: u64) -> Self {
        Rng64 { state: seed }
    }

    /// The raw state, for checkpointing.
    pub fn state(&self) -> u64 {
        self.state
    }

    /// Rebuild from a checkpointed state.
    pub fn from_state(state: u64) -> Self {
        Rng64 { state }
    }

    /// Next 64 uniform bits.
    pub fn next_u64(&mut self) -> u64 {
        self.state = self.state.wrapping_add(0x9E37_79B9_7F4A_7C15);
        let mut z = self.state;
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
        z ^ (z >> 31)
    }

    /// Uniform draw in `[0, n)`; `0` when `n == 0`. Modulo bias is
    /// irrelevant at jitter spans (≪ 2^32).
    pub fn below(&mut self, n: u64) -> u64 {
        if n == 0 {
            0
        } else {
            self.next_u64() % n
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn same_seed_same_stream() {
        let mut a = Rng64::new(7);
        let mut b = Rng64::new(7);
        for _ in 0..64 {
            assert_eq!(a.next_u64(), b.next_u64());
        }
        assert_ne!(Rng64::new(7).next_u64(), Rng64::new(8).next_u64());
    }

    #[test]
    fn state_round_trips() {
        let mut a = Rng64::new(3);
        a.next_u64();
        let mut b = Rng64::from_state(a.state());
        assert_eq!(a.next_u64(), b.next_u64());
    }

    #[test]
    fn below_is_in_range() {
        let mut r = Rng64::new(1);
        for _ in 0..100 {
            assert!(r.below(10) < 10);
        }
        assert_eq!(r.below(0), 0);
    }
}
