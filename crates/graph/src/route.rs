//! Packet routes: simple directed paths in a [`Graph`].
//!
//! In the AQT model (Section 2 of the paper) every packet is injected
//! with a route, "a simple directed path in `G`". A [`Route`] is a
//! validated, immutable, cheaply-cloneable sequence of edge ids
//! (`Arc<[EdgeId]>` internally — adversaries inject thousands of packets
//! sharing one route, so cloning must not allocate).

use std::fmt;
use std::sync::Arc;

use crate::graph::{EdgeId, Graph, NodeId};

/// Why a candidate edge sequence is not a valid route.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum RouteError {
    /// Routes must contain at least one edge.
    Empty,
    /// `edges[i]` and `edges[i+1]` are not head-to-tail consecutive.
    Disconnected { position: usize },
    /// A vertex repeats, so the path is not simple. Stores the repeated
    /// node and the edge index at which the repetition was detected.
    NotSimple { node: NodeId, position: usize },
    /// An edge id is out of range for the graph.
    UnknownEdge { edge: EdgeId },
}

impl fmt::Display for RouteError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            RouteError::Empty => write!(f, "route is empty"),
            RouteError::Disconnected { position } => {
                write!(
                    f,
                    "edges at positions {} and {} are not consecutive",
                    position,
                    position + 1
                )
            }
            RouteError::NotSimple { node, position } => {
                write!(f, "route revisits node {node} at edge position {position}")
            }
            RouteError::UnknownEdge { edge } => write!(f, "edge {edge} not in graph"),
        }
    }
}

impl std::error::Error for RouteError {}

/// A validated simple directed path, shared via `Arc`.
#[derive(Debug, Clone, PartialEq, Eq, Hash)]
pub struct Route {
    edges: Arc<[EdgeId]>,
}

impl Route {
    /// Validate `edges` as a simple directed path in `graph`.
    pub fn new(graph: &Graph, edges: impl Into<Vec<EdgeId>>) -> Result<Self, RouteError> {
        let edges: Vec<EdgeId> = edges.into();
        Self::validate(graph, &edges)?;
        Ok(Route {
            edges: edges.into(),
        })
    }

    /// Build a route without checking simplicity (connectivity is still
    /// required). The instability construction of Theorem 3.17 extends
    /// routes across many gadgets; each individual route remains simple
    /// ("we note that our lower bounds use shortest-paths (and hence
    /// noncircular) routes"), but when experimenting with custom
    /// adversaries on cyclic graphs it is occasionally useful to permit
    /// walks. Prefer [`Route::new`].
    pub fn new_walk(graph: &Graph, edges: impl Into<Vec<EdgeId>>) -> Result<Self, RouteError> {
        let edges: Vec<EdgeId> = edges.into();
        Self::validate_connectivity(graph, &edges)?;
        Ok(Route {
            edges: edges.into(),
        })
    }

    /// Single-edge route (always simple).
    pub fn single(graph: &Graph, edge: EdgeId) -> Result<Self, RouteError> {
        Self::new(graph, vec![edge])
    }

    fn validate_connectivity(graph: &Graph, edges: &[EdgeId]) -> Result<(), RouteError> {
        if edges.is_empty() {
            return Err(RouteError::Empty);
        }
        for &e in edges {
            if e.index() >= graph.edge_count() {
                return Err(RouteError::UnknownEdge { edge: e });
            }
        }
        for (i, w) in edges.windows(2).enumerate() {
            if !graph.consecutive(w[0], w[1]) {
                return Err(RouteError::Disconnected { position: i });
            }
        }
        Ok(())
    }

    /// Full validation: connectivity plus vertex-simplicity.
    pub fn validate(graph: &Graph, edges: &[EdgeId]) -> Result<(), RouteError> {
        Self::validate_connectivity(graph, edges)?;
        // Check that no vertex repeats. Routes are short (O(network
        // diameter)); a linear scan per vertex is fine and avoids
        // allocation for the common very-short routes.
        let mut visited: Vec<NodeId> = Vec::with_capacity(edges.len() + 1);
        visited.push(graph.src(edges[0]));
        for (i, &e) in edges.iter().enumerate() {
            let head = graph.dst(e);
            if visited.contains(&head) {
                return Err(RouteError::NotSimple {
                    node: head,
                    position: i,
                });
            }
            visited.push(head);
        }
        Ok(())
    }

    /// The edges of this route in traversal order.
    #[inline]
    pub fn edges(&self) -> &[EdgeId] {
        &self.edges
    }

    /// Shared handle to the underlying edge slice.
    #[inline]
    pub fn shared(&self) -> Arc<[EdgeId]> {
        Arc::clone(&self.edges)
    }

    /// Number of edges (the packet's path length; its contribution to
    /// the parameter `d` of Section 4).
    #[inline]
    pub fn len(&self) -> usize {
        self.edges.len()
    }

    /// `false` always — routes are non-empty by construction. Present to
    /// satisfy the `len`/`is_empty` API convention.
    #[inline]
    pub fn is_empty(&self) -> bool {
        false
    }

    /// First edge — where the packet is placed upon injection.
    #[inline]
    pub fn first(&self) -> EdgeId {
        self.edges[0]
    }

    /// Last edge — after crossing it the packet is absorbed.
    #[inline]
    pub fn last(&self) -> EdgeId {
        *self.edges.last().expect("routes are non-empty")
    }

    /// Source node of the route.
    pub fn source(&self, graph: &Graph) -> NodeId {
        graph.src(self.first())
    }

    /// Destination node of the route.
    pub fn destination(&self, graph: &Graph) -> NodeId {
        graph.dst(self.last())
    }

    /// Does the route traverse edge `e`?
    pub fn uses(&self, e: EdgeId) -> bool {
        self.edges.contains(&e)
    }

    /// A new route equal to this one followed by `suffix`.
    ///
    /// This is the primitive behind the rerouting technique of
    /// Lemma 3.3: the remaining route of a packet is replaced by
    /// `q_p e_p r'_p` where `r'_p` consists of new edges. Connectivity
    /// is validated; simplicity is validated when `require_simple`.
    pub fn extended(
        &self,
        graph: &Graph,
        suffix: &[EdgeId],
        require_simple: bool,
    ) -> Result<Route, RouteError> {
        let mut edges = Vec::with_capacity(self.edges.len() + suffix.len());
        edges.extend_from_slice(&self.edges);
        edges.extend_from_slice(suffix);
        if require_simple {
            Route::new(graph, edges)
        } else {
            Route::new_walk(graph, edges)
        }
    }
}

impl fmt::Display for Route {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "[")?;
        for (i, e) in self.edges.iter().enumerate() {
            if i > 0 {
                write!(f, " ")?;
            }
            write!(f, "{e}")?;
        }
        write!(f, "]")
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::GraphBuilder;

    fn line(k: usize) -> (Graph, Vec<EdgeId>) {
        let mut b = GraphBuilder::new();
        let s = b.node("s");
        let t = b.node("t");
        let p = b.path(s, t, k, "e");
        (b.build(), p)
    }

    #[test]
    fn valid_route() {
        let (g, p) = line(4);
        let r = Route::new(&g, p.clone()).unwrap();
        assert_eq!(r.len(), 4);
        assert_eq!(r.first(), p[0]);
        assert_eq!(r.last(), p[3]);
        assert!(r.uses(p[2]));
        assert_eq!(r.source(&g), g.node_by_name("s").unwrap());
        assert_eq!(r.destination(&g), g.node_by_name("t").unwrap());
    }

    #[test]
    fn empty_route_rejected() {
        let (g, _) = line(2);
        assert_eq!(Route::new(&g, vec![]), Err(RouteError::Empty));
    }

    #[test]
    fn disconnected_rejected() {
        let (g, p) = line(4);
        let err = Route::new(&g, vec![p[0], p[2]]).unwrap_err();
        assert_eq!(err, RouteError::Disconnected { position: 0 });
    }

    #[test]
    fn unknown_edge_rejected() {
        let (g, _) = line(2);
        let err = Route::new(&g, vec![EdgeId(99)]).unwrap_err();
        assert_eq!(err, RouteError::UnknownEdge { edge: EdgeId(99) });
    }

    #[test]
    fn cycle_rejected_as_not_simple() {
        let mut b = GraphBuilder::new();
        let u = b.node("u");
        let v = b.node("v");
        let uv = b.edge(u, v, "uv");
        let vu = b.edge(v, u, "vu");
        let g = b.build();
        let err = Route::new(&g, vec![uv, vu]).unwrap_err();
        assert!(matches!(err, RouteError::NotSimple { .. }));
        // but permitted as a walk
        let w = Route::new_walk(&g, vec![uv, vu]).unwrap();
        assert_eq!(w.len(), 2);
    }

    #[test]
    fn extension_keeps_connectivity() {
        let (g, p) = line(4);
        let r = Route::new(&g, vec![p[0], p[1]]).unwrap();
        let ext = r.extended(&g, &[p[2], p[3]], true).unwrap();
        assert_eq!(ext.len(), 4);
        let bad = r.extended(&g, &[p[3]], true);
        assert!(bad.is_err());
    }

    #[test]
    fn clone_shares_storage() {
        let (g, p) = line(3);
        let r = Route::new(&g, p).unwrap();
        let r2 = r.clone();
        assert!(Arc::ptr_eq(&r.shared(), &r2.shared()));
    }

    #[test]
    fn display_is_compact() {
        let (g, p) = line(2);
        let r = Route::new(&g, p).unwrap();
        assert_eq!(format!("{r}"), "[e0 e1]");
    }
}
