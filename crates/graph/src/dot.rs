//! Graphviz (DOT) export.
//!
//! `render_figures` (an example binary of the workspace) uses this to
//! regenerate the paper's Figure 3.1 (`F_n^2`) and Figure 3.2 (`G_ε`)
//! as `.dot` files.

use std::fmt::Write as _;

use crate::graph::{EdgeId, Graph};

/// Options for DOT rendering.
#[derive(Debug, Clone, Default)]
pub struct DotOptions {
    /// Graph name in the output.
    pub name: String,
    /// Edges to highlight (drawn bold/red) — e.g. the ingress/egress
    /// edges of a gadget, or the feedback edge `e0`.
    pub highlight: Vec<EdgeId>,
    /// Render left-to-right (like the paper's figures) instead of
    /// top-down.
    pub left_to_right: bool,
}

/// Render a graph to DOT format.
pub fn to_dot(graph: &Graph, opts: &DotOptions) -> String {
    let mut out = String::new();
    let name = if opts.name.is_empty() {
        "G"
    } else {
        &opts.name
    };
    writeln!(out, "digraph \"{name}\" {{").unwrap();
    if opts.left_to_right {
        writeln!(out, "  rankdir=LR;").unwrap();
    }
    writeln!(out, "  node [shape=circle, fontsize=10];").unwrap();
    for v in graph.nodes() {
        writeln!(out, "  {} [label=\"{}\"];", v.index(), graph.node_name(v)).unwrap();
    }
    for e in graph.edge_ids() {
        let style = if opts.highlight.contains(&e) {
            ", color=red, penwidth=2.0"
        } else {
            ""
        };
        writeln!(
            out,
            "  {} -> {} [label=\"{}\"{}];",
            graph.src(e).index(),
            graph.dst(e).index(),
            graph.edge_name(e),
            style
        )
        .unwrap();
    }
    writeln!(out, "}}").unwrap();
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::gadget::{DaisyChain, GEpsilon};

    #[test]
    fn renders_figure_3_1() {
        let c = DaisyChain::new(3, 2);
        let dot = to_dot(
            &c.graph,
            &DotOptions {
                name: "Fn2".into(),
                highlight: vec![c.gadgets[0].egress],
                left_to_right: true,
            },
        );
        assert!(dot.starts_with("digraph \"Fn2\""));
        assert!(dot.contains("rankdir=LR"));
        // the shared boundary edge a^2 appears exactly once
        assert_eq!(dot.matches("label=\"a^2\"").count(), 1);
        assert!(dot.contains("color=red"));
    }

    #[test]
    fn renders_figure_3_2_with_feedback() {
        let g = GEpsilon::new(2, 3);
        let dot = to_dot(
            &g.graph,
            &DotOptions {
                name: "Geps".into(),
                highlight: vec![g.e0],
                left_to_right: true,
            },
        );
        assert!(dot.contains("label=\"e0\""));
        // one line per edge plus header/footer
        let edge_lines = dot.lines().filter(|l| l.contains("->")).count();
        assert_eq!(edge_lines, g.graph.edge_count());
    }

    #[test]
    fn default_options_render() {
        let c = DaisyChain::new(1, 1);
        let dot = to_dot(&c.graph, &DotOptions::default());
        assert!(dot.starts_with("digraph \"G\""));
        assert!(!dot.contains("rankdir"));
    }
}
