//! The paper's instability gadgets (Section 3.2, Definition 3.4).
//!
//! A *gadget* is a DAG with an `ingress` edge emanating from a degree-1
//! source and an `egress` edge leading to a degree-1 sink. Two gadgets
//! compose by identifying the egress of the first with the ingress of the
//! second (`G ◦ H`, "daisy-chaining"); `F^i = F^{i-1} ◦ F`.
//!
//! The parametric gadget `F_n` has ingress `a`, egress `a'`, and two
//! parallel internal paths of length `n` between them: `e_1 … e_n` and
//! `f_1 … f_n` (Figure 3.1 shows `F_n^2`). The cyclic instability graph
//! `G_ε` of Theorem 3.17 (Figure 3.2) is `F_n^M` plus a feedback edge
//! `e0` from the head of the last gadget's egress to the tail of the
//! first gadget's ingress.

use crate::builder::GraphBuilder;
use crate::graph::{EdgeId, Graph};

/// Per-gadget edge handles inside a composed graph.
///
/// For gadget `k` of a chain, `ingress` is the shared edge with gadget
/// `k-1` (or the chain's ingress for `k = 0`) and `egress` is shared with
/// gadget `k+1`.
#[derive(Debug, Clone)]
pub struct GadgetHandles {
    /// The edge `a` (shared with the predecessor's egress).
    pub ingress: EdgeId,
    /// The edge `a'` (shared with the successor's ingress).
    pub egress: EdgeId,
    /// The upper internal path `e_1 .. e_n`.
    pub e_path: Vec<EdgeId>,
    /// The lower internal path `f_1 .. f_n`.
    pub f_path: Vec<EdgeId>,
}

impl GadgetHandles {
    /// All edges belonging to this gadget, including its boundary edges
    /// (note boundary edges are shared with neighbours in a chain).
    pub fn all_edges(&self) -> Vec<EdgeId> {
        let mut v = Vec::with_capacity(2 + self.e_path.len() + self.f_path.len());
        v.push(self.ingress);
        v.extend_from_slice(&self.e_path);
        v.extend_from_slice(&self.f_path);
        v.push(self.egress);
        v
    }

    /// The gadget parameter `n` (length of each internal path).
    pub fn n(&self) -> usize {
        self.e_path.len()
    }
}

/// A single `F_n` gadget as a standalone graph.
#[derive(Debug, Clone)]
pub struct FnGadget {
    /// The underlying graph.
    pub graph: Graph,
    /// Edge handles.
    pub handles: GadgetHandles,
    /// The parameter `n`.
    pub n: usize,
}

/// `F_n^M`: `M` daisy-chained `F_n` gadgets (Definition 3.4).
#[derive(Debug, Clone)]
pub struct DaisyChain {
    /// The underlying graph.
    pub graph: Graph,
    /// Handles for gadgets `F(1) .. F(M)` (0-indexed here).
    pub gadgets: Vec<GadgetHandles>,
    /// The parameter `n`.
    pub n: usize,
}

/// The cyclic graph `G_ε` of Theorem 3.17: `F_n^M` plus the feedback
/// edge `e0` (Figure 3.2).
#[derive(Debug, Clone)]
pub struct GEpsilon {
    /// The underlying graph.
    pub graph: Graph,
    /// Handles for gadgets `F(1) .. F(M)` (0-indexed here).
    pub gadgets: Vec<GadgetHandles>,
    /// Feedback edge from the head of `F(M)`'s egress to the tail of
    /// `F(1)`'s ingress.
    pub e0: EdgeId,
    /// The gadget parameter `n`.
    pub n: usize,
    /// The chain length `M`.
    pub m: usize,
}

/// Internal: build `M` chained gadgets starting from a fresh source.
/// Returns (builder, handles).
fn chain_builder(n: usize, m: usize) -> (GraphBuilder, Vec<GadgetHandles>) {
    assert!(n >= 1, "gadget parameter n must be >= 1");
    assert!(m >= 1, "chain length M must be >= 1");
    let mut b = GraphBuilder::new();
    let source = b.node("src");
    let mut entry = b.node("g1_in");
    let mut ingress = b.edge(source, entry, "a^1");
    let mut gadgets = Vec::with_capacity(m);
    for k in 1..=m {
        let exit = b.node(format!("g{k}_out"));
        let e_path = b.path(entry, exit, n, &format!("g{k}.e"));
        let f_path = b.path(entry, exit, n, &format!("g{k}.f"));
        let next_entry = if k == m {
            b.node("sink")
        } else {
            b.node(format!("g{}_in", k + 1))
        };
        let egress = b.edge(exit, next_entry, format!("a^{}", k + 1));
        gadgets.push(GadgetHandles {
            ingress,
            egress,
            e_path,
            f_path,
        });
        ingress = egress;
        entry = next_entry;
    }
    (b, gadgets)
}

impl FnGadget {
    /// Build a standalone `F_n`.
    pub fn new(n: usize) -> Self {
        let (b, mut gadgets) = chain_builder(n, 1);
        let handles = gadgets.pop().expect("one gadget");
        FnGadget {
            graph: b.build(),
            handles,
            n,
        }
    }
}

impl DaisyChain {
    /// Build `F_n^M`. `F_n^2` is the graph of Figure 3.1.
    pub fn new(n: usize, m: usize) -> Self {
        let (b, gadgets) = chain_builder(n, m);
        DaisyChain {
            graph: b.build(),
            gadgets,
            n,
        }
    }

    /// The chain's overall ingress edge (ingress of `F(1)`).
    pub fn ingress(&self) -> EdgeId {
        self.gadgets[0].ingress
    }

    /// The chain's overall egress edge (egress of `F(M)`).
    pub fn egress(&self) -> EdgeId {
        self.gadgets.last().expect("non-empty chain").egress
    }
}

impl GEpsilon {
    /// Build `G_ε` with explicit parameters `n` (gadget path length) and
    /// `M` (chain length). Parameter selection from `ε` itself lives in
    /// `aqt-adversary::params` (it depends on the adversary's rate).
    pub fn new(n: usize, m: usize) -> Self {
        let (mut b, gadgets) = chain_builder(n, m);
        let last_egress = gadgets.last().expect("non-empty chain").egress;
        let first_ingress = gadgets[0].ingress;
        // e0 runs from the head of egress(F(M)) to the tail of
        // ingress(F(1)). chain_builder assigns node ids sequentially:
        // "src" (tail of the first ingress) is node 0, and "sink" (head
        // of the last egress) is the most recently created node.
        let src_node = crate::graph::NodeId(0);
        let sink_node = crate::graph::NodeId((b.node_count() - 1) as u32);
        let e0 = b.edge(sink_node, src_node, "e0");
        let graph = b.build();
        debug_assert_eq!(graph.src(e0), graph.dst(last_egress));
        debug_assert_eq!(graph.dst(e0), graph.src(first_ingress));
        GEpsilon {
            graph,
            gadgets,
            e0,
            n,
            m,
        }
    }

    /// Ingress edge of `F(1)`.
    pub fn ingress(&self) -> EdgeId {
        self.gadgets[0].ingress
    }

    /// Egress edge of `F(M)`.
    pub fn egress(&self) -> EdgeId {
        self.gadgets.last().expect("non-empty chain").egress
    }

    /// The three-edge stitch path of Lemma 3.16:
    /// `a0 = egress(F(M))`, `a1 = e0`, `a2 = ingress(F(1))`.
    pub fn stitch_path(&self) -> [EdgeId; 3] {
        [self.egress(), self.e0, self.ingress()]
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::route::Route;

    #[test]
    fn fn_gadget_structure() {
        // F_3: ingress + egress + two 3-paths = 8 edges;
        // nodes: src, in, out, sink + 2*2 intermediates = 8
        let g = FnGadget::new(3);
        assert_eq!(g.graph.edge_count(), 8);
        assert_eq!(g.graph.node_count(), 8);
        let h = &g.handles;
        assert_eq!(h.n(), 3);
        // ingress from a degree-1 source
        let src = g.graph.src(h.ingress);
        assert_eq!(g.graph.out_degree(src), 1);
        assert_eq!(g.graph.in_degree(src), 0);
        // egress to a degree-1 sink
        let sink = g.graph.dst(h.egress);
        assert_eq!(g.graph.in_degree(sink), 1);
        assert_eq!(g.graph.out_degree(sink), 0);
        // both internal paths run from head(ingress) to tail(egress)
        for path in [&h.e_path, &h.f_path] {
            assert_eq!(g.graph.src(path[0]), g.graph.dst(h.ingress));
            assert_eq!(g.graph.dst(path[2]), g.graph.src(h.egress));
        }
    }

    #[test]
    fn fn1_uses_parallel_edges() {
        let g = FnGadget::new(1);
        // a, a', e1, f1 — e1 and f1 are parallel
        assert_eq!(g.graph.edge_count(), 4);
        let h = &g.handles;
        assert_eq!(g.graph.src(h.e_path[0]), g.graph.src(h.f_path[0]));
        assert_eq!(g.graph.dst(h.e_path[0]), g.graph.dst(h.f_path[0]));
    }

    #[test]
    fn daisy_chain_shares_boundary_edges() {
        // Figure 3.1: F_n^2 — egress of F is the ingress of F'.
        let c = DaisyChain::new(4, 2);
        assert_eq!(c.gadgets.len(), 2);
        assert_eq!(c.gadgets[0].egress, c.gadgets[1].ingress);
        // edge count: M*(2n+1) + 1
        assert_eq!(c.graph.edge_count(), 2 * (2 * 4 + 1) + 1);
    }

    #[test]
    fn daisy_chain_route_through_everything_is_simple() {
        // The extended routes of the construction traverse
        // a, f_1..f_n, a', f'_1..f'_n, a'' — must be a simple path.
        let c = DaisyChain::new(3, 2);
        let mut edges = vec![c.gadgets[0].ingress];
        edges.extend_from_slice(&c.gadgets[0].f_path);
        edges.push(c.gadgets[0].egress);
        edges.extend_from_slice(&c.gadgets[1].f_path);
        edges.push(c.gadgets[1].egress);
        let r = Route::new(&c.graph, edges).expect("long route must be simple");
        assert_eq!(r.len(), 2 * 3 + 3);
    }

    #[test]
    fn g_epsilon_feedback_edge() {
        let g = GEpsilon::new(3, 4);
        assert_eq!(g.gadgets.len(), 4);
        assert_eq!(g.graph.src(g.e0), g.graph.dst(g.egress()));
        assert_eq!(g.graph.dst(g.e0), g.graph.src(g.ingress()));
        // edge count: M*(2n+1) + 1 + feedback
        assert_eq!(g.graph.edge_count(), 4 * 7 + 2);
    }

    #[test]
    fn stitch_path_is_consecutive() {
        let g = GEpsilon::new(2, 3);
        let [a0, a1, a2] = g.stitch_path();
        assert!(g.graph.consecutive(a0, a1));
        assert!(g.graph.consecutive(a1, a2));
        let r = Route::new(&g.graph, vec![a0, a1, a2]).unwrap();
        assert_eq!(r.len(), 3);
    }

    #[test]
    fn g_epsilon_contains_exactly_one_cycle_through_e0() {
        // Removing e0 leaves a DAG (the daisy chain).
        let g = GEpsilon::new(2, 2);
        let cyclic = crate::analysis::has_cycle(&g.graph);
        assert!(cyclic);
        let chain = DaisyChain::new(2, 2);
        assert!(!crate::analysis::has_cycle(&chain.graph));
    }
}
