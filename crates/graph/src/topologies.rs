//! Classic AQT evaluation topologies.
//!
//! The stability theorems of Section 4 hold for *any* network; the
//! experiment harness exercises them across this family. The
//! [`baseball`] graph is the network underlying the prior FIFO
//! instability constructions the paper improves on (Andrews et al.
//! \[4\], Díaz et al. \[11\], Koukopoulos et al. \[15\]) and the NTG/FFS/LIFO
//! instability results of Borodin et al. \[7\].

use crate::builder::GraphBuilder;
use crate::graph::{EdgeId, Graph, NodeId};

/// A directed ring `v_0 -> v_1 -> … -> v_{k-1} -> v_0`.
pub fn ring(k: usize) -> Graph {
    assert!(k >= 2, "a ring needs at least two nodes");
    let mut b = GraphBuilder::new();
    let vs = b.nodes(k);
    for i in 0..k {
        b.edge(vs[i], vs[(i + 1) % k], format!("r{i}"));
    }
    b.build()
}

/// A directed line `v_0 -> v_1 -> … -> v_k` (`k` edges).
pub fn line(k: usize) -> Graph {
    assert!(k >= 1, "a line needs at least one edge");
    let mut b = GraphBuilder::new();
    let vs = b.nodes(k + 1);
    for i in 0..k {
        b.edge(vs[i], vs[i + 1], format!("l{i}"));
    }
    b.build()
}

/// A `w × h` grid with edges in both directions between 4-neighbours.
pub fn grid(w: usize, h: usize) -> Graph {
    assert!(w >= 1 && h >= 1);
    let mut b = GraphBuilder::new();
    let vs: Vec<Vec<NodeId>> = (0..h)
        .map(|y| (0..w).map(|x| b.node(format!("g{x}_{y}"))).collect())
        .collect();
    for y in 0..h {
        for x in 0..w {
            if x + 1 < w {
                b.edge(vs[y][x], vs[y][x + 1], format!("h{x}_{y}+"));
                b.edge(vs[y][x + 1], vs[y][x], format!("h{x}_{y}-"));
            }
            if y + 1 < h {
                b.edge(vs[y][x], vs[y + 1][x], format!("v{x}_{y}+"));
                b.edge(vs[y + 1][x], vs[y][x], format!("v{x}_{y}-"));
            }
        }
    }
    b.build()
}

/// A `w × h` torus with unidirectional wrap-around edges (right and down).
pub fn torus(w: usize, h: usize) -> Graph {
    assert!(w >= 2 && h >= 2);
    let mut b = GraphBuilder::new();
    let vs: Vec<Vec<NodeId>> = (0..h)
        .map(|y| (0..w).map(|x| b.node(format!("t{x}_{y}"))).collect())
        .collect();
    for y in 0..h {
        for x in 0..w {
            b.edge(vs[y][x], vs[y][(x + 1) % w], format!("h{x}_{y}"));
            b.edge(vs[y][x], vs[(y + 1) % h][x], format!("v{x}_{y}"));
        }
    }
    b.build()
}

/// The directed `dim`-dimensional hypercube: nodes are bitstrings, with
/// an edge in each direction across every dimension.
pub fn hypercube(dim: usize) -> Graph {
    assert!((1..=16).contains(&dim));
    let n = 1usize << dim;
    let mut b = GraphBuilder::new();
    let vs: Vec<NodeId> = (0..n)
        .map(|i| b.node(format!("c{i:0width$b}", width = dim)))
        .collect();
    for i in 0..n {
        for d in 0..dim {
            let j = i ^ (1 << d);
            if i < j {
                b.edge(vs[i], vs[j], format!("q{i}_{j}"));
                b.edge(vs[j], vs[i], format!("q{j}_{i}"));
            }
        }
    }
    b.build()
}

/// The complete directed graph on `k` nodes (no self-loops).
pub fn complete(k: usize) -> Graph {
    assert!(k >= 2);
    let mut b = GraphBuilder::new();
    let vs = b.nodes(k);
    for i in 0..k {
        for j in 0..k {
            if i != j {
                b.edge(vs[i], vs[j], format!("k{i}_{j}"));
            }
        }
    }
    b.build()
}

/// A random digraph: each ordered pair (u, v), u ≠ v, carries an edge
/// independently with probability `p`, decided by the caller-supplied
/// uniform samples to keep this crate free of RNG dependencies. The
/// closure receives `(i, j)` and returns whether to include the edge.
pub fn random_digraph(k: usize, mut include: impl FnMut(usize, usize) -> bool) -> Graph {
    assert!(k >= 2);
    let mut b = GraphBuilder::new();
    let vs = b.nodes(k);
    for i in 0..k {
        for j in 0..k {
            if i != j && include(i, j) {
                b.edge(vs[i], vs[j], format!("p{i}_{j}"));
            }
        }
    }
    b.build()
}

/// Handles into the [`baseball`] graph.
#[derive(Debug, Clone, Copy)]
pub struct Baseball {
    /// First "long" edge `e0 : v0 -> v1`.
    pub e0: EdgeId,
    /// Second "long" edge `e1 : v2 -> v3`.
    pub e1: EdgeId,
    /// First parallel connector `f0 : v1 -> v2`.
    pub f0: EdgeId,
    /// Second parallel connector `f0' : v1 -> v2`.
    pub f0p: EdgeId,
    /// First parallel connector back `f1 : v3 -> v0`.
    pub f1: EdgeId,
    /// Second parallel connector back `f1' : v3 -> v0`.
    pub f1p: EdgeId,
}

/// The four-node "baseball" graph used in the prior FIFO instability
/// constructions (\[4\], \[11\], \[15\]): a directed 4-cycle
/// `v0 -> v1 -> v2 -> v3 -> v0` whose connector hops `v1 -> v2` and
/// `v3 -> v0` are doubled (parallel edges `f` and `f'`), giving the
/// adversary two interchangeable ways around each half.
pub fn baseball() -> (Graph, Baseball) {
    let mut b = GraphBuilder::new();
    let v0 = b.node("v0");
    let v1 = b.node("v1");
    let v2 = b.node("v2");
    let v3 = b.node("v3");
    let e0 = b.edge(v0, v1, "e0");
    let f0 = b.edge(v1, v2, "f0");
    let f0p = b.edge(v1, v2, "f0'");
    let e1 = b.edge(v2, v3, "e1");
    let f1 = b.edge(v3, v0, "f1");
    let f1p = b.edge(v3, v0, "f1'");
    (
        b.build(),
        Baseball {
            e0,
            e1,
            f0,
            f0p,
            f1,
            f1p,
        },
    )
}

/// Handles into the [`ntg_trap`] network.
#[derive(Debug, Clone)]
pub struct NtgTrap {
    /// The contended "spine" edges `g_1 .. g_k`; long packets must cross
    /// all of them, distractor packets only the next one.
    pub spine: Vec<EdgeId>,
    /// Feeder edge where long packets are injected and queued.
    pub feeder: EdgeId,
    /// Tail paths hanging off each spine node: `tail[i]` starts at the
    /// head of `spine[i]`.
    pub tails: Vec<Vec<EdgeId>>,
}

/// A network family in the spirit of Borodin et al. \[7\]'s proof that
/// NTG (nearest-to-go) can be unstable at arbitrarily low injection
/// rates: a spine of `k` contended edges where cheap single-edge
/// "distractor" packets always beat long-haul packets under NTG, plus
/// a per-spine-node *tail* path of length `tail_len` that makes the
/// long packets' remaining distance large. The paper's Section 5 cites
/// this phenomenon (instability with paths of length `16/r`) to argue
/// its `1/(d+1)` bound is near-optimal.
pub fn ntg_trap(k: usize, tail_len: usize) -> (Graph, NtgTrap) {
    assert!(k >= 1 && tail_len >= 1);
    let mut b = GraphBuilder::new();
    let src = b.node("src");
    let first = b.node("s0");
    let feeder = b.edge(src, first, "feed");
    let mut spine = Vec::with_capacity(k);
    let mut spine_nodes = vec![first];
    for i in 0..k {
        let nxt = b.node(format!("s{}", i + 1));
        spine.push(b.edge(spine_nodes[i], nxt, format!("g{}", i + 1)));
        spine_nodes.push(nxt);
    }
    let mut tails = Vec::with_capacity(k);
    for i in 0..k {
        let end = b.node(format!("t{}_end", i + 1));
        let tail = b.path(spine_nodes[i + 1], end, tail_len, &format!("t{}", i + 1));
        tails.push(tail);
    }
    (
        b.build(),
        NtgTrap {
            spine,
            feeder,
            tails,
        },
    )
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::analysis;

    #[test]
    fn ring_is_cyclic_line_is_not() {
        assert!(analysis::has_cycle(&ring(5)));
        assert!(!analysis::has_cycle(&line(5)));
        assert_eq!(ring(5).edge_count(), 5);
        assert_eq!(line(5).edge_count(), 5);
        assert_eq!(line(5).node_count(), 6);
    }

    #[test]
    fn grid_edge_count() {
        // 3x2 grid: horizontal pairs 2*2, vertical pairs 3*1, both directions
        let g = grid(3, 2);
        assert_eq!(g.node_count(), 6);
        assert_eq!(g.edge_count(), 2 * (2 * 2) + 2 * 3);
    }

    #[test]
    fn torus_regular_degrees() {
        let g = torus(3, 3);
        for v in g.nodes() {
            assert_eq!(g.out_degree(v), 2);
            assert_eq!(g.in_degree(v), 2);
        }
    }

    #[test]
    fn hypercube_degrees() {
        let g = hypercube(3);
        assert_eq!(g.node_count(), 8);
        assert_eq!(g.edge_count(), 8 * 3);
        for v in g.nodes() {
            assert_eq!(g.out_degree(v), 3);
            assert_eq!(g.in_degree(v), 3);
        }
    }

    #[test]
    fn complete_graph_counts() {
        let g = complete(4);
        assert_eq!(g.edge_count(), 12);
    }

    #[test]
    fn random_digraph_respects_closure() {
        let g = random_digraph(4, |i, j| (i + j) % 2 == 0);
        for e in g.edge_ids() {
            let i = g.src(e).index();
            let j = g.dst(e).index();
            assert_eq!((i + j) % 2, 0);
        }
    }

    #[test]
    fn baseball_shape() {
        let (g, h) = baseball();
        assert_eq!(g.node_count(), 4);
        assert_eq!(g.edge_count(), 6);
        // f0 and f0' are parallel
        assert_eq!(g.src(h.f0), g.src(h.f0p));
        assert_eq!(g.dst(h.f0), g.dst(h.f0p));
        // the cycle e0 f0 e1 f1 closes
        assert!(g.consecutive(h.e0, h.f0));
        assert!(g.consecutive(h.f0, h.e1));
        assert!(g.consecutive(h.e1, h.f1));
        assert!(g.consecutive(h.f1, h.e0));
        assert!(analysis::has_cycle(&g));
    }

    #[test]
    fn ntg_trap_shape() {
        let (g, h) = ntg_trap(3, 4);
        assert_eq!(h.spine.len(), 3);
        assert_eq!(h.tails.len(), 3);
        // long route: feeder, spine..., last tail
        assert!(g.consecutive(h.feeder, h.spine[0]));
        assert!(g.consecutive(h.spine[0], h.spine[1]));
        // each tail hangs off the head of its spine edge
        for i in 0..3 {
            assert!(g.consecutive(h.spine[i], h.tails[i][0]));
        }
    }
}
