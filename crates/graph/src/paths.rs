//! Path enumeration and route-pool construction.
//!
//! The stability experiments need route sets with a controlled `d`
//! (the longest route length); the paper's Section 5 remarks that its
//! instability routes are *shortest paths* ("and hence noncircular").
//! This module provides shortest-path route pools, diameter
//! computation, and bounded simple-path enumeration.

use crate::analysis::shortest_path;
use crate::graph::{Graph, NodeId};
use crate::route::Route;

/// Hop-count diameter of the graph restricted to reachable pairs
/// (maximum finite shortest-path length). 0 for graphs with no edges.
pub fn diameter(graph: &Graph) -> usize {
    let mut best = 0;
    for s in graph.nodes() {
        // BFS from s
        let mut dist = vec![usize::MAX; graph.node_count()];
        let mut q = std::collections::VecDeque::new();
        dist[s.index()] = 0;
        q.push_back(s);
        while let Some(v) = q.pop_front() {
            for &e in graph.out_edges(v) {
                let w = graph.dst(e);
                if dist[w.index()] == usize::MAX {
                    dist[w.index()] = dist[v.index()] + 1;
                    best = best.max(dist[w.index()]);
                    q.push_back(w);
                }
            }
        }
    }
    best
}

/// All shortest-path routes between distinct node pairs with length in
/// `[1, max_len]`, in deterministic (source, destination) order. One
/// route per pair (BFS tie-breaking by edge insertion order).
pub fn shortest_path_pool(graph: &Graph, max_len: usize) -> Vec<Route> {
    let mut pool = Vec::new();
    for s in graph.nodes() {
        for t in graph.nodes() {
            if s == t {
                continue;
            }
            if let Some(p) = shortest_path(graph, s, t) {
                if !p.is_empty() && p.len() <= max_len {
                    pool.push(Route::new(graph, p).expect("BFS paths are simple"));
                }
            }
        }
    }
    pool
}

/// Enumerate all simple directed paths from `src` with length (in
/// edges) between 1 and `max_len`, up to `cap` paths (DFS order,
/// deterministic). Exponential in general — keep `max_len` small.
pub fn simple_paths_from(graph: &Graph, src: NodeId, max_len: usize, cap: usize) -> Vec<Route> {
    let mut out = Vec::new();
    let mut edge_stack = Vec::new();
    let mut visited = vec![false; graph.node_count()];
    visited[src.index()] = true;
    dfs(
        graph,
        src,
        max_len,
        cap,
        &mut edge_stack,
        &mut visited,
        &mut out,
    );
    out
}

fn dfs(
    graph: &Graph,
    v: NodeId,
    max_len: usize,
    cap: usize,
    edge_stack: &mut Vec<crate::graph::EdgeId>,
    visited: &mut [bool],
    out: &mut Vec<Route>,
) {
    if out.len() >= cap || edge_stack.len() >= max_len {
        return;
    }
    for &e in graph.out_edges(v) {
        if out.len() >= cap {
            return;
        }
        let w = graph.dst(e);
        if visited[w.index()] {
            continue;
        }
        edge_stack.push(e);
        visited[w.index()] = true;
        out.push(Route::new(graph, edge_stack.clone()).expect("DFS paths are simple"));
        dfs(graph, w, max_len, cap, edge_stack, visited, out);
        visited[w.index()] = false;
        edge_stack.pop();
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::topologies;

    #[test]
    fn diameter_of_known_graphs() {
        assert_eq!(diameter(&topologies::ring(6)), 5);
        assert_eq!(diameter(&topologies::line(4)), 4);
        assert_eq!(diameter(&topologies::complete(5)), 1);
        assert_eq!(diameter(&topologies::hypercube(3)), 3);
    }

    #[test]
    fn shortest_pool_lengths_bounded() {
        let g = topologies::grid(3, 3);
        let pool = shortest_path_pool(&g, 2);
        assert!(!pool.is_empty());
        assert!(pool.iter().all(|r| !r.is_empty() && r.len() <= 2));
        // pairs at distance 1 or 2 in a 3x3 grid: every adjacent pair
        // contributes, so at least the 24 directed adjacencies appear
        assert!(pool.len() >= 24);
    }

    #[test]
    fn shortest_pool_full_diameter() {
        let g = topologies::ring(5);
        let pool = shortest_path_pool(&g, 4);
        // ring: every ordered pair has exactly one path; 5*4 pairs
        assert_eq!(pool.len(), 20);
    }

    #[test]
    fn simple_paths_enumeration() {
        let g = topologies::complete(4);
        let v0 = g.nodes().next().unwrap();
        let paths = simple_paths_from(&g, v0, 2, 1000);
        // length 1: 3 paths; length 2: 3*2 = 6 paths
        assert_eq!(paths.len(), 9);
        for p in &paths {
            Route::validate(&g, p.edges()).expect("simple");
        }
    }

    #[test]
    fn simple_paths_cap_respected() {
        let g = topologies::complete(5);
        let v0 = g.nodes().next().unwrap();
        let paths = simple_paths_from(&g, v0, 4, 7);
        assert_eq!(paths.len(), 7);
    }
}
