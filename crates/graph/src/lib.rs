//! # aqt-graph
//!
//! Directed-graph substrate for adversarial queuing theory (AQT).
//!
//! This crate provides the network model of Borodin et al. (*Adversarial
//! queuing theory*, J. ACM 48(1), 2001) as used by Lotker, Patt-Shamir and
//! Rosén (*New stability results for adversarial queuing*, SPAA 2002):
//! a directed graph `G = (V, E)` whose nodes are switches and whose edges
//! are unit-capacity links, together with *routes* (simple directed paths)
//! followed by packets.
//!
//! Besides the generic graph type it contains:
//!
//! * [`gadget`] — the paper's parametric gadget `F_n`, daisy chains
//!   `F_n^M` (the `◦` composition of Definition 3.4), and the cyclic
//!   instability graph `G_ε` of Theorem 3.17 (Figures 3.1 and 3.2).
//! * [`topologies`] — classic AQT evaluation topologies (rings, lines,
//!   grids, tori, hypercubes, complete graphs, random digraphs, and the
//!   "baseball" graph used by the prior FIFO-instability constructions).
//! * [`analysis`] — degrees, reachability, cycle detection, and the
//!   route-set parameter `d` (length of the longest route) that governs
//!   the stability thresholds `1/d` and `1/(d+1)` of Section 4.
//! * [`dot`] — Graphviz export, regenerating the paper's two figures.
//! * [`paths`] — diameters, shortest-path route pools (the paper's
//!   lower-bound routes are shortest paths), simple-path enumeration.
//! * [`catalog`] — named topology construction (`"ring-8"`, …) for
//!   sweep tooling.
//! * [`partition`] — edge-partition heuristics (contiguous chain cuts,
//!   striping) for the sharded engine.
//! * [`blueprint`] — generic gadget composition (Section 5's "the
//!   technique can be applied to various gadgets"), with the paper's
//!   `F_n` and a `k`-way generalization as instances.

pub mod analysis;
pub mod blueprint;
pub mod builder;
pub mod catalog;
pub mod dot;
pub mod gadget;
pub mod graph;
pub mod partition;
pub mod paths;
pub mod route;
pub mod topologies;

pub use builder::GraphBuilder;
pub use gadget::{DaisyChain, FnGadget, GEpsilon, GadgetHandles};
pub use graph::{EdgeId, Graph, NodeId};
pub use route::{Route, RouteError};
