//! Edge-partition heuristics for the sharded engine.
//!
//! The sharded engine (`aqt-sim`'s `shard` module) partitions the
//! *edges* of the graph into disjoint shards that step concurrently;
//! this module computes the assignments. An assignment is plain data —
//! `shard_of[edge_index]` names the owning shard — so the graph crate
//! stays free of any engine dependency.
//!
//! Two heuristics cover the repository's topology families:
//!
//! * [`contiguous`] — balanced blocks of consecutive edge indices.
//!   Lines, rings, daisy chains, and the `G_ε` instability graph build
//!   their edges in chain order, so a contiguous cut puts each long
//!   chain segment in one shard: a packet crosses a shard boundary only
//!   at the block seams, minimizing cross-shard traffic per step.
//! * [`striped`] — round-robin by edge index. Grids, tori, hypercubes,
//!   and random digraphs have no exploitable edge-order locality, but
//!   their hot sets are spread across the index space; striping
//!   balances *load* (active edges per shard) even when the backlog
//!   concentrates in an index range.
//!
//! [`auto`] picks between them from the edge/node ratio: chain-like
//! graphs have `m ≲ n` (every node has out-degree ~1), mesh-like graphs
//! have `m` well above `n`.
//!
//! Any assignment is *correct* — the engine's deterministic cross-shard
//! exchange makes trajectories independent of the partition (pinned by
//! the sharded-equivalence proptests). These heuristics only affect
//! speed.

use crate::graph::Graph;

/// Balanced contiguous blocks: shard `s` owns edge indices
/// `[s*⌈m/k⌉ … )` rounded so block sizes differ by at most one.
/// Preferred for chain-ordered edge layouts (lines, rings, `G_ε`).
///
/// `shards` is clamped to at least 1; with more shards than edges the
/// trailing shards own no edges (legal — they simply idle).
pub fn contiguous(edge_count: usize, shards: usize) -> Vec<u32> {
    let k = shards.max(1);
    let base = edge_count / k;
    let extra = edge_count % k; // first `extra` blocks get one more edge
    let mut assignment = Vec::with_capacity(edge_count);
    for s in 0..k {
        let len = base + usize::from(s < extra);
        assignment.extend(std::iter::repeat_n(s as u32, len));
    }
    assignment
}

/// Round-robin striping: edge `e` belongs to shard `e mod k`.
/// Preferred for meshes and random graphs, where the hot edges are
/// scattered across the index space.
pub fn striped(edge_count: usize, shards: usize) -> Vec<u32> {
    let k = shards.max(1) as u32;
    (0..edge_count).map(|e| e as u32 % k).collect()
}

/// Pick a partition heuristic for `graph`: [`contiguous`] when the
/// graph is chain-like (`2m ≤ 3n` — lines, rings, daisy chains, `G_ε`
/// all build their edges in chain order and sit at `m ≈ n`),
/// [`striped`] otherwise (grids, tori, hypercubes, random digraphs).
pub fn auto(graph: &Graph, shards: usize) -> Vec<u32> {
    let m = graph.edge_count();
    let n = graph.node_count();
    if 2 * m <= 3 * n {
        contiguous(m, shards)
    } else {
        striped(m, shards)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::topologies;

    fn sizes(assignment: &[u32], shards: usize) -> Vec<usize> {
        let mut sizes = vec![0usize; shards];
        for &s in assignment {
            sizes[s as usize] += 1;
        }
        sizes
    }

    #[test]
    fn contiguous_blocks_are_balanced_and_ordered() {
        let a = contiguous(10, 4);
        assert_eq!(a.len(), 10);
        // Non-decreasing (contiguous blocks) and balanced within one.
        assert!(a.windows(2).all(|w| w[0] <= w[1]));
        let sz = sizes(&a, 4);
        assert_eq!(sz.iter().sum::<usize>(), 10);
        assert!(sz.iter().all(|&s| s == 2 || s == 3));
    }

    #[test]
    fn striped_is_round_robin_and_balanced() {
        let a = striped(10, 4);
        assert_eq!(a, vec![0, 1, 2, 3, 0, 1, 2, 3, 0, 1]);
        let sz = sizes(&a, 4);
        assert!(sz.iter().max().unwrap() - sz.iter().min().unwrap() <= 1);
    }

    #[test]
    fn degenerate_shapes() {
        assert_eq!(contiguous(0, 3), Vec::<u32>::new());
        assert_eq!(striped(0, 3), Vec::<u32>::new());
        assert_eq!(contiguous(5, 1), vec![0; 5]);
        assert_eq!(striped(5, 1), vec![0; 5]);
        // More shards than edges: every edge assigned, high shards idle.
        let a = contiguous(2, 8);
        assert_eq!(a.len(), 2);
        assert!(a.iter().all(|&s| s < 8));
        // Clamp: 0 shards behaves as 1.
        assert_eq!(contiguous(3, 0), vec![0; 3]);
        assert_eq!(striped(3, 0), vec![0; 3]);
    }

    #[test]
    fn auto_picks_contiguous_for_chains_striped_for_meshes() {
        let line = topologies::line(50);
        let a = auto(&line, 4);
        assert!(a.windows(2).all(|w| w[0] <= w[1]), "line → contiguous");

        let grid = topologies::grid(8, 8);
        let a = auto(&grid, 4);
        assert!(
            a.windows(2).any(|w| w[0] > w[1]),
            "grid → striped (round-robin is not monotone)"
        );
    }
}
