//! Structural graph analysis.
//!
//! These are the quantities the paper's theorems are parameterized by:
//! `m = |E|`, the maximum in-degree `α` (Díaz et al.'s bound `1/(2dmα)`
//! quoted in the introduction), and — via a given *route set* — the
//! parameter `d`, the length of the longest route used by any packet,
//! which governs the `1/d` and `1/(d+1)` stability thresholds of
//! Section 4.

use crate::graph::{EdgeId, Graph, NodeId};
use crate::route::Route;

/// Maximum in-degree over all nodes (`α` in the introduction's
/// discussion of Díaz et al.'s bound).
pub fn max_in_degree(graph: &Graph) -> usize {
    graph.nodes().map(|v| graph.in_degree(v)).max().unwrap_or(0)
}

/// Maximum out-degree over all nodes.
pub fn max_out_degree(graph: &Graph) -> usize {
    graph
        .nodes()
        .map(|v| graph.out_degree(v))
        .max()
        .unwrap_or(0)
}

/// The parameter `d` of Section 4: the length (in edges) of the longest
/// route in `routes`. Returns 0 for an empty set.
pub fn longest_route(routes: &[Route]) -> usize {
    routes.iter().map(Route::len).max().unwrap_or(0)
}

/// Does the graph contain a directed cycle?
///
/// Iterative DFS with tricolor marking (no recursion: gadget chains can
/// be long).
pub fn has_cycle(graph: &Graph) -> bool {
    #[derive(Clone, Copy, PartialEq)]
    enum Color {
        White,
        Gray,
        Black,
    }
    let n = graph.node_count();
    let mut color = vec![Color::White; n];
    let mut stack: Vec<(NodeId, usize)> = Vec::new();
    for start in graph.nodes() {
        if color[start.index()] != Color::White {
            continue;
        }
        color[start.index()] = Color::Gray;
        stack.push((start, 0));
        while let Some(&mut (v, ref mut next)) = stack.last_mut() {
            let outs = graph.out_edges(v);
            if *next < outs.len() {
                let w = graph.dst(outs[*next]);
                *next += 1;
                match color[w.index()] {
                    Color::White => {
                        color[w.index()] = Color::Gray;
                        stack.push((w, 0));
                    }
                    Color::Gray => return true,
                    Color::Black => {}
                }
            } else {
                color[v.index()] = Color::Black;
                stack.pop();
            }
        }
    }
    false
}

/// Nodes reachable from `start` (including `start`), in BFS order.
pub fn reachable(graph: &Graph, start: NodeId) -> Vec<NodeId> {
    let mut seen = vec![false; graph.node_count()];
    let mut order = Vec::new();
    let mut queue = std::collections::VecDeque::new();
    seen[start.index()] = true;
    queue.push_back(start);
    while let Some(v) = queue.pop_front() {
        order.push(v);
        for &e in graph.out_edges(v) {
            let w = graph.dst(e);
            if !seen[w.index()] {
                seen[w.index()] = true;
                queue.push_back(w);
            }
        }
    }
    order
}

/// A shortest path (in hop count) from `src` node to `dst` node, as a
/// sequence of edge ids, or `None` if unreachable. Deterministic:
/// BFS explores out-edges in insertion order.
pub fn shortest_path(graph: &Graph, src: NodeId, dst: NodeId) -> Option<Vec<EdgeId>> {
    if src == dst {
        return Some(Vec::new());
    }
    let mut pred: Vec<Option<EdgeId>> = vec![None; graph.node_count()];
    let mut seen = vec![false; graph.node_count()];
    let mut queue = std::collections::VecDeque::new();
    seen[src.index()] = true;
    queue.push_back(src);
    while let Some(v) = queue.pop_front() {
        for &e in graph.out_edges(v) {
            let w = graph.dst(e);
            if !seen[w.index()] {
                seen[w.index()] = true;
                pred[w.index()] = Some(e);
                if w == dst {
                    let mut path = Vec::new();
                    let mut cur = dst;
                    while cur != src {
                        let e = pred[cur.index()].expect("predecessor chain");
                        path.push(e);
                        cur = graph.src(e);
                    }
                    path.reverse();
                    return Some(path);
                }
                queue.push_back(w);
            }
        }
    }
    None
}

/// Length of the longest simple directed path in a DAG, in edges.
/// Panics if the graph has a cycle (use [`has_cycle`] first).
pub fn longest_path_dag(graph: &Graph) -> usize {
    assert!(!has_cycle(graph), "longest_path_dag requires a DAG");
    // topological order via Kahn's algorithm
    let n = graph.node_count();
    let mut indeg: Vec<usize> = graph.nodes().map(|v| graph.in_degree(v)).collect();
    let mut queue: std::collections::VecDeque<NodeId> =
        graph.nodes().filter(|v| indeg[v.index()] == 0).collect();
    let mut dist = vec![0usize; n];
    let mut best = 0;
    while let Some(v) = queue.pop_front() {
        for &e in graph.out_edges(v) {
            let w = graph.dst(e);
            if dist[v.index()] + 1 > dist[w.index()] {
                dist[w.index()] = dist[v.index()] + 1;
                best = best.max(dist[w.index()]);
            }
            indeg[w.index()] -= 1;
            if indeg[w.index()] == 0 {
                queue.push_back(w);
            }
        }
    }
    best
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::gadget::{DaisyChain, GEpsilon};
    use crate::topologies;
    use crate::GraphBuilder;

    #[test]
    fn degrees_of_baseball() {
        let (g, _) = topologies::baseball();
        assert_eq!(max_in_degree(&g), 2);
        assert_eq!(max_out_degree(&g), 2);
    }

    #[test]
    fn cycle_detection() {
        assert!(has_cycle(&topologies::ring(3)));
        assert!(!has_cycle(&topologies::line(3)));
        assert!(has_cycle(&topologies::torus(2, 2)));
        assert!(!has_cycle(&DaisyChain::new(2, 3).graph));
        assert!(has_cycle(&GEpsilon::new(2, 3).graph));
    }

    #[test]
    fn reachability_on_line() {
        let g = topologies::line(4);
        let v0 = crate::NodeId(0);
        assert_eq!(reachable(&g, v0).len(), 5);
        let v4 = crate::NodeId(4);
        assert_eq!(reachable(&g, v4).len(), 1);
    }

    #[test]
    fn shortest_path_on_grid() {
        let g = topologies::grid(3, 3);
        let a = g.node_by_name("g0_0").unwrap();
        let b = g.node_by_name("g2_2").unwrap();
        let p = shortest_path(&g, a, b).unwrap();
        assert_eq!(p.len(), 4);
        // consecutive edges
        for w in p.windows(2) {
            assert!(g.consecutive(w[0], w[1]));
        }
        assert_eq!(g.src(p[0]), a);
        assert_eq!(g.dst(p[3]), b);
    }

    #[test]
    fn shortest_path_unreachable() {
        let g = topologies::line(2);
        let last = crate::NodeId(2);
        let first = crate::NodeId(0);
        assert!(shortest_path(&g, last, first).is_none());
        assert_eq!(shortest_path(&g, first, first), Some(vec![]));
    }

    #[test]
    fn longest_path_in_daisy_chain() {
        // F_n^M longest path: M*(n+1)+1 edges (ingress + n + per-gadget egress)
        let c = DaisyChain::new(3, 2);
        assert_eq!(longest_path_dag(&c.graph), 2 * (3 + 1) + 1);
    }

    #[test]
    fn longest_route_parameter_d() {
        let mut b = GraphBuilder::new();
        let s = b.node("s");
        let t = b.node("t");
        let p = b.path(s, t, 5, "e");
        let g = b.build();
        let r1 = Route::new(&g, vec![p[0]]).unwrap();
        let r2 = Route::new(&g, p.clone()).unwrap();
        assert_eq!(longest_route(&[r1, r2]), 5);
        assert_eq!(longest_route(&[]), 0);
    }
}
