//! A named-topology catalog: `"ring-8"`, `"grid-4x4"`, `"torus-3x3"`,
//! `"hypercube-3"`, `"complete-5"`, `"line-6"`, `"baseball"`,
//! `"fn-3x2"` (a daisy chain `F_3^2`), `"geps-3x4"` (`G_ε` with n=3,
//! M=4).
//!
//! Sweep tooling and CLI examples identify topologies by these names;
//! the format is `<family>[-<p1>[x<p2>]]`.

use crate::gadget::{DaisyChain, GEpsilon};
use crate::graph::Graph;
use crate::topologies;

/// Error for unknown or malformed topology names.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct CatalogError(pub String);

impl std::fmt::Display for CatalogError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "unknown topology spec: {}", self.0)
    }
}

impl std::error::Error for CatalogError {}

/// The built-in family names (without parameters).
pub fn families() -> &'static [&'static str] {
    &[
        "ring",
        "line",
        "grid",
        "torus",
        "hypercube",
        "complete",
        "baseball",
        "fn",
        "geps",
    ]
}

fn parse_params(spec: &str) -> (String, Vec<usize>) {
    match spec.split_once('-') {
        None => (spec.to_string(), Vec::new()),
        Some((fam, rest)) => {
            let params: Vec<usize> = rest.split('x').filter_map(|p| p.parse().ok()).collect();
            (fam.to_string(), params)
        }
    }
}

/// Build a topology from its name.
pub fn build(spec: &str) -> Result<Graph, CatalogError> {
    let (family, p) = parse_params(spec);
    let err = || CatalogError(spec.to_string());
    let graph = match (family.as_str(), p.as_slice()) {
        ("ring", [k]) if *k >= 2 => topologies::ring(*k),
        ("line", [k]) if *k >= 1 => topologies::line(*k),
        ("grid", [w, h]) if *w >= 1 && *h >= 1 => topologies::grid(*w, *h),
        ("torus", [w, h]) if *w >= 2 && *h >= 2 => topologies::torus(*w, *h),
        ("hypercube", [d]) if (1..=16).contains(d) => topologies::hypercube(*d),
        ("complete", [k]) if *k >= 2 => topologies::complete(*k),
        ("baseball", []) => topologies::baseball().0,
        ("fn", [n, m]) if *n >= 1 && *m >= 1 => DaisyChain::new(*n, *m).graph,
        ("geps", [n, m]) if *n >= 1 && *m >= 1 => GEpsilon::new(*n, *m).graph,
        _ => return Err(err()),
    };
    Ok(graph)
}

/// A standard suite of small benchmark topologies, by name.
pub fn standard_suite() -> Vec<(&'static str, Graph)> {
    [
        "ring-8",
        "line-6",
        "grid-4x4",
        "torus-4x4",
        "hypercube-3",
        "complete-5",
        "baseball",
    ]
    .into_iter()
    .map(|n| (n, build(n).expect("standard suite names are valid")))
    .collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn builds_every_family() {
        for spec in [
            "ring-5",
            "line-3",
            "grid-2x3",
            "torus-3x3",
            "hypercube-2",
            "complete-4",
            "baseball",
            "fn-3x2",
            "geps-2x3",
        ] {
            let g = build(spec).unwrap_or_else(|e| panic!("{spec}: {e}"));
            assert!(g.edge_count() > 0, "{spec} has edges");
        }
    }

    #[test]
    fn rejects_bad_specs() {
        for spec in [
            "",
            "nope",
            "ring",
            "ring-1",
            "grid-3",
            "torus-1x9",
            "hypercube-0",
        ] {
            assert!(build(spec).is_err(), "{spec} should be rejected");
        }
    }

    #[test]
    fn standard_suite_is_consistent() {
        let suite = standard_suite();
        assert_eq!(suite.len(), 7);
        for (name, g) in &suite {
            assert_eq!(g.edge_count(), build(name).unwrap().edge_count());
        }
    }

    #[test]
    fn gadget_specs_match_direct_construction() {
        let via_catalog = build("fn-3x2").unwrap();
        let direct = DaisyChain::new(3, 2).graph;
        assert_eq!(via_catalog.edge_count(), direct.edge_count());
        assert_eq!(via_catalog.node_count(), direct.node_count());
    }
}
