//! The directed multigraph at the heart of the AQT model.
//!
//! Nodes are communication switches; each directed edge is a
//! unit-capacity link with a buffer at its tail (the buffer itself lives
//! in `aqt-sim`). Parallel edges are allowed — the gadget `F_n` with
//! `n = 1` and the baseball graph both use them.

use std::fmt;

/// Index of a node (switch). Dense `u32` handle into a [`Graph`].
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct NodeId(pub u32);

/// Index of a directed edge (link). Dense `u32` handle into a [`Graph`].
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct EdgeId(pub u32);

impl NodeId {
    /// The node index as a `usize`, for direct vector indexing.
    #[inline]
    pub fn index(self) -> usize {
        self.0 as usize
    }
}

impl EdgeId {
    /// The edge index as a `usize`, for direct vector indexing.
    #[inline]
    pub fn index(self) -> usize {
        self.0 as usize
    }
}

impl fmt::Display for NodeId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "n{}", self.0)
    }
}

impl fmt::Display for EdgeId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "e{}", self.0)
    }
}

#[derive(Debug, Clone)]
pub(crate) struct EdgeRec {
    pub src: NodeId,
    pub dst: NodeId,
    pub name: String,
}

/// A finite directed multigraph with named nodes and edges.
///
/// Construction goes through [`crate::GraphBuilder`]; once built, a
/// `Graph` is immutable, which lets the simulator share it freely across
/// threads (`Graph: Send + Sync`).
#[derive(Debug, Clone)]
pub struct Graph {
    pub(crate) node_names: Vec<String>,
    pub(crate) edges: Vec<EdgeRec>,
    pub(crate) out_edges: Vec<Vec<EdgeId>>,
    pub(crate) in_edges: Vec<Vec<EdgeId>>,
}

impl Graph {
    /// Number of nodes (`|V| = n` in the paper).
    #[inline]
    pub fn node_count(&self) -> usize {
        self.node_names.len()
    }

    /// Number of edges (`|E| = m` in the paper).
    #[inline]
    pub fn edge_count(&self) -> usize {
        self.edges.len()
    }

    /// Source (tail) node of an edge. The edge's buffer sits here.
    #[inline]
    pub fn src(&self, e: EdgeId) -> NodeId {
        self.edges[e.index()].src
    }

    /// Destination (head) node of an edge.
    #[inline]
    pub fn dst(&self, e: EdgeId) -> NodeId {
        self.edges[e.index()].dst
    }

    /// Human-readable name of an edge (e.g. `a'`, `e3`, `f1`).
    #[inline]
    pub fn edge_name(&self, e: EdgeId) -> &str {
        &self.edges[e.index()].name
    }

    /// Human-readable name of a node.
    #[inline]
    pub fn node_name(&self, v: NodeId) -> &str {
        &self.node_names[v.index()]
    }

    /// Outgoing edges of a node, in insertion order.
    #[inline]
    pub fn out_edges(&self, v: NodeId) -> &[EdgeId] {
        &self.out_edges[v.index()]
    }

    /// Incoming edges of a node, in insertion order.
    #[inline]
    pub fn in_edges(&self, v: NodeId) -> &[EdgeId] {
        &self.in_edges[v.index()]
    }

    /// Out-degree of a node.
    #[inline]
    pub fn out_degree(&self, v: NodeId) -> usize {
        self.out_edges[v.index()].len()
    }

    /// In-degree of a node. The maximum over all nodes is the parameter
    /// `α` of Díaz et al. referenced in the paper's introduction.
    #[inline]
    pub fn in_degree(&self, v: NodeId) -> usize {
        self.in_edges[v.index()].len()
    }

    /// Iterator over all node ids.
    pub fn nodes(&self) -> impl Iterator<Item = NodeId> + '_ {
        (0..self.node_names.len() as u32).map(NodeId)
    }

    /// Iterator over all edge ids.
    pub fn edge_ids(&self) -> impl Iterator<Item = EdgeId> + '_ {
        (0..self.edges.len() as u32).map(EdgeId)
    }

    /// Look up an edge by name. Linear scan — intended for tests and
    /// construction code, not hot paths.
    pub fn edge_by_name(&self, name: &str) -> Option<EdgeId> {
        self.edges
            .iter()
            .position(|e| e.name == name)
            .map(|i| EdgeId(i as u32))
    }

    /// Look up a node by name. Linear scan.
    pub fn node_by_name(&self, name: &str) -> Option<NodeId> {
        self.node_names
            .iter()
            .position(|n| n == name)
            .map(|i| NodeId(i as u32))
    }

    /// `true` if `b` can directly follow `a` on a packet route, i.e.
    /// the head of `a` is the tail of `b`.
    #[inline]
    pub fn consecutive(&self, a: EdgeId, b: EdgeId) -> bool {
        self.dst(a) == self.src(b)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::GraphBuilder;

    fn diamond() -> Graph {
        // s -> a -> t and s -> b -> t
        let mut g = GraphBuilder::new();
        let s = g.node("s");
        let a = g.node("a");
        let b = g.node("b");
        let t = g.node("t");
        g.edge(s, a, "sa");
        g.edge(s, b, "sb");
        g.edge(a, t, "at");
        g.edge(b, t, "bt");
        g.build()
    }

    #[test]
    fn counts_and_lookup() {
        let g = diamond();
        assert_eq!(g.node_count(), 4);
        assert_eq!(g.edge_count(), 4);
        let sa = g.edge_by_name("sa").unwrap();
        assert_eq!(g.node_name(g.src(sa)), "s");
        assert_eq!(g.node_name(g.dst(sa)), "a");
        assert!(g.edge_by_name("zz").is_none());
        assert_eq!(g.node_by_name("t"), Some(NodeId(3)));
    }

    #[test]
    fn degrees() {
        let g = diamond();
        let s = g.node_by_name("s").unwrap();
        let t = g.node_by_name("t").unwrap();
        assert_eq!(g.out_degree(s), 2);
        assert_eq!(g.in_degree(s), 0);
        assert_eq!(g.out_degree(t), 0);
        assert_eq!(g.in_degree(t), 2);
    }

    #[test]
    fn adjacency_consistency() {
        let g = diamond();
        for e in g.edge_ids() {
            assert!(g.out_edges(g.src(e)).contains(&e));
            assert!(g.in_edges(g.dst(e)).contains(&e));
        }
        let total_out: usize = g.nodes().map(|v| g.out_degree(v)).sum();
        assert_eq!(total_out, g.edge_count());
    }

    #[test]
    fn consecutive_edges() {
        let g = diamond();
        let sa = g.edge_by_name("sa").unwrap();
        let at = g.edge_by_name("at").unwrap();
        let bt = g.edge_by_name("bt").unwrap();
        assert!(g.consecutive(sa, at));
        assert!(!g.consecutive(sa, bt));
    }

    #[test]
    fn parallel_edges_allowed() {
        let mut b = GraphBuilder::new();
        let u = b.node("u");
        let v = b.node("v");
        let e1 = b.edge(u, v, "p1");
        let e2 = b.edge(u, v, "p2");
        let g = b.build();
        assert_ne!(e1, e2);
        assert_eq!(g.src(e1), g.src(e2));
        assert_eq!(g.dst(e1), g.dst(e2));
        assert_eq!(g.out_degree(u), 2);
    }
}
