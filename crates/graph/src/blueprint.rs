//! Generic gadget composition — the paper's Section 5 outlook made
//! concrete.
//!
//! > "The technique we use for the instability result, of constructing
//! > gadgets and chaining them, can be applied to various gadgets. […]
//! > Conceptually, our lower bound consists of two elements: the chain
//! > idea and a 'good' gadget."
//!
//! [`Blueprint`] abstracts the "good gadget": anything that can build
//! its internal structure between an entry and an exit switch.
//! [`chain`] daisy-chains any blueprint `M` times (sharing boundary
//! edges exactly like `F_n^M`), and [`closed_chain`] adds the feedback
//! edge that turns a chain into a `G_ε`-style cyclic network.
//!
//! Two blueprints ship here:
//!
//! * [`FnBlueprint`] — the paper's `F_n` (two parallel `n`-paths);
//!   `chain(&FnBlueprint::new(n), m)` is isomorphic to
//!   [`crate::DaisyChain::new`].
//! * [`WideBlueprint`] — a `k`-way generalization with `k` parallel
//!   `n`-paths, the natural first playground for "other gadgets"
//!   (`k = 2` recovers `F_n`).

use crate::builder::GraphBuilder;
use crate::graph::{EdgeId, Graph, NodeId};

/// A gadget's internal structure, buildable between two switches.
pub trait Blueprint {
    /// Per-instance handles (paths, special edges, …).
    type Handles;

    /// Build the internals of one gadget instance between `entry` and
    /// `exit`. `index` is the 1-based position in the chain (for edge
    /// naming).
    fn build(
        &self,
        b: &mut GraphBuilder,
        entry: NodeId,
        exit: NodeId,
        index: usize,
    ) -> Self::Handles;
}

/// One chained gadget instance: boundary edges plus blueprint handles.
#[derive(Debug, Clone)]
pub struct Chained<H> {
    /// Ingress boundary edge (shared with the predecessor's egress).
    pub ingress: EdgeId,
    /// Egress boundary edge (shared with the successor's ingress).
    pub egress: EdgeId,
    /// The blueprint's own handles.
    pub inner: H,
}

/// Daisy-chain `m` instances of a blueprint. Boundary edges are shared
/// between consecutive gadgets (the `◦` of Definition 3.4).
pub fn chain<B: Blueprint>(blueprint: &B, m: usize) -> (Graph, Vec<Chained<B::Handles>>) {
    build_chain(blueprint, m, false)
}

/// Like [`chain`], plus a feedback edge `e0` from the head of the last
/// egress to the tail of the first ingress — the `G_ε` shape. Returns
/// the feedback edge as well.
pub fn closed_chain<B: Blueprint>(
    blueprint: &B,
    m: usize,
) -> (Graph, Vec<Chained<B::Handles>>, EdgeId) {
    let (graph, gadgets) = build_chain(blueprint, m, true);
    let e0 = EdgeId((graph.edge_count() - 1) as u32);
    (graph, gadgets, e0)
}

fn build_chain<B: Blueprint>(
    blueprint: &B,
    m: usize,
    closed: bool,
) -> (Graph, Vec<Chained<B::Handles>>) {
    assert!(m >= 1, "chain length must be at least 1");
    let mut b = GraphBuilder::new();
    let source = b.node("src");
    let mut entry = b.node("g1_in");
    let mut ingress = b.edge(source, entry, "a^1");
    let mut gadgets = Vec::with_capacity(m);
    let mut last_exit_node = entry;
    for k in 1..=m {
        let exit = b.node(format!("g{k}_out"));
        let inner = blueprint.build(&mut b, entry, exit, k);
        let next_entry = if k == m {
            b.node("sink")
        } else {
            b.node(format!("g{}_in", k + 1))
        };
        let egress = b.edge(exit, next_entry, format!("a^{}", k + 1));
        gadgets.push(Chained {
            ingress,
            egress,
            inner,
        });
        ingress = egress;
        entry = next_entry;
        last_exit_node = next_entry;
    }
    if closed {
        b.edge(last_exit_node, NodeId(0), "e0");
    }
    (b.build(), gadgets)
}

/// The paper's gadget `F_n` as a blueprint.
#[derive(Debug, Clone, Copy)]
pub struct FnBlueprint {
    /// Internal path length `n`.
    pub n: usize,
}

/// Handles of an [`FnBlueprint`] instance.
#[derive(Debug, Clone)]
pub struct FnHandles {
    /// The `e`-path.
    pub e_path: Vec<EdgeId>,
    /// The `f`-path.
    pub f_path: Vec<EdgeId>,
}

impl FnBlueprint {
    /// `F_n` with paths of length `n ≥ 1`.
    pub fn new(n: usize) -> Self {
        assert!(n >= 1);
        FnBlueprint { n }
    }
}

impl Blueprint for FnBlueprint {
    type Handles = FnHandles;

    fn build(&self, b: &mut GraphBuilder, entry: NodeId, exit: NodeId, index: usize) -> FnHandles {
        FnHandles {
            e_path: b.path(entry, exit, self.n, &format!("g{index}.e")),
            f_path: b.path(entry, exit, self.n, &format!("g{index}.f")),
        }
    }
}

/// A `k`-way gadget: `k` parallel paths of length `n` between entry
/// and exit. `k = 2` is `F_n`.
#[derive(Debug, Clone, Copy)]
pub struct WideBlueprint {
    /// Internal path length.
    pub n: usize,
    /// Number of parallel paths (`≥ 2`).
    pub k: usize,
}

/// Handles of a [`WideBlueprint`] instance: one edge path per branch.
#[derive(Debug, Clone)]
pub struct WideHandles {
    /// The parallel paths, in branch order.
    pub paths: Vec<Vec<EdgeId>>,
}

impl WideBlueprint {
    /// `k` parallel `n`-paths.
    pub fn new(n: usize, k: usize) -> Self {
        assert!(n >= 1 && k >= 2);
        WideBlueprint { n, k }
    }
}

impl Blueprint for WideBlueprint {
    type Handles = WideHandles;

    fn build(
        &self,
        b: &mut GraphBuilder,
        entry: NodeId,
        exit: NodeId,
        index: usize,
    ) -> WideHandles {
        let paths = (0..self.k)
            .map(|branch| b.path(entry, exit, self.n, &format!("g{index}.p{branch}")))
            .collect();
        WideHandles { paths }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::gadget::DaisyChain;

    #[test]
    fn fn_blueprint_chain_matches_daisy_chain() {
        let (g, gadgets) = chain(&FnBlueprint::new(3), 4);
        let direct = DaisyChain::new(3, 4);
        assert_eq!(g.edge_count(), direct.graph.edge_count());
        assert_eq!(g.node_count(), direct.graph.node_count());
        assert_eq!(gadgets.len(), 4);
        // shared boundary edges
        for w in gadgets.windows(2) {
            assert_eq!(w[0].egress, w[1].ingress);
        }
    }

    #[test]
    fn closed_chain_matches_g_epsilon_shape() {
        let (g, gadgets, e0) = closed_chain(&FnBlueprint::new(2), 3);
        assert_eq!(g.dst(e0), g.src(gadgets[0].ingress));
        assert_eq!(g.src(e0), g.dst(gadgets.last().unwrap().egress));
        assert!(crate::analysis::has_cycle(&g));
    }

    #[test]
    fn wide_blueprint_builds_k_paths() {
        let (g, gadgets) = chain(&WideBlueprint::new(2, 5), 2);
        for ch in &gadgets {
            assert_eq!(ch.inner.paths.len(), 5);
            for p in &ch.inner.paths {
                assert_eq!(p.len(), 2);
                assert_eq!(g.src(p[0]), g.dst(ch.ingress));
                assert_eq!(g.dst(p[1]), g.src(ch.egress));
            }
        }
        // edges: per gadget 5 paths × 2 + egress, plus the chain ingress
        assert_eq!(g.edge_count(), 2 * (5 * 2 + 1) + 1);
    }

    #[test]
    fn wide_k2_is_isomorphic_to_fn() {
        let (a, _) = chain(&WideBlueprint::new(3, 2), 2);
        let (b, _) = chain(&FnBlueprint::new(3), 2);
        assert_eq!(a.edge_count(), b.edge_count());
        assert_eq!(a.node_count(), b.node_count());
    }

    #[test]
    #[should_panic(expected = "at least 1")]
    fn empty_chain_panics() {
        let _ = chain(&FnBlueprint::new(2), 0);
    }
}
