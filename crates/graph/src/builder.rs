//! Mutable construction of [`Graph`]s.

use crate::graph::{EdgeId, EdgeRec, Graph, NodeId};

/// Incremental builder for [`Graph`].
///
/// ```
/// use aqt_graph::GraphBuilder;
/// let mut b = GraphBuilder::new();
/// let u = b.node("u");
/// let v = b.node("v");
/// let e = b.edge(u, v, "uv");
/// let g = b.build();
/// assert_eq!(g.src(e), u);
/// assert_eq!(g.dst(e), v);
/// ```
#[derive(Debug, Default)]
pub struct GraphBuilder {
    node_names: Vec<String>,
    edges: Vec<EdgeRec>,
}

impl GraphBuilder {
    /// An empty builder.
    pub fn new() -> Self {
        Self::default()
    }

    /// Add a node with the given display name; returns its id.
    pub fn node(&mut self, name: impl Into<String>) -> NodeId {
        let id = NodeId(self.node_names.len() as u32);
        self.node_names.push(name.into());
        id
    }

    /// Add `count` anonymous nodes (named `v<k>`), returning their ids.
    pub fn nodes(&mut self, count: usize) -> Vec<NodeId> {
        (0..count)
            .map(|_| {
                let k = self.node_names.len();
                self.node(format!("v{k}"))
            })
            .collect()
    }

    /// Add a directed edge `src -> dst` with the given display name.
    ///
    /// # Panics
    /// Panics if either endpoint does not exist.
    pub fn edge(&mut self, src: NodeId, dst: NodeId, name: impl Into<String>) -> EdgeId {
        assert!(
            src.index() < self.node_names.len() && dst.index() < self.node_names.len(),
            "edge endpoints must be previously created nodes"
        );
        let id = EdgeId(self.edges.len() as u32);
        self.edges.push(EdgeRec {
            src,
            dst,
            name: name.into(),
        });
        id
    }

    /// Add a directed path of fresh intermediate nodes between `src` and
    /// `dst` consisting of `len` edges named `<prefix>1 .. <prefix><len>`.
    /// Returns the edge ids of the path in order.
    ///
    /// With `len == 1` this is a single (possibly parallel) edge
    /// `src -> dst`.
    pub fn path(&mut self, src: NodeId, dst: NodeId, len: usize, prefix: &str) -> Vec<EdgeId> {
        assert!(len >= 1, "a path must contain at least one edge");
        let mut edges = Vec::with_capacity(len);
        let mut cur = src;
        for i in 1..=len {
            let next = if i == len {
                dst
            } else {
                self.node(format!("{prefix}_x{i}"))
            };
            edges.push(self.edge(cur, next, format!("{prefix}{i}")));
            cur = next;
        }
        edges
    }

    /// Number of nodes added so far.
    pub fn node_count(&self) -> usize {
        self.node_names.len()
    }

    /// Number of edges added so far.
    pub fn edge_count(&self) -> usize {
        self.edges.len()
    }

    /// Finalize into an immutable [`Graph`], computing adjacency.
    pub fn build(self) -> Graph {
        let n = self.node_names.len();
        let mut out_edges = vec![Vec::new(); n];
        let mut in_edges = vec![Vec::new(); n];
        for (i, e) in self.edges.iter().enumerate() {
            out_edges[e.src.index()].push(EdgeId(i as u32));
            in_edges[e.dst.index()].push(EdgeId(i as u32));
        }
        Graph {
            node_names: self.node_names,
            edges: self.edges,
            out_edges,
            in_edges,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn path_of_length_three() {
        let mut b = GraphBuilder::new();
        let s = b.node("s");
        let t = b.node("t");
        let p = b.path(s, t, 3, "e");
        let g = b.build();
        assert_eq!(p.len(), 3);
        assert_eq!(g.src(p[0]), s);
        assert_eq!(g.dst(p[2]), t);
        for w in p.windows(2) {
            assert!(g.consecutive(w[0], w[1]));
        }
        // 2 endpoints + 2 fresh intermediates
        assert_eq!(g.node_count(), 4);
        assert_eq!(g.edge_name(p[1]), "e2");
    }

    #[test]
    fn path_of_length_one_is_single_edge() {
        let mut b = GraphBuilder::new();
        let s = b.node("s");
        let t = b.node("t");
        let p = b.path(s, t, 1, "a");
        let g = b.build();
        assert_eq!(p.len(), 1);
        assert_eq!(g.node_count(), 2);
        assert_eq!(g.src(p[0]), s);
        assert_eq!(g.dst(p[0]), t);
    }

    #[test]
    #[should_panic(expected = "at least one edge")]
    fn zero_length_path_panics() {
        let mut b = GraphBuilder::new();
        let s = b.node("s");
        let t = b.node("t");
        b.path(s, t, 0, "e");
    }

    #[test]
    fn anonymous_nodes() {
        let mut b = GraphBuilder::new();
        let vs = b.nodes(5);
        assert_eq!(vs.len(), 5);
        let g = b.build();
        assert_eq!(g.node_count(), 5);
    }
}
