//! **E11 — Claim 3.9**: during a gadget step, old packets arrive at
//! the tail of `e'_i` at rate `R_i = (1−r)/(1−r^i)` — the geometric
//! thinning that drives the whole amplification.

use aqt_analysis::report::f3;
use aqt_analysis::Table;
use aqt_bench::print_table;
use aqt_core::experiments::e11_thinning_rates;
use criterion::{criterion_group, criterion_main, Criterion};

fn table() {
    for (num, den) in [(1u64, 4u64), (1, 10)] {
        let rows = e11_thinning_rates(num, den, 2.0).expect("legal");
        let mut t = Table::new(
            format!("E11 / Claim 3.9 — thinning rates at ε = {num}/{den} (measured vs R_i)"),
            &["i", "R_i (paper)", "measured rate", "rel. error"],
        );
        for r in &rows {
            t.row(&[
                r.i.to_string(),
                f3(r.r_i),
                f3(r.measured),
                format!("{:+.2}%", 100.0 * (r.measured - r.r_i) / r.r_i),
            ]);
        }
        print_table(&t);
    }
}

fn bench(c: &mut Criterion) {
    table();
    let mut g = c.benchmark_group("e11_thinning_rates");
    g.sample_size(10);
    g.bench_function("gadget_step_with_rate_measurement", |b| {
        b.iter(|| e11_thinning_rates(1, 4, 1.0).expect("legal"));
    });
    g.finish();
}

criterion_group!(benches, bench);
criterion_main!(benches);
