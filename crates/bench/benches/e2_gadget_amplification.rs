//! **E2 — Lemma 3.6**: one gadget step amplifies the queue by
//! `S'/S = 2(1 − R_n) ≥ 1 + ε` within `2S + n` steps.

use aqt_analysis::report::f3;
use aqt_analysis::Table;
use aqt_bench::print_table;
use aqt_core::experiments::e2_gadget_amplification;
use criterion::{criterion_group, criterion_main, Criterion};

fn table() {
    let rows = e2_gadget_amplification(&[(1, 10), (1, 5), (1, 4), (3, 10)], &[1.0, 2.0, 4.0])
        .expect("legal adversaries");
    let mut t = Table::new(
        "E2 / Lemma 3.6 — gadget-step amplification (paper: S' ≥ S(1+ε))",
        &[
            "ε",
            "S",
            "S' measured",
            "S' theory",
            "amp measured",
            "amp promised",
            "C(S',F') exact",
        ],
    );
    for r in &rows {
        t.row(&[
            format!("{}/{}", r.eps.0, r.eps.1),
            r.s.to_string(),
            r.s_prime_measured.to_string(),
            r.s_prime_theory.to_string(),
            f3(r.amp_measured),
            f3(r.amp_promised),
            r.invariant_exact.to_string(),
        ]);
    }
    print_table(&t);
}

fn bench(c: &mut Criterion) {
    table();
    let mut g = c.benchmark_group("e2_gadget_amplification");
    g.sample_size(10);
    g.bench_function("one_step_eps_1_4", |b| {
        b.iter(|| e2_gadget_amplification(&[(1, 4)], &[1.0]).expect("legal"));
    });
    g.finish();
}

criterion_group!(benches, bench);
criterion_main!(benches);
