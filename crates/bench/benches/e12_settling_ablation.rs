//! **E12 — ablation**: the inter-stage settling pass. Without it, the
//! exact-arithmetic lag compounds geometrically down the gadget chain
//! (≈ ×1.3 per gadget) and long chains collapse — with it, the lag
//! stays additive and Theorem 3.17's loop grows as the paper predicts.

use aqt_analysis::Table;
use aqt_bench::print_table;
use aqt_core::experiments::e12_settling_ablation;
use criterion::{criterion_group, criterion_main, Criterion};

fn table() {
    let rows = e12_settling_ablation(1, 10, 2).expect("legal");
    let mut t = Table::new(
        "E12 — settling ablation at ε = 1/10 (M is long: lag has room to compound)",
        &["settling", "S₀ safety", "queue per iteration", "diverged"],
    );
    for r in &rows {
        t.row(&[
            r.settle.to_string(),
            format!("{:.1}", r.s0_safety),
            format!("{:?}", r.s_series),
            r.diverged.to_string(),
        ]);
    }
    print_table(&t);
}

fn bench(c: &mut Criterion) {
    table();
    let mut g = c.benchmark_group("e12_settling_ablation");
    g.sample_size(10);
    g.bench_function("one_iteration_settled_eps_1_4_reduced", |b| {
        b.iter(|| {
            let mut cfg = aqt_core::instability::InstabilityConfig::new(1, 4);
            cfg.iterations = 1;
            cfg.s0_safety = 1.5;
            cfg.m_margin = 1.2;
            aqt_core::instability::InstabilityConstruction::new(cfg)
                .run()
                .expect("legal")
        });
    });
    g.finish();
}

criterion_group!(benches, bench);
criterion_main!(benches);
