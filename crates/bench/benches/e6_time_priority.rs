//! **E6 — Theorem 4.3**: time-priority protocols (FIFO, LIS) keep the
//! `⌈wr⌉` bound at the higher rate `r = 1/d`.

use aqt_analysis::Table;
use aqt_bench::print_table;
use aqt_core::experiments::e6_time_priority;
use criterion::{criterion_group, criterion_main, Criterion};

fn table() {
    let rows = e6_time_priority(3, 12, 60_000).expect("legal");
    let mut t = Table::new(
        "E6 / Theorem 4.3 — time-priority stability at r = 1/d (FIFO & LIS bound = ⌈wr⌉ = 4)",
        &[
            "protocol",
            "topology",
            "bound",
            "max wait",
            "peak queue",
            "verdict",
        ],
    );
    for r in &rows {
        t.row(&[
            r.protocol.clone(),
            r.topology.clone(),
            r.bound.map_or("(theorem silent)".into(), |b| b.to_string()),
            r.max_wait.to_string(),
            r.max_queue.to_string(),
            r.verdict.to_string(),
        ]);
    }
    print_table(&t);
    let bad: Vec<_> = rows
        .iter()
        .filter(|r| matches!(r.protocol.as_str(), "FIFO" | "LIS") && !r.bound_respected)
        .collect();
    println!("FIFO/LIS violations: {} (paper promises 0)", bad.len());
}

fn bench(c: &mut Criterion) {
    table();
    let mut g = c.benchmark_group("e6_time_priority");
    g.sample_size(10);
    g.bench_function("sweep_4k_steps", |b| {
        b.iter(|| e6_time_priority(3, 12, 4_000).expect("legal"));
    });
    g.finish();
}

criterion_group!(benches, bench);
criterion_main!(benches);
