//! Engine microbenchmarks: steps/second under load, per protocol.
//!
//! Not a paper experiment — this is the simulator's own performance
//! baseline (packet-hops per second), used to size the experiment
//! sweeps.

use std::sync::Arc;

use aqt_adversary::stochastic::{random_routes, InjectionStyle, SaturatingAdversary};
use aqt_graph::topologies;
use aqt_protocols::by_name;
use aqt_sim::{Engine, EngineConfig, Ratio};
use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion, Throughput};

fn run_steps(proto: &str, steps: u64) -> u64 {
    let graph = Arc::new(topologies::torus(4, 4));
    let routes = random_routes(&graph, 4, 64, 11);
    let mut adv = SaturatingAdversary::new(
        &graph,
        16,
        Ratio::new(1, 5),
        routes,
        InjectionStyle::Burst,
        5,
    );
    let mut eng = Engine::new(
        Arc::clone(&graph),
        by_name(proto, 3).expect("protocol"),
        EngineConfig::default(),
    );
    for t in 1..=steps {
        eng.step(adv.injections_for(t)).expect("no validators on");
    }
    eng.metrics().absorbed()
}

fn bench(c: &mut Criterion) {
    let mut g = c.benchmark_group("engine_throughput");
    let steps = 20_000u64;
    g.throughput(Throughput::Elements(steps));
    g.sample_size(10);
    for proto in ["FIFO", "LIFO", "LIS", "FTG", "NTG", "RANDOM"] {
        g.bench_with_input(BenchmarkId::from_parameter(proto), proto, |b, p| {
            b.iter(|| run_steps(p, steps));
        });
    }
    g.finish();
}

criterion_group!(benches, bench);
criterion_main!(benches);
