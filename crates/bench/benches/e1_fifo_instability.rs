//! **E1 — Theorem 3.17**: FIFO is unstable at every rate `1/2 + ε`.
//!
//! Prints the headline table (queue blow-up per iteration for a sweep
//! of ε) and benches one closed-loop iteration at ε = 1/4.

use aqt_analysis::report::f3;
use aqt_analysis::Table;
use aqt_bench::print_table;
use aqt_core::experiments::e1_fifo_instability;
use aqt_core::instability::{InstabilityConfig, InstabilityConstruction};
use criterion::{criterion_group, criterion_main, Criterion};

fn headline_table() {
    let rows =
        e1_fifo_instability(&[(1, 10), (1, 5), (1, 4), (3, 10)], 3).expect("legal adversaries");
    let mut t = Table::new(
        "E1 / Theorem 3.17 — FIFO instability at r = 1/2 + ε (paper: unstable for every ε > 0)",
        &[
            "ε",
            "r",
            "n",
            "M",
            "S*",
            "queue per iteration",
            "growth/iter",
            "diverged",
            "steps",
        ],
    );
    for r in &rows {
        t.row(&[
            format!("{}/{}", r.eps.0, r.eps.1),
            f3(r.rate),
            r.n.to_string(),
            r.m.to_string(),
            r.s_star.to_string(),
            format!("{:?}", r.s_series),
            f3(r.growth),
            r.diverged.to_string(),
            r.steps.to_string(),
        ]);
    }
    print_table(&t);
}

fn bench(c: &mut Criterion) {
    headline_table();
    let mut g = c.benchmark_group("e1_fifo_instability");
    g.sample_size(10);
    g.bench_function("one_iteration_eps_1_4_reduced", |b| {
        b.iter(|| {
            let mut cfg = InstabilityConfig::new(1, 4);
            cfg.iterations = 1;
            cfg.s0_safety = 1.5;
            cfg.m_margin = 1.2;
            InstabilityConstruction::new(cfg).run().expect("legal")
        });
    });
    g.finish();
}

criterion_group!(benches, bench);
criterion_main!(benches);
