//! **E5 — Theorem 4.1**: every greedy protocol is stable at
//! `r = 1/(d+1)`, with per-buffer waits bounded by `⌈wr⌉`.

use aqt_analysis::Table;
use aqt_bench::print_table;
use aqt_core::experiments::e5_greedy_stability;
use criterion::{criterion_group, criterion_main, Criterion};

fn table() {
    let rows = e5_greedy_stability(3, 12, 60_000).expect("legal");
    let mut t = Table::new(
        "E5 / Theorem 4.1 — greedy stability at r = 1/(d+1) (paper: max wait ≤ ⌈wr⌉, here 3)",
        &[
            "protocol",
            "topology",
            "d",
            "bound",
            "max wait",
            "peak queue",
            "verdict",
            "bound ok",
        ],
    );
    let mut violations = 0;
    for r in &rows {
        if !r.bound_respected {
            violations += 1;
        }
        t.row(&[
            r.protocol.clone(),
            r.topology.clone(),
            r.d.to_string(),
            r.bound.map_or("—".into(), |b| b.to_string()),
            r.max_wait.to_string(),
            r.max_queue.to_string(),
            r.verdict.to_string(),
            r.bound_respected.to_string(),
        ]);
    }
    print_table(&t);
    println!(
        "bound violations: {violations} / {} (paper promises 0)",
        rows.len()
    );
}

fn bench(c: &mut Criterion) {
    table();
    let mut g = c.benchmark_group("e5_greedy_stability");
    g.sample_size(10);
    g.bench_function("sweep_4k_steps", |b| {
        b.iter(|| e5_greedy_stability(3, 12, 4_000).expect("legal"));
    });
    g.finish();
}

criterion_group!(benches, bench);
criterion_main!(benches);
