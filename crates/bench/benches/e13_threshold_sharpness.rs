//! **E13 — sharpness of the `⌈wr⌉` bound** (Theorem 4.3 boundary):
//! sweep the rate across `1/d` and watch the guarantee hold exactly up
//! to the threshold and erode beyond it.

use aqt_analysis::report::f3;
use aqt_analysis::Table;
use aqt_bench::print_table;
use aqt_core::experiments::e13_threshold_sharpness;
use criterion::{criterion_group, criterion_main, Criterion};

fn table() {
    let rows = e13_threshold_sharpness(3, 12, 60_000).expect("legal");
    let mut t = Table::new(
        "E13 — FIFO wait vs rate around r = 1/d (d = 3, w = 12; bound applies iff r ≤ 1/d)",
        &["r / (1/d)", "r", "bound ⌈wr⌉", "max wait", "peak queue"],
    );
    for r in &rows {
        t.row(&[
            f3(r.rate_over_threshold),
            f3(r.rate),
            r.bound.map_or("(silent)".into(), |b| b.to_string()),
            r.max_wait.to_string(),
            r.max_queue.to_string(),
        ]);
    }
    print_table(&t);
}

fn bench(c: &mut Criterion) {
    table();
    let mut g = c.benchmark_group("e13_threshold_sharpness");
    g.sample_size(10);
    g.bench_function("sweep_4k_steps", |b| {
        b.iter(|| e13_threshold_sharpness(3, 12, 4_000).expect("legal"));
    });
    g.finish();
}

criterion_group!(benches, bench);
criterion_main!(benches);
