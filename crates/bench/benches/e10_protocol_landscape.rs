//! **E10 — protocol landscape**: replay the FIFO-tuned Theorem 3.17
//! adversary against the whole protocol zoo.

use aqt_analysis::Table;
use aqt_bench::print_table;
use criterion::{criterion_group, criterion_main, Criterion};

fn table() {
    // Reduced chain: the replays against priority protocols scan whole
    // buffers per step (quadratic in queue size), so the landscape uses
    // a moderate construction — the behavioral contrast is identical.
    let mut cfg = aqt_core::instability::InstabilityConfig::new(1, 4);
    cfg.iterations = 1;
    cfg.s0_safety = 2.0;
    let rows = aqt_core::experiments::e10_landscape_with(cfg).expect("legal");
    let mut t = Table::new(
        "E10 — the 1/2+ε adversary vs. every protocol (FIFO should diverge; LIS/FTG should not)",
        &["protocol", "final backlog", "peak backlog", "verdict"],
    );
    for r in &rows {
        t.row(&[
            r.protocol.clone(),
            r.final_backlog.to_string(),
            r.max_backlog.to_string(),
            r.verdict.to_string(),
        ]);
    }
    print_table(&t);
}

fn bench(c: &mut Criterion) {
    table();
    let mut g = c.benchmark_group("e10_protocol_landscape");
    g.sample_size(10);
    g.bench_function("record_and_replay_small", |b| {
        b.iter(|| {
            let mut cfg = aqt_core::instability::InstabilityConfig::new(1, 4);
            cfg.iterations = 1;
            cfg.s0_safety = 1.0;
            cfg.m_override = Some(4);
            aqt_core::experiments::e10_landscape_with(cfg).expect("legal")
        });
    });
    g.finish();
}

criterion_group!(benches, bench);
criterion_main!(benches);
