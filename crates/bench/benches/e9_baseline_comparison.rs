//! **E9 — the comparison of Section 1/5**: our `1/2 + ε` construction
//! vs. the baseball-pump family of the prior FIFO instability results
//! ([4] r > 0.85, [11] 0.8357, [15] 0.749).

use aqt_analysis::report::f3;
use aqt_analysis::Table;
use aqt_bench::print_table;
use aqt_core::experiments::e9_comparison;
use criterion::{criterion_group, criterion_main, Criterion};

fn table() {
    let rows = e9_comparison(
        &[
            (11, 20),
            (3, 5),
            (13, 20),
            (7, 10),
            (3, 4),
            (4, 5),
            (17, 20),
            (9, 10),
        ],
        600,
        4,
        2,
    )
    .expect("legal");
    let mut t = Table::new(
        "E9 — who destabilizes FIFO at which rate (growth > 1 = diverging)",
        &[
            "rate",
            "baseball pump growth/round",
            "our G_ε growth/iteration",
        ],
    );
    for r in &rows {
        t.row(&[
            f3(r.rate),
            f3(r.baseline_growth),
            r.ours_growth.map_or("n/a".into(), f3),
        ]);
    }
    print_table(&t);
    println!(
        "shape check: our construction grows at every r > 1/2; the pump family needs far \
         higher rates (prior art: 0.749–0.85)."
    );
}

fn bench(c: &mut Criterion) {
    table();
    let mut g = c.benchmark_group("e9_baseline_comparison");
    g.sample_size(10);
    g.bench_function("pump_round_r_9_10", |b| {
        b.iter(|| {
            aqt_adversary::baselines::run_baseball_pump(aqt_sim::Ratio::new(9, 10), 600, 2)
                .expect("legal")
        });
    });
    g.finish();
}

criterion_group!(benches, bench);
criterion_main!(benches);
