//! **E4 — Lemma 3.16**: the stitch converts a queue of `S` old packets
//! into `≈ r³S` *fresh* packets three edges downstream.

use aqt_analysis::report::f3;
use aqt_analysis::Table;
use aqt_bench::print_table;
use aqt_core::experiments::e4_stitch;
use criterion::{criterion_group, criterion_main, Criterion};

fn table() {
    let rows =
        e4_stitch(&[(11, 20), (3, 5), (7, 10), (3, 4), (4, 5), (9, 10)], 2000).expect("legal");
    let mut t = Table::new(
        "E4 / Lemma 3.16 — stitch retention (paper: r³·S fresh packets)",
        &[
            "r",
            "S",
            "fresh measured",
            "fresh scheduled",
            "retention",
            "r³",
        ],
    );
    for r in &rows {
        t.row(&[
            f3(r.rate),
            r.s.to_string(),
            r.fresh_measured.to_string(),
            r.fresh_scheduled.to_string(),
            f3(r.retention),
            f3(r.r_cubed),
        ]);
    }
    print_table(&t);
}

fn bench(c: &mut Criterion) {
    table();
    let mut g = c.benchmark_group("e4_stitch");
    g.sample_size(20);
    g.bench_function("stitch_r_3_4_s_2000", |b| {
        b.iter(|| e4_stitch(&[(3, 4)], 2000).expect("legal"));
    });
    g.finish();
}

criterion_group!(benches, bench);
criterion_main!(benches);
