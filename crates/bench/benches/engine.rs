//! Engine hot-path benchmark: the staged pipeline (active-edge set +
//! discipline fast paths) against the retained pre-refactor reference
//! loop (`EngineConfig::reference_pipeline`), plus the pipeline with
//! the runtime sentinel attached at its default cadence, on the three
//! workloads the layering targets:
//!
//! * **instability** — a recorded Theorem 3.17 `G_ε` run replayed end
//!   to end (huge backlogs on a handful of edges, `Extend` reroutes);
//! * **sweep** — one stability-sweep cell (torus, saturating
//!   adversary, many moderately-filled buffers);
//! * **drain** — a seeded line(256) draining through one edge while
//!   255 buffers stay empty (the pure active-set case).
//!
//! Besides the criterion output, writes `BENCH_engine.json` at the
//! repository root with steps/sec for all five modes (the
//! `sentinel_vs_pipeline`, `telemetry_vs_pipeline`, and
//! `observe_vs_pipeline` ratios are the measured overheads of
//! self-checking, of full instrumentation, and of the queue
//! observatory at its default cadence), so the repo's perf trajectory
//! has a recorded baseline.
//! `BENCH_SMOKE=1` shrinks every workload to a single cheap sample and
//! writes `BENCH_engine_smoke.json` instead — the committed copy of
//! that file is the baseline the CI regression gate
//! (`.github/bench_gate.py`) diffs fresh smoke runs against.

use std::sync::Arc;
use std::time::Instant;

use aqt_adversary::stochastic::{random_routes, InjectionStyle, SaturatingAdversary};
use aqt_bench::report::Json;
use aqt_core::experiments::{e18_full, e18_smoke, E18Report};
use aqt_core::instability::{InstabilityConfig, InstabilityConstruction, InstabilityRun};
use aqt_graph::{topologies, Route};
use aqt_protocols::Fifo;
use aqt_sim::{
    Engine, EngineConfig, ObserveConfig, Ratio, RingSink, SentinelConfig, TelemetryConfig,
};
use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion, Throughput};

/// Pre-refactor seed measurements (commit 8270fdf, monolithic
/// `Engine::step`, release profile, this container class) — the fixed
/// "before the layering existed" reference alongside the in-binary
/// reference-loop numbers measured fresh below.
const SEED_BASELINE: &[(&str, f64)] = &[
    ("instability", 505_208.0),
    ("sweep", 171_209.0),
    ("drain", 2_427_423.0),
];

/// PR 3 pipeline measurements (commit a4c45e3, `Arc<[EdgeId]>` routes,
/// 48-byte packets, release profile, this container class) — the
/// "before route interning" reference the CI regression gate and the
/// DESIGN.md memory-layout section compare against. Bytes-per-packet
/// measured with examples/mem_profile.rs at the backlog peak of each
/// workload before the representation change.
const PR3_BASELINE_INSTABILITY_STEPS_PER_SEC: f64 = 767_423.0;
const PR3_BASELINE_BYTES_PER_PACKET: &[(&str, f64)] = &[("instability", 68.1), ("drain", 78.6)];

fn smoke() -> bool {
    std::env::var_os("BENCH_SMOKE").is_some()
}

/// The five engine configurations under comparison.
#[derive(Clone, Copy, PartialEq, Eq)]
enum Mode {
    /// Pre-refactor monolithic loop (`EngineConfig::reference_pipeline`).
    Reference,
    /// The staged pipeline with discipline fast paths.
    Pipeline,
    /// The staged pipeline with the runtime sentinel at its default
    /// cadence — measures the self-checking overhead.
    Sentinel,
    /// The staged pipeline with full telemetry (counters + stage
    /// timing, default 4096-step windows, ring sink) — measures the
    /// instrumentation overhead the `.github/bench_gate.py` telemetry
    /// gate bounds.
    Telemetry,
    /// The staged pipeline with the queue observatory at its defaults
    /// (backlog ticks every 256 steps, 1-in-64 span sampling, ring
    /// sink, telemetry level untouched) — isolates the observatory's
    /// own overhead, which the `.github/bench_gate.py` observe gate
    /// bounds.
    Observe,
}

impl Mode {
    fn label(self) -> &'static str {
        match self {
            Mode::Reference => "reference",
            Mode::Pipeline => "pipeline",
            Mode::Sentinel => "sentinel",
            Mode::Telemetry => "telemetry",
            Mode::Observe => "observe",
        }
    }

    /// A fresh engine for this mode on `graph`.
    fn engine(self, graph: &Arc<aqt_graph::Graph>) -> Engine<Fifo> {
        let cfg = EngineConfig {
            reference_pipeline: self == Mode::Reference,
            ..Default::default()
        };
        let mut eng = Engine::new(Arc::clone(graph), Fifo, cfg);
        if self == Mode::Sentinel {
            eng.attach_sentinel(SentinelConfig::default());
        }
        if self == Mode::Telemetry {
            eng.attach_telemetry(TelemetryConfig::timing());
            eng.set_telemetry_sink(Box::new(RingSink::with_capacity(1024)));
        }
        if self == Mode::Observe {
            eng.attach_observatory(ObserveConfig::default());
            eng.set_telemetry_sink(Box::new(RingSink::with_capacity(1024)));
        }
        eng
    }
}

const MODES: [Mode; 5] = [
    Mode::Reference,
    Mode::Pipeline,
    Mode::Sentinel,
    Mode::Telemetry,
    Mode::Observe,
];

/// One timed measurement: steps simulated, the wall time of the
/// stepping alone (setup excluded), and the packet-storage footprint at
/// the workload's backlog peak (`(backlog, heap_bytes)`; `(0, 0)` when
/// the workload has no meaningful peak to account).
#[derive(Clone, Copy)]
struct Sample {
    steps: u64,
    secs: f64,
    mem: (u64, u64),
}

/// Best (min-time) sample of a batch.
fn best(samples: &[Sample]) -> Sample {
    *samples
        .iter()
        .min_by(|a, b| a.secs.total_cmp(&b.secs))
        .expect("at least one sample")
}

fn replay_instability(
    construction: &InstabilityConstruction,
    run: &InstabilityRun,
    mode: Mode,
) -> Sample {
    let graph = Arc::new(construction.geps.graph.clone());
    let ingress = construction.geps.ingress();
    let unit = Route::single(&graph, ingress).expect("unit route");
    let mut eng = mode.engine(&graph);
    eng.seed_cohort(unit, 0, run.s_star).expect("seeding");
    let sched = run.recorded.clone();
    let t0 = Instant::now();
    sched.run(&mut eng, run.total_steps).expect("replay");
    let secs = t0.elapsed().as_secs_f64();
    // The instability construction's backlog peaks at the end of the
    // run, so the post-replay state is the peak footprint.
    Sample {
        steps: run.total_steps,
        secs,
        mem: (eng.backlog(), eng.packet_heap_bytes()),
    }
}

fn run_sweep(mode: Mode) -> Sample {
    let steps = if smoke() { 2_000 } else { 20_000u64 };
    let graph = Arc::new(topologies::torus(4, 4));
    let routes = random_routes(&graph, 4, 64, 11);
    let mut adv = SaturatingAdversary::new(
        &graph,
        16,
        Ratio::new(1, 5),
        routes,
        InjectionStyle::Burst,
        5,
    );
    let mut eng = mode.engine(&graph);
    let t0 = Instant::now();
    for t in 1..=steps {
        eng.step(adv.injections_for(t)).expect("no validators on");
    }
    Sample {
        steps,
        secs: t0.elapsed().as_secs_f64(),
        mem: (0, 0),
    }
}

fn run_drain(mode: Mode) -> Sample {
    let k = if smoke() { 2_000 } else { 20_000u64 };
    let graph = Arc::new(topologies::line(256));
    let e0 = graph.edge_ids().next().expect("line has edges");
    let unit = Route::single(&graph, e0).expect("unit route");
    let mut eng = mode.engine(&graph);
    eng.seed_cohort(unit, 0, k).expect("seeding");
    // Peak occupancy is the fully seeded state; account it before the
    // drain empties the buffers.
    let mem = (eng.backlog(), eng.packet_heap_bytes());
    let steps = k + 16;
    let t0 = Instant::now();
    eng.run_quiet(steps).expect("quiet drain");
    assert_eq!(eng.backlog(), 0, "drain must complete");
    Sample {
        steps,
        secs: t0.elapsed().as_secs_f64(),
        mem,
    }
}

/// The sharded scaling column: the E18 workload (every-buffer-busy
/// ring) at 1/2/4(/8) shards. Bit-identity is asserted here — a bench
/// run that diverges is a correctness bug, not a perf number — and the
/// host's core count is recorded so the CI gate can tell a genuine
/// scaling regression from a single-core runner that cannot scale.
fn run_sharded() -> E18Report {
    let report = if smoke() {
        e18_smoke(&[2, 4])
    } else {
        e18_full()
    }
    .expect("e18 workload");
    for row in &report.rows {
        assert!(
            row.identical,
            "sharded run at {} shards diverged from sequential",
            row.shards
        );
    }
    report
}

fn sharded_json(report: &E18Report) -> Json {
    let rows: Vec<Json> = report
        .rows
        .iter()
        .map(|r| {
            Json::object()
                .field("shards", u64::from(r.shards))
                .field("steps_per_sec", Json::f(r.steps_per_sec, 0))
                .field("speedup_vs_sequential", Json::f(r.speedup, 3))
                .field("identical", r.identical)
        })
        .collect();
    let scaling_4 = report
        .rows
        .iter()
        .find(|r| r.shards == 4)
        .map_or(0.0, |r| r.speedup);
    Json::object()
        .field("workload", "e18 ring, every buffer busy, quiet steps")
        .field("edges", report.edges as u64)
        .field("steps", report.steps)
        .field("host_cores", report.host_cores as u64)
        .field("scaling_4_vs_1", Json::f(scaling_4, 3))
        .field("rows", rows)
}

fn write_json(results: &[(&str, [Sample; 5])], sharded: &E18Report) {
    let mut seed = Json::object().field(
        "note",
        "monolithic Engine::step measured before the layered refactor; \
         steps/sec, release profile, full-size workloads",
    );
    for (name, rate) in SEED_BASELINE.iter() {
        seed = seed.field(&format!("{name}_steps_per_sec"), Json::f(*rate, 0));
    }
    seed = seed.field("commit", "8270fdf");

    let mut pr3 = Json::object()
        .field("commit", "a4c45e3")
        .field(
            "note",
            "staged pipeline before route interning (Arc routes, 48 B packets); \
             full-size runs are compared against these in DESIGN.md",
        )
        .field(
            "instability_steps_per_sec",
            Json::f(PR3_BASELINE_INSTABILITY_STEPS_PER_SEC, 0),
        );
    for (name, bpp) in PR3_BASELINE_BYTES_PER_PACKET.iter() {
        pr3 = pr3.field(&format!("{name}_bytes_per_packet"), Json::f(*bpp, 1));
    }
    pr3 = pr3.field("packet_struct_bytes", 48u64);

    let workloads: Vec<Json> = results
        .iter()
        .map(|(name, samples)| {
            let [reference, pipeline, sentinel, telemetry, observe] = samples;
            let mut w = Json::object()
                .field("name", *name)
                .field("steps", reference.steps);
            for (mode, s) in MODES.iter().zip(samples.iter()) {
                w = w.field(
                    mode.label(),
                    Json::object()
                        .field("secs", Json::f(s.secs, 6))
                        .field("steps_per_sec", Json::f(s.steps as f64 / s.secs, 0)),
                );
            }
            // Peak packet-storage accounting (deterministic, pipeline
            // run): VecDeque capacity x packet size + route storage.
            let (backlog, heap) = pipeline.mem;
            if backlog > 0 {
                w = w
                    .field("backlog_peak", backlog)
                    .field("packet_heap_bytes", heap)
                    .field("bytes_per_packet", Json::f(heap as f64 / backlog as f64, 1));
            }
            let rr = reference.steps as f64 / reference.secs;
            let rp = pipeline.steps as f64 / pipeline.secs;
            let rs = sentinel.steps as f64 / sentinel.secs;
            let rt = telemetry.steps as f64 / telemetry.secs;
            let ro = observe.steps as f64 / observe.secs;
            w.field("speedup", Json::f(rp / rr, 3))
                .field("sentinel_vs_pipeline", Json::f(rs / rp, 3))
                .field("telemetry_vs_pipeline", Json::f(rt / rp, 3))
                .field("observe_vs_pipeline", Json::f(ro / rp, 3))
        })
        .collect();

    let doc = Json::object()
        .field("generated_by", "cargo bench -p aqt-bench --bench engine")
        .field("smoke", smoke())
        .field("pre_refactor_seed_baseline", seed)
        .field("pr3_pipeline_baseline", pr3)
        .field(
            "packet_struct_bytes",
            std::mem::size_of::<aqt_sim::Packet>(),
        )
        .field("workloads", workloads)
        .field("sharded", sharded_json(sharded));
    // Smoke runs use shrunken workloads, so their numbers are not
    // comparable to the full-size file; they get their own baseline,
    // which is what the CI regression gate diffs against.
    let path = if smoke() {
        concat!(env!("CARGO_MANIFEST_DIR"), "/../../BENCH_engine_smoke.json")
    } else {
        concat!(env!("CARGO_MANIFEST_DIR"), "/../../BENCH_engine.json")
    };
    doc.write(path).expect("write bench json");
    println!("wrote {path}");
}

fn bench(c: &mut Criterion) {
    let samples = if smoke() { 1 } else { 3 };
    // Record the G_ε adversary once; replays drive both pipelines.
    let construction = {
        let mut cfg = InstabilityConfig::new(1, 4);
        cfg.iterations = 1;
        cfg.record_ops = true;
        cfg.validate = false;
        if smoke() {
            cfg.s0_safety = 1.0;
            cfg.m_override = Some(4);
        } else {
            cfg.s0_safety = 2.0;
            cfg.m_margin = 1.5;
        }
        InstabilityConstruction::new(cfg)
    };
    let run = construction.run().expect("legal adversary");

    type Workload<'a> = (&'a str, Box<dyn Fn(Mode) -> Sample + 'a>, u64);
    let mut results: Vec<(&str, [Sample; 5])> = Vec::new();
    let workloads: Vec<Workload> = vec![
        (
            "instability",
            Box::new(|m| replay_instability(&construction, &run, m)),
            run.total_steps,
        ),
        (
            "sweep",
            Box::new(run_sweep),
            if smoke() { 2_000 } else { 20_000 },
        ),
        (
            "drain",
            Box::new(run_drain),
            if smoke() { 2_016 } else { 20_016 },
        ),
    ];

    for (name, workload, steps) in &workloads {
        let mut g = c.benchmark_group(format!("engine/{name}"));
        g.sample_size(samples);
        g.throughput(Throughput::Elements(*steps));
        let mut triple: Vec<Sample> = Vec::new();
        for mode in MODES {
            let mut batch: Vec<Sample> = Vec::new();
            g.bench_with_input(BenchmarkId::from_parameter(mode.label()), &mode, |b, &m| {
                b.iter(|| batch.push(workload(m)));
            });
            triple.push(best(&batch));
        }
        g.finish();
        results.push((
            name,
            [triple[0], triple[1], triple[2], triple[3], triple[4]],
        ));
    }

    for (name, [reference, pipeline, sentinel, telemetry, observe]) in &results {
        let rr = reference.steps as f64 / reference.secs;
        let rp = pipeline.steps as f64 / pipeline.secs;
        let rs = sentinel.steps as f64 / sentinel.secs;
        let rt = telemetry.steps as f64 / telemetry.secs;
        let ro = observe.steps as f64 / observe.secs;
        println!(
            "engine/{name}: {rr:.0} -> {rp:.0} steps/s ({:.2}x); \
             with sentinel {rs:.0} ({:.3} of pipeline); \
             with telemetry {rt:.0} ({:.3} of pipeline); \
             with observatory {ro:.0} ({:.3} of pipeline)",
            rp / rr,
            rs / rp,
            rt / rp,
            ro / rp
        );
    }

    let sharded = run_sharded();
    for r in &sharded.rows {
        println!(
            "engine/sharded ({} edges, {} host cores): {} shards -> {:.0} steps/s \
             ({:.2}x of sequential, identical={})",
            sharded.edges, sharded.host_cores, r.shards, r.steps_per_sec, r.speedup, r.identical
        );
    }
    write_json(&results, &sharded);
}

criterion_group!(benches, bench);
criterion_main!(benches);
