//! **E7 — Corollaries 4.5/4.6**: S-initial-configurations keep
//! stability for rates strictly below the thresholds, with the
//! degraded bound `⌈w*·r*⌉`.

use aqt_analysis::Table;
use aqt_bench::print_table;
use aqt_core::experiments::e7_initial_config;
use criterion::{criterion_group, criterion_main, Criterion};

fn table() {
    let rows = e7_initial_config(3, 12, 200, 60_000).expect("legal");
    let mut t = Table::new(
        "E7 / Corollaries 4.5-4.6 — S-initial-configuration (S=200, r=1/(d+2) < 1/(d+1))",
        &[
            "protocol",
            "topology",
            "bound",
            "max wait",
            "peak queue",
            "verdict",
            "bound ok",
        ],
    );
    let mut violations = 0;
    for r in &rows {
        if !r.bound_respected {
            violations += 1;
        }
        t.row(&[
            r.protocol.clone(),
            r.topology.clone(),
            r.bound.map_or("—".into(), |b| b.to_string()),
            r.max_wait.to_string(),
            r.max_queue.to_string(),
            r.verdict.to_string(),
            r.bound_respected.to_string(),
        ]);
    }
    print_table(&t);
    println!(
        "bound violations: {violations} / {} (paper promises 0)",
        rows.len()
    );
}

fn bench(c: &mut Criterion) {
    table();
    let mut g = c.benchmark_group("e7_initial_config");
    g.sample_size(10);
    g.bench_function("sweep_4k_steps", |b| {
        b.iter(|| e7_initial_config(3, 12, 200, 4_000).expect("legal"));
    });
    g.finish();
}

criterion_group!(benches, bench);
criterion_main!(benches);
