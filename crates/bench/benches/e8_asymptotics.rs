//! **E8 — Appendix**: `n = Θ(log 1/ε)` and `S₀ = Θ((1/ε)·log(1/ε))`.

use aqt_analysis::report::f3;
use aqt_analysis::Table;
use aqt_bench::print_table;
use aqt_core::experiments::e8_asymptotics;
use criterion::{criterion_group, criterion_main, Criterion};

fn table() {
    let rows = e8_asymptotics(&[4, 8, 16, 32, 64, 128, 256, 512, 1024]);
    let mut t = Table::new(
        "E8 / Appendix — parameter asymptotics (paper: n = Θ(log 1/ε), S₀ = Θ((1/ε)log(1/ε)))",
        &[
            "ε",
            "n",
            "S₀",
            "log₂(1/ε)",
            "n / log₂(1/ε)",
            "S₀ / ((1/ε)log₂(1/ε))",
        ],
    );
    for r in &rows {
        t.row(&[
            format!("{:.5}", r.eps),
            r.n.to_string(),
            r.s0.to_string(),
            f3(r.log_inv_eps),
            f3(r.n_ratio),
            f3(r.s0_ratio),
        ]);
    }
    print_table(&t);
    println!("both ratio columns must stay Θ(1) as ε → 0 — the sandwich of (5.5)/(5.9).");
}

fn bench(c: &mut Criterion) {
    table();
    let mut g = c.benchmark_group("e8_asymptotics");
    g.bench_function("param_derivation_sweep", |b| {
        b.iter(|| e8_asymptotics(&[4, 8, 16, 32, 64, 128, 256, 512, 1024]));
    });
    g.finish();
}

criterion_group!(benches, bench);
criterion_main!(benches);
