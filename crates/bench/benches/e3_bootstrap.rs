//! **E3 — Lemma 3.15**: the bootstrap turns `2S` flat-queued packets
//! into `C(S', F_n)` with `S' ≥ S(1+ε)`.

use aqt_analysis::report::f3;
use aqt_analysis::Table;
use aqt_bench::print_table;
use aqt_core::experiments::e3_bootstrap;
use criterion::{criterion_group, criterion_main, Criterion};

fn table() {
    let rows = e3_bootstrap(&[(1, 10), (1, 5), (1, 4), (3, 10)], &[1.0, 2.0, 4.0]).expect("legal");
    let mut t = Table::new(
        "E3 / Lemma 3.15 — bootstrap from a flat queue (paper: S' ≥ S(1+ε))",
        &[
            "ε",
            "S",
            "S' measured",
            "S' theory",
            "amp measured",
            "amp promised",
            "C(S',F) exact",
        ],
    );
    for r in &rows {
        t.row(&[
            format!("{}/{}", r.eps.0, r.eps.1),
            r.s.to_string(),
            r.s_prime_measured.to_string(),
            r.s_prime_theory.to_string(),
            f3(r.amp_measured),
            f3(r.amp_promised),
            r.invariant_exact.to_string(),
        ]);
    }
    print_table(&t);
}

fn bench(c: &mut Criterion) {
    table();
    let mut g = c.benchmark_group("e3_bootstrap");
    g.sample_size(10);
    g.bench_function("bootstrap_eps_1_4", |b| {
        b.iter(|| e3_bootstrap(&[(1, 4)], &[1.0]).expect("legal"));
    });
    g.finish();
}

criterion_group!(benches, bench);
criterion_main!(benches);
