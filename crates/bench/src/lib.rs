//! # aqt-bench
//!
//! Criterion benchmark harness. One bench target per experiment of
//! `EXPERIMENTS.md` (E1–E10) plus an engine-throughput microbenchmark;
//! each bench also *prints* the experiment's paper-vs-measured table,
//! so `cargo bench | tee bench_output.txt` regenerates every number
//! quoted there.

use aqt_analysis::Table;

pub mod report;

/// Render any experiment table to stdout with a separating banner —
/// Criterion interleaves its own output, so make ours easy to grep.
pub fn print_table(table: &Table) {
    println!("\n{}", table.render());
}
