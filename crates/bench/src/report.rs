//! Dependency-free JSON report values for the machine-readable files
//! the benches leave at the repository root (`BENCH_engine.json`,
//! `BENCH_engine_smoke.json`).
//!
//! The workspace vendors no serialization crate, so benches used to
//! hand-concatenate JSON strings — easy to unbalance when a report
//! grows a field. This module is the one shared builder instead: a
//! [`Json`] value tree with insertion-ordered objects, explicit float
//! precision (report files are diffed in review, so digits must be
//! stable), and a pretty renderer whose output `python3 -m json.tool`
//! and the CI gate (`.github/bench_gate.py`) can parse.

use std::fmt::Write as _;
use std::io;
use std::path::Path;

/// A JSON value with insertion-ordered object fields.
#[derive(Debug, Clone)]
pub enum Json {
    /// `true` / `false`.
    Bool(bool),
    /// A non-negative integer (counters, byte totals, step counts).
    U64(u64),
    /// A float rendered with a fixed number of decimal places.
    F64 {
        /// The value.
        value: f64,
        /// Decimal places to render (`0` still renders a plain
        /// integer-looking number, e.g. `"1225252"`).
        precision: usize,
    },
    /// A string (escaped on render).
    Str(String),
    /// An array.
    Array(Vec<Json>),
    /// An object; fields render in insertion order.
    Object(Vec<(String, Json)>),
}

impl Json {
    /// An empty object, ready for [`field`](Self::field) chaining.
    pub fn object() -> Json {
        Json::Object(Vec::new())
    }

    /// A float with explicit rendered precision.
    pub fn f(value: f64, precision: usize) -> Json {
        Json::F64 { value, precision }
    }

    /// Append a field (builder style). Panics if `self` is not an
    /// object — report construction is static, so that is a bench
    /// authoring bug, not a runtime condition.
    pub fn field(mut self, key: &str, value: impl Into<Json>) -> Json {
        match &mut self {
            Json::Object(fields) => fields.push((key.to_string(), value.into())),
            _ => panic!("Json::field on a non-object"),
        }
        self
    }

    /// Render with two-space indentation and a trailing newline.
    pub fn render(&self) -> String {
        let mut out = String::new();
        self.render_into(&mut out, 0);
        out.push('\n');
        out
    }

    /// Render to `path`.
    pub fn write(&self, path: impl AsRef<Path>) -> io::Result<()> {
        std::fs::write(path, self.render())
    }

    fn render_into(&self, out: &mut String, indent: usize) {
        match self {
            Json::Bool(b) => out.push_str(if *b { "true" } else { "false" }),
            Json::U64(v) => write!(out, "{v}").unwrap(),
            Json::F64 { value, precision } => write!(out, "{value:.precision$}").unwrap(),
            Json::Str(s) => {
                out.push('"');
                for c in s.chars() {
                    match c {
                        '"' => out.push_str("\\\""),
                        '\\' => out.push_str("\\\\"),
                        '\n' => out.push_str("\\n"),
                        '\t' => out.push_str("\\t"),
                        '\r' => out.push_str("\\r"),
                        c if (c as u32) < 0x20 => write!(out, "\\u{:04x}", c as u32).unwrap(),
                        c => out.push(c),
                    }
                }
                out.push('"');
            }
            Json::Array(items) => {
                if items.is_empty() {
                    out.push_str("[]");
                    return;
                }
                out.push_str("[\n");
                for (i, item) in items.iter().enumerate() {
                    pad(out, indent + 1);
                    item.render_into(out, indent + 1);
                    out.push_str(if i + 1 < items.len() { ",\n" } else { "\n" });
                }
                pad(out, indent);
                out.push(']');
            }
            Json::Object(fields) => {
                if fields.is_empty() {
                    out.push_str("{}");
                    return;
                }
                out.push_str("{\n");
                for (i, (key, value)) in fields.iter().enumerate() {
                    pad(out, indent + 1);
                    write!(out, "\"{key}\": ").unwrap();
                    value.render_into(out, indent + 1);
                    out.push_str(if i + 1 < fields.len() { ",\n" } else { "\n" });
                }
                pad(out, indent);
                out.push('}');
            }
        }
    }
}

fn pad(out: &mut String, indent: usize) {
    for _ in 0..indent {
        out.push_str("  ");
    }
}

impl From<bool> for Json {
    fn from(v: bool) -> Json {
        Json::Bool(v)
    }
}

impl From<u64> for Json {
    fn from(v: u64) -> Json {
        Json::U64(v)
    }
}

impl From<usize> for Json {
    fn from(v: usize) -> Json {
        Json::U64(v as u64)
    }
}

impl From<&str> for Json {
    fn from(v: &str) -> Json {
        Json::Str(v.to_string())
    }
}

impl From<String> for Json {
    fn from(v: String) -> Json {
        Json::Str(v)
    }
}

impl From<Vec<Json>> for Json {
    fn from(v: Vec<Json>) -> Json {
        Json::Array(v)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn renders_nested_report() {
        let doc = Json::object()
            .field("smoke", false)
            .field("rate", Json::f(123456.789, 0))
            .field("ratio", Json::f(0.98765, 3))
            .field(
                "workloads",
                vec![Json::object()
                    .field("name", "drain")
                    .field("steps", 20_016u64)],
            );
        let s = doc.render();
        assert!(s.contains("\"smoke\": false"));
        assert!(s.contains("\"rate\": 123457"));
        assert!(s.contains("\"ratio\": 0.988"));
        assert!(s.contains("\"name\": \"drain\""));
        assert!(s.ends_with("}\n"));
    }

    #[test]
    fn escapes_strings() {
        let doc = Json::object().field("note", "a \"quoted\"\nline");
        assert!(doc.render().contains("a \\\"quoted\\\"\\nline"));
    }

    #[test]
    fn empty_containers_render_flat() {
        assert_eq!(Json::object().render(), "{}\n");
        assert_eq!(Json::from(Vec::<Json>::new()).render(), "[]\n");
    }
}
