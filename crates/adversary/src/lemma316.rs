//! The stitch adversary of **Lemma 3.16**.
//!
//! Given `S` packets with unit remaining routes stored at the buffer of
//! `a_0` at time `τ` (a queue of *old* packets at the end of the daisy
//! chain), this adversary produces, by time `≈ τ + S + rS + r²S`, a
//! queue of `≈ r³S` **fresh** packets at the tail of `a_2` — packets
//! injected well after everything else has drained, with unit routes.
//! In Theorem 3.17, `(a_0, a_1, a_2)` is the three-edge path
//! `(egress(F(M)), e_0, ingress(F(1)))`, so the stitch carries the
//! blown-up queue back to the start of the chain, losing only the
//! factor `r³` that the chain's `(1+ε)^{M-1}` growth more than repays.
//!
//! Stages (paper numbering):
//!
//! 1. `[τ+1, τ+S]`: `rS` packets with route `a_0, a_1, a_2`, queued
//!    behind the old packets at `a_0`;
//! 2. `[τ+S+1, τ+S+rS]`: `r²S` packets at the tail of `a_2` (they mix
//!    with stage 1's packets arriving there);
//! 3. immediately after: `r³S` packets at the tail of `a_2`, queued
//!    behind the stage 1+2 remnant — these are the fresh survivors.
//!
//! Stages 2 and 3 are realized as one continuous rate-r floor stream on
//! `a_2` whose cohort tag flips at the index boundary, so the composed
//! injection pattern on `a_2` is trivially rate-legal.

use aqt_graph::{EdgeId, Graph, Route, RouteError};
use aqt_sim::{Ratio, Schedule, Time};

/// Cohort tags assigned by [`build`].
#[derive(Debug, Clone, Copy)]
pub struct StitchTags {
    /// Stage 1: the three-edge "carrier" packets.
    pub carrier: u32,
    /// Stage 2: the mixers injected at `a_2`.
    pub mixer: u32,
    /// Stage 3: the fresh packets that form the next iteration's queue.
    pub fresh: u32,
}

impl StitchTags {
    /// Derive the cohort tags from a base value.
    pub fn from_base(base: u32) -> Self {
        StitchTags {
            carrier: base,
            mixer: base + 1,
            fresh: base + 2,
        }
    }
}

/// The built stitch adversary.
#[derive(Debug)]
pub struct Stitch {
    /// The injection plan.
    pub schedule: Schedule,
    /// Predicted completion time `≈ τ + S + rS + r²S` (the engine
    /// should settle a few extra steps and then measure).
    pub finish: Time,
    /// Number of fresh packets scheduled (`⌊r·⌊r·⌊r·S⌋⌋⌋`).
    pub fresh_count: u64,
    /// Cohort tags used.
    pub tags: StitchTags,
}

/// Build the Lemma 3.16 adversary over the consecutive edges
/// `a0 → a1 → a2`, given `s` unit-route packets stored at `a0` at time
/// `tau`.
#[allow(clippy::too_many_arguments)] // mirrors the lemma's statement
pub fn build(
    graph: &Graph,
    a0: EdgeId,
    a1: EdgeId,
    a2: EdgeId,
    rate: Ratio,
    s: u64,
    tau: Time,
    tag_base: u32,
) -> Result<Stitch, RouteError> {
    let tags = StitchTags::from_base(tag_base);
    let mut schedule = Schedule::new();

    // Stage 1: rS carriers over the whole path, blocked behind the old
    // queue at a0.
    let carrier_route = Route::new(graph, vec![a0, a1, a2])?;
    let k1 = schedule.inject_stream(tau + 1, s, rate, &carrier_route, tags.carrier);

    // Stages 2+3: one continuous stream at a2; first k2 = ⌊r·k1⌋ are
    // mixers, the following k3 = ⌊r·k2⌋ are fresh.
    let k2 = rate.floor_mul(k1);
    let k3 = rate.floor_mul(k2);
    let single = Route::single(graph, a2)?;
    let total = k2 + k3;
    let mut injected = 0u64;
    let mut k = 0u64;
    let mut last = tau + s;
    while injected < total {
        k += 1;
        let want = rate.floor_mul(k);
        if want > injected {
            let tag = if injected < k2 {
                tags.mixer
            } else {
                tags.fresh
            };
            last = tau + s + k;
            schedule.inject_at(last, single.clone(), tag);
            injected += 1;
        }
    }

    Ok(Stitch {
        schedule,
        finish: last,
        fresh_count: k3,
        tags,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use aqt_graph::topologies;

    #[test]
    fn counts_match_r_powers() {
        let g = topologies::line(3);
        let e: Vec<EdgeId> = g.edge_ids().collect();
        let r = Ratio::new(3, 5);
        let st = build(&g, e[0], e[1], e[2], r, 100, 0, 0).unwrap();
        // k1 = 60, k2 = 36, k3 = 21
        assert_eq!(st.fresh_count, 21);
        assert_eq!(st.schedule.injection_count() as u64, 60 + 36 + 21);
    }

    #[test]
    fn stream_times_are_ordered() {
        let g = topologies::line(3);
        let e: Vec<EdgeId> = g.edge_ids().collect();
        let r = Ratio::new(3, 4);
        let st = build(&g, e[0], e[1], e[2], r, 40, 10, 0).unwrap();
        // carriers end by tau + s; a2 stream starts after
        assert!(st.finish > 10 + 40);
        assert!(st.schedule.horizon() == st.finish);
    }

    #[test]
    fn zero_fresh_for_tiny_queues() {
        let g = topologies::line(3);
        let e: Vec<EdgeId> = g.edge_ids().collect();
        let st = build(&g, e[0], e[1], e[2], Ratio::new(3, 5), 2, 0, 0).unwrap();
        // k1 = 1, k2 = 0, k3 = 0
        assert_eq!(st.fresh_count, 0);
    }
}
