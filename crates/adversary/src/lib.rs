//! # aqt-adversary
//!
//! Adversary constructions for adversarial queuing experiments:
//!
//! * [`params`] — the parameter algebra of the paper's Section 3:
//!   `ε → (r, n, S₀, R_i, t_i, S′, X, M)` with the exact identities the
//!   proofs rely on (equation (3.1), Claim 3.7, the appendix
//!   asymptotics).
//! * [`lemma36`], [`lemma315`], [`lemma316`] — schedule builders for
//!   the three sub-adversaries of the instability proof: the
//!   gadget-step amplifier, the bootstrap, and the stitch.
//! * [`stochastic`] — saturating `(w,r)` adversaries for the stability
//!   side (Section 4): random-route generators that inject as much as
//!   Definition 2.1 permits.
//! * [`periodic`] — deterministic multi-stream rate adversaries for
//!   threshold mapping.
//! * [`adaptive`] — a feedback adversary that aims its windowed budget
//!   at the currently most-loaded buffers.
//! * [`baselines`] — prior-art comparison adversaries: a
//!   pumping-adversary family on the baseball graph (the network of
//!   the earlier FIFO instability results \[4, 11, 15\]) and starvation
//!   workloads for NTG/LIFO on trap networks.
//!
//! Every builder produces schedules that are replayed through the
//! engine's exact validators — legality is *checked*, never assumed.

pub mod adaptive;
pub mod baselines;
pub mod lemma315;
pub mod lemma316;
pub mod lemma36;
pub mod params;
pub mod periodic;
pub mod stochastic;

pub use params::GadgetParams;
