//! Deterministic periodic adversaries.
//!
//! A [`PeriodicAdversary`] cycles round-robin through a fixed route
//! set, each route carrying its own exact rational rate (floor
//! pattern). Unlike the stochastic saturating adversary it is fully
//! deterministic and analyzable — the workhorse for threshold-mapping
//! experiments (e.g. E13: locating FIFO's empirical stability boundary
//! around `1/d`).

use aqt_graph::Route;
use aqt_sim::engine::Injection;
use aqt_sim::rate::AdversaryModelSpec;
use aqt_sim::source::TrafficSource;
use aqt_sim::{Ratio, Time};

/// One periodic stream: a route injected at an exact rational rate.
#[derive(Debug, Clone)]
pub struct Stream {
    /// The route every packet of this stream follows.
    pub route: Route,
    /// The stream's injection rate.
    pub rate: Ratio,
    /// Cohort tag for the stream's packets.
    pub tag: u32,
    /// Phase offset into the floor pattern. Streams sharing an edge
    /// with aligned phases inject in the *same* steps, which can break
    /// the composed rate constraint even when the rate sums fit —
    /// stagger their phases (e.g. `i·period/k` for `k` equal streams).
    pub phase: u64,
}

impl Stream {
    /// A stream with phase 0.
    pub fn new(route: Route, rate: Ratio, tag: u32) -> Self {
        Stream {
            route,
            rate,
            tag,
            phase: 0,
        }
    }
}

/// A deterministic multi-stream adversary: each stream injects with
/// the floor pattern `⌊k·r⌋`, all aligned to the same clock.
///
/// **Legality note.** Per-edge legality is the *sum of stream rates
/// touching that edge*; the constructor checks that this sum is at
/// most the declared `rate_budget` for every edge and refuses
/// otherwise, so a constructed `PeriodicAdversary` is always a valid
/// rate-`rate_budget` adversary (the engine can re-validate).
#[derive(Debug, Clone)]
pub struct PeriodicAdversary {
    streams: Vec<Stream>,
    injected: Vec<u64>,
    k: u64,
}

impl PeriodicAdversary {
    /// Build, checking that per-edge rate sums stay within `budget`.
    pub fn new(
        graph: &aqt_graph::Graph,
        streams: Vec<Stream>,
        budget: Ratio,
    ) -> Result<Self, String> {
        let mut per_edge = vec![Ratio::ZERO; graph.edge_count()];
        for s in &streams {
            for &e in s.route.edges() {
                per_edge[e.index()] = per_edge[e.index()].add(s.rate);
                if per_edge[e.index()] > budget {
                    return Err(format!(
                        "edge {} oversubscribed: stream rates sum past the budget {}",
                        graph.edge_name(e),
                        budget
                    ));
                }
            }
        }
        let n = streams.len();
        Ok(PeriodicAdversary {
            streams,
            injected: vec![0; n],
            k: 0,
        })
    }

    /// Total packets injected so far.
    pub fn total_injected(&self) -> u64 {
        self.injected.iter().sum()
    }

    /// Build against a composed constraint model: the per-edge stream
    /// rate sums are checked against the model's tightest long-run
    /// rate ([`AdversaryModelSpec::long_run_rate`]).
    ///
    /// This is a *necessary* condition only — a member's burst budget
    /// (a `⌊wr⌋` window, a `σ` allowance) can still reject the exact
    /// floor-pattern alignment, so exact legality remains the engine's
    /// model validation. An empty model accepts any streams.
    pub fn with_model(
        graph: &aqt_graph::Graph,
        streams: Vec<Stream>,
        spec: &AdversaryModelSpec,
    ) -> Result<Self, String> {
        let budget = spec.long_run_rate().unwrap_or(Ratio::ONE);
        Self::new(graph, streams, budget)
    }
}

impl TrafficSource for PeriodicAdversary {
    fn injections_for(&mut self, _t: Time) -> Vec<Injection> {
        self.k += 1;
        let mut out = Vec::new();
        for (i, s) in self.streams.iter().enumerate() {
            // floor pattern shifted by the stream's phase; the phase
            // baseline is subtracted so counting starts at zero.
            let base = s.rate.floor_mul(s.phase);
            let want = s.rate.floor_mul(self.k + s.phase) - base;
            if want > self.injected[i] {
                self.injected[i] = want;
                out.push(Injection::new(s.route.clone(), s.tag));
            }
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use aqt_graph::topologies;
    use aqt_protocols::Fifo;
    use aqt_sim::{run_with_source, Engine, EngineConfig};
    use std::sync::Arc;

    #[test]
    fn floor_pattern_counts() {
        let g = topologies::ring(4);
        let e: Vec<_> = g.edge_ids().collect();
        let r1 = Route::new(&g, vec![e[0], e[1]]).unwrap();
        let r2 = Route::new(&g, vec![e[2]]).unwrap();
        let mut adv = PeriodicAdversary::new(
            &g,
            vec![
                Stream::new(r1, Ratio::new(1, 3), 1),
                Stream::new(r2, Ratio::new(1, 2), 2),
            ],
            Ratio::new(1, 2),
        )
        .unwrap();
        let mut count = 0;
        for t in 1..=60 {
            count += adv.injections_for(t).len();
        }
        assert_eq!(count as u64, 20 + 30);
        assert_eq!(adv.total_injected(), 50);
    }

    #[test]
    fn oversubscription_rejected() {
        let g = topologies::line(2);
        let e: Vec<_> = g.edge_ids().collect();
        let shared = Route::new(&g, vec![e[0]]).unwrap();
        let res = PeriodicAdversary::new(
            &g,
            vec![
                Stream::new(shared.clone(), Ratio::new(1, 3), 0),
                Stream::new(shared, Ratio::new(1, 3), 1),
            ],
            Ratio::new(1, 2),
        );
        assert!(res.is_err());
    }

    #[test]
    fn is_rate_legal_when_run() {
        // Two streams summing exactly to the budget on a shared edge
        // must pass the engine's exact validator.
        let g = Arc::new(topologies::line(3));
        let e: Vec<_> = g.edge_ids().collect();
        let long = Route::new(&g, vec![e[0], e[1], e[2]]).unwrap();
        let short = Route::new(&g, vec![e[1]]).unwrap();
        let mut adv = PeriodicAdversary::new(
            &g,
            vec![
                Stream::new(long, Ratio::new(1, 4), 0),
                Stream {
                    phase: 2, // stagger: shares e[1] with the long stream
                    ..Stream::new(short, Ratio::new(1, 4), 1)
                },
            ],
            Ratio::new(1, 2),
        )
        .unwrap();
        let mut eng = Engine::new(
            Arc::clone(&g),
            Fifo,
            EngineConfig {
                validate: Some(AdversaryModelSpec::rate(Ratio::new(1, 2))),
                ..Default::default()
            },
        );
        run_with_source(&mut eng, &mut adv, 500).expect("periodic adversary stays legal");
        assert!(eng.metrics().injected() > 200);
    }

    #[test]
    fn with_model_uses_tightest_long_run_rate() {
        let g = topologies::line(2);
        let e: Vec<_> = g.edge_ids().collect();
        let shared = Route::new(&g, vec![e[0]]).unwrap();
        // rate(1/2) ∘ burst_local(rho=1/4, ...): the budget is min = 1/4,
        // so two 1/8-streams fit but two 1/5-streams do not.
        let spec =
            AdversaryModelSpec::rate(Ratio::new(1, 2)).and(aqt_sim::ConstraintSpec::BurstLocal {
                rho: Ratio::new(1, 4),
                sigma: 2,
                locality: 4,
            });
        let fits = PeriodicAdversary::with_model(
            &g,
            vec![
                Stream::new(shared.clone(), Ratio::new(1, 8), 0),
                Stream::new(shared.clone(), Ratio::new(1, 8), 1),
            ],
            &spec,
        );
        assert!(fits.is_ok());
        let too_much = PeriodicAdversary::with_model(
            &g,
            vec![
                Stream::new(shared.clone(), Ratio::new(1, 5), 0),
                Stream::new(shared, Ratio::new(1, 5), 1),
            ],
            &spec,
        );
        assert!(too_much.is_err());
    }
}
