//! Prior-art baseline: a pumping adversary on the baseball graph.
//!
//! The FIFO instability results the paper improves on — Andrews et al.
//! \[4\] (`r > 0.85`), Díaz et al. \[11\] (`0.8357`), Koukopoulos et al.
//! \[15\] (`0.749`) — all operate on the four-node "baseball" graph with
//! doubled connector edges, alternating between its two halves: a
//! queue of packets requiring only `e_0` is *pumped* into a (hopefully
//! larger) queue requiring only `e_1`, and so on.
//!
//! This module implements a faithful member of that family — a
//! three-stage FIFO pumping round (carriers blocked behind the old
//! queue; thinning singles that delay the carriers on the connector;
//! direct singles accumulating at the target edge) — and measures its
//! per-round growth at any rate. It is a *reconstruction*: the exact
//! stage proportions of \[4\]/\[11\]/\[15\] differ (that is where their
//! successive threshold improvements came from), but the mechanism and
//! the network are theirs, and its measured divergence threshold lands
//! far above the paper's `1/2 + ε` construction — which is precisely
//! the comparison of experiment E9.
//!
//! The driver is adaptive (stage lengths depend on measured queues), so
//! it runs the engine directly instead of compiling a `Schedule`;
//! rate legality is still enforced by the engine's exact validator.

use std::sync::Arc;

use aqt_graph::topologies::{baseball, Baseball};
use aqt_graph::Route;
use aqt_protocols::Fifo;
use aqt_sim::engine::Injection;
use aqt_sim::{Engine, EngineConfig, EngineError, Ratio};

/// Per-round measurements of the pump.
#[derive(Debug, Clone)]
pub struct PumpReport {
    /// Queue of single-edge packets at the active edge at the start of
    /// each round (index 0 = seed).
    pub round_queues: Vec<u64>,
    /// Geometric-mean per-round growth factor.
    pub growth: f64,
    /// The rate used.
    pub rate: Ratio,
}

impl PumpReport {
    /// Did the backlog grow overall?
    pub fn diverged(&self) -> bool {
        self.growth > 1.0
    }
}

/// Floor-pattern rate-r injection counter for one stream.
struct Stream {
    rate: Ratio,
    k: u64,
    injected: u64,
}

impl Stream {
    fn new(rate: Ratio) -> Self {
        Stream {
            rate,
            k: 0,
            injected: 0,
        }
    }

    /// Advance one step; `true` if this step injects.
    fn tick(&mut self) -> bool {
        self.k += 1;
        let want = self.rate.floor_mul(self.k);
        if want > self.injected {
            self.injected += 1;
            true
        } else {
            false
        }
    }
}

/// Run the baseball pump for `rounds` rounds starting from `s0` seed
/// packets, at injection rate `rate`. Uses FIFO with exact rate
/// validation. Returns per-round queue sizes.
pub fn run_baseball_pump(rate: Ratio, s0: u64, rounds: usize) -> Result<PumpReport, EngineError> {
    let (graph, h) = baseball();
    let graph = Arc::new(graph);
    let mut eng = Engine::new(
        Arc::clone(&graph),
        Fifo,
        EngineConfig {
            validate: Some(aqt_sim::AdversaryModelSpec::rate(rate)),
            ..Default::default()
        },
    );

    // Seed: s0 packets requiring only e0.
    let seed_route = Route::single(&graph, h.e0)?;
    for _ in 0..s0 {
        eng.seed(seed_route.clone(), 0)?;
    }

    let mut queues = vec![s0];
    let mut active = 0u8; // 0: pumping e0 -> e1, 1: pumping e1 -> e0
    let mut s = s0;
    for round in 0..rounds {
        s = pump_round(&mut eng, &graph, &h, rate, s, active, round as u32)?;
        queues.push(s);
        if s < 4 {
            break; // queue collapsed; further rounds are noise
        }
        active ^= 1;
    }

    let growth = if queues.len() >= 2 && queues[0] > 0 {
        let last = *queues.last().expect("nonempty") as f64;
        (last / queues[0] as f64).powf(1.0 / (queues.len() - 1) as f64)
    } else {
        0.0
    };
    Ok(PumpReport {
        round_queues: queues,
        growth,
        rate,
    })
}

/// One pumping round; returns the queue of single-edge packets at the
/// target edge when the round completes.
fn pump_round(
    eng: &mut Engine<Fifo>,
    graph: &Arc<aqt_graph::Graph>,
    h: &Baseball,
    rate: Ratio,
    s: u64,
    active: u8,
    round: u32,
) -> Result<u64, EngineError> {
    let (e_cur, f_mid, e_next) = if active == 0 {
        (h.e0, h.f0, h.e1)
    } else {
        (h.e1, h.f1, h.e0)
    };
    let carrier_route = Route::new(graph.as_ref(), vec![e_cur, f_mid, e_next])?;
    let thin_route = Route::single(graph.as_ref(), f_mid)?;
    let direct_route = Route::single(graph.as_ref(), e_next)?;
    let tag = round * 4;

    // Stage A (s steps): carriers at rate r, blocked behind the old
    // queue at e_cur.
    let mut carriers = Stream::new(rate);
    for _ in 0..s {
        let inj = if carriers.tick() {
            vec![Injection::new(carrier_route.clone(), tag)]
        } else {
            vec![]
        };
        eng.step(inj)?;
    }
    let k1 = carriers.injected;

    // Stage B (k1 steps): carriers cross e_cur one per step; thinning
    // singles on f_mid slow them down; direct singles accumulate at
    // e_next.
    let mut thin = Stream::new(rate);
    let mut direct = Stream::new(rate);
    for _ in 0..k1 {
        let mut inj = Vec::with_capacity(2);
        if thin.tick() {
            inj.push(Injection::new(thin_route.clone(), tag + 1));
        }
        if direct.tick() {
            inj.push(Injection::new(direct_route.clone(), tag + 2));
        }
        eng.step(inj)?;
    }

    // Stage C: keep injecting direct singles while the carrier remnant
    // drains through f_mid (cap at 4s steps to guarantee termination).
    let mut extra = 0u64;
    while eng.queue_len(e_cur) + eng.queue_len(f_mid) > 0 && extra < 4 * s {
        let inj = if direct.tick() {
            vec![Injection::new(direct_route.clone(), tag + 2)]
        } else {
            vec![]
        };
        eng.step(inj)?;
        extra += 1;
    }

    // The next round's queue: packets at e_next whose remaining route
    // is exactly [e_next].
    let q = eng
        .queue_iter(e_next)
        .filter(|p| p.remaining() == 1)
        .count() as u64;
    Ok(q)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn pump_is_rate_legal_and_runs() {
        let rep = run_baseball_pump(Ratio::new(9, 10), 200, 2).expect("legal adversary");
        assert_eq!(rep.round_queues[0], 200);
        assert!(rep.round_queues.len() >= 2);
    }

    #[test]
    fn pump_decays_at_low_rate() {
        // At r = 0.55 the baseball pump family cannot sustain growth
        // (prior art needed r ≈ 0.75–0.85) — the queue must shrink.
        let rep = run_baseball_pump(Ratio::new(11, 20), 300, 3).expect("legal adversary");
        assert!(
            rep.round_queues.last().copied().unwrap_or(0) < 300,
            "baseball pump should decay at r=0.55: {:?}",
            rep.round_queues
        );
    }

    #[test]
    fn growth_is_geometric_mean() {
        let rep = PumpReport {
            round_queues: vec![100, 50, 25],
            growth: 0.0,
            rate: Ratio::new(1, 2),
        };
        // (25/100)^(1/2) = 0.5 — recompute as the driver would
        let g = (25f64 / 100f64).powf(0.5);
        assert!((g - 0.5).abs() < 1e-12);
        assert!(!PumpReport { growth: g, ..rep }.diverged());
    }
}
