//! The bootstrap adversary of **Lemma 3.15**.
//!
//! Starting point: `2S` packets stored at the ingress edge `a` of a
//! gadget `F_n`, all with remaining route of length 1 (just `a`) — this
//! is exactly what the stitch of Lemma 3.16 leaves behind (and what
//! Theorem 3.17's initial configuration provides). The adversary
//! establishes `C(S', F_n)` at time `τ + 2S + n` for
//! `S' = 2S(1 − R_n) ≥ S(1+ε)`:
//!
//! 1. extend the routes of the stored packets from `a` to
//!    `a, e_1, …, e_n, a'`;
//! 2. inject thinning singles on each `e_i` at rate `r` during
//!    `[τ+i, τ+i+t_i]` (same thinning as Lemma 3.6);
//! 3. in the first `(S'+n)/r` steps of `[τ+1, τ+2S]` inject `S' + n`
//!    packets at rate `r`: the first `n` with the single-edge route
//!    `a`, the rest with route `a, f_1, …, f_n, a'`.
//!
//! The `n` short packets pad the drain of `a` so that exactly `S'` long
//! packets remain queued at `a` at time `τ + 2S + n` (see the proof).

use aqt_graph::{GadgetHandles, Graph, Route, RouteError};
use aqt_sim::{Schedule, Time};

use crate::params::GadgetParams;

/// Cohort tags assigned by [`build`].
#[derive(Debug, Clone, Copy)]
pub struct BootstrapTags {
    /// Part (2): thinning singles on the `e`-path.
    pub short: u32,
    /// Part (3), first `n` packets: padding singles on `a`.
    pub pad: u32,
    /// Part (3), remainder: the long packets `a, f-path, a'`.
    pub long: u32,
}

impl BootstrapTags {
    /// Derive the cohort tags from a base value.
    pub fn from_base(base: u32) -> Self {
        BootstrapTags {
            short: base,
            pad: base + 1,
            long: base + 2,
        }
    }
}

/// The built bootstrap adversary.
#[derive(Debug)]
pub struct Bootstrap {
    /// The injection/extension plan.
    pub schedule: Schedule,
    /// Time at which `C(S', F_n)` is predicted to hold: `τ + 2S + n`.
    pub finish: Time,
    /// The theoretical amplified queue `S' = ⌊2S(1 − R_n)⌋`.
    pub s_prime: u64,
    /// Cohort tags used.
    pub tags: BootstrapTags,
}

/// Build the Lemma 3.15 adversary for gadget `g`, given `2s` packets
/// with unit remaining routes stored at `g.ingress` at time `tau`.
///
/// `s` is the lemma's `S` (half the stored queue). The caller passes
/// `s = stored / 2`; an odd stored count simply leaves one packet
/// unused by the analysis.
pub fn build(
    graph: &Graph,
    g: &GadgetHandles,
    params: &GadgetParams,
    s: u64,
    tau: Time,
    tag_base: u32,
) -> Result<Bootstrap, RouteError> {
    assert_eq!(g.n(), params.n, "gadget size must match parameters");
    assert!(s >= params.s0, "need S >= S0 = {} (got {s})", params.s0);

    let n = params.n;
    let rate = params.rate;
    let tags = BootstrapTags::from_base(tag_base);
    let mut schedule = Schedule::new();

    // Part (1): extend the stored packets' routes onto the e-path.
    let mut suffix = g.e_path.clone();
    suffix.push(g.egress);
    schedule.extend_ending_at(tau + 1, vec![g.ingress], suffix, g.ingress);

    // Part (2): thinning singles.
    for i in 1..=n {
        let t_i = params.t_i(s, i);
        let route = Route::single(graph, g.e_path[i - 1])?;
        schedule.inject_stream(tau + i as u64, t_i + 1, rate, &route, tags.short);
    }

    // Part (3): S' + n packets at rate r; first n pad `a`, the rest go
    // the long way a, f-path, a'.
    let s_prime = params.s_prime(s);
    let total = s_prime + n as u64;
    let pad_route = Route::single(graph, g.ingress)?;
    let mut long_edges = Vec::with_capacity(n + 2);
    long_edges.push(g.ingress);
    long_edges.extend_from_slice(&g.f_path);
    long_edges.push(g.egress);
    let long_route = Route::new(graph, long_edges)?;

    // Manual floor-pattern stream stopping at `total` packets; the
    // parameter constraints guarantee (S'+n)/r <= 2S so it fits.
    let mut injected = 0u64;
    let mut k = 0u64;
    while injected < total {
        k += 1;
        let want = rate.floor_mul(k);
        if want > injected {
            let (route, tag) = if injected < n as u64 {
                (pad_route.clone(), tags.pad)
            } else {
                (long_route.clone(), tags.long)
            };
            schedule.inject_at(tau + k, route, tag);
            injected += 1;
        }
    }
    debug_assert!(
        k <= 2 * s,
        "part (3) must fit in [τ+1, τ+2S]: needed {k} steps for {total} packets"
    );

    Ok(Bootstrap {
        schedule,
        finish: tau + params.step_horizon(s),
        s_prime,
        tags,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use aqt_graph::FnGadget;

    #[test]
    fn builds_with_expected_counts() {
        let p = GadgetParams::new(1, 4);
        let g = FnGadget::new(p.n);
        let s = p.s0 + 5;
        let b = build(&g.graph, &g.handles, &p, s, 0, 0).expect("valid build");
        let expected: u64 = (1..=p.n)
            .map(|i| p.rate.floor_mul(p.t_i(s, i) + 1))
            .sum::<u64>()
            + p.s_prime(s)
            + p.n as u64;
        assert_eq!(b.schedule.injection_count() as u64, expected);
        assert_eq!(b.finish, 2 * s + p.n as u64);
    }

    #[test]
    fn part3_fits_within_horizon() {
        let p = GadgetParams::new(1, 10);
        let g = FnGadget::new(p.n);
        let s = p.s0;
        let b = build(&g.graph, &g.handles, &p, s, 7, 0).expect("valid build");
        assert!(b.schedule.horizon() <= b.finish);
    }

    #[test]
    #[should_panic(expected = "S >= S0")]
    fn rejects_small_s() {
        let p = GadgetParams::new(1, 4);
        let g = FnGadget::new(p.n);
        let _ = build(&g.graph, &g.handles, &p, p.s0 / 2, 0, 0);
    }
}
