//! Saturating adversaries for the stability experiments (Section 4).
//!
//! Theorems 4.1/4.3 are universally quantified over `(w,r)` adversaries,
//! so the experiments stress them with adversaries that inject *as much
//! as the constraint model permits*: a pool of candidate routes (random
//! simple paths of length ≤ `d`, or caller-supplied), injected greedily
//! subject to the model's per-edge headroom — including the
//! front-loaded bursts of `⌊wr⌋` packets in a single step that the
//! windowed adversary is allowed and a plain rate-r adversary is not.
//!
//! [`SaturatingAdversary::with_model`] saturates *any* composed
//! [`AdversaryModel`] — `(w,r)` windows, `(ρ,σ,L)` locally bursty
//! classes, buffer bounds, or their conjunctions — because the greedy
//! loop only consults [`Constraint::headroom`]. Legality is checked,
//! not assumed: the tracker records every injection it emits, and the
//! per-constraint tests re-validate the stream with an independent
//! model.

use aqt_graph::{EdgeId, Graph, NodeId, Route};
use aqt_sim::engine::Injection;
use aqt_sim::rate::{AdversaryModel, AdversaryModelSpec, Constraint};
use aqt_sim::{Ratio, Time};
use rand::rngs::StdRng;
use rand::seq::SliceRandom;
use rand::{Rng, SeedableRng};

/// Generate `count` random simple routes of length exactly `d` where
/// possible (shorter if a walk dead-ends), via self-avoiding random
/// walks. Deterministic for a fixed seed.
pub fn random_routes(graph: &Graph, d: usize, count: usize, seed: u64) -> Vec<Route> {
    assert!(d >= 1);
    let mut rng = StdRng::seed_from_u64(seed);
    let mut routes = Vec::with_capacity(count);
    let nodes: Vec<NodeId> = graph.nodes().collect();
    let mut guard = 0usize;
    while routes.len() < count {
        guard += 1;
        assert!(
            guard < count * 1000,
            "could not generate {count} routes of length <= {d}; graph too constrained"
        );
        let start = nodes[rng.gen_range(0..nodes.len())];
        let mut visited = vec![start];
        let mut edges: Vec<EdgeId> = Vec::with_capacity(d);
        let mut cur = start;
        for _ in 0..d {
            let outs: Vec<EdgeId> = graph
                .out_edges(cur)
                .iter()
                .copied()
                .filter(|&e| !visited.contains(&graph.dst(e)))
                .collect();
            let Some(&e) = outs.as_slice().choose(&mut rng) else {
                break;
            };
            cur = graph.dst(e);
            visited.push(cur);
            edges.push(e);
        }
        if edges.is_empty() {
            continue;
        }
        routes.push(Route::new(graph, edges).expect("self-avoiding walk is a simple path"));
    }
    routes
}

/// How the saturating adversary schedules within each window.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum InjectionStyle {
    /// Spread injections across the window (rate-like).
    Spread,
    /// Inject the whole per-window budget as early as possible —
    /// maximally bursty, the worst case the `⌈wr⌉` bound must absorb.
    Burst,
}

/// An adversary that injects as many packets from its route pool as
/// its constraint model allows.
pub struct SaturatingAdversary {
    routes: Vec<Route>,
    tracker: AdversaryModel,
    style: InjectionStyle,
    rng: StdRng,
    /// Max injection attempts per step (bounds per-step work).
    attempts_per_step: usize,
}

impl SaturatingAdversary {
    /// Create a saturating `(w, r)` adversary over the given route
    /// pool — shorthand for [`SaturatingAdversary::with_model`] with a
    /// single `Window` member.
    pub fn new(
        graph: &Graph,
        window: u64,
        rate: Ratio,
        routes: Vec<Route>,
        style: InjectionStyle,
        seed: u64,
    ) -> Self {
        Self::with_model(
            graph,
            &AdversaryModelSpec::window(window, rate),
            routes,
            style,
            seed,
        )
    }

    /// Create a saturating adversary for an arbitrary composed
    /// constraint model: each step it injects greedily while every
    /// member reports headroom on every route edge.
    pub fn with_model(
        graph: &Graph,
        spec: &AdversaryModelSpec,
        routes: Vec<Route>,
        style: InjectionStyle,
        seed: u64,
    ) -> Self {
        assert!(!routes.is_empty(), "need at least one candidate route");
        let attempts_per_step = (routes.len() * 4).clamp(16, 512);
        SaturatingAdversary {
            routes,
            tracker: spec.build(graph.edge_count()),
            style,
            rng: StdRng::seed_from_u64(seed),
            attempts_per_step,
        }
    }

    /// The parameter `d` of this adversary's route pool: the longest
    /// candidate route.
    pub fn d(&self) -> usize {
        self.routes.iter().map(Route::len).max().unwrap_or(0)
    }

    /// The constraint model this adversary saturates.
    pub fn model_spec(&self) -> &AdversaryModelSpec {
        self.tracker.spec()
    }

    /// Produce the injections for step `t` (monotone increasing calls).
    pub fn injections_for(&mut self, t: Time) -> Vec<Injection> {
        if self.style == InjectionStyle::Spread {
            // In spread mode only act when t is "due": inject at most
            // one candidate per step per route attempt round.
            // (Headroom still rules.)
        }
        let mut out = Vec::new();
        for _ in 0..self.attempts_per_step {
            let idx = self.rng.gen_range(0..self.routes.len());
            let route = &self.routes[idx];
            let fits = route
                .edges()
                .iter()
                .all(|&e| self.tracker.headroom(e, t) >= 1);
            if fits {
                for &e in route.edges() {
                    self.tracker
                        .observe(e, t)
                        .expect("headroom was checked; observe cannot fail");
                }
                out.push(Injection::new(route.clone(), idx as u32));
                if self.style == InjectionStyle::Spread && !out.is_empty() {
                    break;
                }
            } else if self.style == InjectionStyle::Burst {
                continue;
            }
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use aqt_graph::topologies;

    #[test]
    fn random_routes_are_simple_and_bounded() {
        let g = topologies::grid(4, 4);
        let routes = random_routes(&g, 5, 50, 42);
        assert_eq!(routes.len(), 50);
        for r in &routes {
            assert!(!r.edges().is_empty() && r.len() <= 5);
            Route::validate(&g, r.edges()).expect("simple");
        }
    }

    #[test]
    fn random_routes_deterministic() {
        let g = topologies::ring(6);
        let a = random_routes(&g, 3, 20, 7);
        let b = random_routes(&g, 3, 20, 7);
        assert_eq!(a, b);
    }

    #[test]
    fn burst_adversary_respects_budget() {
        let g = topologies::ring(5);
        let routes = random_routes(&g, 3, 10, 1);
        let w = 12u64;
        let r = Ratio::new(1, 4); // budget 3 per window per edge
        let mut adv = SaturatingAdversary::new(&g, w, r, routes, InjectionStyle::Burst, 2);
        // independently verify with a second validator
        let mut check = aqt_sim::WindowValidator::new(w, r, g.edge_count());
        let mut total = 0usize;
        for t in 1..=100 {
            for inj in adv.injections_for(t) {
                check
                    .record_route(inj.route.edges(), t)
                    .expect("saturating adversary must stay legal");
                total += 1;
            }
        }
        assert!(total > 0, "adversary should inject something");
    }

    /// Drive a saturating adversary over `spec` for `steps` steps and
    /// re-validate its whole stream with an independent model. Returns
    /// the total injections, asserting legality throughout.
    fn saturate_and_revalidate(spec: &AdversaryModelSpec, steps: Time) -> usize {
        let g = topologies::ring(5);
        let routes = random_routes(&g, 3, 10, 1);
        let mut adv = SaturatingAdversary::with_model(&g, spec, routes, InjectionStyle::Burst, 2);
        let mut check = spec.build(g.edge_count());
        let mut total = 0usize;
        for t in 1..=steps {
            for inj in adv.injections_for(t) {
                check
                    .observe_route(inj.route.edges(), t)
                    .expect("saturating adversary must stay legal for its model");
                total += 1;
            }
        }
        total
    }

    #[test]
    fn burst_local_saturator_is_legal_and_productive() {
        let spec = AdversaryModelSpec::burst_local(Ratio::new(1, 4), 3, 8);
        let total = saturate_and_revalidate(&spec, 100);
        assert!(total > 0, "adversary should inject something");
    }

    #[test]
    fn buffer_bound_saturator_is_legal_and_productive() {
        let spec = AdversaryModelSpec::buffer_bound(2);
        let total = saturate_and_revalidate(&spec, 100);
        assert!(total > 0, "adversary should inject something");
    }

    #[test]
    fn composed_model_saturator_is_legal_and_productive() {
        let spec = AdversaryModelSpec::window(12, Ratio::new(1, 3))
            .and(aqt_sim::ConstraintSpec::BurstLocal {
                rho: Ratio::new(1, 4),
                sigma: 2,
                locality: 6,
            })
            .and(aqt_sim::ConstraintSpec::BufferBound { bound: 4 });
        let total = saturate_and_revalidate(&spec, 100);
        assert!(total > 0, "adversary should inject something");
    }

    #[test]
    fn buffer_bound_saturator_uses_the_burst_allowance() {
        // B=2 on a single edge: the first step admits len + B = 3.
        let g = topologies::line(1);
        let e = g.edge_ids().next().unwrap();
        let route = Route::new(&g, vec![e]).unwrap();
        let spec = AdversaryModelSpec::buffer_bound(2);
        let mut adv =
            SaturatingAdversary::with_model(&g, &spec, vec![route], InjectionStyle::Burst, 3);
        assert_eq!(adv.injections_for(1).len(), 3);
        // the bucket is drained: exactly one per step from now on
        assert_eq!(adv.injections_for(2).len(), 1);
        assert_eq!(adv.injections_for(3).len(), 1);
    }

    #[test]
    fn burst_adversary_actually_bursts() {
        let g = topologies::line(1);
        let e = g.edge_ids().next().unwrap();
        let route = Route::new(&g, vec![e]).unwrap();
        let w = 10u64;
        let r = Ratio::new(1, 2); // budget 5
        let mut adv = SaturatingAdversary::new(&g, w, r, vec![route], InjectionStyle::Burst, 3);
        let first = adv.injections_for(1);
        assert_eq!(
            first.len(),
            5,
            "burst mode should exhaust the window budget"
        );
        assert!(adv.injections_for(2).is_empty());
        // window slides: capacity returns at t = 11
        assert_eq!(adv.injections_for(11).len(), 5);
    }

    #[test]
    fn spread_adversary_one_per_step() {
        let g = topologies::line(1);
        let e = g.edge_ids().next().unwrap();
        let route = Route::new(&g, vec![e]).unwrap();
        let mut adv = SaturatingAdversary::new(
            &g,
            10,
            Ratio::new(1, 2),
            vec![route],
            InjectionStyle::Spread,
            3,
        );
        for t in 1..=20 {
            assert!(adv.injections_for(t).len() <= 1);
        }
    }
}
