//! An adaptive (feedback) adversary.
//!
//! The adversarial queuing model allows the adversary to observe the
//! entire system state when choosing injections — Theorems 4.1/4.3
//! quantify over *all* `(w,r)` adversaries, adaptive ones included.
//! This adversary spends its constraint budget where it hurts most:
//! each step it ranks its candidate routes by the current queue length
//! along them and injects the most-loaded ones first (still within the
//! exact per-edge headroom of its constraint model).
//!
//! Compared with the oblivious stochastic adversary it produces
//! measurably deeper queues, making it the stronger stress test for
//! the `⌈wr⌉` bound in experiments E5–E7.

use aqt_graph::{EdgeId, Graph, Route};
use aqt_sim::engine::Injection;
use aqt_sim::rate::{AdversaryModel, AdversaryModelSpec, Constraint};
use aqt_sim::{Ratio, Time};

/// The adaptive adversary. Drive it with
/// [`AdaptiveAdversary::injections_for`], passing a queue-length probe
/// (typically `|e| engine.queue_len(e)`).
pub struct AdaptiveAdversary {
    routes: Vec<Route>,
    tracker: AdversaryModel,
    /// Scratch: (score, route index), reused each step.
    scratch: Vec<(usize, usize)>,
}

impl AdaptiveAdversary {
    /// Create a `(w, r)` adaptive adversary over a candidate route
    /// pool — shorthand for [`AdaptiveAdversary::with_model`] with a
    /// single `Window` member.
    pub fn new(graph: &Graph, window: u64, rate: Ratio, routes: Vec<Route>) -> Self {
        Self::with_model(graph, &AdversaryModelSpec::window(window, rate), routes)
    }

    /// Create an adaptive adversary saturating an arbitrary composed
    /// constraint model.
    pub fn with_model(graph: &Graph, spec: &AdversaryModelSpec, routes: Vec<Route>) -> Self {
        assert!(!routes.is_empty(), "need at least one candidate route");
        AdaptiveAdversary {
            routes,
            tracker: spec.build(graph.edge_count()),
            scratch: Vec::new(),
        }
    }

    /// The `d` of this adversary's route pool.
    pub fn d(&self) -> usize {
        self.routes.iter().map(Route::len).max().unwrap_or(0)
    }

    /// The constraint model this adversary saturates.
    pub fn model_spec(&self) -> &AdversaryModelSpec {
        self.tracker.spec()
    }

    /// Injections for step `t`, given the current queue lengths.
    /// Greedy: routes whose edges currently carry the most queued
    /// packets go first; each candidate is injected as long as every
    /// edge of it has model headroom.
    pub fn injections_for(
        &mut self,
        t: Time,
        queue_len: impl Fn(EdgeId) -> usize,
    ) -> Vec<Injection> {
        self.scratch.clear();
        for (i, route) in self.routes.iter().enumerate() {
            let score: usize = route.edges().iter().map(|&e| queue_len(e)).sum();
            self.scratch.push((score, i));
        }
        // most-loaded first; stable tiebreak on index for determinism
        self.scratch
            .sort_by(|a, b| b.0.cmp(&a.0).then(a.1.cmp(&b.1)));

        let mut out = Vec::new();
        // multiple passes: keep injecting while anything fits
        loop {
            let mut progressed = false;
            for &(_, i) in self.scratch.iter() {
                let route = &self.routes[i];
                let fits = route
                    .edges()
                    .iter()
                    .all(|&e| self.tracker.headroom(e, t) >= 1);
                if fits {
                    for &e in route.edges() {
                        self.tracker
                            .observe(e, t)
                            .expect("headroom checked; observe cannot fail");
                    }
                    out.push(Injection::new(route.clone(), i as u32));
                    progressed = true;
                }
            }
            if !progressed {
                break;
            }
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use aqt_graph::topologies;
    use aqt_protocols::Fifo;
    use aqt_sim::{Engine, EngineConfig};
    use std::sync::Arc;

    #[test]
    fn stays_within_window_budget() {
        let g = topologies::ring(6);
        let routes = crate::stochastic::random_routes(&g, 3, 12, 3);
        let w = 12;
        let r = Ratio::new(1, 4);
        let mut adv = AdaptiveAdversary::new(&g, w, r, routes);
        let mut check = aqt_sim::WindowValidator::new(w, r, g.edge_count());
        for t in 1..=200 {
            for inj in adv.injections_for(t, |_| 0) {
                check
                    .record_route(inj.route.edges(), t)
                    .expect("adaptive adversary must stay (w,r)-legal");
            }
        }
    }

    #[test]
    fn adaptive_composed_model_stays_legal() {
        let g = topologies::ring(6);
        let routes = crate::stochastic::random_routes(&g, 3, 12, 3);
        let spec = AdversaryModelSpec::window(12, Ratio::new(1, 4))
            .and(aqt_sim::ConstraintSpec::BufferBound { bound: 3 });
        let mut adv = AdaptiveAdversary::with_model(&g, &spec, routes);
        let mut check = spec.build(g.edge_count());
        let mut total = 0;
        for t in 1..=200 {
            for inj in adv.injections_for(t, |_| 0) {
                check
                    .observe_route(inj.route.edges(), t)
                    .expect("adaptive adversary must stay model-legal");
                total += 1;
            }
        }
        assert!(total > 0);
    }

    #[test]
    fn targets_loaded_routes_first() {
        let g = topologies::line(2);
        let e: Vec<EdgeId> = g.edge_ids().collect();
        let r0 = Route::new(&g, vec![e[0]]).unwrap();
        let r1 = Route::new(&g, vec![e[1]]).unwrap();
        let mut adv = AdaptiveAdversary::new(&g, 100, Ratio::new(1, 100), vec![r0, r1]);
        // pretend e1 is heavily loaded: its route must be injected
        // (budget 1 per window per edge; both fit, loaded one first)
        let inj = adv.injections_for(1, |e| if e == EdgeId(1) { 10 } else { 0 });
        assert_eq!(inj.len(), 2);
        assert_eq!(inj[0].route.edges()[0], EdgeId(1), "loaded route first");
    }

    #[test]
    fn deeper_queues_than_oblivious_on_a_ring() {
        // Run adaptive vs spread-oblivious on the same budget; adaptive
        // should reach at least as deep a peak queue.
        let g = Arc::new(topologies::ring(8));
        let routes = crate::stochastic::random_routes(&g, 3, 24, 9);
        let (w, r) = (12u64, Ratio::new(1, 4));

        let mut adaptive = AdaptiveAdversary::new(&g, w, r, routes.clone());
        let mut eng_a = Engine::new(Arc::clone(&g), Fifo, EngineConfig::default());
        for t in 1..=4000 {
            let inj = adaptive.injections_for(t, |e| eng_a.queue_len(e));
            eng_a.step(inj).unwrap();
        }

        let mut oblivious = crate::stochastic::SaturatingAdversary::new(
            &g,
            w,
            r,
            routes,
            crate::stochastic::InjectionStyle::Spread,
            7,
        );
        let mut eng_o = Engine::new(Arc::clone(&g), Fifo, EngineConfig::default());
        for t in 1..=4000 {
            eng_o.step(oblivious.injections_for(t)).unwrap();
        }

        assert!(
            eng_a.metrics().max_queue() >= eng_o.metrics().max_queue(),
            "adaptive ({}) should press at least as hard as oblivious ({})",
            eng_a.metrics().max_queue(),
            eng_o.metrics().max_queue()
        );
    }
}
