//! The gadget-step adversary of **Lemma 3.6**.
//!
//! Given `C(S, F)` at time `τ` (gadget `F` holds `S` packets spread over
//! its `e`-path buffers plus `S` packets at its ingress, all destined to
//! cross its egress `a'`), this adversary produces `C(S', F')` at time
//! `τ + 2S + n` with `S' = 2S(1 − R_n) ≥ S(1+ε)`, and leaves `F` empty.
//!
//! The four parts of the paper's adversary, verbatim:
//!
//! 1. extend the routes of all packets stored in `F` by
//!    `e'_1, …, e'_n, a''` (rerouting, Lemma 3.3);
//! 2. for each `e'_i`, inject single-edge packets at rate `r` during
//!    steps `[τ+i, τ+i+t_i]`, `t_i = 2S/(r + R_i)` — these thin the old
//!    packets so they pile up in the `e'` buffers at rates `R_i`;
//! 3. during `[τ+1, τ+S]`, inject `rS` packets with route
//!    `a, f_1…f_n, a', f'_1…f'_n, a''` — the future ingress queue of
//!    `F'`;
//! 4. inject `X = S' − rS + n` packets with route `a', f'_1…f'_n, a''`
//!    at rate `r` starting at `τ + S + n + 1` — the top-up.
//!
//! All streams use the floor pattern, so each is individually rate-r
//! legal; gaps of at least one step separate any two streams sharing an
//! edge, which makes their composition legal too (the engine's
//! validator re-checks everything at run time).

use aqt_graph::{GadgetHandles, Graph, Route, RouteError};
use aqt_sim::{Schedule, Time};

use crate::params::GadgetParams;

/// Cohort tags assigned by [`build`], offset from a caller base tag.
#[derive(Debug, Clone, Copy)]
pub struct StepTags {
    /// Part (2): the thinning single-edge packets.
    pub short: u32,
    /// Part (3): the new long packets routed through both `f`-paths.
    pub long: u32,
    /// Part (4): the top-up packets injected at `a'`.
    pub topup: u32,
}

impl StepTags {
    /// Derive the three cohort tags from a base value.
    pub fn from_base(base: u32) -> Self {
        StepTags {
            short: base,
            long: base + 1,
            topup: base + 2,
        }
    }
}

/// The built gadget-step adversary.
#[derive(Debug)]
pub struct GadgetStep {
    /// The injection/extension plan.
    pub schedule: Schedule,
    /// Time at which `C(S', F')` is predicted to hold: `τ + 2S + n`.
    pub finish: Time,
    /// The theoretical amplified queue `S' = ⌊2S(1 − R_n)⌋`.
    pub s_prime: u64,
    /// Cohort tags used.
    pub tags: StepTags,
}

/// Build the Lemma 3.6 adversary moving the queue from gadget `from`
/// to gadget `to` (which must be daisy-chained: `from.egress ==
/// to.ingress`), given that `C(s, from)` holds at time `tau`.
pub fn build(
    graph: &Graph,
    from: &GadgetHandles,
    to: &GadgetHandles,
    params: &GadgetParams,
    s: u64,
    tau: Time,
    tag_base: u32,
) -> Result<GadgetStep, RouteError> {
    assert_eq!(
        from.egress, to.ingress,
        "gadgets must be daisy-chained (egress of `from` = ingress of `to`)"
    );
    assert_eq!(from.n(), params.n, "gadget size must match parameters");
    assert_eq!(to.n(), params.n, "gadget size must match parameters");
    assert!(s >= params.s0, "need S >= S0 = {} (got {s})", params.s0);

    let n = params.n;
    let rate = params.rate;
    let tags = StepTags::from_base(tag_base);
    let mut schedule = Schedule::new();

    // Part (1): extend routes of everything stored in F — the S packets
    // in the e-path buffers and the S packets at the ingress — by the
    // e'-path of F' followed by F's... F'-egress a''.
    let mut old_buffers = Vec::with_capacity(n + 1);
    old_buffers.push(from.ingress);
    old_buffers.extend_from_slice(&from.e_path);
    let mut suffix = to.e_path.clone();
    suffix.push(to.egress);
    schedule.extend_ending_at(tau + 1, old_buffers, suffix, from.egress);

    // Part (2): thinning singles on each e'_i during [τ+i, τ+i+t_i].
    for i in 1..=n {
        let t_i = params.t_i(s, i);
        let route = Route::single(graph, to.e_path[i - 1])?;
        schedule.inject_stream(tau + i as u64, t_i + 1, rate, &route, tags.short);
    }

    // Part (3): rS long packets a, f-path, a', f'-path, a'' in [τ+1, τ+S].
    let mut long_edges = Vec::with_capacity(2 * n + 3);
    long_edges.push(from.ingress);
    long_edges.extend_from_slice(&from.f_path);
    long_edges.push(from.egress);
    long_edges.extend_from_slice(&to.f_path);
    long_edges.push(to.egress);
    let long_route = Route::new(graph, long_edges)?;
    schedule.inject_stream(tau + 1, s, rate, &long_route, tags.long);

    // Part (4): X top-up packets a', f'-path, a'' at rate r from
    // τ + S + n + 1.
    let x = params.x(s);
    let mut topup_edges = Vec::with_capacity(n + 2);
    topup_edges.push(to.ingress);
    topup_edges.extend_from_slice(&to.f_path);
    topup_edges.push(to.egress);
    let topup_route = Route::new(graph, topup_edges)?;
    let last = schedule.inject_count(tau + s + n as u64 + 1, x, rate, &topup_route, tags.topup);

    let finish = tau + params.step_horizon(s);
    debug_assert!(
        last <= finish,
        "part (4) must finish within the step horizon (last={last}, finish={finish})"
    );

    Ok(GadgetStep {
        schedule,
        finish,
        s_prime: params.s_prime(s),
        tags,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use aqt_graph::DaisyChain;

    fn setup() -> (DaisyChain, GadgetParams) {
        let p = GadgetParams::new(1, 4); // r = 3/4
        (DaisyChain::new(p.n, 2), p)
    }

    #[test]
    fn builds_with_expected_counts() {
        let (chain, p) = setup();
        let s = p.s0 + 10;
        let step = build(
            &chain.graph,
            &chain.gadgets[0],
            &chain.gadgets[1],
            &p,
            s,
            0,
            100,
        )
        .expect("valid build");
        // Injections: n thinning streams + rS longs + X top-ups.
        let expected: u64 = (1..=p.n)
            .map(|i| p.rate.floor_mul(p.t_i(s, i) + 1))
            .sum::<u64>()
            + p.rate.floor_mul(s)
            + p.x(s);
        assert_eq!(step.schedule.injection_count() as u64, expected);
        assert_eq!(step.finish, 2 * s + p.n as u64);
        assert_eq!(step.s_prime, p.s_prime(s));
    }

    #[test]
    fn horizon_contains_all_ops() {
        let (chain, p) = setup();
        let s = p.s0 + 3;
        let step = build(
            &chain.graph,
            &chain.gadgets[0],
            &chain.gadgets[1],
            &p,
            s,
            50,
            0,
        )
        .expect("valid build");
        assert!(step.schedule.horizon() <= step.finish);
    }

    #[test]
    #[should_panic(expected = "daisy-chained")]
    fn rejects_non_adjacent_gadgets() {
        let p = GadgetParams::new(1, 4);
        let chain = DaisyChain::new(p.n, 3);
        // gadget 0 and 2 are not adjacent
        let _ = build(
            &chain.graph,
            &chain.gadgets[0],
            &chain.gadgets[2],
            &p,
            p.s0 + 1,
            0,
            0,
        );
    }

    #[test]
    #[should_panic(expected = "S >= S0")]
    fn rejects_small_s() {
        let (chain, p) = setup();
        let _ = build(
            &chain.graph,
            &chain.gadgets[0],
            &chain.gadgets[1],
            &p,
            p.s0 - 1,
            0,
            0,
        );
    }

    #[test]
    fn tags_are_distinct() {
        let t = StepTags::from_base(9);
        assert_eq!((t.short, t.long, t.topup), (9, 10, 11));
    }
}
