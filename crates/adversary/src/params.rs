//! The parameter algebra of the instability construction (Section 3).
//!
//! Given `ε > 0` (a rational, so that `r = 1/2 + ε` is exact for the
//! validators), this module chooses the gadget length `n`, the minimum
//! seed queue `S₀`, and the chain length `M`, and computes the per-step
//! quantities the adversaries of Lemmas 3.6/3.15/3.16 are built from:
//!
//! * `R_i = (1 − r) / (1 − r^i)` — the rate at which old packets arrive
//!   at the tail of `e'_i` (Claim 3.9), satisfying the key identity
//!   (3.1): `R_i / (r + R_i) = R_{i+1}`.
//! * `t_i = 2S / (r + R_i)` — the duration of the thinning stream on
//!   `e'_i`.
//! * `S' = 2S(1 − R_n)` — the amplified queue (`≥ S(1+ε)` by the choice
//!   of `n`).
//! * `X = S' − rS + n` — the top-up injection of part (4)
//!   (`0 < X ≤ rS`, Claim 3.7).
//!
//! `n` and `S₀` follow the constraints in the proof of Lemma 3.6
//! (`r^{n-1} < 1/2` and `4r^n < ε`; `S₀ > max(2n, n / (2(R_n −
//! R_{n+1})))`); the appendix shows `n = Θ(log 1/ε)` and
//! `S₀ = Θ((1/ε)·log(1/ε))`, which `tests::appendix_asymptotics`
//! verifies numerically.
//!
//! `R_i` involves `r^i`, whose exact denominator grows geometrically,
//! so the *derived* quantities use `f64`; this is safe because none of
//! them affects adversary legality (the engine's exact validators
//! enforce that independently) — they only shape the schedule, and the
//! resulting amplification is *measured*, not assumed.

use aqt_sim::Ratio;

/// Parameters of the instability construction for a given `ε`.
#[derive(Debug, Clone)]
pub struct GadgetParams {
    /// The excess over 1/2: `ε`.
    pub eps: Ratio,
    /// The injection rate `r = 1/2 + ε` (exact).
    pub rate: Ratio,
    /// Gadget internal path length `n`.
    pub n: usize,
    /// Minimum seed queue size `S₀` (paper's constraint, before any
    /// safety factor applied by drivers).
    pub s0: u64,
}

impl GadgetParams {
    /// Derive parameters from `ε = eps_num / eps_den`. Requires
    /// `0 < ε < 1/2` (so that `r < 1`).
    ///
    /// # Panics
    /// Panics if `ε` is outside `(0, 1/2)`.
    pub fn new(eps_num: u64, eps_den: u64) -> Self {
        let eps = Ratio::new(eps_num, eps_den);
        assert!(
            eps > Ratio::ZERO && eps < Ratio::new(1, 2),
            "need 0 < eps < 1/2, got {eps}"
        );
        let rate = Ratio::half_plus(eps);
        let r = rate.as_f64();
        let e = eps.as_f64();

        // n: smallest integer with r^(n-1) < 1/2 and 4 r^n < eps
        // (the two facts the proof of Lemma 3.6 needs from "the choice
        // of n").
        let mut n = 1usize;
        loop {
            let rn1 = r.powi(n as i32 - 1);
            let rn = r.powi(n as i32);
            if rn1 < 0.5 && 4.0 * rn < e {
                break;
            }
            n += 1;
            assert!(n < 10_000, "n selection diverged");
        }

        // S0 > max(2n, n / (2 (R_n - R_{n+1})))
        let rn = big_r(r, n);
        let rn1 = big_r(r, n + 1);
        let bound = (n as f64) / (2.0 * (rn - rn1));
        let s0 = (bound.max(2.0 * n as f64)).ceil() as u64 + 1;

        GadgetParams { eps, rate, n, s0 }
    }

    /// `R_i = (1 − r)/(1 − r^i)` (Claim 3.9's arrival rate at `e'_i`).
    pub fn r_i(&self, i: usize) -> f64 {
        big_r(self.rate.as_f64(), i)
    }

    /// `t_i = ⌊2S / (r + R_i)⌋` — duration of the thinning stream on
    /// the `i`-th internal edge (part (2) of Lemma 3.6's adversary).
    pub fn t_i(&self, s: u64, i: usize) -> u64 {
        let r = self.rate.as_f64();
        ((2.0 * s as f64) / (r + self.r_i(i))).floor() as u64
    }

    /// `S' = ⌊2S(1 − R_n)⌋` — the amplified queue size.
    pub fn s_prime(&self, s: u64) -> u64 {
        (2.0 * s as f64 * (1.0 - self.r_i(self.n))).floor() as u64
    }

    /// `X = S' − ⌊rS⌋ + n`, clamped into `[0, ⌊rS⌋]` (Claim 3.7 proves
    /// `0 < X ≤ rS` for `S > S₀`; the clamp guards the boundary after
    /// integer rounding).
    pub fn x(&self, s: u64) -> u64 {
        let rs = self.rate.floor_mul(s);
        let sp = self.s_prime(s);
        (sp + self.n as u64).saturating_sub(rs).min(rs)
    }

    /// Theoretical per-gadget amplification `S'/S = 2(1 − R_n)`;
    /// `≥ 1 + ε` by the choice of `n`.
    pub fn amplification(&self) -> f64 {
        2.0 * (1.0 - self.r_i(self.n))
    }

    /// Smallest chain length `M` such that the full loop of Theorem
    /// 3.17 grows: `r³ · A^{M-1} / 4 > margin`, where `A = 2(1 − R_n)`
    /// is the per-gadget amplification (the paper argues with the
    /// weaker `A ≥ 1 + ε` and margin 1; using the exact `A` keeps `M`
    /// — and hence the simulation — minimal, and drivers pass a margin
    /// > 1 to absorb integer rounding).
    pub fn choose_m(&self, margin: f64) -> usize {
        assert!(margin >= 1.0);
        let r = self.rate.as_f64();
        let growth = self.amplification();
        let mut m = 2usize;
        loop {
            let factor = r.powi(3) * growth.powi(m as i32 - 1) / 4.0;
            if factor > margin {
                return m;
            }
            m += 1;
            assert!(m < 100_000, "M selection diverged");
        }
    }

    /// Horizon of one gadget step started with queue `S`: `2S + n`
    /// steps (Lemma 3.6).
    pub fn step_horizon(&self, s: u64) -> u64 {
        2 * s + self.n as u64
    }
}

/// `R_i = (1−r)/(1−r^i)`.
fn big_r(r: f64, i: usize) -> f64 {
    (1.0 - r) / (1.0 - r.powi(i as i32))
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn identity_3_1_holds() {
        // R_i / (r + R_i) = R_{i+1}
        for (num, den) in [(1u64, 10u64), (1, 4), (1, 20), (2, 5)] {
            let p = GadgetParams::new(num, den);
            let r = p.rate.as_f64();
            for i in 1..=(p.n + 3) {
                let lhs = p.r_i(i) / (r + p.r_i(i));
                let rhs = p.r_i(i + 1);
                assert!(
                    (lhs - rhs).abs() < 1e-12,
                    "identity (3.1) failed at i={i} for eps={num}/{den}"
                );
            }
        }
    }

    #[test]
    fn r_1_is_one() {
        let p = GadgetParams::new(1, 10);
        assert!((p.r_i(1) - 1.0).abs() < 1e-12);
    }

    #[test]
    fn n_constraints() {
        for (num, den) in [(1u64, 10u64), (1, 4), (1, 8), (1, 100)] {
            let p = GadgetParams::new(num, den);
            let r = p.rate.as_f64();
            let e = p.eps.as_f64();
            assert!(r.powi(p.n as i32 - 1) < 0.5, "r^(n-1) < 1/2");
            assert!(4.0 * r.powi(p.n as i32) < e, "4 r^n < eps");
            // minimality: n-1 fails at least one constraint
            if p.n > 1 {
                let nm = p.n - 1;
                let ok = r.powi(nm as i32 - 1) < 0.5 && 4.0 * r.powi(nm as i32) < e;
                assert!(!ok, "n not minimal for eps={num}/{den}");
            }
        }
    }

    #[test]
    fn s0_constraints() {
        let p = GadgetParams::new(1, 10);
        let n = p.n as f64;
        assert!(p.s0 as f64 > 2.0 * n);
        assert!(p.s0 as f64 > n / (2.0 * (p.r_i(p.n) - p.r_i(p.n + 1))));
    }

    #[test]
    fn amplification_exceeds_one_plus_eps() {
        for (num, den) in [(1u64, 10u64), (1, 4), (3, 10), (1, 50)] {
            let p = GadgetParams::new(num, den);
            assert!(
                p.amplification() >= 1.0 + p.eps.as_f64(),
                "S'/S = {} < 1+eps for eps={num}/{den}",
                p.amplification()
            );
        }
    }

    #[test]
    fn claim_3_7_x_in_range() {
        // 0 < X <= rS for S > S0 (Claim 3.7)
        for (num, den) in [(1u64, 10u64), (1, 4)] {
            let p = GadgetParams::new(num, den);
            for mult in [1u64, 2, 5, 17] {
                let s = p.s0 * mult + 3;
                let x = p.x(s);
                let rs = p.rate.floor_mul(s);
                assert!(x > 0, "X must be positive at S={s}");
                assert!(x <= rs, "X={x} exceeds rS={rs} at S={s}");
            }
        }
    }

    #[test]
    fn bootstrap_fits_in_2s() {
        // Lemma 3.15 needs (S' + n)/r <= 2S for S >= S0.
        for (num, den) in [(1u64, 10u64), (1, 4), (1, 20)] {
            let p = GadgetParams::new(num, den);
            let s = p.s0;
            let lhs = (p.s_prime(s) + p.n as u64) as f64 / p.rate.as_f64();
            assert!(lhs <= 2.0 * s as f64, "(S'+n)/r > 2S for eps={num}/{den}");
        }
    }

    #[test]
    fn t_i_monotone_and_bounded() {
        let p = GadgetParams::new(1, 10);
        let s = p.s0 * 2;
        let mut prev = 0;
        for i in 1..=p.n {
            let t = p.t_i(s, i);
            assert!(t >= prev, "t_i must be nondecreasing in i");
            assert!(t <= 2 * s, "t_i <= 2S");
            assert!(i as u64 + t <= 2 * s + p.n as u64, "stream fits in horizon");
            prev = t;
        }
    }

    #[test]
    fn choose_m_gives_growth() {
        let p = GadgetParams::new(1, 10);
        let m = p.choose_m(1.0);
        let r = p.rate.as_f64();
        let g = p.amplification();
        assert!(r.powi(3) * g.powi(m as i32 - 1) / 4.0 > 1.0);
        assert!(r.powi(3) * g.powi(m as i32 - 2) / 4.0 <= 1.0, "M minimal");
        assert!(p.choose_m(2.0) > m);
    }

    #[test]
    fn appendix_asymptotics() {
        // n = Θ(log 1/ε): (5.5) gives log2(1/ε) + 2 < n < 2 log2(1/ε) + 4
        // S0 = Θ((1/ε) log(1/ε)); with (5.10): S0 ≈ n/(2 ε (R-gap const))
        // — verify the sandwich with generous constants over 3 decades.
        for k in [8u64, 16, 32, 64, 128, 256] {
            let p = GadgetParams::new(1, k);
            let log_inv = (k as f64).log2();
            assert!(
                (p.n as f64) > log_inv,
                "n={} too small vs log2(1/eps)={log_inv}",
                p.n
            );
            assert!(
                (p.n as f64) < 2.0 * log_inv + 6.0,
                "n={} too large vs 2 log2(1/eps)+6",
                p.n
            );
            // S0 ≈ 2n/(ε(1−r)²) with (1−r) → 1/2 as ε → 0, so the
            // constant is ≈ 8·(n / log2(1/ε)) ∈ [8, 24]; allow slack.
            let scale = (k as f64) * log_inv; // (1/eps) log(1/eps)
            let ratio = p.s0 as f64 / scale;
            assert!(
                ratio > 0.05 && ratio < 80.0,
                "S0={} not Θ((1/ε)log(1/ε)) at eps=1/{k} (ratio {ratio})",
                p.s0
            );
        }
    }

    #[test]
    #[should_panic(expected = "eps")]
    fn eps_must_be_below_half() {
        GadgetParams::new(1, 2);
    }
}
