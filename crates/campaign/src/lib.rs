//! # aqt-campaign
//!
//! A coverage-directed adversarial campaign harness for the AQT
//! simulator: long-horizon fuzzing over the topology × protocol ×
//! adversary × fault space, with every invariant breach captured as an
//! [`aqt_sim::ReproBundle`] and auto-minimized into a ready-to-commit
//! regression test.
//!
//! The invariants themselves live in `aqt-sim` (the sentinel, the
//! differential oracle, the adversary validators) and are cataloged in
//! the repository's `INVARIANTS.md`. This crate is the *search* side
//! of that contract: where the sentinel asks "does this invariant hold
//! right now?", the campaign asks "is there any reachable run where it
//! doesn't?".
//!
//! ## The loop
//!
//! 1. **Draw** a [`Scenario`] — plain data pinning topology, protocol,
//!    seed, horizon, injection schedule, fault plan, an
//!    adversary-constraint model (a composition of
//!    [`aqt_sim::ConstraintSpec`] members the schedule is legalized
//!    against, and the engine re-validates), and optionally a theorem
//!    certificate ([`generator`]). Draws are steered toward the
//!    behavior regions the [`coverage`] map has exercised least.
//! 2. **Run** it under an all-halt sentinel with counter telemetry
//!    ([`run`]). Telemetry totals and metric peaks become coverage
//!    features; novelty promotes the scenario into the [`corpus`].
//! 3. **Capture**: a halting violation surfaces as
//!    [`run::Outcome::Breach`] with the engine's own
//!    [`aqt_sim::ViolationReport`] (seed, step, snapshot, fault plan).
//! 4. **Minimize** ([`shrink()`]): greedy deterministic descent over
//!    scenario reductions, accepting only candidates whose re-run
//!    breaches the same invariant — the minimum is a verified repro by
//!    construction, emitted as Rust test source
//!    ([`campaign::Finding::regression_test_source`]).
//!
//! The whole campaign is a pure function of its seed
//! ([`campaign::CampaignConfig::seed`]), so "the campaign found a bug"
//! is itself a reproducible statement.

pub mod campaign;
pub mod corpus;
pub mod coverage;
pub mod generator;
pub mod run;
pub mod scenario;
pub mod shrink;

pub use campaign::{run_campaign, CampaignConfig, CampaignReport, Finding};
pub use corpus::Corpus;
pub use coverage::{bucket, features_of, CoverageMap, Feature};
pub use generator::{generate, mutate, GeneratorConfig};
pub use run::{protocol_index, run_scenario, Outcome, RunStats};
pub use scenario::{
    Built, ClosedLoopSpec, CohortSpec, FaultSpec, InjectSpec, RetrySpec, Scenario, ShedSpec,
    TopologySpec,
};
pub use shrink::{shrink, ShrinkOutcome};
