//! Scenario execution: lower a [`Scenario`] onto a real engine, run it
//! under an all-[`Severity::Halt`](aqt_sim::Severity) sentinel, and
//! classify what happened.
//!
//! Every campaign run gets the full self-verification stack: a
//! sentinel at the scenario's cadence (certificate included when the
//! scenario carries one) and counter-level telemetry, whose totals
//! feed the coverage map. A halted invariant surfaces as
//! [`Outcome::Breach`] carrying the engine's own
//! [`ViolationReport`] — seed, step, snapshot, and fault plan, exactly
//! what the shrinker and the regression emitter need.

use aqt_protocols::registry;
use aqt_sim::sentinel::SentinelConfig;
use aqt_sim::telemetry::{Provenance, TelemetryConfig, TelemetryLevel};
use aqt_sim::{
    AdversaryModelSpec, Engine, EngineConfig, EngineError, Protocol, ShardPlan, ViolationReport,
};
use aqt_workload::{ClosedLoop, WorkloadError};

use crate::scenario::{ClosedLoopSpec, Scenario};

/// Backlog-series sampling cadence for campaign runs. Every run
/// samples `Q(t)` at this stride so a breach's
/// [`ReproBundle`](aqt_sim::sentinel::ReproBundle) carries the
/// backlog trajectory leading up to the violation — a finding can be
/// triaged without replaying it. The series is trajectory-determined,
/// so it never perturbs the sharded/sequential agreement check.
const BACKLOG_SAMPLE_EVERY: u64 = 32;

/// What one run actually did — the coverage map's raw material.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct RunStats {
    /// Steps executed (may stop short of the horizon on a breach).
    pub steps: u64,
    /// Edge count of the materialized graph.
    pub edges: u64,
    /// Packets injected (schedule and bursts).
    pub injected: u64,
    /// Packets absorbed at their destinations.
    pub absorbed: u64,
    /// Packets dropped by faults.
    pub dropped: u64,
    /// Packets duplicated by faults.
    pub duplicated: u64,
    /// Peak backlog over the sampled series (and the final state).
    pub peak_backlog: u64,
    /// Peak single-buffer queue length.
    pub peak_queue: u64,
    /// Worst per-buffer wait (the Theorem 4.1/4.3 quantity).
    pub peak_wait: u64,
    /// Total edge crossings (telemetry `packets_sent`).
    pub crossings: u64,
    /// Completed sentinel check rounds.
    pub sentinel_rounds: u64,
}

impl RunStats {
    fn capture<P: Protocol>(engine: &Engine<P>) -> RunStats {
        let m = engine.metrics();
        let c = engine.telemetry().counters();
        RunStats {
            steps: engine.time(),
            edges: engine.graph().edge_count() as u64,
            injected: m.injected(),
            absorbed: m.absorbed(),
            dropped: m.dropped(),
            duplicated: m.duplicated(),
            peak_backlog: m
                .series()
                .iter()
                .map(|s| s.backlog)
                .max()
                .unwrap_or(0)
                .max(m.backlog()),
            peak_queue: m.max_queue(),
            peak_wait: m.max_buffer_wait(),
            crossings: c.packets_sent,
            sentinel_rounds: c.sentinel_rounds,
        }
    }
}

/// The classification of one campaign run.
#[derive(Debug)]
pub enum Outcome {
    /// Ran to the horizon with every invariant holding.
    Clean(RunStats),
    /// A sentinel invariant halted the run; the report carries the
    /// repro bundle.
    Breach(Box<ViolationReport>, RunStats),
    /// The injection schedule violated the scenario's own declared
    /// adversary model (the engine's exact re-validation fired). The
    /// string is the violation detail. Not a breach — the validator
    /// working is correct behavior — and not `Invalid`: the run
    /// executed up to the violating step and its stats still count.
    Overrate(String, RunStats),
    /// The scenario could not be built or misused the engine — a
    /// generator bug, not a simulator bug.
    Invalid(String),
}

impl Outcome {
    /// The run's stats, when it ran at all.
    pub fn stats(&self) -> Option<&RunStats> {
        match self {
            Outcome::Clean(s) | Outcome::Breach(_, s) | Outcome::Overrate(_, s) => Some(s),
            Outcome::Invalid(_) => None,
        }
    }

    /// Is this a breach?
    pub fn is_breach(&self) -> bool {
        matches!(self, Outcome::Breach(_, _))
    }
}

/// Registry index of `name`, for coverage bucketing.
pub fn protocol_index(name: &str) -> Option<u8> {
    registry::protocol_names()
        .iter()
        .position(|n| n.eq_ignore_ascii_case(name))
        .map(|i| i as u8)
}

/// Run a closed-loop scenario: the workload driver generates the
/// injections, the scenario's model validates the realized dispatch
/// sequence, and the same all-halt sentinel stack (certificate
/// included) watches the engine. Request conservation is enforced by
/// the driver itself every step, so a ledger breach surfaces exactly
/// like a sentinel breach: as [`Outcome::Breach`] with a repro bundle.
fn run_closed_loop(scenario: &Scenario, spec: &ClosedLoopSpec) -> Outcome {
    if !scenario.injections.is_empty() || !scenario.faults.is_empty() {
        return Outcome::Invalid(
            "closed-loop scenario cannot carry an open-loop schedule or faults".into(),
        );
    }
    if scenario.shards > 1 {
        return Outcome::Invalid(
            "closed-loop scenarios run sequentially (shards must be 1)".into(),
        );
    }
    if !scenario.protocol.eq_ignore_ascii_case("FIFO") {
        return Outcome::Invalid(format!(
            "closed-loop service order is FIFO; scenario names '{}'",
            scenario.protocol
        ));
    }
    let mut cfg = spec.lower(scenario.seed);
    cfg.validate =
        (!scenario.model.is_empty()).then(|| AdversaryModelSpec::new(scenario.model.clone()));
    let mut cl = ClosedLoop::on_line(cfg);
    cl.engine_mut().set_sample_every(BACKLOG_SAMPLE_EVERY);
    let mut sentinel = SentinelConfig::all_halt()
        .with_cadence(scenario.cadence)
        .with_seed(scenario.seed);
    sentinel.deep_stride = scenario.deep_stride.max(1);
    sentinel.certificate_spec = scenario.certificate;
    cl.engine_mut().attach_sentinel(sentinel);
    cl.engine_mut().attach_telemetry(TelemetryConfig {
        level: TelemetryLevel::Counters,
        window: 0,
        provenance: Provenance {
            seed: Some(scenario.seed),
            schedule_hash: None,
            protocol: scenario.protocol.clone(),
            fault_plan_id: None,
            model_fingerprint: None, // auto-filled from the engine's model
        },
        ..TelemetryConfig::default()
    });
    match cl.run(scenario.horizon) {
        Ok(()) => Outcome::Clean(RunStats::capture(cl.engine())),
        Err(WorkloadError::Invariant(report))
        | Err(WorkloadError::Engine(EngineError::Invariant(report))) => {
            Outcome::Breach(report, RunStats::capture(cl.engine()))
        }
        Err(WorkloadError::Engine(EngineError::Rate(v))) => {
            Outcome::Overrate(v.to_string(), RunStats::capture(cl.engine()))
        }
        Err(e) => Outcome::Invalid(e.to_string()),
    }
}

/// Run the open-loop path of `scenario` at `shards` shards (the
/// scenario's own count on the primary run, 1 on the cross-check
/// replica). The shard plan is [`ShardPlan::auto`] over the built
/// graph, so equal shard counts always mean equal partitions.
fn run_open_loop(scenario: &Scenario, shards: u32) -> Outcome {
    let built = match scenario.build() {
        Ok(b) => b,
        Err(e) => return Outcome::Invalid(e),
    };
    let plan = (shards > 1).then(|| ShardPlan::auto(&built.graph, shards as usize));
    let Some(protocol) = registry::by_name(&scenario.protocol, scenario.seed) else {
        return Outcome::Invalid(format!("unknown protocol '{}'", scenario.protocol));
    };
    let validate =
        (!scenario.model.is_empty()).then(|| AdversaryModelSpec::new(scenario.model.clone()));
    let mut engine = Engine::new(
        built.graph,
        protocol,
        EngineConfig {
            validate,
            sample_every: BACKLOG_SAMPLE_EVERY,
            ..EngineConfig::default()
        },
    );
    if let Some(plan) = plan {
        if let Err(e) = engine.set_shards(plan) {
            return Outcome::Invalid(e.to_string());
        }
    }
    let mut sentinel = SentinelConfig::all_halt()
        .with_cadence(scenario.cadence)
        .with_seed(scenario.seed);
    sentinel.deep_stride = scenario.deep_stride.max(1);
    sentinel.certificate_spec = scenario.certificate;
    engine.attach_sentinel(sentinel);
    engine.attach_telemetry(TelemetryConfig {
        level: TelemetryLevel::Counters,
        window: 0,
        provenance: Provenance {
            seed: Some(scenario.seed),
            schedule_hash: Some(built.schedule.content_hash()),
            protocol: scenario.protocol.clone(),
            fault_plan_id: None,
            model_fingerprint: None, // auto-filled from the engine's model
        },
        ..TelemetryConfig::default()
    });
    if !built.faults.is_empty() {
        if let Err(e) = engine.install_faults(built.faults) {
            return Outcome::Invalid(e.to_string());
        }
    }
    match built.schedule.replay(&mut engine, scenario.horizon) {
        Ok(()) => Outcome::Clean(RunStats::capture(&engine)),
        Err(EngineError::Invariant(report)) => Outcome::Breach(report, RunStats::capture(&engine)),
        Err(EngineError::Rate(v)) => Outcome::Overrate(v.to_string(), RunStats::capture(&engine)),
        Err(e) => Outcome::Invalid(e.to_string()),
    }
}

/// Do two runs of the same scenario tell the same story? Breaches must
/// agree on the violation itself, and every variant that ran must
/// agree on the stats — [`RunStats`] covers steps, packet accounting,
/// peaks, crossings, and sentinel rounds, so agreement here means the
/// runs were observationally identical.
fn outcomes_agree(a: &Outcome, b: &Outcome) -> bool {
    match (a, b) {
        (Outcome::Clean(x), Outcome::Clean(y)) => x == y,
        (Outcome::Breach(ra, x), Outcome::Breach(rb, y)) => ra.violation == rb.violation && x == y,
        (Outcome::Overrate(da, x), Outcome::Overrate(db, y)) => da == db && x == y,
        (Outcome::Invalid(da), Outcome::Invalid(db)) => da == db,
        _ => false,
    }
}

/// Build and run `scenario` to its horizon (or first halting breach).
///
/// A sharded scenario (`shards > 1`) is self-checking: the same
/// scenario is re-run sequentially and the two outcomes must agree —
/// the sharded engine's bit-identical contract says the shard count is
/// invisible. A divergence is classified as [`Outcome::Invalid`]: it
/// is a simulator determinism bug, not an adversarial finding, and
/// `Invalid` is the campaign's loudest bucket (the report pins it to
/// zero).
pub fn run_scenario(scenario: &Scenario) -> Outcome {
    if let Some(spec) = &scenario.closed_loop {
        return run_closed_loop(scenario, spec);
    }
    let out = run_open_loop(scenario, scenario.shards);
    if scenario.shards > 1 && !matches!(out, Outcome::Invalid(_)) {
        let sequential = run_open_loop(scenario, 1);
        if !outcomes_agree(&out, &sequential) {
            return Outcome::Invalid(format!(
                "sharded run ({} shards) diverged from sequential: {out:?} vs {sequential:?}",
                scenario.shards
            ));
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::scenario::{CohortSpec, InjectSpec, TopologySpec};
    use aqt_sim::sentinel::CertificateSpec;
    use aqt_sim::{InvariantKind, Ratio};

    fn clean_scenario() -> Scenario {
        Scenario {
            topology: TopologySpec::Line(3),
            protocol: "FIFO".into(),
            seed: 11,
            horizon: 40,
            cadence: 1,
            deep_stride: 1,
            shards: 1,
            injections: vec![
                InjectSpec {
                    time: 1,
                    cohort: CohortSpec {
                        route: vec![0, 1, 2],
                        tag: 0,
                        count: 3,
                    },
                },
                InjectSpec {
                    time: 5,
                    cohort: CohortSpec {
                        route: vec![1, 2],
                        tag: 1,
                        count: 2,
                    },
                },
            ],
            faults: vec![],
            model: vec![],
            certificate: None,
            closed_loop: None,
        }
    }

    #[test]
    fn clean_run_reports_stats() {
        let out = run_scenario(&clean_scenario());
        let Outcome::Clean(stats) = out else {
            panic!("expected clean, got {out:?}");
        };
        assert_eq!(stats.steps, 40);
        assert_eq!(stats.injected, 5);
        assert_eq!(stats.absorbed, 5);
        assert!(stats.crossings >= 3 * 3 + 2 * 2);
        assert!(stats.sentinel_rounds > 0);
        assert!(stats.peak_queue >= 3);
    }

    #[test]
    fn tight_certificate_is_breached_and_bundled() {
        // A deliberately unsatisfiable tripwire: bound ⌈w·r⌉ = 1 on a
        // single-edge route, then a cohort of 5 — the last packet waits
        // 4 steps.
        let mut s = clean_scenario();
        s.injections = vec![InjectSpec {
            time: 1,
            cohort: CohortSpec {
                route: vec![0],
                tag: 0,
                count: 5,
            },
        }];
        s.certificate = Some(CertificateSpec {
            window: 1,
            rate: Ratio::new(1, 2),
            d: 1,
            initial: 0,
            time_priority: false,
        });
        let out = run_scenario(&s);
        let Outcome::Breach(report, stats) = out else {
            panic!("expected breach, got {out:?}");
        };
        assert_eq!(report.violation.kind, InvariantKind::Certificate);
        assert_eq!(report.bundle.seed, Some(11));
        assert_eq!(report.bundle.step, report.violation.time);
        assert!(stats.steps < 40, "halted before the horizon");
    }

    #[test]
    fn breach_is_deterministic() {
        let mut s = clean_scenario();
        s.injections[0].cohort.count = 6;
        s.certificate = Some(CertificateSpec {
            window: 1,
            rate: Ratio::new(1, 4),
            d: 3,
            initial: 0,
            time_priority: false,
        });
        let (a, b) = (run_scenario(&s), run_scenario(&s));
        match (a, b) {
            (Outcome::Breach(ra, _), Outcome::Breach(rb, _)) => {
                assert_eq!(ra.violation, rb.violation);
                assert_eq!(ra.bundle, rb.bundle);
            }
            other => panic!("expected two identical breaches, got {other:?}"),
        }
    }

    #[test]
    fn legal_model_runs_clean_under_validation() {
        // Edge 1 sees 3 packets at t=1 and 2 at t=5: 5 per 8-window
        // (≤ ⌊8·3/4⌋ = 6) and a worst burst of 3 in one step (≤ 1+4).
        let mut s = clean_scenario();
        s.model = vec![
            aqt_sim::ConstraintSpec::Window {
                window: 8,
                rate: Ratio::new(3, 4),
            },
            aqt_sim::ConstraintSpec::BufferBound { bound: 4 },
        ];
        let out = run_scenario(&s);
        let Outcome::Clean(stats) = out else {
            panic!("expected clean under a satisfied model, got {out:?}");
        };
        assert_eq!(stats.injected, 5);
    }

    #[test]
    fn model_violating_schedule_is_overrate_not_breach() {
        // The first cohort puts 3 packets on each edge in one step,
        // busting buffer_bound(1) (burst cap |I| + B = 2).
        let mut s = clean_scenario();
        s.model = vec![aqt_sim::ConstraintSpec::BufferBound { bound: 1 }];
        let out = run_scenario(&s);
        let Outcome::Overrate(detail, stats) = out else {
            panic!("expected overrate, got {out:?}");
        };
        assert!(
            detail.contains("buffer"),
            "detail names the member: {detail}"
        );
        assert!(!Outcome::Overrate(detail, stats).is_breach());
    }

    #[test]
    fn sharded_run_matches_sequential_stats() {
        let sequential = run_scenario(&clean_scenario());
        let Outcome::Clean(seq_stats) = sequential else {
            panic!("expected clean, got {sequential:?}");
        };
        for shards in [2, 4, 8] {
            let mut s = clean_scenario();
            s.shards = shards;
            let out = run_scenario(&s);
            let Outcome::Clean(stats) = out else {
                panic!("expected clean at {shards} shards, got {out:?}");
            };
            assert_eq!(stats, seq_stats, "{shards} shards changed the run");
        }
    }

    #[test]
    fn sharded_breach_matches_sequential() {
        // The tight-certificate tripwire from above, run at 4 shards:
        // the cross-check inside run_scenario must agree, and the
        // violation must be the sequential one.
        let mut s = clean_scenario();
        s.injections = vec![InjectSpec {
            time: 1,
            cohort: CohortSpec {
                route: vec![0],
                tag: 0,
                count: 5,
            },
        }];
        s.certificate = Some(CertificateSpec {
            window: 1,
            rate: Ratio::new(1, 2),
            d: 1,
            initial: 0,
            time_priority: false,
        });
        let sequential = run_scenario(&s);
        s.shards = 4;
        let sharded = run_scenario(&s);
        match (sequential, sharded) {
            (Outcome::Breach(ra, sa), Outcome::Breach(rb, sb)) => {
                assert_eq!(ra.violation, rb.violation);
                assert_eq!(sa, sb);
            }
            other => panic!("expected two identical breaches, got {other:?}"),
        }
    }

    #[test]
    fn random_protocol_with_shards_is_invalid() {
        // RANDOM declares a custom service order the sharded engine
        // refuses; the generator never pairs them, so seeing one is a
        // generator bug and classifies as Invalid.
        let mut s = clean_scenario();
        s.protocol = "RANDOM".into();
        s.shards = 2;
        assert!(matches!(run_scenario(&s), Outcome::Invalid(_)));
        s.shards = 1;
        assert!(matches!(run_scenario(&s), Outcome::Clean(_)));
    }

    #[test]
    fn unknown_protocol_is_invalid_not_breach() {
        let mut s = clean_scenario();
        s.protocol = "NOPE".into();
        assert!(matches!(run_scenario(&s), Outcome::Invalid(_)));
    }

    #[test]
    fn protocol_index_matches_registry() {
        assert_eq!(protocol_index("FIFO"), Some(0));
        assert_eq!(protocol_index("random"), Some(8));
        assert_eq!(protocol_index("nope"), None);
    }
}
