//! The campaign corpus: deduplicated scenarios worth mutating.
//!
//! A scenario earns a corpus slot by exhibiting novel coverage (see
//! [`crate::coverage::CoverageMap`]). Deduplication is by
//! [`Scenario::fingerprint`], so re-generating an identical scenario —
//! common under mutation — costs nothing. The corpus can also be
//! seeded from a sweep's quarantine output: every
//! [`aqt_sim::ReproBundle`] a [`aqt_sim::SweepReport`] carries is
//! grafted onto a template scenario (its seed and fault plan replace
//! the template's), which turns yesterday's production failures into
//! today's fuzz starting points.

use std::collections::BTreeSet;

use aqt_sim::{ReproBundle, SweepReport};
use rand::rngs::StdRng;
use rand::seq::SliceRandom;

use crate::scenario::{CohortSpec, FaultSpec, Scenario};

/// Deduplicated scenario store.
#[derive(Debug, Default)]
pub struct Corpus {
    entries: Vec<Scenario>,
    seen: BTreeSet<u64>,
}

impl Corpus {
    pub fn new() -> Self {
        Corpus::default()
    }

    /// Add `scenario` unless an identical one (by fingerprint) is
    /// already present. Returns whether it was added.
    pub fn add(&mut self, scenario: Scenario) -> bool {
        if self.seen.insert(scenario.fingerprint()) {
            self.entries.push(scenario);
            true
        } else {
            false
        }
    }

    pub fn len(&self) -> usize {
        self.entries.len()
    }

    pub fn is_empty(&self) -> bool {
        self.entries.is_empty()
    }

    /// The stored scenarios, in insertion order.
    pub fn entries(&self) -> &[Scenario] {
        &self.entries
    }

    /// A uniformly random entry.
    pub fn choose(&self, rng: &mut StdRng) -> Option<&Scenario> {
        self.entries.as_slice().choose(rng)
    }

    /// Graft one repro bundle onto `template`: the bundle's seed and
    /// fault plan replace the template's own. The snapshot itself is
    /// not replayed — what the corpus wants is the *neighborhood* of
    /// the failure (same faults, same randomness), reached through the
    /// template's schedule, so mutation can explore around it.
    pub fn scenario_from_bundle(template: &Scenario, bundle: &ReproBundle) -> Scenario {
        let mut s = template.clone();
        if let Some(seed) = bundle.seed {
            s.seed = seed;
        }
        if let Some(plan) = &bundle.fault_plan {
            let mut faults = Vec::new();
            for o in plan.outages() {
                faults.push(FaultSpec::Outage {
                    edge: o.edge.0,
                    from: o.from,
                    until: o.until,
                });
            }
            for &(edge, time) in plan.drops() {
                faults.push(FaultSpec::Drop { edge: edge.0, time });
            }
            for &(edge, time) in plan.duplicates() {
                faults.push(FaultSpec::Duplicate { edge: edge.0, time });
            }
            for b in plan.bursts() {
                faults.push(FaultSpec::Burst {
                    time: b.time,
                    cohorts: b
                        .injections
                        .iter()
                        .map(|inj| CohortSpec {
                            route: inj.route.edges().iter().map(|e| e.0).collect(),
                            tag: inj.tag,
                            count: inj.count,
                        })
                        .collect(),
                });
            }
            s.faults = faults;
            s.horizon = s
                .horizon
                .max(s.faults.iter().map(FaultSpec::horizon).max().unwrap_or(0));
        }
        s
    }

    /// Seed the corpus from a sweep's quarantined failures. Returns how
    /// many scenarios were added (grafts deduplicate like any other
    /// entry).
    pub fn seed_from_sweep<R>(&mut self, report: &SweepReport<R>, template: &Scenario) -> usize {
        let mut added = 0;
        for (_, bundle) in report.bundles() {
            if self.add(Self::scenario_from_bundle(template, bundle)) {
                added += 1;
            }
        }
        added
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::scenario::{InjectSpec, TopologySpec};
    use aqt_graph::{topologies, EdgeId, Route};
    use aqt_sim::{FaultPlan, Injection, Snapshot, SNAPSHOT_SCHEMA_VERSION};

    fn template() -> Scenario {
        Scenario {
            topology: TopologySpec::Line(2),
            protocol: "FIFO".into(),
            seed: 1,
            horizon: 24,
            cadence: 1,
            deep_stride: 1,
            shards: 1,
            injections: vec![InjectSpec {
                time: 1,
                cohort: CohortSpec {
                    route: vec![0, 1],
                    tag: 0,
                    count: 2,
                },
            }],
            faults: vec![],
            model: vec![],
            certificate: None,
            closed_loop: None,
        }
    }

    fn empty_snapshot() -> Snapshot {
        Snapshot {
            schema: SNAPSHOT_SCHEMA_VERSION,
            time: 5,
            next_id: 0,
            injected: 0,
            absorbed: 0,
            dropped: 0,
            duplicated: 0,
            routes: vec![],
            buffers: vec![vec![], vec![]],
        }
    }

    #[test]
    fn add_dedups_by_fingerprint() {
        let mut c = Corpus::new();
        assert!(c.add(template()));
        assert!(!c.add(template()));
        let mut other = template();
        other.seed = 2;
        assert!(c.add(other));
        assert_eq!(c.len(), 2);
    }

    #[test]
    fn bundle_graft_carries_seed_and_faults() {
        let g = topologies::line(2);
        let route = Route::new(&g, vec![EdgeId(0), EdgeId(1)]).unwrap();
        let plan = FaultPlan::new()
            .with_outage(EdgeId(0), 2, 4)
            .with_drop(EdgeId(1), 3)
            .with_burst(30, vec![Injection::cohort(route, 9, 3)]);
        let bundle = ReproBundle {
            seed: Some(77),
            step: 5,
            snapshot: empty_snapshot(),
            fault_plan: Some(plan),
            backlog: vec![],
        };
        let s = Corpus::scenario_from_bundle(&template(), &bundle);
        assert_eq!(s.seed, 77);
        assert_eq!(s.faults.len(), 3);
        assert!(matches!(
            s.faults[0],
            FaultSpec::Outage {
                edge: 0,
                from: 2,
                until: 4
            }
        ));
        assert!(matches!(s.faults[1], FaultSpec::Drop { edge: 1, time: 3 }));
        let FaultSpec::Burst { time, cohorts } = &s.faults[2] else {
            panic!("expected burst");
        };
        assert_eq!(*time, 30);
        assert_eq!(cohorts[0].route, vec![0, 1]);
        assert_eq!(cohorts[0].count, 3);
        // The burst at 30 is past the template horizon (24): graft must
        // stretch the horizon so the scenario still builds.
        assert!(s.horizon >= 30);
        s.build().expect("grafted scenario must be buildable");
    }

    #[test]
    fn bundle_without_plan_keeps_template_faults() {
        let bundle = ReproBundle {
            seed: None,
            step: 1,
            snapshot: empty_snapshot(),
            fault_plan: None,
            backlog: vec![],
        };
        let s = Corpus::scenario_from_bundle(&template(), &bundle);
        assert_eq!(s.seed, template().seed);
        assert!(s.faults.is_empty());
    }
}
