//! The campaign's unit of work: a fully serializable run description.
//!
//! A [`Scenario`] pins everything a run depends on — topology,
//! protocol, RNG seed, horizon, sentinel cadence, injection schedule,
//! fault plan, and (optionally) a theorem certificate to enforce — as
//! plain data: no `Arc`s, no interned ids, edge references are raw
//! `u32` indices. That makes scenarios cheap to mutate (the generator),
//! order-free to hash (the corpus), and trivial to print as a Rust
//! literal (the regression emitter). [`Scenario::build`] is the single
//! place where a scenario is validated and lowered onto the real
//! engine types.

use std::sync::Arc;

use aqt_graph::{topologies, EdgeId, Graph, Route};
use aqt_sim::sentinel::CertificateSpec;
use aqt_sim::{fnv1a_u64s, ConstraintSpec, FaultPlan, Injection, Schedule, Time};

/// A topology family instance, shrinkable along its size parameters.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum TopologySpec {
    /// `topologies::line(k)` — k+1 nodes in a path.
    Line(u32),
    /// `topologies::ring(k)` — a directed k-cycle.
    Ring(u32),
    /// `topologies::grid(w, h)` — bidirectional w×h grid.
    Grid(u32, u32),
    /// `topologies::hypercube(d)` — the d-dimensional hypercube.
    Hypercube(u32),
    /// `topologies::complete(k)` — the complete digraph on k nodes.
    Complete(u32),
}

impl TopologySpec {
    /// Every family the generator draws from, at a placeholder size.
    pub const FAMILIES: usize = 5;

    /// Dense family index, for coverage bucketing.
    pub fn family(self) -> u8 {
        match self {
            TopologySpec::Line(_) => 0,
            TopologySpec::Ring(_) => 1,
            TopologySpec::Grid(_, _) => 2,
            TopologySpec::Hypercube(_) => 3,
            TopologySpec::Complete(_) => 4,
        }
    }

    /// Stable display name of the family.
    pub fn family_name(self) -> &'static str {
        match self {
            TopologySpec::Line(_) => "line",
            TopologySpec::Ring(_) => "ring",
            TopologySpec::Grid(_, _) => "grid",
            TopologySpec::Hypercube(_) => "hypercube",
            TopologySpec::Complete(_) => "complete",
        }
    }

    /// Materialize the graph. Sizes are clamped to the topology
    /// constructors' minimums so a shrunk spec can never panic.
    pub fn build(self) -> Graph {
        match self {
            TopologySpec::Line(k) => topologies::line(k.max(1) as usize),
            TopologySpec::Ring(k) => topologies::ring(k.max(2) as usize),
            TopologySpec::Grid(w, h) => topologies::grid(w.max(1) as usize, h.max(1) as usize),
            TopologySpec::Hypercube(d) => topologies::hypercube(d.clamp(1, 10) as usize),
            TopologySpec::Complete(k) => topologies::complete(k.max(2) as usize),
        }
    }

    /// Strictly smaller variants of this spec, largest first, for the
    /// shrinker's topology pass. Empty when already minimal.
    pub fn shrink_candidates(self) -> Vec<TopologySpec> {
        match self {
            TopologySpec::Line(k) => (1..k).rev().map(TopologySpec::Line).collect(),
            TopologySpec::Ring(k) => (2..k).rev().map(TopologySpec::Ring).collect(),
            TopologySpec::Grid(w, h) => {
                let mut out = Vec::new();
                if w > 1 {
                    out.push(TopologySpec::Grid(w - 1, h));
                }
                if h > 1 {
                    out.push(TopologySpec::Grid(w, h - 1));
                }
                out
            }
            TopologySpec::Hypercube(d) => (1..d).rev().map(TopologySpec::Hypercube).collect(),
            TopologySpec::Complete(k) => (2..k).rev().map(TopologySpec::Complete).collect(),
        }
    }

    /// Canonical hash words: family tag then size parameters.
    fn words(self) -> [u64; 3] {
        match self {
            TopologySpec::Line(k) => [0, u64::from(k), 0],
            TopologySpec::Ring(k) => [1, u64::from(k), 0],
            TopologySpec::Grid(w, h) => [2, u64::from(w), u64::from(h)],
            TopologySpec::Hypercube(d) => [3, u64::from(d), 0],
            TopologySpec::Complete(k) => [4, u64::from(k), 0],
        }
    }

    /// A size proxy for the shrinker's ordering (node + edge count of
    /// the materialized graph).
    pub fn weight(self) -> u64 {
        let g = self.build();
        (g.node_count() + g.edge_count()) as u64
    }

    /// Rust source for this spec, for the regression emitter.
    pub fn to_rust(self) -> String {
        match self {
            TopologySpec::Line(k) => format!("TopologySpec::Line({k})"),
            TopologySpec::Ring(k) => format!("TopologySpec::Ring({k})"),
            TopologySpec::Grid(w, h) => format!("TopologySpec::Grid({w}, {h})"),
            TopologySpec::Hypercube(d) => format!("TopologySpec::Hypercube({d})"),
            TopologySpec::Complete(k) => format!("TopologySpec::Complete({k})"),
        }
    }
}

/// A cohort: `count` identical packets sharing one route (edge indices
/// into the scenario's topology) and a bookkeeping tag.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct CohortSpec {
    /// Edge indices of the shared route, in travel order.
    pub route: Vec<u32>,
    /// Cohort tag (free-form).
    pub tag: u32,
    /// Number of packets.
    pub count: u32,
}

impl CohortSpec {
    fn words(&self) -> impl Iterator<Item = u64> + '_ {
        [
            u64::from(self.tag),
            u64::from(self.count),
            self.route.len() as u64,
        ]
        .into_iter()
        .chain(self.route.iter().map(|&e| u64::from(e)))
    }

    fn weight(&self) -> u64 {
        self.route.len() as u64 + u64::from(self.count)
    }

    fn to_injection(&self, graph: &Graph) -> Result<Injection, String> {
        let edges: Vec<EdgeId> = self.route.iter().map(|&e| EdgeId(e)).collect();
        let route = Route::new(graph, edges)
            .map_err(|e| format!("cohort route {:?} invalid: {e}", self.route))?;
        Ok(Injection::cohort(route, self.tag, self.count.max(1)))
    }

    fn to_rust(&self) -> String {
        format!(
            "CohortSpec {{ route: vec!{:?}, tag: {}, count: {} }}",
            self.route, self.tag, self.count
        )
    }
}

/// A scheduled adversary injection: one cohort at one step.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct InjectSpec {
    /// The step at which the cohort is injected (must be ≥ 1).
    pub time: Time,
    /// What is injected.
    pub cohort: CohortSpec,
}

/// One fault-plan entry, in scenario (raw-index) form. Mirrors the
/// shapes of [`aqt_sim::FaultPlan`]: edge outages, single-crossing
/// drops and duplications, and mid-run injection bursts that bypass
/// adversary validation (the `S`-configurations of Observation 4.4).
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum FaultSpec {
    /// Edge `edge` is down for steps `from..=until`.
    Outage { edge: u32, from: Time, until: Time },
    /// The packet crossing `edge` at step `time` is dropped.
    Drop { edge: u32, time: Time },
    /// The packet crossing `edge` at step `time` is duplicated.
    Duplicate { edge: u32, time: Time },
    /// Cohorts force-injected at step `time`.
    Burst {
        time: Time,
        cohorts: Vec<CohortSpec>,
    },
}

impl FaultSpec {
    /// The last step this entry can act at.
    pub fn horizon(&self) -> Time {
        match self {
            FaultSpec::Outage { until, .. } => *until,
            FaultSpec::Drop { time, .. }
            | FaultSpec::Duplicate { time, .. }
            | FaultSpec::Burst { time, .. } => *time,
        }
    }

    fn words(&self) -> Vec<u64> {
        match self {
            FaultSpec::Outage { edge, from, until } => vec![1, u64::from(*edge), *from, *until],
            FaultSpec::Drop { edge, time } => vec![2, u64::from(*edge), *time],
            FaultSpec::Duplicate { edge, time } => vec![3, u64::from(*edge), *time],
            FaultSpec::Burst { time, cohorts } => {
                let mut w = vec![4, *time, cohorts.len() as u64];
                for c in cohorts {
                    w.extend(c.words());
                }
                w
            }
        }
    }

    fn weight(&self) -> u64 {
        match self {
            FaultSpec::Outage { .. } | FaultSpec::Drop { .. } | FaultSpec::Duplicate { .. } => 1,
            FaultSpec::Burst { cohorts, .. } => {
                1 + cohorts.iter().map(CohortSpec::weight).sum::<u64>()
            }
        }
    }

    fn to_rust(&self) -> String {
        match self {
            FaultSpec::Outage { edge, from, until } => {
                format!("FaultSpec::Outage {{ edge: {edge}, from: {from}, until: {until} }}")
            }
            FaultSpec::Drop { edge, time } => {
                format!("FaultSpec::Drop {{ edge: {edge}, time: {time} }}")
            }
            FaultSpec::Duplicate { edge, time } => {
                format!("FaultSpec::Duplicate {{ edge: {edge}, time: {time} }}")
            }
            FaultSpec::Burst { time, cohorts } => {
                let inner: Vec<String> = cohorts.iter().map(CohortSpec::to_rust).collect();
                format!(
                    "FaultSpec::Burst {{ time: {time}, cohorts: vec![{}] }}",
                    inner.join(", ")
                )
            }
        }
    }
}

/// A client retry policy, in scenario (plain-data) form. Mirrors
/// [`aqt_workload::RetryPolicy`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum RetrySpec {
    /// One attempt, never retried.
    None,
    /// Retry on the very next step.
    Immediate,
    /// Retry after a fixed delay.
    Fixed(Time),
    /// Exponential backoff `(base, cap)` with seeded jitter.
    ExpBackoff(Time, Time),
}

impl RetrySpec {
    /// Lower onto the workload type.
    pub fn lower(self) -> aqt_workload::RetryPolicy {
        match self {
            RetrySpec::None => aqt_workload::RetryPolicy::None,
            RetrySpec::Immediate => aqt_workload::RetryPolicy::Immediate,
            RetrySpec::Fixed(delay) => aqt_workload::RetryPolicy::Fixed { delay },
            RetrySpec::ExpBackoff(base, cap) => aqt_workload::RetryPolicy::ExpBackoff { base, cap },
        }
    }

    fn words(self) -> [u64; 3] {
        match self {
            RetrySpec::None => [0, 0, 0],
            RetrySpec::Immediate => [1, 0, 0],
            RetrySpec::Fixed(d) => [2, d, 0],
            RetrySpec::ExpBackoff(b, c) => [3, b, c],
        }
    }

    fn to_rust(self) -> String {
        match self {
            RetrySpec::None => "RetrySpec::None".into(),
            RetrySpec::Immediate => "RetrySpec::Immediate".into(),
            RetrySpec::Fixed(d) => format!("RetrySpec::Fixed({d})"),
            RetrySpec::ExpBackoff(b, c) => format!("RetrySpec::ExpBackoff({b}, {c})"),
        }
    }
}

/// An admission-queue shed discipline, in scenario form. Mirrors
/// [`aqt_workload::Shed`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ShedSpec {
    /// Full queue rejects the incoming attempt (FIFO service).
    RejectNewest,
    /// Full queue evicts its oldest entry to admit the incoming one.
    RejectOldest,
    /// Serve newest-first (LIFO) — fresh work beats stale work.
    LifoFlip,
    /// Drop queued attempts that can no longer meet their deadline.
    DeadlineDrop,
}

impl ShedSpec {
    /// Every discipline, in coverage-index order.
    pub const ALL: [ShedSpec; 4] = [
        ShedSpec::RejectNewest,
        ShedSpec::RejectOldest,
        ShedSpec::LifoFlip,
        ShedSpec::DeadlineDrop,
    ];

    /// Dense index, for coverage bucketing (`Feature::ClosedLoop`).
    pub fn index(self) -> u8 {
        match self {
            ShedSpec::RejectNewest => 0,
            ShedSpec::RejectOldest => 1,
            ShedSpec::LifoFlip => 2,
            ShedSpec::DeadlineDrop => 3,
        }
    }

    /// Lower onto the workload type.
    pub fn lower(self) -> aqt_workload::Shed {
        match self {
            ShedSpec::RejectNewest => aqt_workload::Shed::RejectNewest,
            ShedSpec::RejectOldest => aqt_workload::Shed::RejectOldest,
            ShedSpec::LifoFlip => aqt_workload::Shed::LifoFlip,
            ShedSpec::DeadlineDrop => aqt_workload::Shed::DeadlineDrop,
        }
    }

    fn to_rust(self) -> String {
        format!("ShedSpec::{self:?}")
    }
}

/// A closed-loop workload: a client population with timeout/retry
/// driving a bounded admission queue over a `path_len`-edge line, in
/// place of an open-loop injection schedule. Mirrors
/// [`aqt_workload::ClosedLoopConfig`]; the scenario's `seed` seeds the
/// population RNG and its `model` (when nonempty) validates the
/// realized dispatch sequence exactly like an open-loop schedule.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct ClosedLoopSpec {
    /// Client population size.
    pub num_clients: u32,
    /// Idle steps between a completed request and the next.
    pub think_time: Time,
    /// Steps a client waits on an attempt before retrying.
    pub timeout: Time,
    /// Attempts per request before the client abandons it.
    pub max_attempts: u32,
    /// Retry policy.
    pub retry: RetrySpec,
    /// Admission-queue bound.
    pub capacity: u32,
    /// Shed discipline when the queue is full.
    pub shed: ShedSpec,
    /// Optional service outage `(from, until)` (half-open, in steps).
    pub pause: Option<(Time, Time)>,
    /// Line-topology length in edges (the service path).
    pub path_len: u32,
}

impl ClosedLoopSpec {
    /// Lower onto the workload config (`validate` and `window` are the
    /// caller's — the campaign derives them from the scenario).
    pub fn lower(&self, seed: u64) -> aqt_workload::ClosedLoopConfig {
        aqt_workload::ClosedLoopConfig {
            seed,
            clients: aqt_workload::ClientConfig {
                num_clients: self.num_clients.max(1),
                think_time: self.think_time,
                timeout: self.timeout.max(1),
                max_attempts: self.max_attempts.max(1),
                retry: self.retry.lower(),
            },
            service: aqt_workload::ServicePolicy {
                capacity: self.capacity,
                shed: self.shed.lower(),
                pause: self.pause,
            },
            path_len: self.path_len.max(1),
            validate: None,
            window: 0,
        }
    }

    fn words(&self) -> Vec<u64> {
        let mut w = vec![
            u64::from(self.num_clients),
            self.think_time,
            self.timeout,
            u64::from(self.max_attempts),
        ];
        w.extend(self.retry.words());
        w.push(u64::from(self.capacity));
        w.push(u64::from(self.shed.index()));
        match self.pause {
            None => w.push(0),
            Some((a, b)) => w.extend([1, a, b]),
        }
        w.push(u64::from(self.path_len));
        w
    }

    /// Size metric for the shrinker: fewer clients, fewer attempts, a
    /// smaller queue, a shorter path, no outage — all strictly smaller.
    pub fn weight(&self) -> u64 {
        u64::from(self.num_clients)
            + u64::from(self.max_attempts)
            + u64::from(self.capacity)
            + u64::from(self.path_len)
            + self.pause.map_or(0, |(a, b)| 1 + b.saturating_sub(a))
    }

    /// Strictly smaller variants, for the shrinker's closed-loop pass.
    pub fn shrink_candidates(&self) -> Vec<ClosedLoopSpec> {
        let mut out = Vec::new();
        if self.num_clients > 1 {
            out.push(ClosedLoopSpec {
                num_clients: self.num_clients / 2,
                ..*self
            });
            out.push(ClosedLoopSpec {
                num_clients: self.num_clients - 1,
                ..*self
            });
        }
        if self.max_attempts > 1 {
            out.push(ClosedLoopSpec {
                max_attempts: self.max_attempts - 1,
                ..*self
            });
        }
        if self.capacity > 0 {
            out.push(ClosedLoopSpec {
                capacity: self.capacity / 2,
                ..*self
            });
        }
        if self.pause.is_some() {
            out.push(ClosedLoopSpec {
                pause: None,
                ..*self
            });
        }
        if self.path_len > 1 {
            out.push(ClosedLoopSpec {
                path_len: self.path_len - 1,
                ..*self
            });
        }
        out
    }

    fn to_rust(self) -> String {
        format!(
            "ClosedLoopSpec {{ num_clients: {}, think_time: {}, timeout: {}, \
             max_attempts: {}, retry: {}, capacity: {}, shed: {}, pause: {}, path_len: {} }}",
            self.num_clients,
            self.think_time,
            self.timeout,
            self.max_attempts,
            self.retry.to_rust(),
            self.capacity,
            self.shed.to_rust(),
            match self.pause {
                None => "None".into(),
                Some((a, b)) => format!("Some(({a}, {b}))"),
            },
            self.path_len,
        )
    }
}

/// One point of the campaign's search space, as plain data.
#[derive(Debug, Clone, PartialEq)]
pub struct Scenario {
    /// Which graph to run on.
    pub topology: TopologySpec,
    /// Protocol registry name (see `aqt_protocols::registry`).
    pub protocol: String,
    /// RNG seed: passed to the protocol constructor and stamped into
    /// repro bundles.
    pub seed: u64,
    /// Run length in steps; must cover the schedule and the faults.
    pub horizon: Time,
    /// Sentinel base cadence (the campaign always attaches a
    /// sentinel; 0 would disable it, so `build` rejects 0).
    pub cadence: Time,
    /// Sentinel deep stride (per-packet scans); ≥ 1.
    pub deep_stride: u64,
    /// Edge shards stepping concurrently inside the run (1 =
    /// sequential). A representation knob, not a behavior knob: the
    /// sharded engine is bit-identical to the sequential one, so the
    /// outcome must not depend on this field — `run_scenario`
    /// cross-checks exactly that on every sharded run.
    pub shards: u32,
    /// The adversary's schedule.
    pub injections: Vec<InjectSpec>,
    /// The fault plan.
    pub faults: Vec<FaultSpec>,
    /// The adversary-constraint model the injection schedule claims to
    /// satisfy (conjunction of members; empty = unconstrained). The
    /// engine re-validates during the run: a schedule that breaks its
    /// own declared model surfaces as `Outcome::Overrate`, never as a
    /// breach. Fault bursts bypass the model (Observation 4.4).
    pub model: Vec<ConstraintSpec>,
    /// Optional theorem bound to enforce during the run.
    pub certificate: Option<CertificateSpec>,
    /// When set, the scenario is *closed-loop*: this client/service
    /// workload generates the injections and the open-loop `injections`
    /// and `faults` must be empty (the topology is the spec's own
    /// line). `seed`, `cadence`, `deep_stride`, `model`, and
    /// `certificate` apply as usual.
    pub closed_loop: Option<ClosedLoopSpec>,
}

/// A scenario lowered onto real engine types, ready to run.
pub struct Built {
    /// The materialized topology.
    pub graph: Arc<Graph>,
    /// The adversary schedule.
    pub schedule: Schedule,
    /// The fault plan (empty when the scenario has no faults).
    pub faults: FaultPlan,
}

impl Scenario {
    /// Validate and lower this scenario. Errors are strings: the
    /// campaign treats an unbuildable scenario as `Outcome::Invalid`
    /// (a generator or mutation bug worth surfacing, never a breach).
    pub fn build(&self) -> Result<Built, String> {
        if self.cadence == 0 {
            return Err("cadence 0 would disable the sentinel".into());
        }
        if self.shards == 0 {
            return Err("0 shards cannot step (1 = sequential)".into());
        }
        if self.closed_loop.is_some() && self.shards > 1 {
            return Err("closed-loop scenarios run sequentially (shards must be 1)".into());
        }
        if self.closed_loop.is_some() && !(self.injections.is_empty() && self.faults.is_empty()) {
            return Err("closed-loop scenario cannot carry an open-loop schedule or faults".into());
        }
        let graph = Arc::new(self.topology.build());
        let edge_count = graph.edge_count() as u32;
        let mut schedule = Schedule::new();
        for inj in &self.injections {
            if inj.time == 0 {
                return Err("injection scheduled at step 0 can never fire".into());
            }
            if let Some(&e) = inj.cohort.route.iter().find(|&&e| e >= edge_count) {
                return Err(format!("injection references edge {e} of {edge_count}"));
            }
            let lowered = inj.cohort.to_injection(&graph)?;
            schedule.inject_cohort_at(inj.time, lowered.route, lowered.tag, lowered.count);
        }
        let mut plan = FaultPlan::new();
        for f in &self.faults {
            match f {
                FaultSpec::Outage { edge, from, until } => {
                    if *edge >= edge_count {
                        return Err(format!("outage references edge {edge} of {edge_count}"));
                    }
                    plan = plan.with_outage(EdgeId(*edge), *from, *until);
                }
                FaultSpec::Drop { edge, time } => {
                    if *edge >= edge_count {
                        return Err(format!("drop references edge {edge} of {edge_count}"));
                    }
                    plan = plan.with_drop(EdgeId(*edge), *time);
                }
                FaultSpec::Duplicate { edge, time } => {
                    if *edge >= edge_count {
                        return Err(format!("duplicate references edge {edge} of {edge_count}"));
                    }
                    plan = plan.with_duplicate(EdgeId(*edge), *time);
                }
                FaultSpec::Burst { time, cohorts } => {
                    let injections: Result<Vec<Injection>, String> =
                        cohorts.iter().map(|c| c.to_injection(&graph)).collect();
                    plan = plan.with_burst(*time, injections?);
                }
            }
        }
        plan.validate().map_err(|e| format!("fault plan: {e}"))?;
        let needed = schedule.horizon().max(plan.horizon());
        if self.horizon < needed {
            return Err(format!(
                "horizon {} does not cover the last scheduled event at {needed}",
                self.horizon
            ));
        }
        Ok(Built {
            graph,
            schedule,
            faults: plan,
        })
    }

    /// Content fingerprint over every field, on the same FNV-1a stream
    /// as [`aqt_sim::Schedule::content_hash`] and
    /// [`aqt_sim::FaultPlan::plan_id`]. Two scenarios with equal
    /// fingerprints describe the same run.
    pub fn fingerprint(&self) -> u64 {
        let mut words: Vec<u64> = Vec::new();
        words.extend(self.topology.words());
        words.push(self.protocol.len() as u64);
        words.extend(self.protocol.bytes().map(u64::from));
        words.extend([
            self.seed,
            self.horizon,
            self.cadence,
            self.deep_stride,
            u64::from(self.shards),
        ]);
        words.push(self.injections.len() as u64);
        for inj in &self.injections {
            words.push(inj.time);
            words.extend(inj.cohort.words());
        }
        words.push(self.faults.len() as u64);
        for f in &self.faults {
            words.extend(f.words());
        }
        words.push(self.model.len() as u64);
        for m in &self.model {
            words.extend(m.words());
        }
        match &self.certificate {
            None => words.push(0),
            Some(c) => words.extend([
                1,
                c.window,
                c.rate.num(),
                c.rate.den(),
                c.d,
                c.initial,
                u64::from(c.time_priority),
            ]),
        }
        match &self.closed_loop {
            None => words.push(0),
            Some(cl) => {
                words.push(1);
                words.extend(cl.words());
            }
        }
        fnv1a_u64s(words)
    }

    /// The shrinker's size metric. Strictly decreasing weight is what
    /// "smaller repro" means: fewer/shorter routes, fewer packets,
    /// fewer fault entries, a smaller graph, a shorter run.
    pub fn weight(&self) -> u64 {
        self.topology.weight()
            + self.horizon
            + self
                .injections
                .iter()
                .map(|i| i.cohort.weight())
                .sum::<u64>()
            + self.faults.iter().map(FaultSpec::weight).sum::<u64>()
            + self.model.len() as u64
            + u64::from(self.shards)
            + self.closed_loop.as_ref().map_or(0, ClosedLoopSpec::weight)
    }

    /// Bitmask of the constraint-member kinds present in the model:
    /// rate=1, window=2, burst-local=4, buffer-bound=8 (0 = no model).
    /// The coverage map's `Feature::Model` axis.
    pub fn model_mask(&self) -> u8 {
        let mut mask = 0u8;
        for m in &self.model {
            mask |= match m {
                ConstraintSpec::Rate(_) => 1,
                ConstraintSpec::Window { .. } => 2,
                ConstraintSpec::BurstLocal { .. } => 4,
                ConstraintSpec::BufferBound { .. } => 8,
            };
        }
        mask
    }

    /// This scenario as a Rust expression, for emitting ready-to-commit
    /// regression tests (see `CampaignReport::regression_test_source`).
    pub fn to_rust(&self) -> String {
        let injections: Vec<String> = self
            .injections
            .iter()
            .map(|i| {
                format!(
                    "InjectSpec {{ time: {}, cohort: {} }}",
                    i.time,
                    i.cohort.to_rust()
                )
            })
            .collect();
        let faults: Vec<String> = self.faults.iter().map(FaultSpec::to_rust).collect();
        let model: Vec<String> = self.model.iter().map(ConstraintSpec::to_rust).collect();
        let certificate = match &self.certificate {
            None => "None".into(),
            Some(c) => format!(
                "Some(CertificateSpec {{ window: {}, rate: Ratio::new({}, {}), d: {}, initial: {}, time_priority: {} }})",
                c.window,
                c.rate.num(),
                c.rate.den(),
                c.d,
                c.initial,
                c.time_priority
            ),
        };
        let closed_loop = match &self.closed_loop {
            None => "None".into(),
            Some(cl) => format!("Some({})", cl.to_rust()),
        };
        format!(
            "Scenario {{\n    topology: {},\n    protocol: \"{}\".into(),\n    seed: {},\n    horizon: {},\n    cadence: {},\n    deep_stride: {},\n    shards: {},\n    injections: vec![{}],\n    faults: vec![{}],\n    model: vec![{}],\n    certificate: {},\n    closed_loop: {},\n}}",
            self.topology.to_rust(),
            self.protocol,
            self.seed,
            self.horizon,
            self.cadence,
            self.deep_stride,
            self.shards,
            injections.join(", "),
            faults.join(", "),
            model.join(", "),
            certificate,
            closed_loop
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn base() -> Scenario {
        Scenario {
            topology: TopologySpec::Line(3),
            protocol: "FIFO".into(),
            seed: 7,
            horizon: 32,
            cadence: 1,
            deep_stride: 1,
            shards: 1,
            injections: vec![InjectSpec {
                time: 1,
                cohort: CohortSpec {
                    route: vec![0, 1, 2],
                    tag: 0,
                    count: 2,
                },
            }],
            faults: vec![FaultSpec::Drop { edge: 1, time: 4 }],
            model: vec![],
            certificate: None,
            closed_loop: None,
        }
    }

    fn loop_spec() -> ClosedLoopSpec {
        ClosedLoopSpec {
            num_clients: 4,
            think_time: 6,
            timeout: 5,
            max_attempts: 4,
            retry: RetrySpec::ExpBackoff(2, 16),
            capacity: 8,
            shed: ShedSpec::RejectNewest,
            pause: Some((10, 20)),
            path_len: 2,
        }
    }

    #[test]
    fn build_lowers_schedule_and_plan() {
        let b = base().build().unwrap();
        assert_eq!(b.graph.edge_count(), 3);
        assert_eq!(b.schedule.len(), 1);
        assert_eq!(b.schedule.injection_count(), 2);
        assert_eq!(b.faults.drops(), &[(EdgeId(1), 4)]);
    }

    #[test]
    fn build_rejects_bad_scenarios() {
        let mut s = base();
        s.injections[0].cohort.route = vec![0, 9];
        assert!(s.build().is_err());

        let mut s = base();
        s.injections[0].time = 0;
        assert!(s.build().is_err());

        let mut s = base();
        s.horizon = 2;
        assert!(s.build().is_err(), "horizon below the last fault event");

        let mut s = base();
        s.cadence = 0;
        assert!(s.build().is_err());

        let mut s = base();
        s.shards = 0;
        assert!(s.build().is_err(), "0 shards cannot step");

        let mut s = base();
        // Non-consecutive edges on a line: Route::new must refuse.
        s.injections[0].cohort.route = vec![0, 2];
        assert!(s.build().is_err());

        let mut s = base();
        // Closed-loop scenarios generate their own injections; an
        // open-loop schedule riding along is a generator bug.
        s.closed_loop = Some(loop_spec());
        assert!(s.build().is_err());
        s.injections.clear();
        assert!(s.build().is_err(), "faults must also be empty");
        s.faults.clear();
        assert!(s.build().is_ok());
        s.shards = 2;
        assert!(s.build().is_err(), "closed-loop runs are sequential");
    }

    #[test]
    fn fingerprint_tracks_every_field() {
        let s = base();
        let f = s.fingerprint();
        assert_eq!(f, base().fingerprint(), "fingerprint is deterministic");
        let mut t = s.clone();
        t.seed += 1;
        assert_ne!(f, t.fingerprint());
        let mut t = s.clone();
        t.protocol = "LIS".into();
        assert_ne!(f, t.fingerprint());
        let mut t = s.clone();
        t.shards = 4;
        assert_ne!(f, t.fingerprint());
        let mut t = s.clone();
        t.injections[0].cohort.count = 3;
        assert_ne!(f, t.fingerprint());
        let mut t = s.clone();
        t.faults.clear();
        assert_ne!(f, t.fingerprint());
        let mut t = s.clone();
        t.certificate = Some(CertificateSpec {
            window: 1,
            rate: aqt_sim::Ratio::new(1, 2),
            d: 1,
            initial: 0,
            time_priority: false,
        });
        assert_ne!(f, t.fingerprint());
        let mut t = s.clone();
        t.model = vec![ConstraintSpec::Rate(aqt_sim::Ratio::new(1, 2))];
        assert_ne!(f, t.fingerprint());
        let mut u = t.clone();
        u.model = vec![ConstraintSpec::BufferBound { bound: 3 }];
        assert_ne!(t.fingerprint(), u.fingerprint());
        let mut t = s.clone();
        t.closed_loop = Some(loop_spec());
        assert_ne!(f, t.fingerprint());
        let mut u = t.clone();
        u.closed_loop = Some(ClosedLoopSpec {
            shed: ShedSpec::LifoFlip,
            ..loop_spec()
        });
        assert_ne!(t.fingerprint(), u.fingerprint());
    }

    #[test]
    fn closed_loop_weight_and_shrinks_are_strictly_smaller() {
        let spec = loop_spec();
        let mut s = base();
        s.injections.clear();
        s.faults.clear();
        let open_weight = s.weight();
        s.closed_loop = Some(spec);
        assert!(s.weight() > open_weight, "the spec has weight");
        let cands = spec.shrink_candidates();
        assert!(!cands.is_empty());
        for cand in cands {
            assert!(
                cand.weight() < spec.weight(),
                "{cand:?} not smaller than {spec:?}"
            );
        }
    }

    #[test]
    fn model_mask_reflects_member_kinds() {
        let mut s = base();
        assert_eq!(s.model_mask(), 0);
        s.model = vec![ConstraintSpec::Rate(aqt_sim::Ratio::new(1, 2))];
        assert_eq!(s.model_mask(), 1);
        s.model.push(ConstraintSpec::BurstLocal {
            rho: aqt_sim::Ratio::new(1, 4),
            sigma: 2,
            locality: 4,
        });
        assert_eq!(s.model_mask(), 1 | 4);
        s.model.push(ConstraintSpec::Window {
            window: 8,
            rate: aqt_sim::Ratio::new(1, 2),
        });
        s.model.push(ConstraintSpec::BufferBound { bound: 1 });
        assert_eq!(s.model_mask(), 15);
    }

    #[test]
    fn weight_decreases_under_obvious_shrinks() {
        let s = base();
        let mut smaller = s.clone();
        smaller.injections[0].cohort.count = 1;
        assert!(smaller.weight() < s.weight());
        let mut smaller = s.clone();
        smaller.faults.clear();
        assert!(smaller.weight() < s.weight());
        let mut smaller = s.clone();
        smaller.topology = TopologySpec::Line(2);
        smaller.injections[0].cohort.route = vec![0, 1];
        assert!(smaller.weight() < s.weight());
    }

    #[test]
    fn topology_shrink_candidates_are_strictly_smaller() {
        for spec in [
            TopologySpec::Line(4),
            TopologySpec::Ring(5),
            TopologySpec::Grid(3, 2),
            TopologySpec::Hypercube(3),
            TopologySpec::Complete(4),
        ] {
            for cand in spec.shrink_candidates() {
                assert!(
                    cand.weight() < spec.weight(),
                    "{cand:?} not smaller than {spec:?}"
                );
            }
        }
        assert!(TopologySpec::Line(1).shrink_candidates().is_empty());
    }

    #[test]
    fn to_rust_round_trips_through_the_compiler_shape() {
        // Not compiled here, but pin the shape so the emitter's output
        // stays a valid expression of this module's types.
        let src = base().to_rust();
        assert!(src.contains("TopologySpec::Line(3)"));
        assert!(src.contains("CohortSpec { route: vec![0, 1, 2], tag: 0, count: 2 }"));
        assert!(src.contains("FaultSpec::Drop { edge: 1, time: 4 }"));
        assert!(src.contains("shards: 1"));
        assert!(src.contains("model: vec![]"));
        assert!(src.contains("certificate: None"));

        let mut s = base();
        s.model = vec![
            ConstraintSpec::Rate(aqt_sim::Ratio::new(1, 2)),
            ConstraintSpec::BufferBound { bound: 3 },
        ];
        let src = s.to_rust();
        assert!(src.contains(
            "model: vec![ConstraintSpec::Rate(Ratio::new(1, 2)), \
             ConstraintSpec::BufferBound { bound: 3 }]"
        ));

        let mut s = base();
        s.injections.clear();
        s.faults.clear();
        s.closed_loop = Some(loop_spec());
        let src = s.to_rust();
        assert!(src.contains(
            "closed_loop: Some(ClosedLoopSpec { num_clients: 4, think_time: 6, \
             timeout: 5, max_attempts: 4, retry: RetrySpec::ExpBackoff(2, 16), \
             capacity: 8, shed: ShedSpec::RejectNewest, pause: Some((10, 20)), \
             path_len: 2 })"
        ));
    }
}
