//! Seeded scenario generation and mutation.
//!
//! Everything here is a pure function of the `StdRng` handed in, so a
//! campaign seed reproduces the exact sequence of scenarios tried.
//! The generator accepts an optional *steering target* — the coverage
//! map's least-hit feature — and biases the draw toward it: a rare
//! protocol forces that protocol, a rare topology family forces that
//! family, a rare fault-shape bucket biases fault generation. All
//! other axes stay uniform; steering narrows the search, it never
//! pins it.

use aqt_graph::{EdgeId, Graph};
use aqt_protocols::registry;
use aqt_sim::sentinel::CertificateSpec;
use aqt_sim::{AdversaryModelSpec, Constraint, ConstraintSpec, Ratio, Time};
use rand::rngs::StdRng;
use rand::seq::SliceRandom;
use rand::Rng;

use crate::coverage::Feature;
use crate::scenario::{
    ClosedLoopSpec, CohortSpec, FaultSpec, InjectSpec, RetrySpec, Scenario, ShedSpec, TopologySpec,
};

/// Bounds of the generator's draw, all inclusive upper limits.
#[derive(Debug, Clone)]
pub struct GeneratorConfig {
    /// Max cohorts per scenario.
    pub max_cohorts: u32,
    /// Max packets per cohort.
    pub max_count: u32,
    /// Max route length (edges).
    pub max_route_len: u32,
    /// Max run horizon (steps).
    pub max_horizon: Time,
    /// Max fault-plan entries.
    pub max_faults: u32,
    /// A certificate to plant into every generated scenario — the
    /// campaign's tripwire. `None` (the default) runs the structural
    /// invariants only.
    pub certificate: Option<CertificateSpec>,
}

impl Default for GeneratorConfig {
    fn default() -> Self {
        GeneratorConfig {
            max_cohorts: 6,
            max_count: 8,
            max_route_len: 6,
            max_horizon: 96,
            max_faults: 3,
            certificate: None,
        }
    }
}

/// A random vertex-simple route of at most `max_len` edges: start at a
/// uniform edge, extend with uniform consecutive out-edges, never
/// revisiting a node (so [`aqt_graph::Route::new`]'s simplicity check
/// always passes).
fn random_route(rng: &mut StdRng, graph: &Graph, max_len: u32) -> Vec<u32> {
    let first = EdgeId(rng.gen_range(0..graph.edge_count() as u32));
    let mut route = vec![first.0];
    let mut visited = vec![graph.src(first), graph.dst(first)];
    let mut head = graph.dst(first);
    let target = rng.gen_range(1..=max_len.max(1));
    while (route.len() as u32) < target {
        let candidates: Vec<EdgeId> = graph
            .out_edges(head)
            .iter()
            .copied()
            .filter(|&e| !visited.contains(&graph.dst(e)))
            .collect();
        let Some(&next) = candidates.as_slice().choose(rng) else {
            break;
        };
        route.push(next.0);
        head = graph.dst(next);
        visited.push(head);
    }
    route
}

fn random_topology(rng: &mut StdRng, family: Option<u8>) -> TopologySpec {
    let family = family.unwrap_or_else(|| rng.gen_range(0..TopologySpec::FAMILIES as u32) as u8);
    match family % TopologySpec::FAMILIES as u8 {
        0 => TopologySpec::Line(rng.gen_range(2..=6)),
        1 => TopologySpec::Ring(rng.gen_range(3..=8)),
        2 => TopologySpec::Grid(rng.gen_range(2..=3), rng.gen_range(2..=3)),
        3 => TopologySpec::Hypercube(rng.gen_range(2..=3)),
        _ => TopologySpec::Complete(rng.gen_range(3..=5)),
    }
}

/// Draw an adversary-constraint model with the member kinds of
/// `mask` (rate=1, window=2, burst-local=4, buffer-bound=8), in the
/// canonical member order. `mask == 0` is the empty (unconstrained)
/// model. Parameters are drawn loose enough that a modest schedule can
/// survive [`legalize`] with packets left.
fn model_for_mask(rng: &mut StdRng, mask: u8) -> Vec<ConstraintSpec> {
    let mut model = Vec::new();
    if mask & 1 != 0 {
        model.push(ConstraintSpec::Rate(Ratio::new(rng.gen_range(1..=3), 4)));
    }
    if mask & 2 != 0 {
        model.push(ConstraintSpec::Window {
            window: rng.gen_range(4..=16),
            rate: Ratio::new(rng.gen_range(1..=3), 4),
        });
    }
    if mask & 4 != 0 {
        model.push(ConstraintSpec::BurstLocal {
            rho: Ratio::new(1, rng.gen_range(2..=4)),
            sigma: rng.gen_range(1..=4),
            locality: rng.gen_range(2..=8),
        });
    }
    if mask & 8 != 0 {
        model.push(ConstraintSpec::BufferBound {
            bound: rng.gen_range(1..=6),
        });
    }
    model
}

/// Draw a model-kind bitmask: unconstrained stays the common case,
/// each single member shows up regularly, and a two-member
/// composition rounds out the alphabet.
fn random_model_mask(rng: &mut StdRng) -> u8 {
    match rng.gen_range(0..8u32) {
        0..=2 => 0,
        3 => 1,
        4 => 2,
        5 => 4,
        6 => 8,
        _ => {
            let a = 1u8 << rng.gen_range(0..4u32);
            let mut b = a;
            while b == a {
                b = 1u8 << rng.gen_range(0..4u32);
            }
            a | b
        }
    }
}

/// Clamp `injections` to what `model` admits: in time order, each
/// cohort keeps the packets whose whole route has per-edge headroom
/// (the saturating-adversary probe), and cohorts clamped to zero are
/// dropped. A legalized schedule passes the engine's exact model
/// validation by construction — fault bursts are exempt and left
/// untouched. No-op for the empty model.
fn legalize(injections: &mut Vec<InjectSpec>, model: &[ConstraintSpec], edge_count: usize) {
    if model.is_empty() {
        return;
    }
    let mut tracker = AdversaryModelSpec::new(model.to_vec()).build(edge_count);
    injections.sort_by_key(|i| i.time);
    injections.retain_mut(|inj| {
        let edges: Vec<EdgeId> = inj.cohort.route.iter().map(|&e| EdgeId(e)).collect();
        let mut admitted = 0u32;
        for _ in 0..inj.cohort.count {
            let fits = edges.iter().all(|&e| tracker.headroom(e, inj.time) >= 1);
            if !fits {
                break;
            }
            for &e in &edges {
                tracker
                    .observe(e, inj.time)
                    .expect("headroom was checked; observe cannot fail");
            }
            admitted += 1;
        }
        inj.cohort.count = admitted;
        admitted > 0
    });
}

/// Draw a closed-loop workload spec, optionally pinning the shed
/// discipline (the coverage axis). Bounds keep runs small: at most 8
/// clients over at most 3 edges, with an optional mid-run outage to
/// ignite a retry storm.
fn random_closed_loop(rng: &mut StdRng, forced_shed: Option<u8>) -> ClosedLoopSpec {
    let shed = ShedSpec::ALL[forced_shed.unwrap_or_else(|| rng.gen_range(0..4u32) as u8) as usize
        % ShedSpec::ALL.len()];
    let retry = match rng.gen_range(0..4u32) {
        0 => RetrySpec::None,
        1 => RetrySpec::Immediate,
        2 => RetrySpec::Fixed(rng.gen_range(1..=4)),
        _ => RetrySpec::ExpBackoff(rng.gen_range(1..=4), 16),
    };
    let pause = rng.gen_bool(0.5).then(|| {
        let from = rng.gen_range(4..=16u64);
        (from, from + rng.gen_range(4..=24u64))
    });
    ClosedLoopSpec {
        num_clients: rng.gen_range(1..=8),
        think_time: rng.gen_range(1..=10),
        timeout: rng.gen_range(3..=12),
        max_attempts: rng.gen_range(1..=8),
        retry,
        capacity: rng.gen_range(1..=16),
        shed,
        pause,
        path_len: rng.gen_range(1..=3),
    }
}

fn random_cohort(rng: &mut StdRng, graph: &Graph, cfg: &GeneratorConfig, tag: u32) -> CohortSpec {
    CohortSpec {
        route: random_route(rng, graph, cfg.max_route_len),
        tag,
        count: rng.gen_range(1..=cfg.max_count.max(1)),
    }
}

fn random_fault(
    rng: &mut StdRng,
    graph: &Graph,
    cfg: &GeneratorConfig,
    horizon: Time,
) -> FaultSpec {
    let edge = rng.gen_range(0..graph.edge_count() as u32);
    // FaultPlan::validate: no step-0 faults, outage from ≤ until.
    let time = rng.gen_range(1..=horizon.max(1));
    match rng.gen_range(0..4u32) {
        0 => {
            let until = rng.gen_range(time..=horizon.max(time));
            FaultSpec::Outage {
                edge,
                from: time,
                until,
            }
        }
        1 => FaultSpec::Drop { edge, time },
        2 => FaultSpec::Duplicate { edge, time },
        _ => FaultSpec::Burst {
            time,
            cohorts: vec![random_cohort(rng, graph, cfg, 1000 + time as u32)],
        },
    }
}

/// Draw a fresh *closed-loop* scenario around `spec`: the workload
/// generates the injections, so the open-loop schedule and faults stay
/// empty, the service order is FIFO, and the topology is the spec's
/// own line. Half the draws declare the rate-1 adversary model, which
/// the ≤ 1-dispatch-per-step loop satisfies by construction — so the
/// realized injections flow through the exact model validators.
fn generate_closed_loop(rng: &mut StdRng, cfg: &GeneratorConfig, spec: ClosedLoopSpec) -> Scenario {
    let last_event = spec.pause.map_or(0, |(_, until)| until);
    let slack = cfg.max_horizon.saturating_sub(last_event + 16).max(1);
    let horizon = last_event + 16 + rng.gen_range(0..=slack);
    let model = if rng.gen_bool(0.5) {
        vec![ConstraintSpec::Rate(Ratio::new(1, 1))]
    } else {
        vec![]
    };
    Scenario {
        topology: TopologySpec::Line(spec.path_len.max(1)),
        protocol: "FIFO".into(),
        seed: rng.gen_range(0..u64::MAX),
        horizon,
        cadence: 1,
        deep_stride: rng.gen_range(1..=4),
        shards: 1,
        injections: vec![],
        faults: vec![],
        model,
        certificate: cfg.certificate,
        closed_loop: Some(spec),
    }
}

/// Draw a fresh scenario, optionally steered toward `target`.
pub fn generate(rng: &mut StdRng, cfg: &GeneratorConfig, target: Option<Feature>) -> Scenario {
    let forced_shed = match target {
        Some(Feature::ClosedLoop(s)) => Some(s),
        _ => None,
    };
    if forced_shed.is_some() || (target.is_none() && rng.gen_range(0..8u32) == 0) {
        let spec = random_closed_loop(rng, forced_shed);
        return generate_closed_loop(rng, cfg, spec);
    }
    let forced_family = match target {
        Some(Feature::Topology(f)) => Some(f),
        _ => None,
    };
    let model_mask = match target {
        Some(Feature::Model(m)) => m % 16,
        _ => random_model_mask(rng),
    };
    let topology = random_topology(rng, forced_family);
    let graph = topology.build();
    let protocol = match target {
        Some(Feature::Protocol(i)) => {
            registry::protocol_names()[i as usize % registry::protocol_names().len()].to_string()
        }
        _ => registry::protocol_names()
            .choose(rng)
            .expect("registry is nonempty")
            .to_string(),
    };
    // Leave slack after the last event so injected packets can drain
    // (and the sentinel can observe the drained state).
    let last_event = rng.gen_range(1..=cfg.max_horizon.saturating_sub(16).max(1));
    let horizon = last_event + 16;
    let cohorts = rng.gen_range(1..=cfg.max_cohorts.max(1));
    let mut injections: Vec<InjectSpec> = (0..cohorts)
        .map(|tag| InjectSpec {
            time: rng.gen_range(1..=last_event),
            cohort: random_cohort(rng, &graph, cfg, tag),
        })
        .collect();
    let model = model_for_mask(rng, model_mask);
    legalize(&mut injections, &model, graph.edge_count());
    let want_faults = match target {
        Some(Feature::FaultShapes(0)) => 0,
        Some(Feature::FaultShapes(_)) => cfg.max_faults.max(1),
        _ => rng.gen_range(0..=cfg.max_faults),
    };
    let faults = (0..want_faults)
        .map(|_| random_fault(rng, &graph, cfg, last_event))
        .collect();
    Scenario {
        topology,
        protocol,
        seed: rng.gen_range(0..u64::MAX),
        horizon,
        cadence: 1,
        deep_stride: rng.gen_range(1..=4),
        shards: 1,
        injections,
        faults,
        model,
        certificate: cfg.certificate,
        closed_loop: None,
    }
}

/// Mutate `base`: one structural tweak per call, so corpus entries
/// drift through the neighborhood of behavior that earned them their
/// place.
pub fn mutate(rng: &mut StdRng, cfg: &GeneratorConfig, base: &Scenario) -> Scenario {
    let mut s = base.clone();
    // Closed-loop scenarios mutate within the closed-loop neighborhood:
    // the open-loop arms (cohorts, faults, protocol swaps) would make
    // them unbuildable or dishonest (the service order is FIFO).
    if let Some(spec) = &mut s.closed_loop {
        match rng.gen_range(0..6u32) {
            0 => s.seed = rng.gen_range(0..u64::MAX),
            1 => spec.shed = ShedSpec::ALL[rng.gen_range(0..4u32) as usize],
            2 => {
                spec.retry = match rng.gen_range(0..4u32) {
                    0 => RetrySpec::None,
                    1 => RetrySpec::Immediate,
                    2 => RetrySpec::Fixed(rng.gen_range(1..=4)),
                    _ => RetrySpec::ExpBackoff(rng.gen_range(1..=4), 16),
                };
            }
            3 => spec.timeout = rng.gen_range(3..=12),
            4 => spec.capacity = rng.gen_range(1..=16),
            _ => {
                // Toggle the outage; keep the horizon covering it.
                spec.pause = match spec.pause {
                    Some(_) => None,
                    None => {
                        let from = rng.gen_range(4..=16u64);
                        Some((from, from + rng.gen_range(4..=24u64)))
                    }
                };
            }
        }
        if let Some((_, until)) = spec.pause {
            s.horizon = s.horizon.max(until + 16);
        }
        return s;
    }
    let graph = s.topology.build();
    match rng.gen_range(0..9u32) {
        // Re-seed: same structure, different protocol randomness.
        0 => s.seed = rng.gen_range(0..u64::MAX),
        // Swap protocol.
        1 => {
            s.protocol = registry::protocol_names()
                .choose(rng)
                .expect("registry is nonempty")
                .to_string();
            // RANDOM owns a custom service order the sharded engine
            // refuses; keep the mutant runnable.
            if s.protocol.eq_ignore_ascii_case("RANDOM") {
                s.shards = 1;
            }
        }
        // Add a cohort.
        2 => {
            let time = rng.gen_range(1..=s.horizon.saturating_sub(16).max(1));
            s.injections.push(InjectSpec {
                time,
                cohort: random_cohort(rng, &graph, cfg, s.injections.len() as u32),
            });
        }
        // Drop a cohort (keep at least one).
        3 => {
            if s.injections.len() > 1 {
                let i = rng.gen_range(0..s.injections.len());
                s.injections.remove(i);
            } else {
                s.seed = rng.gen_range(0..u64::MAX);
            }
        }
        // Grow a cohort.
        4 => {
            let i = rng.gen_range(0..s.injections.len());
            let c = &mut s.injections[i].cohort;
            c.count = (c.count + rng.gen_range(1..=4u32)).min(cfg.max_count * 2);
        }
        // Toggle faults: add one, or clear them.
        5 => {
            if s.faults.is_empty() || rng.gen_bool(0.7) {
                let last = s.horizon.saturating_sub(16).max(1);
                s.faults.push(random_fault(rng, &graph, cfg, last));
            } else {
                s.faults.clear();
            }
        }
        // Toggle the adversary model: attach a single-member model, or
        // lift the constraint entirely.
        6 => {
            if s.model.is_empty() {
                let mask = 1u8 << rng.gen_range(0..4u32);
                s.model = model_for_mask(rng, mask);
            } else {
                s.model.clear();
            }
        }
        // Step along the shard axis: shards are representation, not
        // behavior, so this arm can never change an outcome — the
        // cross-check in `run_scenario` turns any difference it does
        // provoke into a finding. RANDOM has no sharded path (custom
        // service order); re-seed instead.
        7 => {
            if s.protocol.eq_ignore_ascii_case("RANDOM") {
                s.seed = rng.gen_range(0..u64::MAX);
            } else {
                s.shards = [1u32, 2, 4, 8][rng.gen_range(0..4usize)];
            }
        }
        // Flip to closed-loop: the workload replaces the open-loop
        // schedule (and the model, which the dispatch sequence may not
        // satisfy), and the run becomes FIFO over the spec's own line.
        _ => {
            let spec = random_closed_loop(rng, None);
            s.injections.clear();
            s.faults.clear();
            s.model.clear();
            s.shards = 1;
            s.protocol = "FIFO".into();
            s.topology = TopologySpec::Line(spec.path_len.max(1));
            let last_event = spec.pause.map_or(0, |(_, until)| until);
            s.horizon = s.horizon.max(last_event + 16);
            s.closed_loop = Some(spec);
            return s;
        }
    }
    // A structural tweak can push the schedule past the (possibly
    // freshly attached) model; clamp it back to legality so mutants
    // run clean rather than tripping the validator.
    legalize(&mut s.injections, &s.model, graph.edge_count());
    s
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::run::{run_scenario, Outcome};
    use rand::SeedableRng;

    #[test]
    fn generated_scenarios_build_and_run() {
        let cfg = GeneratorConfig::default();
        let mut rng = StdRng::seed_from_u64(42);
        for i in 0..40 {
            let s = generate(&mut rng, &cfg, None);
            s.build()
                .unwrap_or_else(|e| panic!("scenario {i} unbuildable: {e}\n{s:?}"));
            match run_scenario(&s) {
                Outcome::Clean(_) => {}
                other => panic!("scenario {i}: expected clean, got {other:?}"),
            }
        }
    }

    #[test]
    fn generation_is_deterministic_per_seed() {
        let cfg = GeneratorConfig::default();
        let mut a = StdRng::seed_from_u64(7);
        let mut b = StdRng::seed_from_u64(7);
        for _ in 0..10 {
            assert_eq!(
                generate(&mut a, &cfg, None).fingerprint(),
                generate(&mut b, &cfg, None).fingerprint()
            );
        }
    }

    #[test]
    fn steering_forces_the_targeted_axis() {
        let cfg = GeneratorConfig::default();
        let mut rng = StdRng::seed_from_u64(3);
        for i in 0..9u8 {
            let s = generate(&mut rng, &cfg, Some(Feature::Protocol(i)));
            assert_eq!(s.protocol, registry::protocol_names()[i as usize]);
        }
        for f in 0..TopologySpec::FAMILIES as u8 {
            let s = generate(&mut rng, &cfg, Some(Feature::Topology(f)));
            assert_eq!(s.topology.family(), f);
        }
        for m in [0u8, 1, 2, 4, 8, 3, 5, 9, 12, 15] {
            let s = generate(&mut rng, &cfg, Some(Feature::Model(m)));
            assert_eq!(s.model_mask(), m, "steering must force the model axis");
        }
        for shed in 0..4u8 {
            let s = generate(&mut rng, &cfg, Some(Feature::ClosedLoop(shed)));
            let spec = s.closed_loop.expect("steering forces a closed loop");
            assert_eq!(spec.shed.index(), shed);
            assert!(s.injections.is_empty() && s.faults.is_empty());
        }
    }

    #[test]
    fn steered_closed_loop_scenarios_run_clean_for_every_shed() {
        let cfg = GeneratorConfig::default();
        let mut rng = StdRng::seed_from_u64(17);
        for shed in 0..4u8 {
            for _ in 0..5 {
                let s = generate(&mut rng, &cfg, Some(Feature::ClosedLoop(shed)));
                s.build()
                    .unwrap_or_else(|e| panic!("closed-loop scenario unbuildable: {e}\n{s:?}"));
                match run_scenario(&s) {
                    Outcome::Clean(stats) => {
                        assert_eq!(stats.steps, s.horizon);
                        assert!(stats.sentinel_rounds > 0, "sentinel watches the loop");
                    }
                    other => panic!("shed {shed}: expected clean, got {other:?}\n{s:?}"),
                }
            }
        }
    }

    #[test]
    fn closed_loop_mutations_stay_closed_loop_and_buildable() {
        let cfg = GeneratorConfig::default();
        let mut rng = StdRng::seed_from_u64(23);
        let mut s = generate(&mut rng, &cfg, Some(Feature::ClosedLoop(0)));
        for i in 0..40 {
            s = mutate(&mut rng, &cfg, &s);
            assert!(s.closed_loop.is_some(), "mutation {i} detached the loop");
            s.build()
                .unwrap_or_else(|e| panic!("mutation {i} unbuildable: {e}\n{s:?}"));
        }
    }

    #[test]
    fn generator_reaches_every_model_variant_within_budget() {
        // The unsteered generator must surface the whole model
        // alphabet — no model, each single member, and at least one
        // composition — within a bounded draw budget, and every
        // legalized schedule must satisfy its own declared model.
        let cfg = GeneratorConfig::default();
        let mut rng = StdRng::seed_from_u64(20);
        let mut seen = std::collections::BTreeSet::new();
        for _ in 0..400 {
            let s = generate(&mut rng, &cfg, None);
            seen.insert(s.model_mask());
            if !s.model.is_empty() {
                let mut check =
                    AdversaryModelSpec::new(s.model.clone()).build(s.topology.build().edge_count());
                let mut injections = s.injections.clone();
                injections.sort_by_key(|i| i.time);
                for inj in &injections {
                    let edges: Vec<EdgeId> = inj.cohort.route.iter().map(|&e| EdgeId(e)).collect();
                    for _ in 0..inj.cohort.count {
                        check
                            .observe_route(&edges, inj.time)
                            .expect("legalized schedule must satisfy its model");
                    }
                }
            }
        }
        for mask in [0u8, 1, 2, 4, 8] {
            assert!(seen.contains(&mask), "model mask {mask} never generated");
        }
        assert!(
            seen.iter().any(|m| m.count_ones() >= 2),
            "no composed model generated within the budget"
        );
    }

    #[test]
    fn mutations_stay_buildable() {
        let cfg = GeneratorConfig::default();
        let mut rng = StdRng::seed_from_u64(9);
        let mut s = generate(&mut rng, &cfg, None);
        for i in 0..60 {
            s = mutate(&mut rng, &cfg, &s);
            s.build()
                .unwrap_or_else(|e| panic!("mutation {i} unbuildable: {e}\n{s:?}"));
        }
    }

    #[test]
    fn mutator_reaches_the_shard_axis_and_stays_runnable() {
        // Walk mutation chains from fresh draws: the shard arm must
        // fire (shards > 1 appears), it must never pair shards with
        // RANDOM, and every sharded mutant must survive the
        // sharded-vs-sequential cross-check inside `run_scenario`.
        let cfg = GeneratorConfig::default();
        let mut rng = StdRng::seed_from_u64(31);
        let mut sharded_runs = 0u32;
        for _ in 0..12 {
            let mut s = generate(&mut rng, &cfg, None);
            for _ in 0..8 {
                s = mutate(&mut rng, &cfg, &s);
                if s.protocol.eq_ignore_ascii_case("RANDOM") {
                    assert_eq!(s.shards, 1, "RANDOM has no sharded path\n{s:?}");
                }
                if s.closed_loop.is_some() {
                    assert_eq!(s.shards, 1, "closed-loop runs are sequential\n{s:?}");
                }
                if s.shards > 1 && sharded_runs < 6 {
                    sharded_runs += 1;
                    match run_scenario(&s) {
                        Outcome::Clean(_) | Outcome::Breach(_, _) | Outcome::Overrate(_, _) => {}
                        Outcome::Invalid(e) => {
                            panic!("sharded mutant invalid (cross-check?): {e}\n{s:?}")
                        }
                    }
                }
            }
        }
        assert!(
            sharded_runs > 0,
            "the shard arm never fired in 96 mutations"
        );
    }

    #[test]
    fn random_routes_are_simple_paths() {
        let mut rng = StdRng::seed_from_u64(5);
        for spec in [
            TopologySpec::Ring(6),
            TopologySpec::Grid(3, 3),
            TopologySpec::Complete(4),
        ] {
            let graph = spec.build();
            for _ in 0..50 {
                let route = random_route(&mut rng, &graph, 8);
                let edges: Vec<EdgeId> = route.iter().map(|&e| EdgeId(e)).collect();
                aqt_graph::Route::new(&graph, edges)
                    .unwrap_or_else(|e| panic!("invalid route {route:?} on {spec:?}: {e}"));
            }
        }
    }
}
