//! Behavioral coverage: which regions of run-behavior space the
//! campaign has exercised.
//!
//! Coverage is *observed*, not declared: features are derived from the
//! scenario plus what the run actually did (telemetry counters and
//! metric peaks, log2-bucketed), so two scenarios that look different
//! but behave identically land in the same buckets, and a mutation
//! that unlocks new behavior registers as novelty even when the
//! scenario diff is tiny. The map is a `BTreeMap` — deterministic
//! iteration order is what keeps whole campaigns reproducible per
//! seed.

use std::collections::BTreeMap;

use crate::run::RunStats;
use crate::scenario::Scenario;

/// `floor(log2(x)) + 1`, with 0 reserved for `x == 0` — the bucketing
/// that turns unbounded counters into a small feature alphabet.
pub fn bucket(x: u64) -> u8 {
    (64 - x.leading_zeros()) as u8
}

/// One coordinate of behavior space. The discrete axes (protocol,
/// topology family, fault shapes) partition the search space; the
/// bucketed axes record how hard the run actually pushed the engine.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord)]
pub enum Feature {
    /// Protocol registry index.
    Protocol(u8),
    /// Topology family (see `TopologySpec::family`).
    Topology(u8),
    /// log2 bucket of the materialized edge count.
    GraphEdges(u8),
    /// Bitmask of fault shapes present (outage=1, drop=2, dup=4,
    /// burst=8).
    FaultShapes(u8),
    /// Bitmask of adversary-model member kinds (rate=1, window=2,
    /// burst-local=4, buffer-bound=8; 0 = unconstrained). See
    /// [`Scenario::model_mask`](crate::scenario::Scenario::model_mask).
    Model(u8),
    /// log2 bucket of packets injected (schedule + bursts).
    Injected(u8),
    /// log2 bucket of the peak backlog.
    PeakBacklog(u8),
    /// log2 bucket of the peak queue length.
    PeakQueue(u8),
    /// log2 bucket of the worst per-buffer wait.
    PeakWait(u8),
    /// log2 bucket of total edge crossings (telemetry counter).
    Crossings(u8),
    /// log2 bucket of packets dropped by faults.
    Dropped(u8),
    /// log2 bucket of steps actually run.
    Steps(u8),
    /// Closed-loop workload axis: the shed-discipline index
    /// (see [`crate::scenario::ShedSpec::index`]). Present only for
    /// closed-loop scenarios, so hitting it at all is novelty.
    ClosedLoop(u8),
}

/// The features of one completed (or breached) run.
pub fn features_of(scenario: &Scenario, protocol_index: u8, stats: &RunStats) -> Vec<Feature> {
    let mut shapes = 0u8;
    for f in &scenario.faults {
        shapes |= match f {
            crate::scenario::FaultSpec::Outage { .. } => 1,
            crate::scenario::FaultSpec::Drop { .. } => 2,
            crate::scenario::FaultSpec::Duplicate { .. } => 4,
            crate::scenario::FaultSpec::Burst { .. } => 8,
        };
    }
    let mut features = vec![
        Feature::Protocol(protocol_index),
        Feature::Topology(scenario.topology.family()),
        Feature::GraphEdges(bucket(stats.edges)),
        Feature::FaultShapes(shapes),
        Feature::Model(scenario.model_mask()),
        Feature::Injected(bucket(stats.injected)),
        Feature::PeakBacklog(bucket(stats.peak_backlog)),
        Feature::PeakQueue(bucket(stats.peak_queue)),
        Feature::PeakWait(bucket(stats.peak_wait)),
        Feature::Crossings(bucket(stats.crossings)),
        Feature::Dropped(bucket(stats.dropped)),
        Feature::Steps(bucket(stats.steps)),
    ];
    if let Some(cl) = &scenario.closed_loop {
        features.push(Feature::ClosedLoop(cl.shed.index()));
    }
    features
}

/// Hit counts per feature. Novelty (a feature seen for the first time)
/// is what promotes a scenario into the corpus; hit counts are what
/// the generator steers away from.
#[derive(Debug, Clone, Default)]
pub struct CoverageMap {
    hits: BTreeMap<Feature, u64>,
}

impl CoverageMap {
    pub fn new() -> Self {
        CoverageMap::default()
    }

    /// Record one run's features; returns how many were novel.
    pub fn record(&mut self, features: &[Feature]) -> usize {
        let mut novel = 0;
        for &f in features {
            let slot = self.hits.entry(f).or_insert(0);
            if *slot == 0 {
                novel += 1;
            }
            *slot += 1;
        }
        novel
    }

    /// Number of distinct features seen.
    pub fn distinct(&self) -> usize {
        self.hits.len()
    }

    /// Total feature observations.
    pub fn total_hits(&self) -> u64 {
        self.hits.values().sum()
    }

    /// The least-hit feature (ties broken by `Feature` order, so the
    /// answer is deterministic). `None` before any run.
    pub fn rarest(&self) -> Option<Feature> {
        self.hits
            .iter()
            .min_by_key(|&(f, &n)| (n, *f))
            .map(|(&f, _)| f)
    }

    /// Hit count of `f` (0 when unseen).
    pub fn hits(&self, f: Feature) -> u64 {
        self.hits.get(&f).copied().unwrap_or(0)
    }

    /// Deterministic iteration over (feature, hits).
    pub fn iter(&self) -> impl Iterator<Item = (Feature, u64)> + '_ {
        self.hits.iter().map(|(&f, &n)| (f, n))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bucket_is_log2_with_zero_reserved() {
        assert_eq!(bucket(0), 0);
        assert_eq!(bucket(1), 1);
        assert_eq!(bucket(2), 2);
        assert_eq!(bucket(3), 2);
        assert_eq!(bucket(4), 3);
        assert_eq!(bucket(1023), 10);
        assert_eq!(bucket(1024), 11);
        assert_eq!(bucket(u64::MAX), 64);
    }

    #[test]
    fn record_counts_novelty_once() {
        let mut map = CoverageMap::new();
        let fs = [Feature::Protocol(0), Feature::Topology(1)];
        assert_eq!(map.record(&fs), 2);
        assert_eq!(map.record(&fs), 0);
        assert_eq!(map.record(&[Feature::Protocol(0), Feature::Topology(2)]), 1);
        assert_eq!(map.distinct(), 3);
        assert_eq!(map.total_hits(), 6);
        assert_eq!(map.hits(Feature::Protocol(0)), 3);
    }

    #[test]
    fn rarest_is_deterministic_under_ties() {
        let mut map = CoverageMap::new();
        assert_eq!(map.rarest(), None);
        map.record(&[Feature::Topology(4), Feature::Protocol(2)]);
        // Both hit once: Protocol(2) < Topology(4) in Feature order.
        assert_eq!(map.rarest(), Some(Feature::Protocol(2)));
        map.record(&[Feature::Protocol(2)]);
        assert_eq!(map.rarest(), Some(Feature::Topology(4)));
    }
}
