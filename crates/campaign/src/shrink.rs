//! Deterministic breach minimization.
//!
//! Given a scenario whose run breaches an invariant, the shrinker
//! searches for a strictly smaller scenario (by
//! [`Scenario::weight`]) that still breaches the *same*
//! [`InvariantKind`], by re-running candidate reductions: truncate the
//! horizon to the breach step, drop whole injections and fault
//! entries, halve and decrement cohort counts, truncate routes, and
//! swap in smaller topologies. A candidate is accepted only if its
//! fresh run breaches identically — the shrinker never reasons about
//! the engine, it only re-executes, so an accepted reduction is a
//! verified repro by construction. The pass order and tie-breaks are
//! fixed, so shrinking the same scenario always yields the same
//! minimum (ddmin-style greedy descent, restarted after every
//! acceptance).

use aqt_sim::{InvariantKind, Time, ViolationReport};

use crate::run::{run_scenario, Outcome};
use crate::scenario::{FaultSpec, Scenario};

/// Upper bound on candidate re-runs per shrink, so a pathological
/// scenario cannot stall a campaign. Greedy descent on the small
/// scenarios the generator produces converges in far fewer.
const MAX_ATTEMPTS: u64 = 512;

/// The result of minimizing one breach.
#[derive(Debug)]
pub struct ShrinkOutcome {
    /// The smallest scenario found (== the input when nothing smaller
    /// still breached).
    pub scenario: Scenario,
    /// The report of the smallest scenario's breach (re-verified by
    /// an actual run).
    pub report: Box<ViolationReport>,
    /// Candidate runs executed.
    pub attempts: u64,
    /// Reductions accepted.
    pub accepted: u64,
}

/// Truncate `s` to end at `horizon`: drop events past it, clamp
/// outages into it. `None` when nothing changes.
fn truncated(s: &Scenario, horizon: Time) -> Option<Scenario> {
    if horizon >= s.horizon {
        return None;
    }
    let mut t = s.clone();
    t.horizon = horizon;
    t.injections.retain(|i| i.time <= horizon);
    t.faults.retain_mut(|f| match f {
        FaultSpec::Outage { from, until, .. } => {
            *until = (*until).min(horizon);
            *from <= horizon
        }
        FaultSpec::Drop { time, .. }
        | FaultSpec::Duplicate { time, .. }
        | FaultSpec::Burst { time, .. } => *time <= horizon,
    });
    Some(t)
}

/// The candidate reductions of `s`, smallest-change-last so the big
/// cuts (horizon, whole injections, whole faults) are tried first.
fn candidates(s: &Scenario, breach_time: Time) -> Vec<Scenario> {
    let mut out = Vec::new();
    // 1. End the run right where the breach was observed.
    out.extend(truncated(s, breach_time));
    // 2. Drop one injection at a time.
    for i in 0..s.injections.len() {
        let mut t = s.clone();
        t.injections.remove(i);
        out.push(t);
    }
    // 3. Drop one fault entry at a time.
    for i in 0..s.faults.len() {
        let mut t = s.clone();
        t.faults.remove(i);
        out.push(t);
    }
    // 4. Halve, then decrement, cohort counts.
    for i in 0..s.injections.len() {
        if s.injections[i].cohort.count > 1 {
            let mut t = s.clone();
            t.injections[i].cohort.count /= 2;
            out.push(t);
            let mut t = s.clone();
            t.injections[i].cohort.count -= 1;
            out.push(t);
        }
    }
    // 5. Truncate routes: first half, then all-but-last-edge.
    for i in 0..s.injections.len() {
        let len = s.injections[i].cohort.route.len();
        if len > 1 {
            let mut t = s.clone();
            t.injections[i].cohort.route.truncate(len.div_ceil(2));
            out.push(t);
            let mut t = s.clone();
            t.injections[i].cohort.route.truncate(len - 1);
            out.push(t);
        }
    }
    // 6. Drop one adversary-model member at a time: validation can
    //    only reject schedules, so a breach that survived under the
    //    model also breaches without it — the member is chaff unless
    //    the breach *is* the validator (Overrate never reaches here).
    for i in 0..s.model.len() {
        let mut t = s.clone();
        t.model.remove(i);
        out.push(t);
    }
    //    Run sequentially: shards are representation, not behavior, so
    //    a sharded breach reproduces at 1 shard — and the sequential
    //    repro is the smaller artifact (no cross-check replica run).
    if s.shards > 1 {
        let mut t = s.clone();
        t.shards = 1;
        out.push(t);
    }
    // 7. Shrink the closed-loop workload: fewer clients, fewer
    //    attempts, a smaller queue, no outage, a shorter path (the
    //    topology follows the path so the lowered config stays
    //    consistent). Dropping the workload entirely is also offered —
    //    it never survives re-run unless the breach was independent of
    //    the loop.
    if let Some(spec) = &s.closed_loop {
        for cand in spec.shrink_candidates() {
            let mut t = s.clone();
            t.topology = crate::scenario::TopologySpec::Line(cand.path_len.max(1));
            t.closed_loop = Some(cand);
            out.push(t);
        }
        let mut t = s.clone();
        t.closed_loop = None;
        out.push(t);
    }
    // 8. Smaller topologies (open-loop: routes that no longer fit
    //    simply fail to build and the candidate is rejected by its
    //    run).
    if s.closed_loop.is_none() {
        for topo in s.topology.shrink_candidates() {
            let mut t = s.clone();
            t.topology = topo;
            out.push(t);
        }
    }
    out
}

/// Minimize `scenario`, whose run is known to breach `kind`.
///
/// The returned [`ShrinkOutcome::scenario`] breaches `kind` when
/// re-run (its report is included), and its weight is ≤ the input's —
/// strictly smaller whenever any reduction was accepted.
pub fn shrink(scenario: &Scenario, kind: InvariantKind) -> ShrinkOutcome {
    let mut attempts = 0u64;
    let mut accepted = 0u64;
    // Re-verify the input: its own report is the baseline.
    let mut best_report = match run_scenario(scenario) {
        Outcome::Breach(r, _) if r.violation.kind == kind => r,
        other => panic!("shrink() given a scenario that does not breach {kind:?}: {other:?}"),
    };
    let mut best = scenario.clone();
    'descent: loop {
        let breach_time = best_report.violation.time;
        for cand in candidates(&best, breach_time) {
            if cand.weight() >= best.weight() {
                continue;
            }
            if attempts >= MAX_ATTEMPTS {
                break 'descent;
            }
            attempts += 1;
            if let Outcome::Breach(r, _) = run_scenario(&cand) {
                if r.violation.kind == kind {
                    best = cand;
                    best_report = r;
                    accepted += 1;
                    continue 'descent;
                }
            }
        }
        break;
    }
    ShrinkOutcome {
        scenario: best,
        report: best_report,
        attempts,
        accepted,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::scenario::{CohortSpec, InjectSpec, TopologySpec};
    use aqt_sim::sentinel::CertificateSpec;
    use aqt_sim::Ratio;

    /// A deliberately bloated breaching scenario: the tight certificate
    /// (bound 1) is tripped by the big cohort alone; everything else is
    /// chaff the shrinker should strip.
    fn bloated() -> Scenario {
        Scenario {
            topology: TopologySpec::Line(4),
            protocol: "FIFO".into(),
            seed: 3,
            horizon: 80,
            cadence: 1,
            deep_stride: 1,
            shards: 1,
            injections: vec![
                InjectSpec {
                    time: 1,
                    cohort: CohortSpec {
                        route: vec![0, 1, 2, 3],
                        tag: 0,
                        count: 8,
                    },
                },
                InjectSpec {
                    time: 20,
                    cohort: CohortSpec {
                        route: vec![2, 3],
                        tag: 1,
                        count: 2,
                    },
                },
            ],
            faults: vec![FaultSpec::Drop { edge: 3, time: 40 }],
            model: vec![aqt_sim::ConstraintSpec::BufferBound { bound: 7 }],
            certificate: Some(CertificateSpec {
                window: 1,
                rate: Ratio::new(1, 5),
                d: 4,
                initial: 0,
                time_priority: false,
            }),
            closed_loop: None,
        }
    }

    #[test]
    fn shrink_strips_chaff_and_stays_breaching() {
        let original = bloated();
        let Outcome::Breach(report, _) = run_scenario(&original) else {
            panic!("bloated scenario must breach");
        };
        let kind = report.violation.kind;
        let out = shrink(&original, kind);
        assert!(out.accepted > 0, "nothing was shrunk");
        assert!(
            out.scenario.weight() < original.weight(),
            "shrunk {} !< original {}",
            out.scenario.weight(),
            original.weight()
        );
        assert_eq!(out.report.violation.kind, kind);
        // The chaff is gone: the late injection, the fault, the
        // satisfied model member, and the post-breach horizon slack.
        assert_eq!(out.scenario.injections.len(), 1);
        assert!(out.scenario.faults.is_empty());
        assert!(out.scenario.model.is_empty());
        assert!(out.scenario.horizon <= report.violation.time);
        // Re-running the shrunk scenario reproduces the breach — the
        // emitted regression test will hold.
        let Outcome::Breach(again, _) = run_scenario(&out.scenario) else {
            panic!("shrunk scenario no longer breaches");
        };
        assert_eq!(again.violation, out.report.violation);
    }

    #[test]
    fn shrink_is_deterministic() {
        let original = bloated();
        let a = shrink(&original, InvariantKind::Certificate);
        let b = shrink(&original, InvariantKind::Certificate);
        assert_eq!(a.scenario, b.scenario);
        assert_eq!(a.report.violation, b.report.violation);
        assert_eq!(a.attempts, b.attempts);
        assert_eq!(a.accepted, b.accepted);
    }

    #[test]
    fn sharded_breach_shrinks_to_sequential() {
        let mut s = bloated();
        s.shards = 4;
        let out = shrink(&s, InvariantKind::Certificate);
        assert_eq!(
            out.scenario.shards, 1,
            "the sequential repro is strictly smaller and still breaches"
        );
    }

    #[test]
    #[should_panic(expected = "does not breach")]
    fn shrink_rejects_clean_scenarios() {
        let mut s = bloated();
        s.certificate = None;
        shrink(&s, InvariantKind::Certificate);
    }
}
