//! The stability theorems of Section 4, as exact bound calculators.
//!
//! * **Theorem 4.1** — any greedy protocol, `(w,r)` adversary,
//!   `r ≤ 1/(d+1)`, empty start: no packet stays in one buffer longer
//!   than `⌈wr⌉` steps.
//! * **Theorem 4.3** — time-priority protocols (Definition 4.2; FIFO,
//!   LIS): the same bound already for `r ≤ 1/d`.
//! * **Observation 4.4 / Corollaries 4.5, 4.6** — with an
//!   `S`-initial-configuration and *strict* rate inequality, the bound
//!   becomes `⌈w*·r*⌉` for `w* = ⌈(S+w+1)/(r*−r)⌉`, where `r*` is the
//!   respective threshold (`1/(d+1)` or `1/d`).
//!
//! All arithmetic is exact (integer/rational); these numbers are
//! compared against measured `max_buffer_wait` in experiments E5–E7.

use aqt_sim::{Protocol, Ratio};

/// Exact bound calculator for a `(w, r)` adversary against routes of
/// length at most `d`, optionally with an `S`-initial-configuration.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct StabilityCertificate {
    /// The adversary's window `w`.
    pub window: u64,
    /// The adversary's rate `r`.
    pub rate: Ratio,
    /// Length of the longest packet route, `d`.
    pub d: usize,
    /// `S` of the initial configuration (0 = empty start).
    pub initial: u64,
}

impl StabilityCertificate {
    /// Certificate for an empty-start system.
    pub fn new(window: u64, rate: Ratio, d: usize) -> Self {
        StabilityCertificate {
            window,
            rate,
            d,
            initial: 0,
        }
    }

    /// Certificate for an `S`-initial-configuration (Observation 4.4).
    pub fn with_initial(window: u64, rate: Ratio, d: usize, initial: u64) -> Self {
        StabilityCertificate {
            window,
            rate,
            d,
            initial,
        }
    }

    /// `⌈(S+w+1)/(r* − r)⌉` with `r* = 1/k`, exact. `None` if
    /// `r ≥ 1/k`.
    fn w_star(&self, k: u64) -> Option<u64> {
        let num = self.rate.num();
        let den = self.rate.den();
        // 1/k − num/den = (den − num·k) / (den·k)
        let gap_num = (den as u128).checked_sub(num as u128 * k as u128)?;
        if gap_num == 0 {
            return None;
        }
        let s_w_1 = (self.initial + self.window + 1) as u128;
        // ceil(s_w_1 · den·k / gap_num)
        let prod = s_w_1 * den as u128 * k as u128;
        Some(prod.div_ceil(gap_num) as u64)
    }

    /// Theorem 4.1 / Corollary 4.5: per-buffer delay bound for **any
    /// greedy protocol**. `None` if the rate is too high for the
    /// theorem to apply (`r > 1/(d+1)`, or `r = 1/(d+1)` with a
    /// nonempty initial configuration).
    pub fn greedy_bound(&self) -> Option<u64> {
        let k = self.d as u64 + 1;
        if self.initial == 0 {
            // Theorem 4.1 requires r <= 1/(d+1).
            if self.rate.le_frac(1, k) {
                Some(self.rate.ceil_mul(self.window))
            } else {
                None
            }
        } else {
            // Corollary 4.5 requires r < 1/(d+1); bound ⌈w*/(d+1)⌉.
            let w_star = self.w_star(k)?;
            Some(w_star.div_ceil(k))
        }
    }

    /// Theorem 4.3 / Corollary 4.6: per-buffer delay bound for
    /// **time-priority protocols** (FIFO, LIS). `None` if `r > 1/d`
    /// (or `r = 1/d` with a nonempty initial configuration).
    pub fn time_priority_bound(&self) -> Option<u64> {
        let k = self.d as u64;
        if k == 0 {
            return None;
        }
        if self.initial == 0 {
            if self.rate.le_frac(1, k) {
                Some(self.rate.ceil_mul(self.window))
            } else {
                None
            }
        } else {
            let w_star = self.w_star(k)?;
            Some(w_star.div_ceil(k))
        }
    }

    /// The applicable bound for a given protocol: the time-priority
    /// bound when the protocol qualifies, otherwise the greedy bound.
    pub fn bound_for<P: Protocol>(&self, protocol: &P) -> Option<u64> {
        if protocol.is_time_priority() {
            self.time_priority_bound().or_else(|| self.greedy_bound())
        } else {
            self.greedy_bound()
        }
    }

    /// Observation 4.4's recovery horizon
    /// `w* = ⌈(S+w+1)/(r* − r)⌉`, with `r*` the stability threshold of
    /// the protocol class (`1/d` for time-priority protocols, `1/(d+1)`
    /// for greedy ones). It is the window length after which an
    /// `S`-perturbed system again obeys the empty-start behavior — the
    /// number the fault-recovery experiment (E14) compares measured
    /// re-settling delays against. `None` when the rate is not strictly
    /// below the class threshold (the observation needs `r < r*`).
    pub fn recovery_horizon(&self, time_priority: bool) -> Option<u64> {
        if time_priority && self.d > 0 {
            self.w_star(self.d as u64)
                .or_else(|| self.w_star(self.d as u64 + 1))
        } else {
            self.w_star(self.d as u64 + 1)
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use aqt_protocols::{Fifo, Ntg};

    #[test]
    fn theorem_4_1_bound_is_ceil_wr() {
        // d = 3, r = 1/4 = 1/(d+1), w = 10 -> ⌈10/4⌉ = 3
        let c = StabilityCertificate::new(10, Ratio::new(1, 4), 3);
        assert_eq!(c.greedy_bound(), Some(3));
        // r slightly above 1/(d+1): theorem does not apply
        let c = StabilityCertificate::new(10, Ratio::new(26, 100), 3);
        assert_eq!(c.greedy_bound(), None);
    }

    #[test]
    fn theorem_4_3_extends_to_inv_d() {
        // d = 3, r = 1/3: time-priority OK, greedy not
        let c = StabilityCertificate::new(9, Ratio::new(1, 3), 3);
        assert_eq!(c.time_priority_bound(), Some(3));
        assert_eq!(c.greedy_bound(), None);
    }

    #[test]
    fn bound_for_dispatches_on_protocol_class() {
        let c = StabilityCertificate::new(9, Ratio::new(1, 3), 3);
        assert_eq!(c.bound_for(&Fifo), Some(3));
        assert_eq!(c.bound_for(&Ntg), None);
    }

    #[test]
    fn corollary_4_5_initial_configuration() {
        // d = 2, r = 1/4 < 1/3, w = 5, S = 20:
        // w* = ⌈(20+5+1)/(1/3 − 1/4)⌉ = ⌈26·12⌉ = 312; bound = ⌈312/3⌉ = 104
        let c = StabilityCertificate::with_initial(5, Ratio::new(1, 4), 2, 20);
        assert_eq!(c.greedy_bound(), Some(104));
        // r = 1/3 exactly: strict inequality required -> None
        let c = StabilityCertificate::with_initial(5, Ratio::new(1, 3), 2, 20);
        assert_eq!(c.greedy_bound(), None);
    }

    #[test]
    fn corollary_4_6_initial_configuration() {
        // d = 2, r = 1/4 < 1/2, w = 5, S = 20:
        // w* = ⌈26/(1/2 − 1/4)⌉ = 104; bound = ⌈104/2⌉ = 52
        let c = StabilityCertificate::with_initial(5, Ratio::new(1, 4), 2, 20);
        assert_eq!(c.time_priority_bound(), Some(52));
    }

    #[test]
    fn empty_start_bounds_do_not_depend_on_s() {
        let a = StabilityCertificate::new(12, Ratio::new(1, 5), 4);
        assert_eq!(a.greedy_bound(), Some(3)); // ⌈12/5⌉
                                               // The bound is independent of any network parameter other than
                                               // d — the paper highlights this ("independent of network
                                               // parameters, depending only on the parameters of the
                                               // adversary").
        let b = StabilityCertificate::new(12, Ratio::new(1, 5), 3);
        assert_eq!(b.greedy_bound(), Some(3));
    }

    #[test]
    fn recovery_horizon_matches_w_star() {
        // d = 2, r = 1/4, w = 5, S = 20 (the Corollary 4.5/4.6 cases):
        // greedy r* = 1/3: w* = ⌈26/(1/12)⌉ = 312
        // time-priority r* = 1/2: w* = ⌈26/(1/4)⌉ = 104
        let c = StabilityCertificate::with_initial(5, Ratio::new(1, 4), 2, 20);
        assert_eq!(c.recovery_horizon(false), Some(312));
        assert_eq!(c.recovery_horizon(true), Some(104));
        // The bounds are exactly ⌈w*/k⌉ of those horizons.
        assert_eq!(c.greedy_bound(), Some(312u64.div_ceil(3)));
        assert_eq!(c.time_priority_bound(), Some(104u64.div_ceil(2)));
        // r at the threshold: no recovery guarantee.
        let c = StabilityCertificate::with_initial(5, Ratio::new(1, 3), 2, 20);
        assert_eq!(c.recovery_horizon(false), None);
        // ...but a time-priority protocol still recovers (r < 1/d).
        assert!(c.recovery_horizon(true).is_some());
    }

    #[test]
    fn degenerate_d_zero() {
        let c = StabilityCertificate::new(5, Ratio::new(1, 2), 0);
        assert_eq!(c.time_priority_bound(), None);
        // greedy: d+1 = 1, r <= 1 always true
        assert_eq!(c.greedy_bound(), Some(3));
    }
}
