//! # aqt-core
//!
//! The headline results of *New stability results for adversarial
//! queuing* (Lotker, Patt-Shamir, Rosén; SPAA 2002) as a library:
//!
//! * [`instability::InstabilityConstruction`] — **Theorem 3.17**: for
//!   every `ε > 0` there is a network `G_ε` and a rate-`(1/2 + ε)`
//!   adversary under which FIFO is unstable. One call builds the
//!   network, composes the adversaries of Lemmas 3.15, 3.13/3.6 and
//!   3.16, runs them under exact rate validation, and reports the
//!   measured queue blow-up per iteration.
//! * [`theory::StabilityCertificate`] — **Theorems 4.1/4.3,
//!   Corollaries 4.5/4.6**: closed-form per-buffer delay bounds
//!   (`⌈wr⌉`, and their initial-configuration variants) for greedy and
//!   time-priority protocols, plus runtime monitors that check a
//!   simulation never exceeds them.
//! * [`verify`] — the gadget invariant `C(S, F_n)` of Definition 3.5
//!   as an executable check.
//! * [`experiments`] — typed runners for every experiment in
//!   `EXPERIMENTS.md` (E1–E10), shared by the integration tests, the
//!   examples and the Criterion benches.

pub mod experiments;
pub mod instability;
pub mod theory;
pub mod verify;

pub use instability::{InstabilityConfig, InstabilityConstruction, InstabilityRun};
pub use theory::StabilityCertificate;
