//! Typed runners for every reproduced claim (`EXPERIMENTS.md` E1–E17).
//!
//! The integration tests run these at reduced scale, the Criterion
//! benches at full scale; both print the same table rows so
//! paper-vs-measured comparisons live in one place.

use std::sync::Arc;

use aqt_adversary::baselines::run_baseball_pump;
use aqt_adversary::stochastic::{random_routes, InjectionStyle, SaturatingAdversary};
use aqt_adversary::{lemma315, lemma316, lemma36, GadgetParams};
use aqt_analysis::stability::{classify_series, Verdict};
use aqt_graph::{topologies, DaisyChain, EdgeId, FnGadget, Graph, Route};
use aqt_protocols::{by_name, protocol_names, Fifo};
use aqt_sim::{
    AdversaryModelSpec, ConstraintSpec, Engine, EngineConfig, FaultPlan, Injection, Protocol,
    Provenance, Ratio, SharedSink, SimError, TelemetryConfig, TelemetryEvent, Time,
};
use aqt_workload::{
    ClientConfig, ClosedLoop, ClosedLoopConfig, GoodputMeter, RetryPolicy, ServicePolicy, Shed,
};

use crate::instability::{InstabilityConfig, InstabilityConstruction};
use crate::theory::StabilityCertificate;
use crate::verify::check_c_invariant;

// ---------------------------------------------------------------------
// E1 — Theorem 3.17: FIFO unstable at r = 1/2 + ε.
// ---------------------------------------------------------------------

/// One row of experiment E1.
#[derive(Debug, Clone)]
pub struct E1Row {
    /// `ε` as (num, den).
    pub eps: (u64, u64),
    /// The rate `r = 1/2 + ε`.
    pub rate: f64,
    /// Gadget length `n`, chain length `M`, seed `S*`.
    pub n: usize,
    /// Chain length `M`.
    pub m: usize,
    /// Initial queue `S*`.
    pub s_star: u64,
    /// Fresh-queue sizes at iteration boundaries (`S₁, S₄, S₄', …`).
    pub s_series: Vec<u64>,
    /// Geometric-mean per-iteration growth.
    pub growth: f64,
    /// Did every iteration grow?
    pub diverged: bool,
    /// Steps simulated.
    pub steps: Time,
}

/// Run E1 for each `ε`, `iterations` closed-loop iterations each.
pub fn e1_fifo_instability(
    eps_list: &[(u64, u64)],
    iterations: usize,
) -> Result<Vec<E1Row>, SimError> {
    let mut rows = Vec::new();
    for &(num, den) in eps_list {
        let mut cfg = InstabilityConfig::new(num, den);
        cfg.iterations = iterations;
        let c = InstabilityConstruction::new(cfg);
        let run = c.run()?;
        let mut s_series = vec![run.s_star];
        s_series.extend(run.iterations.iter().map(|it| it.s_end));
        let growth = aqt_analysis::stats::geometric_growth(
            &s_series.iter().map(|&s| s as f64).collect::<Vec<_>>(),
        )
        .unwrap_or(0.0);
        rows.push(E1Row {
            eps: (num, den),
            rate: run.params.rate.as_f64(),
            n: run.params.n,
            m: run.m,
            s_star: run.s_star,
            s_series,
            growth,
            diverged: run.diverged,
            steps: run.total_steps,
        });
    }
    Ok(rows)
}

// ---------------------------------------------------------------------
// E2 — Lemma 3.6: one gadget step amplifies by ≥ (1 + ε).
// ---------------------------------------------------------------------

/// One row of experiment E2 (and E3, which shares the shape).
#[derive(Debug, Clone)]
pub struct AmplifyRow {
    /// `ε` as (num, den).
    pub eps: (u64, u64),
    /// Input queue size `S`.
    pub s: u64,
    /// Measured output queue `S'` (the `min` of the two invariant
    /// populations).
    pub s_prime_measured: u64,
    /// Theoretical `S' = ⌊2S(1−R_n)⌋`.
    pub s_prime_theory: u64,
    /// Measured amplification `S'/S`.
    pub amp_measured: f64,
    /// `1 + ε` — the bound the lemma promises.
    pub amp_promised: f64,
    /// Did `C(S', F')` hold exactly at the predicted finish time?
    pub invariant_exact: bool,
}

/// Seed an exact `C(s, F)` state into `eng` for gadget `g`.
fn seed_c_invariant(
    eng: &mut Engine<Fifo>,
    graph: &Graph,
    g: &aqt_graph::GadgetHandles,
    s: u64,
) -> Result<(), SimError> {
    let n = g.n();
    for k in 0..s {
        let i = (k as usize) % n;
        let mut edges: Vec<_> = g.e_path[i..].to_vec();
        edges.push(g.egress);
        eng.seed(Route::new(graph, edges)?, 1)?;
    }
    let mut a_edges = vec![g.ingress];
    a_edges.extend_from_slice(&g.f_path);
    a_edges.push(g.egress);
    let a_route = Route::new(graph, a_edges)?;
    for _ in 0..s {
        eng.seed(a_route.clone(), 2)?;
    }
    Ok(())
}

/// Run E2 for each `ε` and each `S = ⌈S₀·mult⌉`.
///
/// Seeds `C(S, F)` directly (an initial configuration per Observation
/// 4.4), applies the Lemma 3.6 adversary, and measures `C(S', F')`.
pub fn e2_gadget_amplification(
    eps_list: &[(u64, u64)],
    s_multipliers: &[f64],
) -> Result<Vec<AmplifyRow>, SimError> {
    let mut rows = Vec::new();
    for &(num, den) in eps_list {
        let params = GadgetParams::new(num, den);
        let chain = DaisyChain::new(params.n, 2);
        let graph = Arc::new(chain.graph.clone());
        for &mult in s_multipliers {
            let s = ((params.s0 as f64) * mult).ceil() as u64;
            let mut eng = Engine::new(
                Arc::clone(&graph),
                Fifo,
                EngineConfig {
                    validate: Some(AdversaryModelSpec::rate(params.rate)),
                    validate_reroutes: true,
                    ..Default::default()
                },
            );
            seed_c_invariant(&mut eng, &graph, &chain.gadgets[0], s)?;
            let step = lemma36::build(
                &graph,
                &chain.gadgets[0],
                &chain.gadgets[1],
                &params,
                s,
                0,
                8,
            )?;
            step.schedule.run(&mut eng, step.finish)?;
            let inv = check_c_invariant(&eng, &chain.gadgets[1]);
            // F must be empty (Lemma 3.6's second conclusion).
            let f_empty = check_c_invariant(&eng, &chain.gadgets[0]);
            let measured = inv.s_effective();
            rows.push(AmplifyRow {
                eps: (num, den),
                s,
                s_prime_measured: measured,
                s_prime_theory: step.s_prime,
                amp_measured: measured as f64 / s as f64,
                amp_promised: 1.0 + Ratio::new(num, den).as_f64(),
                invariant_exact: inv.holds().is_some()
                    && f_empty.e_total == 0
                    && f_empty.a_count + f_empty.a_foreign == 0,
            });
        }
    }
    Ok(rows)
}

// ---------------------------------------------------------------------
// E3 — Lemma 3.15: bootstrap from a flat queue.
// ---------------------------------------------------------------------

/// Run E3: seed `2S` unit-route packets at the ingress, apply the
/// bootstrap adversary, measure `C(S', F)`.
pub fn e3_bootstrap(
    eps_list: &[(u64, u64)],
    s_multipliers: &[f64],
) -> Result<Vec<AmplifyRow>, SimError> {
    let mut rows = Vec::new();
    for &(num, den) in eps_list {
        let params = GadgetParams::new(num, den);
        let gadget = FnGadget::new(params.n);
        let graph = Arc::new(gadget.graph.clone());
        for &mult in s_multipliers {
            let s = ((params.s0 as f64) * mult).ceil() as u64;
            let mut eng = Engine::new(
                Arc::clone(&graph),
                Fifo,
                EngineConfig {
                    validate: Some(AdversaryModelSpec::rate(params.rate)),
                    validate_reroutes: true,
                    ..Default::default()
                },
            );
            let unit = Route::single(&graph, gadget.handles.ingress)?;
            for _ in 0..2 * s {
                eng.seed(unit.clone(), 0)?;
            }
            let boot = lemma315::build(&graph, &gadget.handles, &params, s, 0, 8)?;
            boot.schedule.run(&mut eng, boot.finish)?;
            let inv = check_c_invariant(&eng, &gadget.handles);
            let measured = inv.s_effective();
            rows.push(AmplifyRow {
                eps: (num, den),
                s,
                s_prime_measured: measured,
                s_prime_theory: boot.s_prime,
                amp_measured: measured as f64 / s as f64,
                amp_promised: 1.0 + Ratio::new(num, den).as_f64(),
                invariant_exact: inv.holds().is_some(),
            });
        }
    }
    Ok(rows)
}

// ---------------------------------------------------------------------
// E4 — Lemma 3.16: the stitch retains ≈ r³ of the queue, fresh.
// ---------------------------------------------------------------------

/// One row of experiment E4.
#[derive(Debug, Clone)]
pub struct E4Row {
    /// Rate used.
    pub rate: f64,
    /// Input queue `S`.
    pub s: u64,
    /// Fresh packets measured at `a_2` when the network quiesces.
    pub fresh_measured: u64,
    /// `⌊r⌊r⌊rS⌋⌋⌋` — the scheduled fresh count.
    pub fresh_scheduled: u64,
    /// `r³` (the paper's retention factor).
    pub r_cubed: f64,
    /// Measured retention `fresh/S`.
    pub retention: f64,
}

/// Run E4 on a 3-edge line for each rate.
pub fn e4_stitch(rates: &[(u64, u64)], s: u64) -> Result<Vec<E4Row>, SimError> {
    let mut rows = Vec::new();
    for &(num, den) in rates {
        let rate = Ratio::new(num, den);
        let graph = Arc::new(topologies::line(3));
        let e: Vec<_> = graph.edge_ids().collect();
        let mut eng = Engine::new(
            Arc::clone(&graph),
            Fifo,
            EngineConfig {
                validate: Some(AdversaryModelSpec::rate(rate)),
                ..Default::default()
            },
        );
        let unit = Route::single(&graph, e[0])?;
        for _ in 0..s {
            eng.seed(unit.clone(), 0)?;
        }
        let stitch = lemma316::build(&graph, e[0], e[1], e[2], rate, s, 0, 8)?;
        let fresh_tag = stitch.tags.fresh;
        let scheduled = stitch.fresh_count;
        stitch.schedule.run(&mut eng, stitch.finish)?;
        // settle until everything but fresh is absorbed
        let mut settle = 0;
        loop {
            let only_a2 = eng.backlog() == eng.queue_len(e[2]) as u64;
            let front_fresh = eng
                .queue_iter(e[2])
                .next()
                .is_none_or(|p| p.tag == fresh_tag);
            if (only_a2 && front_fresh) || settle > 4 * s {
                break;
            }
            eng.run_quiet(1)?;
            settle += 1;
        }
        let fresh = eng.queue_iter(e[2]).filter(|p| p.tag == fresh_tag).count() as u64;
        let r = rate.as_f64();
        rows.push(E4Row {
            rate: r,
            s,
            fresh_measured: fresh,
            fresh_scheduled: scheduled,
            r_cubed: r * r * r,
            retention: fresh as f64 / s as f64,
        });
    }
    Ok(rows)
}

// ---------------------------------------------------------------------
// E5/E6/E7 — Theorems 4.1/4.3, Corollaries 4.5/4.6.
// ---------------------------------------------------------------------

/// Topologies used by the stability experiments.
pub fn stability_topologies() -> Vec<(&'static str, Graph)> {
    vec![
        ("ring-8", topologies::ring(8)),
        ("grid-4x4", topologies::grid(4, 4)),
        ("torus-4x4", topologies::torus(4, 4)),
        ("hypercube-3", topologies::hypercube(3)),
        ("baseball", topologies::baseball().0),
    ]
}

/// One row of experiments E5/E6/E7.
#[derive(Debug, Clone)]
pub struct StabilityRow {
    /// Protocol name.
    pub protocol: String,
    /// Topology name.
    pub topology: String,
    /// Longest route length `d` of the adversary's pool.
    pub d: usize,
    /// Adversary window `w` and rate `r`.
    pub w: u64,
    /// The rate.
    pub rate: f64,
    /// The theorem's per-buffer delay bound (`None` = theorem silent).
    pub bound: Option<u64>,
    /// Measured maximum per-buffer wait.
    pub max_wait: u64,
    /// Measured peak queue length.
    pub max_queue: u64,
    /// Backlog verdict over the run.
    pub verdict: Verdict,
    /// `max_wait <= bound` (vacuously true when the theorem is silent).
    pub bound_respected: bool,
}

/// Core stability run: one (protocol, topology) cell.
#[allow(clippy::too_many_arguments)] // internal helper; the experiment fns are the API
fn stability_cell(
    proto_name: &str,
    topo_name: &str,
    graph: &Graph,
    d: usize,
    w: u64,
    rate: Ratio,
    initial: u64,
    steps: u64,
    seed: u64,
) -> Result<StabilityRow, SimError> {
    let graph = Arc::new(graph.clone());
    let protocol = by_name(proto_name, seed).expect("known protocol");
    let time_priority = protocol.is_time_priority();
    let mut eng = Engine::new(
        Arc::clone(&graph),
        protocol,
        EngineConfig {
            validate: Some(AdversaryModelSpec::window(w, rate)),
            sample_every: (steps / 256).max(1),
            ..Default::default()
        },
    );
    let routes = random_routes(&graph, d, 64, seed);
    let d_actual = routes.iter().map(Route::len).max().unwrap_or(1);
    // Optional S-initial-configuration (E7): `initial` packets on the
    // first candidate route.
    for _ in 0..initial {
        eng.seed(routes[0].clone(), 0)?;
    }
    let mut adv = SaturatingAdversary::new(
        &graph,
        w,
        rate,
        routes,
        InjectionStyle::Burst,
        seed ^ 0x5eed,
    );
    for t in 1..=steps {
        let inj = adv.injections_for(t);
        eng.step(inj)?;
    }
    let cert = StabilityCertificate::with_initial(w, rate, d_actual, initial);
    let bound = if time_priority {
        cert.time_priority_bound().or_else(|| cert.greedy_bound())
    } else {
        cert.greedy_bound()
    };
    let max_wait = eng.metrics().max_buffer_wait();
    let verdict = classify_series(
        &eng.metrics()
            .series()
            .iter()
            .map(|p| p.backlog)
            .collect::<Vec<_>>(),
    );
    Ok(StabilityRow {
        protocol: proto_name.to_string(),
        topology: topo_name.to_string(),
        d: d_actual,
        w,
        rate: rate.as_f64(),
        bound,
        max_wait,
        max_queue: eng.metrics().max_queue(),
        verdict,
        bound_respected: bound.is_none_or(|b| max_wait <= b),
    })
}

/// E5 — every greedy protocol × topology at `r = 1/(d+1)`: the
/// `⌈wr⌉` bound of Theorem 4.1 must hold.
pub fn e5_greedy_stability(d: usize, w: u64, steps: u64) -> Result<Vec<StabilityRow>, SimError> {
    let rate = Ratio::new(1, d as u64 + 1);
    let mut rows = Vec::new();
    for (topo_name, graph) in stability_topologies() {
        for &p in protocol_names() {
            rows.push(stability_cell(
                p, topo_name, &graph, d, w, rate, 0, steps, 42,
            )?);
        }
    }
    Ok(rows)
}

/// E6 — time-priority protocols (FIFO, LIS) at the higher rate
/// `r = 1/d` (Theorem 4.3), plus non-time-priority controls at the
/// same rate (for which the theorems are silent).
pub fn e6_time_priority(d: usize, w: u64, steps: u64) -> Result<Vec<StabilityRow>, SimError> {
    let rate = Ratio::new(1, d as u64);
    let mut rows = Vec::new();
    for (topo_name, graph) in stability_topologies() {
        for p in ["FIFO", "LIS", "LIFO", "NTG"] {
            rows.push(stability_cell(
                p, topo_name, &graph, d, w, rate, 0, steps, 43,
            )?);
        }
    }
    Ok(rows)
}

/// E7 — S-initial-configurations at `r` strictly below the threshold
/// (Corollaries 4.5/4.6).
pub fn e7_initial_config(
    d: usize,
    w: u64,
    initial: u64,
    steps: u64,
) -> Result<Vec<StabilityRow>, SimError> {
    let rate = Ratio::new(1, d as u64 + 2); // strictly below 1/(d+1)
    let mut rows = Vec::new();
    for (topo_name, graph) in stability_topologies() {
        for p in ["FIFO", "LIS", "FTG", "RANDOM"] {
            rows.push(stability_cell(
                p, topo_name, &graph, d, w, rate, initial, steps, 44,
            )?);
        }
    }
    Ok(rows)
}

// ---------------------------------------------------------------------
// E8 — Appendix asymptotics.
// ---------------------------------------------------------------------

/// One row of experiment E8.
#[derive(Debug, Clone)]
pub struct E8Row {
    /// `ε`.
    pub eps: f64,
    /// Chosen gadget length.
    pub n: usize,
    /// Chosen seed floor.
    pub s0: u64,
    /// `log₂(1/ε)` — `n`'s predicted scale (×1…×2 + O(1), eq. (5.5)).
    pub log_inv_eps: f64,
    /// `(1/ε)·log₂(1/ε)` — `S₀`'s predicted scale.
    pub s0_scale: f64,
    /// `n / log₂(1/ε)`.
    pub n_ratio: f64,
    /// `S₀ / ((1/ε) log₂(1/ε))`.
    pub s0_ratio: f64,
}

/// Run E8 over a sweep of `ε = 1/k`.
pub fn e8_asymptotics(denominators: &[u64]) -> Vec<E8Row> {
    denominators
        .iter()
        .map(|&k| {
            let p = GadgetParams::new(1, k);
            let eps = 1.0 / k as f64;
            let log_inv = (k as f64).log2();
            let scale = k as f64 * log_inv;
            E8Row {
                eps,
                n: p.n,
                s0: p.s0,
                log_inv_eps: log_inv,
                s0_scale: scale,
                n_ratio: p.n as f64 / log_inv,
                s0_ratio: p.s0 as f64 / scale,
            }
        })
        .collect()
}

// ---------------------------------------------------------------------
// E9 — our construction vs the baseball-pump baseline.
// ---------------------------------------------------------------------

/// One row of experiment E9.
#[derive(Debug, Clone)]
pub struct E9Row {
    /// Rate swept.
    pub rate: f64,
    /// Per-round growth of the baseball pump at this rate.
    pub baseline_growth: f64,
    /// Per-iteration growth of our `G_ε` construction at this rate
    /// (`None` when `r ≤ 1/2`: the construction needs `ε > 0`).
    pub ours_growth: Option<f64>,
}

/// Run E9: sweep rates; at each rate measure the baseline pump's
/// per-round growth and (for `r > 1/2`) our construction's
/// per-iteration growth.
pub fn e9_comparison(
    rates: &[(u64, u64)],
    pump_seed: u64,
    pump_rounds: usize,
    ours_iterations: usize,
) -> Result<Vec<E9Row>, SimError> {
    let mut rows = Vec::new();
    for &(num, den) in rates {
        let rate = Ratio::new(num, den);
        let pump = run_baseball_pump(rate, pump_seed, pump_rounds)?;
        // ours: rate = 1/2 + eps => eps = rate - 1/2
        let ours_growth = if rate > Ratio::new(1, 2) {
            let eps = rate.sub(Ratio::new(1, 2));
            let mut cfg = InstabilityConfig::new(eps.num(), eps.den());
            cfg.iterations = ours_iterations;
            let run = InstabilityConstruction::new(cfg).run()?;
            let series: Vec<f64> = std::iter::once(run.s_star)
                .chain(run.iterations.iter().map(|it| it.s_end))
                .map(|s| s as f64)
                .collect();
            aqt_analysis::stats::geometric_growth(&series)
        } else {
            None
        };
        rows.push(E9Row {
            rate: rate.as_f64(),
            baseline_growth: pump.growth,
            ours_growth,
        });
    }
    Ok(rows)
}

// ---------------------------------------------------------------------
// E13 — sharpness of the ⌈wr⌉ bound around the 1/d threshold.
// ---------------------------------------------------------------------

/// One row of experiment E13.
#[derive(Debug, Clone)]
pub struct E13Row {
    /// Longest route length in the pool.
    pub d: usize,
    /// Rate as a multiple of `1/d` (0.6, 0.8, 1.0, 1.2, …).
    pub rate_over_threshold: f64,
    /// The exact rate.
    pub rate: f64,
    /// Theorem 4.3's bound when it applies (`r ≤ 1/d`).
    pub bound: Option<u64>,
    /// Measured max per-buffer wait under FIFO.
    pub max_wait: u64,
    /// Measured peak queue.
    pub max_queue: u64,
}

/// Run E13: FIFO on a torus under bursty saturating `(w,r)` adversaries
/// with `r` swept across the `1/d` threshold. At or below the threshold
/// the `⌈wr⌉` bound must hold (Theorem 4.3); above it the theorems are
/// silent and the measured waits show how the guarantee erodes — the
/// paper's Section 5 argues the `1/d`-type thresholds are within a
/// small constant factor of optimal for route length `d`.
pub fn e13_threshold_sharpness(d: usize, w: u64, steps: u64) -> Result<Vec<E13Row>, SimError> {
    let mut rows = Vec::new();
    // r = f·(1/d) for f ∈ {0.6, 0.8, 1.0, 1.2, 1.5, 2.0} (f = f10/10).
    for f10 in [6u64, 8, 10, 12, 15, 20] {
        let rate = Ratio::new(f10, 10 * d as u64);
        if rate >= Ratio::ONE {
            continue;
        }
        let graph = Arc::new(topologies::torus(4, 4));
        let routes = random_routes(&graph, d, 64, 77);
        let d_actual = routes.iter().map(Route::len).max().unwrap_or(1);
        let mut adv = SaturatingAdversary::new(&graph, w, rate, routes, InjectionStyle::Burst, 78);
        let mut eng = Engine::new(
            Arc::clone(&graph),
            Fifo,
            EngineConfig {
                validate: Some(AdversaryModelSpec::window(w, rate)),
                ..Default::default()
            },
        );
        for t in 1..=steps {
            eng.step(adv.injections_for(t))?;
        }
        let cert = StabilityCertificate::new(w, rate, d_actual);
        let m = eng.metrics();
        rows.push(E13Row {
            d: d_actual,
            rate_over_threshold: f10 as f64 / 10.0,
            rate: rate.as_f64(),
            bound: cert.time_priority_bound(),
            max_wait: m.max_buffer_wait(),
            max_queue: m.max_queue(),
        });
    }
    Ok(rows)
}

// ---------------------------------------------------------------------
// E11 — Claim 3.9: old packets cross the thinned path at rates R_i.
// ---------------------------------------------------------------------

/// One row of experiment E11.
#[derive(Debug, Clone)]
pub struct E11Row {
    /// Edge index `i` (1-based, as in the paper).
    pub i: usize,
    /// The paper's predicted arrival rate `R_i = (1−r)/(1−r^i)`.
    pub r_i: f64,
    /// Measured old-packet throughput onto `e'_i`'s tail, as a rate
    /// over the stage (old arrivals ÷ 2S).
    pub measured: f64,
}

/// Run E11: seed `C(S, F)` on `F_n²`, run the Lemma 3.6 adversary, and
/// measure — per internal edge `e'_i` — how many *old* packets arrived
/// at its tail during the stage. Claim 3.9 predicts `2S·R_i` arrivals
/// (rate `R_i` during `[i+1, 2S+i]`).
///
/// Old arrivals at the tail of `e'_i` equal the crossings of the
/// predecessor edge (`a'` for `i = 1`, else `e'_{i-1}`) minus the
/// thinning singles that crossed it — and singles cross exactly once
/// each, so their count is the number injected on that edge.
pub fn e11_thinning_rates(
    eps_num: u64,
    eps_den: u64,
    s_multiplier: f64,
) -> Result<Vec<E11Row>, SimError> {
    let params = GadgetParams::new(eps_num, eps_den);
    let chain = DaisyChain::new(params.n, 2);
    let graph = Arc::new(chain.graph.clone());
    let s = ((params.s0 as f64) * s_multiplier).ceil() as u64;
    let mut eng = Engine::new(
        Arc::clone(&graph),
        Fifo,
        EngineConfig {
            validate: Some(AdversaryModelSpec::rate(params.rate)),
            validate_reroutes: true,
            ..Default::default()
        },
    );
    seed_c_invariant(&mut eng, &graph, &chain.gadgets[0], s)?;
    let step = lemma36::build(
        &graph,
        &chain.gadgets[0],
        &chain.gadgets[1],
        &params,
        s,
        0,
        8,
    )?;
    step.schedule.run(&mut eng, step.finish)?;

    let from = &chain.gadgets[0];
    let to = &chain.gadgets[1];
    let mut rows = Vec::with_capacity(params.n);
    for i in 1..=params.n {
        // predecessor of e'_i on the old packets' path
        let pred = if i == 1 {
            from.egress
        } else {
            to.e_path[i - 2]
        };
        let crossings = eng.metrics().crossings(pred);
        let singles_crossed = if i == 1 {
            0 // a' carries no thinning singles
        } else {
            params.rate.floor_mul(params.t_i(s, i - 1) + 1)
        };
        let old_arrivals = crossings.saturating_sub(singles_crossed);
        rows.push(E11Row {
            i,
            r_i: params.r_i(i),
            measured: old_arrivals as f64 / (2.0 * s as f64),
        });
    }
    Ok(rows)
}

// ---------------------------------------------------------------------
// E12 — ablation: the boundary-settling design choice.
// ---------------------------------------------------------------------

/// One row of experiment E12.
#[derive(Debug, Clone)]
pub struct E12Row {
    /// Was inter-stage settling enabled?
    pub settle: bool,
    /// `S₀` safety factor used.
    pub s0_safety: f64,
    /// Fresh-queue series across iterations.
    pub s_series: Vec<u64>,
    /// Did the run diverge (every iteration grew)?
    pub diverged: bool,
}

/// Run E12: the same construction with and without the inter-stage
/// settling pass (and across `S₀` safety factors). Without settling,
/// the exact-arithmetic lag compounds down the chain and long chains
/// collapse — the measured justification for the design choice
/// documented in `aqt_core::instability`.
pub fn e12_settling_ablation(
    eps_num: u64,
    eps_den: u64,
    iterations: usize,
) -> Result<Vec<E12Row>, SimError> {
    let mut rows = Vec::new();
    for (settle, s0_safety) in [(true, 2.0), (true, 3.0), (false, 2.0), (false, 3.0)] {
        let mut cfg = InstabilityConfig::new(eps_num, eps_den);
        cfg.iterations = iterations;
        cfg.settle = settle;
        cfg.s0_safety = s0_safety;
        let run = InstabilityConstruction::new(cfg).run()?;
        let mut s_series = vec![run.s_star];
        s_series.extend(run.iterations.iter().map(|it| it.s_end));
        rows.push(E12Row {
            settle,
            s0_safety,
            s_series,
            diverged: run.diverged,
        });
    }
    Ok(rows)
}

// ---------------------------------------------------------------------
// E10 — protocol landscape: replay the FIFO-tuned adversary.
// ---------------------------------------------------------------------

/// One row of experiment E10.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct E10Row {
    /// Protocol the recorded adversary was replayed against.
    pub protocol: String,
    /// Final backlog.
    pub final_backlog: u64,
    /// Peak backlog.
    pub max_backlog: u64,
    /// Verdict over the backlog series.
    pub verdict: Verdict,
}

/// Run E10: record the Theorem 3.17 adversary against FIFO, then
/// replay the identical operation sequence against every protocol.
///
/// The replay is mechanical: injections are identical; the Lemma 3.3
/// route extensions are re-applied to whatever packets sit in the same
/// buffers (for non-historic protocols the lemma gives no legality
/// guarantee, so the replays run without *reroute* validation — the
/// point is the *behavioral* contrast: the adversary is tuned to
/// FIFO's scheduling rule and universally stable protocols shrug it
/// off). The injection stream, however, is protocol-independent, so
/// every replay engine re-validates it against the construction's
/// identity model `rate(1/2 + ε)` — the `EngineConfig::validate`
/// convention every other experiment follows.
pub fn e10_landscape(
    eps_num: u64,
    eps_den: u64,
    iterations: usize,
) -> Result<Vec<E10Row>, SimError> {
    let mut cfg = InstabilityConfig::new(eps_num, eps_den);
    cfg.iterations = iterations;
    e10_landscape_with(cfg)
}

/// [`e10_landscape`] with full control over the construction's scale.
/// Replays against LIS/NIS/FTG/… scan whole buffers per step, so large
/// constructions are quadratic for them; tests pass a reduced config.
///
/// Replays carry the construction's identity model `rate(1/2 + ε)` in
/// `EngineConfig::validate`; validation can only reject illegal
/// injections, and the recorded stream is legal by construction, so
/// the rows are identical to an unvalidated replay
/// ([`e10_landscape_with_model`] with `None` — pinned by
/// `tests/instability.rs`).
pub fn e10_landscape_with(cfg: InstabilityConfig) -> Result<Vec<E10Row>, SimError> {
    let rate = GadgetParams::new(cfg.eps_num, cfg.eps_den).rate;
    e10_landscape_with_model(cfg, Some(AdversaryModelSpec::rate(rate)))
}

/// [`e10_landscape_with`], with explicit control over the adversary
/// model the replay engines validate injections against (`None` = no
/// validation — the pre-model behavior, kept for the identity
/// comparison).
pub fn e10_landscape_with_model(
    mut cfg: InstabilityConfig,
    validate: Option<AdversaryModelSpec>,
) -> Result<Vec<E10Row>, SimError> {
    cfg.record_ops = true;
    let construction = InstabilityConstruction::new(cfg);
    let run = construction.run()?;
    let horizon = run.total_steps;
    let graph = Arc::new(construction.geps.graph.clone());
    let ingress = construction.geps.ingress();

    let mut rows = Vec::new();
    for &p in protocol_names() {
        let protocol = by_name(p, 7).expect("known protocol");
        let mut eng = Engine::new(
            Arc::clone(&graph),
            protocol,
            EngineConfig {
                sample_every: (horizon / 256).max(1),
                validate: validate.clone(),
                ..Default::default()
            },
        );
        let unit = Route::single(&graph, ingress)?;
        for _ in 0..run.s_star {
            eng.seed(unit.clone(), 0)?;
        }
        run.recorded.clone().run(&mut eng, horizon)?;
        let series: Vec<u64> = eng.metrics().series().iter().map(|s| s.backlog).collect();
        rows.push(E10Row {
            protocol: p.to_string(),
            final_backlog: eng.backlog(),
            max_backlog: series.iter().copied().max().unwrap_or(eng.backlog()),
            verdict: classify_series(&series),
        });
    }
    Ok(rows)
}

// ---------------------------------------------------------------------
// E14 — fault injection & recovery (Observation 4.4, Cor. 4.5/4.6).
// ---------------------------------------------------------------------

/// One row of experiment E14.
#[derive(Debug, Clone)]
pub struct E14Row {
    /// Protocol name.
    pub protocol: String,
    /// Topology name.
    pub topology: String,
    /// Fault scenario (`"burst"` or `"outage"`).
    pub scenario: String,
    /// Backlog right after the fault window — the corollary's `S`.
    pub s_fault: u64,
    /// Observation 4.4's `w*` for this protocol class (`None` = the
    /// rate is not strictly below the class threshold).
    pub recovery_horizon: Option<u64>,
    /// The Corollary 4.5/4.6 per-buffer wait bound `⌈w*/k⌉`.
    pub recovery_bound: Option<u64>,
    /// Max per-buffer wait measured after the fault window (the peak
    /// metrics are reset when the window closes).
    pub post_fault_max_wait: u64,
    /// Steps after the fault window until the backlog first returned
    /// to its pre-fault level (`None` = not within the horizon run).
    pub resettle_delay: Option<u64>,
    /// Conservation books balance: `injected + duplicated` equals
    /// `absorbed + dropped +` live packets summed over the buffers.
    pub conservation_ok: bool,
    /// Fault events the engine actually logged.
    pub faults_logged: usize,
    /// The scenario's bound check — burst: post-fault max wait within
    /// `⌈w*/k⌉`; outage: re-settling delay within `w*`.
    pub bound_respected: bool,
}

/// One E14 cell: drive `protocol` on `graph` under a validated `(w,r)`
/// adversary with the fault `plan` installed, and measure recovery
/// after the fault window `[fault_start, fault_end]` closes.
#[allow(clippy::too_many_arguments)] // internal helper; the experiment fn is the API
fn e14_cell(
    proto_name: &str,
    topo_name: &str,
    graph: &Graph,
    scenario: &str,
    plan: FaultPlan,
    fault_start: Time,
    fault_end: Time,
    d: usize,
    w: u64,
    rate: Ratio,
    post_steps: u64,
    seed: u64,
) -> Result<E14Row, SimError> {
    let graph = Arc::new(graph.clone());
    let protocol = by_name(proto_name, seed).expect("known protocol");
    let time_priority = protocol.is_time_priority();
    let mut eng = Engine::new(
        Arc::clone(&graph),
        protocol,
        EngineConfig {
            validate: Some(AdversaryModelSpec::window(w, rate)),
            ..Default::default()
        },
    );
    eng.install_faults(plan)?;
    let routes = random_routes(&graph, d, 64, seed);
    let d_actual = routes.iter().map(Route::len).max().unwrap_or(1);
    let mut adv = SaturatingAdversary::new(
        &graph,
        w,
        rate,
        routes,
        InjectionStyle::Burst,
        seed ^ 0x5eed,
    );

    // Steady state, then through the fault window (the adversary keeps
    // injecting at its legal rate throughout).
    let mut baseline = 0u64;
    for t in 1..=fault_end {
        if t == fault_start {
            baseline = eng.backlog();
        }
        eng.step(adv.injections_for(t))?;
    }
    // The fault window just closed: the surviving backlog is the
    // corollary's S-initial-configuration. Reset the peak metrics so
    // the post-fault waits are measured in isolation.
    let s_fault = eng.backlog();
    eng.reset_peak_metrics();

    let mut resettle_delay = None;
    for k in 1..=post_steps {
        eng.step(adv.injections_for(fault_end + k))?;
        if resettle_delay.is_none() && eng.backlog() <= baseline {
            resettle_delay = Some(k);
        }
    }

    let cert = StabilityCertificate::with_initial(w, rate, d_actual, s_fault);
    let recovery_horizon = cert.recovery_horizon(time_priority);
    let recovery_bound = if time_priority {
        cert.time_priority_bound().or_else(|| cert.greedy_bound())
    } else {
        cert.greedy_bound()
    };
    let post_fault_max_wait = eng.metrics().max_buffer_wait();
    let live: u64 = graph.edge_ids().map(|e| eng.queue_len(e) as u64).sum();
    let m = eng.metrics();
    let conservation_ok = m.injected() + m.duplicated() == m.absorbed() + m.dropped() + live;
    let bound_respected = match scenario {
        "burst" => recovery_bound.is_none_or(|b| post_fault_max_wait <= b),
        _ => recovery_horizon.is_none_or(|h| resettle_delay.is_some_and(|delay| delay <= h)),
    };
    Ok(E14Row {
        protocol: proto_name.to_string(),
        topology: topo_name.to_string(),
        scenario: scenario.to_string(),
        s_fault,
        recovery_horizon,
        recovery_bound,
        post_fault_max_wait,
        resettle_delay,
        conservation_ok,
        faults_logged: eng.fault_log().len(),
        bound_respected,
    })
}

/// E14 — fault recovery. A system running stably at `r = 1/(d+2)`
/// (strictly below both class thresholds) is hit mid-run by faults;
/// Observation 4.4 with `S` = the post-fault backlog then promises the
/// system re-settles within `w* = ⌈(S+w+1)/(r*−r)⌉` steps, with
/// per-buffer waits inside the Corollary 4.5/4.6 bound `⌈w*/k⌉`.
///
/// Two scenarios per (protocol, topology) cell, each also carrying a
/// drop and a duplication fault so the conservation law
/// (`injected + duplicated = absorbed + dropped + backlog`) is
/// exercised:
///
/// * **burst** — an `S`-burst materializes mid-run (validator
///   bypassed); the post-fault *max buffer wait* must respect
///   `⌈w*/k⌉`.
/// * **outage** — an edge goes silent for a window, backing traffic
///   up behind it; the *re-settling delay* (backlog back at its
///   pre-fault level) must respect `w*`.
pub fn e14_fault_recovery(d: usize, w: u64) -> Result<Vec<E14Row>, SimError> {
    let rate = Ratio::new(1, d as u64 + 2);
    let t_fault: Time = 600;
    let outage_len: Time = 40;
    let post_steps = 6000;
    let mut rows = Vec::new();
    for (topo_name, graph) in [
        ("ring-8", topologies::ring(8)),
        ("grid-4x4", topologies::grid(4, 4)),
    ] {
        let edges: Vec<EdgeId> = graph.edge_ids().collect();
        for p in ["FIFO", "LIS", "FTG"] {
            let routes = random_routes(&graph, d, 64, 7);
            let burst: Vec<Injection> = (0..48)
                .map(|i| Injection::new(routes[i % routes.len()].clone(), 9000))
                .collect();
            let plan = FaultPlan::new()
                .with_burst(t_fault, burst)
                .with_drop(edges[0], t_fault)
                .with_duplicate(edges[1 % edges.len()], t_fault);
            rows.push(e14_cell(
                p, topo_name, &graph, "burst", plan, t_fault, t_fault, d, w, rate, post_steps, 7,
            )?);

            let plan = FaultPlan::new()
                .with_outage(edges[0], t_fault, t_fault + outage_len - 1)
                .with_drop(edges[1 % edges.len()], t_fault + 5)
                .with_duplicate(edges[2 % edges.len()], t_fault + 6);
            rows.push(e14_cell(
                p,
                topo_name,
                &graph,
                "outage",
                plan,
                t_fault,
                t_fault + outage_len - 1,
                d,
                w,
                rate,
                post_steps,
                7,
            )?);
        }
    }
    Ok(rows)
}

// ---------------------------------------------------------------------
// E16 — threshold survival across composed adversary models.
// ---------------------------------------------------------------------

/// One row of experiment E16.
#[derive(Debug, Clone)]
pub struct E16Row {
    /// Human-readable model (the `Display` of its spec).
    pub model: String,
    /// [`AdversaryModelSpec::fingerprint`] of the model — the same
    /// value stamped into the provenance of every telemetry record the
    /// run emitted, so the JSONL stream joins back to this row.
    pub model_fingerprint: u64,
    /// Protocol name.
    pub protocol: String,
    /// Rate factor `f`: the nominal rate is `r = f · 1/(d+1)`.
    pub rate_factor: f64,
    /// The model's tightest long-run per-edge rate (1.0 for a pure
    /// buffer-bound model, which caps bursts but not throughput).
    pub long_run_rate: f64,
    /// Theorem 4.1's `⌈wr⌉` bound when it applies to this model —
    /// i.e. when the model contains the `(w, r)` member with
    /// `r ≤ 1/(d+1)`. `None` where the theorems are silent.
    pub bound: Option<u64>,
    /// Measured max per-buffer wait.
    pub max_wait: u64,
    /// Measured peak queue length.
    pub max_queue: u64,
    /// Backlog verdict over the run.
    pub verdict: Verdict,
    /// Whether the paper's threshold result survives under this model:
    /// the backlog did not diverge and the bound (when one applies)
    /// held.
    pub survives: bool,
}

/// The adversary-constraint models E16 sweeps at window `w` and
/// nominal rate `r`: the identity `(w, r)` composition (exactly the
/// model every earlier stability experiment validated against), each
/// of the three new members alone, and the full three-way composition.
pub fn e16_models(w: u64, rate: Ratio) -> Vec<(&'static str, AdversaryModelSpec)> {
    let burst = ConstraintSpec::BurstLocal {
        rho: rate,
        sigma: 2,
        locality: w,
    };
    let buffer = ConstraintSpec::BufferBound { bound: 2 };
    vec![
        ("window", AdversaryModelSpec::window(w, rate)),
        ("rate", AdversaryModelSpec::rate(rate)),
        ("burst-local", AdversaryModelSpec::new(vec![burst])),
        ("buffer-bound", AdversaryModelSpec::new(vec![buffer])),
        (
            "composed",
            AdversaryModelSpec::window(w, rate).and(burst).and(buffer),
        ),
    ]
}

/// Run E16: the protocol-landscape threshold mapping re-run under each
/// constraint model of [`e16_models`]. For every model × protocol ×
/// rate-factor cell a saturating adversary drives the model to its
/// admissible ceiling (the engine re-validates the same spec), and the
/// row reports whether the paper's `r ≤ 1/(d+1)` stability result
/// survives.
///
/// Expected shape: the identity `(w, r)` composition reproduces the
/// paper's thresholds; `rate` and `burst-local` keep the same long-run
/// rate and stay stable at `f ≤ 1`; `buffer-bound` alone bounds bursts
/// but not throughput (long-run rate 1), so the threshold result does
/// *not* survive; the three-way composition is strictly tighter than
/// the identity and survives wherever it does.
///
/// When `sink` is given, every run streams counter telemetry into it;
/// each record's provenance carries the model fingerprint (filled in
/// by [`Engine::attach_telemetry`] from the validating model), so the
/// JSONL stream is a per-model threshold table keyed by
/// `model_fingerprint`.
pub fn e16_model_landscape(
    d: usize,
    w: u64,
    steps: u64,
    sink: Option<&SharedSink>,
) -> Result<Vec<E16Row>, SimError> {
    let graph = Arc::new(topologies::torus(4, 4));
    let mut rows = Vec::new();
    // f = f10/10 sweeps the nominal rate across the 1/(d+1) threshold.
    for f10 in [8u64, 10, 12] {
        let rate = Ratio::new(f10, 10 * (d as u64 + 1));
        if rate >= Ratio::ONE {
            continue;
        }
        for (name, spec) in e16_models(w, rate) {
            for proto in ["FIFO", "LIS", "NTG"] {
                let seed = 1600 + f10;
                let protocol = by_name(proto, seed).expect("known protocol");
                let mut eng = Engine::new(
                    Arc::clone(&graph),
                    protocol,
                    EngineConfig {
                        validate: Some(spec.clone()),
                        sample_every: (steps / 256).max(1),
                        ..Default::default()
                    },
                );
                if let Some(sink) = sink {
                    eng.attach_telemetry(TelemetryConfig {
                        window: steps,
                        provenance: Provenance {
                            seed: Some(seed),
                            protocol: proto.to_string(),
                            ..Default::default()
                        },
                        ..Default::default()
                    });
                    eng.set_telemetry_sink(Box::new(sink.clone()));
                }
                // A modest pool keeps the buffer-bound arm (long-run
                // rate 1) from swamping the run.
                let routes = random_routes(&graph, d, 24, seed);
                let d_actual = routes.iter().map(Route::len).max().unwrap_or(1);
                let mut adv = SaturatingAdversary::with_model(
                    &graph,
                    &spec,
                    routes,
                    InjectionStyle::Burst,
                    seed ^ 0xe16,
                );
                for t in 1..=steps {
                    eng.step(adv.injections_for(t))?;
                }
                let has_window_member = spec
                    .members
                    .iter()
                    .any(|m| matches!(m, ConstraintSpec::Window { .. }));
                let bound = (has_window_member && f10 <= 10)
                    .then(|| StabilityCertificate::new(w, rate, d_actual).greedy_bound())
                    .flatten();
                let m = eng.metrics();
                let max_wait = m.max_buffer_wait();
                let verdict =
                    classify_series(&m.series().iter().map(|p| p.backlog).collect::<Vec<_>>());
                rows.push(E16Row {
                    model: name.to_string(),
                    model_fingerprint: spec.fingerprint(),
                    protocol: proto.to_string(),
                    rate_factor: f10 as f64 / 10.0,
                    long_run_rate: spec.long_run_rate().map_or(1.0, |r| r.as_f64()),
                    bound,
                    max_wait,
                    max_queue: m.max_queue(),
                    verdict,
                    survives: verdict != Verdict::Diverging && bound.is_none_or(|b| max_wait <= b),
                });
            }
        }
    }
    Ok(rows)
}

// ---------------------------------------------------------------------
// E17 — closed-loop congestion collapse: timeout × retry × queue bound.
// ---------------------------------------------------------------------

/// One cell of the E17 closed-loop sweep.
#[derive(Debug, Clone)]
pub struct E17Row {
    /// Shed / service-order discipline of the admission queue.
    pub shed: &'static str,
    /// Client retry policy.
    pub retry: &'static str,
    /// Client timeout (steps).
    pub timeout: Time,
    /// Admission-queue bound.
    pub capacity: u32,
    /// Attempts issued in the measurement window (post-outage).
    pub offered: u64,
    /// On-time completions in the measurement window.
    pub goodput: u64,
    /// Stale completions (work done for clients that moved on).
    pub wasted: u64,
    /// Requests terminally shed or abandoned in the window.
    pub failed: u64,
    /// `goodput / offered` over the window (1.0 when nothing was
    /// offered).
    pub goodput_ratio: f64,
    /// The collapse verdict: less than half the offered load became
    /// goodput.
    pub collapsed: bool,
}

/// The closed-loop configuration E17 sweeps: a fixed healthy client
/// population (the open-loop demand is ~0.6 of the path's unit
/// capacity) hit by a deterministic service outage, with `timeout`,
/// `retry`, queue `capacity`, and `shed` as the swept knobs.
pub fn e17_config(
    timeout: Time,
    capacity: u32,
    retry: RetryPolicy,
    shed: Shed,
    seed: u64,
) -> ClosedLoopConfig {
    ClosedLoopConfig {
        seed,
        clients: ClientConfig {
            num_clients: 8,
            think_time: 8,
            timeout,
            max_attempts: 8,
            retry,
        },
        service: ServicePolicy {
            capacity,
            shed,
            // The spark: a 30-step outage. Whether the system returns
            // to health afterwards — or stays collapsed serving stale
            // work forever — is exactly what the cell measures.
            pause: Some((40, 70)),
        },
        path_len: 2,
        // The realized closed-loop injections are validated like any
        // open-loop adversary: at most one dispatch per step, i.e.
        // within the rate-1 model.
        validate: Some(AdversaryModelSpec::rate(Ratio::ONE)),
        window: 0,
    }
}

/// Run E17: map the goodput-collapse frontier over timeout ×
/// retry-policy × queue-bound × shed-discipline. Each cell runs the
/// same deterministic outage scenario; goodput is measured from step
/// `horizon/4` (well after the outage clears) to `horizon`, so the
/// ratio captures the *steady state* the feedback loop settles into,
/// not the transient.
///
/// Expected shape (the congestion-collapse frontier): with FIFO
/// service and immediate retries, any timeout below the full-queue
/// round trip (`capacity + path`) locks the system into serving only
/// stale work — goodput collapses below 50% of offered load and stays
/// there. LIFO service or deadline-drop shedding break the loop
/// (fresh work is served within its deadline) and recover ≥ 90%.
/// Every run enforces the request-conservation sentinel invariant.
pub fn e17_closed_loop(horizon: Time) -> Result<Vec<E17Row>, SimError> {
    let mut rows = Vec::new();
    let retries = [
        RetryPolicy::Immediate,
        RetryPolicy::ExpBackoff { base: 4, cap: 32 },
    ];
    let sheds = [
        Shed::RejectNewest,
        Shed::RejectOldest,
        Shed::LifoFlip,
        Shed::DeadlineDrop,
    ];
    for &timeout in &[5u64, 12] {
        for &capacity in &[8u32, 16] {
            for &retry in &retries {
                for &shed in &sheds {
                    rows.push(e17_cell(
                        e17_config(timeout, capacity, retry, shed, 1700),
                        horizon,
                    )?);
                }
            }
        }
    }
    Ok(rows)
}

/// Run one E17 cell and measure its steady-state goodput split.
fn e17_cell(cfg: ClosedLoopConfig, horizon: Time) -> Result<E17Row, SimError> {
    let measure_from = horizon / 4;
    let mut cl = ClosedLoop::on_line(cfg.clone());
    cl.run(measure_from)?;
    let base = cl.counters();
    cl.run(horizon)?;
    let end = cl.counters();
    let offered = GoodputMeter::offered_delta(&base, &end);
    let goodput = GoodputMeter::goodput_delta(&base, &end);
    let wasted = GoodputMeter::wasted_delta(&base, &end);
    let failed = (end.requests_abandoned - base.requests_abandoned)
        + (end.requests_shed - base.requests_shed);
    let goodput_ratio = if offered == 0 {
        1.0
    } else {
        goodput as f64 / offered as f64
    };
    Ok(E17Row {
        shed: cfg.service.shed.name(),
        retry: cfg.clients.retry.name(),
        timeout: cfg.clients.timeout,
        capacity: cfg.service.capacity,
        offered,
        goodput,
        wasted,
        failed,
        goodput_ratio,
        collapsed: goodput_ratio < 0.5,
    })
}

/// The E17 headline in one call: the collapse cell (short timeout,
/// FIFO, immediate retry) next to the two recovery disciplines at
/// identical parameters, plus the determinism evidence — the collapse
/// run repeated from its seed is bit-identical, and its realized
/// injection schedule replayed open-loop reproduces the same absorbed
/// count.
pub fn e17_collapse_demo(horizon: Time) -> Result<(Vec<E17Row>, bool), SimError> {
    let cell = |shed| e17_config(5, 16, RetryPolicy::Immediate, shed, 1700);
    let rows = vec![
        e17_cell(cell(Shed::RejectNewest), horizon)?,
        e17_cell(cell(Shed::LifoFlip), horizon)?,
        e17_cell(cell(Shed::DeadlineDrop), horizon)?,
    ];

    // Determinism evidence for the collapse cell.
    let mut a = ClosedLoop::on_line(cell(Shed::RejectNewest));
    let mut b = ClosedLoop::on_line(cell(Shed::RejectNewest));
    a.run(horizon)?;
    b.run(horizon)?;
    let bit_identical = a.counters() == b.counters()
        && a.state() == b.state()
        && a.realized().content_hash() == b.realized().content_hash();

    // Open-loop replay: the realized schedule drives a fresh engine to
    // the same absorption count.
    let graph = Arc::new(topologies::line(a.config().path_len as usize));
    let mut open = Engine::new(
        graph,
        Fifo,
        EngineConfig {
            validate: a.config().validate.clone(),
            ..Default::default()
        },
    );
    a.realized().replay(&mut open, a.engine().time())?;
    let replay_identical = open.metrics().absorbed() == a.engine().metrics().absorbed()
        && open.metrics().injected() == a.engine().metrics().injected();

    Ok((rows, bit_identical && replay_identical))
}

// ---------------------------------------------------------------------
// E18 — sharded determinism & scaling on a ≥100k-edge topology.
// ---------------------------------------------------------------------

/// One row of experiment E18: the same workload stepped at one shard
/// count.
#[derive(Debug, Clone)]
pub struct E18Row {
    /// Shards stepping concurrently (1 = the sequential pipeline).
    pub shards: u32,
    /// Steps per second of wall clock at this shard count.
    pub steps_per_sec: f64,
    /// Throughput relative to the sequential row (row 1 is 1.0).
    pub speedup: f64,
    /// FNV-1a fingerprint of the final canonical snapshot.
    pub trajectory_hash: u64,
    /// The bit-identical verdict: this row's final snapshot *and*
    /// metrics equal the sequential row's, packet for packet.
    pub identical: bool,
}

/// The E18 report: one row per shard count plus the context needed to
/// read the speedup column honestly.
#[derive(Debug, Clone)]
pub struct E18Report {
    /// Edges in the driven topology.
    pub edges: usize,
    /// Steps driven per row.
    pub steps: u64,
    /// `std::thread::available_parallelism()` on the measuring host —
    /// speedups are only meaningful up to this many shards.
    pub host_cores: usize,
    /// One row per requested shard count, sequential first.
    pub rows: Vec<E18Row>,
}

/// Fingerprint a canonical snapshot: clock, counters, and every
/// packet's full state in buffer-scan order.
fn snapshot_fingerprint(s: &aqt_sim::Snapshot) -> u64 {
    let mut words: Vec<u64> = vec![
        s.time,
        s.next_id,
        s.injected,
        s.absorbed,
        s.dropped,
        s.duplicated,
    ];
    for (edge, q) in s.buffers.iter().enumerate() {
        for p in q {
            words.extend([
                edge as u64,
                p.id,
                p.injected_at,
                p.arrived_at,
                u64::from(p.tag),
                u64::from(p.route),
                u64::from(p.hop),
            ]);
        }
    }
    aqt_sim::fnv1a_u64s(words)
}

/// Run E18: FIFO on `ring(edges)` — every edge seeded with a cohort of
/// `cohort` packets on a length-`route_len` wrap-around route — stepped
/// `steps` quiet steps at each shard count in `shard_counts` (the
/// sequential row is always prepended). Every buffer is busy on every
/// step, so the run measures sustained engine throughput, and the final
/// state still holds every packet mid-route (`steps < route_len`), so
/// the snapshot comparison sees the full network, not a drained one.
///
/// The determinism claim is checked *in* the experiment: each sharded
/// row's final snapshot and metrics must equal the sequential row's
/// bit for bit (`identical`), whatever the host's core count. The
/// speedup column is honest only up to `host_cores` shards — the bench
/// gate applies its scaling floor conditionally on that field.
pub fn e18_sharded_scaling(
    edges: usize,
    route_len: usize,
    cohort: u32,
    steps: u64,
    shard_counts: &[u32],
) -> Result<E18Report, SimError> {
    assert!(route_len > steps as usize, "packets must outlive the run");
    let g = Arc::new(topologies::ring(edges));
    let host_cores = std::thread::available_parallelism().map_or(1, |n| n.get());

    let run = |shards: u32| -> Result<(aqt_sim::Snapshot, u64, f64), SimError> {
        let mut eng = Engine::new(Arc::clone(&g), Fifo, EngineConfig::default());
        if shards > 1 {
            eng.set_shards(aqt_sim::ShardPlan::striped(edges, shards as usize))
                .map_err(SimError::from)?;
        }
        for e in 0..edges {
            let ids: Vec<EdgeId> = (0..route_len)
                .map(|k| EdgeId(((e + k) % edges) as u32))
                .collect();
            let route = Route::new(&g, ids).expect("contiguous ring edges");
            eng.seed_cohort(route, e as u32, u64::from(cohort))
                .map_err(SimError::from)?;
        }
        let t0 = std::time::Instant::now();
        eng.run_quiet(steps).map_err(SimError::from)?;
        let wall = t0.elapsed().as_secs_f64().max(1e-9);
        let snap = aqt_sim::snapshot::capture(&eng);
        let crossings: u64 = eng.metrics().crossings_per_edge().iter().sum();
        Ok((snap, crossings, steps as f64 / wall))
    };

    let mut counts: Vec<u32> = vec![1];
    counts.extend(shard_counts.iter().copied().filter(|&s| s > 1));

    let mut rows = Vec::with_capacity(counts.len());
    let mut baseline: Option<(aqt_sim::Snapshot, u64)> = None;
    let mut base_rate = 0.0_f64;
    for &shards in &counts {
        let (snap, crossings, steps_per_sec) = run(shards)?;
        let identical = match &baseline {
            None => {
                base_rate = steps_per_sec;
                baseline = Some((snap.clone(), crossings));
                true
            }
            Some((base_snap, base_crossings)) => *base_snap == snap && *base_crossings == crossings,
        };
        rows.push(E18Row {
            shards,
            steps_per_sec,
            speedup: steps_per_sec / base_rate.max(1e-9),
            trajectory_hash: snapshot_fingerprint(&snap),
            identical,
        });
    }
    Ok(E18Report {
        edges,
        steps,
        host_cores,
        rows,
    })
}

/// E18 at the scale `EXPERIMENTS.md` reports: 120k edges (≥ the 100k
/// floor), 64-packet routes, 48 steps, shard counts 2/4/8.
pub fn e18_full() -> Result<E18Report, SimError> {
    e18_sharded_scaling(120_000, 64, 1, 48, &[2, 4, 8])
}

/// E18 at CI-smoke scale: the same shape shrunk to 2k edges so the
/// determinism assertion (the part that needs no cores) runs in
/// seconds.
pub fn e18_smoke(shard_counts: &[u32]) -> Result<E18Report, SimError> {
    e18_sharded_scaling(2_000, 32, 1, 24, shard_counts)
}

// ---------------------------------------------------------------------
// One-command reduced-scale tour.
// ---------------------------------------------------------------------

/// A compact, human-readable summary of key experiments at reduced
/// scale — the one-command tour used by `examples/full_report.rs`.
/// Returns (section title, lines).
pub fn quick_report() -> Result<Vec<(String, Vec<String>)>, SimError> {
    quick_report_with_progress(None)
}

/// [`quick_report`] with per-section progress streamed to a telemetry
/// sink: each section is reported as a sweep job
/// (`job_started`/`job_finished`) followed by a `sweep_progress`
/// record with an ETA, so a long tour is watchable live.
pub fn quick_report_with_progress(
    progress: Option<&SharedSink>,
) -> Result<Vec<(String, Vec<String>)>, SimError> {
    type Section = Box<dyn FnOnce() -> Result<(String, Vec<String>), SimError>>;
    let jobs: Vec<Section> = vec![
        Box::new(|| {
            let e1 = e1_fifo_instability(&[(1, 4)], 2)?;
            Ok((
                "E1 / Theorem 3.17 — FIFO unstable at r = 3/4".to_string(),
                e1.iter()
                    .map(|r| {
                        format!(
                            "queue {:?}, growth {:.2}x/iter, diverged={}",
                            r.s_series, r.growth, r.diverged
                        )
                    })
                    .collect(),
            ))
        }),
        Box::new(|| {
            let e2 = e2_gadget_amplification(&[(1, 4)], &[1.5])?;
            Ok((
                "E2 / Lemma 3.6 — gadget amplification".to_string(),
                e2.iter()
                    .map(|r| {
                        format!(
                            "S={} → S'={} (theory {}), amp {:.3} ≥ promised {:.3}",
                            r.s,
                            r.s_prime_measured,
                            r.s_prime_theory,
                            r.amp_measured,
                            r.amp_promised
                        )
                    })
                    .collect(),
            ))
        }),
        Box::new(|| {
            let e4 = e4_stitch(&[(3, 4)], 800)?;
            Ok((
                "E4 / Lemma 3.16 — stitch retention".to_string(),
                e4.iter()
                    .map(|r| format!("retention {:.3} vs r³ = {:.3}", r.retention, r.r_cubed))
                    .collect(),
            ))
        }),
        Box::new(|| {
            let e5 = e5_greedy_stability(3, 12, 4000)?;
            let violations = e5.iter().filter(|r| !r.bound_respected).count();
            Ok((
                "E5 / Theorem 4.1 — greedy stability at r = 1/(d+1)".to_string(),
                vec![format!(
                    "{} protocol×topology cells, {} bound violations (theorem: 0)",
                    e5.len(),
                    violations
                )],
            ))
        }),
        Box::new(|| {
            let e8 = e8_asymptotics(&[8, 32, 128]);
            Ok((
                "E8 / Appendix — parameter asymptotics".to_string(),
                e8.iter()
                    .map(|r| {
                        format!(
                            "ε={:.4}: n={} (n/log₂(1/ε) = {:.2}), S₀={}",
                            r.eps, r.n, r.n_ratio, r.s0
                        )
                    })
                    .collect(),
            ))
        }),
        Box::new(|| {
            let e14 = e14_fault_recovery(3, 8)?;
            let e14_viol = e14
                .iter()
                .filter(|r| !r.bound_respected || !r.conservation_ok)
                .count();
            Ok((
                "E14 / Observation 4.4 — fault recovery".to_string(),
                vec![format!(
                    "{} fault cells (bursts, outages, drops, duplications), \
                     {} recovery-bound/conservation violations (theory: 0)",
                    e14.len(),
                    e14_viol
                )],
            ))
        }),
        Box::new(|| {
            let e16 = e16_model_landscape(3, 12, 1500, None)?;
            let at_threshold = |r: &&E16Row| r.rate_factor <= 1.0;
            let survived = e16
                .iter()
                .filter(at_threshold)
                .filter(|r| r.survives)
                .count();
            let total = e16.iter().filter(at_threshold).count();
            Ok((
                "E16 — threshold survival across adversary models".to_string(),
                vec![format!(
                    "{} model×protocol cells at r ≤ 1/(d+1); threshold survives in {} \
                     (buffer-bound alone admits long-run rate 1 — its waits escape the \
                     ⌈wr⌉ bound)",
                    total, survived
                )],
            ))
        }),
        Box::new(|| {
            let (rows, reproducible) = e17_collapse_demo(600)?;
            Ok((
                "E17 — closed-loop congestion collapse and recovery".to_string(),
                rows.iter()
                    .map(|r| {
                        format!(
                            "{:>13}: goodput {:>3.0}% of offered ({} / {}), wasted {}, {}",
                            r.shed,
                            r.goodput_ratio * 100.0,
                            r.goodput,
                            r.offered,
                            r.wasted,
                            if r.collapsed { "COLLAPSED" } else { "healthy" }
                        )
                    })
                    .chain(std::iter::once(format!(
                        "bit-identical re-run and open-loop replay: {reproducible}"
                    )))
                    .collect(),
            ))
        }),
        Box::new(|| {
            let e11 = e11_thinning_rates(1, 4, 1.5)?;
            Ok((
                "E11 / Claim 3.9 — thinning ladder".to_string(),
                e11.iter()
                    .map(|r| format!("R_{} = {:.4}, measured {:.4}", r.i, r.r_i, r.measured))
                    .collect(),
            ))
        }),
    ];

    let total = jobs.len();
    let tour_t0 = std::time::Instant::now();
    let mut sections = Vec::with_capacity(total);
    for (index, job) in jobs.into_iter().enumerate() {
        if let Some(sink) = progress {
            sink.record(&TelemetryEvent::JobStarted { index, total });
        }
        let job_t0 = std::time::Instant::now();
        sections.push(job()?);
        if let Some(sink) = progress {
            sink.record(&TelemetryEvent::JobFinished {
                index,
                attempts: 1,
                secs: job_t0.elapsed().as_secs_f64(),
            });
            let done = index + 1;
            let elapsed_secs = tour_t0.elapsed().as_secs_f64();
            sink.record(&TelemetryEvent::SweepProgress {
                done,
                total,
                elapsed_secs,
                eta_secs: elapsed_secs / done as f64 * (total - done) as f64,
            });
        }
    }
    Ok(sections)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn quick_report_covers_the_headlines() {
        let sections = quick_report().expect("legal");
        assert!(sections.len() >= 6);
        assert!(sections[0].0.contains("Theorem 3.17"));
        assert!(sections.iter().all(|(_, lines)| !lines.is_empty()));
        // the E1 line must say diverged=true
        assert!(sections[0].1[0].contains("diverged=true"));
    }

    #[test]
    fn e8_runs_and_scales() {
        let rows = e8_asymptotics(&[8, 16, 32, 64]);
        assert_eq!(rows.len(), 4);
        // n grows with 1/eps
        assert!(rows.windows(2).all(|w| w[1].n >= w[0].n));
        assert!(rows.windows(2).all(|w| w[1].s0 > w[0].s0));
    }

    #[test]
    fn e4_stitch_retains_about_r_cubed() {
        let rows = e4_stitch(&[(3, 5), (3, 4), (9, 10)], 400).expect("legal");
        for row in &rows {
            assert_eq!(row.fresh_measured, row.fresh_scheduled);
            let rel = row.retention / row.r_cubed;
            assert!(
                (0.9..=1.1).contains(&rel),
                "retention {} vs r³ {} at r={}",
                row.retention,
                row.r_cubed,
                row.rate
            );
        }
    }

    #[test]
    fn e5_bounds_hold_small() {
        let rows = e5_greedy_stability(3, 12, 4000).expect("legal");
        for row in &rows {
            assert!(
                row.bound_respected,
                "{} on {}: wait {} > bound {:?}",
                row.protocol, row.topology, row.max_wait, row.bound
            );
            assert_ne!(row.verdict, Verdict::Diverging, "{row:?}");
        }
    }

    #[test]
    fn e16_identity_model_reproduces_thresholds() {
        use std::io::Write;
        use std::sync::Mutex;

        use aqt_sim::JsonlSink;

        let buf = Arc::new(Mutex::new(Vec::<u8>::new()));
        struct Shared(Arc<Mutex<Vec<u8>>>);
        impl Write for Shared {
            fn write(&mut self, b: &[u8]) -> std::io::Result<usize> {
                self.0.lock().unwrap().extend_from_slice(b);
                Ok(b.len())
            }
            fn flush(&mut self) -> std::io::Result<()> {
                Ok(())
            }
        }
        let sink = SharedSink::new(JsonlSink::from_writer(Shared(Arc::clone(&buf))));
        let rows = e16_model_landscape(3, 12, 1200, Some(&sink)).expect("legal");
        sink.flush();
        // 5 models × 3 protocols × 3 rate factors.
        assert_eq!(rows.len(), 45);
        for row in rows.iter().filter(|r| r.rate_factor <= 1.0) {
            // The paper's threshold results survive under the identity
            // (w, r) composition and under every model at least as
            // tight with the same long-run rate.
            if row.model != "buffer-bound" {
                assert!(
                    row.survives,
                    "{} under {} at f={}: wait {} vs bound {:?} ({:?})",
                    row.protocol, row.model, row.rate_factor, row.max_wait, row.bound, row.verdict
                );
            }
            // Buffer-bound alone has no throughput cap.
            if row.model == "buffer-bound" {
                assert_eq!(row.long_run_rate, 1.0);
            } else {
                assert!(row.long_run_rate < 0.5);
            }
        }
        // Models carry distinct fingerprints per rate factor — except
        // buffer-bound, which is rate-independent: 4 models × 3 rates
        // + 1.
        let fps: std::collections::BTreeSet<u64> =
            rows.iter().map(|r| r.model_fingerprint).collect();
        assert_eq!(fps.len(), 13);
        // The JSONL stream is a per-model table: every emitted record
        // carries the fingerprint of the model its run validated
        // against (auto-filled by `attach_telemetry`), so the stream
        // joins back to the rows.
        let text = String::from_utf8(buf.lock().unwrap().clone()).unwrap();
        assert!(!text.is_empty());
        for fp in &fps {
            assert!(
                text.contains(&format!("\"model_fingerprint\":{fp}")),
                "telemetry stream is missing model fingerprint {fp:#x}"
            );
        }
        assert!(!text.contains("\"model_fingerprint\":null"));
    }

    #[test]
    fn e2_amplifies_small() {
        let rows = e2_gadget_amplification(&[(1, 4)], &[2.0]).expect("legal");
        let row = &rows[0];
        assert!(
            row.amp_measured >= row.amp_promised * 0.97,
            "measured amplification {} below promised {} (S={}, S'={})",
            row.amp_measured,
            row.amp_promised,
            row.s,
            row.s_prime_measured
        );
    }

    #[test]
    fn e3_bootstrap_small() {
        let rows = e3_bootstrap(&[(1, 4)], &[2.0]).expect("legal");
        let row = &rows[0];
        assert!(
            row.amp_measured >= row.amp_promised * 0.97,
            "bootstrap amplification {} below promised {}",
            row.amp_measured,
            row.amp_promised
        );
    }
}
