//! **Theorem 3.17** — FIFO is unstable at every rate `r = 1/2 + ε` —
//! as an executable, self-validating construction.
//!
//! For a given `ε` this driver:
//!
//! 1. derives `(r, n, S₀)` via [`GadgetParams`] and the chain length
//!    `M` (`r³(1+ε)^{M-1}/4 > margin`);
//! 2. builds `G_ε = F_n^M + e_0` and seeds `S*` unit-route packets at
//!    the ingress of `F(1)` (the theorem's initial configuration);
//! 3. per iteration, composes and replays the adversaries of
//!    Lemma 3.15 (bootstrap), Lemma 3.6 × (M−1) (the chain walk of
//!    Lemma 3.13), a quiet drain, and Lemma 3.16 (stitch) — exactly the
//!    three steps of the theorem's iterative construction;
//! 4. measures the queue of fresh packets after each stitch. Growth
//!    across iterations is the theorem's conclusion.
//!
//! Everything runs under the engine's **exact rate-r validator**
//! (including the effective adversary `A'` induced by the Lemma 3.3
//! reroutes, and the lemma's historic/common-edge/new-edge
//! preconditions), so the run certifies both halves of the claim: the
//! adversary is legal, and the backlog diverges.
//!
//! ## Floors, ceilings, and the safety factor
//!
//! The paper ignores floors/ceilings and notes the discrepancy "would
//! add only additive terms that can be compensated for by using a
//! larger S₀ value". This driver is exact, so those additive terms are
//! real; `InstabilityConfig::s0_safety` (default 3×) is that larger
//! `S₀`. The per-gadget amplification is *measured* and reported
//! against the ideal `2(1 − R_n) ≥ 1 + ε`.

use std::sync::Arc;

use aqt_adversary::{lemma315, lemma316, lemma36, GadgetParams};
use aqt_graph::{GEpsilon, Route};
use aqt_protocols::Fifo;
use aqt_sim::metrics::BacklogSample;
use aqt_sim::{
    checkpoint, AdversaryModelSpec, Engine, EngineConfig, EngineError, Schedule, SharedSink,
    SimError, TelemetryConfig, Time,
};

use crate::verify::{check_c_invariant, CInvariantReport};

/// Configuration of the construction.
#[derive(Debug, Clone)]
pub struct InstabilityConfig {
    /// `ε` numerator.
    pub eps_num: u64,
    /// `ε` denominator.
    pub eps_den: u64,
    /// Multiplier on the paper's `S₀` absorbing floor/ceiling slop.
    pub s0_safety: f64,
    /// Margin for the growth condition `r³(1+ε)^{M-1}/4 > margin`.
    pub m_margin: f64,
    /// Override the chain length `M` (None = derive from `m_margin`).
    pub m_override: Option<usize>,
    /// Closed-loop iterations to run.
    pub iterations: usize,
    /// Run with exact rate validation and Lemma 3.3 precondition
    /// checks (recommended; costs ~10%).
    pub validate: bool,
    /// Record every adversary operation for later replay (experiment
    /// E10). Off by default — at large scale the record holds tens of
    /// millions of operations.
    pub record_ops: bool,
    /// Inter-stage boundary settling (see the module docs on floors
    /// and ceilings). On by default; the ablation experiment E12 turns
    /// it off to demonstrate the compounding-lag effect.
    pub settle: bool,
    /// Backlog sampling interval (0 = auto: ~1000 samples).
    pub sample_every: Time,
    /// Divergence watchdog: stop (with a structured report) once the
    /// backlog exceeds this ceiling. `None` = unbounded. For a
    /// construction whose *purpose* is divergence, the ceiling is the
    /// success criterion turned into a resource bound: there is no
    /// reason to keep simulating a queue that has already blown past
    /// the target.
    pub backlog_ceiling: Option<u64>,
    /// Divergence watchdog: stop (with a structured report) once the
    /// simulated clock exceeds this step budget. `None` = unbounded.
    /// Guards against a mis-parameterized run crawling forever.
    pub step_budget: Option<Time>,
    /// Capture a full engine checkpoint at every iteration boundary
    /// (kept in [`InstabilityRun::last_checkpoint`]); a killed run can
    /// then [`InstabilityConstruction::resume`] from the last completed
    /// iteration instead of starting over. Off by default — a
    /// checkpoint clones every live packet.
    pub checkpoint_iterations: bool,
}

impl InstabilityConfig {
    /// Defaults for a given `ε = eps_num/eps_den`.
    pub fn new(eps_num: u64, eps_den: u64) -> Self {
        InstabilityConfig {
            eps_num,
            eps_den,
            s0_safety: 3.0,
            m_margin: 2.0,
            m_override: None,
            iterations: 3,
            validate: true,
            record_ops: false,
            settle: true,
            sample_every: 0,
            backlog_ceiling: None,
            step_budget: None,
            checkpoint_iterations: false,
        }
    }
}

/// Which watchdog fired.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum WatchdogKind {
    /// The backlog exceeded [`InstabilityConfig::backlog_ceiling`].
    BacklogCeiling {
        /// The configured ceiling.
        ceiling: u64,
    },
    /// The clock exceeded [`InstabilityConfig::step_budget`].
    StepBudget {
        /// The configured budget.
        budget: Time,
    },
}

/// Structured early-exit report from a divergence watchdog.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct WatchdogReport {
    /// Which limit fired.
    pub kind: WatchdogKind,
    /// Engine time at the trip.
    pub time: Time,
    /// Backlog at the trip.
    pub backlog: u64,
    /// 0-based iteration in progress when the watchdog fired.
    pub iteration: usize,
    /// Stage that had just finished.
    pub stage: String,
}

/// Loop state at an iteration boundary: everything needed to continue
/// the construction in a fresh process.
#[derive(Debug, Clone)]
pub struct InstabilityCheckpoint {
    /// Full engine state (buffers, clock, metrics, validators).
    pub engine: checkpoint::Checkpoint,
    /// Completed iterations.
    pub iteration: usize,
    /// Fresh queue feeding the next iteration.
    pub s_cur: u64,
    /// Next free cohort tag.
    pub tag_next: u32,
    /// Adversary record so far (empty unless `record_ops`).
    pub recorded: Schedule,
    /// Per-iteration reports so far.
    pub iterations_so_far: Vec<IterationReport>,
    /// Divergence verdict so far.
    pub diverged_so_far: bool,
}

/// Per-stage measurement.
#[derive(Debug, Clone)]
pub struct StageReport {
    /// Stage label (`bootstrap`, `gadget 3`, `drain`, `stitch`).
    pub stage: String,
    /// Engine time when the stage finished.
    pub finish: Time,
    /// Queue the stage started from.
    pub s_in: u64,
    /// Queue the stage produced (measured).
    pub s_out: u64,
    /// Invariant measurement at stage end, where applicable.
    pub invariant: Option<CInvariantReport>,
}

/// Per-iteration measurement.
#[derive(Debug, Clone)]
pub struct IterationReport {
    /// Fresh queue at iteration start (`S₁` in the theorem's proof).
    pub s_start: u64,
    /// Fresh queue after the stitch (`S₄`).
    pub s_end: u64,
    /// The stages.
    pub stages: Vec<StageReport>,
}

impl IterationReport {
    /// `S₄ / S₁` — must exceed 1 for instability.
    pub fn growth(&self) -> f64 {
        if self.s_start == 0 {
            0.0
        } else {
            self.s_end as f64 / self.s_start as f64
        }
    }
}

/// Result of a full run.
#[derive(Debug, Clone)]
pub struct InstabilityRun {
    /// Parameters used.
    pub params: GadgetParams,
    /// Chain length.
    pub m: usize,
    /// Initial seed queue `S*`.
    pub s_star: u64,
    /// Per-iteration reports.
    pub iterations: Vec<IterationReport>,
    /// Did the fresh queue grow in every iteration?
    pub diverged: bool,
    /// Total steps simulated.
    pub total_steps: Time,
    /// Peak backlog observed.
    pub max_backlog: u64,
    /// Sampled backlog series.
    pub series: Vec<BacklogSample>,
    /// Every adversary operation performed, with absolute times —
    /// replayable against other protocols (experiment E10).
    pub recorded: Schedule,
    /// Set when a divergence watchdog ended the run early.
    pub watchdog: Option<WatchdogReport>,
    /// The newest iteration-boundary checkpoint (only with
    /// [`InstabilityConfig::checkpoint_iterations`]).
    pub last_checkpoint: Option<Box<InstabilityCheckpoint>>,
}

/// The Theorem 3.17 construction.
pub struct InstabilityConstruction {
    /// The parameter algebra for this `ε`.
    pub params: GadgetParams,
    /// The network `G_ε`.
    pub geps: GEpsilon,
    /// Chain length `M`.
    pub m: usize,
    cfg: InstabilityConfig,
}

impl InstabilityConstruction {
    /// Build the construction for the given configuration.
    pub fn new(cfg: InstabilityConfig) -> Self {
        let params = GadgetParams::new(cfg.eps_num, cfg.eps_den);
        let m = cfg
            .m_override
            .unwrap_or_else(|| params.choose_m(cfg.m_margin));
        let geps = GEpsilon::new(params.n, m);
        InstabilityConstruction {
            params,
            geps,
            m,
            cfg,
        }
    }

    /// Effective seed floor: `⌈S₀ · safety⌉`, even.
    pub fn s0_effective(&self) -> u64 {
        let s = (self.params.s0 as f64 * self.cfg.s0_safety).ceil() as u64;
        s + (s & 1)
    }

    /// Rough horizon estimate (for auto sample intervals).
    fn estimate_horizon(&self) -> Time {
        let amp = self.params.amplification();
        let r = self.params.rate.as_f64();
        let s0 = self.s0_effective() as f64;
        // per iteration: sum over M stages of ~2S·amp^k, plus stitch
        let per_iter = 2.0 * s0 * (amp.powi(self.m as i32) - 1.0) / (amp - 1.0) + 4.0 * s0;
        let iter_growth = (r.powi(3) * amp.powi(self.m as i32 - 1) / 4.0).max(1.1);
        let total: f64 = (0..self.cfg.iterations)
            .map(|i| per_iter * iter_growth.powi(i as i32))
            .sum();
        total as Time + 1000
    }

    /// Run the closed loop from the initial configuration and measure.
    pub fn run(&self) -> Result<InstabilityRun, SimError> {
        self.run_from(None, None)
    }

    /// Like [`run`](Self::run), but with engine telemetry attached:
    /// hot-path counters and per-window crossing rates stream to
    /// `sink` as the construction executes, every record stamped with
    /// the run's provenance. The telemetry window baselines are set
    /// *before* the initial configuration is seeded, so the first
    /// window covers the run from step zero.
    pub fn run_with_telemetry(
        &self,
        tcfg: TelemetryConfig,
        sink: SharedSink,
    ) -> Result<InstabilityRun, SimError> {
        self.run_from(None, Some((tcfg, sink)))
    }

    /// Continue an interrupted run from an iteration-boundary
    /// checkpoint (see [`InstabilityConfig::checkpoint_iterations`]).
    /// The construction must be configured identically to the one that
    /// produced the checkpoint; the resumed trajectory is then
    /// step-for-step identical to the uninterrupted one.
    pub fn resume(&self, ck: &InstabilityCheckpoint) -> Result<InstabilityRun, SimError> {
        self.run_from(Some(ck), None)
    }

    fn run_from(
        &self,
        from: Option<&InstabilityCheckpoint>,
        telemetry: Option<(TelemetryConfig, SharedSink)>,
    ) -> Result<InstabilityRun, SimError> {
        let params = &self.params;
        let rate = params.rate;
        let n = params.n;
        let graph = Arc::new(self.geps.graph.clone());
        let sample_every = if self.cfg.sample_every > 0 {
            self.cfg.sample_every
        } else {
            (self.estimate_horizon() / 1000).max(1)
        };
        let mut eng = Engine::new(
            Arc::clone(&graph),
            Fifo,
            EngineConfig {
                validate: self.cfg.validate.then(|| AdversaryModelSpec::rate(rate)),
                validate_reroutes: self.cfg.validate,
                sample_every,
                ..Default::default()
            },
        );

        if let Some((tcfg, sink)) = telemetry {
            // Attach before seeding so the crossing baselines are all
            // zero and the first window accounts for every send.
            eng.attach_telemetry(tcfg);
            eng.set_telemetry_sink(Box::new(sink));
        }

        let s_star = 2 * self.s0_effective();
        let ingress = self.geps.ingress();
        let unit = Route::single(&graph, ingress).map_err(aqt_sim::EngineError::from)?;

        let (mut recorded, mut tag_next, mut iterations, mut s_cur, mut diverged, first_iter);
        match from {
            Some(ck) => {
                checkpoint::restore(&mut eng, &ck.engine)?;
                recorded = ck.recorded.clone();
                tag_next = ck.tag_next;
                iterations = ck.iterations_so_far.clone();
                s_cur = ck.s_cur;
                diverged = ck.diverged_so_far;
                first_iter = ck.iteration;
            }
            None => {
                // Initial configuration: S* unit-route packets at
                // ingress(F(1)), admitted as one cohort.
                eng.seed_cohort(unit.clone(), 0, s_star)?;
                recorded = Schedule::new();
                tag_next = 16;
                iterations = Vec::with_capacity(self.cfg.iterations);
                s_cur = s_star;
                diverged = true;
                first_iter = 0;
            }
        }
        // Each stage consumes a block of 4 cohort tags. (A plain
        // variable, not a closure, so the current value can travel
        // with iteration checkpoints.)
        macro_rules! alloc_tags {
            () => {{
                let t = tag_next;
                tag_next += 4;
                t
            }};
        }
        let tripped = |eng: &Engine<Fifo>| -> Option<WatchdogKind> {
            if let Some(ceiling) = self.cfg.backlog_ceiling {
                if eng.backlog() > ceiling {
                    return Some(WatchdogKind::BacklogCeiling { ceiling });
                }
            }
            if let Some(budget) = self.cfg.step_budget {
                if eng.time() > budget {
                    return Some(WatchdogKind::StepBudget { budget });
                }
            }
            None
        };
        let mut watchdog: Option<WatchdogReport> = None;
        let mut last_checkpoint: Option<Box<InstabilityCheckpoint>> = None;

        'iterations: for iter in first_iter..self.cfg.iterations {
            let mut stages = Vec::new();
            let s_iter_start = s_cur;

            // --- Step (1): bootstrap (Lemma 3.15). ---
            let s_half = s_cur / 2;
            if s_half < params.s0 {
                diverged = false;
                break;
            }
            let boot = lemma315::build(
                &graph,
                &self.geps.gadgets[0],
                params,
                s_half,
                eng.time(),
                alloc_tags!(),
            )?;
            record(&mut recorded, &boot.schedule, self.cfg.record_ops);
            boot.schedule.run(&mut eng, boot.finish)?;
            if self.cfg.settle {
                settle_boundary(&mut eng, &self.geps.gadgets[0], 4 * s_half)?;
            }
            let inv = check_c_invariant(&eng, &self.geps.gadgets[0]);
            let mut s = inv.s_effective();
            stages.push(StageReport {
                stage: "bootstrap".into(),
                finish: eng.time(),
                s_in: s_cur,
                s_out: s,
                invariant: Some(inv),
            });
            if let Some(kind) = tripped(&eng) {
                watchdog = Some(WatchdogReport {
                    kind,
                    time: eng.time(),
                    backlog: eng.backlog(),
                    iteration: iter,
                    stage: "bootstrap".into(),
                });
                iterations.push(IterationReport {
                    s_start: s_iter_start,
                    s_end: s,
                    stages,
                });
                break 'iterations;
            }

            // --- Step (2): walk the chain (Lemma 3.13 = (M-1) × Lemma 3.6). ---
            for k in 0..self.m - 1 {
                if s < params.s0 {
                    diverged = false;
                    break;
                }
                let step = lemma36::build(
                    &graph,
                    &self.geps.gadgets[k],
                    &self.geps.gadgets[k + 1],
                    params,
                    s,
                    eng.time(),
                    alloc_tags!(),
                )?;
                record(&mut recorded, &step.schedule, self.cfg.record_ops);
                step.schedule.run(&mut eng, step.finish)?;
                if self.cfg.settle {
                    settle_boundary(&mut eng, &self.geps.gadgets[k + 1], 4 * s)?;
                }
                let inv = check_c_invariant(&eng, &self.geps.gadgets[k + 1]);
                let s_out = inv.s_effective();
                stages.push(StageReport {
                    stage: format!("gadget {}", k + 1),
                    finish: eng.time(),
                    s_in: s,
                    s_out,
                    invariant: Some(inv),
                });
                s = s_out;
                if let Some(kind) = tripped(&eng) {
                    watchdog = Some(WatchdogReport {
                        kind,
                        time: eng.time(),
                        backlog: eng.backlog(),
                        iteration: iter,
                        stage: format!("gadget {}", k + 1),
                    });
                    iterations.push(IterationReport {
                        s_start: s_iter_start,
                        s_end: s,
                        stages,
                    });
                    break 'iterations;
                }
            }
            if s < params.s0 {
                diverged = false;
                iterations.push(IterationReport {
                    s_start: s_iter_start,
                    s_end: s,
                    stages,
                });
                break;
            }

            // --- Drain: no injections for S + n steps; 2S packets
            // funnel into the egress of F(M), leaving >= S - n there
            // (end of the proof of Lemma 3.13). ---
            let egress = self.geps.egress();
            eng.run_quiet(s + n as u64)?;
            let q_egress = eng
                .queue_iter(egress)
                .filter(|p| p.remaining() == 1)
                .count() as u64;
            stages.push(StageReport {
                stage: "drain".into(),
                finish: eng.time(),
                s_in: s,
                s_out: q_egress,
                invariant: None,
            });
            if let Some(kind) = tripped(&eng) {
                watchdog = Some(WatchdogReport {
                    kind,
                    time: eng.time(),
                    backlog: eng.backlog(),
                    iteration: iter,
                    stage: "drain".into(),
                });
                iterations.push(IterationReport {
                    s_start: s_iter_start,
                    s_end: q_egress,
                    stages,
                });
                break 'iterations;
            }

            // --- Step (3): stitch (Lemma 3.16) over
            //     (egress(F(M)), e0, ingress(F(1))). ---
            let [a0, a1, a2] = self.geps.stitch_path();
            let stitch = lemma316::build(
                &graph,
                a0,
                a1,
                a2,
                rate,
                q_egress,
                eng.time(),
                alloc_tags!(),
            )?;
            let fresh_tag = stitch.tags.fresh;
            record(&mut recorded, &stitch.schedule, self.cfg.record_ops);
            stitch.schedule.run(&mut eng, stitch.finish)?;
            // Settle until only fresh packets remain. Mixed packets all
            // precede the fresh cohort in the ingress queue (they were
            // injected earlier into the same buffer), so "everything is
            // fresh" reduces to two O(1) checks: nothing lives outside
            // the ingress buffer, and its front packet is fresh.
            let mut settle = 0u64;
            while settle < 4 * q_egress + 16 {
                let only_ingress = eng.backlog() == eng.queue_len(ingress) as u64;
                let front_fresh = eng
                    .queue_iter(ingress)
                    .next()
                    .is_none_or(|p| p.tag == fresh_tag);
                if only_ingress && front_fresh {
                    break;
                }
                eng.run_quiet(1)?;
                settle += 1;
            }
            // The next iteration's flat queue: every unit-route packet
            // at the ingress. Almost all are stitch-fresh; a handful of
            // carrier/mixer packets can interleave behind the first
            // fresh arrivals (they too have unit remaining routes and
            // behave identically — draining them would cost the fresh
            // packets queued ahead of them for no benefit). They are
            // counted in, with a purity floor asserted.
            let total = eng
                .queue_iter(ingress)
                .filter(|p| p.remaining() == 1)
                .count() as u64;
            let fresh = eng
                .queue_iter(ingress)
                .filter(|p| p.tag == fresh_tag && p.remaining() == 1)
                .count() as u64;
            debug_assert_eq!(
                total,
                eng.backlog(),
                "the stitch must leave unit-route packets only, all at the ingress"
            );
            debug_assert!(
                fresh as f64 >= 0.97 * total as f64,
                "stitch cohort must be almost entirely fresh ({fresh}/{total})"
            );
            stages.push(StageReport {
                stage: "stitch".into(),
                finish: eng.time(),
                s_in: q_egress,
                s_out: total,
                invariant: None,
            });

            if total <= s_iter_start {
                diverged = false;
            }
            iterations.push(IterationReport {
                s_start: s_iter_start,
                s_end: total,
                stages,
            });
            s_cur = total;
            // An iteration boundary is the natural resume point: the
            // whole queue is flat at the ingress, so the checkpoint is
            // as small as it ever gets.
            if self.cfg.checkpoint_iterations {
                last_checkpoint = Some(Box::new(InstabilityCheckpoint {
                    engine: checkpoint::checkpoint(&eng),
                    iteration: iter + 1,
                    s_cur,
                    tag_next,
                    recorded: recorded.clone(),
                    iterations_so_far: iterations.clone(),
                    diverged_so_far: diverged,
                }));
            }
            if let Some(kind) = tripped(&eng) {
                watchdog = Some(WatchdogReport {
                    kind,
                    time: eng.time(),
                    backlog: eng.backlog(),
                    iteration: iter,
                    stage: "stitch".into(),
                });
                break 'iterations;
            }
        }

        eng.finish_telemetry();
        let max_backlog = eng
            .metrics()
            .series()
            .iter()
            .map(|p| p.backlog)
            .max()
            .unwrap_or(eng.backlog());
        Ok(InstabilityRun {
            params: params.clone(),
            m: self.m,
            s_star,
            diverged: diverged && !iterations.is_empty(),
            total_steps: eng.time(),
            max_backlog: max_backlog.max(eng.backlog()),
            series: eng.metrics().series().to_vec(),
            recorded,
            iterations,
            watchdog,
            last_checkpoint,
        })
    }
}

/// Append every op of `s` to the master record (when recording).
fn record(master: &mut Schedule, s: &Schedule, enabled: bool) {
    if !enabled {
        return;
    }
    for op in s.ops() {
        master.push(op.clone());
    }
}

/// Drain lagging *old* packets out of a gadget's ingress boundary
/// buffer before measuring `C(S', F')` and starting the next stage.
///
/// The paper's exact accounting ("we ignore floors and ceilings…")
/// leaves every old packet across `a'` by time `2S + n`. The exact
/// integer simulation accumulates an O(n) lag per stage; left alone it
/// contaminates the FIFO order at the next boundary and *compounds*
/// geometrically down the chain (measured ≈ ×1.3 per gadget —
/// eventually collapsing long chains). A few quiet steps let the
/// stragglers clear into the e-buffers, at the cost of a handful of
/// top-up packets absorbed early — an additive loss the `S₀` safety
/// factor absorbs, exactly the compensation the paper prescribes.
///
/// Returns the number of quiet steps taken.
fn settle_boundary(
    eng: &mut Engine<Fifo>,
    g: &aqt_graph::GadgetHandles,
    cap: u64,
) -> Result<u64, EngineError> {
    let mut proper_prefix: Vec<aqt_graph::EdgeId> = vec![g.ingress];
    proper_prefix.extend_from_slice(&g.f_path);
    proper_prefix.push(g.egress);
    // Each quiet step crosses at most one packet out of the boundary
    // buffer, so after counting F foreigners we can run F steps before
    // rescanning — O(queue) scans happen only once per block instead of
    // once per step.
    let mut steps = 0u64;
    while steps < cap {
        let foreign = {
            let routes = eng.routes();
            eng.queue_iter(g.ingress)
                .filter(|p| {
                    let rem = &routes.get(p.route_id())[p.traversed()..];
                    rem.len() < proper_prefix.len()
                        || rem[..proper_prefix.len()] != proper_prefix[..]
                })
                .count() as u64
        };
        if foreign == 0 {
            break;
        }
        let block = foreign.min(cap - steps).max(1);
        eng.run_quiet(block)?;
        steps += block;
    }
    Ok(steps)
}

#[cfg(test)]
mod tests {
    use super::*;

    /// One full iteration at ε = 1/4 with validation on — the core
    /// end-to-end check of the reproduction. (~10^5 steps; runs in
    /// seconds with the test profile's opt-level.)
    #[test]
    fn one_iteration_grows_the_queue() {
        let mut cfg = InstabilityConfig::new(1, 4);
        cfg.iterations = 1;
        cfg.s0_safety = 2.0;
        cfg.m_margin = 1.5;
        let c = InstabilityConstruction::new(cfg);
        let run = c.run().expect("legal adversary");
        assert_eq!(run.iterations.len(), 1);
        let it = &run.iterations[0];
        assert!(
            it.s_end > it.s_start,
            "fresh queue must grow: {} -> {} (stages: {:?})",
            it.s_start,
            it.s_end,
            it.stages
                .iter()
                .map(|s| (s.stage.clone(), s.s_in, s.s_out))
                .collect::<Vec<_>>()
        );
        assert!(run.diverged);
    }

    #[test]
    fn bootstrap_amplifies_by_one_plus_eps() {
        // Check the first stage alone: C(S', F(1)) with S' >= S(1+eps)·(1-slop).
        let mut cfg = InstabilityConfig::new(1, 4);
        cfg.iterations = 1;
        cfg.s0_safety = 2.0;
        cfg.m_margin = 1.5;
        let c = InstabilityConstruction::new(cfg);
        let run = c.run().expect("legal adversary");
        let boot = &run.iterations[0].stages[0];
        assert_eq!(boot.stage, "bootstrap");
        let s_half = (boot.s_in / 2) as f64;
        assert!(
            boot.s_out as f64 >= s_half * (1.0 + 0.25) * 0.97,
            "bootstrap amplification too small: {} from S={}",
            boot.s_out,
            s_half
        );
        // the invariant should hold essentially exactly
        let inv = boot.invariant.as_ref().unwrap();
        assert!(inv.e_all_nonempty, "every e-buffer nonempty: {inv:?}");
        assert_eq!(inv.stragglers, 0);
    }
}
