//! The gadget invariant `C(S, F_n)` (Definition 3.5) as an executable
//! check.
//!
//! `C(S, F_n)` holds when:
//!
//! 1. the buffers of `e_1 … e_n` hold `S` packets in total;
//! 2. every `e_i` buffer is nonempty, and its packets' remaining routes
//!    are `e_i, …, e_n, a'` (possibly continuing beyond `a'` — in a
//!    chain the routes have been extended onward; the invariant
//!    constrains the prefix through `a'`);
//! 3. the buffer of `a` holds `S` packets, each with remaining route
//!    `a, f_1, …, f_n, a'` (same caveat);
//! 4. no other packets reside in `F_n`.
//!
//! The driver measures rather than assumes: after each stage it calls
//! [`check_c_invariant`] and steers the next stage by the *measured*
//! `S` (the paper's floor/ceiling slop, absorbed there by a larger
//! `S₀`, shows up here as a tiny deficit the safety factor covers).

use aqt_graph::GadgetHandles;
use aqt_sim::{
    CertificateSpec, Engine, InvariantKind, Packet, Protocol, ReproBundle, SentinelConfig,
    SimError, Violation, ViolationReport,
};

use crate::theory::StabilityCertificate;

/// Measured state of a gadget vs. `C(S, F_n)`.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct CInvariantReport {
    /// Total packets across the `e_i` buffers (clause 1's `S`).
    pub e_total: u64,
    /// Is every `e_i` buffer nonempty (clause 2)?
    pub e_all_nonempty: bool,
    /// Packets in `e_i` buffers whose remaining route does *not* match
    /// `e_i, …, e_n, a'` (clause 2 violations).
    pub e_misrouted: u64,
    /// Packets at `a` with remaining route `a, f_1…f_n, a'`
    /// (clause 3's `S`).
    pub a_count: u64,
    /// Packets at `a` with any other remaining route.
    pub a_foreign: u64,
    /// Packets in the gadget's `f`-path or egress buffers (clause 4
    /// violations; the egress buffer belongs to the next gadget in a
    /// chain, but must be empty for the invariant).
    pub stragglers: u64,
}

impl CInvariantReport {
    /// Does `C(S, F_n)` hold exactly, and for which `S`?
    pub fn holds(&self) -> Option<u64> {
        if self.e_all_nonempty
            && self.e_misrouted == 0
            && self.a_foreign == 0
            && self.stragglers == 0
            && self.e_total == self.a_count
        {
            Some(self.e_total)
        } else {
            None
        }
    }

    /// The usable queue size: `min(e_total, a_count)`. The adaptive
    /// driver uses this even when the invariant holds only
    /// approximately.
    pub fn s_effective(&self) -> u64 {
        self.e_total.min(self.a_count)
    }
}

/// Does `p`'s remaining route (resolved through `routes`) begin with
/// `prefix`?
fn remaining_starts_with(
    routes: &aqt_sim::RouteTable,
    p: &Packet,
    prefix: &[aqt_graph::EdgeId],
) -> bool {
    let rem = &routes.get(p.route_id())[p.traversed()..];
    rem.len() >= prefix.len() && rem[..prefix.len()] == *prefix
}

/// Measure gadget `g` in `engine` against `C(S, F_n)`.
pub fn check_c_invariant<P: Protocol>(engine: &Engine<P>, g: &GadgetHandles) -> CInvariantReport {
    let n = g.n();
    let mut e_total = 0u64;
    let mut e_all_nonempty = true;
    let mut e_misrouted = 0u64;
    for i in 0..n {
        let qlen = engine.queue_len(g.e_path[i]);
        if qlen == 0 {
            e_all_nonempty = false;
        }
        e_total += qlen as u64;
        // expected remaining prefix: e_i, …, e_n, a'
        let mut prefix: Vec<aqt_graph::EdgeId> = g.e_path[i..].to_vec();
        prefix.push(g.egress);
        for p in engine.queue_iter(g.e_path[i]) {
            if !remaining_starts_with(engine.routes(), p, &prefix) {
                e_misrouted += 1;
            }
        }
    }

    let mut a_count = 0u64;
    let mut a_foreign = 0u64;
    {
        let mut prefix: Vec<aqt_graph::EdgeId> = vec![g.ingress];
        prefix.extend_from_slice(&g.f_path);
        prefix.push(g.egress);
        for p in engine.queue_iter(g.ingress) {
            if remaining_starts_with(engine.routes(), p, &prefix) {
                a_count += 1;
            } else {
                a_foreign += 1;
            }
        }
    }

    let mut stragglers = 0u64;
    for &e in &g.f_path {
        stragglers += engine.queue_len(e) as u64;
    }
    stragglers += engine.queue_len(g.egress) as u64;

    CInvariantReport {
        e_total,
        e_all_nonempty,
        e_misrouted,
        a_count,
        a_foreign,
        stragglers,
    }
}

/// The sentinel-side mirror of a [`StabilityCertificate`]: the same
/// `(w, r, d, S)` parameters plus the protocol-class flag the
/// theorems dispatch on. `spec.bound()` computes exactly what
/// [`StabilityCertificate::bound_for`] computes (pinned equal by the
/// tests below), so the engine's certificate invariant enforces the
/// theorem this crate derives.
pub fn certificate_spec(cert: &StabilityCertificate, time_priority: bool) -> CertificateSpec {
    CertificateSpec {
        window: cert.window,
        rate: cert.rate,
        d: cert.d as u64,
        initial: cert.initial,
        time_priority,
    }
}

/// Arm `engine`'s sentinel with the theorem certificate matching
/// `cert` and the engine's protocol class, so every run of a stability
/// experiment *enforces* the bound it claims rather than only
/// measuring it afterwards.
///
/// Returns the enforced per-buffer wait bound, or `None` — leaving the
/// engine untouched — when no theorem applies at this `(r, d, S)`
/// (e.g. `r > 1/(d+1)` for a greedy protocol). If a sentinel is
/// already attached its configuration (cadence, severities, seed) is
/// preserved; only the certificate is installed.
pub fn attach_certificate_sentinel<P: Protocol>(
    engine: &mut Engine<P>,
    cert: &StabilityCertificate,
) -> Option<u64> {
    let spec = certificate_spec(cert, engine.protocol().is_time_priority());
    let bound = spec.bound()?;
    let cfg = engine
        .sentinel()
        .map_or_else(SentinelConfig::default, |s| s.config().clone())
        .with_certificate(spec);
    engine.attach_sentinel(cfg);
    Some(bound)
}

/// [`check_c_invariant`], promoted to a sentinel-grade error: when
/// `C(S, F_n)` fails the result is a [`SimError::InvariantViolated`]
/// carrying the full measured report and a reproduction bundle
/// (snapshot + fault plan at the failing step), exactly like an
/// engine-internal invariant breach. On success returns the measured
/// `S`.
pub fn enforce_c_invariant<P: Protocol>(
    engine: &Engine<P>,
    g: &GadgetHandles,
) -> Result<u64, SimError> {
    let rep = check_c_invariant(engine, g);
    if let Some(s) = rep.holds() {
        return Ok(s);
    }
    let violation = Violation {
        kind: InvariantKind::GadgetInvariant,
        time: engine.time(),
        detail: format!(
            "C(S, F_n) failed: e_total={} a_count={} e_all_nonempty={} \
             e_misrouted={} a_foreign={} stragglers={}",
            rep.e_total,
            rep.a_count,
            rep.e_all_nonempty,
            rep.e_misrouted,
            rep.a_foreign,
            rep.stragglers
        ),
    };
    let bundle = ReproBundle {
        seed: engine.sentinel().and_then(|s| s.config().seed),
        step: engine.time(),
        snapshot: aqt_sim::snapshot::capture(engine),
        fault_plan: engine.faults().cloned(),
        backlog: engine.metrics().series().to_vec(),
    };
    Err(SimError::InvariantViolated(Box::new(ViolationReport {
        violation,
        bundle,
    })))
}

#[cfg(test)]
mod tests {
    use super::*;
    use aqt_graph::{FnGadget, Route};
    use aqt_protocols::Fifo;
    use aqt_sim::{Engine, EngineConfig};
    use std::sync::Arc;

    /// Seed an exact C(S, F_n) state: `per_e` packets in each e_i
    /// buffer, `s` packets at the ingress.
    fn seeded_gadget(n: usize, s: u64) -> (Engine<Fifo>, FnGadget) {
        let g = FnGadget::new(n);
        let graph = Arc::new(g.graph.clone());
        let mut eng = Engine::new(Arc::clone(&graph), Fifo, EngineConfig::default());
        // spread s packets over the n e-buffers, round-robin
        for k in 0..s {
            let i = (k as usize) % n;
            let mut edges: Vec<_> = g.handles.e_path[i..].to_vec();
            edges.push(g.handles.egress);
            eng.seed(Route::new(&graph, edges).unwrap(), 1).unwrap();
        }
        let mut a_edges = vec![g.handles.ingress];
        a_edges.extend_from_slice(&g.handles.f_path);
        a_edges.push(g.handles.egress);
        let a_route = Route::new(&graph, a_edges).unwrap();
        for _ in 0..s {
            eng.seed(a_route.clone(), 2).unwrap();
        }
        (eng, g)
    }

    #[test]
    fn exact_seeded_state_satisfies_invariant() {
        let (eng, g) = seeded_gadget(4, 12);
        let rep = check_c_invariant(&eng, &g.handles);
        assert_eq!(rep.holds(), Some(12));
        assert_eq!(rep.s_effective(), 12);
    }

    #[test]
    fn detects_empty_e_buffer() {
        // s < n leaves some e-buffers empty
        let (eng, g) = seeded_gadget(5, 3);
        let rep = check_c_invariant(&eng, &g.handles);
        assert!(!rep.e_all_nonempty);
        assert!(rep.holds().is_none());
    }

    #[test]
    fn detects_stragglers() {
        let g = FnGadget::new(3);
        let graph = Arc::new(g.graph.clone());
        let mut eng = Engine::new(Arc::clone(&graph), Fifo, EngineConfig::default());
        // a packet sitting on the f-path violates clause 4
        let f_route = Route::single(&graph, g.handles.f_path[1]).unwrap();
        eng.seed(f_route, 0).unwrap();
        let rep = check_c_invariant(&eng, &g.handles);
        assert_eq!(rep.stragglers, 1);
        assert!(rep.holds().is_none());
    }

    #[test]
    fn detects_misrouted_e_packets() {
        let g = FnGadget::new(3);
        let graph = Arc::new(g.graph.clone());
        let mut eng = Engine::new(Arc::clone(&graph), Fifo, EngineConfig::default());
        // a packet at e_2 that stops there (does not continue to a')
        let bad = Route::single(&graph, g.handles.e_path[1]).unwrap();
        eng.seed(bad, 0).unwrap();
        let rep = check_c_invariant(&eng, &g.handles);
        assert_eq!(rep.e_misrouted, 1);
    }

    #[test]
    fn certificate_spec_bound_pins_theory_bounds() {
        // The sentinel's CertificateSpec::bound() must agree with
        // StabilityCertificate across protocol classes and S-values —
        // otherwise the runtime invariant enforces a different theorem
        // than the one this crate certifies.
        let cases = [
            StabilityCertificate::new(10, aqt_sim::Ratio::new(1, 4), 3),
            StabilityCertificate::new(10, aqt_sim::Ratio::new(26, 100), 3),
            StabilityCertificate::new(9, aqt_sim::Ratio::new(1, 3), 3),
            StabilityCertificate::with_initial(5, aqt_sim::Ratio::new(1, 4), 2, 20),
            StabilityCertificate::with_initial(5, aqt_sim::Ratio::new(1, 3), 2, 20),
            StabilityCertificate::new(5, aqt_sim::Ratio::new(1, 2), 0),
        ];
        for cert in cases {
            assert_eq!(
                certificate_spec(&cert, true).bound(),
                cert.bound_for(&Fifo),
                "time-priority bound diverged for {cert:?}"
            );
            assert_eq!(
                certificate_spec(&cert, false).bound(),
                cert.bound_for(&aqt_protocols::Ntg),
                "greedy bound diverged for {cert:?}"
            );
        }
    }

    #[test]
    fn attach_certificate_sentinel_installs_the_bound() {
        let (mut eng, _g) = seeded_gadget(3, 6);
        // FIFO is time-priority; d = 3, r = 1/3, w = 9 -> bound 3.
        let cert = StabilityCertificate::new(9, aqt_sim::Ratio::new(1, 3), 3);
        assert_eq!(attach_certificate_sentinel(&mut eng, &cert), Some(3));
        let spec = eng
            .sentinel()
            .expect("sentinel attached")
            .config()
            .certificate_spec
            .expect("certificate installed");
        assert_eq!(spec.bound(), Some(3));
        assert!(spec.time_priority);
        // A rate where no theorem applies: engine left untouched.
        let mut plain = seeded_gadget(3, 6).0;
        let hot = StabilityCertificate::new(9, aqt_sim::Ratio::new(1, 2), 3);
        assert_eq!(attach_certificate_sentinel(&mut plain, &hot), None);
        assert!(plain.sentinel().is_none());
    }

    #[test]
    fn enforce_c_invariant_returns_s_or_typed_error() {
        let (eng, g) = seeded_gadget(4, 12);
        assert_eq!(enforce_c_invariant(&eng, &g.handles).unwrap(), 12);

        // A straggler on the f-path breaks clause 4.
        let g = FnGadget::new(3);
        let graph = Arc::new(g.graph.clone());
        let mut eng = Engine::new(Arc::clone(&graph), Fifo, EngineConfig::default());
        let f_route = Route::single(&graph, g.handles.f_path[1]).unwrap();
        eng.seed(f_route, 0).unwrap();
        let err = enforce_c_invariant(&eng, &g.handles).unwrap_err();
        match err {
            aqt_sim::SimError::InvariantViolated(report) => {
                assert_eq!(report.violation.kind, InvariantKind::GadgetInvariant);
                assert!(report.violation.detail.contains("stragglers=1"));
                // The bundle is replayable: restoring its snapshot
                // reproduces the failing state exactly.
                let mut fresh = Engine::new(Arc::clone(&graph), Fifo, EngineConfig::default());
                aqt_sim::snapshot::restore(&mut fresh, &report.bundle.snapshot).unwrap();
                assert!(enforce_c_invariant(&fresh, &g.handles).is_err());
            }
            other => panic!("expected InvariantViolated, got {other:?}"),
        }
    }

    #[test]
    fn foreign_a_packets_counted() {
        let g = FnGadget::new(3);
        let graph = Arc::new(g.graph.clone());
        let mut eng = Engine::new(Arc::clone(&graph), Fifo, EngineConfig::default());
        let unit = Route::single(&graph, g.handles.ingress).unwrap();
        eng.seed(unit, 0).unwrap();
        let rep = check_c_invariant(&eng, &g.handles);
        assert_eq!(rep.a_foreign, 1);
        assert_eq!(rep.a_count, 0);
    }
}
