//! FIFO — first-in-first-out, the paper's protagonist.

use std::collections::VecDeque;

use aqt_graph::{EdgeId, Graph};
use aqt_sim::{Discipline, Packet, Protocol, Time};

/// FIFO selects the packet that arrived at the buffer earliest. Since
/// the engine keeps buffers in arrival order, that is always index 0.
///
/// FIFO is *historic* (its decisions ignore routes entirely) and
/// *time-priority* (a packet present at time `t` beats anything that
/// arrives — hence anything injected — later). The paper proves it
/// can be unstable at every rate `r > 1/2` (Theorem 3.17) yet is
/// stable whenever `r ≤ 1/d` (Theorem 4.3).
#[derive(Debug, Clone, Copy, Default)]
pub struct Fifo;

impl Protocol for Fifo {
    fn name(&self) -> &str {
        "FIFO"
    }

    #[inline]
    fn select(&mut self, _: Time, _: EdgeId, _: &VecDeque<Packet>, _: &Graph) -> usize {
        0
    }

    fn is_historic(&self) -> bool {
        true
    }

    fn is_time_priority(&self) -> bool {
        true
    }

    fn discipline(&self) -> Discipline {
        Discipline::ArrivalOrder
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn always_front() {
        let g = aqt_graph::topologies::line(1);
        let q: VecDeque<Packet> = vec![
            Packet::synthetic(0, 0, 3, 0, vec![EdgeId(0)], 0),
            Packet::synthetic(1, 0, 1, 0, vec![EdgeId(0)], 0),
        ]
        .into();
        assert_eq!(Fifo.select(5, EdgeId(0), &q, &g), 0);
        assert!(Fifo.is_historic());
        assert!(Fifo.is_time_priority());
        assert_eq!(Fifo.name(), "FIFO");
    }
}
