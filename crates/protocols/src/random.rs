//! Uniformly random selection — a seeded baseline policy.

use std::collections::VecDeque;

use aqt_graph::{EdgeId, Graph};
use aqt_sim::{Packet, Protocol, Time};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

/// Selects a uniformly random packet from the buffer. Deterministic for
/// a fixed seed. Historic (it never looks at routes).
#[derive(Debug, Clone)]
pub struct Random {
    rng: StdRng,
}

impl Random {
    /// A random policy with the given seed.
    pub fn seeded(seed: u64) -> Self {
        Random {
            rng: StdRng::seed_from_u64(seed),
        }
    }
}

impl Default for Random {
    fn default() -> Self {
        Random::seeded(0)
    }
}

impl Protocol for Random {
    fn name(&self) -> &str {
        "RANDOM"
    }

    #[inline]
    fn select(&mut self, _: Time, _: EdgeId, queue: &VecDeque<Packet>, _: &Graph) -> usize {
        self.rng.gen_range(0..queue.len())
    }

    fn is_historic(&self) -> bool {
        true
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn in_range_and_deterministic() {
        let g = aqt_graph::topologies::line(1);
        let q: VecDeque<Packet> = (0..10)
            .map(|i| Packet::synthetic(i, 0, 0, 0, vec![EdgeId(0)], 0))
            .collect();
        let picks1: Vec<usize> = {
            let mut p = Random::seeded(42);
            (0..50).map(|t| p.select(t, EdgeId(0), &q, &g)).collect()
        };
        let picks2: Vec<usize> = {
            let mut p = Random::seeded(42);
            (0..50).map(|t| p.select(t, EdgeId(0), &q, &g)).collect()
        };
        assert_eq!(picks1, picks2);
        assert!(picks1.iter().all(|&i| i < 10));
        // not constant (with overwhelming probability for this seed)
        assert!(picks1.iter().any(|&i| i != picks1[0]));
    }
}
