//! Protocol classification report — the paper's taxonomy as data.

use aqt_sim::Protocol;

/// Static facts about a protocol, as used by the paper's theorems.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Classification {
    /// Protocol display name.
    pub name: String,
    /// All protocols in this crate are greedy (work-conserving) — the
    /// engine enforces it. Kept explicit for reporting.
    pub greedy: bool,
    /// Historic per Definition 3.1 (rerouting of Lemma 3.3 applies).
    pub historic: bool,
    /// Time-priority per Definition 4.2 (stability threshold improves
    /// from `1/(d+1)` to `1/d`, Theorem 4.3).
    pub time_priority: bool,
}

/// Classify a protocol instance.
pub fn classify<P: Protocol>(p: &P) -> Classification {
    Classification {
        name: p.name().to_string(),
        greedy: true,
        historic: p.is_historic(),
        time_priority: p.is_time_priority(),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{Ffs, Fifo, Ftg, Lifo, Lis, Nis, Ntg, Nts, Random};

    #[test]
    fn paper_taxonomy() {
        // Definition 3.1's examples: FIFO, LIFO, LIS, NIS, FFS are
        // historic; FTG and NTG are not.
        assert!(classify(&Fifo).historic);
        assert!(classify(&Lifo).historic);
        assert!(classify(&Lis).historic);
        assert!(classify(&Nis).historic);
        assert!(classify(&Ffs).historic);
        assert!(classify(&Nts).historic);
        assert!(classify(&Random::default()).historic);
        assert!(!classify(&Ftg).historic);
        assert!(!classify(&Ntg).historic);

        // Theorem 4.3's remark: FIFO and LIS are time-priority.
        assert!(classify(&Fifo).time_priority);
        assert!(classify(&Lis).time_priority);
        for c in [
            classify(&Lifo),
            classify(&Nis),
            classify(&Ffs),
            classify(&Nts),
            classify(&Ftg),
            classify(&Ntg),
            classify(&Random::default()),
        ] {
            assert!(!c.time_priority, "{} should not be time-priority", c.name);
        }
    }
}
