//! Protocol classification report — the paper's taxonomy as data.

use aqt_sim::{CertificateSpec, Protocol, Ratio};

/// Static facts about a protocol, as used by the paper's theorems.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Classification {
    /// Protocol display name.
    pub name: String,
    /// All protocols in this crate are greedy (work-conserving) — the
    /// engine enforces it. Kept explicit for reporting.
    pub greedy: bool,
    /// Historic per Definition 3.1 (rerouting of Lemma 3.3 applies).
    pub historic: bool,
    /// Time-priority per Definition 4.2 (stability threshold improves
    /// from `1/(d+1)` to `1/d`, Theorem 4.3).
    pub time_priority: bool,
}

impl Classification {
    /// The stability threshold `r*` of this protocol class against
    /// routes of length at most `d`: `1/d` for time-priority protocols
    /// (Theorem 4.3), `1/(d+1)` for every other greedy protocol
    /// (Theorem 4.1). `None` only in the degenerate time-priority
    /// `d = 0` case, where Theorem 4.3 has nothing to say.
    pub fn stability_threshold(&self, d: usize) -> Option<Ratio> {
        if self.time_priority {
            (d > 0).then(|| Ratio::new(1, d as u64))
        } else {
            Some(Ratio::new(1, d as u64 + 1))
        }
    }

    /// The sentinel certificate this classification licenses for a
    /// `(window, rate)` adversary, routes of length at most `d`, and an
    /// `S = initial` starting configuration. Feed the result to
    /// `SentinelConfig::with_certificate` to have the engine enforce
    /// the matching theorem bound at runtime ([`CertificateSpec::bound`]
    /// is `None` when the rate is above the class threshold).
    pub fn certificate_spec(
        &self,
        window: u64,
        rate: Ratio,
        d: usize,
        initial: u64,
    ) -> CertificateSpec {
        CertificateSpec {
            window,
            rate,
            d: d as u64,
            initial,
            time_priority: self.time_priority,
        }
    }
}

/// Classify a protocol instance.
pub fn classify<P: Protocol>(p: &P) -> Classification {
    Classification {
        name: p.name().to_string(),
        greedy: true,
        historic: p.is_historic(),
        time_priority: p.is_time_priority(),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{Ffs, Fifo, Ftg, Lifo, Lis, Nis, Ntg, Nts, Random};

    #[test]
    fn paper_taxonomy() {
        // Definition 3.1's examples: FIFO, LIFO, LIS, NIS, FFS are
        // historic; FTG and NTG are not.
        assert!(classify(&Fifo).historic);
        assert!(classify(&Lifo).historic);
        assert!(classify(&Lis).historic);
        assert!(classify(&Nis).historic);
        assert!(classify(&Ffs).historic);
        assert!(classify(&Nts).historic);
        assert!(classify(&Random::default()).historic);
        assert!(!classify(&Ftg).historic);
        assert!(!classify(&Ntg).historic);

        // Theorem 4.3's remark: FIFO and LIS are time-priority.
        assert!(classify(&Fifo).time_priority);
        assert!(classify(&Lis).time_priority);
        for c in [
            classify(&Lifo),
            classify(&Nis),
            classify(&Ffs),
            classify(&Nts),
            classify(&Ftg),
            classify(&Ntg),
            classify(&Random::default()),
        ] {
            assert!(!c.time_priority, "{} should not be time-priority", c.name);
        }
    }

    #[test]
    fn stability_thresholds_follow_the_theorems() {
        // FIFO (time-priority): r* = 1/d; NTG (merely greedy): 1/(d+1).
        assert_eq!(
            classify(&Fifo).stability_threshold(3),
            Some(Ratio::new(1, 3))
        );
        assert_eq!(
            classify(&Ntg).stability_threshold(3),
            Some(Ratio::new(1, 4))
        );
        // Degenerate d = 0: Theorem 4.3 is silent, Theorem 4.1 is not.
        assert_eq!(classify(&Fifo).stability_threshold(0), None);
        assert_eq!(classify(&Ntg).stability_threshold(0), Some(Ratio::ONE));
    }

    #[test]
    fn certificate_spec_carries_the_class() {
        let spec = classify(&Fifo).certificate_spec(9, Ratio::new(1, 3), 3, 0);
        assert!(spec.time_priority);
        assert_eq!(spec.bound(), Some(3)); // Theorem 4.3: ⌈9/3⌉
        let spec = classify(&Ntg).certificate_spec(9, Ratio::new(1, 3), 3, 0);
        assert!(!spec.time_priority);
        assert_eq!(spec.bound(), None); // 1/3 > 1/(d+1) = 1/4
    }
}
