//! Shared selection helpers with explicit, deterministic tie-breaking.

use std::collections::VecDeque;

use aqt_sim::Packet;

/// Index of the queue element minimizing `key`; among ties, the one
/// closest to the queue front (i.e. earliest arrival) wins.
pub fn argmin_front<K: Ord>(queue: &VecDeque<Packet>, key: impl Fn(&Packet) -> K) -> usize {
    debug_assert!(!queue.is_empty());
    let mut best = 0usize;
    let mut best_key = key(&queue[0]);
    for (i, p) in queue.iter().enumerate().skip(1) {
        let k = key(p);
        if k < best_key {
            best = i;
            best_key = k;
        }
    }
    best
}

/// Index of the queue element maximizing `key`; among ties, the one
/// closest to the queue front wins.
pub fn argmax_front<K: Ord>(queue: &VecDeque<Packet>, key: impl Fn(&Packet) -> K) -> usize {
    debug_assert!(!queue.is_empty());
    let mut best = 0usize;
    let mut best_key = key(&queue[0]);
    for (i, p) in queue.iter().enumerate().skip(1) {
        let k = key(p);
        if k > best_key {
            best = i;
            best_key = k;
        }
    }
    best
}

/// Index of the queue element maximizing `key`; among ties, the one
/// closest to the queue *back* (latest arrival) wins. Used by LIFO-like
/// policies where "newest" should win ties.
pub fn argmax_back<K: Ord>(queue: &VecDeque<Packet>, key: impl Fn(&Packet) -> K) -> usize {
    debug_assert!(!queue.is_empty());
    let mut best = 0usize;
    let mut best_key = key(&queue[0]);
    for (i, p) in queue.iter().enumerate().skip(1) {
        let k = key(p);
        if k >= best_key {
            best = i;
            best_key = k;
        }
    }
    best
}

#[cfg(test)]
mod tests {
    use super::*;
    use aqt_graph::EdgeId;
    use aqt_sim::{Packet, PacketId};

    fn mk(id: u64, arrived: u64) -> Packet {
        let _ = PacketId(id); // silence unused import in some cfgs
        Packet::synthetic(id, 0, arrived, 0, vec![EdgeId(0)], 0)
    }

    #[test]
    fn min_prefers_front_on_tie() {
        let q: VecDeque<Packet> = vec![mk(0, 5), mk(1, 5), mk(2, 9)].into();
        assert_eq!(argmin_front(&q, |p| p.arrived_at), 0);
    }

    #[test]
    fn max_front_vs_back_on_tie() {
        let q: VecDeque<Packet> = vec![mk(0, 5), mk(1, 5), mk(2, 1)].into();
        assert_eq!(argmax_front(&q, |p| p.arrived_at), 0);
        assert_eq!(argmax_back(&q, |p| p.arrived_at), 1);
    }

    #[test]
    fn strict_extrema() {
        let q: VecDeque<Packet> = vec![mk(0, 3), mk(1, 1), mk(2, 7)].into();
        assert_eq!(argmin_front(&q, |p| p.arrived_at), 1);
        assert_eq!(argmax_front(&q, |p| p.arrived_at), 2);
        assert_eq!(argmax_back(&q, |p| p.arrived_at), 2);
    }
}
