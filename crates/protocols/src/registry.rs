//! Name-based protocol construction, for sweeps and CLI examples.

use aqt_sim::Protocol;

use crate::{Ffs, Fifo, Ftg, Lifo, Lis, Nis, Ntg, Nts, Random};

/// Names of all bundled protocols, in canonical order.
pub fn protocol_names() -> &'static [&'static str] {
    &[
        "FIFO", "LIFO", "LIS", "NIS", "FTG", "NTG", "FFS", "NTS", "RANDOM",
    ]
}

/// Construct a protocol by (case-insensitive) name. `seed` is used only
/// by randomized protocols.
pub fn by_name(name: &str, seed: u64) -> Option<Box<dyn Protocol>> {
    let p: Box<dyn Protocol> = match name.to_ascii_uppercase().as_str() {
        "FIFO" => Box::new(Fifo),
        "LIFO" => Box::new(Lifo),
        "LIS" => Box::new(Lis),
        "NIS" | "SIS" => Box::new(Nis),
        "FTG" => Box::new(Ftg),
        "NTG" => Box::new(Ntg),
        "FFS" => Box::new(Ffs),
        "NTS" => Box::new(Nts),
        "RANDOM" => Box::new(Random::seeded(seed)),
        _ => return None,
    };
    Some(p)
}

/// One instance of every bundled protocol.
pub fn all_protocols(seed: u64) -> Vec<Box<dyn Protocol>> {
    protocol_names()
        .iter()
        .map(|n| by_name(n, seed).expect("registry names are constructible"))
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn every_name_constructs() {
        for &n in protocol_names() {
            let p = by_name(n, 1).unwrap_or_else(|| panic!("{n} missing"));
            assert_eq!(p.name(), n);
        }
        assert!(by_name("nope", 0).is_none());
    }

    #[test]
    fn sis_aliases_nis() {
        assert_eq!(by_name("sis", 0).unwrap().name(), "NIS");
    }

    #[test]
    fn case_insensitive() {
        assert_eq!(by_name("fifo", 0).unwrap().name(), "FIFO");
    }

    #[test]
    fn all_protocols_count() {
        assert_eq!(all_protocols(0).len(), protocol_names().len());
    }
}
