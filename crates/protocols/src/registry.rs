//! Name-based protocol construction, for sweeps and CLI examples.

use aqt_sim::Protocol;

use crate::{Ffs, Fifo, Ftg, Lifo, Lis, Nis, Ntg, Nts, Random};

/// Names of all bundled protocols, in canonical order.
pub fn protocol_names() -> &'static [&'static str] {
    &[
        "FIFO", "LIFO", "LIS", "NIS", "FTG", "NTG", "FFS", "NTS", "RANDOM",
    ]
}

/// Construct a protocol by (case-insensitive) name. `seed` is used only
/// by randomized protocols.
pub fn by_name(name: &str, seed: u64) -> Option<Box<dyn Protocol>> {
    let p: Box<dyn Protocol> = match name.to_ascii_uppercase().as_str() {
        "FIFO" => Box::new(Fifo),
        "LIFO" => Box::new(Lifo),
        "LIS" => Box::new(Lis),
        "NIS" | "SIS" => Box::new(Nis),
        "FTG" => Box::new(Ftg),
        "NTG" => Box::new(Ntg),
        "FFS" => Box::new(Ffs),
        "NTS" => Box::new(Nts),
        "RANDOM" => Box::new(Random::seeded(seed)),
        _ => return None,
    };
    Some(p)
}

/// One instance of every bundled protocol.
pub fn all_protocols(seed: u64) -> Vec<Box<dyn Protocol>> {
    protocol_names()
        .iter()
        .map(|n| by_name(n, seed).expect("registry names are constructible"))
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn every_name_constructs() {
        for &n in protocol_names() {
            let p = by_name(n, 1).unwrap_or_else(|| panic!("{n} missing"));
            assert_eq!(p.name(), n);
        }
        assert!(by_name("nope", 0).is_none());
    }

    #[test]
    fn sis_aliases_nis() {
        assert_eq!(by_name("sis", 0).unwrap().name(), "NIS");
    }

    #[test]
    fn case_insensitive() {
        assert_eq!(by_name("fifo", 0).unwrap().name(), "FIFO");
    }

    #[test]
    fn all_protocols_count() {
        assert_eq!(all_protocols(0).len(), protocol_names().len());
    }

    /// The [`aqt_sim::Discipline`] contract: on every queue, a declared
    /// fast path must pick exactly the index `select` picks. Exercised
    /// over queues with heavy key collisions so the tie-breaks are hit.
    #[test]
    fn declared_disciplines_agree_with_select() {
        use aqt_graph::EdgeId;
        use aqt_sim::Packet;
        use std::collections::VecDeque;

        let g = aqt_graph::topologies::line(1);
        let mut lcg: u64 = 0x243F6A8885A308D3;
        let mut next = |m: u64| {
            lcg = lcg
                .wrapping_mul(6364136223846793005)
                .wrapping_add(1442695040888963407);
            (lcg >> 33) % m
        };
        for trial in 0..200 {
            let len = 1 + next(12) as usize;
            let q: VecDeque<Packet> = (0..len)
                .map(|i| {
                    // small value ranges => plenty of ties
                    let injected = next(4);
                    let arrived = injected + next(4);
                    let route_len = 1 + next(4) as usize;
                    let hop = next(route_len as u64) as u32;
                    Packet::synthetic(
                        i as u64,
                        injected,
                        arrived,
                        0,
                        (0..route_len).map(|k| EdgeId(k as u32)).collect(),
                        hop,
                    )
                })
                .collect();
            for mut p in all_protocols(7) {
                if let Some(fast) = p.discipline().index_in(&q) {
                    let slow = p.select(100 + trial, EdgeId(0), &q, &g);
                    assert_eq!(
                        fast,
                        slow,
                        "{} discipline disagrees with select on trial {trial}",
                        p.name()
                    );
                }
            }
        }
    }
}
