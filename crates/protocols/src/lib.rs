//! # aqt-protocols
//!
//! The greedy contention-resolution scheduling policies studied in the
//! adversarial queuing literature, implemented against
//! [`aqt_sim::Protocol`].
//!
//! | Protocol | Selects | Historic (Def. 3.1) | Time-priority (Def. 4.2) | Known behaviour |
//! |----------|---------|--------------------|--------------------------|-----------------|
//! | [`Fifo`] | earliest arrival at buffer | yes | yes | unstable for every `r > 1/2` (this paper, Thm 3.17); stable for `r ≤ 1/d` (Thm 4.3) |
//! | [`Lifo`] | latest arrival at buffer | yes | no | unstable at arbitrarily low rates \[7\] |
//! | [`Lis`]  | longest in system (earliest injection) | yes | yes | universally stable \[4\] |
//! | [`Nis`]  | newest in system (latest injection) | yes | no | not universally stable \[4\] |
//! | [`Ftg`]  | furthest to go | no | no | universally stable \[4\] |
//! | [`Ntg`]  | nearest to go | no | no | unstable at arbitrarily low rates \[7\] |
//! | [`Ffs`]  | furthest from source | yes | no | not universally stable \[4\] |
//! | [`Nts`]  | nearest to source | yes | no | counterpart of FFS |
//! | [`Random`] | uniformly random | yes | no | baseline |
//!
//! Ties are always broken deterministically (documented per protocol),
//! so simulation runs are reproducible.

pub mod classify;
pub mod fifo;
pub mod lifo;
pub mod ordering;
pub mod random;
pub mod registry;
pub mod route_position;
pub mod system_age;

pub use classify::{classify, Classification};
pub use fifo::Fifo;
pub use lifo::Lifo;
pub use random::Random;
pub use registry::{all_protocols, by_name, protocol_names};
pub use route_position::{Ffs, Ftg, Ntg, Nts};
pub use system_age::{Lis, Nis};
