//! Policies keyed on injection time: LIS and NIS.

use std::collections::VecDeque;

use aqt_graph::{EdgeId, Graph};
use aqt_sim::{Discipline, Packet, Protocol, Time};

use crate::ordering::{argmax_back, argmin_front};

/// LIS — longest-in-system: the packet with the *earliest* injection
/// time wins; ties go to the earliest buffer arrival (queue front).
///
/// LIS is historic and time-priority (an older injection can never be
/// outranked by a later one), and is universally stable \[4\]. By
/// Theorem 4.3 it enjoys the `r ≤ 1/d` delay bound `⌈wr⌉`.
#[derive(Debug, Clone, Copy, Default)]
pub struct Lis;

impl Protocol for Lis {
    fn name(&self) -> &str {
        "LIS"
    }

    #[inline]
    fn select(&mut self, _: Time, _: EdgeId, queue: &VecDeque<Packet>, _: &Graph) -> usize {
        argmin_front(queue, |p| (p.injected_at, p.id))
    }

    fn is_historic(&self) -> bool {
        true
    }

    fn is_time_priority(&self) -> bool {
        true
    }

    fn discipline(&self) -> Discipline {
        // Same key as select: injection time, packet id as tie-break
        // (lower id = injected earlier within the substep).
        Discipline::KeyedMin(|p| (p.injected_at, p.id.0))
    }
}

/// NIS — newest-in-system (sometimes called SIS, shortest-in-system):
/// the packet with the *latest* injection time wins; ties go to the
/// latest enqueued.
///
/// Historic but not time-priority; not universally stable \[4\].
#[derive(Debug, Clone, Copy, Default)]
pub struct Nis;

impl Protocol for Nis {
    fn name(&self) -> &str {
        "NIS"
    }

    #[inline]
    fn select(&mut self, _: Time, _: EdgeId, queue: &VecDeque<Packet>, _: &Graph) -> usize {
        argmax_back(queue, |p| p.injected_at)
    }

    fn is_historic(&self) -> bool {
        true
    }

    fn discipline(&self) -> Discipline {
        Discipline::KeyedMaxBack(|p| (p.injected_at, 0))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn q3() -> VecDeque<Packet> {
        vec![
            Packet::synthetic(0, 5, 10, 0, vec![EdgeId(0)], 0),
            Packet::synthetic(1, 2, 11, 0, vec![EdgeId(0)], 0),
            Packet::synthetic(2, 8, 12, 0, vec![EdgeId(0)], 0),
        ]
        .into()
    }

    #[test]
    fn lis_picks_oldest_injection() {
        let g = aqt_graph::topologies::line(1);
        assert_eq!(Lis.select(20, EdgeId(0), &q3(), &g), 1);
        assert!(Lis.is_time_priority());
        assert!(Lis.is_historic());
    }

    #[test]
    fn nis_picks_newest_injection() {
        let g = aqt_graph::topologies::line(1);
        assert_eq!(Nis.select(20, EdgeId(0), &q3(), &g), 2);
        assert!(!Nis.is_time_priority());
        assert!(Nis.is_historic());
    }

    #[test]
    fn lis_tie_break_by_id() {
        let g = aqt_graph::topologies::line(1);
        let q: VecDeque<Packet> = vec![
            Packet::synthetic(3, 5, 10, 0, vec![EdgeId(0)], 0),
            Packet::synthetic(1, 5, 11, 0, vec![EdgeId(0)], 0),
        ]
        .into();
        // same injection time: lower id (injected first within the
        // substep) wins
        assert_eq!(Lis.select(20, EdgeId(0), &q, &g), 1);
    }
}
