//! Policies keyed on route position: FTG, NTG, FFS, NTS.

use std::collections::VecDeque;

use aqt_graph::{EdgeId, Graph};
use aqt_sim::{Discipline, Packet, Protocol, Time};

use crate::ordering::{argmax_front, argmin_front};

/// FTG — furthest-to-go: the packet with the most remaining edges wins;
/// ties go to the earliest buffer arrival.
///
/// FTG inspects the remaining route, so it is **not** historic (the
/// rerouting of Lemma 3.3 does not apply to it — the engine will refuse
/// to extend routes under FTG when validation is on). It is universally
/// stable \[4\].
#[derive(Debug, Clone, Copy, Default)]
pub struct Ftg;

impl Protocol for Ftg {
    fn name(&self) -> &str {
        "FTG"
    }

    #[inline]
    fn select(&mut self, _: Time, _: EdgeId, queue: &VecDeque<Packet>, _: &Graph) -> usize {
        argmax_front(queue, |p| p.remaining())
    }

    fn discipline(&self) -> Discipline {
        Discipline::KeyedMaxFront(|p| (p.remaining() as u64, 0))
    }
}

/// NTG — nearest-to-go: the packet with the fewest remaining edges
/// wins; ties go to the earliest buffer arrival.
///
/// Not historic. Borodin et al. \[7\] prove NTG can be unstable at
/// arbitrarily low injection rates — the phenomenon the paper's
/// Section 5 contrasts with its `1/(d+1)` bound.
#[derive(Debug, Clone, Copy, Default)]
pub struct Ntg;

impl Protocol for Ntg {
    fn name(&self) -> &str {
        "NTG"
    }

    #[inline]
    fn select(&mut self, _: Time, _: EdgeId, queue: &VecDeque<Packet>, _: &Graph) -> usize {
        argmin_front(queue, |p| p.remaining())
    }

    fn discipline(&self) -> Discipline {
        Discipline::KeyedMin(|p| (p.remaining() as u64, 0))
    }
}

/// FFS — furthest-from-source: the packet that has traversed the most
/// edges wins; ties go to the earliest buffer arrival.
///
/// FFS only looks backwards along routes, so it *is* historic
/// (Definition 3.1 explicitly lists it); it is not universally
/// stable \[4\].
#[derive(Debug, Clone, Copy, Default)]
pub struct Ffs;

impl Protocol for Ffs {
    fn name(&self) -> &str {
        "FFS"
    }

    #[inline]
    fn select(&mut self, _: Time, _: EdgeId, queue: &VecDeque<Packet>, _: &Graph) -> usize {
        argmax_front(queue, |p| p.traversed())
    }

    fn is_historic(&self) -> bool {
        true
    }

    fn discipline(&self) -> Discipline {
        Discipline::KeyedMaxFront(|p| (p.traversed() as u64, 0))
    }
}

/// NTS — nearest-to-source: the packet that has traversed the fewest
/// edges wins; ties go to the earliest buffer arrival. Historic.
#[derive(Debug, Clone, Copy, Default)]
pub struct Nts;

impl Protocol for Nts {
    fn name(&self) -> &str {
        "NTS"
    }

    #[inline]
    fn select(&mut self, _: Time, _: EdgeId, queue: &VecDeque<Packet>, _: &Graph) -> usize {
        argmin_front(queue, |p| p.traversed())
    }

    fn is_historic(&self) -> bool {
        true
    }

    fn discipline(&self) -> Discipline {
        Discipline::KeyedMin(|p| (p.traversed() as u64, 0))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    /// Queue with (remaining, traversed) = (3,0), (1,2), (2,1).
    fn q3() -> VecDeque<Packet> {
        vec![
            Packet::synthetic(0, 0, 1, 0, vec![EdgeId(0), EdgeId(1), EdgeId(2)], 0),
            Packet::synthetic(1, 0, 2, 0, vec![EdgeId(3), EdgeId(4), EdgeId(0)], 2),
            Packet::synthetic(2, 0, 3, 0, vec![EdgeId(5), EdgeId(0), EdgeId(6)], 1),
        ]
        .into()
    }

    #[test]
    fn ftg_and_ntg() {
        let g = aqt_graph::topologies::line(1);
        assert_eq!(Ftg.select(9, EdgeId(0), &q3(), &g), 0); // remaining 3
        assert_eq!(Ntg.select(9, EdgeId(0), &q3(), &g), 1); // remaining 1
        assert!(!Ftg.is_historic());
        assert!(!Ntg.is_historic());
    }

    #[test]
    fn ffs_and_nts() {
        let g = aqt_graph::topologies::line(1);
        assert_eq!(Ffs.select(9, EdgeId(0), &q3(), &g), 1); // traversed 2
        assert_eq!(Nts.select(9, EdgeId(0), &q3(), &g), 0); // traversed 0
        assert!(Ffs.is_historic());
        assert!(Nts.is_historic());
    }

    #[test]
    fn ties_go_to_front() {
        let g = aqt_graph::topologies::line(1);
        let q: VecDeque<Packet> = vec![
            Packet::synthetic(0, 0, 1, 0, vec![EdgeId(0), EdgeId(1)], 0),
            Packet::synthetic(1, 0, 2, 0, vec![EdgeId(0), EdgeId(2)], 0),
        ]
        .into();
        assert_eq!(Ftg.select(9, EdgeId(0), &q, &g), 0);
        assert_eq!(Ntg.select(9, EdgeId(0), &q, &g), 0);
    }
}
