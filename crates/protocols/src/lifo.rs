//! LIFO — last-in-first-out.

use std::collections::VecDeque;

use aqt_graph::{EdgeId, Graph};
use aqt_sim::{Discipline, Packet, Protocol, Time};

/// LIFO selects the packet that arrived at the buffer latest; among
/// packets that arrived in the same substep it picks the one enqueued
/// last (the back of the queue).
///
/// LIFO is historic but **not** time-priority: a packet injected after
/// time `t` lands behind the queue and immediately outranks everything
/// that arrived at `t`. Borodin et al. \[7\] show LIFO can be unstable
/// at arbitrarily low injection rates.
#[derive(Debug, Clone, Copy, Default)]
pub struct Lifo;

impl Protocol for Lifo {
    fn name(&self) -> &str {
        "LIFO"
    }

    #[inline]
    fn select(&mut self, _: Time, _: EdgeId, queue: &VecDeque<Packet>, _: &Graph) -> usize {
        queue.len() - 1
    }

    fn is_historic(&self) -> bool {
        true
    }

    fn discipline(&self) -> Discipline {
        Discipline::ReverseArrival
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn always_back() {
        let g = aqt_graph::topologies::line(1);
        let q: VecDeque<Packet> = vec![
            Packet::synthetic(0, 0, 1, 0, vec![EdgeId(0)], 0),
            Packet::synthetic(1, 0, 9, 0, vec![EdgeId(0)], 0),
            Packet::synthetic(2, 0, 9, 0, vec![EdgeId(0)], 0),
        ]
        .into();
        assert_eq!(Lifo.select(10, EdgeId(0), &q, &g), 2);
        assert!(Lifo.is_historic());
        assert!(!Lifo.is_time_priority());
    }
}
