//! Summary statistics and regression.

/// Mean of a slice (0 for empty input).
pub fn mean(xs: &[f64]) -> f64 {
    if xs.is_empty() {
        return 0.0;
    }
    xs.iter().sum::<f64>() / xs.len() as f64
}

/// Population variance (0 for fewer than two samples).
pub fn variance(xs: &[f64]) -> f64 {
    if xs.len() < 2 {
        return 0.0;
    }
    let m = mean(xs);
    xs.iter().map(|x| (x - m) * (x - m)).sum::<f64>() / xs.len() as f64
}

/// The `q`-quantile (0 ≤ q ≤ 1) by nearest-rank on a sorted copy.
pub fn quantile(xs: &[f64], q: f64) -> f64 {
    assert!((0.0..=1.0).contains(&q), "quantile must be in [0,1]");
    if xs.is_empty() {
        return 0.0;
    }
    let mut v = xs.to_vec();
    v.sort_by(|a, b| a.partial_cmp(b).expect("no NaNs in quantile input"));
    let idx = ((v.len() - 1) as f64 * q).round() as usize;
    v[idx]
}

/// Ordinary least squares fit `y = a + b·x`.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct LinearFit {
    /// Intercept.
    pub intercept: f64,
    /// Slope.
    pub slope: f64,
    /// Coefficient of determination `R²` (1 for a perfect fit; 0 when
    /// `y` is constant or the fit explains nothing).
    pub r2: f64,
}

/// Least-squares regression of `ys` on `xs`. Returns `None` for fewer
/// than two points or degenerate `xs`.
pub fn linear_fit(xs: &[f64], ys: &[f64]) -> Option<LinearFit> {
    if xs.len() != ys.len() || xs.len() < 2 {
        return None;
    }
    let n = xs.len() as f64;
    let mx = mean(xs);
    let my = mean(ys);
    let sxx: f64 = xs.iter().map(|x| (x - mx) * (x - mx)).sum();
    if sxx == 0.0 {
        return None;
    }
    let sxy: f64 = xs.iter().zip(ys).map(|(x, y)| (x - mx) * (y - my)).sum();
    let slope = sxy / sxx;
    let intercept = my - slope * mx;
    let syy: f64 = ys.iter().map(|y| (y - my) * (y - my)).sum();
    let r2 = if syy == 0.0 {
        1.0
    } else {
        let ss_res: f64 = xs
            .iter()
            .zip(ys)
            .map(|(x, y)| {
                let e = y - (intercept + slope * x);
                e * e
            })
            .sum();
        1.0 - ss_res / syy
    };
    let _ = n;
    Some(LinearFit {
        intercept,
        slope,
        r2,
    })
}

/// Geometric-mean per-step growth factor of a positive series:
/// `(last/first)^(1/(len-1))`. Returns `None` for series shorter than 2
/// or with a non-positive first element.
pub fn geometric_growth(xs: &[f64]) -> Option<f64> {
    if xs.len() < 2 || xs[0] <= 0.0 || *xs.last()? <= 0.0 {
        return None;
    }
    Some((xs.last()? / xs[0]).powf(1.0 / (xs.len() - 1) as f64))
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn mean_variance() {
        assert_eq!(mean(&[1.0, 2.0, 3.0]), 2.0);
        assert_eq!(mean(&[]), 0.0);
        assert!((variance(&[1.0, 2.0, 3.0]) - 2.0 / 3.0).abs() < 1e-12);
        assert_eq!(variance(&[5.0]), 0.0);
    }

    #[test]
    fn quantiles() {
        let xs = [5.0, 1.0, 3.0, 2.0, 4.0];
        assert_eq!(quantile(&xs, 0.0), 1.0);
        assert_eq!(quantile(&xs, 0.5), 3.0);
        assert_eq!(quantile(&xs, 1.0), 5.0);
        assert_eq!(quantile(&[], 0.5), 0.0);
    }

    #[test]
    fn perfect_line() {
        let xs: Vec<f64> = (0..10).map(|i| i as f64).collect();
        let ys: Vec<f64> = xs.iter().map(|x| 3.0 + 2.0 * x).collect();
        let f = linear_fit(&xs, &ys).unwrap();
        assert!((f.slope - 2.0).abs() < 1e-12);
        assert!((f.intercept - 3.0).abs() < 1e-12);
        assert!((f.r2 - 1.0).abs() < 1e-12);
    }

    #[test]
    fn constant_series() {
        let xs: Vec<f64> = (0..5).map(|i| i as f64).collect();
        let ys = vec![7.0; 5];
        let f = linear_fit(&xs, &ys).unwrap();
        assert_eq!(f.slope, 0.0);
        assert_eq!(f.r2, 1.0);
    }

    #[test]
    fn degenerate_fits() {
        assert!(linear_fit(&[1.0], &[1.0]).is_none());
        assert!(linear_fit(&[2.0, 2.0], &[1.0, 3.0]).is_none());
        assert!(linear_fit(&[1.0, 2.0], &[1.0]).is_none());
    }

    #[test]
    fn growth_factors() {
        assert!((geometric_growth(&[1.0, 2.0, 4.0]).unwrap() - 2.0).abs() < 1e-12);
        assert!((geometric_growth(&[8.0, 4.0, 2.0]).unwrap() - 0.5).abs() < 1e-12);
        assert!(geometric_growth(&[1.0]).is_none());
        assert!(geometric_growth(&[0.0, 5.0]).is_none());
    }
}
