//! Nonparametric trend detection: the Mann–Kendall test.
//!
//! The linear-regression verdict in [`crate::stability`] is fast and
//! adequate for the clear-cut regimes the paper creates; Mann–Kendall
//! complements it for noisy series (no distributional assumptions, no
//! sensitivity to single spikes). Used by the stability sweeps as a
//! second opinion.

/// Result of a Mann–Kendall test.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct MannKendall {
    /// The S statistic: #concordant − #discordant pairs.
    pub s: i64,
    /// Normalized Z score (0 when `|S| ≤ 1`).
    pub z: f64,
    /// Kendall's tau in `[-1, 1]`.
    pub tau: f64,
}

impl MannKendall {
    /// Is there a significant increasing trend at ~99% confidence
    /// (`Z > 2.326`)?
    pub fn increasing(&self) -> bool {
        self.z > 2.326
    }

    /// Is there a significant decreasing trend at ~99% confidence?
    pub fn decreasing(&self) -> bool {
        self.z < -2.326
    }
}

/// Run the Mann–Kendall test. O(n²) pair comparison — fine for the
/// ≤ few-thousand-point series the experiments sample. Returns `None`
/// for fewer than 4 points.
pub fn mann_kendall(xs: &[f64]) -> Option<MannKendall> {
    let n = xs.len();
    if n < 4 {
        return None;
    }
    let mut s: i64 = 0;
    for i in 0..n {
        for j in (i + 1)..n {
            s += match xs[j].partial_cmp(&xs[i])? {
                std::cmp::Ordering::Greater => 1,
                std::cmp::Ordering::Less => -1,
                std::cmp::Ordering::Equal => 0,
            };
        }
    }
    // Variance without tie correction (ties only shrink variance, so
    // this is conservative for detection).
    let nf = n as f64;
    let var = nf * (nf - 1.0) * (2.0 * nf + 5.0) / 18.0;
    let z = if s > 0 {
        (s as f64 - 1.0) / var.sqrt()
    } else if s < 0 {
        (s as f64 + 1.0) / var.sqrt()
    } else {
        0.0
    };
    let pairs = nf * (nf - 1.0) / 2.0;
    Some(MannKendall {
        s,
        z,
        tau: s as f64 / pairs,
    })
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn monotone_series_detected() {
        let xs: Vec<f64> = (0..64).map(|i| i as f64).collect();
        let mk = mann_kendall(&xs).unwrap();
        assert!(mk.increasing());
        assert!(!mk.decreasing());
        assert!((mk.tau - 1.0).abs() < 1e-12);
    }

    #[test]
    fn decreasing_series_detected() {
        let xs: Vec<f64> = (0..64).map(|i| -(i as f64)).collect();
        let mk = mann_kendall(&xs).unwrap();
        assert!(mk.decreasing());
        assert!((mk.tau + 1.0).abs() < 1e-12);
    }

    #[test]
    fn flat_series_no_trend() {
        let xs = vec![5.0; 64];
        let mk = mann_kendall(&xs).unwrap();
        assert_eq!(mk.s, 0);
        assert!(!mk.increasing() && !mk.decreasing());
    }

    #[test]
    fn noisy_flat_no_trend() {
        // deterministic pseudo-noise around a constant
        let xs: Vec<f64> = (0..128)
            .map(|i| 100.0 + ((i * 2654435761u64 % 17) as f64) - 8.0)
            .collect();
        let mk = mann_kendall(&xs).unwrap();
        assert!(!mk.increasing() && !mk.decreasing(), "z = {}", mk.z);
    }

    #[test]
    fn noisy_growth_detected() {
        let xs: Vec<f64> = (0..128)
            .map(|i| i as f64 * 0.5 + ((i * 2654435761u64 % 13) as f64))
            .collect();
        assert!(mann_kendall(&xs).unwrap().increasing());
    }

    #[test]
    fn short_series_none() {
        assert!(mann_kendall(&[1.0, 2.0, 3.0]).is_none());
    }
}
