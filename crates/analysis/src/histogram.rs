//! Integer histograms with exponentially growing buckets.
//!
//! Used for per-buffer wait and latency distributions: Theorems
//! 4.1/4.3 bound the *maximum* wait, and the histogram shows how far
//! below the bound the bulk of the traffic sits.

/// A histogram over `u64` values with buckets
/// `\[0\], \[1\], \[2,3\], \[4,7\], \[8,15\], …` (powers of two).
#[derive(Debug, Clone, Default)]
pub struct Histogram {
    counts: Vec<u64>,
    total: u64,
    max: u64,
    sum: u128,
}

impl Histogram {
    /// An empty histogram.
    pub fn new() -> Self {
        Self::default()
    }

    fn bucket_of(value: u64) -> usize {
        match value {
            0 => 0,
            v => (64 - v.leading_zeros()) as usize,
        }
    }

    /// Lower bound of bucket `b`.
    pub fn bucket_floor(b: usize) -> u64 {
        match b {
            0 => 0,
            _ => 1u64 << (b - 1),
        }
    }

    /// Record one observation.
    pub fn record(&mut self, value: u64) {
        let b = Self::bucket_of(value);
        if self.counts.len() <= b {
            self.counts.resize(b + 1, 0);
        }
        self.counts[b] += 1;
        self.total += 1;
        self.max = self.max.max(value);
        self.sum += value as u128;
    }

    /// Number of observations.
    pub fn total(&self) -> u64 {
        self.total
    }

    /// Maximum observed value.
    pub fn max(&self) -> u64 {
        self.max
    }

    /// Mean of observations (0.0 when empty).
    pub fn mean(&self) -> f64 {
        if self.total == 0 {
            0.0
        } else {
            self.sum as f64 / self.total as f64
        }
    }

    /// Smallest bucket floor `f` such that at least `q` (0..=1) of the
    /// mass lies in buckets at or below it — a coarse quantile.
    pub fn quantile_floor(&self, q: f64) -> u64 {
        assert!((0.0..=1.0).contains(&q));
        if self.total == 0 {
            return 0;
        }
        let want = (q * self.total as f64).ceil() as u64;
        let mut acc = 0;
        for (b, &c) in self.counts.iter().enumerate() {
            acc += c;
            if acc >= want {
                return Self::bucket_floor(b);
            }
        }
        Self::bucket_floor(self.counts.len().saturating_sub(1))
    }

    /// `(bucket_floor, count)` pairs for nonempty buckets.
    pub fn buckets(&self) -> impl Iterator<Item = (u64, u64)> + '_ {
        self.counts
            .iter()
            .enumerate()
            .filter(|(_, &c)| c > 0)
            .map(|(b, &c)| (Self::bucket_floor(b), c))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bucket_boundaries() {
        assert_eq!(Histogram::bucket_of(0), 0);
        assert_eq!(Histogram::bucket_of(1), 1);
        assert_eq!(Histogram::bucket_of(2), 2);
        assert_eq!(Histogram::bucket_of(3), 2);
        assert_eq!(Histogram::bucket_of(4), 3);
        assert_eq!(Histogram::bucket_of(7), 3);
        assert_eq!(Histogram::bucket_of(8), 4);
        assert_eq!(Histogram::bucket_floor(0), 0);
        assert_eq!(Histogram::bucket_floor(3), 4);
    }

    #[test]
    fn record_and_stats() {
        let mut h = Histogram::new();
        for v in [0, 1, 1, 2, 5, 9] {
            h.record(v);
        }
        assert_eq!(h.total(), 6);
        assert_eq!(h.max(), 9);
        assert!((h.mean() - 3.0).abs() < 1e-12);
        let buckets: Vec<_> = h.buckets().collect();
        assert_eq!(buckets, vec![(0, 1), (1, 2), (2, 1), (4, 1), (8, 1)]);
    }

    #[test]
    fn quantiles() {
        let mut h = Histogram::new();
        for v in 0..100u64 {
            h.record(v);
        }
        assert_eq!(h.quantile_floor(0.01), 0);
        assert!(h.quantile_floor(0.5) <= 64);
        assert_eq!(h.quantile_floor(1.0), 64);
    }

    #[test]
    fn empty_histogram() {
        let h = Histogram::new();
        assert_eq!(h.total(), 0);
        assert_eq!(h.mean(), 0.0);
        assert_eq!(h.quantile_floor(0.5), 0);
    }
}
