//! Empirical stability classification.
//!
//! A system is *stable* when buffer sizes stay bounded as time grows
//! (Section 1 of the paper). An experiment produces a backlog series;
//! this module classifies it by fitting a trend to the second half of
//! the series (the first half is treated as warm-up).

use crate::stats::{linear_fit, mean};

/// Classification of a backlog series.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Verdict {
    /// Clear sustained growth.
    Diverging,
    /// No sustained growth; backlog fluctuates around a level.
    Bounded,
    /// Too little data to say.
    Inconclusive,
}

impl std::fmt::Display for Verdict {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        let s = match self {
            Verdict::Diverging => "DIVERGING",
            Verdict::Bounded => "bounded",
            Verdict::Inconclusive => "inconclusive",
        };
        write!(f, "{s}")
    }
}

/// Classify a backlog series sampled at uniform intervals.
///
/// Heuristic: drop the first half (warm-up); call the rest diverging if
/// a linear fit has meaningfully positive slope with decent fit quality
/// **and** the final level is well above the early level. Designed for
/// the clear-cut regimes the paper's results create (exponential blowup
/// vs. hard `⌈wr⌉`-bounded), not for marginal cases.
pub fn classify_series(backlog: &[u64]) -> Verdict {
    if backlog.len() < 8 {
        return Verdict::Inconclusive;
    }
    let tail = &backlog[backlog.len() / 2..];
    let xs: Vec<f64> = (0..tail.len()).map(|i| i as f64).collect();
    let ys: Vec<f64> = tail.iter().map(|&b| b as f64).collect();
    let head_mean = mean(
        &backlog[..backlog.len() / 2]
            .iter()
            .map(|&b| b as f64)
            .collect::<Vec<_>>(),
    );
    let tail_mean = mean(&ys);
    let Some(fit) = linear_fit(&xs, &ys) else {
        return Verdict::Inconclusive;
    };
    // Normalized slope: growth per sample relative to the tail level.
    let level = tail_mean.max(1.0);
    let norm_slope = fit.slope / level;
    let grew = tail_mean > 1.5 * head_mean.max(1.0);
    if norm_slope > 0.002 && fit.r2 > 0.5 && grew {
        Verdict::Diverging
    } else {
        Verdict::Bounded
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn exponential_growth_diverges() {
        let series: Vec<u64> = (0..64).map(|i| (1.1f64.powi(i) * 10.0) as u64).collect();
        assert_eq!(classify_series(&series), Verdict::Diverging);
    }

    #[test]
    fn linear_growth_diverges() {
        let series: Vec<u64> = (0..64).map(|i| 10 + 5 * i).collect();
        assert_eq!(classify_series(&series), Verdict::Diverging);
    }

    #[test]
    fn flat_series_bounded() {
        let series = vec![12u64; 64];
        assert_eq!(classify_series(&series), Verdict::Bounded);
    }

    #[test]
    fn noisy_flat_bounded() {
        let series: Vec<u64> = (0..64).map(|i| 20 + (i * 7919 % 11)).collect();
        assert_eq!(classify_series(&series), Verdict::Bounded);
    }

    #[test]
    fn decaying_bounded() {
        let series: Vec<u64> = (0..64).map(|i| 1000 / (i + 1)).collect();
        assert_eq!(classify_series(&series), Verdict::Bounded);
    }

    #[test]
    fn short_series_inconclusive() {
        assert_eq!(classify_series(&[1, 2, 3]), Verdict::Inconclusive);
        assert_eq!(classify_series(&[]), Verdict::Inconclusive);
    }

    #[test]
    fn display() {
        assert_eq!(Verdict::Diverging.to_string(), "DIVERGING");
        assert_eq!(Verdict::Bounded.to_string(), "bounded");
    }
}
