//! # aqt-analysis
//!
//! Verdicts, statistics and reporting for adversarial queuing
//! experiments:
//!
//! * [`stats`] — summary statistics, linear regression, geometric
//!   growth estimation.
//! * [`stability`] — classify a backlog series as diverging / bounded
//!   (the empirical counterpart of the paper's stability definition).
//! * [`report`] — fixed-width ASCII tables and CSV output for the
//!   experiment harness.
//! * [`series`] — sparklines and peak-preserving downsampling for
//!   terminal output.
//! * [`trend`] — the Mann–Kendall nonparametric trend test (a second
//!   opinion for noisy backlog series).
//! * [`histogram`] — power-of-two bucket histograms for wait/latency
//!   distributions.

pub mod histogram;
pub mod report;
pub mod series;
pub mod stability;
pub mod stats;
pub mod trend;

pub use report::Table;
pub use stability::{classify_series, Verdict};
