//! Terminal-friendly series rendering: sparklines and downsampling.
//!
//! The instability demos print the diverging backlog straight into the
//! terminal; a sparkline makes the exponential blow-up visible at a
//! glance without any plotting dependency.

/// Downsample `xs` to at most `buckets` points by taking the maximum of
/// each bucket (peaks are what stability analysis cares about).
pub fn downsample_max(xs: &[u64], buckets: usize) -> Vec<u64> {
    assert!(buckets > 0);
    if xs.len() <= buckets {
        return xs.to_vec();
    }
    let mut out = Vec::with_capacity(buckets);
    for b in 0..buckets {
        let lo = b * xs.len() / buckets;
        let hi = ((b + 1) * xs.len() / buckets).max(lo + 1);
        out.push(
            *xs[lo..hi.min(xs.len())]
                .iter()
                .max()
                .expect("nonempty bucket"),
        );
    }
    out
}

const BARS: [char; 8] = ['▁', '▂', '▃', '▄', '▅', '▆', '▇', '█'];

/// Render a series as a unicode sparkline, scaled to its own range.
pub fn sparkline(xs: &[u64]) -> String {
    if xs.is_empty() {
        return String::new();
    }
    let max = *xs.iter().max().expect("nonempty");
    let min = *xs.iter().min().expect("nonempty");
    let span = (max - min).max(1);
    xs.iter()
        .map(|&x| {
            let idx = ((x - min) as u128 * (BARS.len() as u128 - 1) / span as u128) as usize;
            BARS[idx]
        })
        .collect()
}

/// Sparkline capped at `width` characters (max-downsampled first).
pub fn sparkline_fit(xs: &[u64], width: usize) -> String {
    sparkline(&downsample_max(xs, width.max(1)))
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn downsample_keeps_peaks() {
        let xs: Vec<u64> = (0..100).map(|i| if i == 57 { 1000 } else { i }).collect();
        let d = downsample_max(&xs, 10);
        assert_eq!(d.len(), 10);
        assert!(d.contains(&1000), "the peak must survive downsampling");
    }

    #[test]
    fn downsample_short_input_passthrough() {
        let xs = vec![1, 2, 3];
        assert_eq!(downsample_max(&xs, 10), xs);
    }

    #[test]
    fn sparkline_shape() {
        let s = sparkline(&[0, 1, 2, 3, 4, 5, 6, 7]);
        assert_eq!(s.chars().count(), 8);
        assert!(s.starts_with('▁'));
        assert!(s.ends_with('█'));
    }

    #[test]
    fn sparkline_constant_series() {
        let s = sparkline(&[5, 5, 5]);
        assert_eq!(s, "▁▁▁");
    }

    #[test]
    fn sparkline_empty() {
        assert_eq!(sparkline(&[]), "");
    }

    #[test]
    fn fit_respects_width() {
        let xs: Vec<u64> = (0..1000).collect();
        let s = sparkline_fit(&xs, 40);
        assert_eq!(s.chars().count(), 40);
    }
}
