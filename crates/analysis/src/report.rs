//! Fixed-width ASCII tables and CSV output.
//!
//! The benchmark harness prints one table per reproduced
//! claim/experiment; `EXPERIMENTS.md` quotes them.

use std::fmt::Write as _;
use std::io;
use std::path::Path;

/// A simple column-aligned table.
#[derive(Debug, Clone, Default)]
pub struct Table {
    title: String,
    headers: Vec<String>,
    rows: Vec<Vec<String>>,
}

impl Table {
    /// A new table with a title and column headers.
    pub fn new(title: impl Into<String>, headers: &[&str]) -> Self {
        Table {
            title: title.into(),
            headers: headers.iter().map(|s| s.to_string()).collect(),
            rows: Vec::new(),
        }
    }

    /// Append a row (must match the header arity).
    pub fn row(&mut self, cells: &[String]) -> &mut Self {
        assert_eq!(
            cells.len(),
            self.headers.len(),
            "row arity must match headers"
        );
        self.rows.push(cells.to_vec());
        self
    }

    /// Number of data rows.
    pub fn len(&self) -> usize {
        self.rows.len()
    }

    /// Is the table empty?
    pub fn is_empty(&self) -> bool {
        self.rows.is_empty()
    }

    /// Render to an aligned ASCII string.
    pub fn render(&self) -> String {
        let mut widths: Vec<usize> = self.headers.iter().map(String::len).collect();
        for row in &self.rows {
            for (i, c) in row.iter().enumerate() {
                widths[i] = widths[i].max(c.len());
            }
        }
        let mut out = String::new();
        if !self.title.is_empty() {
            writeln!(out, "== {} ==", self.title).unwrap();
        }
        let fmt_row = |cells: &[String], widths: &[usize]| -> String {
            let mut line = String::new();
            for (i, c) in cells.iter().enumerate() {
                if i > 0 {
                    line.push_str("  ");
                }
                let w = widths[i];
                let _ = write!(line, "{c:<w$}");
            }
            line.trim_end().to_string()
        };
        writeln!(out, "{}", fmt_row(&self.headers, &widths)).unwrap();
        let total: usize = widths.iter().sum::<usize>() + 2 * (widths.len() - 1);
        writeln!(out, "{}", "-".repeat(total)).unwrap();
        for row in &self.rows {
            writeln!(out, "{}", fmt_row(row, &widths)).unwrap();
        }
        out
    }

    /// Write as CSV (RFC-4180-style quoting for cells containing
    /// commas or quotes).
    pub fn write_csv(&self, path: &Path) -> io::Result<()> {
        let mut out = String::new();
        let quote = |s: &str| -> String {
            if s.contains(',') || s.contains('"') || s.contains('\n') {
                format!("\"{}\"", s.replace('"', "\"\""))
            } else {
                s.to_string()
            }
        };
        writeln!(
            out,
            "{}",
            self.headers
                .iter()
                .map(|h| quote(h))
                .collect::<Vec<_>>()
                .join(",")
        )
        .unwrap();
        for row in &self.rows {
            writeln!(
                out,
                "{}",
                row.iter().map(|c| quote(c)).collect::<Vec<_>>().join(",")
            )
            .unwrap();
        }
        std::fs::write(path, out)
    }
}

/// Format a float with 3 significant decimals, trimming noise.
pub fn f3(x: f64) -> String {
    format!("{x:.3}")
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn renders_aligned() {
        let mut t = Table::new("demo", &["name", "value"]);
        t.row(&["a".into(), "1".into()]);
        t.row(&["longer".into(), "22".into()]);
        let s = t.render();
        assert!(s.contains("== demo =="));
        let lines: Vec<&str> = s.lines().collect();
        assert_eq!(lines.len(), 5);
        assert!(lines[1].starts_with("name"));
        assert!(lines[3].starts_with("a"));
        // columns aligned: "value" column starts at same offset
        let col = lines[1].find("value").unwrap();
        assert_eq!(lines[3].find('1').unwrap(), col);
        assert_eq!(lines[4].find("22").unwrap(), col);
    }

    #[test]
    #[should_panic(expected = "arity")]
    fn arity_checked() {
        let mut t = Table::new("x", &["a", "b"]);
        t.row(&["only-one".into()]);
    }

    #[test]
    fn csv_quoting() {
        let dir = std::env::temp_dir().join("aqt_table_test.csv");
        let mut t = Table::new("", &["a", "b"]);
        t.row(&["x,y".into(), "plain".into()]);
        t.row(&["has\"quote".into(), "z".into()]);
        t.write_csv(&dir).unwrap();
        let s = std::fs::read_to_string(&dir).unwrap();
        assert!(s.contains("\"x,y\""));
        assert!(s.contains("\"has\"\"quote\""));
        std::fs::remove_file(&dir).ok();
    }

    #[test]
    fn f3_format() {
        assert_eq!(f3(1.23456), "1.235");
        assert_eq!(f3(2.0), "2.000");
    }
}
