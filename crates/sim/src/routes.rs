//! Append-only route interner.
//!
//! Every packet in the adversarial constructions of the paper travels a
//! route shared with an entire cohort: Lemma 3.6 injects whole sets
//! along one path, and Lemma 3.3 reroutes a cohort onto one common
//! extension. The engine therefore stores each distinct route exactly
//! once in a [`RouteTable`] and packets carry a 4-byte [`RouteId`]
//! instead of a fat `Arc<[EdgeId]>` pointer — no refcount traffic when
//! packets move between buffers, and `Packet` becomes `Copy`.
//!
//! The table is append-only: a `RouteId`, once issued, stays valid for
//! the lifetime of the engine (snapshot restore interns into the
//! existing table rather than replacing it). Deduplication is by
//! content hash with full collision checks, so interning the same edge
//! sequence twice always returns the same id.

use std::collections::HashMap;

use aqt_graph::EdgeId;

/// Index of an interned route in a [`RouteTable`].
///
/// Ids are dense and append-only: the n-th distinct route interned gets
/// id n. [`RouteId::INVALID`] is a reserved sentinel used by synthetic
/// packets that never enter an engine.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct RouteId(pub u32);

impl RouteId {
    /// Sentinel for packets constructed outside any engine
    /// ([`crate::Packet::synthetic`]); never issued by a table.
    pub const INVALID: RouteId = RouteId(u32::MAX);
}

/// FNV-1a over the little-endian bytes of the edge indices. The std
/// `SipHash` would do, but a fixed, dependency-free hash keeps the
/// table's behaviour identical across platforms and toolchains.
fn fnv1a(edges: &[EdgeId]) -> u64 {
    let mut h: u64 = 0xcbf2_9ce4_8422_2325;
    for e in edges {
        for b in e.0.to_le_bytes() {
            h ^= u64::from(b);
            h = h.wrapping_mul(0x0000_0100_0000_01b3);
        }
    }
    h
}

/// FNV-1a over a stream of `u64` words (little-endian bytes): the
/// dependency-free content hash behind [`crate::Schedule::content_hash`]
/// and [`crate::FaultPlan::plan_id`] — the provenance ids telemetry
/// records carry. Same platform-independence rationale as `fnv1a`.
pub fn fnv1a_u64s(words: impl IntoIterator<Item = u64>) -> u64 {
    let mut h: u64 = 0xcbf2_9ce4_8422_2325;
    for w in words {
        for b in w.to_le_bytes() {
            h ^= u64::from(b);
            h = h.wrapping_mul(0x0000_0100_0000_01b3);
        }
    }
    h
}

/// Append-only, content-deduplicated store of packet routes.
///
/// Equality compares the interned entries in id order, so two tables
/// that interned the same routes in the same order are equal even if
/// their hash buckets differ.
#[derive(Debug, Clone, Default)]
pub struct RouteTable {
    /// Interned routes, indexed by `RouteId`.
    entries: Vec<Box<[EdgeId]>>,
    /// Content hash → ids with that hash (collision chain).
    index: HashMap<u64, Vec<u32>>,
}

impl RouteTable {
    pub fn new() -> Self {
        Self::default()
    }

    /// Number of distinct routes interned so far.
    pub fn len(&self) -> usize {
        self.entries.len()
    }

    pub fn is_empty(&self) -> bool {
        self.entries.is_empty()
    }

    /// Intern `edges`, returning the id of the existing entry with the
    /// same content or appending a new one.
    ///
    /// # Panics
    /// If the table would exceed `u32::MAX - 1` distinct routes (the
    /// last id is reserved for [`RouteId::INVALID`]).
    pub fn intern(&mut self, edges: &[EdgeId]) -> RouteId {
        let hash = fnv1a(edges);
        let chain = self.index.entry(hash).or_default();
        for &id in chain.iter() {
            if *self.entries[id as usize] == *edges {
                return RouteId(id);
            }
        }
        let id = u32::try_from(self.entries.len()).expect("route table overflow");
        assert!(id < u32::MAX, "route table overflow");
        self.entries.push(edges.into());
        chain.push(id);
        RouteId(id)
    }

    /// The edge sequence behind `id`.
    ///
    /// # Panics
    /// If `id` was not issued by this table (including
    /// [`RouteId::INVALID`]).
    #[inline]
    pub fn get(&self, id: RouteId) -> &[EdgeId] {
        &self.entries[id.0 as usize]
    }

    /// Non-panicking lookup, for validation paths.
    #[inline]
    pub fn try_get(&self, id: RouteId) -> Option<&[EdgeId]> {
        self.entries.get(id.0 as usize).map(|e| &**e)
    }

    /// All interned routes in id order.
    pub fn iter(&self) -> impl ExactSizeIterator<Item = &[EdgeId]> {
        self.entries.iter().map(|e| &**e)
    }

    /// Heap bytes held by the interned routes themselves (excluding the
    /// hash index, which is bookkeeping rather than packet payload).
    pub fn heap_bytes(&self) -> u64 {
        self.entries
            .iter()
            .map(|e| std::mem::size_of_val::<[EdgeId]>(e) as u64)
            .sum()
    }

    /// Deep self-check used by the sentinel at deep cadence: every
    /// entry must hash into a chain that contains it, every chain
    /// member must exist and hash to its chain's key, and no two
    /// entries may hold the same content (dedup held). Returns a
    /// description of the first inconsistency.
    pub fn verify_integrity(&self) -> Result<(), String> {
        let mut chained = 0usize;
        for (&hash, chain) in &self.index {
            for &id in chain {
                let Some(entry) = self.entries.get(id as usize) else {
                    return Err(format!("index references missing route id {id}"));
                };
                if fnv1a(entry) != hash {
                    return Err(format!("route id {id} filed under the wrong hash"));
                }
                chained += 1;
            }
            for (i, &a) in chain.iter().enumerate() {
                for &b in &chain[i + 1..] {
                    if *self.entries[a as usize] == *self.entries[b as usize] {
                        return Err(format!("routes {a} and {b} are duplicate interns"));
                    }
                }
            }
        }
        if chained != self.entries.len() {
            return Err(format!(
                "{} routes interned but {chained} indexed",
                self.entries.len()
            ));
        }
        Ok(())
    }
}

/// Tables are equal iff they interned the same routes in the same
/// order; the hash index is derived state and not compared.
impl PartialEq for RouteTable {
    fn eq(&self, other: &Self) -> bool {
        self.entries == other.entries
    }
}

impl Eq for RouteTable {}

#[cfg(test)]
mod tests {
    use super::*;

    fn e(ids: &[u32]) -> Vec<EdgeId> {
        ids.iter().map(|&i| EdgeId(i)).collect()
    }

    #[test]
    fn interning_dedups_by_content() {
        let mut t = RouteTable::new();
        let a = t.intern(&e(&[0, 1, 2]));
        let b = t.intern(&e(&[3]));
        let a2 = t.intern(&e(&[0, 1, 2]));
        assert_eq!(a, a2);
        assert_ne!(a, b);
        assert_eq!(t.len(), 2);
        assert_eq!(t.get(a), &e(&[0, 1, 2])[..]);
        assert_eq!(t.get(b), &e(&[3])[..]);
    }

    #[test]
    fn ids_are_dense_in_intern_order() {
        let mut t = RouteTable::new();
        for i in 0..100u32 {
            assert_eq!(t.intern(&e(&[i])), RouteId(i));
        }
        assert_eq!(t.len(), 100);
        t.verify_integrity().unwrap();
    }

    #[test]
    fn equality_ignores_the_index_and_tracks_order() {
        let mut a = RouteTable::new();
        let mut b = RouteTable::new();
        a.intern(&e(&[1]));
        a.intern(&e(&[2]));
        b.intern(&e(&[1]));
        assert_ne!(a, b);
        b.intern(&e(&[2]));
        assert_eq!(a, b);
        // Same routes, different order: different ids, unequal tables.
        let mut c = RouteTable::new();
        c.intern(&e(&[2]));
        c.intern(&e(&[1]));
        assert_ne!(a, c);
    }

    #[test]
    fn integrity_check_catches_hand_made_duplicates() {
        let mut t = RouteTable::new();
        t.intern(&e(&[7, 8]));
        t.verify_integrity().unwrap();
        // Forge a duplicate entry behind the index's back.
        t.entries.push(e(&[7, 8]).into());
        let hash = fnv1a(&e(&[7, 8]));
        t.index.get_mut(&hash).unwrap().push(1);
        assert!(t.verify_integrity().is_err());
    }

    #[test]
    fn heap_bytes_counts_edge_storage() {
        let mut t = RouteTable::new();
        assert_eq!(t.heap_bytes(), 0);
        t.intern(&e(&[0, 1, 2, 3, 4]));
        assert_eq!(t.heap_bytes(), 20);
    }
}
