//! The queue observatory: live backlog series, certificate-margin
//! tracking, and packet-lifecycle span sampling.
//!
//! The paper's stability results are statements about queue-size
//! trajectories — whether backlog stays bounded under a `(w, r)`
//! adversary — but [`crate::Metrics`] only keeps run-level peaks and
//! totals, and the telemetry windows carry scalar counters. This
//! module watches the trajectory itself. Three instruments, all
//! zero-cost when detached (the step loop pays one integer compare and
//! one branch):
//!
//! * **Backlog recorder** — at a fixed cadence, the total live backlog
//!   Q(t), the deepest-queue and worst-wait running peaks, and the
//!   sparse per-edge queue depths are captured into a preallocated
//!   columnar store and emitted as `backlog` JSONL records. When the
//!   store fills, it compacts in place (every other tick is dropped
//!   and the cadence doubles), so an arbitrarily long run fits a fixed
//!   memory budget and never allocates mid-step.
//! * **Bound tracker** — when the run carries a
//!   [`crate::CertificateSpec`] (or an explicit bound), every tick
//!   also records `margin = bound − max_wait`: the distance to the
//!   Theorem 4.1/4.3 per-buffer wait bound the sentinel enforces. A
//!   shrinking margin makes a certificate near-miss visible long
//!   before the sentinel raises a Halt.
//! * **Span sampler** — packets whose id satisfies
//!   `id & (N−1) == seed & (N−1)` (a deterministic 1-in-N stratified
//!   sample; N is rounded up to a power of two) emit a lifecycle span:
//!   inject → per-hop send/enqueue → absorb, plus wire-fault
//!   drop/duplicate events, each carrying the edge, the wait in steps,
//!   and the acting shard. The id predicate is shard-independent and
//!   trajectories are bit-identical across shard counts, so the same
//!   packets are sampled whatever the partition. Spans are collected
//!   into a preallocated scratch during the substeps and flushed
//!   through the [`crate::TelemetrySink`] at the end of each step.
//!
//! The offline half lives in `examples/observatory.rs`: it re-reads
//! the JSONL stream and emits per-edge backlog percentiles, the margin
//! series, a shard imbalance ratio, a span waterfall, and a
//! Chrome-trace (`trace_event`) file loadable in Perfetto.

use crate::packet::Time;
use crate::telemetry::SpanKind;

/// Hard cap on spans buffered within one step; excess spans are
/// dropped and counted ([`Observe::spans_dropped`]) rather than grown
/// into — the scratch must never allocate mid-step.
const SPAN_SCRATCH_CAP: usize = 4096;

/// Observatory configuration. The default is the "watch a run" shape:
/// a backlog tick every 256 steps, 1-in-64 span sampling, per-edge
/// depths tracked up to 4096 edges.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ObserveConfig {
    /// Steps between backlog ticks (0 is treated as the default 256).
    /// Doubles each time the in-memory store compacts.
    pub cadence: Time,
    /// Ticks the in-memory columnar store holds before compacting in
    /// place (minimum 16).
    pub capacity: usize,
    /// Sample one packet in this many for lifecycle spans, rounded up
    /// to a power of two; 0 disables span collection.
    pub span_sample_every: u64,
    /// Seed choosing *which* residue class of packet ids is sampled.
    pub span_seed: u64,
    /// Per-edge depth columns are captured only when the graph has at
    /// most this many edges; larger runs still get the total/peak
    /// series (a 120k-edge scan per tick is affordable, but the JSONL
    /// depth arrays would not be).
    pub max_tracked_edges: usize,
    /// Explicit certificate bound for the margin tracker. When `None`,
    /// [`crate::Engine::attach_observatory`] fills it from the
    /// sentinel's [`crate::CertificateSpec`] if one is attached.
    pub bound: Option<u64>,
}

impl Default for ObserveConfig {
    fn default() -> Self {
        ObserveConfig {
            cadence: 256,
            capacity: 4096,
            span_sample_every: 64,
            span_seed: 0,
            max_tracked_edges: 4096,
            bound: None,
        }
    }
}

impl ObserveConfig {
    /// This configuration with a backlog tick every `cadence` steps.
    pub fn with_cadence(mut self, cadence: Time) -> Self {
        self.cadence = cadence;
        self
    }

    /// This configuration with 1-in-`every` span sampling (0 = off).
    pub fn with_span_sample_every(mut self, every: u64) -> Self {
        self.span_sample_every = every;
        self
    }

    /// This configuration with span-sampling seed `seed`.
    pub fn with_span_seed(mut self, seed: u64) -> Self {
        self.span_seed = seed;
        self
    }

    /// This configuration with an explicit margin-tracker bound.
    pub fn with_bound(mut self, bound: u64) -> Self {
        self.bound = Some(bound);
        self
    }
}

/// One buffered packet-lifecycle event, staged in the observatory's
/// scratch (or a shard's span log) until the end-of-step flush.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct SpanRec {
    /// Engine step of the event.
    pub time: Time,
    /// What happened.
    pub op: SpanKind,
    /// Packet id.
    pub packet: u64,
    /// Edge index (see [`crate::TelemetryEvent::Span`]).
    pub edge: u32,
    /// The packet's hop index at the event.
    pub hop: u32,
    /// Steps waited (send) / end-to-end latency (absorb) / 0.
    pub wait: Time,
    /// Shard owning the acting edge (0 when sequential).
    pub shard: u32,
}

/// The engine-owned observatory state. Constructed disabled; all
/// preallocation happens in [`Observe::configure`], so the step loop
/// stays heap-free with the observatory attached.
pub struct Observe {
    enabled: bool,
    cadence: Time,
    /// Hot gate: step of the next backlog tick, `Time::MAX` when
    /// detached — the per-step cost of a detached observatory is this
    /// one compare.
    pub(crate) next: Time,
    bound: Option<u64>,
    capacity: usize,
    ticks: u64,
    // Columnar tick store (parallel vectors, one entry per kept tick).
    times: Vec<Time>,
    totals: Vec<u64>,
    max_queues: Vec<u64>,
    max_waits: Vec<Time>,
    margins: Vec<i64>,
    /// Sparse nonzero `(edge, depth)` pairs of the current tick
    /// (scratch; `backlog` records borrow it).
    pub(crate) depth_scratch: Vec<(u32, u32)>,
    /// Are per-edge depths being captured? (edge count within the cap)
    pub(crate) track_depths: bool,
    // Span sampling.
    /// Hot gate: spans are being collected this run.
    pub(crate) spans_on: bool,
    /// `id & span_mask == span_residue` ⇔ the packet is sampled.
    pub(crate) span_mask: u64,
    /// See [`Observe::span_mask`].
    pub(crate) span_residue: u64,
    /// Spans staged during the current step (preallocated; flushed at
    /// end of step).
    pub(crate) span_scratch: Vec<SpanRec>,
    spans_emitted: u64,
    spans_dropped: u64,
    /// Cumulative packets sent per shard (index = shard id), carried
    /// on every `backlog` record; empty on unsharded runs.
    pub(crate) shard_sent: Vec<u64>,
}

impl Observe {
    /// The detached state an engine starts with.
    pub(crate) fn disabled() -> Self {
        Observe {
            enabled: false,
            cadence: 0,
            next: Time::MAX,
            bound: None,
            capacity: 0,
            ticks: 0,
            times: Vec::new(),
            totals: Vec::new(),
            max_queues: Vec::new(),
            max_waits: Vec::new(),
            margins: Vec::new(),
            depth_scratch: Vec::new(),
            track_depths: false,
            spans_on: false,
            span_mask: 0,
            span_residue: 0,
            span_scratch: Vec::new(),
            spans_emitted: 0,
            spans_dropped: 0,
            shard_sent: Vec::new(),
        }
    }

    /// Apply `cfg` against a graph of `edge_count` edges, scheduling
    /// the first tick after `now`. `bound` is the already-resolved
    /// margin-tracker bound and `shard_count` sizes the per-shard sent
    /// accumulator (1 when unsharded). All preallocation happens here.
    pub(crate) fn configure(
        &mut self,
        cfg: ObserveConfig,
        now: Time,
        edge_count: usize,
        shard_count: usize,
        bound: Option<u64>,
    ) {
        let cadence = if cfg.cadence == 0 { 256 } else { cfg.cadence };
        let capacity = cfg.capacity.max(16);
        self.enabled = true;
        self.cadence = cadence;
        self.next = now.saturating_add(cadence);
        self.bound = bound;
        self.capacity = capacity;
        self.ticks = 0;
        self.times = Vec::with_capacity(capacity);
        self.totals = Vec::with_capacity(capacity);
        self.max_queues = Vec::with_capacity(capacity);
        self.max_waits = Vec::with_capacity(capacity);
        self.margins = Vec::with_capacity(capacity);
        self.track_depths = edge_count <= cfg.max_tracked_edges;
        self.depth_scratch = Vec::with_capacity(if self.track_depths { edge_count } else { 0 });
        self.spans_on = cfg.span_sample_every > 0;
        if self.spans_on {
            let n = cfg.span_sample_every.next_power_of_two();
            self.span_mask = n - 1;
            self.span_residue = cfg.span_seed & self.span_mask;
            self.span_scratch = Vec::with_capacity(SPAN_SCRATCH_CAP);
        } else {
            self.span_mask = 0;
            self.span_residue = 0;
            self.span_scratch = Vec::new();
        }
        self.spans_emitted = 0;
        self.spans_dropped = 0;
        self.shard_sent = vec![0; if shard_count > 1 { shard_count } else { 0 }];
    }

    /// Resize the per-shard sent accumulator when shards are attached
    /// or detached after the observatory (totals restart from zero —
    /// the series stays interpretable because the partition change is
    /// the natural origin for an imbalance measurement).
    pub(crate) fn reshard(&mut self, shard_count: usize) {
        if !self.enabled {
            return;
        }
        self.shard_sent.clear();
        self.shard_sent
            .resize(if shard_count > 1 { shard_count } else { 0 }, 0);
    }

    /// Is the observatory attached?
    pub fn is_enabled(&self) -> bool {
        self.enabled
    }

    /// Is `id` in the sampled residue class?
    #[inline]
    pub(crate) fn sampled(&self, id: u64) -> bool {
        id & self.span_mask == self.span_residue
    }

    /// Stage one span, dropping (and counting) past the scratch cap so
    /// the hot path never allocates.
    #[inline]
    pub(crate) fn push_span(&mut self, rec: SpanRec) {
        if self.span_scratch.len() < SPAN_SCRATCH_CAP {
            self.span_scratch.push(rec);
        } else {
            self.spans_dropped += 1;
        }
    }

    /// Note `n` spans flushed to the sink (bookkeeping for
    /// [`Observe::spans_emitted`]).
    pub(crate) fn note_flushed(&mut self, n: u64) {
        self.spans_emitted += n;
    }

    /// Record one backlog tick into the columnar store and advance the
    /// tick gate. Returns the margin, if a bound is tracked. The
    /// caller (the engine) gathers the inputs and emits the record.
    pub(crate) fn record_tick(
        &mut self,
        now: Time,
        total: u64,
        max_queue: u64,
        max_wait: Time,
    ) -> Option<i64> {
        if self.times.len() == self.capacity {
            self.compact();
        }
        let margin = self
            .bound
            .map(|b| (b as i64).saturating_sub(max_wait.min(i64::MAX as u64) as i64));
        self.times.push(now);
        self.totals.push(total);
        self.max_queues.push(max_queue);
        self.max_waits.push(max_wait);
        self.margins.push(margin.unwrap_or(0));
        self.ticks += 1;
        self.next = now.saturating_add(self.cadence);
        margin
    }

    /// Halve the store in place (keep every other tick) and double the
    /// cadence. No allocation; O(capacity) moves.
    fn compact(&mut self) {
        let n = self.times.len();
        let mut k = 0;
        for i in (0..n).step_by(2) {
            self.times[k] = self.times[i];
            self.totals[k] = self.totals[i];
            self.max_queues[k] = self.max_queues[i];
            self.max_waits[k] = self.max_waits[i];
            self.margins[k] = self.margins[i];
            k += 1;
        }
        self.times.truncate(k);
        self.totals.truncate(k);
        self.max_queues.truncate(k);
        self.max_waits.truncate(k);
        self.margins.truncate(k);
        self.cadence = self.cadence.saturating_mul(2);
    }

    /// The margin-tracker bound (resolved at attach).
    pub fn bound(&self) -> Option<u64> {
        self.bound
    }

    /// Current steps between ticks (doubles on each compaction).
    pub fn cadence(&self) -> Time {
        self.cadence
    }

    /// Ticks recorded over the run (including compacted-away ones).
    pub fn ticks(&self) -> u64 {
        self.ticks
    }

    /// Tick times currently held, ascending.
    pub fn times(&self) -> &[Time] {
        &self.times
    }

    /// Total live backlog per held tick (parallel to
    /// [`Observe::times`]).
    pub fn totals(&self) -> &[u64] {
        &self.totals
    }

    /// Deepest-queue running peak per held tick.
    pub fn max_queues(&self) -> &[u64] {
        &self.max_queues
    }

    /// Worst-wait running peak per held tick.
    pub fn max_waits(&self) -> &[Time] {
        &self.max_waits
    }

    /// `bound − max_wait` per held tick (all zero without a bound; see
    /// [`Observe::bound`]).
    pub fn margins(&self) -> &[i64] {
        &self.margins
    }

    /// The smallest margin seen across held ticks — the run's closest
    /// approach to its certificate bound. `None` without a bound or
    /// before the first tick.
    pub fn min_margin(&self) -> Option<i64> {
        self.bound?;
        self.margins.iter().copied().min()
    }

    /// Spans emitted through the sink so far.
    pub fn spans_emitted(&self) -> u64 {
        self.spans_emitted
    }

    /// Spans dropped to the per-step scratch cap (0 in healthy runs;
    /// nonzero means the sample rate is too dense for the traffic).
    pub fn spans_dropped(&self) -> u64 {
        self.spans_dropped
    }

    /// Cumulative packets sent per shard (empty on unsharded runs).
    pub fn shard_sent(&self) -> &[u64] {
        &self.shard_sent
    }

    /// `max/mean` of [`Observe::shard_sent`] — 1.0 is a perfectly
    /// balanced partition. `None` when unsharded or before any send.
    pub fn shard_imbalance(&self) -> Option<f64> {
        let total: u64 = self.shard_sent.iter().sum();
        if self.shard_sent.is_empty() || total == 0 {
            return None;
        }
        let max = *self.shard_sent.iter().max().unwrap() as f64;
        let mean = total as f64 / self.shard_sent.len() as f64;
        Some(max / mean)
    }
}

impl std::fmt::Debug for Observe {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Observe")
            .field("enabled", &self.enabled)
            .field("cadence", &self.cadence)
            .field("ticks", &self.ticks)
            .field("bound", &self.bound)
            .field("spans_on", &self.spans_on)
            .finish_non_exhaustive()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn configured(cfg: ObserveConfig) -> Observe {
        let mut ob = Observe::disabled();
        let bound = cfg.bound;
        ob.configure(cfg, 0, 8, 1, bound);
        ob
    }

    #[test]
    fn disabled_costs_one_gate() {
        let ob = Observe::disabled();
        assert!(!ob.is_enabled());
        assert_eq!(ob.next, Time::MAX);
        assert!(!ob.spans_on);
    }

    #[test]
    fn tick_store_records_and_margins() {
        let mut ob = configured(ObserveConfig::default().with_bound(10));
        assert_eq!(ob.record_tick(256, 40, 7, 3), Some(7));
        assert_eq!(ob.record_tick(512, 55, 9, 12), Some(-2));
        assert_eq!(ob.times(), &[256, 512]);
        assert_eq!(ob.totals(), &[40, 55]);
        assert_eq!(ob.margins(), &[7, -2]);
        assert_eq!(ob.min_margin(), Some(-2));
        assert_eq!(ob.ticks(), 2);
        assert_eq!(ob.next, 512 + 256);
    }

    #[test]
    fn no_bound_means_no_margin() {
        let mut ob = configured(ObserveConfig::default());
        assert_eq!(ob.record_tick(256, 1, 1, 100), None);
        assert_eq!(ob.min_margin(), None);
    }

    #[test]
    fn store_compacts_in_place_and_doubles_cadence() {
        let mut ob = configured(ObserveConfig {
            cadence: 1,
            capacity: 16,
            ..Default::default()
        });
        let base_cap = ob.times.capacity();
        for t in 1..=40u64 {
            ob.record_tick(t, t, 0, 0);
        }
        // Never grew past the preallocated capacity.
        assert_eq!(ob.times.capacity(), base_cap);
        assert!(ob.times().len() <= 16);
        assert_eq!(ob.ticks(), 40);
        assert!(ob.cadence() > 1);
        // Ascending, gap-doubled but intact series.
        assert!(ob.times().windows(2).all(|w| w[0] < w[1]));
        for (t, q) in ob.times().iter().zip(ob.totals()) {
            assert_eq!(t, q);
        }
    }

    #[test]
    fn span_sampling_is_a_power_of_two_residue_class() {
        let mut ob = configured(ObserveConfig {
            span_sample_every: 48, // rounds up to 64
            span_seed: 0x2a,
            ..Default::default()
        });
        assert!(ob.spans_on);
        assert_eq!(ob.span_mask, 63);
        assert_eq!(ob.span_residue, 0x2a & 63);
        let sampled: Vec<u64> = (0..256).filter(|&id| ob.sampled(id)).collect();
        assert_eq!(sampled.len(), 4); // 256 / 64
        assert!(sampled.windows(2).all(|w| w[1] - w[0] == 64));
        ob.push_span(SpanRec {
            time: 1,
            op: SpanKind::Inject,
            packet: sampled[0],
            edge: 0,
            hop: 0,
            wait: 0,
            shard: 0,
        });
        assert_eq!(ob.span_scratch.len(), 1);
    }

    #[test]
    fn span_scratch_drops_past_cap_without_growing() {
        let mut ob = configured(ObserveConfig {
            span_sample_every: 1,
            ..Default::default()
        });
        let rec = SpanRec {
            time: 0,
            op: SpanKind::Send,
            packet: 0,
            edge: 0,
            hop: 0,
            wait: 0,
            shard: 0,
        };
        for _ in 0..(SPAN_SCRATCH_CAP + 10) {
            ob.push_span(rec);
        }
        assert_eq!(ob.span_scratch.len(), SPAN_SCRATCH_CAP);
        assert_eq!(ob.span_scratch.capacity(), SPAN_SCRATCH_CAP);
        assert_eq!(ob.spans_dropped(), 10);
    }

    #[test]
    fn imbalance_is_max_over_mean() {
        let mut ob = Observe::disabled();
        ob.configure(ObserveConfig::default(), 0, 8, 4, None);
        assert_eq!(ob.shard_imbalance(), None);
        ob.shard_sent.copy_from_slice(&[10, 10, 10, 30]);
        assert_eq!(ob.shard_imbalance(), Some(2.0));
        ob.reshard(1);
        assert!(ob.shard_sent().is_empty());
    }
}
