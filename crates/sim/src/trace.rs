//! Per-packet event tracing by snapshot diffing.
//!
//! Rather than instrumenting the engine's hot loop, the recorder diffs
//! consecutive [`crate::snapshot::Snapshot`]s: every packet that
//! appears, moves between buffers, or disappears between two steps
//! yields one event. Zero cost when unused; O(live packets) per traced
//! step. Intended for debugging adversary constructions and for the
//! worked examples — not for multi-million-step production runs.

use std::collections::HashMap;

use aqt_graph::EdgeId;

use crate::engine::Engine;
use crate::packet::Time;
use crate::protocol::Protocol;
use crate::snapshot::{capture, Snapshot};

/// One traced packet event.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum TraceEvent {
    /// The packet entered the network (seed or injection) at `edge`.
    Injected {
        /// Step at which the event was observed.
        time: Time,
        /// Packet id.
        id: u64,
        /// Buffer the packet appeared in.
        edge: EdgeId,
    },
    /// The packet crossed a link, moving between buffers.
    Moved {
        /// Step at which the event was observed.
        time: Time,
        /// Packet id.
        id: u64,
        /// Buffer it left.
        from: EdgeId,
        /// Buffer it arrived in.
        to: EdgeId,
    },
    /// The packet was absorbed at its destination.
    Absorbed {
        /// Step at which the event was observed.
        time: Time,
        /// Packet id.
        id: u64,
        /// The last buffer it occupied.
        from: EdgeId,
    },
}

impl TraceEvent {
    /// The event's packet id.
    pub fn id(&self) -> u64 {
        match self {
            TraceEvent::Injected { id, .. }
            | TraceEvent::Moved { id, .. }
            | TraceEvent::Absorbed { id, .. } => *id,
        }
    }
}

/// Records packet events by diffing engine snapshots.
pub struct TraceRecorder {
    prev: Snapshot,
    /// All events observed so far, in (time, id) order.
    pub events: Vec<TraceEvent>,
}

fn positions(snap: &Snapshot) -> HashMap<u64, EdgeId> {
    let mut map = HashMap::new();
    for (ei, buf) in snap.buffers.iter().enumerate() {
        for p in buf {
            map.insert(p.id, EdgeId(ei as u32));
        }
    }
    map
}

impl TraceRecorder {
    /// Start recording from the engine's current state.
    pub fn new<P: Protocol>(engine: &Engine<P>) -> Self {
        TraceRecorder {
            prev: capture(engine),
            events: Vec::new(),
        }
    }

    /// Diff the engine's state against the last observation and append
    /// the events. Call once after each (batch of) step(s); events are
    /// stamped with the engine's current time.
    pub fn observe<P: Protocol>(&mut self, engine: &Engine<P>) {
        let now = capture(engine);
        let time = now.time;
        let before = positions(&self.prev);
        let after = positions(&now);
        let mut batch = Vec::new();
        for (&id, &edge) in &after {
            match before.get(&id) {
                None => batch.push(TraceEvent::Injected { time, id, edge }),
                Some(&prev_edge) if prev_edge != edge => batch.push(TraceEvent::Moved {
                    time,
                    id,
                    from: prev_edge,
                    to: edge,
                }),
                _ => {}
            }
        }
        for (&id, &edge) in &before {
            if !after.contains_key(&id) {
                batch.push(TraceEvent::Absorbed {
                    time,
                    id,
                    from: edge,
                });
            }
        }
        batch.sort_by_key(|e| e.id());
        self.events.extend(batch);
        self.prev = now;
    }

    /// Events for one packet, in observation order.
    pub fn history(&self, id: u64) -> Vec<&TraceEvent> {
        self.events.iter().filter(|e| e.id() == id).collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::engine::{EngineConfig, Injection};
    use crate::packet::Packet;
    use aqt_graph::{topologies, Graph, Route};
    use std::collections::VecDeque;
    use std::sync::Arc;

    struct Fifo;
    impl Protocol for Fifo {
        fn name(&self) -> &str {
            "FIFO"
        }
        fn select(&mut self, _: Time, _: EdgeId, _: &VecDeque<Packet>, _: &Graph) -> usize {
            0
        }
    }

    #[test]
    fn traces_a_packet_lifecycle() {
        let g = Arc::new(topologies::line(2));
        let edges: Vec<EdgeId> = g.edge_ids().collect();
        let route = Route::new(&g, edges.clone()).unwrap();
        let mut eng = Engine::new(Arc::clone(&g), Fifo, EngineConfig::default());
        let mut tr = TraceRecorder::new(&eng);

        eng.step([Injection::new(route, 0)]).unwrap();
        tr.observe(&eng);
        eng.run_quiet(1).unwrap();
        tr.observe(&eng);
        eng.run_quiet(1).unwrap();
        tr.observe(&eng);

        let h = tr.history(0);
        assert_eq!(h.len(), 3);
        assert!(matches!(h[0], TraceEvent::Injected { edge, .. } if *edge == edges[0]));
        assert!(
            matches!(h[1], TraceEvent::Moved { from, to, .. } if *from == edges[0] && *to == edges[1])
        );
        assert!(matches!(h[2], TraceEvent::Absorbed { from, .. } if *from == edges[1]));
    }

    #[test]
    fn coarse_observation_collapses_moves() {
        // Observing every 2 steps: the intermediate hop is invisible,
        // the packet appears to jump (still one Moved event).
        let g = Arc::new(topologies::line(3));
        let edges: Vec<EdgeId> = g.edge_ids().collect();
        let route = Route::new(&g, edges.clone()).unwrap();
        let mut eng = Engine::new(Arc::clone(&g), Fifo, EngineConfig::default());
        eng.seed(route, 0).unwrap();
        let mut tr = TraceRecorder::new(&eng);
        eng.run_quiet(2).unwrap();
        tr.observe(&eng);
        let h = tr.history(0);
        assert_eq!(h.len(), 1);
        assert!(
            matches!(h[0], TraceEvent::Moved { from, to, .. } if *from == edges[0] && *to == edges[2])
        );
    }

    #[test]
    fn no_events_when_idle() {
        let g = Arc::new(topologies::line(1));
        let eng = Engine::new(Arc::clone(&g), Fifo, EngineConfig::default());
        let mut tr = TraceRecorder::new(&eng);
        tr.observe(&eng);
        assert!(tr.events.is_empty());
    }
}
