//! Per-packet event tracing by snapshot diffing.
//!
//! Rather than instrumenting the engine's hot loop, the recorder diffs
//! consecutive [`crate::snapshot::Snapshot`]s: every packet that
//! appears, moves between buffers, or disappears between two steps
//! yields one event. Zero cost when unused; O(live packets) per traced
//! step. Intended for debugging adversary constructions and for the
//! worked examples — not for multi-million-step production runs.
//!
//! Faults are traced exactly: the recorder keeps a cursor into the
//! engine's [`fault log`](Engine::fault_log), so a packet that
//! vanished because a drop fault ate it yields [`TraceEvent::Dropped`]
//! (not a spurious `Absorbed`), a duplicate's first appearance yields
//! [`TraceEvent::Duplicated`] (not a spurious `Injected`), and outage
//! and burst faults appear as their own events even when no packet
//! visibly moved.

use std::collections::{HashMap, HashSet};

use aqt_graph::EdgeId;

use crate::engine::Engine;
use crate::fault::FaultEvent;
use crate::packet::Time;
use crate::protocol::Protocol;
use crate::snapshot::{capture, Snapshot};

/// One traced packet event.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum TraceEvent {
    /// The packet entered the network (seed or injection) at `edge`.
    Injected {
        /// Step at which the event was observed.
        time: Time,
        /// Packet id.
        id: u64,
        /// Buffer the packet appeared in.
        edge: EdgeId,
    },
    /// The packet crossed a link, moving between buffers.
    Moved {
        /// Step at which the event was observed.
        time: Time,
        /// Packet id.
        id: u64,
        /// Buffer it left.
        from: EdgeId,
        /// Buffer it arrived in.
        to: EdgeId,
    },
    /// The packet was absorbed at its destination.
    Absorbed {
        /// Step at which the event was observed.
        time: Time,
        /// Packet id.
        id: u64,
        /// The last buffer it occupied.
        from: EdgeId,
    },
    /// The packet was lost to a drop fault.
    Dropped {
        /// Step of the fault (exact, from the fault log).
        time: Time,
        /// Packet id.
        id: u64,
        /// The edge it was crossing.
        edge: EdgeId,
    },
    /// The packet came into being as a duplication-fault copy.
    Duplicated {
        /// Step of the fault (exact, from the fault log).
        time: Time,
        /// The copy's id.
        id: u64,
        /// The original packet's id.
        original: u64,
        /// The edge crossed when the duplication happened.
        edge: EdgeId,
    },
    /// An outage fault suppressed a send from a nonempty buffer.
    EdgeDown {
        /// Step of the suppressed send (exact, from the fault log).
        time: Time,
        /// The silenced edge.
        edge: EdgeId,
    },
    /// A burst fault materialized packets.
    Burst {
        /// Step of the burst (exact, from the fault log).
        time: Time,
        /// Number of packets admitted.
        count: u64,
    },
}

impl TraceEvent {
    /// The event's packet id (`None` for network-level fault events).
    pub fn id(&self) -> Option<u64> {
        match self {
            TraceEvent::Injected { id, .. }
            | TraceEvent::Moved { id, .. }
            | TraceEvent::Absorbed { id, .. }
            | TraceEvent::Dropped { id, .. }
            | TraceEvent::Duplicated { id, .. } => Some(*id),
            TraceEvent::EdgeDown { .. } | TraceEvent::Burst { .. } => None,
        }
    }
}

/// Records packet events by diffing engine snapshots.
pub struct TraceRecorder {
    prev: Snapshot,
    /// How much of the engine's fault log has been consumed.
    fault_cursor: usize,
    /// All events observed so far, in (time, id) order.
    pub events: Vec<TraceEvent>,
}

fn positions(snap: &Snapshot) -> HashMap<u64, EdgeId> {
    let mut map = HashMap::new();
    for (ei, buf) in snap.buffers.iter().enumerate() {
        for p in buf {
            map.insert(p.id, EdgeId(ei as u32));
        }
    }
    map
}

impl TraceRecorder {
    /// Start recording from the engine's current state.
    pub fn new<P: Protocol>(engine: &Engine<P>) -> Self {
        TraceRecorder {
            prev: capture(engine),
            fault_cursor: engine.fault_log().len(),
            events: Vec::new(),
        }
    }

    /// Diff the engine's state against the last observation and append
    /// the events. Call once after each (batch of) step(s); packet
    /// movement events are stamped with the engine's current time,
    /// fault events with their exact fault-log time.
    pub fn observe<P: Protocol>(&mut self, engine: &Engine<P>) {
        let now = capture(engine);
        let time = now.time;
        let before = positions(&self.prev);
        let after = positions(&now);

        // Faults since the last observation, so disappearances and
        // appearances they caused are not misread as absorb/inject.
        let faults = &engine.fault_log()[self.fault_cursor..];
        self.fault_cursor = engine.fault_log().len();
        let dropped_ids: HashSet<u64> = faults
            .iter()
            .filter_map(|f| match f {
                FaultEvent::PacketDropped { id, .. } => Some(id.0),
                _ => None,
            })
            .collect();
        let clone_ids: HashSet<u64> = faults
            .iter()
            .filter_map(|f| match f {
                FaultEvent::PacketDuplicated { clone, .. } => Some(clone.0),
                _ => None,
            })
            .collect();

        let mut batch = Vec::new();
        for (&id, &edge) in &after {
            match before.get(&id) {
                None if clone_ids.contains(&id) => {} // Duplicated event below
                None => batch.push(TraceEvent::Injected { time, id, edge }),
                Some(&prev_edge) if prev_edge != edge => batch.push(TraceEvent::Moved {
                    time,
                    id,
                    from: prev_edge,
                    to: edge,
                }),
                _ => {}
            }
        }
        for &id in before.keys() {
            if !after.contains_key(&id) && !dropped_ids.contains(&id) {
                let from = before[&id];
                batch.push(TraceEvent::Absorbed { time, id, from });
            }
        }
        for f in faults {
            batch.push(match *f {
                FaultEvent::PacketDropped { time, edge, id } => TraceEvent::Dropped {
                    time,
                    id: id.0,
                    edge,
                },
                FaultEvent::PacketDuplicated {
                    time,
                    edge,
                    original,
                    clone,
                } => TraceEvent::Duplicated {
                    time,
                    id: clone.0,
                    original: original.0,
                    edge,
                },
                FaultEvent::OutageSuppressedSend { time, edge } => {
                    TraceEvent::EdgeDown { time, edge }
                }
                FaultEvent::BurstInjected { time, count } => TraceEvent::Burst { time, count },
            });
        }
        batch.sort_by_key(|e| e.id());
        self.events.extend(batch);
        self.prev = now;
    }

    /// Events for one packet, in observation order.
    pub fn history(&self, id: u64) -> Vec<&TraceEvent> {
        self.events.iter().filter(|e| e.id() == Some(id)).collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::engine::{EngineConfig, Injection};
    use crate::packet::Packet;
    use aqt_graph::{topologies, Graph, Route};
    use std::collections::VecDeque;
    use std::sync::Arc;

    struct Fifo;
    impl Protocol for Fifo {
        fn name(&self) -> &str {
            "FIFO"
        }
        fn select(&mut self, _: Time, _: EdgeId, _: &VecDeque<Packet>, _: &Graph) -> usize {
            0
        }
    }

    #[test]
    fn traces_a_packet_lifecycle() {
        let g = Arc::new(topologies::line(2));
        let edges: Vec<EdgeId> = g.edge_ids().collect();
        let route = Route::new(&g, edges.clone()).unwrap();
        let mut eng = Engine::new(Arc::clone(&g), Fifo, EngineConfig::default());
        let mut tr = TraceRecorder::new(&eng);

        eng.step([Injection::new(route, 0)]).unwrap();
        tr.observe(&eng);
        eng.run_quiet(1).unwrap();
        tr.observe(&eng);
        eng.run_quiet(1).unwrap();
        tr.observe(&eng);

        let h = tr.history(0);
        assert_eq!(h.len(), 3);
        assert!(matches!(h[0], TraceEvent::Injected { edge, .. } if *edge == edges[0]));
        assert!(
            matches!(h[1], TraceEvent::Moved { from, to, .. } if *from == edges[0] && *to == edges[1])
        );
        assert!(matches!(h[2], TraceEvent::Absorbed { from, .. } if *from == edges[1]));
    }

    #[test]
    fn coarse_observation_collapses_moves() {
        // Observing every 2 steps: the intermediate hop is invisible,
        // the packet appears to jump (still one Moved event).
        let g = Arc::new(topologies::line(3));
        let edges: Vec<EdgeId> = g.edge_ids().collect();
        let route = Route::new(&g, edges.clone()).unwrap();
        let mut eng = Engine::new(Arc::clone(&g), Fifo, EngineConfig::default());
        eng.seed(route, 0).unwrap();
        let mut tr = TraceRecorder::new(&eng);
        eng.run_quiet(2).unwrap();
        tr.observe(&eng);
        let h = tr.history(0);
        assert_eq!(h.len(), 1);
        assert!(
            matches!(h[0], TraceEvent::Moved { from, to, .. } if *from == edges[0] && *to == edges[2])
        );
    }

    #[test]
    fn cohort_injections_trace_as_distinct_packets() {
        // Cohort admission is a batched fast path (one cohort op, N
        // packets); the recorder must still see N individual
        // `Injected` events with N distinct ids, not one.
        let g = Arc::new(topologies::line(2));
        let edges: Vec<EdgeId> = g.edge_ids().collect();
        let route = Route::new(&g, edges.clone()).unwrap();
        let mut eng = Engine::new(Arc::clone(&g), Fifo, EngineConfig::default());
        let mut tr = TraceRecorder::new(&eng);

        eng.seed_cohort(route.clone(), 0, 5).unwrap();
        tr.observe(&eng);
        let seeded: std::collections::HashSet<u64> =
            tr.events.iter().filter_map(|e| e.id()).collect();
        assert_eq!(tr.events.len(), 5, "one Injected per seeded packet");
        assert_eq!(seeded.len(), 5, "all seeded ids distinct");
        assert!(tr
            .events
            .iter()
            .all(|e| matches!(e, TraceEvent::Injected { edge, .. } if *edge == edges[0])));

        let mut sched = crate::Schedule::new();
        sched.inject_cohort_at(1, route, 1, 4);
        sched.run(&mut eng, 1).unwrap();
        tr.observe(&eng);
        let all: std::collections::HashSet<u64> = tr.events.iter().filter_map(|e| e.id()).collect();
        assert_eq!(all.len(), 9, "4 more distinct ids from the cohort op");
        let injected = tr
            .events
            .iter()
            .filter(|e| matches!(e, TraceEvent::Injected { .. }))
            .count();
        assert_eq!(injected, 9);
    }

    #[test]
    fn no_events_when_idle() {
        let g = Arc::new(topologies::line(1));
        let eng = Engine::new(Arc::clone(&g), Fifo, EngineConfig::default());
        let mut tr = TraceRecorder::new(&eng);
        tr.observe(&eng);
        assert!(tr.events.is_empty());
    }
}
