//! The workspace error hierarchy.
//!
//! Two roots:
//!
//! * [`SimError`] — anything that goes wrong *inside* a simulation:
//!   engine errors (adversary constraint violations, protocol contract
//!   breaches), checkpoint mismatches. One simulation failing is a
//!   result, not a crash; experiment drivers convert a `SimError` into
//!   a structured report entry.
//! * [`crate::parallel::HarnessError`] — anything that goes wrong in
//!   the machinery *around* simulations: a sweep job that panicked on
//!   every attempt, a missing result slot. Harness errors carry enough
//!   context (job index, attempt count, panic payload) to re-run the
//!   one poisoned job.

use crate::engine::EngineError;
use crate::parallel::HarnessError;
use crate::sentinel::ViolationReport;

/// Top-level simulation error.
#[derive(Debug)]
pub enum SimError {
    /// The engine rejected an operation or detected a violation.
    Engine(EngineError),
    /// A checkpoint could not be restored into the target engine.
    Checkpoint(String),
    /// A snapshot carried an unsupported schema version (produced by
    /// an older or newer build of this crate).
    SchemaMismatch {
        /// The version stamped on the snapshot.
        found: u32,
        /// The version this build reads and writes.
        expected: u32,
    },
    /// A sentinel invariant at `Severity::Halt` was violated. Carries
    /// the full report: what failed, when, and a minimal reproduction
    /// bundle (seed, step, snapshot, fault plan).
    InvariantViolated(Box<ViolationReport>),
    /// Checked arithmetic overflowed in rate/ratio hot-path math.
    Overflow {
        /// The operation that overflowed (static label).
        op: &'static str,
    },
    /// The surrounding harness failed (sweep-job panic, lost result).
    Harness(HarnessError),
}

impl std::fmt::Display for SimError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            SimError::Engine(e) => write!(f, "{e}"),
            SimError::Checkpoint(s) => write!(f, "checkpoint restore failed: {s}"),
            SimError::SchemaMismatch { found, expected } => write!(
                f,
                "snapshot schema version {found} is not supported (this build reads version {expected})"
            ),
            SimError::InvariantViolated(r) => write!(f, "{r}"),
            SimError::Overflow { op } => write!(f, "arithmetic overflow in {op}"),
            SimError::Harness(e) => write!(f, "{e}"),
        }
    }
}

impl std::error::Error for SimError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            SimError::Engine(e) => Some(e),
            SimError::Harness(e) => Some(e),
            SimError::Checkpoint(_) => None,
            SimError::SchemaMismatch { .. } => None,
            SimError::InvariantViolated(_) => None,
            SimError::Overflow { .. } => None,
        }
    }
}

impl From<EngineError> for SimError {
    fn from(e: EngineError) -> Self {
        match e {
            // Surface a halting sentinel violation under its own typed
            // variant so callers can extract the repro bundle without
            // digging through the engine error.
            EngineError::Invariant(r) => SimError::InvariantViolated(r),
            other => SimError::Engine(other),
        }
    }
}

impl From<HarnessError> for SimError {
    fn from(e: HarnessError) -> Self {
        SimError::Harness(e)
    }
}

impl From<aqt_graph::RouteError> for SimError {
    fn from(e: aqt_graph::RouteError) -> Self {
        SimError::Engine(EngineError::from(e))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_and_conversion() {
        let e: SimError = EngineError::Usage("nope".into()).into();
        assert!(e.to_string().contains("nope"));
        let h: SimError = HarnessError::MissingResult { index: 3 }.into();
        assert!(h.to_string().contains("3"));
        let c = SimError::Checkpoint("graph mismatch".into());
        assert!(c.to_string().contains("graph mismatch"));
        let s = SimError::SchemaMismatch {
            found: 1,
            expected: 2,
        };
        assert!(s.to_string().contains("version 1"));
        assert!(s.to_string().contains("version 2"));
    }
}
