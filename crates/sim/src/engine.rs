//! The discrete-time store-and-forward engine (Section 2 of the paper).
//!
//! Semantics, implemented verbatim:
//!
//! * The system starts at time 0. Step `t ≥ 1` consists of:
//!   * **substep 1** — from every nonempty buffer, the protocol selects
//!     one packet, which is sent over the edge (greediness is enforced:
//!     a protocol chooses *which* packet, never *whether*);
//!   * **substep 2** — sent packets are absorbed at their destination or
//!     appended to the next buffer on their route; then the adversary's
//!     injections for step `t` are appended to the buffers of the first
//!     edges of their routes.
//! * Packets arriving at the same buffer in the same substep are
//!   enqueued deterministically: transit arrivals first (in ascending
//!   order of the edge they crossed), then injections (in submission
//!   order). The queue is therefore always in arrival order, with a
//!   fixed tie-break — FIFO is "select index 0".
//!
//! Beyond the bare model the engine supports:
//!
//! * **Initial configurations** ([`Engine::seed`]) — the
//!   `S`-initial-configurations of Observation 4.4 and the initial
//!   state of Theorem 3.17. Seeds bypass the adversary validators
//!   (that is exactly the allowance Observation 4.4 formalizes).
//! * **Route extension** ([`Engine::extend_routes_in`]) — the on-line
//!   rerouting of Lemma 3.3, restricted (as in the paper) to suffix
//!   extension of the remaining route. With
//!   [`EngineConfig::validate_reroutes`] the engine checks the lemma's
//!   preconditions: the policy is historic, the rerouted packets share
//!   a common route edge, and the new edges are *new* in the sense of
//!   Definition 3.2.
//! * **Adversary validation** — with [`EngineConfig::validate`], every
//!   injection and every route extension is fed to an exact
//!   [`AdversaryModel`]: the composition of any number of constraint
//!   members (`Rate`, `Window`, `BurstLocal`, `BufferBound` — see
//!   [`crate::rate`]). Extensions are recorded at the *original
//!   injection times* of the extended packets, so what is validated is
//!   precisely the effective adversary `A'` of Lemma 3.3 — the one
//!   that injects the final routes.

use std::collections::VecDeque;
use std::sync::Arc;

use aqt_graph::{EdgeId, Graph, Route, RouteError};

use crate::buffer::BufferStore;
use crate::fault::{FaultEvent, FaultPlan};
use crate::metrics::{BacklogSample, Metrics};
use crate::observe::{Observe, ObserveConfig, SpanRec};
use crate::oracle::{Oracle, ReferenceModel};
use crate::packet::{Packet, PacketId, Time};
use crate::protocol::{Discipline, Protocol};
use crate::rate::{AdversaryModel, AdversaryModelSpec, Constraint, RateViolation};
use crate::routes::{RouteId, RouteTable};
use crate::sentinel::{
    self, InvariantKind, ReproBundle, Sentinel, SentinelConfig, SentinelState, Severity, Violation,
    ViolationReport,
};
use crate::shard::{ShardPlan, ShardRuntime, ShardStamp};
use crate::telemetry::{SpanKind, Telemetry, TelemetryConfig, TelemetrySink};

/// Engine configuration.
#[derive(Debug, Clone, Default)]
pub struct EngineConfig {
    /// Validate every injection against this composed adversary model
    /// (see [`crate::rate::AdversaryModelSpec`]). The classic cases:
    /// `AdversaryModelSpec::rate(r)` is Section 3's rate-`r` adversary,
    /// `AdversaryModelSpec::window(w, r)` is Definition 2.1's `(w, r)`
    /// adversary. Extensions are validated as performed by the
    /// effective adversary `A'`.
    pub validate: Option<AdversaryModelSpec>,
    /// Check the preconditions of Lemma 3.3 on every route extension.
    /// Requires a `Rate` member in `validate` (the definition of a
    /// "new" edge depends on the rate through `⌈1/r⌉`).
    pub validate_reroutes: bool,
    /// Sample the backlog series every this many steps (0 = never).
    pub sample_every: Time,
    /// Run the retained pre-refactor step loop instead of the staged
    /// pipeline: scan **every** edge buffer each step and always go
    /// through the virtual [`Protocol::select`], ignoring both the
    /// active-edge set and the protocol's declared [`Discipline`].
    /// The trajectories are identical (the equivalence proptests pin
    /// this); only the cost differs. Used by those proptests and by
    /// the engine benchmark's "before" measurements.
    pub reference_pipeline: bool,
}

/// Errors surfaced by the engine. After an error the engine state is
/// unspecified; experiments treat any error as fatal.
#[derive(Debug)]
pub enum EngineError {
    /// An adversary constraint was violated.
    Rate(RateViolation),
    /// A route failed validation.
    Route(RouteError),
    /// A route extension violated a precondition of Lemma 3.3.
    Reroute(String),
    /// API misuse (e.g. seeding after the simulation started).
    Usage(String),
    /// A protocol implementation broke its contract (e.g. selected an
    /// out-of-range packet index).
    Protocol(String),
    /// An engine invariant failed to hold — a bug in the engine
    /// itself, reported instead of panicking so a sweep harness can
    /// quarantine the run.
    Internal(String),
    /// A sentinel invariant at [`Severity::Halt`] was violated.
    /// Carries the full report: what failed, when, and the minimal
    /// reproduction bundle (seed, step, snapshot, fault plan). Mapped
    /// to [`crate::SimError::InvariantViolated`] at the `SimError`
    /// boundary.
    Invariant(Box<ViolationReport>),
}

impl std::fmt::Display for EngineError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            EngineError::Rate(v) => write!(f, "{v}"),
            EngineError::Route(e) => write!(f, "invalid route: {e}"),
            EngineError::Reroute(s) => write!(f, "illegal reroute: {s}"),
            EngineError::Usage(s) => write!(f, "engine misuse: {s}"),
            EngineError::Protocol(s) => write!(f, "protocol contract violation: {s}"),
            EngineError::Internal(s) => write!(f, "engine invariant violation: {s}"),
            EngineError::Invariant(r) => write!(f, "{r}"),
        }
    }
}

impl std::error::Error for EngineError {}

impl From<RateViolation> for EngineError {
    fn from(v: RateViolation) -> Self {
        EngineError::Rate(v)
    }
}

impl From<RouteError> for EngineError {
    fn from(e: RouteError) -> Self {
        EngineError::Route(e)
    }
}

/// An injection request: route plus cohort tag, for `count` identical
/// packets.
#[derive(Debug, Clone, PartialEq)]
pub struct Injection {
    /// The packets' (shared) route.
    pub route: Route,
    /// Cohort tag (free-form, for experiment bookkeeping).
    pub tag: u32,
    /// How many identical packets to inject. The route is interned and
    /// validated per packet, but the buffer insertion is one
    /// range-extend for the whole cohort.
    pub count: u32,
}

/// One absorption event, recorded when [`Engine::record_absorptions`]
/// is on: the packet's cohort tag plus its injection and absorption
/// times. This is the reply channel for closed-loop layers (the
/// `aqt-workload` crate tags each request attempt and matches replies
/// by tag); the engine itself never reads the log.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Absorption {
    /// The absorbed packet's cohort tag.
    pub tag: u32,
    /// When the packet was injected.
    pub injected_at: Time,
    /// When the packet reached its destination (was absorbed).
    pub absorbed_at: Time,
}

impl Injection {
    /// A single packet.
    pub fn new(route: Route, tag: u32) -> Self {
        Injection {
            route,
            tag,
            count: 1,
        }
    }

    /// A cohort of `count` identical packets (the burst shape of the
    /// Lemma 3.6/3.15/3.16 sub-adversaries). Equivalent to `count`
    /// consecutive [`Injection::new`] requests — packet ids are
    /// assigned consecutively and the trajectory is identical — but the
    /// enqueue is a single reserve + range-extend.
    pub fn cohort(route: Route, tag: u32, count: u32) -> Self {
        Injection { route, tag, count }
    }
}

/// Slots in the injection-path intern memo — sized above the ~dozen
/// concurrent rate-`r` streams the instability construction's busiest
/// phase rotates through per step. Round-robin replacement degenerates
/// to all-miss when the working set exceeds the slot count (cyclic
/// access), so the size errs generous; a scan of 16 compact entries is
/// still far cheaper than one hash-and-probe of the route table.
const INJECT_MEMO_SLOTS: usize = 16;

/// One entry of the injection-path intern memo: a resolved route keyed
/// by the address and length of its shared slice. The pinned `Route`
/// clone keeps that allocation alive, so an equal (address, length)
/// key can only mean the same immutable contents — address reuse after
/// a free is impossible while the pin exists. The address is stored as
/// `usize` (never dereferenced), so the memo does not affect `Send`.
#[derive(Clone)]
struct InjectMemoEntry {
    /// `route.edges().as_ptr()` at memoization time.
    addr: usize,
    /// `route.edges().len()` at memoization time.
    len: usize,
    /// What [`Engine::intern_for_admit`] returned for this route.
    resolved: (RouteId, u32, EdgeId),
    /// Keeps the keyed allocation alive (see above).
    _pin: Route,
}

/// The simulator.
pub struct Engine<P: Protocol> {
    graph: Arc<Graph>,
    protocol: P,
    /// The protocol's declared fast path, sampled once at construction
    /// (the [`Discipline`] contract requires it to be constant).
    discipline: Discipline,
    cfg: EngineConfig,
    time: Time,
    next_id: u64,
    buffers: BufferStore,
    /// Interned routes: every route a live or past packet has carried.
    /// Append-only — packets reference entries by [`RouteId`].
    routes: RouteTable,
    /// Small intern memo for the injection path: adversaries replay the
    /// same few routes millions of times (the instability construction
    /// rotates a handful of concurrent streams per step), so the common
    /// case is two register compares against a recently interned
    /// entry's pinned-slice key instead of a hash and a table probe
    /// (see [`InjectMemoEntry`] for why the key is sound).
    inject_memo: [Option<InjectMemoEntry>; INJECT_MEMO_SLOTS],
    /// Round-robin replacement cursor for `inject_memo`.
    inject_memo_cursor: usize,
    metrics: Metrics,
    /// Composed adversary model enforcing [`EngineConfig::validate`].
    model: Option<AdversaryModel>,
    /// Latest injection time of any packet whose (effective) route uses
    /// each edge — drives the "new edge" check of Definition 3.2.
    last_route_use: Vec<Option<Time>>,
    /// Workhorse buffer reused across steps: packets on the wire
    /// between substep 1 and the fault stage.
    in_transit: Vec<Packet>,
    /// Workhorse buffer reused across steps: packets that survived the
    /// wire-fault stage, awaiting receive.
    delivered: Vec<Packet>,
    /// Installed fault schedule, if any.
    faults: Option<FaultPlan>,
    /// Every fault that took effect, in time order.
    fault_log: Vec<FaultEvent>,
    /// Attached runtime invariant sentinel, if any.
    sentinel: Option<Sentinel>,
    /// Cached step of the next sentinel round (`Time::MAX` when no
    /// sentinel is attached or its cadence is 0): the per-step gate is
    /// one compare on a hot field instead of a probe through the
    /// `Option<Sentinel>`. Kept in sync by `attach_sentinel`,
    /// `restore_sentinel_state`, and `run_sentinel_checks`.
    sentinel_next: Time,
    /// Attached lockstep differential oracle, if any.
    oracle: Option<Oracle>,
    /// Telemetry state (disabled by default). The per-step cost while
    /// disabled is two boolean reads and one compare against the
    /// cached `window_next` gate — the same shape as `sentinel_next`.
    telemetry: Telemetry,
    /// The queue observatory (detached by default). While detached the
    /// step loop pays one compare against the cached `observe.next`
    /// tick gate plus one boolean read per span site.
    observe: Observe,
    /// Record an [`Absorption`] per absorbed packet (off by default —
    /// the hot path then pays one boolean read per absorption and the
    /// log never allocates).
    record_absorptions: bool,
    /// The absorption log, drained by [`Engine::take_absorptions`].
    absorptions: Vec<Absorption>,
    /// Sharded-stepping state ([`Engine::set_shards`]); `None` steps
    /// sequentially. Fault-active steps fall back to the sequential
    /// pipeline even when set (see [`crate::shard`]).
    shards: Option<ShardRuntime>,
    /// Scratch for the merged-active send order on a partitioned
    /// store's sequential fallback steps.
    active_scratch: Vec<u32>,
}

impl<P: Protocol> Engine<P> {
    /// Create an engine over `graph` driven by `protocol`.
    pub fn new(graph: Arc<Graph>, protocol: P, cfg: EngineConfig) -> Self {
        let m = graph.edge_count();
        let model = cfg.validate.as_ref().map(|spec| spec.build(m));
        let metrics = Metrics::new(m, cfg.sample_every);
        let discipline = protocol.discipline();
        Engine {
            graph,
            protocol,
            discipline,
            cfg,
            time: 0,
            next_id: 0,
            buffers: BufferStore::new(m),
            routes: RouteTable::new(),
            inject_memo: Default::default(),
            inject_memo_cursor: 0,
            metrics,
            model,
            last_route_use: vec![None; m],
            in_transit: Vec::new(),
            delivered: Vec::new(),
            faults: None,
            fault_log: Vec::new(),
            sentinel: None,
            sentinel_next: Time::MAX,
            oracle: None,
            telemetry: Telemetry::disabled(),
            observe: Observe::disabled(),
            record_absorptions: false,
            absorptions: Vec::new(),
            shards: None,
            active_scratch: Vec::new(),
        }
    }

    /// Configure sharded stepping: partition the edges per `plan` and
    /// run fault-free steps with `plan.count()` concurrent shards
    /// (count 1 restores plain sequential stepping). Legal at any step
    /// boundary — trajectories are partition-independent (the sharded
    /// equivalence tests pin sharded == sequential bit-for-bit), so
    /// resharding mid-run never changes results, only speed.
    ///
    /// Requires a protocol with a declared [`Discipline`] fast path
    /// when `count > 1`: [`Protocol::select`] takes `&mut self` and
    /// cannot be driven from concurrent shard workers.
    pub fn set_shards(&mut self, plan: ShardPlan) -> Result<(), EngineError> {
        if plan.shard_of().len() != self.graph.edge_count() {
            return Err(EngineError::Usage(format!(
                "shard plan covers {} edges but the graph has {}",
                plan.shard_of().len(),
                self.graph.edge_count()
            )));
        }
        if plan.count() > 1 && matches!(self.discipline, Discipline::Custom) {
            return Err(EngineError::Usage(format!(
                "protocol {} declares no Discipline fast path; sharded stepping requires one",
                self.protocol.name()
            )));
        }
        let count = plan.count() as usize;
        if count <= 1 {
            self.buffers
                .set_partition(vec![0; self.graph.edge_count()], 1);
            self.shards = None;
        } else {
            self.buffers.set_partition(plan.shard_of().to_vec(), count);
            self.shards = Some(ShardRuntime::new(plan));
        }
        self.observe.reshard(count);
        Ok(())
    }

    /// Number of shards stepping concurrently (1 = sequential).
    pub fn shard_count(&self) -> u32 {
        self.shards.as_ref().map_or(1, |rt| rt.plan().count())
    }

    /// The stamp identifying the current shard configuration. Carried
    /// by checkpoints, which refuse to restore under a different one.
    pub fn shard_stamp(&self) -> ShardStamp {
        self.shards
            .as_ref()
            .map_or(ShardStamp::SEQUENTIAL, |rt| rt.plan().stamp())
    }

    /// The step of the next sentinel round implied by the attached
    /// sentinel's state, or `Time::MAX` when checks are off.
    fn sentinel_next_due(&self) -> Time {
        match &self.sentinel {
            Some(s) if s.config().cadence > 0 => {
                s.state().last_check.saturating_add(s.config().cadence)
            }
            _ => Time::MAX,
        }
    }

    /// Attach a runtime invariant sentinel. The check baseline (the
    /// unit-speed crossing counters) is taken from the engine's current
    /// state, so attaching mid-run is legal.
    pub fn attach_sentinel(&mut self, cfg: SentinelConfig) {
        self.sentinel = Some(Sentinel::new(
            cfg,
            self.time,
            &self.metrics.crossings_per_edge,
        ));
        self.sentinel_next = self.sentinel_next_due();
    }

    /// Attach a lockstep differential oracle diffing the naive
    /// reference model against this engine every `every` steps
    /// (clamped to ≥ 1; `every == 1` is full lockstep). `protocol`
    /// must be a separate instance configured identically to the
    /// engine's — for stateful protocols, identically seeded. The
    /// model is synchronized to the engine's current state, so
    /// attaching mid-run is legal.
    ///
    /// Divergences are raised as [`InvariantKind::OracleDivergence`]
    /// under the attached sentinel's severity policy ([`Severity::Halt`]
    /// when no sentinel is attached).
    pub fn attach_oracle(&mut self, protocol: Box<dyn Protocol>, every: u64) {
        let mut oracle = Oracle::new(protocol, every, self.graph.edge_count());
        oracle.model.resync(self);
        self.oracle = Some(oracle);
    }

    /// The attached sentinel, if any.
    pub fn sentinel(&self) -> Option<&Sentinel> {
        self.sentinel.as_ref()
    }

    /// The attached differential oracle, if any.
    pub fn oracle(&self) -> Option<&Oracle> {
        self.oracle.as_ref()
    }

    /// Attach (or reconfigure) telemetry. Counters restart at zero and
    /// the window baseline is taken from the engine's current state,
    /// so attaching mid-run is legal — window records then cover only
    /// what happens after the attach. When the config leaves
    /// `provenance.fault_plan_id` unset and a fault plan is installed,
    /// the plan's [`FaultPlan::plan_id`] is filled in automatically.
    pub fn attach_telemetry(&mut self, cfg: TelemetryConfig) {
        let mut cfg = cfg;
        if cfg.provenance.fault_plan_id.is_none() {
            cfg.provenance.fault_plan_id = self.faults.as_ref().map(|f| f.plan_id());
        }
        if cfg.provenance.model_fingerprint.is_none() {
            cfg.provenance.model_fingerprint = self.model.as_ref().map(|m| m.spec().fingerprint());
        }
        self.telemetry
            .configure(cfg, self.time, &self.metrics.crossings_per_edge);
    }

    /// Attach a telemetry sink; emits a
    /// [`crate::telemetry::TelemetryEvent::RunStart`] immediately.
    /// Call after [`Engine::attach_telemetry`] so the announced
    /// provenance is the configured one.
    pub fn set_telemetry_sink(&mut self, sink: Box<dyn TelemetrySink>) {
        self.telemetry.set_sink(sink, self.time);
    }

    /// The telemetry state: level, counter totals, timing histograms.
    pub fn telemetry(&self) -> &Telemetry {
        &self.telemetry
    }

    /// Attach (or reconfigure) the queue observatory: fixed-cadence
    /// backlog ticks with a certificate-margin series, and seeded
    /// 1-in-N packet-lifecycle span sampling. All preallocation
    /// happens here; the step loop stays heap-free. When
    /// `cfg.bound` is `None` and a sentinel with an enforceable
    /// [`crate::CertificateSpec`] is attached, the margin tracker
    /// inherits the theorem bound — attach the sentinel first.
    /// Records and spans reach the sink attached via
    /// [`Engine::set_telemetry_sink`]; without one, the in-memory
    /// series ([`Engine::observatory`]) still fills.
    pub fn attach_observatory(&mut self, cfg: ObserveConfig) {
        let bound = cfg.bound.or_else(|| {
            self.sentinel
                .as_ref()
                .and_then(|s| s.config().certificate_spec)
                .and_then(|spec| spec.bound())
        });
        let shard_count = self.shard_count() as usize;
        self.observe
            .configure(cfg, self.time, self.graph.edge_count(), shard_count, bound);
    }

    /// The observatory state: backlog/margin series, span tallies,
    /// per-shard load.
    pub fn observatory(&self) -> &Observe {
        &self.observe
    }

    /// Change the backlog-series sampling cadence
    /// ([`EngineConfig::sample_every`]) after construction. `0`
    /// disables sampling. Useful when the engine is built by a
    /// driver with a fixed config (e.g. the closed-loop workload)
    /// but the caller wants [`crate::sentinel::ReproBundle`]s to
    /// carry a backlog series.
    pub fn set_sample_every(&mut self, every: Time) {
        self.cfg.sample_every = every;
        self.metrics.sample_every = every;
    }

    /// Close out telemetry for the run: emit the final partial window
    /// (if any steps ran since the last window boundary) and a
    /// [`crate::telemetry::TelemetryEvent::RunEnd`], then flush the
    /// sink. Call once when the run is over; a no-op when telemetry is
    /// off. The per-window crossing records plus this final partial
    /// window sum exactly to [`Metrics::crossings_per_edge`] when
    /// telemetry was attached before the first step.
    pub fn finish_telemetry(&mut self) {
        self.telemetry
            .finish(self.time, &self.metrics.crossings_per_edge);
    }

    /// Checkpoint support (crate-only): the sentinel's dynamic state.
    pub(crate) fn sentinel_state(&self) -> Option<&SentinelState> {
        self.sentinel.as_ref().map(|s| s.state())
    }

    /// Checkpoint support (crate-only): restore a checkpointed sentinel
    /// state. Returns `false` when no sentinel is attached (the caller
    /// has already verified presence matches).
    pub(crate) fn restore_sentinel_state(&mut self, state: SentinelState) -> bool {
        match self.sentinel.as_mut() {
            Some(s) => {
                s.set_state(state);
                self.sentinel_next = self.sentinel_next_due();
                true
            }
            None => false,
        }
    }

    /// Install a fault schedule. Only permitted before the first step,
    /// so a faulted run is replayable end to end from (plan, schedule).
    pub fn install_faults(&mut self, plan: FaultPlan) -> Result<(), EngineError> {
        if self.time != 0 {
            return Err(EngineError::Usage(
                "install_faults() is only allowed before the first step".into(),
            ));
        }
        plan.validate()
            .map_err(|e| EngineError::Usage(e.to_string()))?;
        for o in plan.outages() {
            if o.edge.index() >= self.graph.edge_count() {
                return Err(EngineError::Usage(format!(
                    "fault plan references edge {:?} but the graph has {} edges",
                    o.edge,
                    self.graph.edge_count()
                )));
            }
        }
        self.faults = Some(plan);
        Ok(())
    }

    /// The installed fault schedule, if any.
    pub fn faults(&self) -> Option<&FaultPlan> {
        self.faults.as_ref()
    }

    /// Every fault that took effect so far, in time order.
    pub fn fault_log(&self) -> &[FaultEvent] {
        &self.fault_log
    }

    /// Current time (number of completed steps).
    #[inline]
    pub fn time(&self) -> Time {
        self.time
    }

    /// The network.
    #[inline]
    pub fn graph(&self) -> &Graph {
        &self.graph
    }

    /// Collected metrics.
    #[inline]
    pub fn metrics(&self) -> &Metrics {
        &self.metrics
    }

    /// Turn the absorption log on or off. While on, every absorbed
    /// packet appends an [`Absorption`] to a log drained by
    /// [`Engine::take_absorptions`]. Off by default; closed-loop
    /// drivers (`aqt-workload`) turn it on to observe replies.
    pub fn record_absorptions(&mut self, on: bool) {
        self.record_absorptions = on;
    }

    /// Drain the absorption log accumulated since the last drain (in
    /// absorption order; ties broken by receive order, which is
    /// deterministic). Empty unless [`Engine::record_absorptions`] is
    /// on.
    pub fn take_absorptions(&mut self) -> Vec<Absorption> {
        std::mem::take(&mut self.absorptions)
    }

    /// Zero the peak metrics (`max_queue_per_edge`, `max_buffer_wait`,
    /// `max_latency`), keeping the conservation totals. The recovery
    /// experiments call this at the end of a fault window so the
    /// post-fault peaks are measured in isolation.
    pub fn reset_peak_metrics(&mut self) {
        self.metrics.reset_peaks();
    }

    /// The driving protocol.
    #[inline]
    pub fn protocol(&self) -> &P {
        &self.protocol
    }

    /// Current length of the buffer at the tail of `edge`.
    #[inline]
    pub fn queue_len(&self, edge: EdgeId) -> usize {
        self.buffers.len(edge.index())
    }

    /// Iterate the buffer at the tail of `edge` in queue (arrival)
    /// order, front (oldest) first.
    #[inline]
    pub fn queue_iter(&self, edge: EdgeId) -> impl Iterator<Item = &Packet> {
        self.buffers.iter(edge.index())
    }

    /// The engine's route interner. Resolve a packet's route with
    /// `engine.routes().get(p.route_id())`.
    #[inline]
    pub fn routes(&self) -> &RouteTable {
        &self.routes
    }

    /// The full route of a packet owned by this engine.
    ///
    /// # Panics
    /// If `p` was not admitted by this engine (e.g. a
    /// [`Packet::synthetic`]).
    #[inline]
    pub fn route_of(&self, p: &Packet) -> &[EdgeId] {
        self.routes.get(p.route)
    }

    /// Heap bytes currently committed to packet storage: buffer
    /// capacity plus the interned route storage. The numerator of the
    /// peak bytes-per-queued-packet metric in `BENCH_engine.json`.
    pub fn packet_heap_bytes(&self) -> u64 {
        self.buffers.heap_bytes() + self.routes.heap_bytes()
    }

    /// Total packets currently in the network.
    pub fn backlog(&self) -> u64 {
        self.metrics.backlog()
    }

    /// The next packet id the engine would assign (for snapshots).
    pub fn next_packet_id(&self) -> u64 {
        self.next_id
    }

    /// Does this engine run an adversary model? (Snapshot restore is
    /// incompatible with one — its member histories cannot be rewound.)
    pub fn has_validators(&self) -> bool {
        self.model.is_some()
    }

    /// Replace the network state wholesale (snapshot restore). The
    /// caller (`crate::snapshot::restore`) has validated preconditions.
    #[allow(clippy::too_many_arguments)] // crate-internal; mirrors the Snapshot fields
    pub(crate) fn restore_state(
        &mut self,
        time: Time,
        next_id: u64,
        injected: u64,
        absorbed: u64,
        dropped: u64,
        duplicated: u64,
        buffers: impl Iterator<Item = VecDeque<Packet>>,
    ) {
        self.time = time;
        self.next_id = next_id;
        self.metrics.injected = injected;
        self.metrics.absorbed = absorbed;
        self.metrics.dropped = dropped;
        self.metrics.duplicated = duplicated;
        self.buffers.replace_all(buffers);
        // An attached oracle cannot replay across a restore; put the
        // model exactly where the engine now is.
        if let Some(mut oracle) = self.oracle.take() {
            oracle.model.resync(self);
            self.oracle = Some(oracle);
        }
        // Re-baseline the sentinel's interval checks at the restored
        // clock (a checkpointed sentinel state, if any, is reinstated
        // by the caller afterwards and overrides this).
        let crossings = &self.metrics.crossings_per_edge;
        if let Some(s) = self.sentinel.as_mut() {
            s.state.last_check = time;
            s.state.crossings_at_last_check.clear();
            s.state.crossings_at_last_check.extend_from_slice(crossings);
        }
        self.sentinel_next = self.sentinel_next_due();
        // A restore discontinuously moves the clock and the crossing
        // totals; re-anchor the telemetry windows there so the next
        // window record's deltas cover only post-restore steps.
        self.telemetry
            .rebaseline(time, &self.metrics.crossings_per_edge);
    }

    /// Checkpoint support (crate-only): the full internal state beyond
    /// what [`crate::snapshot::Snapshot`] captures — adversary-model
    /// histories, complete metrics, reroute bookkeeping, fault log.
    #[allow(clippy::type_complexity)]
    pub(crate) fn full_state(
        &self,
    ) -> (
        Option<&AdversaryModel>,
        &[Option<Time>],
        &Metrics,
        &[FaultEvent],
    ) {
        (
            self.model.as_ref(),
            &self.last_route_use,
            &self.metrics,
            &self.fault_log,
        )
    }

    /// Checkpoint support (crate-only): restore the state captured by
    /// [`Engine::full_state`]. The caller (`crate::checkpoint`) has
    /// validated that the checkpoint matches this engine's graph and
    /// that the model specs agree.
    pub(crate) fn restore_full_state(
        &mut self,
        model: Option<AdversaryModel>,
        last_route_use: Vec<Option<Time>>,
        metrics: Metrics,
        fault_log: Vec<FaultEvent>,
    ) {
        self.model = model;
        self.last_route_use = last_route_use;
        self.metrics = metrics;
        self.fault_log = fault_log;
        self.telemetry
            .rebaseline(self.time, &self.metrics.crossings_per_edge);
    }

    /// Iterate over every live packet (buffer order within each edge,
    /// edges ascending).
    pub fn packets(&self) -> impl Iterator<Item = &Packet> {
        self.buffers.packets()
    }

    /// Place a packet in the network as part of the initial
    /// configuration (time 0). Bypasses the adversary validators — this
    /// is the `S`-initial-configuration allowance of Observation 4.4.
    ///
    /// Only permitted before the first step.
    pub fn seed(&mut self, route: Route, tag: u32) -> Result<PacketId, EngineError> {
        if self.time != 0 {
            return Err(EngineError::Usage(
                "seed() is only allowed before the first step".into(),
            ));
        }
        for &e in route.edges() {
            self.touch_edge_use(e, 0);
        }
        let edges = route.edges();
        if let Some(mut oracle) = self.oracle.take() {
            oracle.model.mirror_seed(edges, tag);
            self.oracle = Some(oracle);
        }
        let (rid, len, first) = self.intern_for_admit(edges);
        Ok(self.admit(rid, len, first, 0, tag))
    }

    /// Place `n` identical packets in the initial configuration — the
    /// `s`-packet seed sets of Lemma 3.6 and Theorem 3.17 — with one
    /// route intern and one buffer range-extend. Ids are assigned
    /// consecutively, so the trajectory is identical to `n` calls of
    /// [`Engine::seed`]. Returns the id of the first packet.
    pub fn seed_cohort(&mut self, route: Route, tag: u32, n: u64) -> Result<PacketId, EngineError> {
        if self.time != 0 {
            return Err(EngineError::Usage(
                "seed_cohort() is only allowed before the first step".into(),
            ));
        }
        for &e in route.edges() {
            self.touch_edge_use(e, 0);
        }
        let edges = route.edges();
        if let Some(mut oracle) = self.oracle.take() {
            for _ in 0..n {
                oracle.model.mirror_seed(edges, tag);
            }
            self.oracle = Some(oracle);
        }
        let (rid, len, first) = self.intern_for_admit(edges);
        Ok(self.admit_cohort(rid, len, first, 0, tag, n))
    }

    fn touch_edge_use(&mut self, e: EdgeId, t: Time) {
        let slot = &mut self.last_route_use[e.index()];
        match slot {
            Some(prev) if *prev >= t => {}
            _ => *slot = Some(t),
        }
    }

    /// Internal: intern a route and return what [`Engine::admit`]
    /// needs (id, length, first edge).
    fn intern_for_admit(&mut self, edges: &[EdgeId]) -> (RouteId, u32, EdgeId) {
        let rid = self.routes.intern(edges);
        (rid, edges.len() as u32, edges[0])
    }

    /// Internal: [`Engine::intern_for_admit`] behind the small memo.
    /// Sound because memoized keys pin their allocation (equal key ⇒
    /// same immutable contents) and the table is append-only, so a
    /// memoized id stays valid forever. A miss — including a `Route`
    /// rebuilt from the same edges in a fresh allocation — falls
    /// through to a real intern, which dedups by content.
    fn intern_memoized(&mut self, route: &Route) -> (RouteId, u32, EdgeId) {
        let edges = route.edges();
        let (addr, len) = (edges.as_ptr() as usize, edges.len());
        for hit in self.inject_memo.iter().flatten() {
            if hit.addr == addr && hit.len == len {
                if self.telemetry.counters_on {
                    self.telemetry.counters.memo_hits += 1;
                }
                return hit.resolved;
            }
        }
        if self.telemetry.counters_on {
            self.telemetry.counters.memo_misses += 1;
        }
        let resolved = self.intern_for_admit(edges);
        self.inject_memo[self.inject_memo_cursor] = Some(InjectMemoEntry {
            addr,
            len,
            resolved,
            _pin: route.clone(),
        });
        self.inject_memo_cursor = (self.inject_memo_cursor + 1) % INJECT_MEMO_SLOTS;
        resolved
    }

    /// Checkpoint/snapshot support (crate-only): intern a restored
    /// route. Append-only, so ids already handed out stay valid.
    pub(crate) fn intern_route(&mut self, edges: &[EdgeId]) -> RouteId {
        self.routes.intern(edges)
    }

    /// Internal: create the packet and enqueue it at its first edge.
    fn admit(
        &mut self,
        route: RouteId,
        route_len: u32,
        first: EdgeId,
        t: Time,
        tag: u32,
    ) -> PacketId {
        let id = PacketId(self.next_id);
        self.next_id += 1;
        let p = Packet {
            id,
            injected_at: t,
            arrived_at: t,
            tag,
            route,
            hop: 0,
            route_len,
        };
        let len = self.buffers.push_back(first.index(), p) as u64;
        self.metrics.injected += 1;
        self.metrics.on_queue_len(first, len);
        if self.observe.spans_on && self.observe.sampled(id.0) {
            self.observe.push_span(SpanRec {
                time: t,
                op: SpanKind::Inject,
                packet: id.0,
                edge: first.index() as u32,
                hop: 0,
                wait: 0,
                shard: 0,
            });
        }
        id
    }

    /// Internal: create `n` identical packets (consecutive ids) and
    /// enqueue them at their first edge in one range-extend.
    fn admit_cohort(
        &mut self,
        route: RouteId,
        route_len: u32,
        first: EdgeId,
        t: Time,
        tag: u32,
        n: u64,
    ) -> PacketId {
        let first_id = PacketId(self.next_id);
        let base = self.next_id;
        self.next_id += n;
        let template = Packet {
            id: first_id,
            injected_at: t,
            arrived_at: t,
            tag,
            route,
            hop: 0,
            route_len,
        };
        let len = self.buffers.extend_back(
            first.index(),
            (0..n as usize).map(|k| Packet {
                id: PacketId(base + k as u64),
                ..template
            }),
        ) as u64;
        self.metrics.injected += n;
        self.metrics.on_queue_len(first, len);
        if self.telemetry.counters_on {
            self.telemetry.counters.cohorts_admitted += 1;
        }
        if self.observe.spans_on {
            // The sampled residue class is arithmetic (every
            // `mask + 1`-th id), so the cohort's sampled members are
            // stepped directly instead of testing all n ids.
            let stride = self.observe.span_mask + 1;
            let mut id = (base & !self.observe.span_mask) | self.observe.span_residue;
            if id < base {
                id += stride;
            }
            while id < base + n {
                self.observe.push_span(SpanRec {
                    time: t,
                    op: SpanKind::Inject,
                    packet: id,
                    edge: first.index() as u32,
                    hop: 0,
                    wait: 0,
                    shard: 0,
                });
                id += stride;
            }
        }
        first_id
    }

    /// Execute one step with the given injections (occurring in
    /// substep 2 of this step).
    ///
    /// The step is a pipeline of substages, in model order: send
    /// (substep 1), wire faults, receive (substep 2a), inject
    /// (substep 2b), burst faults, oracle, sample, sentinel. Each
    /// substage is a method so the equivalence proptests and the
    /// reference loop ([`EngineConfig::reference_pipeline`]) can pin
    /// the composition. The oracle and sentinel stages are no-ops
    /// unless attached.
    pub fn step<I>(&mut self, injections: I) -> Result<(), EngineError>
    where
        I: IntoIterator,
        I::Item: std::borrow::Borrow<Injection>,
    {
        let t = self.time + 1;
        self.time = t;
        let faults_active = self.faults.as_ref().is_some_and(|f| f.active_at(t));
        // The telemetry level, folded to two booleans read once per
        // step (the level itself never changes mid-step). When off,
        // everything below degrades to dead branches plus the one
        // `window_next` compare at the end. Timing is *sampled*: a
        // full set of per-substage clock reads would dominate a fast
        // step, so only every `timing_stride`-th step is measured —
        // the decision is made here, once, through the cached
        // `timing_next` gate, and the substage methods read the cached
        // `timing_this_step` flag.
        let tel_counters = self.telemetry.counters_on;
        let tel_timing = t >= self.telemetry.timing_next;
        self.telemetry.timing_this_step = tel_timing;
        if tel_timing {
            self.telemetry.timing_next = t + self.telemetry.timing_stride;
        }
        let step_t0 = tel_timing.then(std::time::Instant::now);

        debug_assert!(self.in_transit.is_empty());
        let absorbed0 = self.metrics.absorbed;
        let injected0 = self.metrics.injected;
        let (sent, delivered_len);
        let use_sharded = self.shards.is_some() && !faults_active && !self.cfg.reference_pipeline;
        if use_sharded {
            // Fused parallel send + receive with the deterministic
            // barrier in between; wire faults are inactive this step,
            // so the wire stage is the identity (fault-active steps
            // take the sequential branch below over the merged active
            // set — duplicate-id assignment is order-dependent).
            let mut rt = self.shards.take().expect("use_sharded checked is_some");
            let mut phases = (std::time::Duration::ZERO, std::time::Duration::ZERO);
            let span_filter = self
                .observe
                .spans_on
                .then_some((self.observe.span_mask, self.observe.span_residue));
            let shard_work = if tel_timing {
                Some(&mut self.telemetry.timings.shard_work)
            } else {
                None
            };
            let res = rt.execute_step(
                t,
                &mut self.buffers,
                &self.routes,
                self.discipline,
                &mut self.metrics,
                self.record_absorptions,
                &mut self.absorptions,
                tel_timing.then_some(&mut phases),
                tel_counters,
                span_filter,
                shard_work,
            );
            if self.observe.spans_on {
                rt.drain_spans(&mut self.observe.span_scratch);
            }
            if !self.observe.shard_sent.is_empty() {
                rt.accumulate_sent(&mut self.observe.shard_sent);
            }
            self.shards = Some(rt);
            let totals = res.map_err(EngineError::Protocol)?;
            if tel_timing {
                self.telemetry.timings.send.record_duration(phases.0);
                self.telemetry.timings.receive.record_duration(phases.1);
                self.telemetry.timings.barrier.record(totals.barrier_ns);
            }
            if tel_counters {
                let c = &mut self.telemetry.counters;
                if totals.compacted > 0 {
                    c.buffers_compacted += totals.compacted;
                }
                c.shard_steps += 1;
                c.shard_msgs_merged += totals.msgs_merged;
                c.shard_barrier_ns += totals.barrier_ns;
            }
            sent = totals.sent;
            // Fault-free: everything sent was delivered (absorbed or
            // forwarded).
            delivered_len = totals.sent;
        } else {
            // Sequential staged pipeline. The sampled stage clocks
            // share boundary timestamps — compact|send and
            // send|receive are each one `Instant`, not two — so a
            // sampled step costs 6 clock reads end to end instead of
            // the former ~10.
            if !self.cfg.reference_pipeline {
                let deactivated = self.buffers.begin_step();
                if tel_counters && deactivated > 0 {
                    self.telemetry.counters.buffers_compacted += deactivated as u64;
                }
            }
            let send_t0 = tel_timing.then(std::time::Instant::now);
            if self.cfg.reference_pipeline {
                self.substep_send_reference(t, faults_active)?;
            } else {
                self.substep_send(t, faults_active)?;
            }
            sent = self.in_transit.len() as u64;
            let wire_t0 = tel_timing.then(std::time::Instant::now);
            self.substep_wire_faults(t, faults_active);
            delivered_len = self.delivered.len() as u64;
            self.substep_receive(t);
            let recv_t1 = tel_timing.then(std::time::Instant::now);
            if let (Some(a), Some(b), Some(c), Some(d)) = (step_t0, send_t0, wire_t0, recv_t1) {
                // compact = step start → send start; send = the send
                // loop alone; receive includes the wire stage (a swap
                // on fault-free steps).
                self.telemetry
                    .timings
                    .compact
                    .record_duration(b.duration_since(a));
                self.telemetry
                    .timings
                    .send
                    .record_duration(c.duration_since(b));
                self.telemetry
                    .timings
                    .receive
                    .record_duration(d.duration_since(c));
            }
        }
        let inject_t0 = tel_timing.then(std::time::Instant::now);
        if self.oracle.is_some() {
            // The oracle replays this step's injections; buffer them.
            let buffered: Vec<Injection> = injections
                .into_iter()
                .map(|i| std::borrow::Borrow::borrow(&i).clone())
                .collect();
            self.substep_inject(t, buffered.iter())?;
            self.substep_burst(t, faults_active);
            if let Some(t0) = inject_t0 {
                self.telemetry.timings.inject.record_duration(t0.elapsed());
            }
            self.substep_oracle(t, &buffered)?;
        } else {
            self.substep_inject(t, injections)?;
            self.substep_burst(t, faults_active);
            if let Some(t0) = inject_t0 {
                self.telemetry.timings.inject.record_duration(t0.elapsed());
            }
        }
        self.substep_sample(t);
        self.substep_sentinel(t)?;

        if tel_counters {
            let absorbed_delta = self.metrics.absorbed - absorbed0;
            let c = &mut self.telemetry.counters;
            c.steps += 1;
            c.packets_sent += sent;
            c.packets_absorbed += absorbed_delta;
            // Everything delivered and not absorbed moved to its next
            // buffer.
            c.packets_forwarded += delivered_len.saturating_sub(absorbed_delta);
            c.packets_injected += self.metrics.injected - injected0;
            // A sharded engine that stepped sequentially this step
            // (fault-active or reference pipeline) is a fallback.
            if !use_sharded && self.shards.is_some() {
                c.shard_seq_fallbacks += 1;
            }
        }
        if let Some(t0) = step_t0 {
            self.telemetry.timings.step.record_duration(t0.elapsed());
        }
        if self.observe.spans_on && !self.observe.span_scratch.is_empty() {
            self.flush_spans();
        }
        if t >= self.observe.next {
            self.observe_tick(t);
        }
        if t >= self.telemetry.window_next {
            self.telemetry
                .emit_window(t, &self.metrics.crossings_per_edge);
        }
        Ok(())
    }

    /// Flush the step's staged observatory spans through the telemetry
    /// sink. The scratch is cleared either way, so a sink attached
    /// mid-run starts clean.
    fn flush_spans(&mut self) {
        if self.telemetry.has_sink() {
            for rec in &self.observe.span_scratch {
                self.telemetry.emit_span(
                    rec.time, rec.packet, rec.op, rec.edge, rec.hop, rec.wait, rec.shard,
                );
            }
            let n = self.observe.span_scratch.len() as u64;
            self.observe.note_flushed(n);
        }
        self.observe.span_scratch.clear();
    }

    /// One observatory backlog tick: capture total-Q(t), the running
    /// queue/wait peaks, and (within the edge cap) the sparse per-edge
    /// depths; record the certificate margin; emit the `backlog`
    /// record.
    #[cold]
    fn observe_tick(&mut self, t: Time) {
        let total = self.metrics.backlog();
        let max_queue = self.metrics.max_queue();
        let max_wait = self.metrics.max_buffer_wait;
        let margin = self.observe.record_tick(t, total, max_queue, max_wait);
        if self.telemetry.has_sink() {
            self.observe.depth_scratch.clear();
            if self.observe.track_depths {
                for ei in 0..self.buffers.edge_count() {
                    let depth = self.buffers.len(ei);
                    if depth > 0 {
                        self.observe.depth_scratch.push((ei as u32, depth as u32));
                    }
                }
            }
            self.telemetry.emit_backlog(
                t,
                total,
                max_queue,
                max_wait,
                self.observe.bound(),
                margin,
                &self.observe.depth_scratch,
                &self.observe.shard_sent,
            );
        }
    }

    /// Substep 1: send one packet from each nonempty buffer, unless an
    /// outage fault has the edge down this step. Iterates the active
    /// set only (ascending edge order, same order the full scan
    /// produces) and pops through the cached [`Discipline`] when the
    /// protocol declared one. The caller ([`Engine::step`]) has
    /// already run [`BufferStore::begin_step`].
    fn substep_send(&mut self, t: Time, faults_active: bool) -> Result<(), EngineError> {
        // Active entries are exactly the nonempty edges after
        // begin_step, and stay nonempty until their own send below
        // (substep 1 never appends to buffers).
        if !self.buffers.is_partitioned() {
            for k in 0..self.buffers.active_count() {
                let ei = self.buffers.active_edge(k);
                self.send_one(t, ei, faults_active)?;
            }
        } else {
            // Sequential fallback for a sharded engine (fault-active
            // step): the merged per-shard lists, ascending, are the
            // exact single-list send order.
            let mut scratch = std::mem::take(&mut self.active_scratch);
            self.buffers.merged_active(&mut scratch);
            let res = scratch
                .iter()
                .try_for_each(|&ei| self.send_one(t, ei as usize, faults_active));
            self.active_scratch = scratch;
            res?;
        }
        Ok(())
    }

    /// One edge's share of substep 1: outage check, packet selection
    /// (discipline fast path or virtual dispatch), send.
    #[inline]
    fn send_one(&mut self, t: Time, ei: usize, faults_active: bool) -> Result<(), EngineError> {
        let edge = EdgeId(ei as u32);
        if faults_active && self.faults.as_ref().is_some_and(|f| f.edge_down(edge, t)) {
            self.fault_log
                .push(FaultEvent::OutageSuppressedSend { time: t, edge });
            return Ok(());
        }
        let idx = match self.discipline.index_in(self.buffers.queue(ei)) {
            Some(i) => i,
            None => self
                .protocol
                .select(t, edge, self.buffers.queue(ei), &self.graph),
        };
        self.finish_send(t, ei, edge, idx)
    }

    /// Substep 1, pre-refactor form: scan every edge buffer and always
    /// dispatch through [`Protocol::select`]. Kept verbatim so the
    /// equivalence proptests have a second, independent implementation
    /// to compare against and the benchmark has an honest "before".
    fn substep_send_reference(&mut self, t: Time, faults_active: bool) -> Result<(), EngineError> {
        for ei in 0..self.buffers.edge_count() {
            let edge = EdgeId(ei as u32);
            if self.buffers.len(ei) == 0 {
                continue;
            }
            if faults_active && self.faults.as_ref().is_some_and(|f| f.edge_down(edge, t)) {
                self.fault_log
                    .push(FaultEvent::OutageSuppressedSend { time: t, edge });
                continue;
            }
            let idx = self
                .protocol
                .select(t, edge, self.buffers.queue(ei), &self.graph);
            self.finish_send(t, ei, edge, idx)?;
        }
        Ok(())
    }

    /// Shared tail of both send substeps: pop the selected packet,
    /// record the send, put the packet on the wire.
    #[inline]
    fn finish_send(
        &mut self,
        t: Time,
        ei: usize,
        edge: EdgeId,
        idx: usize,
    ) -> Result<(), EngineError> {
        let qlen = self.buffers.len(ei);
        let p = self.buffers.remove(ei, idx).ok_or_else(|| {
            EngineError::Protocol(format!(
                "protocol selected index {idx} from a queue of length {qlen}"
            ))
        })?;
        let wait = t - p.arrived_at;
        self.metrics.on_send(edge, wait);
        if self.observe.spans_on && self.observe.sampled(p.id.0) {
            self.observe.push_span(SpanRec {
                time: t,
                op: SpanKind::Send,
                packet: p.id.0,
                edge: ei as u32,
                hop: p.hop,
                wait,
                shard: 0,
            });
        }
        self.in_transit.push(p);
        Ok(())
    }

    /// Wire-fault stage: drop and duplication faults act here — on the
    /// wire, between send and receive. Moves `in_transit` survivors
    /// (each possibly followed by its duplicate) into `delivered`; a
    /// plain swap when no fault is active this step.
    fn substep_wire_faults(&mut self, t: Time, faults_active: bool) {
        debug_assert!(self.delivered.is_empty());
        if !faults_active {
            std::mem::swap(&mut self.in_transit, &mut self.delivered);
            return;
        }
        let mut in_transit = std::mem::take(&mut self.in_transit);
        for p in in_transit.drain(..) {
            let crossed = self.routes.get(p.route)[p.hop as usize];
            let (lost, copied) = match &self.faults {
                Some(f) => (f.drops_at(crossed, t), f.duplicates_at(crossed, t)),
                None => (false, false),
            };
            if lost {
                self.metrics.dropped += 1;
                self.fault_log.push(FaultEvent::PacketDropped {
                    time: t,
                    edge: crossed,
                    id: p.id,
                });
                if self.observe.spans_on && self.observe.sampled(p.id.0) {
                    self.observe.push_span(SpanRec {
                        time: t,
                        op: SpanKind::Drop,
                        packet: p.id.0,
                        edge: crossed.index() as u32,
                        hop: p.hop,
                        wait: 0,
                        shard: 0,
                    });
                }
                continue;
            }
            let copy = if copied {
                let id = PacketId(self.next_id);
                self.next_id += 1;
                self.metrics.duplicated += 1;
                self.fault_log.push(FaultEvent::PacketDuplicated {
                    time: t,
                    edge: crossed,
                    original: p.id,
                    clone: id,
                });
                // The clone is a fresh sampled-or-not packet: its
                // lifecycle (enqueue → … → absorb) spans appear iff
                // *its* id is in the residue class, so the `dup` span
                // is keyed to the clone, not the original.
                if self.observe.spans_on && self.observe.sampled(id.0) {
                    self.observe.push_span(SpanRec {
                        time: t,
                        op: SpanKind::Duplicate,
                        packet: id.0,
                        edge: crossed.index() as u32,
                        hop: p.hop,
                        wait: 0,
                        shard: 0,
                    });
                }
                Some(Packet { id, ..p })
            } else {
                None
            };
            self.delivered.push(p);
            self.delivered.extend(copy);
        }
        self.in_transit = in_transit;
    }

    /// Substep 2a: receive. Absorb packets at their destination,
    /// append the rest to the next buffer on their route.
    fn substep_receive(&mut self, t: Time) {
        let mut delivered = std::mem::take(&mut self.delivered);
        // One-entry route memo: transit arrivals are dominated by
        // cohorts sharing a route, so the common case resolves the
        // route id against a cached slice borrow instead of re-indexing
        // the table per packet.
        let mut memo_id = RouteId::INVALID;
        let mut memo: &[EdgeId] = &[];
        for mut p in delivered.drain(..) {
            if p.on_last_edge() {
                // Injected bug for `examples/sentinel_demo`: roughly
                // one absorption in a thousand silently vanishes,
                // uncounted — exactly the class of accounting rot the
                // conservation invariant exists to catch.
                #[cfg(feature = "demo-corruption")]
                if p.id.0 % 977 == 5 {
                    continue;
                }
                self.metrics.on_absorb(t - p.injected_at);
                if self.observe.spans_on && self.observe.sampled(p.id.0) {
                    let crossed = self.routes.get(p.route)[p.hop as usize];
                    self.observe.push_span(SpanRec {
                        time: t,
                        op: SpanKind::Absorb,
                        packet: p.id.0,
                        edge: crossed.index() as u32,
                        hop: p.hop,
                        wait: t - p.injected_at,
                        shard: 0,
                    });
                }
                if self.record_absorptions {
                    self.absorptions.push(Absorption {
                        tag: p.tag,
                        injected_at: p.injected_at,
                        absorbed_at: t,
                    });
                }
            } else {
                p.hop += 1;
                p.arrived_at = t;
                if p.route != memo_id {
                    memo_id = p.route;
                    memo = self.routes.get(p.route);
                }
                let next = memo[p.hop as usize];
                let len = self.buffers.push_back(next.index(), p) as u64;
                self.metrics.on_queue_len(next, len);
                if self.observe.spans_on && self.observe.sampled(p.id.0) {
                    self.observe.push_span(SpanRec {
                        time: t,
                        op: SpanKind::Enqueue,
                        packet: p.id.0,
                        edge: next.index() as u32,
                        hop: p.hop,
                        wait: 0,
                        shard: 0,
                    });
                }
            }
        }
        self.delivered = delivered;
    }

    /// Substep 2b: the adversary's injections, through the model.
    fn substep_inject<I>(&mut self, t: Time, injections: I) -> Result<(), EngineError>
    where
        I: IntoIterator,
        I::Item: std::borrow::Borrow<Injection>,
    {
        for inj in injections {
            let inj: &Injection = std::borrow::Borrow::borrow(&inj);
            let edges = inj.route.edges();
            // The adversary constraints are per packet: a cohort of n
            // is n injections as far as the model is concerned.
            if let Some(m) = self.model.as_mut() {
                for _ in 0..inj.count {
                    m.observe_route(edges, t)?;
                }
            }
            for &e in edges {
                self.touch_edge_use(e, t);
            }
            let (rid, len, first) = self.intern_memoized(&inj.route);
            if inj.count == 1 {
                self.admit(rid, len, first, t, inj.tag);
            } else {
                self.admit_cohort(rid, len, first, t, inj.tag, u64::from(inj.count));
            }
        }
        Ok(())
    }

    /// Burst-fault stage: scheduled bursts materialize after the
    /// adversary's injections, bypassing the validators — the
    /// Observation 4.4 allowance applied mid-run.
    fn substep_burst(&mut self, t: Time, faults_active: bool) {
        if !faults_active {
            return;
        }
        let burst: Vec<Injection> = self
            .faults
            .as_ref()
            .map(|f| {
                f.bursts_at(t)
                    .flat_map(|b| b.injections.iter().cloned())
                    .collect()
            })
            .unwrap_or_default();
        if !burst.is_empty() {
            self.fault_log.push(FaultEvent::BurstInjected {
                time: t,
                count: burst.iter().map(|i| u64::from(i.count)).sum(),
            });
            for inj in burst {
                for &e in inj.route.edges() {
                    self.touch_edge_use(e, t);
                }
                let (rid, len, first) = self.intern_for_admit(inj.route.edges());
                if inj.count == 1 {
                    self.admit(rid, len, first, t, inj.tag);
                } else {
                    self.admit_cohort(rid, len, first, t, inj.tag, u64::from(inj.count));
                }
            }
        }
    }

    /// Oracle stage: advance the reference model through the same
    /// step, then (at the diff cadence) compare complete states.
    fn substep_oracle(&mut self, t: Time, injections: &[Injection]) -> Result<(), EngineError> {
        let mut oracle = match self.oracle.take() {
            Some(o) => o,
            None => return Ok(()),
        };
        let oracle_t0 = self
            .telemetry
            .timing_this_step
            .then(std::time::Instant::now);
        oracle.step(&self.graph, self.faults.as_ref(), injections);
        let due = oracle.due(t);
        let diverged = if due { oracle.model().diff(self) } else { None };
        self.oracle = Some(oracle);
        if due && self.telemetry.counters_on {
            self.telemetry.counters.oracle_diffs += 1;
        }
        if let Some(t0) = oracle_t0 {
            self.telemetry.timings.oracle.record_duration(t0.elapsed());
        }
        if let Some(detail) = diverged {
            self.raise(InvariantKind::OracleDivergence, t, detail)?;
        }
        Ok(())
    }

    /// Sentinel stage: at the configured cadence, run the invariant
    /// checks. The hot path pays one branch.
    #[inline]
    fn substep_sentinel(&mut self, t: Time) -> Result<(), EngineError> {
        if t >= self.sentinel_next {
            self.run_sentinel_checks(t)
        } else {
            Ok(())
        }
    }

    /// One sentinel check round. Cheap O(E) checks run every round;
    /// the O(backlog) per-packet checks and the snapshot round trip
    /// run at their configured strides.
    #[cold]
    fn run_sentinel_checks(&mut self, t: Time) -> Result<(), EngineError> {
        let round_t0 = self
            .telemetry
            .timing_this_step
            .then(std::time::Instant::now);
        if self.telemetry.counters_on {
            self.telemetry.counters.sentinel_rounds += 1;
        }
        let (deep, roundtrip, unit_detail, cert) = {
            let s = self.sentinel.as_ref().expect("gated by substep_sentinel");
            let elapsed = t.saturating_sub(s.state().last_check);
            (
                s.deep_due(t),
                s.roundtrip_due(t),
                sentinel::unit_speed_violation(
                    &s.state().crossings_at_last_check,
                    &self.metrics.crossings_per_edge,
                    elapsed,
                ),
                s.config().certificate_spec,
            )
        };

        // Conservation: recount the live packets from the buffers —
        // never trust the cached backlog to audit itself.
        let live: u64 = (0..self.buffers.edge_count())
            .map(|ei| self.buffers.len(ei) as u64)
            .sum();
        if let Some(detail) = sentinel::conservation_violation(&self.metrics, live) {
            self.raise(InvariantKind::Conservation, t, detail)?;
        }
        if let Some(detail) = unit_detail {
            self.raise(InvariantKind::UnitSpeed, t, detail)?;
        }

        if let Some(bound) = cert.and_then(|spec| spec.bound()) {
            if self.metrics.max_buffer_wait > bound {
                let detail = format!(
                    "observed buffer wait {} exceeds the theorem bound {}",
                    self.metrics.max_buffer_wait, bound
                );
                self.raise(InvariantKind::Certificate, t, detail)?;
            }
            if deep {
                // In-buffer waits: a packet already queued longer than
                // the bound can only exceed it further when sent.
                let routes = &self.routes;
                let overdue = self.buffers.packets().find_map(|p| {
                    let waited = t.saturating_sub(p.arrived_at);
                    (waited > bound).then(|| {
                        format!(
                            "packet {:?} has waited {waited} steps at edge {:?} \
                             (theorem bound {bound})",
                            p.id,
                            routes.get(p.route)[p.hop as usize]
                        )
                    })
                });
                if let Some(detail) = overdue {
                    self.raise(InvariantKind::Certificate, t, detail)?;
                }
            }
        }

        if deep {
            if let Some(detail) = self.route_progress_violation(t) {
                self.raise(InvariantKind::RouteProgress, t, detail)?;
            }
        }

        if roundtrip {
            let snap = crate::snapshot::capture(self);
            if let Err(detail) = crate::snapshot::validate_payload(&snap, self.graph.edge_count()) {
                self.raise(InvariantKind::SnapshotRoundTrip, t, detail)?;
            } else if ReferenceModel::from_snapshot(&snap).to_snapshot() != snap {
                self.raise(
                    InvariantKind::SnapshotRoundTrip,
                    t,
                    "snapshot does not survive a reference-model round trip".into(),
                )?;
            }
        }

        let crossings = &self.metrics.crossings_per_edge;
        let s = self.sentinel.as_mut().expect("gated by substep_sentinel");
        s.state.last_check = t;
        // Copy in place: reallocating O(E) every round is measurable
        // on nanosecond-scale steps.
        s.state.crossings_at_last_check.clear();
        s.state.crossings_at_last_check.extend_from_slice(crossings);
        s.state.checks_run += 1;
        self.sentinel_next = self.sentinel_next_due();
        if let Some(t0) = round_t0 {
            self.telemetry
                .timings
                .sentinel
                .record_duration(t0.elapsed());
        }
        Ok(())
    }

    /// First route-progress violation among the queued packets:
    /// resolvable route id with consistent interned contents, in-range
    /// hop, packet stored at its current route edge, coherent
    /// timestamps, id below the allocation watermark. Also re-verifies
    /// the route table itself: interning is trusted on the hot path, so
    /// the deep cadence is where a corrupted intern (duplicate entries,
    /// a mis-filed hash chain) would surface.
    fn route_progress_violation(&self, t: Time) -> Option<String> {
        if let Err(detail) = self.routes.verify_integrity() {
            return Some(format!("route table corrupt: {detail}"));
        }
        for ei in 0..self.buffers.edge_count() {
            for p in self.buffers.iter(ei) {
                let Some(route) = self.routes.try_get(p.route) else {
                    return Some(format!(
                        "packet {:?} references unknown route id {:?}",
                        p.id, p.route
                    ));
                };
                if p.route_len as usize != route.len() {
                    return Some(format!(
                        "packet {:?} claims route length {} but its interned route has {} edges",
                        p.id,
                        p.route_len,
                        route.len()
                    ));
                }
                if p.hop as usize >= route.len() {
                    return Some(format!(
                        "packet {:?} has hop {} on a route of length {}",
                        p.id,
                        p.hop,
                        route.len()
                    ));
                }
                if route[p.hop as usize].index() != ei {
                    return Some(format!(
                        "packet {:?} is queued at edge {ei} but its route edge is {:?}",
                        p.id, route[p.hop as usize]
                    ));
                }
                if p.arrived_at > t || p.injected_at > p.arrived_at {
                    return Some(format!(
                        "packet {:?} has incoherent timestamps (injected {}, arrived {}, now {t})",
                        p.id, p.injected_at, p.arrived_at
                    ));
                }
                if p.id.0 >= self.next_id {
                    return Some(format!(
                        "packet {:?} is at or above the id watermark {}",
                        p.id, self.next_id
                    ));
                }
            }
        }
        None
    }

    /// Dispatch a violation according to the sentinel's severity
    /// policy. With no sentinel attached (an oracle can be attached
    /// alone), violations halt.
    fn raise(&mut self, kind: InvariantKind, t: Time, detail: String) -> Result<(), EngineError> {
        let severity = self
            .sentinel
            .as_ref()
            .map_or(Severity::Halt, |s| s.config().severity_of(kind));
        let violation = Violation {
            kind,
            time: t,
            detail,
        };
        match severity {
            Severity::Log => {
                if let Some(s) = self.sentinel.as_mut() {
                    s.state.log.push(violation);
                }
                Ok(())
            }
            Severity::Quarantine => {
                let bundle = self.repro_bundle(t);
                if let Some(s) = self.sentinel.as_mut() {
                    s.state
                        .quarantine
                        .push(ViolationReport { violation, bundle });
                }
                Ok(())
            }
            Severity::Halt => {
                let bundle = self.repro_bundle(t);
                Err(EngineError::Invariant(Box::new(ViolationReport {
                    violation,
                    bundle,
                })))
            }
        }
    }

    /// The minimal reproduction bundle for a violation observed at `t`.
    fn repro_bundle(&self, t: Time) -> ReproBundle {
        ReproBundle {
            seed: self.sentinel.as_ref().and_then(|s| s.config().seed),
            step: t,
            snapshot: crate::snapshot::capture(self),
            fault_plan: self.faults.clone(),
            backlog: self.metrics.series.clone(),
        }
    }

    /// Sampling stage: append to the backlog series on schedule.
    fn substep_sample(&mut self, t: Time) {
        if self.cfg.sample_every > 0 && t.is_multiple_of(self.cfg.sample_every) {
            // max_len scans the active set; every nonempty buffer is
            // active, so this equals the max over all buffers.
            let max_queue = self.buffers.max_len();
            self.metrics.series.push(BacklogSample {
                time: t,
                backlog: self.metrics.backlog(),
                max_queue,
            });
        }
    }

    /// Run `steps` steps with no injections.
    pub fn run_quiet(&mut self, steps: u64) -> Result<(), EngineError> {
        for _ in 0..steps {
            self.step(std::iter::empty::<Injection>())?;
        }
        Ok(())
    }

    /// Extend the (remaining) routes of **all** packets currently
    /// queued in the listed buffers by `suffix` — the rerouting
    /// technique of Lemma 3.3, in the suffix-extension form the paper's
    /// construction uses ("extend the routes of all packets stored in
    /// `F` by adding the path `e'_1, …, e'_n, a''`").
    ///
    /// The extension takes effect at the current time boundary: it is
    /// as if the extended packets had been injected, at their original
    /// injection times, with the extended routes (the adversary `A'`
    /// of Lemma 3.3). Accordingly, when rate validation is on, each
    /// extended packet's suffix edges are recorded at its original
    /// injection time.
    ///
    /// `last_edge` restricts the cohort to packets whose current route
    /// ends at that edge — the paper's analysis guarantees only such
    /// packets remain in `F` at the extension time; with exact integer
    /// rounding a handful of thinning singles can straggle, and those
    /// must not be rerouted (their routes share no edge with the rest,
    /// violating Lemma 3.3's precondition).
    ///
    /// Returns the number of packets extended.
    pub fn extend_routes_in(
        &mut self,
        buffers: &[EdgeId],
        suffix: &[EdgeId],
        last_edge: Option<EdgeId>,
    ) -> Result<usize, EngineError> {
        if suffix.is_empty() {
            return Ok(0);
        }
        // Whether a packet is in the cohort is a function of its route
        // alone (its route ends at `last_edge`), so the whole extension
        // is computed per *distinct route id*, not per packet. First
        // pass (immutable): find the distinct cohort routes in first-
        // appearance order, build and validate their extensions.
        let mut cohort_count = 0usize;
        let mut distinct: Vec<(RouteId, Vec<EdgeId>)> = Vec::new();
        {
            let routes = &self.routes;
            let selected =
                |p: &Packet| last_edge.is_none_or(|e| routes.get(p.route).last() == Some(&e));
            for &be in buffers {
                for p in self.buffers.iter(be.index()).filter(|p| selected(p)) {
                    cohort_count += 1;
                    if !distinct.iter().any(|(id, _)| *id == p.route) {
                        let old = routes.get(p.route);
                        let mut edges = Vec::with_capacity(old.len() + suffix.len());
                        edges.extend_from_slice(old);
                        edges.extend_from_slice(suffix);
                        Route::validate(&self.graph, &edges)?;
                        distinct.push((p.route, edges));
                    }
                }
            }
        }
        if cohort_count == 0 {
            return Ok(0);
        }

        if self.cfg.validate_reroutes {
            self.check_lemma33_preconditions(buffers, suffix, last_edge)?;
        }

        // Feed the model at the original injection times, in
        // non-decreasing time order (the effective adversary A').
        // Initial-configuration packets (injected_at == 0, only
        // creatable via seed()) are exempt: Observation 4.4 grants the
        // adversary an arbitrary initial configuration, routes
        // included.
        if let Some(model) = &mut self.model {
            let routes = &self.routes;
            let selected =
                |p: &&Packet| last_edge.is_none_or(|e| routes.get(p.route).last() == Some(&e));
            let mut inject_times: Vec<Time> = buffers
                .iter()
                .flat_map(|e| {
                    self.buffers
                        .iter(e.index())
                        .filter(selected)
                        .map(|p| p.injected_at)
                })
                .filter(|&t| t > 0)
                .collect();
            inject_times.sort_unstable();
            for t in inject_times {
                for &e in suffix {
                    model.observe(e, t).map_err(EngineError::Rate)?;
                }
            }
        }

        // Intern each extended route once per distinct original route
        // (first-appearance order, which the oracle's mirror repeats),
        // then swap ids in place — the per-packet work is two u32
        // stores.
        let swaps: Vec<(RouteId, RouteId, u32)> = distinct
            .into_iter()
            .map(|(old_id, edges)| {
                let new_id = self.routes.intern(&edges);
                (old_id, new_id, edges.len() as u32)
            })
            .collect();
        let mut max_t = 0;
        let mut count = 0;
        for &be in buffers {
            for p in self.buffers.iter_mut(be.index()) {
                let Some(&(_, new_id, new_len)) =
                    swaps.iter().find(|(old_id, _, _)| *old_id == p.route)
                else {
                    continue; // not selected: its route was not in the cohort
                };
                p.route = new_id;
                p.route_len = new_len;
                max_t = max_t.max(p.injected_at);
                count += 1;
            }
        }
        for &e in suffix {
            self.touch_edge_use(e, max_t);
        }
        if count > 0 {
            if let Some(oracle) = self.oracle.as_mut() {
                oracle.model.mirror_extend(buffers, suffix, last_edge);
            }
        }
        Ok(count)
    }

    /// Lemma 3.3 preconditions: historic policy; rerouted packets share
    /// a common route edge; each suffix edge is *new* with respect to
    /// the current packet set (Definition 3.2).
    fn check_lemma33_preconditions(
        &self,
        buffers: &[EdgeId],
        suffix: &[EdgeId],
        last_edge: Option<EdgeId>,
    ) -> Result<(), EngineError> {
        if !self.protocol.is_historic() {
            return Err(EngineError::Reroute(format!(
                "protocol {} is not historic; Lemma 3.3 does not apply",
                self.protocol.name()
            )));
        }
        let rate = self
            .cfg
            .validate
            .as_ref()
            .and_then(AdversaryModelSpec::reroute_rate)
            .ok_or_else(|| {
                EngineError::Reroute(
                    "validate_reroutes requires a Rate member in the adversary model \
                     (new-edge check needs ⌈1/r⌉)"
                        .into(),
                )
            })?;

        // Common-edge check over the rerouted cohort. With a
        // `last_edge` filter the cohort provably shares that edge
        // (every selected route ends at it), so the intersection is
        // only computed for unrestricted extensions — the general scan
        // is O(cohort × |route|²) and cohort routes in a long chain
        // accumulate hundreds of edges.
        if last_edge.is_none() {
            // With no `last_edge` filter every packet in the listed
            // buffers is in the cohort, and the intersection only needs
            // each *distinct* route once.
            let mut iter = buffers.iter().flat_map(|e| self.buffers.iter(e.index()));
            let first = match iter.next() {
                Some(p) => p,
                None => return Ok(()),
            };
            let mut common: Vec<EdgeId> = self.routes.get(first.route).to_vec();
            let mut seen = vec![first.route];
            for p in iter {
                if seen.contains(&p.route) {
                    continue;
                }
                seen.push(p.route);
                common.retain(|e| self.routes.get(p.route).contains(e));
                if common.is_empty() {
                    return Err(EngineError::Reroute(
                        "rerouted packets do not share a common route edge".into(),
                    ));
                }
            }
        }

        // New-edge check: t* = min injection time over ALL live packets;
        // every suffix edge must be unused by any route injected at
        // time >= t* - ceil(1/r).
        let t_star = self.packets().map(|p| p.injected_at).min().ok_or_else(|| {
            EngineError::Internal("nonempty reroute cohort but no live packets".into())
        })?;
        let threshold = t_star.saturating_sub(rate.ceil_inv());
        for &e in suffix {
            if let Some(last) = self.last_route_use[e.index()] {
                if last >= threshold {
                    return Err(EngineError::Reroute(format!(
                        "edge {} is not new: last used by an injection at time {} >= t* - ceil(1/r) = {}",
                        self.graph.edge_name(e),
                        last,
                        threshold
                    )));
                }
            }
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::ratio::Ratio;
    use aqt_graph::topologies;
    use std::collections::VecDeque as VD;

    /// Minimal FIFO for engine tests (the full protocol set lives in
    /// aqt-protocols).
    struct Fifo;
    impl Protocol for Fifo {
        fn name(&self) -> &str {
            "FIFO"
        }
        fn select(&mut self, _: Time, _: EdgeId, _: &VD<Packet>, _: &Graph) -> usize {
            0
        }
        fn is_historic(&self) -> bool {
            true
        }
        fn is_time_priority(&self) -> bool {
            true
        }
    }

    fn line_engine(k: usize, cfg: EngineConfig) -> (Engine<Fifo>, Vec<EdgeId>) {
        let g = topologies::line(k);
        let edges: Vec<EdgeId> = g.edge_ids().collect();
        (Engine::new(Arc::new(g), Fifo, cfg), edges)
    }

    #[test]
    fn single_packet_traverses_line() {
        let (mut eng, edges) = line_engine(3, EngineConfig::default());
        let route = Route::new(eng.graph(), edges.clone()).unwrap();
        eng.step([Injection::new(route, 0)]).unwrap(); // injected at t=1
        assert_eq!(eng.queue_len(edges[0]), 1);
        eng.run_quiet(2).unwrap();
        // crossed e0 at step 2, e1 at step 3 -> now queued at e2
        assert_eq!(eng.queue_len(edges[2]), 1);
        eng.run_quiet(1).unwrap();
        assert_eq!(eng.backlog(), 0);
        assert_eq!(eng.metrics().absorbed, 1);
        assert_eq!(eng.metrics().max_latency, 3);
    }

    #[test]
    fn one_packet_per_edge_per_step() {
        let (mut eng, edges) = line_engine(1, EngineConfig::default());
        let route = Route::new(eng.graph(), vec![edges[0]]).unwrap();
        // inject 3 packets in 3 consecutive steps; the buffer drains 1/step
        for _ in 0..3 {
            eng.step([Injection::new(route.clone(), 0)]).unwrap();
        }
        // At t=3: injected 3, sent at steps 2 and 3 (the packet injected
        // at t must wait until step t+1).
        assert_eq!(eng.metrics().absorbed, 2);
        assert_eq!(eng.queue_len(edges[0]), 1);
        eng.run_quiet(1).unwrap();
        assert_eq!(eng.backlog(), 0);
    }

    #[test]
    fn conservation_inject_absorb() {
        let (mut eng, edges) = line_engine(4, EngineConfig::default());
        let route = Route::new(eng.graph(), edges.clone()).unwrap();
        for _ in 0..10 {
            eng.step([Injection::new(route.clone(), 0)]).unwrap();
        }
        eng.run_quiet(20).unwrap();
        assert_eq!(eng.metrics().injected, 10);
        assert_eq!(eng.metrics().absorbed, 10);
        assert_eq!(eng.backlog(), 0);
    }

    #[test]
    fn fifo_order_preserved() {
        let (mut eng, edges) = line_engine(2, EngineConfig::default());
        let long = Route::new(eng.graph(), edges.clone()).unwrap();
        let block = Route::new(eng.graph(), vec![edges[1]]).unwrap();
        // two blockers at e1 delay the long packets so both queue at e1
        eng.seed(block.clone(), 0).unwrap();
        eng.seed(block, 0).unwrap();
        eng.seed(long.clone(), 1).unwrap();
        eng.seed(long, 2).unwrap();
        eng.run_quiet(2).unwrap();
        // tag-1 crossed e0 at step 1 and sits ahead of tag-2 at e1
        let tags: Vec<u32> = eng.queue_iter(edges[1]).map(|p| p.tag).collect();
        assert_eq!(tags, vec![1, 2]);
    }

    #[test]
    fn seed_cohort_matches_singleton_seeds() {
        let (mut a, edges) = line_engine(2, EngineConfig::default());
        let (mut b, _) = line_engine(2, EngineConfig::default());
        let route = Route::new(a.graph(), edges.clone()).unwrap();
        for _ in 0..5 {
            a.seed(route.clone(), 3).unwrap();
        }
        let first = b.seed_cohort(route, 3, 5).unwrap();
        assert_eq!(first, PacketId(0));
        a.run_quiet(4).unwrap();
        b.run_quiet(4).unwrap();
        assert_eq!(crate::snapshot::capture(&a), crate::snapshot::capture(&b));
    }

    #[test]
    fn cohort_injection_matches_singletons() {
        let (mut a, edges) = line_engine(2, EngineConfig::default());
        let (mut b, _) = line_engine(2, EngineConfig::default());
        let route = Route::new(a.graph(), edges.clone()).unwrap();
        a.step(vec![Injection::new(route.clone(), 7); 4]).unwrap();
        b.step([Injection::cohort(route, 7, 4)]).unwrap();
        assert_eq!(crate::snapshot::capture(&a), crate::snapshot::capture(&b));
        a.run_quiet(6).unwrap();
        b.run_quiet(6).unwrap();
        assert_eq!(a.metrics().absorbed, 4);
        assert_eq!(crate::snapshot::capture(&a), crate::snapshot::capture(&b));
    }

    #[test]
    fn seed_only_before_start() {
        let (mut eng, edges) = line_engine(1, EngineConfig::default());
        let route = Route::new(eng.graph(), vec![edges[0]]).unwrap();
        eng.seed(route.clone(), 0).unwrap();
        eng.run_quiet(1).unwrap();
        assert!(matches!(eng.seed(route, 0), Err(EngineError::Usage(_))));
    }

    #[test]
    fn max_buffer_wait_tracked() {
        let (mut eng, edges) = line_engine(1, EngineConfig::default());
        let route = Route::new(eng.graph(), vec![edges[0]]).unwrap();
        // seed 3 packets; they leave at steps 1,2,3 with waits 1,2,3
        for _ in 0..3 {
            eng.seed(route.clone(), 0).unwrap();
        }
        eng.run_quiet(3).unwrap();
        assert_eq!(eng.metrics().max_buffer_wait, 3);
    }

    #[test]
    fn rate_validation_rejects_overload() {
        let g = Arc::new(topologies::line(1));
        let e = g.edge_ids().next().unwrap();
        let mut eng = Engine::new(
            Arc::clone(&g),
            Fifo,
            EngineConfig {
                validate: Some(AdversaryModelSpec::rate(Ratio::new(1, 2))),
                ..Default::default()
            },
        );
        let route = Route::new(&g, vec![e]).unwrap();
        eng.step([Injection::new(route.clone(), 0)]).unwrap();
        let err = eng.step([Injection::new(route, 0)]).unwrap_err();
        assert!(matches!(err, EngineError::Rate(_)));
    }

    #[test]
    fn window_validation_allows_burst_rate_disallows_sustained() {
        let g = Arc::new(topologies::line(1));
        let e = g.edge_ids().next().unwrap();
        let mut eng = Engine::new(
            Arc::clone(&g),
            Fifo,
            EngineConfig {
                validate: Some(AdversaryModelSpec::window(10, Ratio::new(1, 2))),
                ..Default::default()
            },
        );
        let route = Route::new(&g, vec![e]).unwrap();
        // burst of 5 at t=1 is legal for (10, 1/2)
        eng.step(vec![Injection::new(route.clone(), 0); 5]).unwrap();
        // a sixth in the same window is not
        let err = eng.step([Injection::new(route, 0)]).unwrap_err();
        assert!(matches!(err, EngineError::Rate(_)));
    }

    #[test]
    fn composed_model_members_all_enforced() {
        use crate::rate::ConstraintSpec;
        let g = Arc::new(topologies::line(1));
        let e = g.edge_ids().next().unwrap();
        // window(10, 1/2) alone admits a burst of 5; the composed
        // buffer_bound(2) member caps the same step at 3.
        let mut eng = Engine::new(
            Arc::clone(&g),
            Fifo,
            EngineConfig {
                validate: Some(
                    AdversaryModelSpec::window(10, Ratio::new(1, 2))
                        .and(ConstraintSpec::BufferBound { bound: 2 }),
                ),
                ..Default::default()
            },
        );
        let route = Route::new(&g, vec![e]).unwrap();
        let err = eng.step(vec![Injection::new(route, 0); 5]).unwrap_err();
        assert!(matches!(err, EngineError::Rate(_)));
    }

    #[test]
    fn extension_moves_packets_onward() {
        let (mut eng, edges) = line_engine(3, EngineConfig::default());
        let short = Route::new(eng.graph(), vec![edges[0]]).unwrap();
        eng.seed(short.clone(), 7).unwrap();
        eng.seed(short, 7).unwrap();
        let n = eng
            .extend_routes_in(&[edges[0]], &[edges[1], edges[2]], None)
            .unwrap();
        assert_eq!(n, 2);
        eng.run_quiet(5).unwrap();
        // both packets crossed all three edges and were absorbed
        assert_eq!(eng.metrics().absorbed, 2);
        assert_eq!(eng.metrics().max_latency, 4); // second packet waits 1 extra at e0
    }

    #[test]
    fn extension_validates_connectivity() {
        let (mut eng, edges) = line_engine(3, EngineConfig::default());
        let short = Route::new(eng.graph(), vec![edges[0]]).unwrap();
        eng.seed(short, 0).unwrap();
        let err = eng
            .extend_routes_in(&[edges[0]], &[edges[2]], None)
            .unwrap_err();
        assert!(matches!(err, EngineError::Route(_)));
    }

    #[test]
    fn reroute_validation_requires_new_edges() {
        let g = Arc::new(topologies::line(3));
        let edges: Vec<EdgeId> = g.edge_ids().collect();
        let mut eng = Engine::new(
            Arc::clone(&g),
            Fifo,
            EngineConfig {
                validate: Some(AdversaryModelSpec::rate(Ratio::new(3, 5))),
                validate_reroutes: true,
                ..Default::default()
            },
        );
        // A packet whose route already uses e1 at time 1...
        let long = Route::new(&g, vec![edges[0], edges[1]]).unwrap();
        eng.step([Injection::new(long, 0)]).unwrap();
        // ...makes e1 non-new for a cohort injected at time 2.
        let short = Route::new(&g, vec![edges[0]]).unwrap();
        eng.step([Injection::new(short, 1)]).unwrap();
        let err = eng
            .extend_routes_in(&[edges[0]], &[edges[1]], None)
            .unwrap_err();
        assert!(matches!(err, EngineError::Reroute(_)));
    }

    #[test]
    fn reroute_validation_accepts_fresh_edges() {
        let g = Arc::new(topologies::line(3));
        let edges: Vec<EdgeId> = g.edge_ids().collect();
        let mut eng = Engine::new(
            Arc::clone(&g),
            Fifo,
            EngineConfig {
                validate: Some(AdversaryModelSpec::rate(Ratio::new(3, 5))),
                validate_reroutes: true,
                ..Default::default()
            },
        );
        let short = Route::new(&g, vec![edges[0]]).unwrap();
        // run long enough that t* - ceil(1/r) clears the initial uses:
        // inject the cohort late, never having used e1/e2.
        eng.run_quiet(10).unwrap();
        eng.step([Injection::new(short.clone(), 0)]).unwrap(); // t = 11
        let n = eng
            .extend_routes_in(&[edges[0]], &[edges[1], edges[2]], None)
            .unwrap();
        assert_eq!(n, 1);
    }

    #[test]
    fn backlog_sampling() {
        let (mut eng, edges) = line_engine(
            1,
            EngineConfig {
                sample_every: 2,
                ..Default::default()
            },
        );
        let route = Route::new(eng.graph(), vec![edges[0]]).unwrap();
        for _ in 0..6 {
            eng.step([Injection::new(route.clone(), 0)]).unwrap();
        }
        let s = &eng.metrics().series;
        assert_eq!(s.len(), 3);
        assert_eq!(s[0].time, 2);
        assert!(s.iter().all(|p| p.backlog <= 1 + 1));
    }

    /// A non-historic dummy: rerouting must be refused.
    struct NonHistoric;
    impl Protocol for NonHistoric {
        fn name(&self) -> &str {
            "NTG-like"
        }
        fn select(&mut self, _: Time, _: EdgeId, _: &VD<Packet>, _: &Graph) -> usize {
            0
        }
    }

    #[test]
    fn reroute_refused_for_non_historic_policy() {
        let g = Arc::new(topologies::line(2));
        let edges: Vec<EdgeId> = g.edge_ids().collect();
        let mut eng = Engine::new(
            Arc::clone(&g),
            NonHistoric,
            EngineConfig {
                validate: Some(AdversaryModelSpec::rate(Ratio::new(3, 5))),
                validate_reroutes: true,
                ..Default::default()
            },
        );
        let short = Route::new(&g, vec![edges[0]]).unwrap();
        eng.step([Injection::new(short, 0)]).unwrap();
        let err = eng
            .extend_routes_in(&[edges[0]], &[edges[1]], None)
            .unwrap_err();
        assert!(matches!(err, EngineError::Reroute(_)));
    }
}
