//! Precompiled adversary schedules.
//!
//! The paper specifies its adversaries as explicit timed injection
//! plans ("in the time interval `[1, S]`, `rS` packets are injected, at
//! rate `r`, with route …") plus route extensions (Lemma 3.3). A
//! [`Schedule`] is exactly that: a time-sorted list of operations that
//! an [`Engine`] replays. Adversary *builders* (in
//! `aqt-adversary`) compose schedules; the engine's validators then
//! check the result against the model's constraints.
//!
//! ## Time conventions
//!
//! * `Inject { time: t }` — performed in substep 2 of step `t`.
//! * `Extend { time: t }` — performed at the *start* of step `t`
//!   (before substep 1). The paper's "at time τ, extend the routes…"
//!   with injections starting at `τ + 1` is expressed as
//!   `Extend { time: τ + 1 }` followed by injections at `τ + 1, …`.
//!
//! ## Rate-r streams
//!
//! [`Schedule::inject_stream`] injects "at rate `r`" using the floor
//! pattern: the `k`-th step of the stream injects iff
//! `⌊k·r⌋ > ⌊(k−1)·r⌋`. Over any sub-interval of the stream the
//! injected count is `⌊k₂r⌋ − ⌊k₁r⌋ ≤ ⌈(k₂−k₁)·r⌉`, so a single stream
//! always satisfies the rate-r constraint (the engine still validates
//! the *composition* of streams).

use aqt_graph::{EdgeId, Route};

use crate::engine::{Engine, EngineError, Injection};
use crate::packet::Time;
use crate::protocol::Protocol;
use crate::ratio::Ratio;

/// One adversary operation.
#[derive(Debug, Clone)]
pub enum ScheduleOp {
    /// Inject `inj.count` identical packets (shared route, shared tag)
    /// in substep 2 of step `time`. A cohort (`count > 1`) is the
    /// paper's "`S` packets are injected into `e₀`" burst as one op:
    /// the engine admits the whole batch with one route lookup and one
    /// buffer reservation, and the resulting trajectory is identical to
    /// `count` consecutive single-packet ops at the same step. Storing
    /// the [`Injection`] itself lets replay hand the engine a borrow —
    /// no per-op route clone on the hot path.
    Inject {
        /// Step of injection.
        time: Time,
        /// The packets to inject (route, tag, count).
        inj: Injection,
    },
    /// At the start of step `time`, extend the routes of all packets
    /// queued in `buffers` by `suffix` (Lemma 3.3 rerouting).
    Extend {
        /// Step before whose substep 1 the extension is applied.
        time: Time,
        /// Buffers whose queued packets are extended.
        buffers: Vec<EdgeId>,
        /// Path appended to each packet's route.
        suffix: Vec<EdgeId>,
        /// Restrict to packets whose route ends at this edge (see
        /// [`Engine::extend_routes_in`]).
        last_edge: Option<EdgeId>,
    },
}

impl ScheduleOp {
    /// The operation's scheduled time.
    pub fn time(&self) -> Time {
        match self {
            ScheduleOp::Inject { time, .. } | ScheduleOp::Extend { time, .. } => *time,
        }
    }
}

/// A time-sorted adversary plan.
#[derive(Debug, Clone, Default)]
pub struct Schedule {
    ops: Vec<ScheduleOp>,
    sorted: bool,
}

impl Schedule {
    /// Empty schedule.
    pub fn new() -> Self {
        Schedule {
            ops: Vec::new(),
            sorted: true,
        }
    }

    /// Number of operations.
    pub fn len(&self) -> usize {
        self.ops.len()
    }

    /// Is the schedule empty?
    pub fn is_empty(&self) -> bool {
        self.ops.is_empty()
    }

    /// Number of packets the schedule injects (cohorts count in full).
    pub fn injection_count(&self) -> usize {
        self.ops
            .iter()
            .map(|op| match op {
                ScheduleOp::Inject { inj, .. } => inj.count as usize,
                ScheduleOp::Extend { .. } => 0,
            })
            .sum()
    }

    /// The latest operation time (0 if empty).
    pub fn horizon(&self) -> Time {
        self.ops.iter().map(ScheduleOp::time).max().unwrap_or(0)
    }

    /// Push a raw operation.
    pub fn push(&mut self, op: ScheduleOp) {
        if let Some(last) = self.ops.last() {
            if op.time() < last.time() {
                self.sorted = false;
            }
        }
        self.ops.push(op);
    }

    /// Inject one packet at `time`.
    pub fn inject_at(&mut self, time: Time, route: Route, tag: u32) {
        self.push(ScheduleOp::Inject {
            time,
            inj: Injection::new(route, tag),
        });
    }

    /// Inject `count` identical packets at `time` as one cohort op.
    pub fn inject_cohort_at(&mut self, time: Time, route: Route, tag: u32, count: u32) {
        self.push(ScheduleOp::Inject {
            time,
            inj: Injection::cohort(route, tag, count),
        });
    }

    /// Schedule a route extension at the start of step `time`.
    pub fn extend_at(&mut self, time: Time, buffers: Vec<EdgeId>, suffix: Vec<EdgeId>) {
        self.push(ScheduleOp::Extend {
            time,
            buffers,
            suffix,
            last_edge: None,
        });
    }

    /// Like [`Schedule::extend_at`], restricted to packets whose route
    /// currently ends at `last_edge`.
    pub fn extend_ending_at(
        &mut self,
        time: Time,
        buffers: Vec<EdgeId>,
        suffix: Vec<EdgeId>,
        last_edge: EdgeId,
    ) {
        self.push(ScheduleOp::Extend {
            time,
            buffers,
            suffix,
            last_edge: Some(last_edge),
        });
    }

    /// Inject packets with `route` "at rate `r`" during the steps
    /// `[start, start + duration - 1]` using the floor pattern; returns
    /// the number of packets scheduled (= `⌊duration · r⌋`).
    pub fn inject_stream(
        &mut self,
        start: Time,
        duration: u64,
        rate: Ratio,
        route: &Route,
        tag: u32,
    ) -> u64 {
        let mut injected = 0u64;
        for k in 1..=duration {
            let want = rate.floor_mul(k);
            if want > injected {
                self.inject_at(start + k - 1, route.clone(), tag);
                injected = want;
            }
        }
        injected
    }

    /// Like [`Schedule::inject_stream`], but the route and tag of each
    /// packet are chosen per index by `f` (0-based). The paper's
    /// Lemma 3.15 uses this shape: "the first `n` packets have path of
    /// length 1, and the rest have the path `a, f_1, …, f_n, a'`";
    /// Lemma 3.16's two back-to-back streams on `a_2` are likewise one
    /// rate-r stream whose cohort changes at an index boundary.
    pub fn inject_stream_with(
        &mut self,
        start: Time,
        duration: u64,
        rate: Ratio,
        mut f: impl FnMut(u64) -> (Route, u32),
    ) -> u64 {
        let mut injected = 0u64;
        for k in 1..=duration {
            let want = rate.floor_mul(k);
            if want > injected {
                let (route, tag) = f(injected);
                self.inject_at(start + k - 1, route, tag);
                injected = want;
            }
        }
        injected
    }

    /// Inject exactly `count` packets at rate `r` starting at `start`
    /// (the stream simply stops once `count` packets are out — the
    /// paper's "X packets are injected in the first X·(1/r) time steps
    /// of the interval…"). Returns the time of the last injection, or
    /// `start - 1` if `count == 0`.
    pub fn inject_count(
        &mut self,
        start: Time,
        count: u64,
        rate: Ratio,
        route: &Route,
        tag: u32,
    ) -> Time {
        let mut injected = 0u64;
        let mut k = 0u64;
        let mut last = start.saturating_sub(1);
        while injected < count {
            k += 1;
            let want = rate.floor_mul(k);
            if want > injected {
                last = start + k - 1;
                self.inject_at(last, route.clone(), tag);
                injected += 1;
            }
        }
        last
    }

    /// Merge another schedule into this one.
    pub fn merge(&mut self, other: Schedule) {
        for op in other.ops {
            self.push(op);
        }
    }

    /// Iterate operations (unsorted, insertion order).
    pub fn ops(&self) -> &[ScheduleOp] {
        &self.ops
    }

    /// Content hash of the schedule (FNV-1a over every operation's
    /// time, kind, route/suffix edges, tag, and count, in insertion
    /// order). Two schedules built the same way hash the same on every
    /// platform; the hash is the `schedule_hash` a telemetry
    /// [`crate::telemetry::Provenance`] carries, joining JSONL records
    /// to the schedule that drove the run.
    pub fn content_hash(&self) -> u64 {
        crate::routes::fnv1a_u64s(self.ops.iter().flat_map(|op| {
            let words: Vec<u64> = match op {
                ScheduleOp::Inject { time, inj } => std::iter::once(1u64)
                    .chain([*time, u64::from(inj.tag), u64::from(inj.count)])
                    .chain(inj.route.edges().iter().map(|e| u64::from(e.0)))
                    .collect(),
                ScheduleOp::Extend {
                    time,
                    buffers,
                    suffix,
                    last_edge,
                } => std::iter::once(2u64)
                    .chain([
                        *time,
                        last_edge.map_or(u64::MAX, |e| u64::from(e.0)),
                        buffers.len() as u64,
                    ])
                    .chain(buffers.iter().map(|e| u64::from(e.0)))
                    .chain(suffix.iter().map(|e| u64::from(e.0)))
                    .collect(),
            };
            words
        }))
    }

    /// Replay this schedule on `engine` from the engine's current time
    /// through `until` (inclusive). Operations scheduled at or before
    /// the engine's current time cause an error (they can never fire).
    pub fn run<P: Protocol>(self, engine: &mut Engine<P>, until: Time) -> Result<(), EngineError> {
        self.replay(engine, until)
    }

    /// [`Schedule::run`] by reference: replay without consuming the
    /// schedule, so one schedule can drive many engines (the campaign
    /// shrinker re-runs a candidate dozens of times, and cloning a
    /// million-op schedule per attempt would dominate the re-run).
    /// A stable time-sorted *index* order is computed per call; the
    /// operations themselves are never moved.
    pub fn replay<P: Protocol>(
        &self,
        engine: &mut Engine<P>,
        until: Time,
    ) -> Result<(), EngineError> {
        // Stable by time: simultaneous operations keep insertion order
        // (`Extend` at time `t` is applied before injections at `t`
        // regardless, by the loop below).
        let mut order: Vec<u32> = (0..self.ops.len() as u32).collect();
        if !self.sorted {
            order.sort_by_key(|&i| self.ops[i as usize].time());
        }
        let start = engine.time();
        if let Some(&first) = order.first() {
            let t0 = self.ops[first as usize].time();
            if t0 <= start {
                return Err(EngineError::Usage(format!(
                    "schedule op at time {t0} but engine already at {start}"
                )));
            }
        }
        let mut idx = 0usize;
        // Borrows of the ops' stored `Injection`s — the hot replay loop
        // hands the engine references, so no route `Arc` is cloned (or
        // dropped) per operation.
        let mut injections: Vec<&Injection> = Vec::new();
        for t in (start + 1)..=until {
            // Extensions scheduled at the start of step t.
            while idx < order.len() && self.ops[order[idx] as usize].time() == t {
                match &self.ops[order[idx] as usize] {
                    ScheduleOp::Extend {
                        buffers,
                        suffix,
                        last_edge,
                        ..
                    } => {
                        engine.extend_routes_in(buffers, suffix, *last_edge)?;
                        idx += 1;
                    }
                    ScheduleOp::Inject { inj, .. } => {
                        injections.push(inj);
                        idx += 1;
                    }
                }
            }
            engine.step(injections.drain(..))?;
        }
        if idx < order.len() {
            return Err(EngineError::Usage(format!(
                "schedule extends past the requested horizon: next op at {}, ran until {}",
                self.ops[order[idx] as usize].time(),
                until
            )));
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::engine::EngineConfig;
    use crate::packet::Packet;
    use aqt_graph::{topologies, Graph};
    use std::collections::VecDeque;
    use std::sync::Arc;

    struct Fifo;
    impl Protocol for Fifo {
        fn name(&self) -> &str {
            "FIFO"
        }
        fn select(&mut self, _: Time, _: EdgeId, _: &VecDeque<Packet>, _: &Graph) -> usize {
            0
        }
        fn is_historic(&self) -> bool {
            true
        }
    }

    #[test]
    fn stream_injects_floor_r_times_duration() {
        let g = topologies::line(1);
        let e = g.edge_ids().next().unwrap();
        let route = Route::new(&g, vec![e]).unwrap();
        let mut s = Schedule::new();
        let n = s.inject_stream(1, 100, Ratio::new(3, 5), &route, 0);
        assert_eq!(n, 60);
        assert_eq!(s.injection_count(), 60);
        assert!(s.horizon() <= 100);
    }

    #[test]
    fn stream_satisfies_rate_validator() {
        let g = Arc::new(topologies::line(1));
        let e = g.edge_ids().next().unwrap();
        let route = Route::new(&g, vec![e]).unwrap();
        let r = Ratio::new(7, 10);
        let mut s = Schedule::new();
        s.inject_stream(5, 200, r, &route, 0);
        let mut eng = Engine::new(
            Arc::clone(&g),
            Fifo,
            EngineConfig {
                validate: Some(crate::rate::AdversaryModelSpec::rate(r)),
                ..Default::default()
            },
        );
        s.run(&mut eng, 250).expect("stream must be rate-legal");
    }

    #[test]
    fn inject_count_stops_at_count() {
        let g = topologies::line(1);
        let e = g.edge_ids().next().unwrap();
        let route = Route::new(&g, vec![e]).unwrap();
        let mut s = Schedule::new();
        let last = s.inject_count(10, 7, Ratio::new(1, 2), &route, 0);
        assert_eq!(s.injection_count(), 7);
        // 7 packets at rate 1/2 need 14 steps: last at 10+14-1
        assert_eq!(last, 23);
    }

    #[test]
    fn replay_applies_extension_before_injections() {
        let g = Arc::new(topologies::line(2));
        let edges: Vec<EdgeId> = g.edge_ids().collect();
        let route0 = Route::new(&g, vec![edges[0]]).unwrap();
        let mut eng = Engine::new(Arc::clone(&g), Fifo, EngineConfig::default());
        eng.seed(route0, 0).unwrap();
        let mut s = Schedule::new();
        s.extend_at(1, vec![edges[0]], vec![edges[1]]);
        s.run(&mut eng, 3).unwrap();
        // the seeded packet crossed e0 at step 1 *with the extension*
        // already applied, so it was forwarded to e1 and absorbed at 2.
        assert_eq!(eng.metrics().absorbed, 1);
        assert_eq!(eng.metrics().max_latency, 2);
    }

    #[test]
    fn replay_rejects_past_ops() {
        let g = Arc::new(topologies::line(1));
        let e = g.edge_ids().next().unwrap();
        let route = Route::new(&g, vec![e]).unwrap();
        let mut eng = Engine::new(Arc::clone(&g), Fifo, EngineConfig::default());
        eng.run_quiet(5).unwrap();
        let mut s = Schedule::new();
        s.inject_at(3, route, 0);
        assert!(matches!(s.run(&mut eng, 10), Err(EngineError::Usage(_))));
    }

    #[test]
    fn replay_rejects_truncated_horizon() {
        let g = Arc::new(topologies::line(1));
        let e = g.edge_ids().next().unwrap();
        let route = Route::new(&g, vec![e]).unwrap();
        let mut eng = Engine::new(Arc::clone(&g), Fifo, EngineConfig::default());
        let mut s = Schedule::new();
        s.inject_at(9, route, 0);
        assert!(matches!(s.run(&mut eng, 5), Err(EngineError::Usage(_))));
    }

    #[test]
    fn cohort_op_replays_identically_to_singletons() {
        let g = Arc::new(topologies::line(2));
        let edges: Vec<EdgeId> = g.edge_ids().collect();
        let route = Route::new(&g, edges).unwrap();

        let mut singles = Schedule::new();
        for _ in 0..5 {
            singles.inject_at(2, route.clone(), 7);
        }
        let mut cohort = Schedule::new();
        cohort.inject_cohort_at(2, route.clone(), 7, 5);
        assert_eq!(singles.injection_count(), cohort.injection_count());

        let mut a = Engine::new(Arc::clone(&g), Fifo, EngineConfig::default());
        singles.run(&mut a, 10).unwrap();
        let mut b = Engine::new(Arc::clone(&g), Fifo, EngineConfig::default());
        cohort.run(&mut b, 10).unwrap();
        assert_eq!(
            crate::snapshot::capture(&a),
            crate::snapshot::capture(&b),
            "cohort replay must be state-identical to singleton replay"
        );
        assert_eq!(a.metrics().absorbed, b.metrics().absorbed);
    }

    /// Golden value: [`Schedule::content_hash`] is a cross-platform,
    /// cross-refactor stable content id — the `schedule_hash` of every
    /// telemetry provenance line and half of the campaign corpus dedup
    /// key. If this test fails, the hash changed: archived JSONL lines
    /// and stored campaign fingerprints stop joining. Change it only
    /// deliberately, updating this constant in the same commit.
    #[test]
    fn content_hash_is_pinned() {
        let g = topologies::line(3);
        let edges: Vec<EdgeId> = g.edge_ids().collect();
        let full = Route::new(&g, edges.clone()).unwrap();
        let tail = Route::new(&g, edges[1..].to_vec()).unwrap();
        let mut s = Schedule::new();
        s.inject_at(3, full, 7);
        s.inject_cohort_at(5, tail, 9, 4);
        s.extend_ending_at(6, vec![edges[0], edges[1]], vec![edges[2]], edges[2]);
        assert_eq!(s.content_hash(), 0xBF3B_EACE_70E2_AAAF);
        // And the empty schedule (FNV-1a offset basis, no words).
        assert_eq!(Schedule::new().content_hash(), 0xCBF2_9CE4_8422_2325);
    }

    #[test]
    fn replay_by_reference_matches_run_and_handles_unsorted_ops() {
        let g = Arc::new(topologies::line(2));
        let edges: Vec<EdgeId> = g.edge_ids().collect();
        let route = Route::new(&g, edges.clone()).unwrap();
        let short = Route::new(&g, vec![edges[0]]).unwrap();
        // Deliberately out of insertion order.
        let mut s = Schedule::new();
        s.inject_at(4, route.clone(), 1);
        s.inject_cohort_at(2, short, 0, 3);
        let mut by_ref = Engine::new(Arc::clone(&g), Fifo, EngineConfig::default());
        s.replay(&mut by_ref, 8).unwrap();
        // The schedule is untouched and replays again identically.
        assert_eq!(s.len(), 2);
        let mut again = Engine::new(Arc::clone(&g), Fifo, EngineConfig::default());
        s.replay(&mut again, 8).unwrap();
        assert_eq!(
            crate::snapshot::capture(&by_ref),
            crate::snapshot::capture(&again)
        );
        // And the consuming `run` produces the same trajectory.
        let mut consumed = Engine::new(Arc::clone(&g), Fifo, EngineConfig::default());
        s.run(&mut consumed, 8).unwrap();
        assert_eq!(
            crate::snapshot::capture(&by_ref),
            crate::snapshot::capture(&consumed)
        );
    }

    #[test]
    fn merge_keeps_all_ops() {
        let g = topologies::line(1);
        let e = g.edge_ids().next().unwrap();
        let route = Route::new(&g, vec![e]).unwrap();
        let mut a = Schedule::new();
        a.inject_at(5, route.clone(), 0);
        let mut b = Schedule::new();
        b.inject_at(2, route, 1);
        a.merge(b);
        assert_eq!(a.len(), 2);
        assert_eq!(a.horizon(), 5);
    }
}
