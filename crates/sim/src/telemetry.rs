//! Live instrumentation for the staged step pipeline.
//!
//! The batch [`crate::Metrics`] struct answers "what happened over the
//! whole run"; this module answers "what is happening *now*" — the
//! interval quantities (per-edge crossing rates over windows, backlog
//! growth, stage latencies) that the empirical-stability literature
//! diagnoses from. Three layers, each zero-cost when off:
//!
//! * **Hot-path counters** ([`TelemetryCounters`]) — plain `u64` fields
//!   on a [`Telemetry`] struct owned by the engine: per-substage work
//!   counts (send/absorb/inject/compact), packets moved, cohorts
//!   admitted, intern-memo hits/misses, sentinel/oracle passes. The
//!   enablement level is folded into two booleans read once per step
//!   (mirroring the sentinel's cached next-due gate), so the disabled
//!   path costs a handful of predictable branches and never touches
//!   the heap — `tests/alloc_regression.rs` pins this.
//! * **Stage timing** ([`StageTimings`]) — coarse [`Log2Histogram`]
//!   latency histograms per substage and per oracle/sentinel pass.
//!   `std::time::Instant` only; no external deps.
//! * **Structured export** — a [`TelemetrySink`] trait fed
//!   [`TelemetryEvent`]s: a schema-versioned JSONL writer
//!   ([`JsonlSink`], versioned like snapshots — see
//!   [`TELEMETRY_SCHEMA_VERSION`]), a preallocated in-memory ring
//!   buffer ([`RingSink`]), a human-readable progress printer
//!   ([`StderrSink`]), a fan-out ([`TeeSink`]) and a thread-safe
//!   shareable handle ([`SharedSink`]). Every engine-emitted record
//!   carries the run's [`Provenance`] (seed, schedule hash, protocol,
//!   fault-plan id), so a JSONL line is joinable to the
//!   [`crate::ReproBundle`] of a sentinel report from the same run.
//!
//! The sweep harness ([`crate::parallel::run_sweep_with_progress`])
//! reports per-job start/finish/retry/quarantine events plus an ETA
//! line through the same sink family.

use std::io::Write;
use std::sync::{Arc, Mutex};
use std::time::Duration;

use crate::packet::Time;

/// Version stamp written on every JSONL record. Bump when the record
/// shapes change; consumers fail closed on unknown versions (the same
/// policy as [`crate::SNAPSHOT_SCHEMA_VERSION`]).
///
/// History:
/// * **1** — initial schema: `run_start` / `window` / `run_end` /
///   `job_started` / `job_finished` / `job_retried` /
///   `job_quarantined` / `sweep_progress` records.
/// * **2** — counter blocks gained `windows_emitted` (the campaign
///   coverage map's window-emission dimension).
/// * **3** — provenance blocks gained `model_fingerprint` (the
///   [`crate::rate::AdversaryModelSpec::fingerprint`] of the run's
///   adversary model), so a record names the exact constraint
///   composition its run validated under.
/// * **4** — added the `workload_window` record (the closed-loop
///   request ledger: `requests_issued` / `requests_completed` /
///   `requests_abandoned` / `requests_shed` / `requests_in_flight` /
///   `attempts_issued` / `attempts_retried` / `attempts_shed` /
///   `completions_wasted` running totals plus the per-window
///   `goodput` / `wasted` / `offered` split), and `job_retried`
///   records gained `backoff_ms` (the seeded exponential backoff the
///   sweep harness sleeps before the retry).
/// * **5** — the queue observatory (`crate::observe`): added the
///   `backlog` record (fixed-cadence queue-depth series with the
///   certificate-margin tracker and per-shard cumulative sent counts)
///   and the `span` record (seeded 1-in-N sampled packet-lifecycle
///   events); counter blocks gained the shard-visibility quartet
///   `shard_steps` / `shard_seq_fallbacks` / `shard_msgs_merged` /
///   `shard_barrier_ns`; `run_end` timing blocks gained the
///   `barrier` and `shard_work` histograms.
pub const TELEMETRY_SCHEMA_VERSION: u32 = 5;

/// How much the engine instruments per step.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord)]
pub enum TelemetryLevel {
    /// No instrumentation: the step pipeline pays two predictable
    /// branch tests and one integer compare, nothing else.
    Off,
    /// Hot-path counters and window records (cheap integer adds).
    Counters,
    /// Counters plus per-substage latency histograms (two
    /// `Instant::now` calls per timed substage).
    Timing,
}

impl TelemetryLevel {
    /// Are the counters maintained at this level?
    pub fn counters(self) -> bool {
        self >= TelemetryLevel::Counters
    }

    /// Are the stage timings maintained at this level?
    pub fn timing(self) -> bool {
        self >= TelemetryLevel::Timing
    }
}

/// Identity of the run every engine-emitted record carries, joinable
/// to a [`crate::ReproBundle`]: same seed, same fault plan, plus the
/// hash of the driving schedule when the run replays one.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct Provenance {
    /// RNG seed of the run, when one exists (matches
    /// [`crate::SentinelConfig::seed`] / [`crate::ReproBundle::seed`]).
    pub seed: Option<u64>,
    /// [`crate::Schedule::content_hash`] of the driving schedule, for
    /// replay runs.
    pub schedule_hash: Option<u64>,
    /// Protocol name ([`crate::Protocol::name`]).
    pub protocol: String,
    /// [`crate::FaultPlan::plan_id`] of the installed fault plan.
    /// Filled in automatically by [`crate::Engine::attach_telemetry`]
    /// when left `None` and a plan is installed.
    pub fault_plan_id: Option<u64>,
    /// [`crate::rate::AdversaryModelSpec::fingerprint`] of the engine's
    /// adversary model. Filled in automatically by
    /// [`crate::Engine::attach_telemetry`] when left `None` and the
    /// engine validates.
    pub model_fingerprint: Option<u64>,
}

/// Telemetry configuration. The default is the "watch a run" shape:
/// counters on, a window record every 4096 steps, no timing
/// histograms. Use [`TelemetryConfig::off`] for the do-nothing config.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct TelemetryConfig {
    /// Instrumentation level.
    pub level: TelemetryLevel,
    /// Emit a [`TelemetryEvent::Window`] record every this many steps
    /// (0 = never). Ignored when `level` is [`TelemetryLevel::Off`].
    pub window: Time,
    /// At [`TelemetryLevel::Timing`], record the stage histograms on
    /// every this-many-th step (0 is treated as 1 = every step). Stage
    /// timing is *sampled*: a full set of per-substage clock reads
    /// costs a sizeable fraction of a fast step, so timing every step
    /// would distort the quantity being measured. The default of 512
    /// keeps the histograms statistically faithful while the clock
    /// cost amortizes to noise even on drain-heavy workloads whose
    /// steps are a handful of nanoseconds.
    pub timing_sample_every: Time,
    /// Run identity stamped on every emitted record.
    pub provenance: Provenance,
}

impl Default for TelemetryConfig {
    fn default() -> Self {
        TelemetryConfig {
            level: TelemetryLevel::Counters,
            window: 4096,
            timing_sample_every: 512,
            provenance: Provenance::default(),
        }
    }
}

impl TelemetryConfig {
    /// The do-nothing configuration (what an engine starts with).
    pub fn off() -> Self {
        TelemetryConfig {
            level: TelemetryLevel::Off,
            window: 0,
            timing_sample_every: 0,
            provenance: Provenance::default(),
        }
    }

    /// Counters plus stage-timing histograms at the default window.
    pub fn timing() -> Self {
        TelemetryConfig {
            level: TelemetryLevel::Timing,
            ..Default::default()
        }
    }

    /// This configuration with `provenance`.
    pub fn with_provenance(mut self, provenance: Provenance) -> Self {
        self.provenance = provenance;
        self
    }

    /// This configuration with a window of `window` steps.
    pub fn with_window(mut self, window: Time) -> Self {
        self.window = window;
        self
    }

    /// This configuration with a timing sample stride of `every` steps
    /// (1 = time every step; see
    /// [`timing_sample_every`](Self::timing_sample_every)).
    pub fn with_timing_sample_every(mut self, every: Time) -> Self {
        self.timing_sample_every = every;
        self
    }
}

/// The hot-path counters: plain `u64`s, updated only when the level
/// enables them. A [`TelemetryEvent::Window`] record carries the
/// *delta* of these over the window; [`Telemetry::counters`] exposes
/// the running totals.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct TelemetryCounters {
    /// Steps executed.
    pub steps: u64,
    /// Packets sent in substep 1 (including ones later lost to wire
    /// faults).
    pub packets_sent: u64,
    /// Packets moved into a next buffer by the receive substage.
    pub packets_forwarded: u64,
    /// Packets absorbed at their destination.
    pub packets_absorbed: u64,
    /// Packets admitted (injections, bursts, and — when telemetry is
    /// attached before seeding — initial-configuration seeds).
    pub packets_injected: u64,
    /// Cohort admissions (each a single validated range-extend).
    pub cohorts_admitted: u64,
    /// Emptied buffers deactivated (and capacity-compacted) at step
    /// boundaries by the active-set maintenance.
    pub buffers_compacted: u64,
    /// Injection-path intern-memo hits.
    pub memo_hits: u64,
    /// Injection-path intern-memo misses (fell through to a real
    /// intern).
    pub memo_misses: u64,
    /// Sentinel check rounds run.
    pub sentinel_rounds: u64,
    /// Oracle full-state diffs performed.
    pub oracle_diffs: u64,
    /// Telemetry windows closed and emitted (including the final
    /// partial window). A campaign coverage dimension: runs that never
    /// cross a window boundary exercise none of the window-emission
    /// path.
    pub windows_emitted: u64,
    /// Steps executed on the sharded fast path (parallel send/receive
    /// over the edge shards).
    pub shard_steps: u64,
    /// Steps a shard-attached engine fell back to the sequential
    /// pipeline (fault-active steps; see `crate::shard`). Nonzero only
    /// while shards are attached — a high ratio to `shard_steps` means
    /// the fault plan is eating the parallelism.
    pub shard_seq_fallbacks: u64,
    /// Packets that crossed a shard boundary (gathered from another
    /// shard's outbox during the receive merge). Same-shard forwards
    /// are excluded, so this is the partition's communication volume.
    pub shard_msgs_merged: u64,
    /// Nanoseconds shard 0 (the caller) spent blocked on the phase
    /// barrier waiting for the other shards — the straggler signal.
    pub shard_barrier_ns: u64,
}

impl TelemetryCounters {
    /// Field-wise `self - base` (saturating): the per-window delta.
    pub fn delta_since(&self, base: &TelemetryCounters) -> TelemetryCounters {
        TelemetryCounters {
            steps: self.steps.saturating_sub(base.steps),
            packets_sent: self.packets_sent.saturating_sub(base.packets_sent),
            packets_forwarded: self
                .packets_forwarded
                .saturating_sub(base.packets_forwarded),
            packets_absorbed: self.packets_absorbed.saturating_sub(base.packets_absorbed),
            packets_injected: self.packets_injected.saturating_sub(base.packets_injected),
            cohorts_admitted: self.cohorts_admitted.saturating_sub(base.cohorts_admitted),
            buffers_compacted: self
                .buffers_compacted
                .saturating_sub(base.buffers_compacted),
            memo_hits: self.memo_hits.saturating_sub(base.memo_hits),
            memo_misses: self.memo_misses.saturating_sub(base.memo_misses),
            sentinel_rounds: self.sentinel_rounds.saturating_sub(base.sentinel_rounds),
            oracle_diffs: self.oracle_diffs.saturating_sub(base.oracle_diffs),
            windows_emitted: self.windows_emitted.saturating_sub(base.windows_emitted),
            shard_steps: self.shard_steps.saturating_sub(base.shard_steps),
            shard_seq_fallbacks: self
                .shard_seq_fallbacks
                .saturating_sub(base.shard_seq_fallbacks),
            shard_msgs_merged: self
                .shard_msgs_merged
                .saturating_sub(base.shard_msgs_merged),
            shard_barrier_ns: self.shard_barrier_ns.saturating_sub(base.shard_barrier_ns),
        }
    }
}

/// The closed-loop request ledger (`aqt-workload`): running totals of
/// the request-conservation partition (`requests_issued =
/// requests_completed + requests_abandoned + requests_shed +
/// requests_in_flight`) plus attempt-level activity. Defined here so
/// [`TelemetryEvent::WorkloadWindow`] can carry it without a
/// dependency cycle — the workload crate fills it in, the sinks only
/// serialize it.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct WorkloadCounters {
    /// Requests issued by clients (first attempts only).
    pub requests_issued: u64,
    /// Requests whose reply arrived while the client still waited.
    pub requests_completed: u64,
    /// Requests whose retry budget ran out waiting.
    pub requests_abandoned: u64,
    /// Requests terminally rejected at admission (final attempt shed).
    pub requests_shed: u64,
    /// Requests still open (waiting, queued, in transit, or backing
    /// off).
    pub requests_in_flight: u64,
    /// Attempts issued (first tries + retries).
    pub attempts_issued: u64,
    /// Attempts beyond each request's first (the retry storm measure).
    pub attempts_retried: u64,
    /// Attempts rejected at admission by the [`Shed`] policy (shed
    /// behaviors live in `aqt-workload`).
    pub attempts_shed: u64,
    /// Replies that arrived after their client stopped waiting —
    /// service capacity spent on throw-away work.
    pub completions_wasted: u64,
}

/// A coarse log2-bucketed latency histogram: bucket `i` counts samples
/// in `[2^i, 2^(i+1))` nanoseconds (bucket 0 includes 0 ns; the last
/// bucket absorbs everything ≥ 2^31 ns ≈ 2.1 s). Fixed storage, no
/// deps, O(1) record.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Log2Histogram {
    buckets: [u64; Log2Histogram::BUCKETS],
    count: u64,
    total_ns: u64,
}

impl Default for Log2Histogram {
    fn default() -> Self {
        Log2Histogram {
            buckets: [0; Log2Histogram::BUCKETS],
            count: 0,
            total_ns: 0,
        }
    }
}

impl Log2Histogram {
    /// Number of buckets (powers of two from 1 ns to ~2.1 s).
    pub const BUCKETS: usize = 32;

    /// Record a sample of `nanos` nanoseconds.
    #[inline]
    pub fn record(&mut self, nanos: u64) {
        let b = if nanos == 0 {
            0
        } else {
            (63 - nanos.leading_zeros() as usize).min(Self::BUCKETS - 1)
        };
        self.buckets[b] += 1;
        self.count += 1;
        self.total_ns = self.total_ns.saturating_add(nanos);
    }

    /// Record an elapsed [`Duration`].
    #[inline]
    pub fn record_duration(&mut self, d: Duration) {
        self.record(d.as_nanos().min(u64::MAX as u128) as u64);
    }

    /// Samples recorded.
    pub fn count(&self) -> u64 {
        self.count
    }

    /// Sum of all samples, nanoseconds (saturating).
    pub fn total_nanos(&self) -> u64 {
        self.total_ns
    }

    /// Mean sample, nanoseconds (0.0 when empty).
    pub fn mean_nanos(&self) -> f64 {
        if self.count == 0 {
            0.0
        } else {
            self.total_ns as f64 / self.count as f64
        }
    }

    /// The raw buckets; bucket `i` counts samples in `[2^i, 2^(i+1))`
    /// ns.
    pub fn buckets(&self) -> &[u64] {
        &self.buckets
    }

    /// Upper bound (exclusive, in ns) of the first bucket at which the
    /// cumulative count reaches quantile `q` of all samples — a coarse
    /// percentile with at most 2x relative error. `None` when empty.
    pub fn quantile_bound(&self, q: f64) -> Option<u64> {
        if self.count == 0 {
            return None;
        }
        let target = (q.clamp(0.0, 1.0) * self.count as f64).ceil().max(1.0) as u64;
        let mut seen = 0;
        for (i, &c) in self.buckets.iter().enumerate() {
            seen += c;
            if seen >= target {
                return Some(1u64 << (i + 1).min(63));
            }
        }
        Some(u64::MAX)
    }
}

/// Per-substage lating histograms plus the whole-step and the
/// oracle/sentinel pass timings. Only maintained at
/// [`TelemetryLevel::Timing`].
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct StageTimings {
    /// Substep 1 (send), including the active-set `begin_step`.
    pub send: Log2Histogram,
    /// Active-set maintenance + buffer compaction (`begin_step`),
    /// nested inside `send`.
    pub compact: Log2Histogram,
    /// Substep 2a (receive: absorb/forward).
    pub receive: Log2Histogram,
    /// Substep 2b (adversary injections, incl. burst faults).
    pub inject: Log2Histogram,
    /// One oracle pass (model step + due diff), when attached.
    pub oracle: Log2Histogram,
    /// One sentinel check round, when due.
    pub sentinel: Log2Histogram,
    /// The whole step.
    pub step: Log2Histogram,
    /// Shard 0's barrier wait per sampled sharded step (both phases
    /// combined). Empty on unsharded runs.
    pub barrier: Log2Histogram,
    /// Per-shard work time on sampled sharded steps: each shard's
    /// send + receive phase contributes one sample, so the spread of
    /// this histogram is the shard-imbalance signal. Empty on
    /// unsharded runs.
    pub shard_work: Log2Histogram,
}

/// One telemetry record. Engine-emitted records borrow the engine's
/// scratch (the per-window crossing deltas) so emission allocates
/// nothing; sinks that outlive the call copy what they keep.
#[derive(Debug, Clone, PartialEq)]
pub enum TelemetryEvent<'a> {
    /// A run began (emitted when a sink is attached to an engine).
    RunStart {
        /// Engine time at attach.
        time: Time,
        /// Run identity.
        provenance: &'a Provenance,
    },
    /// One closed telemetry window.
    Window {
        /// First step covered (exclusive: the window is
        /// `(start, end]`).
        start: Time,
        /// Last step covered.
        end: Time,
        /// Counter deltas over the window.
        counters: TelemetryCounters,
        /// Per-edge crossings *within this window* (index = edge
        /// index). Summing these across all windows of a run, plus
        /// the final partial window, reproduces the batch
        /// [`crate::Metrics::crossings_per_edge`] totals.
        crossings: &'a [u64],
        /// Run identity.
        provenance: &'a Provenance,
    },
    /// A run finished ([`crate::Engine::finish_telemetry`]).
    RunEnd {
        /// Engine time at finish.
        time: Time,
        /// Counter totals for the whole run.
        counters: TelemetryCounters,
        /// Stage timings (all-zero below [`TelemetryLevel::Timing`]).
        timings: &'a StageTimings,
        /// Run identity.
        provenance: &'a Provenance,
    },
    /// A sweep job began.
    JobStarted {
        /// Input index of the job.
        index: usize,
        /// Total jobs in the sweep.
        total: usize,
    },
    /// A sweep job completed.
    JobFinished {
        /// Input index of the job.
        index: usize,
        /// Attempts it took (1 = first try).
        attempts: u32,
        /// Wall time of the successful attempt.
        secs: f64,
    },
    /// A sweep job panicked and will be retried.
    JobRetried {
        /// Input index of the job.
        index: usize,
        /// The attempt that just failed (1-based).
        attempt: u32,
        /// Milliseconds of seeded exponential backoff slept before the
        /// retry (0 under a zero base).
        backoff_ms: u64,
    },
    /// A sweep job was quarantined.
    JobQuarantined {
        /// Input index of the job.
        index: usize,
        /// Attempts made.
        attempts: u32,
    },
    /// Sweep progress plus an ETA estimate (emitted after each job
    /// settles).
    SweepProgress {
        /// Jobs settled (finished or quarantined).
        done: usize,
        /// Total jobs.
        total: usize,
        /// Wall time since the sweep started.
        elapsed_secs: f64,
        /// `elapsed / done * (total - done)` — the remaining-time
        /// estimate.
        eta_secs: f64,
    },
    /// One closed-loop workload window (`aqt-workload`'s goodput
    /// meter): the request ledger's running totals at window close plus
    /// the window's goodput split.
    WorkloadWindow {
        /// First step covered (exclusive: the window is `(start, end]`).
        start: Time,
        /// Last step covered.
        end: Time,
        /// Request-ledger running totals at window close.
        counters: WorkloadCounters,
        /// In-time completions within the window.
        goodput: u64,
        /// Post-abandonment completions within the window.
        wasted: u64,
        /// Attempts admitted to service within the window (offered
        /// load).
        offered: u64,
        /// Run identity.
        provenance: &'a Provenance,
    },
    /// One observatory backlog tick (`crate::observe`): the live
    /// queue-depth state at a fixed cadence, with the
    /// certificate-margin tracker. The borrowed slices are the
    /// observatory's preallocated scratch.
    Backlog {
        /// Engine step of the tick.
        time: Time,
        /// Total packets queued across all edges (live Q(t)).
        total: u64,
        /// Deepest single queue ever seen (running peak).
        max_queue: u64,
        /// Worst buffer wait ever seen (running peak) — the quantity
        /// the certificate bound constrains.
        max_wait: Time,
        /// The certificate's per-buffer wait bound, when the run
        /// carries one.
        bound: Option<u64>,
        /// `bound - max_wait`: positive while the certificate holds,
        /// shrinking toward 0 as a near-miss develops, negative after
        /// a breach. `None` without a bound.
        margin: Option<i64>,
        /// Sparse nonzero queue depths as `(edge index, depth)` pairs.
        /// Empty when the run's edge count exceeds the observatory's
        /// per-edge tracking cap.
        depths: &'a [(u32, u32)],
        /// Cumulative packets sent per shard (index = shard id) —
        /// max/mean over this is the shard-imbalance ratio. Empty on
        /// unsharded runs.
        shard_sent: &'a [u64],
        /// Run identity.
        provenance: &'a Provenance,
    },
    /// One packet-lifecycle event of a sampled packet
    /// (`crate::observe`'s seeded 1-in-N span sampling).
    Span {
        /// Engine step of the event.
        time: Time,
        /// Packet id.
        packet: u64,
        /// What happened.
        op: SpanKind,
        /// Edge index: the buffer sent from / enqueued at / absorbed
        /// at, or the edge just crossed for wire-fault events.
        edge: u32,
        /// The packet's hop index at the event.
        hop: u32,
        /// Steps waited: time since arrival for `Send`, end-to-end
        /// latency for `Absorb`, 0 otherwise.
        wait: Time,
        /// Shard owning the acting edge (0 on unsharded runs and on
        /// sequential-fallback steps).
        shard: u32,
        /// Run identity.
        provenance: &'a Provenance,
    },
}

/// What happened to a sampled packet in a [`TelemetryEvent::Span`]
/// record.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum SpanKind {
    /// Admitted into its first buffer.
    Inject,
    /// Popped from a buffer by the send substage.
    Send,
    /// Enqueued at its next buffer by the receive substage.
    Enqueue,
    /// Absorbed at its destination.
    Absorb,
    /// Lost to a wire-fault drop in transit.
    Drop,
    /// A wire-fault duplicate entering the system (the record's
    /// packet id is the clone's).
    Duplicate,
}

impl SpanKind {
    /// The JSONL `op` string.
    pub fn as_str(self) -> &'static str {
        match self {
            SpanKind::Inject => "inject",
            SpanKind::Send => "send",
            SpanKind::Enqueue => "enqueue",
            SpanKind::Absorb => "absorb",
            SpanKind::Drop => "drop",
            SpanKind::Duplicate => "dup",
        }
    }
}

impl TelemetryEvent<'_> {
    /// The record's kind tag (the `kind` field of its JSONL form).
    pub fn kind(&self) -> EventKind {
        match self {
            TelemetryEvent::RunStart { .. } => EventKind::RunStart,
            TelemetryEvent::Window { .. } => EventKind::Window,
            TelemetryEvent::RunEnd { .. } => EventKind::RunEnd,
            TelemetryEvent::JobStarted { .. } => EventKind::JobStarted,
            TelemetryEvent::JobFinished { .. } => EventKind::JobFinished,
            TelemetryEvent::JobRetried { .. } => EventKind::JobRetried,
            TelemetryEvent::JobQuarantined { .. } => EventKind::JobQuarantined,
            TelemetryEvent::SweepProgress { .. } => EventKind::SweepProgress,
            TelemetryEvent::WorkloadWindow { .. } => EventKind::WorkloadWindow,
            TelemetryEvent::Backlog { .. } => EventKind::Backlog,
            TelemetryEvent::Span { .. } => EventKind::Span,
        }
    }
}

/// Kind tag of a [`TelemetryEvent`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum EventKind {
    /// [`TelemetryEvent::RunStart`].
    RunStart,
    /// [`TelemetryEvent::Window`].
    Window,
    /// [`TelemetryEvent::RunEnd`].
    RunEnd,
    /// [`TelemetryEvent::JobStarted`].
    JobStarted,
    /// [`TelemetryEvent::JobFinished`].
    JobFinished,
    /// [`TelemetryEvent::JobRetried`].
    JobRetried,
    /// [`TelemetryEvent::JobQuarantined`].
    JobQuarantined,
    /// [`TelemetryEvent::SweepProgress`].
    SweepProgress,
    /// [`TelemetryEvent::WorkloadWindow`].
    WorkloadWindow,
    /// [`TelemetryEvent::Backlog`].
    Backlog,
    /// [`TelemetryEvent::Span`].
    Span,
}

impl EventKind {
    /// The JSONL `kind` string.
    pub fn as_str(self) -> &'static str {
        match self {
            EventKind::RunStart => "run_start",
            EventKind::Window => "window",
            EventKind::RunEnd => "run_end",
            EventKind::JobStarted => "job_started",
            EventKind::JobFinished => "job_finished",
            EventKind::JobRetried => "job_retried",
            EventKind::JobQuarantined => "job_quarantined",
            EventKind::SweepProgress => "sweep_progress",
            EventKind::WorkloadWindow => "workload_window",
            EventKind::Backlog => "backlog",
            EventKind::Span => "span",
        }
    }
}

/// A consumer of telemetry records. `Send` so one sink can serve a
/// multi-threaded sweep (through [`SharedSink`]) and so an engine
/// carrying a sink stays movable across threads.
///
/// `record` must not assume the borrowed slices in the event outlive
/// the call.
pub trait TelemetrySink: Send {
    /// Consume one record.
    fn record(&mut self, event: &TelemetryEvent<'_>);

    /// Flush any buffered output (no-op by default).
    fn flush(&mut self) {}
}

// ---------------------------------------------------------------------
// JSONL sink
// ---------------------------------------------------------------------

/// Writes one schema-versioned JSON object per record, newline
/// delimited. The line buffer is reused across records, so steady-state
/// emission performs no allocation beyond what the underlying writer
/// does.
pub struct JsonlSink {
    out: Box<dyn Write + Send>,
    line: String,
    records: u64,
}

impl JsonlSink {
    /// JSONL to a (buffered) file at `path`, truncating.
    pub fn create(path: impl AsRef<std::path::Path>) -> std::io::Result<Self> {
        let f = std::fs::File::create(path)?;
        Ok(Self::from_writer(std::io::BufWriter::new(f)))
    }

    /// JSONL to an arbitrary writer.
    pub fn from_writer(w: impl Write + Send + 'static) -> Self {
        JsonlSink {
            out: Box::new(w),
            line: String::with_capacity(256),
            records: 0,
        }
    }

    /// Records written so far.
    pub fn records(&self) -> u64 {
        self.records
    }

    fn provenance_fields(line: &mut String, p: &Provenance) {
        use std::fmt::Write as _;
        match p.seed {
            Some(s) => write!(line, ",\"seed\":{s}").unwrap(),
            None => line.push_str(",\"seed\":null"),
        }
        match p.schedule_hash {
            Some(h) => write!(line, ",\"schedule_hash\":{h}").unwrap(),
            None => line.push_str(",\"schedule_hash\":null"),
        }
        write!(line, ",\"protocol\":\"{}\"", escape(&p.protocol)).unwrap();
        match p.fault_plan_id {
            Some(h) => write!(line, ",\"fault_plan_id\":{h}").unwrap(),
            None => line.push_str(",\"fault_plan_id\":null"),
        }
        match p.model_fingerprint {
            Some(h) => write!(line, ",\"model_fingerprint\":{h}").unwrap(),
            None => line.push_str(",\"model_fingerprint\":null"),
        }
    }

    fn counter_fields(line: &mut String, c: &TelemetryCounters) {
        use std::fmt::Write as _;
        write!(
            line,
            ",\"steps\":{},\"packets_sent\":{},\"packets_forwarded\":{},\
             \"packets_absorbed\":{},\"packets_injected\":{},\"cohorts_admitted\":{},\
             \"buffers_compacted\":{},\"memo_hits\":{},\"memo_misses\":{},\
             \"sentinel_rounds\":{},\"oracle_diffs\":{},\"windows_emitted\":{},\
             \"shard_steps\":{},\"shard_seq_fallbacks\":{},\"shard_msgs_merged\":{},\
             \"shard_barrier_ns\":{}",
            c.steps,
            c.packets_sent,
            c.packets_forwarded,
            c.packets_absorbed,
            c.packets_injected,
            c.cohorts_admitted,
            c.buffers_compacted,
            c.memo_hits,
            c.memo_misses,
            c.sentinel_rounds,
            c.oracle_diffs,
            c.windows_emitted,
            c.shard_steps,
            c.shard_seq_fallbacks,
            c.shard_msgs_merged,
            c.shard_barrier_ns
        )
        .unwrap();
    }

    fn workload_fields(line: &mut String, c: &WorkloadCounters) {
        use std::fmt::Write as _;
        write!(
            line,
            ",\"requests_issued\":{},\"requests_completed\":{},\
             \"requests_abandoned\":{},\"requests_shed\":{},\
             \"requests_in_flight\":{},\"attempts_issued\":{},\
             \"attempts_retried\":{},\"attempts_shed\":{},\
             \"completions_wasted\":{}",
            c.requests_issued,
            c.requests_completed,
            c.requests_abandoned,
            c.requests_shed,
            c.requests_in_flight,
            c.attempts_issued,
            c.attempts_retried,
            c.attempts_shed,
            c.completions_wasted
        )
        .unwrap();
    }

    fn timing_fields(line: &mut String, t: &StageTimings) {
        use std::fmt::Write as _;
        line.push_str(",\"timings\":{");
        let stages: [(&str, &Log2Histogram); 9] = [
            ("send", &t.send),
            ("compact", &t.compact),
            ("receive", &t.receive),
            ("inject", &t.inject),
            ("oracle", &t.oracle),
            ("sentinel", &t.sentinel),
            ("step", &t.step),
            ("barrier", &t.barrier),
            ("shard_work", &t.shard_work),
        ];
        for (i, (name, h)) in stages.iter().enumerate() {
            if i > 0 {
                line.push(',');
            }
            write!(
                line,
                "\"{name}\":{{\"count\":{},\"total_ns\":{},\"mean_ns\":{:.1},\
                 \"p50_ns_le\":{},\"p99_ns_le\":{}}}",
                h.count(),
                h.total_nanos(),
                h.mean_nanos(),
                h.quantile_bound(0.50).unwrap_or(0),
                h.quantile_bound(0.99).unwrap_or(0),
            )
            .unwrap();
        }
        line.push('}');
    }
}

/// Minimal JSON string escaping (quotes, backslashes, control chars).
fn escape(s: &str) -> String {
    let mut out = String::with_capacity(s.len());
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            c if (c as u32) < 0x20 => out.push_str(&format!("\\u{:04x}", c as u32)),
            c => out.push(c),
        }
    }
    out
}

impl TelemetrySink for JsonlSink {
    fn record(&mut self, event: &TelemetryEvent<'_>) {
        use std::fmt::Write as _;
        let line = &mut self.line;
        line.clear();
        write!(
            line,
            "{{\"schema\":{TELEMETRY_SCHEMA_VERSION},\"kind\":\"{}\"",
            event.kind().as_str()
        )
        .unwrap();
        match event {
            TelemetryEvent::RunStart { time, provenance } => {
                write!(line, ",\"time\":{time}").unwrap();
                Self::provenance_fields(line, provenance);
            }
            TelemetryEvent::Window {
                start,
                end,
                counters,
                crossings,
                provenance,
            } => {
                write!(line, ",\"start\":{start},\"end\":{end}").unwrap();
                Self::counter_fields(line, counters);
                line.push_str(",\"crossings\":[");
                for (i, c) in crossings.iter().enumerate() {
                    if i > 0 {
                        line.push(',');
                    }
                    write!(line, "{c}").unwrap();
                }
                line.push(']');
                Self::provenance_fields(line, provenance);
            }
            TelemetryEvent::RunEnd {
                time,
                counters,
                timings,
                provenance,
            } => {
                write!(line, ",\"time\":{time}").unwrap();
                Self::counter_fields(line, counters);
                Self::timing_fields(line, timings);
                Self::provenance_fields(line, provenance);
            }
            TelemetryEvent::JobStarted { index, total } => {
                write!(line, ",\"index\":{index},\"total\":{total}").unwrap();
            }
            TelemetryEvent::JobFinished {
                index,
                attempts,
                secs,
            } => {
                write!(
                    line,
                    ",\"index\":{index},\"attempts\":{attempts},\"secs\":{secs:.3}"
                )
                .unwrap();
            }
            TelemetryEvent::JobRetried {
                index,
                attempt,
                backoff_ms,
            } => {
                write!(
                    line,
                    ",\"index\":{index},\"attempt\":{attempt},\"backoff_ms\":{backoff_ms}"
                )
                .unwrap();
            }
            TelemetryEvent::JobQuarantined { index, attempts } => {
                write!(line, ",\"index\":{index},\"attempts\":{attempts}").unwrap();
            }
            TelemetryEvent::SweepProgress {
                done,
                total,
                elapsed_secs,
                eta_secs,
            } => {
                write!(
                    line,
                    ",\"done\":{done},\"total\":{total},\
                     \"elapsed_secs\":{elapsed_secs:.3},\"eta_secs\":{eta_secs:.3}"
                )
                .unwrap();
            }
            TelemetryEvent::WorkloadWindow {
                start,
                end,
                counters,
                goodput,
                wasted,
                offered,
                provenance,
            } => {
                write!(line, ",\"start\":{start},\"end\":{end}").unwrap();
                Self::workload_fields(line, counters);
                write!(
                    line,
                    ",\"goodput\":{goodput},\"wasted\":{wasted},\"offered\":{offered}"
                )
                .unwrap();
                Self::provenance_fields(line, provenance);
            }
            TelemetryEvent::Backlog {
                time,
                total,
                max_queue,
                max_wait,
                bound,
                margin,
                depths,
                shard_sent,
                provenance,
            } => {
                write!(
                    line,
                    ",\"time\":{time},\"total\":{total},\"max_queue\":{max_queue},\
                     \"max_wait\":{max_wait}"
                )
                .unwrap();
                match bound {
                    Some(b) => write!(line, ",\"bound\":{b}").unwrap(),
                    None => line.push_str(",\"bound\":null"),
                }
                match margin {
                    Some(m) => write!(line, ",\"margin\":{m}").unwrap(),
                    None => line.push_str(",\"margin\":null"),
                }
                line.push_str(",\"depths\":[");
                for (i, (e, d)) in depths.iter().enumerate() {
                    if i > 0 {
                        line.push(',');
                    }
                    write!(line, "[{e},{d}]").unwrap();
                }
                line.push_str("],\"shard_sent\":[");
                for (i, s) in shard_sent.iter().enumerate() {
                    if i > 0 {
                        line.push(',');
                    }
                    write!(line, "{s}").unwrap();
                }
                line.push(']');
                Self::provenance_fields(line, provenance);
            }
            TelemetryEvent::Span {
                time,
                packet,
                op,
                edge,
                hop,
                wait,
                shard,
                provenance,
            } => {
                write!(
                    line,
                    ",\"time\":{time},\"packet\":{packet},\"op\":\"{}\",\"edge\":{edge},\
                     \"hop\":{hop},\"wait\":{wait},\"shard\":{shard}",
                    op.as_str()
                )
                .unwrap();
                Self::provenance_fields(line, provenance);
            }
        }
        line.push_str("}\n");
        // Telemetry is observability, not state: an I/O error (disk
        // full mid-sweep) must not kill the run it is watching.
        let _ = self.out.write_all(line.as_bytes());
        self.records += 1;
    }

    fn flush(&mut self) {
        let _ = self.out.flush();
    }
}

impl Drop for JsonlSink {
    fn drop(&mut self) {
        let _ = self.out.flush();
    }
}

// ---------------------------------------------------------------------
// Ring sink
// ---------------------------------------------------------------------

/// A fixed-size summary of one record, small and `Copy` so the ring
/// buffer never allocates. Per-edge window detail is dropped — the
/// ring is the cheap "last N things that happened" view; full detail
/// goes through [`JsonlSink`].
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct CompactRecord {
    /// Record kind.
    pub kind: EventKind,
    /// Step for engine records; job/`done` index for sweep records.
    pub time: Time,
    /// Kind-specific: window/run packets sent; job attempts; sweep
    /// total.
    pub v0: u64,
    /// Kind-specific: window/run packets absorbed; job/sweep seconds
    /// (as `f64::to_bits`).
    pub v1: u64,
    /// Kind-specific: window/run packets injected; sweep ETA seconds
    /// (as `f64::to_bits`).
    pub v2: u64,
}

/// Preallocated in-memory ring buffer of [`CompactRecord`]s: records
/// past the capacity overwrite the oldest. Steady-state `record` does
/// not allocate (the alloc-regression gate runs with this sink
/// attached).
#[derive(Debug)]
pub struct RingSink {
    buf: Vec<CompactRecord>,
    cap: usize,
    /// Index of the slot the next record lands in.
    next: usize,
    total: u64,
}

impl RingSink {
    /// A ring holding the latest `capacity` records (min 1), fully
    /// preallocated.
    pub fn with_capacity(capacity: usize) -> Self {
        let cap = capacity.max(1);
        RingSink {
            buf: Vec::with_capacity(cap),
            cap,
            next: 0,
            total: 0,
        }
    }

    /// Records currently held (≤ capacity).
    pub fn len(&self) -> usize {
        self.buf.len()
    }

    /// Is the ring empty?
    pub fn is_empty(&self) -> bool {
        self.buf.is_empty()
    }

    /// Total records ever pushed (including overwritten ones).
    pub fn total_records(&self) -> u64 {
        self.total
    }

    /// Held records, oldest first.
    pub fn iter(&self) -> impl Iterator<Item = &CompactRecord> {
        let split = if self.buf.len() < self.cap {
            0
        } else {
            self.next
        };
        self.buf[split..].iter().chain(self.buf[..split].iter())
    }
}

impl TelemetrySink for RingSink {
    fn record(&mut self, event: &TelemetryEvent<'_>) {
        let rec = match *event {
            TelemetryEvent::RunStart { time, .. } => CompactRecord {
                kind: EventKind::RunStart,
                time,
                v0: 0,
                v1: 0,
                v2: 0,
            },
            TelemetryEvent::Window { end, counters, .. } => CompactRecord {
                kind: EventKind::Window,
                time: end,
                v0: counters.packets_sent,
                v1: counters.packets_absorbed,
                v2: counters.packets_injected,
            },
            TelemetryEvent::RunEnd { time, counters, .. } => CompactRecord {
                kind: EventKind::RunEnd,
                time,
                v0: counters.packets_sent,
                v1: counters.packets_absorbed,
                v2: counters.packets_injected,
            },
            TelemetryEvent::JobStarted { index, total } => CompactRecord {
                kind: EventKind::JobStarted,
                time: index as Time,
                v0: total as u64,
                v1: 0,
                v2: 0,
            },
            TelemetryEvent::JobFinished {
                index,
                attempts,
                secs,
            } => CompactRecord {
                kind: EventKind::JobFinished,
                time: index as Time,
                v0: attempts as u64,
                v1: secs.to_bits(),
                v2: 0,
            },
            TelemetryEvent::JobRetried {
                index,
                attempt,
                backoff_ms,
            } => CompactRecord {
                kind: EventKind::JobRetried,
                time: index as Time,
                v0: attempt as u64,
                v1: backoff_ms,
                v2: 0,
            },
            TelemetryEvent::JobQuarantined { index, attempts } => CompactRecord {
                kind: EventKind::JobQuarantined,
                time: index as Time,
                v0: attempts as u64,
                v1: 0,
                v2: 0,
            },
            TelemetryEvent::SweepProgress {
                done,
                total,
                elapsed_secs,
                eta_secs,
            } => CompactRecord {
                kind: EventKind::SweepProgress,
                time: done as Time,
                v0: total as u64,
                v1: elapsed_secs.to_bits(),
                v2: eta_secs.to_bits(),
            },
            TelemetryEvent::WorkloadWindow {
                end,
                goodput,
                wasted,
                offered,
                ..
            } => CompactRecord {
                kind: EventKind::WorkloadWindow,
                time: end,
                v0: goodput,
                v1: wasted,
                v2: offered,
            },
            TelemetryEvent::Backlog {
                time,
                total,
                max_queue,
                margin,
                ..
            } => CompactRecord {
                kind: EventKind::Backlog,
                time,
                v0: total,
                v1: max_queue,
                // i64 margin as two's-complement bits; u64::MAX/2+…
                // never collides with a real depth reading.
                v2: margin.unwrap_or(i64::MAX) as u64,
            },
            TelemetryEvent::Span {
                time,
                packet,
                edge,
                wait,
                ..
            } => CompactRecord {
                kind: EventKind::Span,
                time,
                v0: packet,
                v1: edge as u64,
                v2: wait,
            },
        };
        if self.buf.len() < self.cap {
            self.buf.push(rec);
        } else {
            self.buf[self.next] = rec;
        }
        self.next = (self.next + 1) % self.cap;
        self.total += 1;
    }
}

// ---------------------------------------------------------------------
// Progress printer / tee / shared handle
// ---------------------------------------------------------------------

/// Prints sweep progress (and run boundaries) to stderr in a
/// human-readable form; window records are silently ignored (they are
/// too chatty for a terminal — route those to a [`JsonlSink`]).
#[derive(Debug, Default)]
pub struct StderrSink;

impl TelemetrySink for StderrSink {
    fn record(&mut self, event: &TelemetryEvent<'_>) {
        match event {
            TelemetryEvent::RunStart { time, provenance } => {
                eprintln!(
                    "[telemetry] run started at step {time} (protocol {})",
                    if provenance.protocol.is_empty() {
                        "?"
                    } else {
                        &provenance.protocol
                    }
                );
            }
            TelemetryEvent::RunEnd { time, counters, .. } => {
                eprintln!(
                    "[telemetry] run finished at step {time}: {} injected, {} absorbed",
                    counters.packets_injected, counters.packets_absorbed
                );
            }
            TelemetryEvent::Window { .. } => {}
            TelemetryEvent::JobStarted { index, total } => {
                eprintln!("[sweep] job {}/{total} started", index + 1);
            }
            TelemetryEvent::JobFinished {
                index,
                attempts,
                secs,
            } => {
                if *attempts > 1 {
                    eprintln!(
                        "[sweep] job {} done in {secs:.1}s ({attempts} attempts)",
                        index + 1
                    );
                } else {
                    eprintln!("[sweep] job {} done in {secs:.1}s", index + 1);
                }
            }
            TelemetryEvent::JobRetried {
                index,
                attempt,
                backoff_ms,
            } => {
                eprintln!(
                    "[sweep] job {} attempt {attempt} failed, retrying after {backoff_ms}ms",
                    index + 1
                );
            }
            TelemetryEvent::JobQuarantined { index, attempts } => {
                eprintln!(
                    "[sweep] job {} QUARANTINED after {attempts} attempts",
                    index + 1
                );
            }
            TelemetryEvent::SweepProgress {
                done,
                total,
                elapsed_secs,
                eta_secs,
            } => {
                eprintln!(
                    "[sweep] {done}/{total} done, elapsed {elapsed_secs:.1}s, ETA {eta_secs:.1}s"
                );
            }
            // Too chatty for a terminal, like engine windows.
            TelemetryEvent::WorkloadWindow { .. } => {}
            TelemetryEvent::Backlog { .. } => {}
            TelemetryEvent::Span { .. } => {}
        }
    }
}

/// Fans every record out to each inner sink, in order.
pub struct TeeSink(Vec<Box<dyn TelemetrySink>>);

impl TeeSink {
    /// A tee over `sinks`.
    pub fn new(sinks: Vec<Box<dyn TelemetrySink>>) -> Self {
        TeeSink(sinks)
    }
}

impl TelemetrySink for TeeSink {
    fn record(&mut self, event: &TelemetryEvent<'_>) {
        for s in &mut self.0 {
            s.record(event);
        }
    }

    fn flush(&mut self) {
        for s in &mut self.0 {
            s.flush();
        }
    }
}

/// A clonable, thread-safe handle to a sink: the same underlying sink
/// can serve an engine, a sweep harness, and the caller that wants to
/// flush at the end. Locking is per record; engine emission happens at
/// window cadence, so contention is negligible.
#[derive(Clone)]
pub struct SharedSink(Arc<Mutex<Box<dyn TelemetrySink>>>);

impl SharedSink {
    /// Wrap `sink` in a shareable handle.
    pub fn new(sink: impl TelemetrySink + 'static) -> Self {
        SharedSink(Arc::new(Mutex::new(Box::new(sink))))
    }

    /// Record through the shared sink (see [`TelemetrySink::record`]).
    pub fn record(&self, event: &TelemetryEvent<'_>) {
        self.0
            .lock()
            .unwrap_or_else(|e| e.into_inner())
            .record(event);
    }

    /// Flush the shared sink.
    pub fn flush(&self) {
        self.0.lock().unwrap_or_else(|e| e.into_inner()).flush();
    }
}

impl TelemetrySink for SharedSink {
    fn record(&mut self, event: &TelemetryEvent<'_>) {
        SharedSink::record(self, event);
    }

    fn flush(&mut self) {
        SharedSink::flush(self);
    }
}

// ---------------------------------------------------------------------
// The engine-owned state
// ---------------------------------------------------------------------

/// The engine-owned telemetry state: config, counters, timings, window
/// bookkeeping, and the attached sink. Constructed disabled; the
/// per-step cost while disabled is two boolean tests and one integer
/// compare (`window_next == Time::MAX`), mirroring the sentinel's
/// cached next-due gate.
pub struct Telemetry {
    level: TelemetryLevel,
    /// Hot flag: counters are being maintained (read once per step).
    pub(crate) counters_on: bool,
    /// Hot flag: stage timing is being maintained (read once per
    /// step).
    pub(crate) timing_on: bool,
    /// Hot flag: *this* step is a timing sample — set at the top of
    /// `Engine::step` from the `timing_next` gate and read by the
    /// substage methods, so sampling is decided exactly once per step.
    pub(crate) timing_this_step: bool,
    /// Step of the next timing sample; `Time::MAX` when timing is off.
    pub(crate) timing_next: Time,
    /// Steps between timing samples (≥ 1 when timing is on).
    pub(crate) timing_stride: Time,
    /// Running counter totals.
    pub(crate) counters: TelemetryCounters,
    /// Stage timing histograms.
    pub(crate) timings: StageTimings,
    provenance: Provenance,
    window: Time,
    /// Step of the next window emission; `Time::MAX` when windows are
    /// off — the per-step gate is one compare.
    pub(crate) window_next: Time,
    window_start: Time,
    counters_at_window_start: TelemetryCounters,
    /// Per-edge crossings at the last window boundary (preallocated).
    crossings_at_window_start: Vec<u64>,
    /// Scratch for per-window crossing deltas (preallocated; window
    /// records borrow it).
    crossings_scratch: Vec<u64>,
    sink: Option<Box<dyn TelemetrySink>>,
}

impl Telemetry {
    /// The disabled state an engine starts with.
    pub(crate) fn disabled() -> Self {
        Telemetry {
            level: TelemetryLevel::Off,
            counters_on: false,
            timing_on: false,
            timing_this_step: false,
            timing_next: Time::MAX,
            timing_stride: 0,
            counters: TelemetryCounters::default(),
            timings: StageTimings::default(),
            provenance: Provenance::default(),
            window: 0,
            window_next: Time::MAX,
            window_start: 0,
            counters_at_window_start: TelemetryCounters::default(),
            crossings_at_window_start: Vec::new(),
            crossings_scratch: Vec::new(),
            sink: None,
        }
    }

    /// Apply `cfg`, (re)baselining windows at the current engine state.
    /// All preallocation happens here, so the step loop stays
    /// heap-free.
    pub(crate) fn configure(&mut self, cfg: TelemetryConfig, now: Time, crossings: &[u64]) {
        self.level = cfg.level;
        self.counters_on = cfg.level.counters();
        self.timing_on = cfg.level.timing();
        self.timing_stride = if cfg.level.timing() {
            cfg.timing_sample_every.max(1)
        } else {
            0
        };
        self.provenance = cfg.provenance;
        self.window = if cfg.level.counters() { cfg.window } else { 0 };
        self.counters = TelemetryCounters::default();
        self.timings = StageTimings::default();
        self.rebaseline(now, crossings);
    }

    /// Reset the window baseline to the engine's current state (also
    /// called after snapshot/checkpoint restores, where the crossing
    /// totals jump).
    pub(crate) fn rebaseline(&mut self, now: Time, crossings: &[u64]) {
        self.window_start = now;
        self.window_next = if self.window > 0 {
            now.saturating_add(self.window)
        } else {
            Time::MAX
        };
        // First post-(re)baseline step is a timing sample, then every
        // `timing_stride`-th.
        self.timing_next = if self.timing_stride > 0 {
            now.saturating_add(1)
        } else {
            Time::MAX
        };
        self.timing_this_step = false;
        self.counters_at_window_start = self.counters;
        self.crossings_at_window_start.clear();
        self.crossings_at_window_start.extend_from_slice(crossings);
        self.crossings_scratch.clear();
        self.crossings_scratch.resize(crossings.len(), 0);
    }

    /// Attach `sink` and announce the run.
    pub(crate) fn set_sink(&mut self, sink: Box<dyn TelemetrySink>, now: Time) {
        let mut sink = sink;
        sink.record(&TelemetryEvent::RunStart {
            time: now,
            provenance: &self.provenance,
        });
        self.sink = Some(sink);
    }

    /// Close the window `(window_start, now]` and emit it through the
    /// sink. Heap-free: the crossing deltas land in the preallocated
    /// scratch and the event borrows them.
    #[cold]
    pub(crate) fn emit_window(&mut self, now: Time, crossings: &[u64]) {
        debug_assert_eq!(crossings.len(), self.crossings_at_window_start.len());
        if self.counters_on {
            // Before the delta: the closing window accounts for its own
            // emission.
            self.counters.windows_emitted += 1;
        }
        for (i, (&total, base)) in crossings
            .iter()
            .zip(self.crossings_at_window_start.iter_mut())
            .enumerate()
        {
            self.crossings_scratch[i] = total.saturating_sub(*base);
            *base = total;
        }
        let delta = self.counters.delta_since(&self.counters_at_window_start);
        self.counters_at_window_start = self.counters;
        let start = self.window_start;
        self.window_start = now;
        self.window_next = if self.window > 0 {
            now.saturating_add(self.window)
        } else {
            Time::MAX
        };
        if let Some(sink) = self.sink.as_mut() {
            sink.record(&TelemetryEvent::Window {
                start,
                end: now,
                counters: delta,
                crossings: &self.crossings_scratch,
                provenance: &self.provenance,
            });
        }
    }

    /// Is a sink attached? (The observatory skips span collection
    /// when there is nowhere to send the spans.)
    pub(crate) fn has_sink(&self) -> bool {
        self.sink.is_some()
    }

    /// Emit one observatory backlog tick through the attached sink,
    /// stamped with this run's provenance. No-op without a sink.
    #[allow(clippy::too_many_arguments)]
    pub(crate) fn emit_backlog(
        &mut self,
        time: Time,
        total: u64,
        max_queue: u64,
        max_wait: Time,
        bound: Option<u64>,
        margin: Option<i64>,
        depths: &[(u32, u32)],
        shard_sent: &[u64],
    ) {
        if let Some(sink) = self.sink.as_mut() {
            sink.record(&TelemetryEvent::Backlog {
                time,
                total,
                max_queue,
                max_wait,
                bound,
                margin,
                depths,
                shard_sent,
                provenance: &self.provenance,
            });
        }
    }

    /// Emit one sampled packet-lifecycle span through the attached
    /// sink, stamped with this run's provenance. No-op without a sink.
    #[allow(clippy::too_many_arguments)]
    pub(crate) fn emit_span(
        &mut self,
        time: Time,
        packet: u64,
        op: SpanKind,
        edge: u32,
        hop: u32,
        wait: Time,
        shard: u32,
    ) {
        if let Some(sink) = self.sink.as_mut() {
            sink.record(&TelemetryEvent::Span {
                time,
                packet,
                op,
                edge,
                hop,
                wait,
                shard,
                provenance: &self.provenance,
            });
        }
    }

    /// Emit the final partial window (if any steps are pending) and a
    /// [`TelemetryEvent::RunEnd`], then flush the sink.
    pub(crate) fn finish(&mut self, now: Time, crossings: &[u64]) {
        if self.level == TelemetryLevel::Off {
            return;
        }
        if self.window > 0 && now > self.window_start {
            self.emit_window(now, crossings);
        }
        if let Some(sink) = self.sink.as_mut() {
            sink.record(&TelemetryEvent::RunEnd {
                time: now,
                counters: self.counters,
                timings: &self.timings,
                provenance: &self.provenance,
            });
            sink.flush();
        }
    }

    /// The configured level.
    pub fn level(&self) -> TelemetryLevel {
        self.level
    }

    /// Running counter totals (all zero below
    /// [`TelemetryLevel::Counters`]).
    pub fn counters(&self) -> &TelemetryCounters {
        &self.counters
    }

    /// Stage timing histograms (all empty below
    /// [`TelemetryLevel::Timing`]).
    pub fn timings(&self) -> &StageTimings {
        &self.timings
    }

    /// The run identity stamped on emitted records.
    pub fn provenance(&self) -> &Provenance {
        &self.provenance
    }
}

impl std::fmt::Debug for Telemetry {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Telemetry")
            .field("level", &self.level)
            .field("window", &self.window)
            .field("counters", &self.counters)
            .field("has_sink", &self.sink.is_some())
            .finish_non_exhaustive()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn log2_histogram_buckets() {
        let mut h = Log2Histogram::default();
        h.record(0); // bucket 0
        h.record(1); // bucket 0
        h.record(2); // bucket 1
        h.record(3); // bucket 1
        h.record(1024); // bucket 10
        h.record(u64::MAX); // clamped to the last bucket
        assert_eq!(h.count(), 6);
        assert_eq!(h.buckets()[0], 2);
        assert_eq!(h.buckets()[1], 2);
        assert_eq!(h.buckets()[10], 1);
        assert_eq!(h.buckets()[Log2Histogram::BUCKETS - 1], 1);
        // p50 falls in bucket 1 -> upper bound 4 ns
        assert_eq!(h.quantile_bound(0.5), Some(4));
        assert!(h.mean_nanos() > 0.0);
    }

    #[test]
    fn quantile_of_empty_is_none() {
        assert_eq!(Log2Histogram::default().quantile_bound(0.5), None);
    }

    #[test]
    fn counters_delta() {
        let a = TelemetryCounters {
            steps: 10,
            packets_sent: 100,
            ..Default::default()
        };
        let mut b = a;
        b.steps = 25;
        b.packets_sent = 170;
        b.memo_hits = 3;
        let d = b.delta_since(&a);
        assert_eq!(d.steps, 15);
        assert_eq!(d.packets_sent, 70);
        assert_eq!(d.memo_hits, 3);
    }

    #[test]
    fn ring_sink_overwrites_oldest() {
        let mut ring = RingSink::with_capacity(3);
        for i in 0..5usize {
            ring.record(&TelemetryEvent::JobStarted { index: i, total: 5 });
        }
        assert_eq!(ring.len(), 3);
        assert_eq!(ring.total_records(), 5);
        let kept: Vec<Time> = ring.iter().map(|r| r.time).collect();
        assert_eq!(kept, vec![2, 3, 4]);
    }

    #[test]
    fn jsonl_lines_are_schema_stamped() {
        let buf = Arc::new(Mutex::new(Vec::<u8>::new()));
        struct Shared(Arc<Mutex<Vec<u8>>>);
        impl Write for Shared {
            fn write(&mut self, b: &[u8]) -> std::io::Result<usize> {
                self.0.lock().unwrap().extend_from_slice(b);
                Ok(b.len())
            }
            fn flush(&mut self) -> std::io::Result<()> {
                Ok(())
            }
        }
        let mut sink = JsonlSink::from_writer(Shared(Arc::clone(&buf)));
        let prov = Provenance {
            seed: Some(7),
            schedule_hash: None,
            protocol: "FIFO".into(),
            fault_plan_id: None,
            model_fingerprint: Some(11),
        };
        sink.record(&TelemetryEvent::RunStart {
            time: 0,
            provenance: &prov,
        });
        sink.record(&TelemetryEvent::Window {
            start: 0,
            end: 8,
            counters: TelemetryCounters::default(),
            crossings: &[1, 2, 3],
            provenance: &prov,
        });
        sink.record(&TelemetryEvent::SweepProgress {
            done: 1,
            total: 4,
            elapsed_secs: 2.0,
            eta_secs: 6.0,
        });
        sink.flush();
        let text = String::from_utf8(buf.lock().unwrap().clone()).unwrap();
        let lines: Vec<&str> = text.lines().collect();
        assert_eq!(lines.len(), 3);
        for l in &lines {
            assert!(l.starts_with("{\"schema\":5,\"kind\":\""), "line: {l}");
            assert!(l.ends_with('}'), "line: {l}");
        }
        assert!(lines[0].contains("\"kind\":\"run_start\""));
        assert!(lines[0].contains("\"seed\":7"));
        assert!(lines[0].contains("\"protocol\":\"FIFO\""));
        assert!(lines[0].contains("\"model_fingerprint\":11"));
        assert!(lines[1].contains("\"crossings\":[1,2,3]"));
        assert!(lines[2].contains("\"eta_secs\":6.000"));
        assert_eq!(sink.records(), 3);
    }

    #[test]
    fn escape_handles_quotes_and_control() {
        assert_eq!(escape("a\"b\\c\n"), "a\\\"b\\\\c\\u000a");
    }

    #[test]
    fn shared_sink_fans_in_from_clones() {
        let ring = RingSink::with_capacity(8);
        let shared = SharedSink::new(ring);
        let clone = shared.clone();
        clone.record(&TelemetryEvent::JobStarted { index: 0, total: 1 });
        shared.record(&TelemetryEvent::JobFinished {
            index: 0,
            attempts: 1,
            secs: 0.5,
        });
        // Both records went to the same underlying ring; we can only
        // observe that via a collecting sink, so re-wrap:
        // (covered end-to-end in tests/telemetry.rs)
    }
}
