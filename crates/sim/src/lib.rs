//! # aqt-sim
//!
//! An exact discrete-time simulator for the adversarial queuing model
//! of Borodin et al., as used in *New stability results for adversarial
//! queuing* (Lotker, Patt-Shamir, Rosén; SPAA 2002).
//!
//! ## The model (Section 2 of the paper, implemented verbatim)
//!
//! The network is a directed graph; each edge has a buffer at its tail.
//! Time proceeds in global steps. Each step has two substeps:
//!
//! 1. one packet is sent from each nonempty buffer over its link
//!    (which packet is the *protocol*'s choice — see [`Protocol`]);
//! 2. sent packets are received: absorbed at their destination or
//!    placed in the next buffer of their route; then new packets are
//!    injected by the adversary.
//!
//! ## What this crate adds beyond the bare model
//!
//! * [`rate`] — the adversary-constraint algebra: *exact*
//!   integer-arithmetic enforcement of the paper's two adversary
//!   classes (the rate-r adversary of Section 3 and the `(w,r)`
//!   adversary of Definition 2.1) plus the locally bursty `(ρ,σ,L)`
//!   and buffer-bound-`B` classes from the related work, composable
//!   member-wise into an [`rate::AdversaryModel`]. Every experiment in
//!   this repository runs its adversary through a model, so a schedule
//!   that would exceed the allowed injection rate fails loudly rather
//!   than producing a vacuous "instability" result.
//! * On-line rerouting of in-flight packets (the technique of
//!   Lemma 3.3), including streaming validation of the *effective*
//!   adversary `A'` that injects the final (extended) routes.
//! * [`metrics::Metrics`] — queue peaks, per-buffer waiting times
//!   (the quantity bounded by Theorems 4.1/4.3), backlog time series.
//! * [`fault::FaultPlan`] — deterministic fault injection (edge
//!   outages, in-transit drops/duplications, mid-run `S`-bursts), the
//!   substrate for the recovery experiments around Observation 4.4.
//! * [`checkpoint`] — full-state checkpoints (validators included) so
//!   long runs survive interruption and resume bit-for-bit.
//! * [`parallel`] — a crash-safe scoped thread-pool for embarrassingly
//!   parallel parameter sweeps (per-job panic isolation, bounded
//!   retry, quarantine).
//! * [`shard`] — bit-identical in-run parallelism: edge shards step
//!   the send/receive substages concurrently with a deterministic
//!   cross-shard exchange, so one large run uses many cores without
//!   changing a single trajectory.
//! * [`observe`] — the queue observatory: fixed-cadence per-edge
//!   backlog series with a certificate-margin tracker, seeded 1-in-N
//!   packet-lifecycle span sampling, and shard/barrier visibility,
//!   exported through the telemetry sinks for the offline analyzer
//!   (`examples/observatory.rs`).
//! * [`sentinel`] / [`oracle`] — runtime self-verification: pluggable
//!   invariants (packet conservation, unit-speed capacity, route
//!   progress, snapshot integrity, theorem-derived wait bounds)
//!   checked at a configurable cadence with per-invariant severities,
//!   plus a lockstep differential oracle diffing the optimized
//!   pipeline against a naive reference engine.

pub mod buffer;
pub mod checkpoint;
pub mod engine;
pub mod error;
pub mod fault;
pub mod metrics;
pub mod observe;
pub mod oracle;
pub mod packet;
pub mod parallel;
pub mod protocol;
pub mod rate;
pub mod ratio;
pub mod routes;
pub mod schedule;
pub mod sentinel;
pub mod shard;
pub mod snapshot;
pub mod source;
pub mod telemetry;
pub mod trace;

pub use buffer::BufferStore;
pub use checkpoint::Checkpoint;
pub use engine::{Absorption, Engine, EngineConfig, EngineError, Injection};
pub use error::SimError;
pub use fault::{FaultEvent, FaultPlan, FaultPlanError};
pub use metrics::Metrics;
pub use observe::{Observe, ObserveConfig, SpanRec};
pub use oracle::{Oracle, ReferenceModel};
pub use packet::{Packet, PacketId, Time};
pub use parallel::{
    run_sim_sweep, run_sim_sweep_with_progress, run_sweep, run_sweep_with_progress, HarnessError,
    JobFailure, JobOutcome, SweepConfig, SweepReport,
};
pub use protocol::{Discipline, Protocol, SelectKey};
pub use rate::{
    AdversaryModel, AdversaryModelSpec, BufferBoundValidator, BurstLocalValidator, Constraint,
    ConstraintSpec, ConstraintValidator, RateValidator, RateViolation, WindowValidator,
};
pub use ratio::Ratio;
pub use routes::{fnv1a_u64s, RouteId, RouteTable};
pub use schedule::{Schedule, ScheduleOp};
pub use sentinel::{
    CertificateSpec, InvariantKind, ReproBundle, Sentinel, SentinelConfig, SentinelState, Severity,
    Violation, ViolationReport,
};
pub use shard::{ShardPlan, ShardStamp};
pub use snapshot::{Snapshot, SNAPSHOT_SCHEMA_VERSION};
pub use source::{run_with_source, TrafficSource};
pub use telemetry::{
    JsonlSink, Log2Histogram, Provenance, RingSink, SharedSink, SpanKind, StageTimings, StderrSink,
    TeeSink, Telemetry, TelemetryConfig, TelemetryCounters, TelemetryEvent, TelemetryLevel,
    TelemetrySink, WorkloadCounters, TELEMETRY_SCHEMA_VERSION,
};
