//! Lockstep differential oracle: a deliberately naive reference engine
//! stepped alongside the optimized pipeline and diffed against it.
//!
//! The engine's staged pipeline earns its speed from an active-edge set
//! and per-[`Discipline`](crate::protocol::Discipline) fast paths. The
//! equivalence proptests pin those optimizations at test time; the
//! oracle cross-checks them *continuously*, on whatever run the user
//! actually cares about. [`ReferenceModel`] is the textbook O(V·E)
//! simulator: scan **every** edge buffer each step, always dispatch
//! through the virtual [`Protocol::select`], no caching of any kind —
//! slow on purpose, so its correctness is easy to audit. An [`Oracle`]
//! owns one, mirrors every engine step (including faults, bursts, and
//! Lemma 3.3 route extensions), and at a configurable cadence `k`
//! compares complete states: clock, id counter, conservation counters,
//! and every queued packet bit for bit. A mismatch is raised through
//! the sentinel as [`InvariantKind::OracleDivergence`](
//! crate::sentinel::InvariantKind::OracleDivergence).

use std::collections::VecDeque;
use std::sync::Arc;

use aqt_graph::{EdgeId, Graph};

use crate::engine::{Engine, Injection};
use crate::fault::FaultPlan;
use crate::packet::{Packet, PacketId, Time};
use crate::protocol::Protocol;
use crate::snapshot::{PacketState, Snapshot, SNAPSHOT_SCHEMA_VERSION};

/// The naive reference simulator: the model semantics with none of the
/// engine's optimizations. State is exactly what a [`Snapshot`]
/// captures, so the two convert losslessly in both directions.
#[derive(Debug, Clone, PartialEq)]
pub struct ReferenceModel {
    time: Time,
    next_id: u64,
    injected: u64,
    absorbed: u64,
    dropped: u64,
    duplicated: u64,
    buffers: Vec<VecDeque<Packet>>,
}

impl ReferenceModel {
    /// An empty model over `edge_count` buffers at time 0.
    pub fn new(edge_count: usize) -> Self {
        ReferenceModel {
            time: 0,
            next_id: 0,
            injected: 0,
            absorbed: 0,
            dropped: 0,
            duplicated: 0,
            buffers: vec![VecDeque::new(); edge_count],
        }
    }

    /// Build a model holding exactly the state of `snap`.
    pub fn from_snapshot(snap: &Snapshot) -> Self {
        ReferenceModel {
            time: snap.time,
            next_id: snap.next_id,
            injected: snap.injected,
            absorbed: snap.absorbed,
            dropped: snap.dropped,
            duplicated: snap.duplicated,
            buffers: snap
                .buffers
                .iter()
                .map(|buf| {
                    buf.iter()
                        .map(|p| Packet {
                            id: PacketId(p.id),
                            injected_at: p.injected_at,
                            arrived_at: p.arrived_at,
                            tag: p.tag,
                            route: Arc::clone(&p.route),
                            hop: p.hop,
                        })
                        .collect()
                })
                .collect(),
        }
    }

    /// Capture the model's state in snapshot form.
    pub fn to_snapshot(&self) -> Snapshot {
        Snapshot {
            schema: SNAPSHOT_SCHEMA_VERSION,
            time: self.time,
            buffers: self
                .buffers
                .iter()
                .map(|buf| {
                    buf.iter()
                        .map(|p| PacketState {
                            id: p.id.0,
                            injected_at: p.injected_at,
                            arrived_at: p.arrived_at,
                            tag: p.tag,
                            route: p.route_shared(),
                            hop: p.hop,
                        })
                        .collect()
                })
                .collect(),
            next_id: self.next_id,
            injected: self.injected,
            absorbed: self.absorbed,
            dropped: self.dropped,
            duplicated: self.duplicated,
        }
    }

    /// Current model time.
    pub fn time(&self) -> Time {
        self.time
    }

    /// Total packets currently queued.
    pub fn backlog(&self) -> u64 {
        self.buffers.iter().map(|b| b.len() as u64).sum()
    }

    fn admit(&mut self, route: Arc<[EdgeId]>, t: Time, tag: u32) {
        let id = PacketId(self.next_id);
        self.next_id += 1;
        let first = route[0];
        self.buffers[first.index()].push_back(Packet {
            id,
            injected_at: t,
            arrived_at: t,
            tag,
            route,
            hop: 0,
        });
        self.injected += 1;
    }

    /// Mirror of [`Engine::seed`]: place an initial-configuration
    /// packet at time 0.
    pub(crate) fn mirror_seed(&mut self, route: Arc<[EdgeId]>, tag: u32) {
        self.admit(route, 0, tag);
    }

    /// Mirror of [`Engine::extend_routes_in`]'s route swap: extend the
    /// remaining routes of the matching packets in the listed buffers,
    /// one shared `Arc` per distinct original route.
    pub(crate) fn mirror_extend(
        &mut self,
        buffers: &[EdgeId],
        suffix: &[EdgeId],
        last_edge: Option<EdgeId>,
    ) {
        let mut cache: std::collections::HashMap<*const EdgeId, Arc<[EdgeId]>> =
            std::collections::HashMap::new();
        for &be in buffers {
            for p in self.buffers[be.index()].iter_mut() {
                if last_edge.is_some_and(|e| p.route.last() != Some(&e)) {
                    continue;
                }
                let key = p.route.as_ptr();
                let new_route = cache.entry(key).or_insert_with(|| {
                    let mut edges = Vec::with_capacity(p.route.len() + suffix.len());
                    edges.extend_from_slice(&p.route);
                    edges.extend_from_slice(suffix);
                    edges.into()
                });
                p.route = Arc::clone(new_route);
            }
        }
    }

    /// One full model step, in exactly the engine's substage order:
    /// send, wire faults, receive, inject, burst. `protocol` must be a
    /// separate instance configured identically to the engine's (for
    /// stateful protocols, identically seeded).
    pub fn step(
        &mut self,
        protocol: &mut dyn Protocol,
        graph: &Graph,
        faults: Option<&FaultPlan>,
        injections: &[Injection],
    ) {
        let t = self.time + 1;
        self.time = t;
        let faults_active = faults.is_some_and(|f| f.active_at(t));

        // Substep 1: full scan, virtual dispatch, no fast paths.
        let mut in_transit: Vec<Packet> = Vec::new();
        for ei in 0..self.buffers.len() {
            if self.buffers[ei].is_empty() {
                continue;
            }
            let edge = EdgeId(ei as u32);
            if faults_active && faults.is_some_and(|f| f.edge_down(edge, t)) {
                continue;
            }
            let idx = protocol.select(t, edge, &self.buffers[ei], graph);
            let p = self.buffers[ei]
                .remove(idx)
                .expect("protocol selected an in-range index");
            in_transit.push(p);
        }

        // Wire-fault stage: drops and duplications, in transit order.
        let mut delivered: Vec<Packet> = Vec::with_capacity(in_transit.len());
        for p in in_transit {
            let crossed = p.current_edge();
            let (lost, copied) = match faults {
                Some(f) if faults_active => (f.drops_at(crossed, t), f.duplicates_at(crossed, t)),
                _ => (false, false),
            };
            if lost {
                self.dropped += 1;
                continue;
            }
            let copy = copied.then(|| {
                let id = PacketId(self.next_id);
                self.next_id += 1;
                self.duplicated += 1;
                Packet { id, ..p.clone() }
            });
            delivered.push(p);
            delivered.extend(copy);
        }

        // Substep 2a: receive.
        for mut p in delivered {
            if p.on_last_edge() {
                self.absorbed += 1;
            } else {
                p.hop += 1;
                p.arrived_at = t;
                let next = p.current_edge();
                self.buffers[next.index()].push_back(p);
            }
        }

        // Substep 2b: inject, then burst faults.
        for inj in injections {
            self.admit(inj.route.shared(), t, inj.tag);
        }
        if faults_active {
            if let Some(f) = faults {
                let burst: Vec<Injection> = f
                    .bursts_at(t)
                    .flat_map(|b| b.injections.iter().cloned())
                    .collect();
                for inj in burst {
                    self.admit(inj.route.shared(), t, inj.tag);
                }
            }
        }
    }

    /// Replace the model's state with the engine's (used after a
    /// snapshot/checkpoint restore, where replaying is impossible).
    pub(crate) fn resync<P: Protocol>(&mut self, engine: &Engine<P>) {
        self.time = engine.time();
        self.next_id = engine.next_packet_id();
        self.injected = engine.metrics().injected;
        self.absorbed = engine.metrics().absorbed;
        self.dropped = engine.metrics().dropped;
        self.duplicated = engine.metrics().duplicated;
        self.buffers = engine
            .graph()
            .edge_ids()
            .map(|e| engine.queue_iter(e).cloned().collect())
            .collect();
    }

    /// First difference against the engine's state, as a description;
    /// `None` when the states match bit for bit.
    pub fn diff<P: Protocol>(&self, engine: &Engine<P>) -> Option<String> {
        if self.time != engine.time() {
            return Some(format!(
                "clock diverged: oracle at {}, engine at {}",
                self.time,
                engine.time()
            ));
        }
        if self.next_id != engine.next_packet_id() {
            return Some(format!(
                "id counter diverged: oracle at {}, engine at {}",
                self.next_id,
                engine.next_packet_id()
            ));
        }
        let m = engine.metrics();
        for (name, ours, theirs) in [
            ("injected", self.injected, m.injected),
            ("absorbed", self.absorbed, m.absorbed),
            ("dropped", self.dropped, m.dropped),
            ("duplicated", self.duplicated, m.duplicated),
        ] {
            if ours != theirs {
                return Some(format!(
                    "{name} counter diverged: oracle {ours}, engine {theirs}"
                ));
            }
        }
        if self.buffers.len() != engine.graph().edge_count() {
            return Some(format!(
                "oracle has {} buffers but the graph has {} edges",
                self.buffers.len(),
                engine.graph().edge_count()
            ));
        }
        for (ei, ours) in self.buffers.iter().enumerate() {
            let edge = EdgeId(ei as u32);
            if ours.len() != engine.queue_len(edge) {
                return Some(format!(
                    "edge {ei}: oracle holds {} packets, engine {}",
                    ours.len(),
                    engine.queue_len(edge)
                ));
            }
            for (pos, (a, b)) in ours.iter().zip(engine.queue_iter(edge)).enumerate() {
                if a != b {
                    return Some(format!(
                        "edge {ei} position {pos}: oracle has packet {:?} (tag {}, hop {}), \
                         engine has {:?} (tag {}, hop {})",
                        a.id, a.tag, a.hop, b.id, b.tag, b.hop
                    ));
                }
            }
        }
        None
    }
}

/// The attached lockstep oracle: a reference model plus its own
/// protocol instance and the diff cadence `k`. Created by
/// [`Engine::attach_oracle`].
pub struct Oracle {
    pub(crate) protocol: Box<dyn Protocol>,
    pub(crate) every: u64,
    pub(crate) model: ReferenceModel,
}

impl Oracle {
    pub(crate) fn new(protocol: Box<dyn Protocol>, every: u64, edge_count: usize) -> Self {
        Oracle {
            protocol,
            every: every.max(1),
            model: ReferenceModel::new(edge_count),
        }
    }

    /// The diff cadence (every `k` steps; `k ≥ 1`).
    pub fn cadence(&self) -> u64 {
        self.every
    }

    /// Read-only view of the reference model.
    pub fn model(&self) -> &ReferenceModel {
        &self.model
    }

    /// Is a diff due at step `t`?
    #[inline]
    pub(crate) fn due(&self, t: Time) -> bool {
        t.is_multiple_of(self.every)
    }

    /// Advance the reference model by one step.
    pub(crate) fn step(&mut self, graph: &Graph, faults: Option<&FaultPlan>, inj: &[Injection]) {
        self.model.step(self.protocol.as_mut(), graph, faults, inj);
    }
}

impl std::fmt::Debug for Oracle {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Oracle")
            .field("protocol", &self.protocol.name())
            .field("every", &self.every)
            .field("model_time", &self.model.time)
            .finish()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use aqt_graph::{topologies, Route};

    struct Fifo;
    impl Protocol for Fifo {
        fn name(&self) -> &str {
            "FIFO"
        }
        fn select(&mut self, _: Time, _: EdgeId, _: &VecDeque<Packet>, _: &Graph) -> usize {
            0
        }
    }

    #[test]
    fn model_matches_a_plain_run() {
        let g = Arc::new(topologies::line(3));
        let edges: Vec<EdgeId> = g.edge_ids().collect();
        let route = Route::new(&g, edges.clone()).unwrap();
        let mut model = ReferenceModel::new(g.edge_count());
        let mut proto = Fifo;
        for _ in 0..4 {
            let inj = [Injection::new(route.clone(), 0)];
            model.step(&mut proto, &g, None, &inj);
        }
        model.step(&mut proto, &g, None, &[]);
        assert_eq!(model.injected, 4);
        // packet 0: injected t=1, crosses e0@2, e1@3, e2@4 -> absorbed;
        // packet 1 follows one step behind.
        assert_eq!(model.absorbed, 2);
        assert_eq!(model.backlog(), 2);
    }

    #[test]
    fn model_applies_wire_faults_in_engine_order() {
        let g = Arc::new(topologies::line(2));
        let edges: Vec<EdgeId> = g.edge_ids().collect();
        let route = Route::new(&g, edges.clone()).unwrap();
        let plan = FaultPlan::new()
            .with_drop(edges[0], 2)
            .with_duplicate(edges[1], 4);
        let mut model = ReferenceModel::new(g.edge_count());
        let mut proto = Fifo;
        let inj = [Injection::new(route.clone(), 0)];
        model.step(&mut proto, &g, Some(&plan), &inj); // t=1: inject p0
        model.step(&mut proto, &g, Some(&plan), &inj); // t=2: p0 dropped on e0, p1 injected
        assert_eq!(model.dropped, 1);
        model.step(&mut proto, &g, Some(&plan), &[]); // t=3: p1 crosses e0
        model.step(&mut proto, &g, Some(&plan), &[]); // t=4: p1 duplicated on e1
        assert_eq!(model.duplicated, 1);
        assert_eq!(model.absorbed, 2);
        assert_eq!(model.backlog(), 0);
        // the duplicate consumed an id
        assert_eq!(model.next_id, 3);
    }

    #[test]
    fn snapshot_roundtrip_is_lossless() {
        let g = Arc::new(topologies::ring(4));
        let edges: Vec<EdgeId> = g.edge_ids().collect();
        let route = Route::new(&g, vec![edges[0], edges[1]]).unwrap();
        let mut model = ReferenceModel::new(g.edge_count());
        let mut proto = Fifo;
        for _ in 0..3 {
            let inj = [Injection::new(route.clone(), 9)];
            model.step(&mut proto, &g, None, &inj);
        }
        let snap = model.to_snapshot();
        let rebuilt = ReferenceModel::from_snapshot(&snap);
        assert_eq!(rebuilt, model);
        assert_eq!(rebuilt.to_snapshot(), snap);
    }

    #[test]
    fn mirror_extend_matches_engine_extension_shape() {
        let g = Arc::new(topologies::line(3));
        let edges: Vec<EdgeId> = g.edge_ids().collect();
        let short: Arc<[EdgeId]> = vec![edges[0]].into();
        let mut model = ReferenceModel::new(g.edge_count());
        model.mirror_seed(Arc::clone(&short), 0);
        model.mirror_seed(short, 0);
        model.mirror_extend(&[edges[0]], &[edges[1], edges[2]], None);
        let routes: Vec<_> = model.buffers[0].iter().map(|p| p.route()).collect();
        assert_eq!(routes[0], &[edges[0], edges[1], edges[2]]);
        // one shared Arc for the shared original route
        assert!(Arc::ptr_eq(
            &model.buffers[0][0].route,
            &model.buffers[0][1].route
        ));
    }
}
