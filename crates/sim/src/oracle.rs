//! Lockstep differential oracle: a deliberately naive reference engine
//! stepped alongside the optimized pipeline and diffed against it.
//!
//! The engine's staged pipeline earns its speed from an active-edge set
//! and per-[`Discipline`](crate::protocol::Discipline) fast paths. The
//! equivalence proptests pin those optimizations at test time; the
//! oracle cross-checks them *continuously*, on whatever run the user
//! actually cares about. [`ReferenceModel`] is the textbook O(V·E)
//! simulator: scan **every** edge buffer each step, always dispatch
//! through the virtual [`Protocol::select`], no caching of any kind —
//! slow on purpose, so its correctness is easy to audit. An [`Oracle`]
//! owns one, mirrors every engine step (including faults, bursts, and
//! Lemma 3.3 route extensions), and at a configurable cadence `k`
//! compares complete states: clock, id counter, conservation counters,
//! every queued packet bit for bit, and the two route tables entry by
//! entry. The model keeps its *own* [`RouteTable`] and mirrors the
//! engine's intern sequence, so packet route ids are comparable
//! directly — a diff never chases route contents per packet, and a
//! divergence in the intern order itself is detected rather than
//! masked. A mismatch is raised through the sentinel as
//! [`InvariantKind::OracleDivergence`](
//! crate::sentinel::InvariantKind::OracleDivergence).

use std::collections::VecDeque;

use aqt_graph::{EdgeId, Graph};

use crate::engine::{Engine, Injection};
use crate::fault::FaultPlan;
use crate::packet::{Packet, PacketId, Time};
use crate::protocol::Protocol;
use crate::routes::{RouteId, RouteTable};
use crate::snapshot::{canonical_buffers, Snapshot, SNAPSHOT_SCHEMA_VERSION};

/// The naive reference simulator: the model semantics with none of the
/// engine's optimizations. State is exactly what a [`Snapshot`]
/// captures, so the two convert losslessly in both directions.
#[derive(Debug, Clone, PartialEq)]
pub struct ReferenceModel {
    time: Time,
    next_id: u64,
    injected: u64,
    absorbed: u64,
    dropped: u64,
    duplicated: u64,
    buffers: Vec<VecDeque<Packet>>,
    /// The model's own route interner, kept id-aligned with the
    /// engine's by mirroring every intern in the same order.
    routes: RouteTable,
}

impl ReferenceModel {
    /// An empty model over `edge_count` buffers at time 0.
    pub fn new(edge_count: usize) -> Self {
        ReferenceModel {
            time: 0,
            next_id: 0,
            injected: 0,
            absorbed: 0,
            dropped: 0,
            duplicated: 0,
            buffers: vec![VecDeque::new(); edge_count],
            routes: RouteTable::new(),
        }
    }

    /// Build a model holding exactly the state of `snap`. The model's
    /// route ids are the snapshot's route indices.
    pub fn from_snapshot(snap: &Snapshot) -> Self {
        let mut routes = RouteTable::new();
        let ids: Vec<(RouteId, u32)> = snap
            .routes
            .iter()
            .map(|r| (routes.intern(r), r.len() as u32))
            .collect();
        ReferenceModel {
            time: snap.time,
            next_id: snap.next_id,
            injected: snap.injected,
            absorbed: snap.absorbed,
            dropped: snap.dropped,
            duplicated: snap.duplicated,
            buffers: snap
                .buffers
                .iter()
                .map(|buf| {
                    buf.iter()
                        .map(|p| {
                            let (route, route_len) = ids[p.route as usize];
                            Packet {
                                id: PacketId(p.id),
                                injected_at: p.injected_at,
                                arrived_at: p.arrived_at,
                                tag: p.tag,
                                route,
                                hop: p.hop,
                                route_len,
                            }
                        })
                        .collect()
                })
                .collect(),
            routes,
        }
    }

    /// Capture the model's state in snapshot form (canonical route
    /// numbering, independent of the model's private intern order).
    pub fn to_snapshot(&self) -> Snapshot {
        let (routes, buffers) =
            canonical_buffers(self.buffers.iter().map(|b| b.iter()), &self.routes);
        Snapshot {
            schema: SNAPSHOT_SCHEMA_VERSION,
            time: self.time,
            routes,
            buffers,
            next_id: self.next_id,
            injected: self.injected,
            absorbed: self.absorbed,
            dropped: self.dropped,
            duplicated: self.duplicated,
        }
    }

    /// Current model time.
    pub fn time(&self) -> Time {
        self.time
    }

    /// Total packets currently queued.
    pub fn backlog(&self) -> u64 {
        self.buffers.iter().map(|b| b.len() as u64).sum()
    }

    fn admit(&mut self, edges: &[EdgeId], t: Time, tag: u32) {
        let id = PacketId(self.next_id);
        self.next_id += 1;
        let route = self.routes.intern(edges);
        let first = edges[0];
        self.buffers[first.index()].push_back(Packet {
            id,
            injected_at: t,
            arrived_at: t,
            tag,
            route,
            hop: 0,
            route_len: edges.len() as u32,
        });
        self.injected += 1;
    }

    /// Mirror of [`Engine::seed`]: place an initial-configuration
    /// packet at time 0.
    pub(crate) fn mirror_seed(&mut self, edges: &[EdgeId], tag: u32) {
        self.admit(edges, 0, tag);
    }

    /// Mirror of [`Engine::extend_routes_in`]'s route swap: extend the
    /// remaining routes of the matching packets in the listed buffers.
    /// The distinct cohort routes are interned in first-appearance
    /// order — the same order the engine used — so the two tables stay
    /// id-aligned.
    pub(crate) fn mirror_extend(
        &mut self,
        buffers: &[EdgeId],
        suffix: &[EdgeId],
        last_edge: Option<EdgeId>,
    ) {
        let mut distinct: Vec<(RouteId, Vec<EdgeId>)> = Vec::new();
        for &be in buffers {
            for p in self.buffers[be.index()].iter() {
                let route = self.routes.get(p.route);
                if last_edge.is_some_and(|e| route.last() != Some(&e)) {
                    continue;
                }
                if !distinct.iter().any(|(id, _)| *id == p.route) {
                    let mut edges = Vec::with_capacity(route.len() + suffix.len());
                    edges.extend_from_slice(route);
                    edges.extend_from_slice(suffix);
                    distinct.push((p.route, edges));
                }
            }
        }
        let swaps: Vec<(RouteId, RouteId, u32)> = distinct
            .into_iter()
            .map(|(old_id, edges)| {
                let new_id = self.routes.intern(&edges);
                (old_id, new_id, edges.len() as u32)
            })
            .collect();
        for &be in buffers {
            for p in self.buffers[be.index()].iter_mut() {
                if let Some(&(_, new_id, new_len)) =
                    swaps.iter().find(|(old_id, _, _)| *old_id == p.route)
                {
                    p.route = new_id;
                    p.route_len = new_len;
                }
            }
        }
    }

    /// One full model step, in exactly the engine's substage order:
    /// send, wire faults, receive, inject, burst. `protocol` must be a
    /// separate instance configured identically to the engine's (for
    /// stateful protocols, identically seeded).
    pub fn step(
        &mut self,
        protocol: &mut dyn Protocol,
        graph: &Graph,
        faults: Option<&FaultPlan>,
        injections: &[Injection],
    ) {
        let t = self.time + 1;
        self.time = t;
        let faults_active = faults.is_some_and(|f| f.active_at(t));

        // Substep 1: full scan, virtual dispatch, no fast paths.
        let mut in_transit: Vec<Packet> = Vec::new();
        for ei in 0..self.buffers.len() {
            if self.buffers[ei].is_empty() {
                continue;
            }
            let edge = EdgeId(ei as u32);
            if faults_active && faults.is_some_and(|f| f.edge_down(edge, t)) {
                continue;
            }
            let idx = protocol.select(t, edge, &self.buffers[ei], graph);
            let p = self.buffers[ei]
                .remove(idx)
                .expect("protocol selected an in-range index");
            in_transit.push(p);
        }

        // Wire-fault stage: drops and duplications, in transit order.
        let mut delivered: Vec<Packet> = Vec::with_capacity(in_transit.len());
        for p in in_transit {
            let crossed = self.routes.get(p.route)[p.hop as usize];
            let (lost, copied) = match faults {
                Some(f) if faults_active => (f.drops_at(crossed, t), f.duplicates_at(crossed, t)),
                _ => (false, false),
            };
            if lost {
                self.dropped += 1;
                continue;
            }
            let copy = copied.then(|| {
                let id = PacketId(self.next_id);
                self.next_id += 1;
                self.duplicated += 1;
                Packet { id, ..p }
            });
            delivered.push(p);
            delivered.extend(copy);
        }

        // Substep 2a: receive.
        for mut p in delivered {
            if p.on_last_edge() {
                self.absorbed += 1;
            } else {
                p.hop += 1;
                p.arrived_at = t;
                let next = self.routes.get(p.route)[p.hop as usize];
                self.buffers[next.index()].push_back(p);
            }
        }

        // Substep 2b: inject, then burst faults. A cohort is `count`
        // identical admissions — one intern (dedup makes the repeats
        // free), `count` packets, exactly the engine's id assignment.
        for inj in injections {
            for _ in 0..inj.count {
                self.admit(inj.route.edges(), t, inj.tag);
            }
        }
        if faults_active {
            if let Some(f) = faults {
                let burst: Vec<Injection> = f
                    .bursts_at(t)
                    .flat_map(|b| b.injections.iter().cloned())
                    .collect();
                for inj in burst {
                    for _ in 0..inj.count {
                        self.admit(inj.route.edges(), t, inj.tag);
                    }
                }
            }
        }
    }

    /// Replace the model's state with the engine's (used after a
    /// snapshot/checkpoint restore, where replaying is impossible).
    /// Clones the engine's route table, so ids stay directly
    /// comparable from here on.
    pub(crate) fn resync<P: Protocol>(&mut self, engine: &Engine<P>) {
        self.time = engine.time();
        self.next_id = engine.next_packet_id();
        self.injected = engine.metrics().injected;
        self.absorbed = engine.metrics().absorbed;
        self.dropped = engine.metrics().dropped;
        self.duplicated = engine.metrics().duplicated;
        self.buffers = engine
            .graph()
            .edge_ids()
            .map(|e| engine.queue_iter(e).copied().collect())
            .collect();
        self.routes = engine.routes().clone();
    }

    /// First difference against the engine's state, as a description;
    /// `None` when the states match bit for bit.
    pub fn diff<P: Protocol>(&self, engine: &Engine<P>) -> Option<String> {
        if self.time != engine.time() {
            return Some(format!(
                "clock diverged: oracle at {}, engine at {}",
                self.time,
                engine.time()
            ));
        }
        if self.next_id != engine.next_packet_id() {
            return Some(format!(
                "id counter diverged: oracle at {}, engine at {}",
                self.next_id,
                engine.next_packet_id()
            ));
        }
        let m = engine.metrics();
        for (name, ours, theirs) in [
            ("injected", self.injected, m.injected),
            ("absorbed", self.absorbed, m.absorbed),
            ("dropped", self.dropped, m.dropped),
            ("duplicated", self.duplicated, m.duplicated),
        ] {
            if ours != theirs {
                return Some(format!(
                    "{name} counter diverged: oracle {ours}, engine {theirs}"
                ));
            }
        }
        // Mirrored interning makes the tables equal whenever the runs
        // agree; comparing them makes the per-packet route-id equality
        // below meaningful (and catches an intern-order divergence even
        // before it moves a packet).
        if &self.routes != engine.routes() {
            return Some(format!(
                "route tables diverged: oracle interned {} routes, engine {}",
                self.routes.len(),
                engine.routes().len()
            ));
        }
        if self.buffers.len() != engine.graph().edge_count() {
            return Some(format!(
                "oracle has {} buffers but the graph has {} edges",
                self.buffers.len(),
                engine.graph().edge_count()
            ));
        }
        for (ei, ours) in self.buffers.iter().enumerate() {
            let edge = EdgeId(ei as u32);
            if ours.len() != engine.queue_len(edge) {
                return Some(format!(
                    "edge {ei}: oracle holds {} packets, engine {}",
                    ours.len(),
                    engine.queue_len(edge)
                ));
            }
            for (pos, (a, b)) in ours.iter().zip(engine.queue_iter(edge)).enumerate() {
                if a != b {
                    return Some(format!(
                        "edge {ei} position {pos}: oracle has packet {:?} (tag {}, hop {}), \
                         engine has {:?} (tag {}, hop {})",
                        a.id, a.tag, a.hop, b.id, b.tag, b.hop
                    ));
                }
            }
        }
        None
    }
}

/// The attached lockstep oracle: a reference model plus its own
/// protocol instance and the diff cadence `k`. Created by
/// [`Engine::attach_oracle`].
pub struct Oracle {
    pub(crate) protocol: Box<dyn Protocol>,
    pub(crate) every: u64,
    pub(crate) model: ReferenceModel,
}

impl Oracle {
    pub(crate) fn new(protocol: Box<dyn Protocol>, every: u64, edge_count: usize) -> Self {
        Oracle {
            protocol,
            every: every.max(1),
            model: ReferenceModel::new(edge_count),
        }
    }

    /// The diff cadence (every `k` steps; `k ≥ 1`).
    pub fn cadence(&self) -> u64 {
        self.every
    }

    /// Read-only view of the reference model.
    pub fn model(&self) -> &ReferenceModel {
        &self.model
    }

    /// Is a diff due at step `t`?
    #[inline]
    pub(crate) fn due(&self, t: Time) -> bool {
        t.is_multiple_of(self.every)
    }

    /// Advance the reference model by one step.
    pub(crate) fn step(&mut self, graph: &Graph, faults: Option<&FaultPlan>, inj: &[Injection]) {
        self.model.step(self.protocol.as_mut(), graph, faults, inj);
    }
}

impl std::fmt::Debug for Oracle {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Oracle")
            .field("protocol", &self.protocol.name())
            .field("every", &self.every)
            .field("model_time", &self.model.time)
            .finish()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use aqt_graph::{topologies, Route};
    use std::sync::Arc;

    struct Fifo;
    impl Protocol for Fifo {
        fn name(&self) -> &str {
            "FIFO"
        }
        fn select(&mut self, _: Time, _: EdgeId, _: &VecDeque<Packet>, _: &Graph) -> usize {
            0
        }
    }

    #[test]
    fn model_matches_a_plain_run() {
        let g = Arc::new(topologies::line(3));
        let edges: Vec<EdgeId> = g.edge_ids().collect();
        let route = Route::new(&g, edges.clone()).unwrap();
        let mut model = ReferenceModel::new(g.edge_count());
        let mut proto = Fifo;
        for _ in 0..4 {
            let inj = [Injection::new(route.clone(), 0)];
            model.step(&mut proto, &g, None, &inj);
        }
        model.step(&mut proto, &g, None, &[]);
        assert_eq!(model.injected, 4);
        // packet 0: injected t=1, crosses e0@2, e1@3, e2@4 -> absorbed;
        // packet 1 follows one step behind.
        assert_eq!(model.absorbed, 2);
        assert_eq!(model.backlog(), 2);
    }

    #[test]
    fn model_applies_wire_faults_in_engine_order() {
        let g = Arc::new(topologies::line(2));
        let edges: Vec<EdgeId> = g.edge_ids().collect();
        let route = Route::new(&g, edges.clone()).unwrap();
        let plan = FaultPlan::new()
            .with_drop(edges[0], 2)
            .with_duplicate(edges[1], 4);
        let mut model = ReferenceModel::new(g.edge_count());
        let mut proto = Fifo;
        let inj = [Injection::new(route.clone(), 0)];
        model.step(&mut proto, &g, Some(&plan), &inj); // t=1: inject p0
        model.step(&mut proto, &g, Some(&plan), &inj); // t=2: p0 dropped on e0, p1 injected
        assert_eq!(model.dropped, 1);
        model.step(&mut proto, &g, Some(&plan), &[]); // t=3: p1 crosses e0
        model.step(&mut proto, &g, Some(&plan), &[]); // t=4: p1 duplicated on e1
        assert_eq!(model.duplicated, 1);
        assert_eq!(model.absorbed, 2);
        assert_eq!(model.backlog(), 0);
        // the duplicate consumed an id
        assert_eq!(model.next_id, 3);
    }

    #[test]
    fn snapshot_roundtrip_is_lossless() {
        let g = Arc::new(topologies::ring(4));
        let edges: Vec<EdgeId> = g.edge_ids().collect();
        let route = Route::new(&g, vec![edges[0], edges[1]]).unwrap();
        let mut model = ReferenceModel::new(g.edge_count());
        let mut proto = Fifo;
        for _ in 0..3 {
            let inj = [Injection::new(route.clone(), 9)];
            model.step(&mut proto, &g, None, &inj);
        }
        let snap = model.to_snapshot();
        let rebuilt = ReferenceModel::from_snapshot(&snap);
        // The rebuilt table holds only the live routes in canonical
        // order, so compare states through the canonical form.
        assert_eq!(rebuilt.to_snapshot(), snap);
        assert_eq!(rebuilt.backlog(), model.backlog());
    }

    #[test]
    fn mirror_extend_interns_one_extension_per_distinct_route() {
        let g = Arc::new(topologies::line(3));
        let edges: Vec<EdgeId> = g.edge_ids().collect();
        let short = [edges[0]];
        let mut model = ReferenceModel::new(g.edge_count());
        model.mirror_seed(&short, 0);
        model.mirror_seed(&short, 0);
        model.mirror_extend(&[edges[0]], &[edges[1], edges[2]], None);
        let ids: Vec<RouteId> = model.buffers[0].iter().map(|p| p.route_id()).collect();
        // one interned extension shared by the cohort
        assert_eq!(ids[0], ids[1]);
        assert_eq!(
            model.routes.get(ids[0]),
            &[edges[0], edges[1], edges[2]][..]
        );
        // the table holds exactly the original and the extension
        assert_eq!(model.routes.len(), 2);
    }
}
